// Memory-budget planner: the paper's motivating scenario — which graphs fit
// on a GPU with a fixed device memory, uncompressed (CSR) vs compressed
// (CGR)? Reports per-format footprints and the largest traversable graph
// under several device budgets.
//
//   $ ./examples/memory_budget_planner
#include <cstdio>

#include "baseline/csr_gpu_engine.h"
#include "cgr/cgr_graph.h"
#include "core/bfs.h"
#include "graph/generators.h"

using namespace gcgt;

int main() {
  std::printf("device-memory planning: CSR vs CGR footprints\n\n");
  std::printf("%10s %12s %12s %12s %8s\n", "|V|", "|E|", "CSR MB", "CGR MB",
              "saving");

  std::vector<Graph> graphs;
  for (NodeId n : {5000u, 20000u, 60000u}) {
    WebGraphParams p;
    p.num_nodes = n;
    p.avg_degree = 20;
    p.seed = n;
    graphs.push_back(GenerateWebGraph(p));
  }

  for (const Graph& g : graphs) {
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    double csr_mb = CsrBytes32(g) / 1048576.0;
    double cgr_mb = cgr.value().DeviceBytes() / 1048576.0;
    std::printf("%10u %12llu %12.2f %12.2f %7.1fx\n", g.num_nodes(),
                (unsigned long long)g.num_edges(), csr_mb, cgr_mb,
                csr_mb / cgr_mb);
  }

  // What actually fits: try a BFS under shrinking budgets.
  std::printf("\nBFS feasibility of the largest graph under device budgets:\n");
  const Graph& big = graphs.back();
  auto cgr = CgrGraph::Encode(big, CgrOptions{});
  for (uint64_t budget_kb : {8192u, 2048u, 1024u, 512u, 256u}) {
    CsrEngineOptions csr_opt;
    csr_opt.device.memory_bytes = budget_kb * 1024;
    GcgtOptions gcgt_opt;
    gcgt_opt.device.memory_bytes = budget_kb * 1024;
    auto csr_res = CsrBfs(big, 0, csr_opt);
    auto gcgt_res = GcgtBfs(cgr.value(), 0, gcgt_opt);
    std::printf("  %6llu KB budget: GPUCSR %-14s GCGT %s\n",
                (unsigned long long)budget_kb,
                csr_res.ok() ? "fits" : csr_res.status().ToString().c_str(),
                gcgt_res.ok() ? "fits" : gcgt_res.status().ToString().c_str());
  }
  std::printf("\nCompression keeps the graph traversable at budgets where the "
              "uncompressed format has long since spilled.\n");
  return 0;
}
