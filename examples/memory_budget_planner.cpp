// Memory-budget planner: the paper's motivating scenario — which graphs fit
// on a GPU with a fixed device memory, uncompressed (CSR) vs compressed
// (CGR)? Reports per-format footprints and the largest traversable graph
// under several device budgets, using one GcgtSession per budget whose
// backends answer the same BFS feasibility query.
//
//   $ ./examples/memory_budget_planner
#include <cstdio>

#include "api/gcgt_session.h"
#include "baseline/csr_gpu_engine.h"
#include "graph/generators.h"

using namespace gcgt;

int main() {
  std::printf("device-memory planning: CSR vs CGR footprints\n\n");
  std::printf("%10s %12s %12s %12s %8s\n", "|V|", "|E|", "CSR MB", "CGR MB",
              "saving");

  std::vector<Graph> graphs;
  for (NodeId n : {5000u, 20000u, 60000u}) {
    WebGraphParams p;
    p.num_nodes = n;
    p.avg_degree = 20;
    p.seed = n;
    graphs.push_back(GenerateWebGraph(p));
  }

  for (const Graph& g : graphs) {
    auto session = GcgtSession::Prepare(g, PrepareOptions{});
    double csr_mb = CsrBytes32(g) / 1048576.0;
    double cgr_mb = session.value().cgr().DeviceBytes() / 1048576.0;
    std::printf("%10u %12llu %12.2f %12.2f %7.1fx\n", g.num_nodes(),
                (unsigned long long)g.num_edges(), csr_mb, cgr_mb,
                csr_mb / cgr_mb);
  }

  // What actually fits: the same BFS query against both backends under
  // shrinking budgets. The encode is shared — each budget is a session
  // attached to the same CgrGraph (and the already-uncompressed graph, so
  // the CSR backend skips the lazy decode).
  std::printf("\nBFS feasibility of the largest graph under device budgets:\n");
  const Graph& big = graphs.back();
  auto encoded = CgrGraph::Encode(big, CgrOptions{});
  for (uint64_t budget_kb : {8192u, 2048u, 1024u, 512u, 256u}) {
    GcgtOptions opt;
    opt.device.memory_bytes = budget_kb * 1024;
    GcgtSession session = GcgtSession::Attach(encoded.value(), big, opt);
    auto csr_res = session.Run(BfsQuery{0}, {.backend = Backend::kCsrBaseline});
    auto gcgt_res = session.Run(BfsQuery{0});
    std::printf("  %6llu KB budget: GPUCSR %-14s GCGT %s\n",
                (unsigned long long)budget_kb,
                csr_res.ok() ? "fits" : csr_res.status().ToString().c_str(),
                gcgt_res.ok() ? "fits" : gcgt_res.status().ToString().c_str());
  }
  std::printf("\nCompression keeps the graph traversable at budgets where the "
              "uncompressed format has long since spilled.\n");
  return 0;
}
