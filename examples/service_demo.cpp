// Service demo: serve concurrent clients from one prepared graph.
//
// GcgtSession is prepare-once/query-many but single-caller; GcgtService is
// the tier above it — it prepares a graph ONCE into a registry artifact,
// fans queries out over a pool of worker sessions (one engine per worker,
// one shared encode), applies backpressure through a bounded queue, and
// memoizes BFS/CC results across clients in a sharded LRU cache.
//
// The second half shows the robustness layer: per-query deadlines (an
// already-expired deadline fails with DeadlineExceeded instead of burning a
// worker), client cancellation, and graceful OOM degradation — a backend
// that exceeds the modeled device budget is transparently re-served on the
// CPU fallback with the result marked degraded().
//
//   $ ./examples/service_demo
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "service/gcgt_service.h"

using namespace gcgt;

int main() {
  // A small social graph standing in for the production dataset.
  SocialGraphParams params;
  params.num_nodes = 4000;
  params.seed = 7;
  Graph g = GenerateSocialGraph(params);

  // 1. Start the serving tier: 4 workers, bounded queue, 16 MB result cache.
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.cache_bytes = size_t{16} << 20;
  GcgtService service(options);

  // 2. Register the graph: one VNC -> reorder -> CGR encode, fingerprinted.
  //    Re-registering the same graph+options later is a lookup, not an
  //    encode.
  PrepareOptions prep;
  prep.gcgt.num_threads = 1;  // serial engines; parallelism = the worker pool
  auto graph_id = service.RegisterGraph(g, prep);
  if (!graph_id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 graph_id.status().ToString().c_str());
    return 1;
  }
  std::printf("registered graph %016llx: %u nodes, %llu edges\n",
              (unsigned long long)graph_id.value(), g.num_nodes(),
              (unsigned long long)g.num_edges());

  // 3. Four client threads hammer the service concurrently — hot sources
  //    repeat, so later asks are served from the result cache,
  //    bit-identical to the fresh runs.
  const NodeId hot_sources[] = {1, 2, 3, 5, 8, 13};
  std::vector<std::thread> clients;
  std::vector<int> answered(4, 0);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 12; ++i) {
        ServiceQuery q{graph_id.value(), BfsQuery{hot_sources[i % 6]},
                       Backend::kCgrSimt};
        if (i % 6 == 5) q.query = CcQuery{};
        auto result = service.Submit(std::move(q)).get();
        if (result.ok()) ++answered[c];
      }
    });
  }
  for (auto& t : clients) t.join();

  // 4. One of the queries, asked once more and cross-checked against the
  //    uncompressed CPU reference backend through the same service.
  auto gcgt_run = service.Submit({graph_id.value(), BfsQuery{1}}).get();
  auto cpu_run = service
                     .Submit({graph_id.value(), BfsQuery{1},
                              Backend::kCpuReference})
                     .get();
  if (!gcgt_run.ok() || !cpu_run.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  const bool match =
      gcgt_run.value().bfs().depth == cpu_run.value().bfs().depth;

  {
    const ServiceStats stats = service.Stats();
    std::printf("served %llu queries (%d+%d+%d+%d per client)\n",
                (unsigned long long)stats.completed, answered[0], answered[1],
                answered[2], answered[3]);
    std::printf("cache: %llu hits / %llu lookups, %zu entries, %zu bytes\n",
                (unsigned long long)stats.cache.hits,
                (unsigned long long)(stats.cache.hits + stats.cache.misses),
                stats.cache.entries, stats.cache.bytes);
    std::printf(
        "engines built: %llu (>= 1 per worker that served; encode: 1)\n",
        (unsigned long long)stats.worker_sessions);
    std::printf("CPU cross-check: %s\n", match ? "matches" : "MISMATCH");
  }

  // 5. Deadlines and cancellation: an expired deadline fails the query
  //    before any worker time is spent on it; a cancelled source aborts a
  //    query cooperatively (mid-traversal for the GCGT backend).
  ServiceQuery timed{graph_id.value(), BcQuery{{1, 2, 3}}};
  timed.cancel = CancelToken::WithDeadline(CancelToken::Clock::now() -
                                           std::chrono::milliseconds(1));
  auto expired = service.Submit(std::move(timed)).get();
  std::printf("expired deadline: %s\n", expired.status().ToString().c_str());

  CancelSource client;
  client.Cancel();  // the client gave up before the worker got to it
  ServiceQuery dropped{graph_id.value(), BfsQuery{2}};
  dropped.cancel = client.token();
  auto cancelled = service.Submit(std::move(dropped)).get();
  std::printf("cancelled client: %s\n", cancelled.status().ToString().c_str());

  // 6. Graceful OOM degradation. A second service with a tight modeled
  //    device budget and a CPU fallback: the Gunrock-modeled backend's
  //    2.6x memory factor no longer fits (a fig8-style hard OOM row), so
  //    the service re-serves the query on the fallback and marks it
  //    degraded — a degraded answer instead of an error.
  PrepareOptions tight = prep;
  tight.gcgt.device.memory_bytes = static_cast<uint64_t>(
      (4.0 * (g.num_nodes() + 1) + 4.0 * g.num_edges() + 12.0 * g.num_nodes()) *
      tight.gunrock_memory_factor * 0.9);
  ServiceOptions degraded_opts;
  degraded_opts.num_workers = 2;
  degraded_opts.enable_oom_fallback = true;
  degraded_opts.fallback_backend = Backend::kCpuReference;
  GcgtService degraded_service(degraded_opts);
  auto tight_id = degraded_service.RegisterGraph(g, tight);
  if (!tight_id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 tight_id.status().ToString().c_str());
    return 1;
  }
  auto fallback = degraded_service
                      .Submit({tight_id.value(), BfsQuery{1},
                               Backend::kCsrGunrock})
                      .get();
  bool degraded_match = false;
  if (fallback.ok()) {
    degraded_match =
        fallback.value().bfs().depth == cpu_run.value().bfs().depth;
    std::printf("Gunrock under a tight budget: served %s, %s the CPU answer\n",
                fallback.value().degraded() ? "DEGRADED on the CPU fallback"
                                            : "natively",
                degraded_match ? "matches" : "MISMATCHES");
  } else {
    std::printf("Gunrock under a tight budget failed: %s\n",
                fallback.status().ToString().c_str());
  }

  const ServiceStats stats = service.Stats();
  const ServiceStats degraded_stats = degraded_service.Stats();
  std::printf(
      "robustness: %llu deadline-exceeded, %llu cancelled, %llu degraded, "
      "%llu retries, %llu worker faults\n",
      (unsigned long long)stats.deadline_exceeded,
      (unsigned long long)stats.cancelled,
      (unsigned long long)degraded_stats.degraded,
      (unsigned long long)(stats.retries + degraded_stats.retries),
      (unsigned long long)(stats.worker_faults + degraded_stats.worker_faults));

  service.Shutdown();  // graceful: drains accepted queries, joins workers
  degraded_service.Shutdown();
  const bool robust = expired.status().IsDeadlineExceeded() &&
                      cancelled.status().IsCancelled() && fallback.ok() &&
                      fallback.value().degraded() && degraded_match;
  return match && robust ? 0 : 1;
}
