// Service demo: serve concurrent clients from one prepared graph.
//
// GcgtSession is prepare-once/query-many but single-caller; GcgtService is
// the tier above it — it prepares a graph ONCE into a registry artifact,
// fans queries out over a pool of worker sessions (one engine per worker,
// one shared encode), applies backpressure through a bounded queue, and
// memoizes BFS/CC results across clients in a sharded LRU cache.
//
//   $ ./examples/service_demo
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "service/gcgt_service.h"

using namespace gcgt;

int main() {
  // A small social graph standing in for the production dataset.
  SocialGraphParams params;
  params.num_nodes = 4000;
  params.seed = 7;
  Graph g = GenerateSocialGraph(params);

  // 1. Start the serving tier: 4 workers, bounded queue, 16 MB result cache.
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.cache_bytes = size_t{16} << 20;
  GcgtService service(options);

  // 2. Register the graph: one VNC -> reorder -> CGR encode, fingerprinted.
  //    Re-registering the same graph+options later is a lookup, not an
  //    encode.
  PrepareOptions prep;
  prep.gcgt.num_threads = 1;  // serial engines; parallelism = the worker pool
  auto graph_id = service.RegisterGraph(g, prep);
  if (!graph_id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 graph_id.status().ToString().c_str());
    return 1;
  }
  std::printf("registered graph %016llx: %u nodes, %llu edges\n",
              (unsigned long long)graph_id.value(), g.num_nodes(),
              (unsigned long long)g.num_edges());

  // 3. Four client threads hammer the service concurrently — hot sources
  //    repeat, so later asks are served from the result cache,
  //    bit-identical to the fresh runs.
  const NodeId hot_sources[] = {1, 2, 3, 5, 8, 13};
  std::vector<std::thread> clients;
  std::vector<int> answered(4, 0);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 12; ++i) {
        ServiceQuery q{graph_id.value(), BfsQuery{hot_sources[i % 6]},
                       Backend::kCgrSimt};
        if (i % 6 == 5) q.query = CcQuery{};
        auto result = service.Submit(std::move(q)).get();
        if (result.ok()) ++answered[c];
      }
    });
  }
  for (auto& t : clients) t.join();

  // 4. One of the queries, asked once more and cross-checked against the
  //    uncompressed CPU reference backend through the same service.
  auto gcgt_run = service.Submit({graph_id.value(), BfsQuery{1}}).get();
  auto cpu_run = service
                     .Submit({graph_id.value(), BfsQuery{1},
                              Backend::kCpuReference})
                     .get();
  if (!gcgt_run.ok() || !cpu_run.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  const bool match =
      gcgt_run.value().bfs().depth == cpu_run.value().bfs().depth;

  const ServiceStats stats = service.Stats();
  std::printf("served %llu queries (%d+%d+%d+%d per client)\n",
              (unsigned long long)stats.completed, answered[0], answered[1],
              answered[2], answered[3]);
  std::printf("cache: %llu hits / %llu lookups, %zu entries, %zu bytes\n",
              (unsigned long long)stats.cache.hits,
              (unsigned long long)(stats.cache.hits + stats.cache.misses),
              stats.cache.entries, stats.cache.bytes);
  std::printf("engines built: %llu (>= 1 per worker that served; encode: 1)\n",
              (unsigned long long)stats.worker_sessions);
  std::printf("CPU cross-check: %s\n", match ? "matches" : "MISMATCH");

  service.Shutdown();  // graceful: drains accepted queries, joins workers
  return match ? 0 : 1;
}
