// Social-network analysis on a compressed follower graph: BFS reachability,
// community structure via connected components, and influencer detection via
// betweenness centrality — all executed directly on CGR through the GCGT
// engine, plus the effect of each scheduling strategy on this hub-skewed
// workload (the paper's twitter story).
//
//   $ ./examples/social_network_analysis
#include <algorithm>
#include <cstdio>
#include <map>

#include "cgr/cgr_graph.h"
#include "core/bc.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

using namespace gcgt;

int main() {
  TwitterGraphParams params;
  params.num_nodes = 20000;
  params.avg_degree = 24;
  params.num_hubs = 8;
  Graph g = GenerateTwitterGraph(params);
  GraphStats stats = ComputeGraphStats(g);
  std::printf("follower graph: %u users, %llu follows, max degree %llu "
              "(hub skew %.0fx the average)\n\n",
              stats.num_nodes, (unsigned long long)stats.num_edges,
              (unsigned long long)stats.max_degree,
              stats.max_degree / stats.avg_degree);

  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  std::printf("compressed to %.2f bits/edge (%.2fx)\n\n",
              cgr.value().BitsPerEdge(), cgr.value().CompressionRate());

  // Reachability from a random user.
  NodeId source = 42;
  auto bfs = GcgtBfs(cgr.value(), source, GcgtOptions{});
  uint64_t reached = 0;
  uint32_t max_depth = 0;
  for (uint32_t d : bfs.value().depth) {
    if (d != BfsFilter::kUnvisited) {
      ++reached;
      max_depth = std::max(max_depth, d);
    }
  }
  std::printf("BFS from user %u: reaches %llu users, %u hops, %.4f model ms\n",
              source, (unsigned long long)reached, max_depth,
              bfs.value().metrics.model_ms);

  // Community structure.
  auto cc = GcgtCc(cgr.value(), GcgtOptions{});
  std::map<NodeId, uint64_t> sizes;
  for (NodeId root : cc.value().component) ++sizes[root];
  uint64_t largest = 0;
  for (const auto& [root, size] : sizes) largest = std::max(largest, size);
  std::printf("connected components: %zu (largest holds %.1f%% of users), "
              "%d hooking rounds, %.4f model ms\n",
              sizes.size(), 100.0 * largest / g.num_nodes(),
              cc.value().rounds, cc.value().metrics.model_ms);

  // Influencers: highest single-source dependency from `source`.
  auto bc = GcgtBc(cgr.value(), source, GcgtOptions{});
  std::vector<NodeId> by_dependency(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) by_dependency[v] = v;
  std::sort(by_dependency.begin(), by_dependency.end(), [&](NodeId a, NodeId b) {
    return bc.value().dependency[a] > bc.value().dependency[b];
  });
  std::printf("top brokers on shortest paths from user %u:", source);
  for (int i = 0; i < 5; ++i) {
    std::printf(" %u(%.0f)", by_dependency[i],
                bc.value().dependency[by_dependency[i]]);
  }
  std::printf("  [%.4f model ms]\n\n", bc.value().metrics.model_ms);

  // Why scheduling matters on this graph: strategy ladder (paper Fig. 9).
  std::printf("scheduling ladder on this hub-skewed graph (BFS model ms):\n");
  CgrOptions unseg;
  unseg.segment_len_bytes = 0;
  auto cgr_unseg = CgrGraph::Encode(g, unseg);
  for (GcgtLevel level : {GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase,
                          GcgtLevel::kTaskStealing, GcgtLevel::kWarpCentric,
                          GcgtLevel::kFull}) {
    GcgtOptions opt;
    opt.level = level;
    const CgrGraph& graph =
        level == GcgtLevel::kFull ? cgr.value() : cgr_unseg.value();
    auto res = GcgtBfs(graph, source, opt);
    std::printf("  %-28s %8.4f ms\n", GcgtLevelName(level),
                res.value().metrics.model_ms);
  }
  return 0;
}
