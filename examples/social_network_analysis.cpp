// Social-network analysis on a compressed follower graph: BFS reachability,
// community structure via connected components, and influencer detection via
// betweenness centrality — one prepared GcgtSession serving all three query
// types on CGR, plus the effect of each scheduling strategy on this
// hub-skewed workload (the paper's twitter story).
//
//   $ ./examples/social_network_analysis
#include <algorithm>
#include <cstdio>
#include <map>

#include "api/gcgt_session.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

using namespace gcgt;

int main() {
  TwitterGraphParams params;
  params.num_nodes = 20000;
  params.avg_degree = 24;
  params.num_hubs = 8;
  Graph g = GenerateTwitterGraph(params);
  GraphStats stats = ComputeGraphStats(g);
  std::printf("follower graph: %u users, %llu follows, max degree %llu "
              "(hub skew %.0fx the average)\n\n",
              stats.num_nodes, (unsigned long long)stats.num_edges,
              (unsigned long long)stats.max_degree,
              stats.max_degree / stats.avg_degree);

  // Prepare once; every analysis below is a query against this session.
  auto prepared = GcgtSession::Prepare(g, PrepareOptions{});
  GcgtSession& session = prepared.value();
  std::printf("compressed to %.2f bits/edge (%.2fx)\n\n",
              session.cgr().BitsPerEdge(), session.cgr().CompressionRate());

  // Reachability from a random user.
  NodeId source = 42;
  auto bfs = session.Run(BfsQuery{source});
  uint64_t reached = 0;
  uint32_t max_depth = 0;
  for (uint32_t d : bfs.value().bfs().depth) {
    if (d != BfsFilter::kUnvisited) {
      ++reached;
      max_depth = std::max(max_depth, d);
    }
  }
  std::printf("BFS from user %u: reaches %llu users, %u hops, %.4f model ms\n",
              source, (unsigned long long)reached, max_depth,
              bfs.value().metrics().model_ms);

  // Community structure.
  auto cc = session.Run(CcQuery{});
  std::map<NodeId, uint64_t> sizes;
  for (NodeId root : cc.value().cc().component) ++sizes[root];
  uint64_t largest = 0;
  for (const auto& [root, size] : sizes) largest = std::max(largest, size);
  std::printf("connected components: %zu (largest holds %.1f%% of users), "
              "%d hooking rounds, %.4f model ms\n",
              sizes.size(), 100.0 * largest / g.num_nodes(),
              cc.value().cc().rounds, cc.value().metrics().model_ms);

  // Influencers: a multi-source BC query accumulates every source's
  // dependency into one vector — here, brokers on shortest paths out of the
  // biggest hubs.
  std::vector<NodeId> seeds = {source, 0, 1};
  auto bc = session.Run(BcQuery{seeds});
  const std::vector<double>& dependency = bc.value().bc().dependency;
  std::vector<NodeId> by_dependency(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) by_dependency[v] = v;
  std::sort(by_dependency.begin(), by_dependency.end(),
            [&](NodeId a, NodeId b) { return dependency[a] > dependency[b]; });
  std::printf("top brokers on shortest paths from %zu seed users:",
              seeds.size());
  for (int i = 0; i < 5; ++i) {
    std::printf(" %u(%.0f)", by_dependency[i], dependency[by_dependency[i]]);
  }
  std::printf("  [%.4f model ms total]\n\n", bc.value().metrics().model_ms);

  // Decode-free set intersection (src/intersect): social analytics whose
  // kernel merges adjacency lists straight off the compressed bitstream.
  auto tri = session.Run(TriangleCountQuery{});
  std::printf("triangles (friend-of-friend closures): %llu, %.4f model ms\n",
              (unsigned long long)tri.value().triangle().triangles,
              tri.value().metrics().model_ms);

  auto core = session.Run(KCoreQuery{8});
  std::printf("8-core (tightly-knit community): %u of %u users\n",
              core.value().kcore().core_size, g.num_nodes());

  // "People you may know": distance-2 candidates of a user ranked by
  // Jaccard similarity of follow lists.
  auto rec = session.Run(SimilarityTopKQuery{source, 5});
  std::printf("user %u may know:", source);
  for (const auto& item : rec.value().similarity_topk().items) {
    std::printf(" %u(%.3f, %llu mutual)", item.node, item.jaccard,
                (unsigned long long)item.common);
  }
  std::printf("\n\n");

  // Why scheduling matters on this graph: strategy ladder (paper Fig. 9).
  // The encodings are shared; each rung is a session attached to one.
  std::printf("scheduling ladder on this hub-skewed graph (BFS model ms):\n");
  CgrOptions unseg;
  unseg.segment_len_bytes = 0;
  auto cgr_unseg = CgrGraph::Encode(g, unseg);
  for (GcgtLevel level : {GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase,
                          GcgtLevel::kTaskStealing, GcgtLevel::kWarpCentric,
                          GcgtLevel::kFull}) {
    GcgtOptions opt;
    opt.level = level;
    GcgtSession rung =
        level == GcgtLevel::kFull
            ? GcgtSession::Attach(session.cgr(), opt)
            : GcgtSession::Attach(cgr_unseg.value(), opt);
    auto res = rung.Run(BfsQuery{source});
    std::printf("  %-28s %8.4f ms\n", GcgtLevelName(level),
                res.value().metrics().model_ms);
  }
  return 0;
}
