// Web-graph compression tour: the full preprocessing pipeline the paper
// evaluates on uk-2002/uk-2007 — virtual-node compression, node reordering,
// CGR encoding — with the compression/locality impact of every stage.
//
//   $ ./examples/web_compression_tour
#include <cstdio>

#include "cgr/cgr_graph.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "reorder/reorder.h"
#include "vnc/virtual_node.h"

using namespace gcgt;

namespace {

void Report(const char* stage, const Graph& g, EdgeId raw_edges) {
  GraphStats s = ComputeGraphStats(g);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  std::printf("%-28s |V|=%-7u |E|=%-8llu locality=%5.2f itv_cov=%5.1f%% "
              "bits/edge=%6.2f rate(vs raw CSR)=%5.2fx\n",
              stage, s.num_nodes, (unsigned long long)s.num_edges,
              s.locality_score, 100 * s.interval_coverage,
              cgr.value().BitsPerEdge(),
              32.0 * raw_edges / cgr.value().total_bits());
}

}  // namespace

int main() {
  WebGraphParams params;
  params.num_nodes = 20000;
  params.avg_degree = 16;
  Graph raw = GenerateWebGraph(params);
  EdgeId raw_edges = raw.num_edges();
  std::printf("stage-by-stage compression of a crawl-ordered web graph:\n\n");
  Report("raw crawl order", raw, raw_edges);

  // Stage 1: virtual-node compression (shared navigation templates).
  VncResult vnc = VirtualNodeCompress(raw);
  std::printf("\nVNC found %u virtual nodes, %.2fx edge reduction\n\n",
              vnc.num_virtual_nodes(), vnc.EdgeReduction());
  Report("after VNC", vnc.graph, raw_edges);

  // Stage 2: node reordering restores the host locality the crawl shuffled.
  std::printf("\n");
  for (ReorderMethod m :
       {ReorderMethod::kDegSort, ReorderMethod::kBfsOrder,
        ReorderMethod::kGorder, ReorderMethod::kLlp}) {
    Graph ordered = ApplyReordering(vnc.graph, m);
    char label[64];
    std::snprintf(label, sizeof(label), "after VNC + %s", ReorderMethodName(m));
    Report(label, ordered, raw_edges);
  }

  std::printf("\nThe uk-2002/uk-2007 rows of bench_fig8_main use exactly this "
              "pipeline with LLP.\n");
  return 0;
}
