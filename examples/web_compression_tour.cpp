// Web-graph compression tour: the full preprocessing pipeline the paper
// evaluates on uk-2002/uk-2007 — virtual-node compression, node reordering,
// CGR encoding — with the compression/locality impact of every stage, and
// the one-call GcgtSession::Prepare that runs the whole pipeline for you.
//
//   $ ./examples/web_compression_tour
#include <cstdio>

#include "api/gcgt_session.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

using namespace gcgt;

namespace {

void Report(const char* stage, const Graph& g, EdgeId raw_edges) {
  GraphStats s = ComputeGraphStats(g);
  // A default-options session is a pure CGR encode of the stage's graph.
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  std::printf("%-28s |V|=%-7u |E|=%-8llu locality=%5.2f itv_cov=%5.1f%% "
              "bits/edge=%6.2f rate(vs raw CSR)=%5.2fx\n",
              stage, s.num_nodes, (unsigned long long)s.num_edges,
              s.locality_score, 100 * s.interval_coverage,
              session.value().cgr().BitsPerEdge(),
              32.0 * raw_edges / session.value().cgr().total_bits());
}

}  // namespace

int main() {
  WebGraphParams params;
  params.num_nodes = 20000;
  params.avg_degree = 16;
  Graph raw = GenerateWebGraph(params);
  EdgeId raw_edges = raw.num_edges();
  std::printf("stage-by-stage compression of a crawl-ordered web graph:\n\n");
  Report("raw crawl order", raw, raw_edges);

  // Stage 1: virtual-node compression (shared navigation templates).
  VncResult vnc = VirtualNodeCompress(raw);
  std::printf("\nVNC found %u virtual nodes, %.2fx edge reduction\n\n",
              vnc.num_virtual_nodes(), vnc.EdgeReduction());
  Report("after VNC", vnc.graph, raw_edges);

  // Stage 2: node reordering restores the host locality the crawl shuffled.
  std::printf("\n");
  for (ReorderMethod m :
       {ReorderMethod::kDegSort, ReorderMethod::kBfsOrder,
        ReorderMethod::kGorder, ReorderMethod::kLlp}) {
    Graph ordered = ApplyReordering(vnc.graph, m);
    char label[64];
    std::snprintf(label, sizeof(label), "after VNC + %s", ReorderMethodName(m));
    Report(label, ordered, raw_edges);
  }

  // The same pipeline as one Prepare() call: VNC, then LLP, then encode —
  // ready to serve queries.
  PrepareOptions popt;
  popt.apply_vnc = true;
  popt.reorder = ReorderMethod::kLlp;
  auto session = GcgtSession::Prepare(raw, popt);
  auto bfs = session.value().Run(BfsQuery{0});
  std::printf(
      "\none-call Prepare(VNC + LLP): %u virtual nodes (%.2fx edges), "
      "%.2f bits/edge; BFS in %.4f model ms\n",
      session.value().vnc_virtual_nodes(), session.value().vnc_reduction(),
      session.value().cgr().BitsPerEdge(),
      bfs.ok() ? bfs.value().metrics().model_ms : 0.0);
  std::printf("\nThe uk-2002/uk-2007 rows of bench_fig8_main use exactly this "
              "pipeline with LLP.\n");
  return 0;
}
