// Out-of-core tier walkthrough: shard a graph's CGR encode into partitions,
// persist it as a memory-mappable container file, and serve BFS/CC from the
// container under a resident budget of 25% of the encoded payload — the
// partitions page in on demand (LRU spills, modeled external-tier charges)
// while the answers stay bit-identical to the in-core run.
//
//   $ ./examples/ooc_demo
#include <cstdio>
#include <filesystem>
#include <memory>
#include <utility>

#include "api/gcgt_session.h"
#include "graph/generators.h"
#include "ooc/cgr_container.h"

using namespace gcgt;

int main() {
  // 1. A web-shaped graph (interval-rich, so CGR compresses well).
  WebGraphParams params;
  params.num_nodes = 20000;
  Graph g = GenerateWebGraph(params);
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              (unsigned long long)g.num_edges());

  // 2. Prepare with a partition plan: the CGR encode is sharded across the
  //    thread pool into 8 edge-balanced partitions, byte-identical to the
  //    serial encode.
  PrepareOptions popt;
  popt.ooc_partitions = 8;
  auto session = GcgtSession::Prepare(g, popt);
  if (!session.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const CgrGraph& cgr = session.value().cgr();
  const uint64_t payload = cgr.bits().size();
  std::printf("encoded: %llu bytes in %zu partitions (%.2f bits/edge)\n",
              (unsigned long long)payload, cgr.partitions().size(),
              cgr.BitsPerEdge());

  // 3. Persist the artifact as a container file (atomic write, fingerprinted
  //    header, mmap-able) and reopen it — this is the hand-off point between
  //    a prepare job and a serving tier.
  const std::string path =
      (std::filesystem::temp_directory_path() / "ooc_demo.gcoc").string();
  if (auto s = ooc::WriteCgrContainer(
          cgr, session.value().artifact_fingerprint(), path);
      !s.ok()) {
    std::fprintf(stderr, "container write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto container = ooc::CgrContainer::Open(path);
  if (!container.ok()) {
    std::fprintf(stderr, "container open failed: %s\n",
                 container.status().ToString().c_str());
    return 1;
  }
  std::printf("container: %s, fingerprint %016llx\n",
              container.value().mmapped() ? "mmapped" : "buffered",
              (unsigned long long)container.value().fingerprint());

  // 4. Serve from the container with only 25% of the payload resident: the
  //    pager faults partitions in as the frontier reaches them and spills
  //    LRU partitions when the budget is exceeded.
  auto paged_cgr = container.value().ToCgrGraph();
  if (!paged_cgr.ok()) {
    std::fprintf(stderr, "container decode failed: %s\n",
                 paged_cgr.status().ToString().c_str());
    return 1;
  }
  GcgtOptions gopt;
  gopt.ooc_resident_bytes = payload / 4;
  GcgtSession paged = GcgtSession::Adopt(
      std::make_unique<const CgrGraph>(std::move(paged_cgr).value()), gopt,
      session.value().artifact_fingerprint());

  int mismatches = 0;
  auto run = [&](const char* name, const Query& query) {
    auto r = paged.Run(query, {.backend = Backend::kCgrSimt});
    auto ref = paged.Run(query, {.backend = Backend::kCpuReference});
    if (!r.ok() || !ref.ok()) {
      std::fprintf(stderr, "%s failed\n", name);
      ++mismatches;
      return;
    }
    const bool same =
        r.value().kind() == QueryKind::kBfs
            ? r.value().bfs().depth == ref.value().bfs().depth
            : r.value().cc().component == ref.value().cc().component;
    if (!same) ++mismatches;
    const TraversalMetrics& m = r.value().metrics();
    std::printf(
        "%-3s @25%% budget: %.4f model ms, %llu faults, %llu spills, "
        "peak resident %llu bytes — CPU cross-check %s\n",
        name, m.model_ms, (unsigned long long)m.warp.partition_faults,
        (unsigned long long)m.warp.partition_spills,
        (unsigned long long)m.resident_bytes_peak,
        same ? "matches" : "MISMATCH");
  };
  run("BFS", BfsQuery{0});
  run("CC", CcQuery{});

  std::error_code ec;
  std::filesystem::remove(path, ec);
  return mismatches == 0 ? 0 : 1;
}
