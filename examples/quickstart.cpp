// Quickstart: prepare a graph once into a GcgtSession (CGR compression +
// persistent traversal engine), then serve queries against it — the
// prepare-once / query-many shape the paper's compressed traversal is
// designed for.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "api/gcgt_session.h"
#include "cgr/cgr_decoder.h"
#include "graph/generators.h"

using namespace gcgt;

int main() {
  // 1. Build a graph (here: the example graph of the paper's Fig. 1; any
  //    edge list works — see graph/graph_io.h for file loading).
  Graph g = MakePaperFigure1Graph();
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              (unsigned long long)g.num_edges());

  // 2. Prepare the session ONCE: compresses the graph into CGR (paper
  //    Table 2 defaults: zeta3 codes, min interval length 4, 32-byte
  //    residual segments) and builds the persistent traversal engine every
  //    query reuses. PrepareOptions can also apply virtual-node compression
  //    and node reordering first.
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  if (!session.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const CgrGraph& cgr = session.value().cgr();
  std::printf("CGR: %.2f bits/edge (CSR uses 32), compression rate %.2fx\n",
              cgr.BitsPerEdge(), cgr.CompressionRate());

  // 3. Adjacency lists decode on demand — nothing is ever decompressed into
  //    device memory.
  std::printf("neighbors of node 1:");
  for (NodeId v : DecodeAdjacency(cgr, 1)) std::printf(" %u", v);
  std::printf("\n");

  // 4. Queries are typed values. Run BFS with the full GCGT scheduling
  //    (two-phase + task stealing + warp-centric decoding + residual
  //    segmentation) — no per-query engine or scratch construction.
  auto bfs = session.value().Run(BfsQuery{/*source=*/0});
  if (!bfs.ok()) {
    std::fprintf(stderr, "bfs failed: %s\n", bfs.status().ToString().c_str());
    return 1;
  }
  std::printf("BFS depths from node 0:");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bfs.value().bfs().depth[v] == BfsFilter::kUnvisited) {
      std::printf(" -");
    } else {
      std::printf(" %u", bfs.value().bfs().depth[v]);
    }
  }
  const TraversalMetrics& m = bfs.value().metrics();
  std::printf("\nmodel time: %.4f ms over %d level-kernels; "
              "%llu warp steps, %llu memory transactions\n",
              m.model_ms, m.kernels, (unsigned long long)m.warp.steps,
              (unsigned long long)m.warp.mem_txns);

  // 5. Batches amortize buffer allocation across queries, and backends route
  //    the same query through the uncompressed-CSR baseline or the serial
  //    CPU reference for cross-checks.
  std::vector<Query> batch = {BfsQuery{0}, CcQuery{}, BcQuery{{0}}};
  auto results = session.value().RunBatch(batch);
  auto check = session.value().Run(BfsQuery{0},
                                   {.backend = Backend::kCpuReference});
  if (results.ok() && check.ok()) {
    std::printf("batch: BFS + CC + BC in %.4f model ms; CPU cross-check %s\n",
                results.value()[0].metrics().model_ms +
                    results.value()[1].metrics().model_ms +
                    results.value()[2].metrics().model_ms,
                check.value().bfs().depth == bfs.value().bfs().depth
                    ? "matches"
                    : "MISMATCH");
  }
  return 0;
}
