// Quickstart: build a graph, compress it to CGR, run GCGT BFS on the
// simulated GPU, and inspect compression + execution metrics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "core/bfs.h"
#include "graph/generators.h"

using namespace gcgt;

int main() {
  // 1. Build a graph (here: the example graph of the paper's Fig. 1; any
  //    edge list works — see graph/graph_io.h for file loading).
  Graph g = MakePaperFigure1Graph();
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              (unsigned long long)g.num_edges());

  // 2. Compress it into the CGR format (paper Table 2 defaults: zeta3 codes,
  //    min interval length 4, 32-byte residual segments).
  CgrOptions options;
  auto cgr = CgrGraph::Encode(g, options);
  if (!cgr.ok()) {
    std::fprintf(stderr, "encode failed: %s\n", cgr.status().ToString().c_str());
    return 1;
  }
  std::printf("CGR: %.2f bits/edge (CSR uses 32), compression rate %.2fx\n",
              cgr.value().BitsPerEdge(), cgr.value().CompressionRate());

  // 3. Adjacency lists decode on demand — nothing is ever decompressed into
  //    device memory.
  std::printf("neighbors of node 1:");
  for (NodeId v : DecodeAdjacency(cgr.value(), 1)) std::printf(" %u", v);
  std::printf("\n");

  // 4. Run BFS with the full GCGT scheduling (two-phase + task stealing +
  //    warp-centric decoding + residual segmentation).
  auto bfs = GcgtBfs(cgr.value(), /*source=*/0, GcgtOptions{});
  if (!bfs.ok()) {
    std::fprintf(stderr, "bfs failed: %s\n", bfs.status().ToString().c_str());
    return 1;
  }
  std::printf("BFS depths from node 0:");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bfs.value().depth[v] == BfsFilter::kUnvisited) {
      std::printf(" -");
    } else {
      std::printf(" %u", bfs.value().depth[v]);
    }
  }
  std::printf("\nmodel time: %.4f ms over %d level-kernels; "
              "%llu warp steps, %llu memory transactions\n",
              bfs.value().metrics.model_ms, bfs.value().metrics.kernels,
              (unsigned long long)bfs.value().metrics.warp.steps,
              (unsigned long long)bfs.value().metrics.warp.mem_txns);
  return 0;
}
