#include "reorder/reorder.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>

#include "util/random.h"
#include "util/thread_pool.h"

namespace gcgt {
namespace {

std::vector<NodeId> IdentityOrder(NodeId n) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

std::vector<EdgeId> InDegrees(const Graph& g) {
  std::vector<EdgeId> in_deg(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) ++in_deg[v];
  }
  return in_deg;
}

// Order nodes by descending in-degree (ties by original id, so the result is
// deterministic).
std::vector<NodeId> DegSortOrder(const Graph& g) {
  std::vector<EdgeId> in_deg = InDegrees(g);
  std::vector<NodeId> by_rank(g.num_nodes());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::stable_sort(by_rank.begin(), by_rank.end(), [&](NodeId a, NodeId b) {
    return in_deg[a] > in_deg[b];
  });
  std::vector<NodeId> perm(g.num_nodes());
  for (NodeId rank = 0; rank < g.num_nodes(); ++rank) perm[by_rank[rank]] = rank;
  return perm;
}

// BFS visit order over the undirected view, starting components at their
// highest-degree unvisited node.
std::vector<NodeId> BfsOrder(const Graph& g, const Graph& reverse) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> roots(n);
  std::iota(roots.begin(), roots.end(), 0);
  std::stable_sort(roots.begin(), roots.end(), [&](NodeId a, NodeId b) {
    return g.out_degree(a) > g.out_degree(b);
  });

  std::vector<NodeId> perm(n, kInvalidNode);
  NodeId next_id = 0;
  std::deque<NodeId> queue;
  for (NodeId root : roots) {
    if (perm[root] != kInvalidNode) continue;
    perm[root] = next_id++;
    queue.push_back(root);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      auto visit = [&](NodeId v) {
        if (perm[v] == kInvalidNode) {
          perm[v] = next_id++;
          queue.push_back(v);
        }
      };
      for (NodeId v : g.Neighbors(u)) visit(v);
      for (NodeId v : reverse.Neighbors(u)) visit(v);
    }
  }
  return perm;
}

// Gorder-lite: greedy sequence; a candidate's priority is the number of its
// (undirected) neighbors placed within the last `window` positions. Lazy
// max-heap with stale entries; priorities are decremented when a neighbor
// leaves the window.
std::vector<NodeId> GorderOrder(const Graph& g, const Graph& reverse,
                                int window) {
  const NodeId n = g.num_nodes();
  std::vector<int64_t> priority(n, 0);
  std::vector<uint8_t> placed(n, 0);
  std::vector<NodeId> sequence;
  sequence.reserve(n);

  using Entry = std::pair<int64_t, NodeId>;  // (priority snapshot, node)
  std::priority_queue<Entry> heap;
  // Seed with the globally highest-degree node; the heap lazily self-heals.
  NodeId seed_node = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (g.out_degree(u) > g.out_degree(seed_node)) seed_node = u;
    heap.push({0, u});
  }
  priority[seed_node] = 1;
  heap.push({1, seed_node});

  auto bump = [&](NodeId v, int64_t delta) {
    if (placed[v]) return;
    priority[v] += delta;
    if (delta > 0) heap.push({priority[v], v});
  };

  while (sequence.size() < n) {
    NodeId chosen = kInvalidNode;
    while (!heap.empty()) {
      auto [p, v] = heap.top();
      heap.pop();
      if (placed[v] || p != priority[v]) continue;  // stale entry
      chosen = v;
      break;
    }
    if (chosen == kInvalidNode) {
      // Heap exhausted by staleness; pick the first unplaced node.
      for (NodeId u = 0; u < n; ++u) {
        if (!placed[u]) {
          chosen = u;
          break;
        }
      }
    }
    placed[chosen] = 1;
    sequence.push_back(chosen);
    for (NodeId v : g.Neighbors(chosen)) bump(v, +1);
    for (NodeId v : reverse.Neighbors(chosen)) bump(v, +1);
    // Slide the window: the node leaving it stops contributing.
    if (sequence.size() > static_cast<size_t>(window)) {
      NodeId old = sequence[sequence.size() - window - 1];
      for (NodeId v : g.Neighbors(old)) bump(v, -1);
      for (NodeId v : reverse.Neighbors(old)) bump(v, -1);
    }
  }

  std::vector<NodeId> perm(n);
  for (NodeId rank = 0; rank < n; ++rank) perm[sequence[rank]] = rank;
  return perm;
}

// One label-propagation layer at resolution gamma: nodes adopt the label
// maximizing (#neighbors with label) - gamma * label_volume. Neighbor-label
// tallying uses a timestamped counter array so each update is O(degree).
//
// Parallel schedule (bit-identical to the historical serial loop): the
// shuffled visit order is processed in chunks. A chunk first computes every
// node's proposed label concurrently on the thread pool from the label /
// volume state frozen at chunk start, then commits the proposals serially
// in visit order. A commit is only taken from the speculative pass when
// none of the node's inputs changed earlier in the same chunk — a decision
// depends exactly on the labels of its (out+in) neighbors and the volumes
// of the labels those neighbors hold, so a node is re-evaluated serially
// when any neighbor was relabeled this chunk (node epoch) or any neighbor's
// current label had a volume change this chunk (label epoch). The serial
// re-evaluation runs the exact historical code path, so the result is a
// pure function of (graph, gamma, iterations, rng) for every pool size.

/// Reusable tally scratch: one per worker plus one for serial re-evaluation.
struct LabelTally {
  std::vector<uint32_t> count;
  std::vector<uint32_t> stamp;
  std::vector<NodeId> touched;
  uint32_t current = 0;
};

}  // namespace

namespace internal {

std::vector<NodeId> PropagateLabels(const Graph& g, const Graph& reverse,
                                    double gamma, int iterations, Rng& rng,
                                    ThreadPool* pool) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<uint64_t> volume(n, 1);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);

  const size_t workers = pool != nullptr ? pool->num_threads() : 1;
  std::vector<LabelTally> tallies(workers + 1);  // [workers] = serial scratch
  for (LabelTally& t : tallies) {
    t.count.assign(n, 0);
    t.stamp.assign(n, 0);
  }

  // Evaluates u against the current label/volume state; replicates the
  // historical serial decision exactly (touched order, tie-breaking, the
  // -1 volume adjustment for u's own label). Returns label[u] when u has no
  // neighbors (a committed no-op).
  auto best_label_of = [&](NodeId u, LabelTally& t) -> NodeId {
    ++t.current;
    t.touched.clear();
    auto tally = [&](NodeId v) {
      NodeId lv = label[v];
      if (t.stamp[lv] != t.current) {
        t.stamp[lv] = t.current;
        t.count[lv] = 0;
        t.touched.push_back(lv);
      }
      ++t.count[lv];
    };
    for (NodeId v : g.Neighbors(u)) tally(v);
    for (NodeId v : reverse.Neighbors(u)) tally(v);
    if (t.touched.empty()) return label[u];
    NodeId best = label[u];
    double best_score = -1e300;
    for (NodeId l : t.touched) {
      double vol = static_cast<double>(volume[l]) - (l == label[u] ? 1 : 0);
      double score = static_cast<double>(t.count[l]) - gamma * vol;
      if (score > best_score) {
        best_score = score;
        best = l;
      }
    }
    return best;
  };

  constexpr NodeId kChunk = 2048;
  std::vector<NodeId> proposal(n);
  std::vector<uint32_t> node_epoch(n, 0);   // last chunk that relabeled v
  std::vector<uint32_t> label_epoch(n, 0);  // last chunk that resized volume[l]
  uint32_t chunk_epoch = 0;

  for (int it = 0; it < iterations; ++it) {
    rng.Shuffle(order);
    bool changed = false;
    for (NodeId chunk_begin = 0; chunk_begin < n; chunk_begin += kChunk) {
      const NodeId chunk_end = std::min<NodeId>(n, chunk_begin + kChunk);
      ++chunk_epoch;
      if (pool != nullptr) {
        pool->ParallelFor(
            chunk_end - chunk_begin, 64,
            [&](size_t tid, size_t begin, size_t end) {
              for (size_t i = begin; i < end; ++i) {
                const NodeId pos = chunk_begin + static_cast<NodeId>(i);
                proposal[pos] = best_label_of(order[pos], tallies[tid]);
              }
            });
      }
      for (NodeId pos = chunk_begin; pos < chunk_end; ++pos) {
        const NodeId u = order[pos];
        bool stale = pool == nullptr;
        if (!stale) {
          auto dirty = [&](NodeId v) {
            return node_epoch[v] == chunk_epoch ||
                   label_epoch[label[v]] == chunk_epoch;
          };
          for (NodeId v : g.Neighbors(u)) {
            if (dirty(v)) {
              stale = true;
              break;
            }
          }
          if (!stale) {
            for (NodeId v : reverse.Neighbors(u)) {
              if (dirty(v)) {
                stale = true;
                break;
              }
            }
          }
        }
        const NodeId best =
            stale ? best_label_of(u, tallies[workers]) : proposal[pos];
        if (best != label[u]) {
          --volume[label[u]];
          ++volume[best];
          label_epoch[label[u]] = chunk_epoch;
          label_epoch[best] = chunk_epoch;
          label[u] = best;
          node_epoch[u] = chunk_epoch;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return label;
}

}  // namespace internal

namespace {

std::vector<NodeId> LlpOrder(const Graph& g, const Graph& reverse,
                             uint64_t seed) {
  const NodeId n = g.num_nodes();
  Rng rng(seed);
  // Speculation costs one extra tally per stale node, so only engage the
  // parallel schedule when there is real parallelism to pay for it.
  ThreadPool& shared = SharedThreadPool();
  ThreadPool* pool = shared.num_threads() > 1 ? &shared : nullptr;
  // order[rank] = node; layers refine the ordering fine -> coarse, the
  // coarsest layer applied last forms the primary grouping.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  const double gammas[] = {1.0, 1.0 / 4, 1.0 / 16, 0.0};
  std::vector<NodeId> label_rank(n);
  for (double gamma : gammas) {
    std::vector<NodeId> label =
        internal::PropagateLabels(g, reverse, gamma, 4, rng, pool);
    // Renumber cluster labels by first occurrence in the current order (the
    // LLP trick): sorting then groups each cluster without scrambling the
    // macro order established by earlier layers.
    std::fill(label_rank.begin(), label_rank.end(), kInvalidNode);
    NodeId next_rank = 0;
    for (NodeId node : order) {
      if (label_rank[label[node]] == kInvalidNode) {
        label_rank[label[node]] = next_rank++;
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return label_rank[label[a]] < label_rank[label[b]];
    });
  }
  std::vector<NodeId> perm(n);
  for (NodeId rank = 0; rank < n; ++rank) perm[order[rank]] = rank;
  return perm;
}

}  // namespace

std::vector<NodeId> ComputeOrdering(const Graph& g, ReorderMethod method,
                                    uint64_t seed) {
  if (g.num_nodes() == 0) return {};
  switch (method) {
    case ReorderMethod::kOriginal:
      return IdentityOrder(g.num_nodes());
    case ReorderMethod::kDegSort:
      return DegSortOrder(g);
    case ReorderMethod::kBfsOrder: {
      Graph reverse = g.Reversed();
      return BfsOrder(g, reverse);
    }
    case ReorderMethod::kGorder: {
      Graph reverse = g.Reversed();
      return GorderOrder(g, reverse, /*window=*/5);
    }
    case ReorderMethod::kLlp: {
      Graph reverse = g.Reversed();
      return LlpOrder(g, reverse, seed);
    }
  }
  return IdentityOrder(g.num_nodes());
}

Status ValidatePermutation(const std::vector<NodeId>& perm, NodeId n) {
  if (perm.size() != n) return Status::InvalidArgument("permutation size");
  std::vector<uint8_t> seen(n, 0);
  for (NodeId p : perm) {
    if (p >= n) return Status::InvalidArgument("permutation value out of range");
    if (seen[p]) return Status::InvalidArgument("permutation value repeated");
    seen[p] = 1;
  }
  return Status::OK();
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inv(perm.size());
  for (NodeId old_id = 0; old_id < perm.size(); ++old_id) {
    inv[perm[old_id]] = old_id;
  }
  return inv;
}

Graph ApplyReordering(const Graph& g, ReorderMethod method, uint64_t seed) {
  return g.Relabeled(ComputeOrdering(g, method, seed));
}

}  // namespace gcgt
