// Node reordering methods (paper §7.3 / Appendix D, Fig. 13). Reordering
// changes the locality of neighbor ids and therefore the CGR compression
// rate; it never changes the graph's structure.
//
// Gorder and LLP are faithful-but-simplified reimplementations (see
// DESIGN.md): Gorder keeps the sliding-window greedy with the neighbor score
// (the sibling score is approximated through in-neighbor bumps); LLP runs
// multi-resolution label propagation layers and stable-sorts by cluster.
#ifndef GCGT_REORDER_REORDER_H_
#define GCGT_REORDER_REORDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gcgt {

enum class ReorderMethod {
  kOriginal = 0,
  kDegSort,   ///< descending in-degree ("frequency of being an out-neighbor")
  kBfsOrder,  ///< BFS visit order from high-degree roots [Apostolico-Drovandi]
  kGorder,    ///< sliding-window locality greedy [Wei et al., SIGMOD'16]
  kLlp,       ///< layered label propagation [Boldi et al., WWW'11]
};

inline const char* ReorderMethodName(ReorderMethod m) {
  switch (m) {
    case ReorderMethod::kOriginal: return "Original";
    case ReorderMethod::kDegSort: return "DegSort";
    case ReorderMethod::kBfsOrder: return "BFSOrder";
    case ReorderMethod::kGorder: return "Gorder";
    case ReorderMethod::kLlp: return "LLP";
  }
  return "?";
}

/// Computes the permutation: perm[old_id] = new_id.
std::vector<NodeId> ComputeOrdering(const Graph& g, ReorderMethod method,
                                    uint64_t seed = 42);

/// Checks that perm is a bijection on [0, n).
Status ValidatePermutation(const std::vector<NodeId>& perm, NodeId n);

/// inverse[new_id] = old_id.
std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm);

/// Convenience: relabels g with the method's ordering.
Graph ApplyReordering(const Graph& g, ReorderMethod method, uint64_t seed = 42);

namespace internal {

/// One LLP label-propagation layer (exposed for tests). `pool == nullptr`
/// runs the historical serial loop; any pool produces bit-identical labels
/// via the chunked speculate-then-validate schedule (see reorder.cc).
std::vector<NodeId> PropagateLabels(const Graph& g, const Graph& reverse,
                                    double gamma, int iterations, Rng& rng,
                                    ThreadPool* pool);

}  // namespace internal

}  // namespace gcgt

#endif  // GCGT_REORDER_REORDER_H_
