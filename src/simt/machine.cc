#include "simt/machine.h"

#include <algorithm>
#include <queue>

namespace gcgt::simt {

double Makespan(const std::vector<double>& warp_cycles, int slots) {
  if (warp_cycles.empty()) return 0.0;
  if (slots <= 1) {
    double sum = 0;
    for (double c : warp_cycles) sum += c;
    return sum;
  }
  // Greedy list scheduling in submission order (hardware does not sort work),
  // tracked with a min-heap of slot finish times.
  std::priority_queue<double, std::vector<double>, std::greater<>> finish;
  double makespan = 0.0;
  for (double c : warp_cycles) {
    double start = 0.0;
    if (static_cast<int>(finish.size()) >= slots) {
      start = finish.top();
      finish.pop();
    }
    double end = start + c;
    finish.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

void KernelTimeline::AddKernel(const std::vector<WarpStats>& warps) {
  std::vector<double> cycles;
  cycles.reserve(warps.size());
  for (const WarpStats& w : warps) {
    cycles.push_back(w.Cycles(model_));
    aggregate_ += w;
  }
  total_cycles_ += model_.kernel_launch_cycles + Makespan(cycles, model_.parallel_warp_slots());
  ++num_kernels_;
}

}  // namespace gcgt::simt
