// Kernel-level time model: warps scheduled onto parallel warp slots.
#ifndef GCGT_SIMT_MACHINE_H_
#define GCGT_SIMT_MACHINE_H_

#include <cstdint>
#include <vector>

#include "simt/cost_model.h"
#include "simt/warp.h"

namespace gcgt::simt {

/// Elapsed cycles for one kernel whose warps take `warp_cycles` each, on
/// `slots` parallel warp slots: greedy (list-scheduling) makespan. This is
/// how dynamic warp scheduling behaves and is what surfaces the paper's
/// load-imbalance effects (a few heavy warps dominate the level time).
double Makespan(const std::vector<double>& warp_cycles, int slots);

/// Accumulates per-kernel stats for a multi-kernel computation (e.g. one BFS:
/// one kernel per level).
class KernelTimeline {
 public:
  explicit KernelTimeline(const CostModel& model) : model_(model) {}

  /// Records one kernel launch with the given per-warp stats.
  void AddKernel(const std::vector<WarpStats>& warps);

  /// Forgets everything recorded so far (the cost model stays). Lets one
  /// timeline be reused across queries without reconstruction.
  void Reset() {
    total_cycles_ = 0;
    num_kernels_ = 0;
    aggregate_ = WarpStats{};
  }

  double total_cycles() const { return total_cycles_; }
  double TotalMs() const { return model_.CyclesToMs(total_cycles_); }
  int num_kernels() const { return num_kernels_; }
  const WarpStats& aggregate() const { return aggregate_; }

 private:
  CostModel model_;
  double total_cycles_ = 0;
  int num_kernels_ = 0;
  WarpStats aggregate_;
};

}  // namespace gcgt::simt

#endif  // GCGT_SIMT_MACHINE_H_
