#include "simt/warp.h"

namespace gcgt::simt {

uint64_t CountCacheLines(std::span<const uint64_t> addrs, uint32_t width,
                         int line_bytes) {
  if (addrs.empty() || width == 0) return 0;
  // Warp sizes are tiny (<= 32); collect and count distinct lines inline.
  std::array<uint64_t, 2 * kWarpSize> lines;
  size_t n = 0;
  for (uint64_t a : addrs) {
    uint64_t first = a / line_bytes;
    uint64_t last = (a + width - 1) / line_bytes;
    for (uint64_t l = first; l <= last; ++l) {
      if (n < lines.size()) lines[n++] = l;
    }
  }
  std::sort(lines.begin(), lines.begin() + n);
  uint64_t distinct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || lines[i] != lines[i - 1]) ++distinct;
  }
  return distinct;
}

}  // namespace gcgt::simt
