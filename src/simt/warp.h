// Warp-level accounting context and warp primitives.
//
// Engines express their kernels as explicit lockstep loops over lane arrays
// (the same shape as the paper's Algorithms 1-4) and charge each warp-wide
// operation through this context:
//   Step(active)      one SIMT instruction slot with `active` live lanes
//   MemAccess(addrs)  one warp-wide device-memory access; cost = number of
//                     distinct cache lines (coalescing model, Appendix A)
//   SharedOp()        shared-memory / shuffle / ballot / scan round
//   Atomic(n)         n global atomics
#ifndef GCGT_SIMT_WARP_H_
#define GCGT_SIMT_WARP_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "simt/cost_model.h"

namespace gcgt::simt {

/// Set of cache-line ids touched by one warp execution, tracked in coalesced
/// runs. The coalescing hardware this models merges a warp's lane accesses
/// into whole-line transactions, so the common streams here are *runs* of
/// consecutive lines (frontier loads, interval expansions, decode windows,
/// queue appends) with a scattered minority (label gathers). The structure
/// mirrors that:
///   - a sorted list of disjoint touched intervals holds the coalesced runs
///     (InsertRun merges/extends in one pass, so charging a whole run is
///     O(overlapping intervals), not O(lines));
///   - a flat open-addressed, epoch-stamped table holds the scattered single
///     lines (O(1) Clear, no per-insert allocation);
///   - one-entry filters (the last touched interval and the last single
///     line) absorb consecutive lanes re-hitting the same line, so the L1
///     re-touch case never reaches the table at all.
/// Invariant: every touched line is covered by an interval or live in the
/// table; novel-line counts (the warp's mem_txns) are exact, so the charge
/// is bit-identical to inserting every line one at a time.
/// Line ids must stay below 2^63 (the nominal address bases in
/// memory_layout.h top out near 2^43) so the +1 adjacency probes can't wrap.
class LineSet {
 public:
  LineSet() { ResetTable(kInitialSlots); }

  /// Returns true when `line` was not yet in the set.
  bool Insert(uint64_t line) { return InsertRun(line, 1) != 0; }

  /// Inserts the run [first_line, first_line + n_lines) and returns how many
  /// of its lines were not yet in the set (the cold-line transactions).
  uint64_t InsertRun(uint64_t first_line, uint64_t n_lines) {
    if (n_lines == 0) return 0;
    const uint64_t last_line = first_line + n_lines - 1;
    // One-entry interval filter: streams overwhelmingly re-touch or extend
    // the interval they last touched.
    if (first_line >= run_lo_ && last_line <= run_hi_) return 0;
    if (n_lines < kMinIntervalRun) {
      // Short runs (at 128B lines: line-straddling decode reads, one-warp
      // windows) are charged line by line through the table; materializing
      // an interval for every 2-line straddle would churn the interval
      // vector millions of times per traversal for no lookup benefit.
      uint64_t novel = 0;
      for (uint64_t l = first_line; l <= last_line; ++l) {
        novel += InsertSingle(l);
      }
      return novel;
    }
    return InsertRunSlow(first_line, last_line);
  }

  /// Empties the set in O(1)+O(intervals) by bumping the slot epoch.
  void Clear() {
    size_ = 0;
    hash_used_ = 0;
    hash_min_ = kNoLine;
    hash_max_ = 0;
    intervals_.clear();
    run_lo_ = 1;
    run_hi_ = 0;
    last_line_ = kNoLine;
    // ~0u is the never-live sentinel ResetTable/Grow stamp into empty slots;
    // when the counter reaches it, rewrite the stamps and restart below it.
    if (++epoch_ == ~uint32_t{0}) {
      std::fill(epochs_.begin(), epochs_.end(), ~uint32_t{0});
      epoch_ = 0;
    }
  }

  size_t size() const { return size_; }

 private:
  static constexpr size_t kInitialSlots = 256;
  static constexpr uint64_t kMinIntervalRun = 4;
  static constexpr uint64_t kNoLine = ~uint64_t{0};

  struct Interval {
    uint64_t lo;
    uint64_t hi;  // inclusive
  };

  static size_t Hash(uint64_t x) {
    x *= 0x9e3779b97f4a7c15ull;  // Fibonacci hashing; line ids are dense
    return static_cast<size_t>(x >> 32);
  }

  /// Index of the first interval with hi + 1 >= line (i.e. the first that
  /// could contain, overlap or be left-adjacent to a range starting at
  /// `line`); intervals_.size() when none.
  size_t FindInterval(uint64_t line) const {
    return static_cast<size_t>(
        std::lower_bound(intervals_.begin(), intervals_.end(), line,
                         [](const Interval& iv, uint64_t l) {
                           return iv.hi + 1 < l;
                         }) -
        intervals_.begin());
  }

  uint64_t InsertSingle(uint64_t line) {
    if (line == last_line_) return 0;
    last_line_ = line;
    // Hash first: a re-touched scattered line (the hot miss of the one-entry
    // filters) resolves in one probe, exactly like the pre-run-aware set.
    // Only genuinely cold lines continue to the interval lookup below.
    size_t slot;
    if (HashFind(line, &slot)) return 0;
    const size_t idx = FindInterval(line);
    if (idx < intervals_.size()) {
      Interval& iv = intervals_[idx];
      if (line >= iv.lo && line <= iv.hi) {
        run_lo_ = iv.lo;
        run_hi_ = iv.hi;
        return 0;
      }
      if (line == iv.hi + 1 || line + 1 == iv.lo) {
        // Adjacent to an interval: extend it in place.
        if (line == iv.hi + 1) {
          iv.hi = line;
          if (idx + 1 < intervals_.size() &&
              intervals_[idx + 1].lo == line + 1) {
            iv.hi = intervals_[idx + 1].hi;
            intervals_.erase(intervals_.begin() + idx + 1);
          }
        } else {
          iv.lo = line;
        }
        run_lo_ = iv.lo;
        run_hi_ = iv.hi;
        ++size_;
        return 1;
      }
    }
    // Scattered cold line: place it in the empty slot the probe found.
    lines_[slot] = line;
    epochs_[slot] = epoch_;
    hash_min_ = std::min(hash_min_, line);
    hash_max_ = std::max(hash_max_, line);
    ++hash_used_;
    if (hash_used_ * 4 >= lines_.size() * 3) Grow();
    ++size_;
    return 1;
  }

  uint64_t InsertRunSlow(uint64_t first_line, uint64_t last_line) {
    const size_t idx = FindInterval(first_line);
    uint64_t new_lo = first_line;
    uint64_t new_hi = last_line;
    uint64_t novel = 0;
    uint64_t gap = first_line;  // next line not yet covered by an interval
    size_t j = idx;
    for (; j < intervals_.size() && intervals_[j].lo <= last_line + 1; ++j) {
      const Interval& iv = intervals_[j];
      if (gap <= last_line && iv.lo > gap) {
        novel += NovelInGap(gap, std::min(last_line, iv.lo - 1));
      }
      gap = std::max(gap, iv.hi + 1);
      new_lo = std::min(new_lo, iv.lo);
      new_hi = std::max(new_hi, iv.hi);
    }
    if (gap <= last_line) novel += NovelInGap(gap, last_line);
    // Replace the absorbed intervals [idx, j) with the merged one.
    if (j == idx) {
      intervals_.insert(intervals_.begin() + idx, Interval{new_lo, new_hi});
    } else {
      intervals_[idx] = Interval{new_lo, new_hi};
      intervals_.erase(intervals_.begin() + idx + 1, intervals_.begin() + j);
    }
    run_lo_ = new_lo;
    run_hi_ = new_hi;
    size_ += novel;
    return novel;
  }

  /// [lo, hi] is covered by no interval; counts its lines that are not
  /// already present as scattered singles either. The per-line probe only
  /// runs when the run actually overlaps the table's line bounds — the
  /// nominal address regions (memory_layout.h) are disjoint, so a long run
  /// (queue, COO array) almost never overlaps the scattered label singles.
  uint64_t NovelInGap(uint64_t lo, uint64_t hi) const {
    uint64_t novel = hi - lo + 1;
    if (hash_used_ != 0 && lo <= hash_max_ && hi >= hash_min_) {
      size_t slot;
      for (uint64_t l = lo; l <= hi; ++l) {
        if (HashFind(l, &slot)) --novel;
      }
    }
    return novel;
  }

  /// Probes for `line`; true when present. On a miss, *slot is the empty
  /// slot where it belongs (valid until the next insert or Grow).
  bool HashFind(uint64_t line, size_t* slot) const {
    const size_t mask = lines_.size() - 1;
    size_t i = Hash(line) & mask;
    while (epochs_[i] == epoch_) {
      if (lines_[i] == line) {
        *slot = i;
        return true;
      }
      i = (i + 1) & mask;
    }
    *slot = i;
    return false;
  }

  void ResetTable(size_t slots) {
    lines_.assign(slots, 0);
    epochs_.assign(slots, ~uint32_t{0});
    epoch_ = 0;
    hash_used_ = 0;
  }

  void Grow() {
    std::vector<uint64_t> old_lines = std::move(lines_);
    std::vector<uint32_t> old_epochs = std::move(epochs_);
    const uint32_t old_epoch = epoch_;
    ResetTable(old_lines.size() * 2);
    const size_t mask = lines_.size() - 1;
    for (size_t j = 0; j < old_lines.size(); ++j) {
      if (old_epochs[j] != old_epoch) continue;
      size_t i = Hash(old_lines[j]) & mask;
      while (epochs_[i] == epoch_) i = (i + 1) & mask;
      lines_[i] = old_lines[j];
      epochs_[i] = epoch_;
      ++hash_used_;
    }
  }

  // Coalesced runs: sorted, disjoint, inclusive intervals (adjacent ones are
  // merged on insert).
  std::vector<Interval> intervals_;
  // Scattered singles: open-addressed table with epoch-stamped slots. May
  // hold stale entries later covered by an interval; that is harmless ("in
  // the table" and "covered" both mean touched, and gap counting only probes
  // lines no interval covers).
  std::vector<uint64_t> lines_;
  std::vector<uint32_t> epochs_;
  uint32_t epoch_ = 0;
  size_t hash_used_ = 0;        // live table slots this epoch (incl. stale)
  size_t size_ = 0;             // total distinct lines this epoch
  uint64_t hash_min_ = kNoLine; // line bounds of the table's live entries
  uint64_t hash_max_ = 0;
  // One-entry filters: the last touched interval and the last single line.
  uint64_t run_lo_ = 1;
  uint64_t run_hi_ = 0;
  uint64_t last_line_ = kNoLine;
};

/// Exact per-warp line-dedup filter for one dense array region (labels,
/// offsets, CSR columns...): elements of a fixed power-of-two size packed
/// from an aligned base, so element index -> cache line is a shift and no
/// element straddles a line boundary. Engines pair it with
/// WarpContext::ChargeTransactions to bypass the generic LineSet for these
/// regions: an epoch-stamped direct-index array answers "did this warp
/// already touch that line" in one load. Counting is bit-identical to
/// feeding every access through the LineSet PROVIDED the region's lines are
/// charged exclusively through one filter instance per warp context (the
/// nominal bases in memory_layout.h keep regions line-disjoint).
class DenseRegionFilter {
 public:
  /// `elems_per_line` = line_bytes / element_bytes; must be a power of two
  /// (otherwise call with 0 to disable and keep the generic path).
  void Configure(uint64_t elems_per_line, size_t num_elems) {
    if (elems_per_line == 0 || !std::has_single_bit(elems_per_line)) {
      shift_ = -1;
      return;
    }
    shift_ = std::countr_zero(elems_per_line);
    seen_.assign((num_elems >> shift_) + 1, 0);
    epoch_ = 0;
  }

  bool enabled() const { return shift_ >= 0; }

  /// Starts a new warp epoch (call wherever the paired WarpContext's
  /// TakeStats marks a warp boundary).
  void NextWarp() {
    if (++epoch_ == 0) {  // wrapped: rewrite the stale stamps
      std::fill(seen_.begin(), seen_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Marks element `i`'s line as touched; returns 1 when it was cold.
  uint64_t Touch(size_t i) {
    const size_t l = i >> shift_;
    if (l >= seen_.size()) seen_.resize(l + 1, 0);
    if (seen_[l] == epoch_) return 0;
    seen_[l] = epoch_;
    return 1;
  }

  /// Marks the lines of elements [first, last] (inclusive); returns how
  /// many were cold.
  uint64_t TouchRange(size_t first, size_t last) {
    const size_t lo = first >> shift_;
    const size_t hi = last >> shift_;
    if (hi >= seen_.size()) seen_.resize(hi + 1, 0);
    uint64_t novel = 0;
    for (size_t l = lo; l <= hi; ++l) {
      if (seen_[l] != epoch_) {
        seen_[l] = epoch_;
        ++novel;
      }
    }
    return novel;
  }

 private:
  int shift_ = -1;
  std::vector<uint32_t> seen_;
  uint32_t epoch_ = 0;
};

/// Aggregated per-warp (and, summed, per-kernel) execution statistics.
struct WarpStats {
  uint64_t steps = 0;             ///< issued instruction slots (incl. decode/append)
  uint64_t decode_steps = 0;      ///< slots that perform a VLC decode
  uint64_t append_steps = 0;      ///< slots that perform the filter/append
  uint64_t active_lane_steps = 0; ///< lanes doing useful work in those slots
  uint64_t idle_lane_steps = 0;   ///< divergence / starvation waste
  uint64_t mem_txns = 0;          ///< distinct 128B lines fetched
  uint64_t shared_ops = 0;
  uint64_t atomics = 0;
  // Replay-cache charge class (decoded-adjacency replay of hot vertices).
  // replay_txns is a separate class from mem_txns on purpose: mem_txns keeps
  // meaning "lines of the compressed graph + queue/label regions", so the
  // cache's cost stays explicit instead of silently folded in.
  uint64_t replay_hits = 0;       ///< frontier nodes served from the cache
  uint64_t replay_txns = 0;       ///< replay buffer/directory lines touched
  uint64_t replay_evictions = 0;  ///< entries evicted to admit new ones
  /// 8-byte words spanned by charged decode reads (observability only — not
  /// priced; the lines are already in mem_txns).
  uint64_t decode_words = 0;
  // Out-of-core partition-pager charge class (src/ooc/partition_pager.h).
  // Like replay_txns, the external-tier traffic is its own class so mem_txns
  // keeps meaning "device-resident lines": a fault streams a non-resident
  // partition's compressed bytes in from the external tier, a spill writes a
  // victim's bytes back, and both are priced at cycles_per_mem_txn *
  // external_latency_multiplier. Pins are observability only (not priced):
  // the number of distinct partitions a round held resident.
  uint64_t partition_faults = 0;  ///< non-resident partitions faulted in
  uint64_t partition_spills = 0;  ///< resident partitions evicted to fit
  uint64_t partition_pins = 0;    ///< partitions pinned by a round's frontier
  uint64_t fault_txns = 0;        ///< external-tier lines moved by faults
  uint64_t spill_txns = 0;        ///< external-tier lines moved by spills
  // Compressed set-intersection charge class (src/intersect): warp-wide
  // intersection operations — interval-pair overlap tests, residual
  // membership probes, element-merge and segment-skip steps. A separate
  // class (priced at cycles_per_intersect_op) so intersection work never
  // masquerades as decode or memory traffic and the decode-free savings
  // stay visible in the model.
  uint64_t intersect_txns = 0;    ///< warp-wide set-intersection operations

  double Cycles(const CostModel& m) const {
    // decode/append slots are priced at their own rates.
    return m.cycles_per_step *
               static_cast<double>(steps - decode_steps - append_steps) +
           m.cycles_per_decode_step * static_cast<double>(decode_steps) +
           m.cycles_per_append_step * static_cast<double>(append_steps) +
           m.cycles_per_shared_op * static_cast<double>(shared_ops) +
           m.cycles_per_mem_txn * static_cast<double>(mem_txns) +
           m.cycles_per_atomic * static_cast<double>(atomics) +
           m.cycles_per_replay_txn * static_cast<double>(replay_txns) +
           m.cycles_per_intersect_op * static_cast<double>(intersect_txns) +
           m.cycles_per_mem_txn * m.external_latency_multiplier *
               static_cast<double>(fault_txns + spill_txns);
  }

  WarpStats& operator+=(const WarpStats& o) {
    steps += o.steps;
    decode_steps += o.decode_steps;
    append_steps += o.append_steps;
    active_lane_steps += o.active_lane_steps;
    idle_lane_steps += o.idle_lane_steps;
    mem_txns += o.mem_txns;
    shared_ops += o.shared_ops;
    atomics += o.atomics;
    replay_hits += o.replay_hits;
    replay_txns += o.replay_txns;
    replay_evictions += o.replay_evictions;
    decode_words += o.decode_words;
    partition_faults += o.partition_faults;
    partition_spills += o.partition_spills;
    partition_pins += o.partition_pins;
    fault_txns += o.fault_txns;
    spill_txns += o.spill_txns;
    intersect_txns += o.intersect_txns;
    return *this;
  }

  /// SIMT efficiency: fraction of lane-slots doing useful work.
  double LaneEfficiency() const {
    uint64_t total = active_lane_steps + idle_lane_steps;
    return total ? static_cast<double>(active_lane_steps) / total : 1.0;
  }

  bool operator==(const WarpStats&) const = default;
};

/// Counts the distinct cache lines covered by byte ranges [addr, addr+width).
uint64_t CountCacheLines(std::span<const uint64_t> addrs, uint32_t width,
                         int line_bytes);

/// Reconstructs one warp's decision-dependent queue-append transactions
/// without replaying its full LineSet. Valid because the nominal address
/// regions (memory_layout.h) are line-disjoint, so of a warp's queue-region
/// lines exactly two runs can already be warm when an append happens: the
/// input-queue prefix it loaded at chunk start, and the contiguous output
/// run of its earlier appends. Feed every append (in slot order) through
/// Charge(); it returns the cold-line transactions to add to WarpStats.
class QueueAppendCharges {
 public:
  QueueAppendCharges(uint64_t queue_base, uint32_t elem_bytes, int line_bytes,
                     uint64_t in_queue_elems)
      : base_(queue_base),
        elem_(elem_bytes),
        line_(line_bytes),
        in_last_((queue_base + elem_bytes * in_queue_elems - 1) / line_bytes) {}

  /// `count` elements appended at global queue offset `tail` (elements).
  uint64_t Charge(uint64_t tail, uint64_t count) {
    if (count == 0) return 0;
    const uint64_t lo = (base_ + elem_ * tail) / line_;
    const uint64_t hi = (base_ + elem_ * tail + elem_ * count - 1) / line_;
    uint64_t txns = 0;
    for (uint64_t l = lo; l <= hi; ++l) {
      const bool touched =
          l <= in_last_ || (out_any_ && l >= out_lo_ && l <= out_hi_);
      if (!touched) ++txns;
    }
    if (!out_any_) {
      out_lo_ = lo;
      out_any_ = true;
    }
    out_hi_ = std::max(out_hi_, hi);
    return txns;
  }

 private:
  uint64_t base_;
  uint64_t elem_;
  uint64_t line_;
  uint64_t in_last_;
  uint64_t out_lo_ = 0;
  uint64_t out_hi_ = 0;
  bool out_any_ = false;
};

/// Per-warp accounting + warp-synchronous primitives. `num_lanes` is 32 in
/// production; tests reproducing the paper's figures use 8 or 16.
class WarpContext {
 public:
  explicit WarpContext(int num_lanes = kWarpSize, int cache_line_bytes = 128)
      : num_lanes_(num_lanes),
        line_bytes_(static_cast<uint64_t>(cache_line_bytes)),
        line_shift_(
            std::has_single_bit(static_cast<uint64_t>(cache_line_bytes))
                ? std::countr_zero(static_cast<uint64_t>(cache_line_bytes))
                : -1) {
    ClearRecent();
  }

  int num_lanes() const { return num_lanes_; }

  /// One instruction slot; `active` lanes execute, the rest are idle.
  void Step(int active) {
    stats_.steps += 1;
    stats_.active_lane_steps += static_cast<uint64_t>(active);
    stats_.idle_lane_steps += static_cast<uint64_t>(num_lanes_ - active);
  }

  /// One VLC-decode slot (priced at CostModel::cycles_per_decode_step).
  void DecodeStep(int active) {
    Step(active);
    stats_.decode_steps += 1;
  }

  /// One filter/append slot (priced at CostModel::cycles_per_append_step).
  void AppendStepOp(int active) {
    Step(active);
    stats_.append_steps += 1;
  }

  /// Warp-wide access to per-lane addresses; charges one transaction per
  /// distinct cache line not yet touched by this warp (L1 reuse model).
  /// Adjacent-lane line ranges (the common, coalesced case: sorted per-lane
  /// addresses) are merged into runs on the fly and charged whole, so the
  /// per-line walk only happens inside LineSet's scattered fallback.
  void MemAccess(std::span<const uint64_t> addrs, uint32_t width) {
    MemAccessIndexed(addrs.size(), width,
                     [addrs](size_t i) { return addrs[i]; });
  }

  /// Warp-wide access where each lane touches its own byte range
  /// [first, second] (inclusive); used for variable-width VLC decode reads.
  void MemAccessRanges(std::span<const std::pair<uint64_t, uint64_t>> ranges) {
    if (ranges.empty()) return;
    uint64_t run_lo = LineOf(ranges[0].first);
    uint64_t run_hi = LineOf(ranges[0].second);
    for (size_t i = 1; i < ranges.size(); ++i) {
      const uint64_t lo = LineOf(ranges[i].first);
      const uint64_t hi = LineOf(ranges[i].second);
      if (lo <= run_hi + 1 && hi + 1 >= run_lo) {
        run_lo = std::min(run_lo, lo);
        run_hi = std::max(run_hi, hi);
      } else {
        TouchRun(run_lo, run_hi);
        run_lo = lo;
        run_hi = hi;
      }
    }
    TouchRun(run_lo, run_hi);
  }

  /// Warp-wide access to one contiguous range (e.g. queue append).
  void MemAccessRange(uint64_t addr, uint64_t bytes) {
    if (bytes == 0) return;
    TouchRun(LineOf(addr), LineOf(addr + bytes - 1));
  }

  /// MemAccess over computed per-lane addresses: addr_of(i) for i in
  /// [0, count). Same semantics (and bit-identical charges) as materializing
  /// the addresses and calling MemAccess; inlining the generator lets hot
  /// callers charge a gather without building an address vector first.
  template <typename AddrFn>
  void MemAccessIndexed(size_t count, uint32_t width, AddrFn addr_of) {
    if (width == 0 || count == 0) return;
    const uint64_t first = addr_of(size_t{0});
    uint64_t run_lo = LineOf(first);
    uint64_t run_hi = LineOf(first + width - 1);
    for (size_t i = 1; i < count; ++i) {
      const uint64_t a = addr_of(i);
      const uint64_t lo = LineOf(a);
      const uint64_t hi = LineOf(a + width - 1);
      if (lo <= run_hi + 1 && hi + 1 >= run_lo) {
        run_lo = std::min(run_lo, lo);
        run_hi = std::max(run_hi, hi);
      } else {
        TouchRun(run_lo, run_hi);
        run_lo = lo;
        run_hi = hi;
      }
    }
    TouchRun(run_lo, run_hi);
  }

  void SharedOp(int count = 1) { stats_.shared_ops += count; }
  void Atomic(int count = 1) { stats_.atomics += count; }

  // ---- Replay-cache charge class + decode observability.
  void ReplayHits(uint64_t count) { stats_.replay_hits += count; }
  /// Replay buffer/directory lines, charged without L1 dedup (the buffer is
  /// read streaming, once per hit). Priced at cycles_per_replay_txn.
  void ReplayTxns(uint64_t count) { stats_.replay_txns += count; }
  void ReplayEvictions(uint64_t count) { stats_.replay_evictions += count; }
  void DecodeWords(uint64_t count) { stats_.decode_words += count; }
  /// Compressed set-intersection operations (priced at
  /// cycles_per_intersect_op; see WarpStats::intersect_txns).
  void IntersectOps(uint64_t count) { stats_.intersect_txns += count; }

  /// Directly charges `count` memory transactions for lines the caller
  /// guarantees are distinct and not yet touched by this warp. Engines use
  /// this with their own exact per-warp line filters (e.g. the dense
  /// label-region epoch filter) to bypass the generic set for regions whose
  /// deduplication they can prove cheaper themselves. The lines MUST NOT be
  /// charged again through MemAccess* this warp, or they would double count.
  void ChargeTransactions(uint64_t count) { stats_.mem_txns += count; }

  const WarpStats& stats() const { return stats_; }
  WarpStats TakeStats() {
    WarpStats s = stats_;
    stats_ = WarpStats{};
    touched_lines_.Clear();
    ClearRecent();
    return s;
  }

  // ---- Warp-synchronous primitives (functional forms of __shfl_sync etc.).
  // They charge one shared op each, mirroring the "very low communication
  // cost" of intra-warp collaboration (paper §5.1).

  /// exclusiveScan of the paper: returns (scatter[i], total).
  template <typename T>
  T ExclusiveScan(std::span<const T> values, std::span<T> scatter) {
    SharedOp();
    T total = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      scatter[i] = total;
      total += values[i];
    }
    return total;
  }

  /// syncAny: true if any active lane's predicate holds.
  bool Any(std::span<const uint8_t> pred) {
    SharedOp();
    return std::any_of(pred.begin(), pred.end(), [](uint8_t p) { return p != 0; });
  }

  /// syncAll over the active lanes.
  bool All(std::span<const uint8_t> pred) {
    SharedOp();
    return std::all_of(pred.begin(), pred.end(), [](uint8_t p) { return p != 0; });
  }

  /// shfl: broadcast lane src_lane's value to the warp.
  template <typename T>
  T Shfl(std::span<const T> values, int src_lane) {
    SharedOp();
    return values[src_lane];
  }

 private:
  /// Cache line of a byte address. line_bytes is a power of two in every
  /// real configuration, so this is a shift; the division fallback keeps
  /// exotic line sizes working.
  uint64_t LineOf(uint64_t addr) const {
    return line_shift_ >= 0 ? addr >> line_shift_ : addr / line_bytes_;
  }

  /// Charges the cold lines of the inclusive line run [first_line,
  /// last_line] in one batched LineSet operation, behind a direct-mapped
  /// recently-charged-run cache: every lane re-reading the line it was
  /// already working on (decode streams, queue windows — the overwhelming
  /// majority of the warp's accesses under the L1 reuse model) resolves in
  /// two comparisons without reaching the set. Skipping is always exact: a
  /// cached run was fully inserted, so a covered query has zero cold lines.
  void TouchRun(uint64_t first_line, uint64_t last_line) {
    const size_t slot = static_cast<size_t>(first_line) & (kRecentSlots - 1);
    if (first_line >= recent_lo_[slot] && last_line <= recent_hi_[slot]) {
      return;
    }
    stats_.mem_txns +=
        touched_lines_.InsertRun(first_line, last_line - first_line + 1);
    recent_lo_[slot] = first_line;
    recent_hi_[slot] = last_line;
  }

  void ClearRecent() {
    recent_lo_.fill(1);
    recent_hi_.fill(0);
  }

  static constexpr size_t kRecentSlots = 256;

  int num_lanes_;
  uint64_t line_bytes_;
  int line_shift_;
  WarpStats stats_;
  LineSet touched_lines_;
  // Direct-mapped (by first line id) cache of recently charged line runs.
  std::array<uint64_t, kRecentSlots> recent_lo_;
  std::array<uint64_t, kRecentSlots> recent_hi_;
};

}  // namespace gcgt::simt

#endif  // GCGT_SIMT_WARP_H_
