// Warp-level accounting context and warp primitives.
//
// Engines express their kernels as explicit lockstep loops over lane arrays
// (the same shape as the paper's Algorithms 1-4) and charge each warp-wide
// operation through this context:
//   Step(active)      one SIMT instruction slot with `active` live lanes
//   MemAccess(addrs)  one warp-wide device-memory access; cost = number of
//                     distinct cache lines (coalescing model, Appendix A)
//   SharedOp()        shared-memory / shuffle / ballot / scan round
//   Atomic(n)         n global atomics
#ifndef GCGT_SIMT_WARP_H_
#define GCGT_SIMT_WARP_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "simt/cost_model.h"

namespace gcgt::simt {

/// Flat open-addressed set of cache-line ids, replacing the per-warp
/// std::unordered_set line tracker. Warps touch at most a few hundred
/// distinct lines, so a small power-of-two table with linear probing and
/// epoch-stamped slots (O(1) Clear, no rehash-free churn, no per-insert
/// allocation) is much cheaper than node-based hashing in the traversal hot
/// path.
class LineSet {
 public:
  LineSet() { Reset(kInitialSlots); }

  /// Returns true when `line` was not yet in the set.
  bool Insert(uint64_t line) {
    const size_t mask = lines_.size() - 1;
    size_t i = Hash(line) & mask;
    while (epochs_[i] == epoch_) {
      if (lines_[i] == line) return false;
      i = (i + 1) & mask;
    }
    lines_[i] = line;
    epochs_[i] = epoch_;
    ++size_;
    if (size_ * 4 >= lines_.size() * 3) Grow();
    return true;
  }

  /// Empties the set in O(1) by bumping the slot epoch.
  void Clear() {
    size_ = 0;
    // ~0u is the never-live sentinel Reset/Grow stamp into empty slots; when
    // the counter reaches it, rewrite the stamps and restart below it.
    if (++epoch_ == ~uint32_t{0}) {
      std::fill(epochs_.begin(), epochs_.end(), ~uint32_t{0});
      epoch_ = 0;
    }
  }

  size_t size() const { return size_; }

 private:
  static constexpr size_t kInitialSlots = 256;

  static size_t Hash(uint64_t x) {
    x *= 0x9e3779b97f4a7c15ull;  // Fibonacci hashing; line ids are dense
    return static_cast<size_t>(x >> 32);
  }

  void Reset(size_t slots) {
    lines_.assign(slots, 0);
    epochs_.assign(slots, ~uint32_t{0});
    epoch_ = 0;
    size_ = 0;
  }

  void Grow() {
    std::vector<uint64_t> old_lines = std::move(lines_);
    std::vector<uint32_t> old_epochs = std::move(epochs_);
    const uint32_t old_epoch = epoch_;
    Reset(old_lines.size() * 2);
    const size_t mask = lines_.size() - 1;
    for (size_t j = 0; j < old_lines.size(); ++j) {
      if (old_epochs[j] != old_epoch) continue;
      size_t i = Hash(old_lines[j]) & mask;
      while (epochs_[i] == epoch_) i = (i + 1) & mask;
      lines_[i] = old_lines[j];
      epochs_[i] = epoch_;
      ++size_;
    }
  }

  std::vector<uint64_t> lines_;
  std::vector<uint32_t> epochs_;
  uint32_t epoch_ = 0;
  size_t size_ = 0;
};

/// Aggregated per-warp (and, summed, per-kernel) execution statistics.
struct WarpStats {
  uint64_t steps = 0;             ///< issued instruction slots (incl. decode/append)
  uint64_t decode_steps = 0;      ///< slots that perform a VLC decode
  uint64_t append_steps = 0;      ///< slots that perform the filter/append
  uint64_t active_lane_steps = 0; ///< lanes doing useful work in those slots
  uint64_t idle_lane_steps = 0;   ///< divergence / starvation waste
  uint64_t mem_txns = 0;          ///< distinct 128B lines fetched
  uint64_t shared_ops = 0;
  uint64_t atomics = 0;

  double Cycles(const CostModel& m) const {
    // decode/append slots are priced at their own rates.
    return m.cycles_per_step *
               static_cast<double>(steps - decode_steps - append_steps) +
           m.cycles_per_decode_step * static_cast<double>(decode_steps) +
           m.cycles_per_append_step * static_cast<double>(append_steps) +
           m.cycles_per_shared_op * static_cast<double>(shared_ops) +
           m.cycles_per_mem_txn * static_cast<double>(mem_txns) +
           m.cycles_per_atomic * static_cast<double>(atomics);
  }

  WarpStats& operator+=(const WarpStats& o) {
    steps += o.steps;
    decode_steps += o.decode_steps;
    append_steps += o.append_steps;
    active_lane_steps += o.active_lane_steps;
    idle_lane_steps += o.idle_lane_steps;
    mem_txns += o.mem_txns;
    shared_ops += o.shared_ops;
    atomics += o.atomics;
    return *this;
  }

  /// SIMT efficiency: fraction of lane-slots doing useful work.
  double LaneEfficiency() const {
    uint64_t total = active_lane_steps + idle_lane_steps;
    return total ? static_cast<double>(active_lane_steps) / total : 1.0;
  }

  bool operator==(const WarpStats&) const = default;
};

/// Counts the distinct cache lines covered by byte ranges [addr, addr+width).
uint64_t CountCacheLines(std::span<const uint64_t> addrs, uint32_t width,
                         int line_bytes);

/// Reconstructs one warp's decision-dependent queue-append transactions
/// without replaying its full LineSet. Valid because the nominal address
/// regions (memory_layout.h) are line-disjoint, so of a warp's queue-region
/// lines exactly two runs can already be warm when an append happens: the
/// input-queue prefix it loaded at chunk start, and the contiguous output
/// run of its earlier appends. Feed every append (in slot order) through
/// Charge(); it returns the cold-line transactions to add to WarpStats.
class QueueAppendCharges {
 public:
  QueueAppendCharges(uint64_t queue_base, uint32_t elem_bytes, int line_bytes,
                     uint64_t in_queue_elems)
      : base_(queue_base),
        elem_(elem_bytes),
        line_(line_bytes),
        in_last_((queue_base + elem_bytes * in_queue_elems - 1) / line_bytes) {}

  /// `count` elements appended at global queue offset `tail` (elements).
  uint64_t Charge(uint64_t tail, uint64_t count) {
    if (count == 0) return 0;
    const uint64_t lo = (base_ + elem_ * tail) / line_;
    const uint64_t hi = (base_ + elem_ * tail + elem_ * count - 1) / line_;
    uint64_t txns = 0;
    for (uint64_t l = lo; l <= hi; ++l) {
      const bool touched =
          l <= in_last_ || (out_any_ && l >= out_lo_ && l <= out_hi_);
      if (!touched) ++txns;
    }
    if (!out_any_) {
      out_lo_ = lo;
      out_any_ = true;
    }
    out_hi_ = std::max(out_hi_, hi);
    return txns;
  }

 private:
  uint64_t base_;
  uint64_t elem_;
  uint64_t line_;
  uint64_t in_last_;
  uint64_t out_lo_ = 0;
  uint64_t out_hi_ = 0;
  bool out_any_ = false;
};

/// Per-warp accounting + warp-synchronous primitives. `num_lanes` is 32 in
/// production; tests reproducing the paper's figures use 8 or 16.
class WarpContext {
 public:
  explicit WarpContext(int num_lanes = kWarpSize, int cache_line_bytes = 128)
      : num_lanes_(num_lanes), line_bytes_(cache_line_bytes) {}

  int num_lanes() const { return num_lanes_; }

  /// One instruction slot; `active` lanes execute, the rest are idle.
  void Step(int active) {
    stats_.steps += 1;
    stats_.active_lane_steps += static_cast<uint64_t>(active);
    stats_.idle_lane_steps += static_cast<uint64_t>(num_lanes_ - active);
  }

  /// One VLC-decode slot (priced at CostModel::cycles_per_decode_step).
  void DecodeStep(int active) {
    Step(active);
    stats_.decode_steps += 1;
  }

  /// One filter/append slot (priced at CostModel::cycles_per_append_step).
  void AppendStepOp(int active) {
    Step(active);
    stats_.append_steps += 1;
  }

  /// Warp-wide access to per-lane addresses; charges one transaction per
  /// distinct cache line not yet touched by this warp (L1 reuse model).
  void MemAccess(std::span<const uint64_t> addrs, uint32_t width) {
    if (width == 0) return;
    for (uint64_t a : addrs) {
      uint64_t first = a / line_bytes_;
      uint64_t last = (a + width - 1) / line_bytes_;
      for (uint64_t l = first; l <= last; ++l) TouchLine(l);
    }
  }

  /// Warp-wide access where each lane touches its own byte range
  /// [first, second] (inclusive); used for variable-width VLC decode reads.
  void MemAccessRanges(std::span<const std::pair<uint64_t, uint64_t>> ranges) {
    for (const auto& [lo, hi] : ranges) {
      for (uint64_t l = lo / line_bytes_; l <= hi / line_bytes_; ++l) {
        TouchLine(l);
      }
    }
  }

  /// Warp-wide access to one contiguous range (e.g. queue append).
  void MemAccessRange(uint64_t addr, uint64_t bytes) {
    if (bytes == 0) return;
    uint64_t first = addr / line_bytes_;
    uint64_t last = (addr + bytes - 1) / line_bytes_;
    for (uint64_t l = first; l <= last; ++l) TouchLine(l);
  }

  void SharedOp(int count = 1) { stats_.shared_ops += count; }
  void Atomic(int count = 1) { stats_.atomics += count; }

  const WarpStats& stats() const { return stats_; }
  WarpStats TakeStats() {
    WarpStats s = stats_;
    stats_ = WarpStats{};
    touched_lines_.Clear();
    return s;
  }

  // ---- Warp-synchronous primitives (functional forms of __shfl_sync etc.).
  // They charge one shared op each, mirroring the "very low communication
  // cost" of intra-warp collaboration (paper §5.1).

  /// exclusiveScan of the paper: returns (scatter[i], total).
  template <typename T>
  T ExclusiveScan(std::span<const T> values, std::span<T> scatter) {
    SharedOp();
    T total = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      scatter[i] = total;
      total += values[i];
    }
    return total;
  }

  /// syncAny: true if any active lane's predicate holds.
  bool Any(std::span<const uint8_t> pred) {
    SharedOp();
    return std::any_of(pred.begin(), pred.end(), [](uint8_t p) { return p != 0; });
  }

  /// syncAll over the active lanes.
  bool All(std::span<const uint8_t> pred) {
    SharedOp();
    return std::all_of(pred.begin(), pred.end(), [](uint8_t p) { return p != 0; });
  }

  /// shfl: broadcast lane src_lane's value to the warp.
  template <typename T>
  T Shfl(std::span<const T> values, int src_lane) {
    SharedOp();
    return values[src_lane];
  }

 private:
  void TouchLine(uint64_t line) {
    if (touched_lines_.Insert(line)) stats_.mem_txns += 1;
  }

  int num_lanes_;
  int line_bytes_;
  WarpStats stats_;
  LineSet touched_lines_;
};

}  // namespace gcgt::simt

#endif  // GCGT_SIMT_WARP_H_
