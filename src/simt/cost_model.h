// Cost model of the simulated GPU (TITAN V flavored).
//
// The paper's techniques are scheduling techniques: their effect is fewer
// serialized instruction slots, fewer idle lanes and fewer / better-coalesced
// device-memory transactions. The simulator counts exactly those quantities
// per warp and converts them to time; elapsed kernel time is the makespan of
// the warps over the machine's parallel warp slots (see machine.h). Absolute
// times are model time; the paper-reproduction claims are about relative
// behaviour (see EXPERIMENTS.md).
#ifndef GCGT_SIMT_COST_MODEL_H_
#define GCGT_SIMT_COST_MODEL_H_

#include <cstdint>

namespace gcgt::simt {

/// Lanes per warp. Fixed at 32 like all CUDA hardware; the engines accept a
/// smaller lane count for unit tests that reproduce the paper's 8-lane
/// examples (Fig. 4).
inline constexpr int kWarpSize = 32;

struct CostModel {
  // Per warp-wide operation charges, in cycles.
  double cycles_per_step = 1.0;        ///< one issued instruction slot
  /// One warp-wide VLC-decode slot: unary scan + bit extraction is a multi-
  /// instruction sequence, priced separately so the paper's decode-vs-memory
  /// trade-off (Fig. 8: GCGT pays decode instructions to save bandwidth) is
  /// represented honestly.
  double cycles_per_decode_step = 20.0;
  /// One warp-wide append slot: visited check + contraction offsets +
  /// conditional output is likewise a multi-instruction sequence.
  double cycles_per_append_step = 12.0;
  double cycles_per_shared_op = 4.0;   ///< shared-memory round trip / shuffle
  /// First touch of a 128-byte device-memory line by a warp. Repeated
  /// touches within one warp execution hit L1 and are free (the warp context
  /// deduplicates lines).
  double cycles_per_mem_txn = 24.0;
  double cycles_per_atomic = 24.0;     ///< one global atomic
  /// One line of the decoded-adjacency replay buffer/directory. Same price
  /// as a device-memory line: the replay buffer lives in device memory too —
  /// its win is fewer decode slots and dense (4B/edge) streaming reads, not
  /// cheaper bytes. A separate knob so "what if replay hit L2" stays a
  /// modelable question.
  double cycles_per_replay_txn = 24.0;
  /// One warp-wide compressed set-intersection operation (src/intersect): an
  /// interval-pair overlap test, a residual membership probe against an
  /// interval, or one element-merge / segment-skip step of a
  /// residual-vs-residual merge. Its own class (like replay/external) so the
  /// decode-free-vs-full-decode trade-off stays explicit in the model: the
  /// ops are cheap ALU work, priced well below a decode slot.
  double cycles_per_intersect_op = 2.0;
  /// External-tier (out-of-core) latency: one line moved by a partition
  /// fault or spill costs cycles_per_mem_txn * this multiplier. 8x models a
  /// CXL/NVLink-class external memory a small integer factor slower than
  /// device HBM (PAPERS.md: EMOGI, the CXL external-memory study); raise it
  /// toward ~100x to model PCIe paging instead. Only the PartitionPager's
  /// fault_txns/spill_txns are priced with it — in-core traffic never is.
  double external_latency_multiplier = 8.0;
  double kernel_launch_cycles = 3000;  ///< fixed cost per kernel launch

  int cache_line_bytes = 128;

  // Machine shape.
  int num_sms = 80;
  int warps_per_sm = 8;  ///< warp slots that contribute parallel throughput
  double clock_ghz = 1.2;

  int parallel_warp_slots() const { return num_sms * warps_per_sm; }
  double CyclesToMs(double cycles) const { return cycles / (clock_ghz * 1e6); }
};

/// Simulated device memory capacity. 12 GB in the paper; benches scale it by
/// the paper's capacity ratio (12 GB / twitter CSR bytes) applied to the
/// synthetic datasets so the same engines OOM in the same places.
struct DeviceSpec {
  uint64_t memory_bytes = 12ull << 30;
};

}  // namespace gcgt::simt

#endif  // GCGT_SIMT_COST_MODEL_H_
