// Capacity-bounded decoded-adjacency replay cache for hot vertices.
//
// The decode hot loop pays VLC/byte-codec work every time a vertex enters a
// frontier. Vertices that keep re-entering (CC fixpoint rounds, the forward
// and backward sweeps of every BC source) can instead replay their decoded
// adjacency from a flat device buffer; the SIMT engines charge those reads
// as the dedicated WarpStats::replay_txns class (see cost_model.h).
//
// The per-node decision state (touch counts, resident/rejected flags) is
// dense — O(1) array reads on the per-frontier-node hot path, no hashing
// except for resident entries — sized once at Configure from the graph's
// node count.
//
// Determinism contract: every decision (touch counting, admission, LRU
// eviction) is made serially in frontier order by the engine's round
// prologue/epilogue, and the cache is invalidated at query start
// (TraversalPipeline::Reset -> CgrTraversalEngine::ResetReplay), so a
// query's results and metrics depend only on the graph, options and query —
// never on thread count or on what ran before it.
#ifndef GCGT_CORE_REPLAY_CACHE_H_
#define GCGT_CORE_REPLAY_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gcgt {

class ReplayCache {
 public:
  /// Modeled bytes of an entry beyond its neighbor ids (directory slot:
  /// node id, offset, length, LRU links).
  static constexpr uint64_t kEntryOverheadBytes = 32;

  void Configure(uint64_t capacity_bytes, int min_degree, int min_touches,
                 uint64_t num_nodes) {
    capacity_ = capacity_bytes;
    min_degree_ = min_degree < 0 ? 0 : static_cast<uint64_t>(min_degree);
    min_touches_ = min_touches < 1 ? 1 : static_cast<uint32_t>(min_touches);
    if (enabled()) {
      touches_.assign(num_nodes, 0);
      flags_.assign(num_nodes, 0);
      index_.assign(num_nodes, {});
    }
    Reset();
  }

  bool enabled() const { return capacity_ > 0; }
  uint64_t size_bytes() const { return size_bytes_; }
  uint64_t capacity_bytes() const { return capacity_; }

  /// Re-bounds the capacity without re-sizing the per-node state arrays,
  /// evicting LRU entries until the resident set fits. The serving tier's
  /// brownout mode shrinks (and later restores) the budget this way between
  /// queries; callers must never raise the capacity above the value the
  /// arrays were Configure()d for enablement with (the engine caps at
  /// min(configured, cap), so this cannot happen from the service path).
  void SetCapacity(uint64_t capacity_bytes) {
    capacity_ = capacity_bytes;
    while (size_bytes_ > capacity_ && !lru_.empty()) {
      Entry& victim = lru_.back();
      size_bytes_ -= EntryBytes(victim.adj.size());
      flags_[victim.u] &= static_cast<uint8_t>(~kResident);
      lru_.pop_back();
    }
  }

  /// Epoch invalidation: drops all entries and touch counts. Called at every
  /// query start so cross-query state can never leak into results/metrics.
  void Reset() {
    lru_.clear();
    std::fill(touches_.begin(), touches_.end(), 0u);
    // Per-epoch bits clear; the prepare-time degree pre-gate survives.
    for (uint8_t& f : flags_) f &= kPermaReject;
    size_bytes_ = 0;
  }

  /// Records a frontier touch of u and returns its cached adjacency if
  /// resident (refreshing LRU recency), else nullptr.
  const std::vector<NodeId>* Touch(NodeId u) {
    ++touches_[u];
    if ((flags_[u] & kResident) == 0) return nullptr;
    lru_.splice(lru_.begin(), lru_, index_[u]);
    return &index_[u]->adj;
  }

  /// True when the engine should capture-and-admit u this round: touch gate
  /// met (counting the Touch() just made), not already resident, and not
  /// previously rejected (degree gate / could-never-fit) this epoch — the
  /// negative flag keeps a hot-but-small vertex from being re-captured every
  /// round.
  bool WantsAdmit(NodeId u) const {
    return enabled() && flags_[u] == 0 && touches_[u] >= min_touches_;
  }

  bool MeetsDegreeGate(uint64_t degree) const { return degree >= min_degree_; }

  /// Marks u as not-admittable for the rest of this epoch (used by the
  /// engine when the degree gate fails, so the vertex's adjacency is not
  /// re-captured every round it re-enters a frontier).
  void Reject(NodeId u) { flags_[u] |= kRejected; }

  /// Marks u as never-admittable across all epochs. The engine applies the
  /// degree gate here once at prepare time (a real GPU reads degrees off the
  /// CSR offsets for free), so gated nodes never pay capture bookkeeping on
  /// any query.
  void RejectForever(NodeId u) { flags_[u] |= kPermaReject; }

  /// Inserts u's decoded adjacency, evicting least-recently-used entries
  /// until it fits. Returns the number of evictions, or rejects (returning
  /// {false, 0}) entries that could never fit.
  struct AdmitResult {
    bool admitted = false;
    uint64_t evictions = 0;
  };
  AdmitResult Admit(NodeId u, std::vector<NodeId> adj) {
    const uint64_t bytes = EntryBytes(adj.size());
    if (!enabled() || bytes > capacity_ || !MeetsDegreeGate(adj.size())) {
      Reject(u);
      return {};
    }
    AdmitResult r;
    while (size_bytes_ + bytes > capacity_) {
      Entry& victim = lru_.back();
      size_bytes_ -= EntryBytes(victim.adj.size());
      flags_[victim.u] &= static_cast<uint8_t>(~kResident);
      lru_.pop_back();
      ++r.evictions;
    }
    lru_.push_front(Entry{u, std::move(adj)});
    index_[u] = lru_.begin();
    flags_[u] |= kResident;
    size_bytes_ += bytes;
    r.admitted = true;
    return r;
  }

  static uint64_t EntryBytes(size_t degree) {
    return kEntryOverheadBytes + 4ull * degree;
  }

 private:
  static constexpr uint8_t kResident = 1;
  static constexpr uint8_t kRejected = 2;
  static constexpr uint8_t kPermaReject = 4;

  struct Entry {
    NodeId u;
    std::vector<NodeId> adj;
  };

  uint64_t capacity_ = 0;
  uint64_t min_degree_ = 0;
  uint32_t min_touches_ = 1;
  uint64_t size_bytes_ = 0;
  std::list<Entry> lru_;
  // Dense per-node state, indexed by node id. index_[u] is meaningful only
  // while flags_[u] has kResident set — eviction and Reset just clear the
  // flag and never touch the iterator, so lookups stay O(1) with no hashing.
  std::vector<std::list<Entry>::iterator> index_;
  std::vector<uint32_t> touches_;
  std::vector<uint8_t> flags_;  // kResident/kRejected bits
};

}  // namespace gcgt

#endif  // GCGT_CORE_REPLAY_CACHE_H_
