// The GCGT traversal engine: expands one frontier out of a CGR-compressed
// graph on the simulated SIMT machine, with the paper's scheduling
// strategies (Algorithms 1-4 + residual segmentation) selected by
// GcgtOptions::level. One instance is reusable across frontiers/queries.
//
// Execution model: warp chunks are simulated concurrently across a host
// thread pool (GcgtOptions::num_threads), each worker owning one reusable
// WarpSim and claim arena. The decode/scheduling walk of a warp is
// independent of the frontier filter, so workers enumerate (frontier,
// neighbor) pairs, charge all decode costs, and run the filter's
// chunk-scoped claim pass (atomic CAS / rank-min claims into per-chunk
// claim buffers) in parallel; a second parallel pass settles the
// order-independent decisions (the minimum-rank claimant of a label is the
// edge the serial engine would have accepted) and applies the label writes;
// the only sequential stage left is the prefix-sum merge of the per-chunk
// claim buffers into the global out-frontier, which also charges the
// decision-dependent costs and applies order-dependent filter effects (see
// FrontierFilter). Results — frontier contents and order, labels, per-warp
// stats, modeled cycles — are bit-identical to the serial engine
// (num_threads == 1), which is also the path used whenever a StepTrace is
// requested.
#ifndef GCGT_CORE_CGR_TRAVERSAL_H_
#define GCGT_CORE_CGR_TRAVERSAL_H_

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "core/frontier_filter.h"
#include "core/gcgt_options.h"
#include "core/trace.h"
#include "simt/machine.h"
#include "simt/warp.h"

namespace gcgt {

namespace internal {
struct EngineScratch;  // per-engine worker state, defined in cgr_traversal.cc
}

/// Aggregated result metrics shared by the BFS/CC/BC drivers.
struct TraversalMetrics {
  double model_ms = 0.0;       ///< simulated elapsed time
  int kernels = 0;             ///< kernel launches (BFS: one per level)
  uint64_t device_bytes = 0;   ///< modeled device footprint
  /// High-water mark of the out-of-core pager's resident set (0 when the
  /// pager is disabled).
  uint64_t resident_bytes_peak = 0;
  simt::WarpStats warp;        ///< aggregate warp statistics
};

class CgrTraversalEngine {
 public:
  CgrTraversalEngine(const CgrGraph& graph, const GcgtOptions& options);
  ~CgrTraversalEngine();

  CgrTraversalEngine(const CgrTraversalEngine&) = delete;
  CgrTraversalEngine& operator=(const CgrTraversalEngine&) = delete;

  /// Expands `frontier`, passing every (frontier, neighbor) pair to `filter`
  /// and collecting accepted nodes into `out_frontier`. Appends one WarpStats
  /// per simulated warp to `warp_stats`. `trace` (optional) records the
  /// per-step tables of paper Fig. 4 and forces the serial path.
  /// Not safe for concurrent calls on one engine instance (the engine owns
  /// reusable per-call scratch).
  void ProcessFrontier(std::span<const NodeId> frontier, FrontierFilter& filter,
                       std::vector<NodeId>* out_frontier,
                       std::vector<simt::WarpStats>* warp_stats,
                       StepTrace* trace = nullptr) const;

  /// Process-wide count of engines constructed so far. The session layer's
  /// prepare-once/query-many contract is "zero engine constructions per
  /// query"; tests assert this counter stays flat across a query batch.
  static uint64_t ConstructedCount();

  /// Invalidates the decoded-adjacency replay cache (epoch bump). Called at
  /// every query start via TraversalPipeline::Reset so replay state can
  /// never leak across queries (results and metrics stay a pure function of
  /// graph + options + query). No-op when the cache is disabled.
  void ResetReplay() const;

  /// Serving-tier brownout hook: caps the replay cache's capacity at
  /// min(configured budget, cap_bytes) for subsequent queries, evicting
  /// resident entries to fit immediately. UINT64_MAX restores the configured
  /// budget. Result labels are unaffected (the replay cache only changes
  /// which charge class pays for hot adjacencies), but modeled metrics DO
  /// change, so capped runs must not be memoized under the artifact's
  /// canonical identity (GcgtService skips the result cache for them).
  /// Single-caller, like every other engine entry point.
  void SetReplayBudgetCap(uint64_t cap_bytes) const;

  /// Evicts the out-of-core pager's resident set and zeroes its counters.
  /// Called at every query start via TraversalPipeline::Reset — each query
  /// starts cold, so fault/spill counts stay a pure function of graph +
  /// options + query. No-op when the pager is disabled.
  void ResetPager() const;

  /// High-water mark of the pager's resident set since the last ResetPager
  /// (0 when disabled).
  uint64_t PagerResidentPeak() const;

  /// True when frontier expansion pages partitions through the out-of-core
  /// tier instead of holding all encoded bits device-resident.
  bool PagerEnabled() const {
    return graph_.partitioned() && options_.ooc_resident_bytes > 0;
  }

  /// Device bytes of the compressed adjacency data + bitStart offsets, plus
  /// the configured replay-cache capacity (the replay buffer lives in device
  /// memory, so it must count against the budget). With the out-of-core
  /// pager enabled only the resident budget counts for the adjacency data —
  /// the rest of the encoded bits live in the external tier and are paid for
  /// per touch via the fault/spill charge class instead.
  uint64_t BaseDeviceBytes() const {
    uint64_t adjacency = graph_.bits().size();
    if (PagerEnabled()) {
      adjacency = std::min<uint64_t>(adjacency, options_.ooc_resident_bytes);
    }
    return adjacency +
           (static_cast<uint64_t>(graph_.num_nodes()) + 1) * sizeof(uint64_t) +
           options_.replay_cache_bytes;
  }

  const CgrGraph& graph() const { return graph_; }
  const GcgtOptions& options() const { return options_; }

 private:
  internal::EngineScratch& Scratch() const;

  const CgrGraph& graph_;
  GcgtOptions options_;
  /// Brownout cap on the replay-cache capacity (UINT64_MAX = uncapped);
  /// effective capacity is min(options_.replay_cache_bytes, replay_cap_).
  /// Mutable for the same reason as scratch_: single-caller serving state.
  mutable uint64_t replay_cap_ = UINT64_MAX;
  // Lazily-built reusable worker state (thread pool, per-thread WarpSims and
  // enumeration arenas). Mutable: ProcessFrontier is logically const but
  // reuses this scratch across levels to keep the hot path allocation-free.
  mutable std::unique_ptr<internal::EngineScratch> scratch_;
};

}  // namespace gcgt

#endif  // GCGT_CORE_CGR_TRAVERSAL_H_
