#include "core/cc.h"

#include <numeric>

#include "core/cc_filter.h"
#include "core/traversal_pipeline.h"

namespace gcgt {

Result<GcgtCcResult> GcgtCc(TraversalPipeline& pipeline) {
  const CgrGraph& graph = pipeline.engine().graph();
  const GcgtOptions& options = pipeline.engine().options();
  pipeline.Reset();
  const uint64_t v = graph.num_nodes();
  if (Status s = pipeline.ReserveDevice(
          4 * v /* parents */ + 2 * 4 * v /* queues */, "GCGT CC");
      !s.ok()) {
    return s;
  }

  CcFilter filter(graph.num_nodes());
  std::vector<NodeId> frontier(graph.num_nodes());
  std::iota(frontier.begin(), frontier.end(), 0);

  // Each hooking round commits its claimed minima and then flattens the
  // parent forest with the pointer-jumping kernel; the re-scan frontier is
  // contracted to sorted unique nodes (paper Fig. 7(c)).
  GcgtCcResult result;
  auto rounds = pipeline.Run(
      std::move(frontier), filter, ContractionPolicy::kSortUnique,
      /*trace=*/nullptr, [&] {
        filter.CommitRound();
        return filter.PointerJump(options.lanes, options.cost.cache_line_bytes);
      });
  if (!rounds.ok()) return rounds.status();
  result.rounds = rounds.value();
  result.component = filter.parent();
  result.metrics = pipeline.Metrics();
  return result;
}

Result<GcgtCcResult> GcgtCc(const CgrGraph& graph, const GcgtOptions& options) {
  TraversalPipeline pipeline(graph, options);
  return GcgtCc(pipeline);
}

}  // namespace gcgt
