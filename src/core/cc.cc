#include "core/cc.h"

#include <algorithm>
#include <numeric>

#include "core/cc_filter.h"
#include "simt/machine.h"

namespace gcgt {

Result<GcgtCcResult> GcgtCc(const CgrGraph& graph, const GcgtOptions& options) {
  CgrTraversalEngine engine(graph, options);
  const uint64_t v = graph.num_nodes();
  uint64_t device_bytes = engine.BaseDeviceBytes() + 4 * v /* parents */ +
                          2 * 4 * v /* queues */;
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("GCGT CC footprint exceeds device memory");
  }

  CcFilter filter(graph.num_nodes());
  simt::KernelTimeline timeline(options.cost);

  std::vector<NodeId> frontier(graph.num_nodes());
  std::iota(frontier.begin(), frontier.end(), 0);
  std::vector<NodeId> next;
  std::vector<simt::WarpStats> warps;
  int rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    next.clear();
    warps.clear();
    engine.ProcessFrontier(frontier, filter, &next, &warps);
    timeline.AddKernel(warps);
    timeline.AddKernel(
        filter.PointerJump(options.lanes, options.cost.cache_line_bytes));
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
  }

  GcgtCcResult result;
  result.component = filter.parent();
  result.rounds = rounds;
  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

}  // namespace gcgt
