#include "core/bfs.h"

#include "core/frontier_filter.h"
#include "core/traversal_pipeline.h"

namespace gcgt {

Result<GcgtBfsResult> GcgtBfs(TraversalPipeline& pipeline, NodeId source,
                              StepTrace* trace) {
  const CgrGraph& graph = pipeline.engine().graph();
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("BFS source out of range");
  }
  pipeline.Reset();
  const uint64_t v = graph.num_nodes();
  if (Status s = pipeline.ReserveDevice(
          4 * v /* labels */ + 2 * 4 * v /* ping-pong queues */, "GCGT BFS");
      !s.ok()) {
    return s;
  }

  BfsFilter filter(graph.num_nodes());
  filter.SetSource(source);
  if (auto rounds = pipeline.Run({source}, filter, ContractionPolicy::kNone,
                                 trace);
      !rounds.ok()) {
    return rounds.status();  // cancelled / deadline / injected fault
  }

  GcgtBfsResult result;
  result.depth = filter.TakeDepth();
  result.metrics = pipeline.Metrics();
  return result;
}

Result<GcgtBfsResult> GcgtBfs(const CgrGraph& graph, NodeId source,
                              const GcgtOptions& options, StepTrace* trace) {
  TraversalPipeline pipeline(graph, options);
  return GcgtBfs(pipeline, source, trace);
}

}  // namespace gcgt
