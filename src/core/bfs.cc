#include "core/bfs.h"

#include "core/frontier_filter.h"
#include "simt/machine.h"

namespace gcgt {

Result<GcgtBfsResult> GcgtBfs(const CgrGraph& graph, NodeId source,
                              const GcgtOptions& options, StepTrace* trace) {
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("BFS source out of range");
  }
  CgrTraversalEngine engine(graph, options);
  const uint64_t v = graph.num_nodes();
  uint64_t device_bytes = engine.BaseDeviceBytes() + 4 * v /* labels */ +
                          2 * 4 * v /* ping-pong queues */;
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("GCGT BFS footprint exceeds device memory");
  }

  BfsFilter filter(graph.num_nodes());
  filter.SetSource(source);
  simt::KernelTimeline timeline(options.cost);

  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::vector<simt::WarpStats> warps;
  while (!frontier.empty()) {
    next.clear();
    warps.clear();
    engine.ProcessFrontier(frontier, filter, &next, &warps, trace);
    timeline.AddKernel(warps);
    frontier.swap(next);
  }

  GcgtBfsResult result;
  result.depth = filter.TakeDepth();
  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

}  // namespace gcgt
