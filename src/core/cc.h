// GCGT Connected Components: node-centric hooking + pointer jumping
// (paper §6 / Fig. 7(c), following Soman et al.) executed through the CGR
// traversal engine. Edge directions are ignored (weak connectivity).
#ifndef GCGT_CORE_CC_H_
#define GCGT_CORE_CC_H_

#include <vector>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/gcgt_options.h"
#include "util/status.h"

namespace gcgt {

class TraversalPipeline;

struct GcgtCcResult {
  /// Component representative per node (smallest node id in the component
  /// tree's root position after convergence).
  std::vector<NodeId> component;
  int rounds = 0;
  TraversalMetrics metrics;
};

/// Connected components through a caller-owned pipeline (no engine
/// construction; see GcgtBfs). Resets the pipeline first.
Result<GcgtCcResult> GcgtCc(TraversalPipeline& pipeline);

/// Single-query convenience wrapper (one-shot engine over `graph`).
Result<GcgtCcResult> GcgtCc(const CgrGraph& graph, const GcgtOptions& options);

}  // namespace gcgt

#endif  // GCGT_CORE_CC_H_
