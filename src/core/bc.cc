#include "core/bc.h"

#include "core/bc_filters.h"
#include "core/traversal_pipeline.h"

namespace gcgt {

Result<GcgtBcResult> GcgtBc(const CgrGraph& graph, NodeId source,
                            const GcgtOptions& options) {
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("BC source out of range");
  }
  TraversalPipeline pipeline(graph, options);
  const uint64_t v = graph.num_nodes();
  // depth + sigma + delta + queues + level lists.
  if (Status s = pipeline.ReserveDevice(
          4 * v + 8 * v + 8 * v + 2 * 4 * v + 4 * v, "GCGT BC");
      !s.ok()) {
    return s;
  }

  GcgtBcResult result;
  result.depth.assign(v, kBcUnvisited);
  result.sigma.assign(v, 0.0);
  result.dependency.assign(v, 0.0);
  result.depth[source] = 0;
  result.sigma[source] = 1.0;

  // Forward pass: capture every BFS level for the backward sweep.
  {
    BcForwardFilter filter(result.depth, result.sigma);
    pipeline.Run({source}, filter, ContractionPolicy::kCaptureLevels);
  }
  // Backward pass, deepest level first.
  {
    BcBackwardFilter filter(result.depth, result.sigma, result.dependency);
    pipeline.RunBackward(filter);
  }
  result.dependency[source] = 0.0;

  result.metrics = pipeline.Metrics();
  return result;
}

}  // namespace gcgt
