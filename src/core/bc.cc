#include "core/bc.h"

#include <utility>

#include "core/bc_filters.h"
#include "core/traversal_pipeline.h"

namespace gcgt {

/// Modeled auxiliary footprint of one BC run:
/// depth + sigma + delta + queues + level lists.
uint64_t BcAuxBytes(uint64_t v) {
  return 4 * v + 8 * v + 8 * v + 2 * 4 * v + 4 * v;
}

Status GcgtBcAccumulate(TraversalPipeline& pipeline, NodeId source,
                        BcBatchScratch& scratch,
                        std::vector<double>& dependency) {
  const CgrGraph& graph = pipeline.engine().graph();
  const uint64_t v = graph.num_nodes();
  if (source >= v) {
    return Status::InvalidArgument("BC source out of range");
  }
  if (dependency.size() != v) dependency.assign(v, 0.0);
  scratch.depth.assign(v, kBcUnvisited);
  scratch.sigma.assign(v, 0.0);
  scratch.delta.assign(v, 0.0);
  scratch.depth[source] = 0;
  scratch.sigma[source] = 1.0;

  // Forward pass: capture every BFS level for the backward sweep.
  {
    BcForwardFilter filter(scratch.depth, scratch.sigma);
    if (auto rounds =
            pipeline.Run({source}, filter, ContractionPolicy::kCaptureLevels);
        !rounds.ok()) {
      return rounds.status();
    }
  }
  // Backward pass, deepest level first.
  {
    BcBackwardFilter filter(scratch.depth, scratch.sigma, scratch.delta);
    GCGT_RETURN_NOT_OK(pipeline.RunBackward(filter));
  }
  scratch.delta[source] = 0.0;
  for (NodeId i = 0; i < v; ++i) dependency[i] += scratch.delta[i];
  return Status::OK();
}

Result<GcgtBcResult> GcgtBc(TraversalPipeline& pipeline, NodeId source) {
  const CgrGraph& graph = pipeline.engine().graph();
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("BC source out of range");
  }
  pipeline.Reset();
  if (Status s = pipeline.ReserveDevice(BcAuxBytes(graph.num_nodes()),
                                        "GCGT BC");
      !s.ok()) {
    return s;
  }

  GcgtBcResult result;
  result.dependency.assign(graph.num_nodes(), 0.0);
  BcBatchScratch scratch;
  if (Status s = GcgtBcAccumulate(pipeline, source, scratch, result.dependency);
      !s.ok()) {
    return s;
  }
  result.depth = std::move(scratch.depth);
  result.sigma = std::move(scratch.sigma);
  result.metrics = pipeline.Metrics();
  return result;
}

Result<GcgtBcResult> GcgtBc(const CgrGraph& graph, NodeId source,
                            const GcgtOptions& options) {
  TraversalPipeline pipeline(graph, options);
  return GcgtBc(pipeline, source);
}

}  // namespace gcgt
