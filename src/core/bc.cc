#include "core/bc.h"

#include <algorithm>

#include "core/bc_filters.h"
#include "simt/machine.h"

namespace gcgt {

Result<GcgtBcResult> GcgtBc(const CgrGraph& graph, NodeId source,
                            const GcgtOptions& options) {
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("BC source out of range");
  }
  CgrTraversalEngine engine(graph, options);
  const uint64_t v = graph.num_nodes();
  // depth + sigma + delta + queues + level lists.
  uint64_t device_bytes =
      engine.BaseDeviceBytes() + 4 * v + 8 * v + 8 * v + 2 * 4 * v + 4 * v;
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("GCGT BC footprint exceeds device memory");
  }

  GcgtBcResult result;
  result.depth.assign(v, kBcUnvisited);
  result.sigma.assign(v, 0.0);
  result.dependency.assign(v, 0.0);
  result.depth[source] = 0;
  result.sigma[source] = 1.0;

  simt::KernelTimeline timeline(options.cost);
  std::vector<std::vector<NodeId>> levels;
  levels.push_back({source});

  // Forward pass.
  {
    BcForwardFilter filter(result.depth, result.sigma);
    std::vector<simt::WarpStats> warps;
    while (!levels.back().empty()) {
      std::vector<NodeId> next;
      warps.clear();
      engine.ProcessFrontier(levels.back(), filter, &next, &warps);
      timeline.AddKernel(warps);
      levels.push_back(std::move(next));
    }
    levels.pop_back();  // drop the empty terminator
  }

  // Backward pass, deepest level first.
  {
    BcBackwardFilter filter(result.depth, result.sigma, result.dependency);
    std::vector<NodeId> unused;
    std::vector<simt::WarpStats> warps;
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      if (it->empty()) continue;
      warps.clear();
      engine.ProcessFrontier(*it, filter, &unused, &warps);
      timeline.AddKernel(warps);
    }
  }
  result.dependency[source] = 0.0;

  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

}  // namespace gcgt
