#include "core/cgr_traversal.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <memory>
#include <optional>
#include <unordered_map>

#include "cgr/byte_codecs.h"
#include "cgr/cgr_decoder.h"
#include "core/bc_filters.h"
#include "core/cc_filter.h"
#include "core/memory_layout.h"
#include "core/replay_cache.h"
#include "core/warp_centric.h"
#include "ooc/partition_pager.h"
#include "util/thread_pool.h"
#include "util/zigzag.h"

namespace gcgt {
namespace {

using simt::WarpContext;
using simt::WarpStats;

using BitRange = std::pair<uint64_t, uint64_t>;  // inclusive byte range

BitRange ByteRangeOf(uint64_t bit_before, uint64_t bit_after) {
  uint64_t lo = kBitsBase + bit_before / 8;
  uint64_t hi = kBitsBase + (bit_after > bit_before ? (bit_after - 1) / 8
                                                    : bit_before / 8);
  return {lo, hi};
}

/// A neighbor awaiting its visited-check/append slot, plus the bookkeeping
/// that produces the Fig. 4 trace labels.
struct AppendItem {
  int exec_lane = 0;
  NodeId u = 0;
  NodeId v = 0;
  TraceOp origin = TraceOp::kAppend;
  int src_lane = 0;
  int idx1 = 0;   // interval index / residual index
  int idx2 = -1;  // neighbor index within the interval
};

std::string ItemLabel(const AppendItem& it) {
  char buf[48];
  if (it.origin == TraceOp::kDecodeInterval) {
    std::snprintf(buf, sizeof(buf), "t%d:i%d:%d", it.src_lane, it.idx1, it.idx2);
  } else {
    std::snprintf(buf, sizeof(buf), "t%d:res%d", it.src_lane, it.idx1);
  }
  return buf;
}

/// Per-lane traversal state.
struct Lane {
  bool valid = false;
  NodeId u = 0;
  // Cache lines of this lane's last charged decode read (see
  // WarpSim::PushRange); empty when lo > hi. Byte codecs keep two decode
  // cursors (StreamVByte's control and data areas are disjoint), so they get
  // a second cache.
  uint64_t chg_lo = 1;
  uint64_t chg_hi = 0;
  uint64_t chg2_lo = 1;
  uint64_t chg2_hi = 0;
  std::optional<CgrNodeDecoder> dec;
  ByteCodecStream bs;  // byte-codec block cursor (codec != kCgr only)
  uint64_t deg = 0;        // unsegmented degree header
  uint32_t itv_total = 0;  // intervals announced by the header
  uint32_t itv_read = 0;   // intervals decoded so far
  // Interval currently pending expansion.
  NodeId itv_ptr = 0;
  uint32_t itv_len = 0;
  int itv_idx = -1;
  uint32_t itv_consumed = 0;
  // Residuals.
  ResidualStream rs;
  bool rs_ready = false;
  int res_idx = 0;
  bool res_pending = false;
  NodeId res_val = 0;
  // Segmented layout.
  bool segs_read = false;
  uint32_t seg_count = 0;
  uint32_t seg_next = 0;
};

/// A replay-cache admission in flight: the admitted node's adjacency is
/// captured from its normal miss expansion (AppendStep sees every enumerated
/// (u, v) pair exactly once), so admission never decodes on the host — not
/// even a degree probe; the degree gate is applied to the captured size in
/// the round epilogue. `claimed` lets exactly one warp bind the slot when
/// the frontier holds the node more than once — the capture content is the
/// full adjacency either way, so the winner does not matter for determinism.
struct FillSlot {
  std::atomic<bool> claimed{false};
  // Set when a same-round repeat of the node is waiting to replay from this
  // capture; the admission then copies instead of moving, so the slot's
  // content survives even if the admitted entry is evicted this round.
  bool has_late_hit = false;
  std::vector<NodeId> adj;
};
/// Maps node -> its in-flight capture slot, dense by node id (nullptr =
/// no admission in flight). Slots are owned by the engine's per-round pool
/// (EngineScratch::slot_pool) and reused across rounds, so steady-state
/// admission allocates nothing, and the per-chunk capture binding is one
/// array read per node instead of a hash lookup.
using FillMap = std::vector<FillSlot*>;

/// Simulates one warp over one frontier chunk. An instance is reusable
/// across chunks (one lives in each worker thread's scratch); all phase
/// scratch buffers are members so the steady-state hot path allocates
/// nothing.
///
/// Two run modes:
///  - RunSerial: the reference engine. Filter decisions, out-frontier
///    appends and their memory charges happen inline, and a StepTrace may
///    record Fig. 4 tables.
///  - RunEnumerate: the parallel-phase engine. The decode/scheduling walk is
///    identical (it never depends on the filter), but each append slot hands
///    its (u, v) pairs to the filter's chunk-scoped claim pass
///    (FrontierFilter::ClaimBatch), which applies atomic claims and records
///    the surviving candidates in the worker's claim arena; decisions are
///    settled by ResolveChunk / the serial MergeBatch afterwards (see
///    CgrTraversalEngine::ProcessFrontier).
class WarpSim {
 public:
  WarpSim(const CgrGraph& g, const GcgtOptions& o)
      : g_(g),
        o_(o),
        ctx_(o.lanes, o.cost.cache_line_bytes),
        line_shift_(std::has_single_bit(
                        static_cast<uint64_t>(o.cost.cache_line_bytes))
                        ? std::countr_zero(
                              static_cast<uint64_t>(o.cost.cache_line_bytes))
                        : -1) {
    const uint64_t line = static_cast<uint64_t>(o.cost.cache_line_bytes);
    label_filter_.Configure(line / 4, g.num_nodes());
    offset_filter_.Configure(line / 8, g.num_nodes() + 1);
    lanes_.resize(o.lanes);
  }

  WarpStats RunSerial(std::span<const NodeId> chunk, FrontierFilter& filter,
                      std::vector<NodeId>* out, StepTrace* trace) {
    filter_ = &filter;
    filter_kind_ = filter.kind();
    out_ = out;
    trace_ = trace;
    claim_filter_ = nullptr;
    claim_writer_ = nullptr;
    BindFill(chunk);
    return Run(chunk);
  }

  WarpStats RunEnumerate(std::span<const NodeId> chunk, FrontierFilter& filter,
                         ClaimBatchWriter& writer) {
    filter_ = nullptr;
    out_ = nullptr;
    trace_ = nullptr;
    claim_filter_ = &filter;
    claim_writer_ = &writer;
    BindFill(chunk);
    return Run(chunk);
  }

  /// Arms admission capture for subsequent Run* calls (nullptr disarms). The
  /// array itself is never mutated by the sim; claimed slots' vectors are.
  void SetFillMap(const FillMap* fill_map) { fill_map_ = fill_map; }

  /// Expands replay-cache hits: each node's decoded adjacency streams from
  /// the replay buffer (charged as replay_txns — one directory line plus the
  /// dense 4B/edge data lines) straight into warp-wide append slots. No
  /// decode slots, no bit-array reads. Always serial (cache decisions are
  /// made in frontier order).
  WarpStats RunReplay(std::span<const NodeId> chunk,
                      const std::vector<NodeId>* const* adjs,
                      FrontierFilter& filter, std::vector<NodeId>* out,
                      StepTrace* trace);

 private:
  WarpStats Run(std::span<const NodeId> chunk);

  bool segmented() const { return g_.options().segment_len_bytes != 0; }
  uint64_t ResidualsRemaining(const Lane& ln) const {
    if (ln.rs_ready) return ln.rs.remaining();
    if (segmented()) return 0;  // unknown before segment headers
    return ln.deg - ln.dec->interval_neighbor_total();
  }

  void HeaderPhase(std::span<const NodeId> chunk);
  void ByteCodecPhase(std::span<const NodeId> chunk);
  void RunIntuitive();
  void IntervalPhase();
  void SetupUnsegmentedResiduals();
  void ResidualPhaseTwoPhase();
  void ResidualPhaseStealing();
  void StealWindows(const std::vector<int>& work_lanes, bool handoff);
  void WarpCentricStream(int lane_idx);
  void SegmentedResidualPhase();
  void SegmentedSerialResiduals();

  // Charges one decode instruction slot touching `ranges` of the bit array.
  // Also counts the 8-byte words those ranges span (WarpStats::decode_words,
  // observability only — PushRange's lane caches mean this counts novel-line
  // fetches, which is exactly the stream the word-at-a-time decoders read).
  void ChargeDecode(size_t active, std::span<const BitRange> ranges) {
    ctx_.DecodeStep(static_cast<int>(active));
    uint64_t words = 0;
    for (const BitRange& r : ranges) words += r.second / 8 - r.first / 8 + 1;
    if (words > 0) ctx_.DecodeWords(words);
    ctx_.MemAccessRanges(ranges);
  }

  // Appends a decode read's byte range to ranges_, unless the reading
  // lane's previous charged read already covered exactly these cache lines.
  // Decode cursors advance monotonically a few bits at a time, so almost
  // every read re-touches the line of the previous one; those lines are
  // already in this warp's LineSet, so dropping the range here leaves
  // mem_txns (and all other WarpStats fields) bit-identical while skipping
  // the whole accounting path for the hot case. (lane_lo, lane_hi) is the
  // per-lane cache, stored with the lane/executor state.
  void PushRange(uint64_t bit_before, uint64_t bit_after, uint64_t& lane_lo,
                 uint64_t& lane_hi) {
    const BitRange r = ByteRangeOf(bit_before, bit_after);
    if (line_shift_ >= 0) {
      const uint64_t lo = r.first >> line_shift_;
      const uint64_t hi = r.second >> line_shift_;
      if (lo >= lane_lo && hi <= lane_hi) return;
      lane_lo = lo;
      lane_hi = hi;
    }
    ranges_.push_back(r);
  }
  // Binds this chunk's admission-capture lanes: lane i points at its node's
  // pending fill vector when this warp won the slot's claim. src_lane indexes
  // the chunk, so AppendStep can route captures with one array lookup.
  void BindFill(std::span<const NodeId> chunk) {
    fill_active_ = false;
    if (fill_map_ == nullptr) return;
    lane_fill_.assign(static_cast<size_t>(o_.lanes), nullptr);
    for (size_t i = 0; i < chunk.size(); ++i) {
      FillSlot* slot = (*fill_map_)[chunk[i]];
      if (slot != nullptr &&
          !slot->claimed.exchange(true, std::memory_order_relaxed)) {
        lane_fill_[i] = &slot->adj;
        fill_active_ = true;
      }
    }
  }

  // One visited-check/append slot over `items`. Does not clear the storage;
  // callers reuse and clear their own buffers.
  void AppendStep(std::span<AppendItem> items);
  template <typename Filter>
  void AppendDecide(Filter& filter, std::span<const AppendItem> items);

  const CgrGraph& g_;
  const GcgtOptions& o_;
  WarpContext ctx_;
  int line_shift_;  // log2(cache line bytes); -1 disables range skipping

  // Per-warp exact line filters for the dense label (4B) and bitStart-offset
  // (8B) regions; replaces LineSet dedup of kLabelBase / kOffsetsBase
  // accesses with one array lookup (see simt::DenseRegionFilter).
  simt::DenseRegionFilter label_filter_;
  simt::DenseRegionFilter offset_filter_;

  // Admission capture (see FillSlot): armed by the engine per round.
  const FillMap* fill_map_ = nullptr;
  std::vector<std::vector<NodeId>*> lane_fill_;
  bool fill_active_ = false;

  // Per-run bindings (exactly one of filter_/claim_writer_ is set).
  FrontierFilter* filter_ = nullptr;
  FrontierFilter::Kind filter_kind_ = FrontierFilter::Kind::kGeneric;
  std::vector<NodeId>* out_ = nullptr;
  StepTrace* trace_ = nullptr;
  FrontierFilter* claim_filter_ = nullptr;
  ClaimBatchWriter* claim_writer_ = nullptr;

  // Reusable scratch (capacity persists across chunks; no steady-state
  // allocation).
  std::vector<Lane> lanes_;
  std::vector<BitRange> ranges_;
  std::vector<AppendItem> items_;
  std::vector<uint8_t> pred_;
  std::vector<int> work_;
  std::vector<AppendItem> buffer_;
  std::vector<EdgePair> edge_pairs_;
  struct Task {
    int src_lane;
    uint32_t seg;
  };
  std::vector<Task> tasks_;
  struct ExecState {
    size_t next = 0;    // index into tasks_ of the next task (stride = lanes)
    Lane* owner = nullptr;  // lane owning the open task
    ResidualStream stream;
    bool open = false;
    // PushRange cache for this executor's decode cursor.
    uint64_t chg_lo = 1;
    uint64_t chg_hi = 0;
  };
  std::vector<ExecState> exec_;
};

void WarpSim::AppendStep(std::span<AppendItem> items) {
  if (items.empty()) return;
  assert(items.size() <= static_cast<size_t>(o_.lanes));
  ctx_.AppendStepOp(static_cast<int>(items.size()));
  if (trace_ != nullptr) {
    trace_->BeginStep(TraceOp::kAppend);
    for (const auto& it : items) trace_->Lane(it.exec_lane, ItemLabel(it));
  }
  if (fill_active_) {
    // Admission capture: every enumerated (u, v) funnels through here once,
    // in the owning lane's emission order, so the pending fill receives the
    // node's full adjacency as a free side effect of the miss expansion.
    for (const auto& it : items) {
      if (std::vector<NodeId>* fv = lane_fill_[it.src_lane]) {
        fv->push_back(it.v);
      }
    }
  }
  // Visited/label gather for the filtering check. Label words are 4-byte
  // aligned in a dense region (one line holds line_bytes/4 consecutive
  // labels, no straddles), so the per-warp epoch filter below deduplicates
  // label lines exactly — bit-identical to inserting each into the LineSet,
  // at an array lookup per item. Falls back to the generic charge when the
  // line size is not 4-aligned-power-of-two.
  if (label_filter_.enabled()) {
    uint64_t novel = 0;
    for (const auto& it : items) novel += label_filter_.Touch(it.v);
    if (novel > 0) ctx_.ChargeTransactions(novel);
  } else {
    ctx_.MemAccessIndexed(items.size(), 4, [items](size_t i) {
      return kLabelBase + 4ull * items[i].v;
    });
  }
  ctx_.SharedOp();  // exclusiveScan for the contraction offsets
  ctx_.Atomic(1);   // single queue-tail atomic per warp (Alg. 1 line 30)
  if (claim_writer_ != nullptr) {
    // Enumerate mode: run the filter's parallel claim pass for this slot;
    // the dependent charges (extra atomics, queue append) are reconstructed
    // from the claim buffers during the serial merge.
    edge_pairs_.clear();
    for (const auto& it : items) edge_pairs_.push_back({it.u, it.v});
    claim_filter_->ClaimBatch(edge_pairs_, *claim_writer_);
    claim_writer_->EndBatch();
    return;
  }
  // Decide loop, statically dispatched for the well-known filters so the
  // per-edge Filter/AppendTarget/TakeAtomics sequence inlines.
  switch (filter_kind_) {
    case FrontierFilter::Kind::kBfs:
      assert(dynamic_cast<BfsFilter*>(filter_) != nullptr);
      AppendDecide(static_cast<BfsFilter&>(*filter_), items);
      break;
    case FrontierFilter::Kind::kCc:
      assert(dynamic_cast<CcFilter*>(filter_) != nullptr);
      AppendDecide(static_cast<CcFilter&>(*filter_), items);
      break;
    case FrontierFilter::Kind::kBcForward:
      assert(dynamic_cast<BcForwardFilter*>(filter_) != nullptr);
      AppendDecide(static_cast<BcForwardFilter&>(*filter_), items);
      break;
    case FrontierFilter::Kind::kBcBackward:
      assert(dynamic_cast<BcBackwardFilter*>(filter_) != nullptr);
      AppendDecide(static_cast<BcBackwardFilter&>(*filter_), items);
      break;
    default:
      AppendDecide(*filter_, items);
      break;
  }
}

template <typename Filter>
void WarpSim::AppendDecide(Filter& filter, std::span<const AppendItem> items) {
  size_t tail = out_->size();
  for (const auto& it : items) {
    if (filter.Filter(it.u, it.v)) {
      out_->push_back(filter.AppendTarget(it.u, it.v));
    }
  }
  if (int extra = filter.TakeAtomics(); extra > 0) ctx_.Atomic(extra);
  if (out_->size() > tail) {
    // The label-update lines are a subset of this slot's visited-check
    // gather (same kLabelBase + 4v words), so re-charging them can never
    // produce a transaction; only the queue append can touch cold lines.
    ctx_.MemAccessRange(kQueueBase + 4ull * tail, 4ull * (out_->size() - tail));
  }
}

void WarpSim::HeaderPhase(std::span<const NodeId> chunk) {
  // Reset lanes in place (assigning fresh Lane values would reconstruct the
  // decoder/stream members of all lanes on every chunk). `rs` and `dec` are
  // left stale: they are only read behind rs_ready / valid.
  for (int i = 0; i < o_.lanes; ++i) {
    Lane& ln = lanes_[i];
    ln.valid = static_cast<size_t>(i) < chunk.size();
    ln.chg_lo = 1;
    ln.chg_hi = 0;
    ln.deg = 0;
    ln.itv_total = 0;
    ln.itv_read = 0;
    ln.itv_ptr = 0;
    ln.itv_len = 0;
    ln.itv_idx = -1;
    ln.itv_consumed = 0;
    ln.rs_ready = false;
    ln.res_idx = 0;
    ln.res_pending = false;
    ln.res_val = 0;
    ln.segs_read = false;
    ln.seg_count = 0;
    ln.seg_next = 0;
    if (ln.valid) {
      ln.u = chunk[i];
      ln.dec.emplace(g_, ln.u);
    }
  }
  // Coalesced frontier load + bitStart offset gather.
  ctx_.Step(static_cast<int>(chunk.size()));
  ctx_.MemAccessRange(kQueueBase, 4ull * chunk.size());
  if (offset_filter_.enabled()) {
    uint64_t novel = 0;
    for (NodeId u : chunk) novel += offset_filter_.Touch(u);
    if (novel > 0) ctx_.ChargeTransactions(novel);
  } else {
    ctx_.MemAccessIndexed(chunk.size(), 8, [chunk](size_t i) {
      return kOffsetsBase + 8ull * chunk[i];
    });
  }

  ranges_.clear();
  if (!segmented()) {
    // Degree header.
    size_t active = 0;
    for (Lane& ln : lanes_) {
      if (!ln.valid) continue;
      uint64_t before = ln.dec->bit_pos();
      ln.deg = ln.dec->ReadDegree();
      PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
      ++active;
    }
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
    ChargeDecode(active, ranges_);
    // Interval-count header (only encoded when deg > 0).
    ranges_.clear();
    active = 0;
    for (Lane& ln : lanes_) {
      if (!ln.valid || ln.deg == 0) continue;
      uint64_t before = ln.dec->bit_pos();
      ln.itv_total = ln.dec->ReadIntervalCount();
      PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
      ++active;
    }
    if (active > 0) {
      if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
      ChargeDecode(active, ranges_);
    }
  } else {
    size_t active = 0;
    for (Lane& ln : lanes_) {
      if (!ln.valid) continue;
      uint64_t before = ln.dec->bit_pos();
      ln.itv_total = ln.dec->ReadIntervalCount();
      PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
      ++active;
    }
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
    ChargeDecode(active, ranges_);
  }
}

// ---------------------------------------------------------------------------
// Byte-codec walk (StreamVByte / VarintGB): no intervals, no VLC — every
// lane streams 4-delta blocks out of its node's byte-aligned encoding. One
// table-driven block decode per lane per round, appends batched through the
// shared buffer exactly like the stealing stage, so warp-wide append slots
// stay full even when lane degrees diverge.
// ---------------------------------------------------------------------------
void WarpSim::ByteCodecPhase(std::span<const NodeId> chunk) {
  for (int i = 0; i < o_.lanes; ++i) {
    Lane& ln = lanes_[i];
    ln.valid = static_cast<size_t>(i) < chunk.size();
    ln.chg_lo = 1;
    ln.chg_hi = 0;
    ln.chg2_lo = 1;
    ln.chg2_hi = 0;
    ln.res_idx = 0;
    if (ln.valid) {
      ln.u = chunk[i];
      ln.bs = ByteCodecStream(g_, ln.u);
    }
  }
  // Coalesced frontier load + bitStart offset gather (same as HeaderPhase).
  ctx_.Step(static_cast<int>(chunk.size()));
  ctx_.MemAccessRange(kQueueBase, 4ull * chunk.size());
  if (offset_filter_.enabled()) {
    uint64_t novel = 0;
    for (NodeId u : chunk) novel += offset_filter_.Touch(u);
    if (novel > 0) ctx_.ChargeTransactions(novel);
  } else {
    ctx_.MemAccessIndexed(chunk.size(), 8, [chunk](size_t i) {
      return kOffsetsBase + 8ull * chunk[i];
    });
  }

  // LEB128 degree headers.
  ranges_.clear();
  size_t active = 0;
  for (Lane& ln : lanes_) {
    if (!ln.valid) continue;
    PushRange(g_.bit_start(ln.u), ln.bs.header_end_byte() * 8, ln.chg_lo,
              ln.chg_hi);
    ++active;
  }
  if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
  ChargeDecode(active, ranges_);
  ctx_.SharedOp();  // exclusiveScan over degrees for buffer offsets

  buffer_.clear();
  size_t head = 0;  // buffered items before head were already appended
  auto flush = [&](bool final_flush) {
    while (buffer_.size() - head >= static_cast<size_t>(o_.lanes) ||
           (final_flush && buffer_.size() > head)) {
      size_t take = std::min<size_t>(buffer_.size() - head, o_.lanes);
      std::span<AppendItem> round(buffer_.data() + head, take);
      for (size_t i = 0; i < take; ++i) {
        round[i].exec_lane = static_cast<int>(i);
      }
      head += take;
      AppendStep(round);
    }
  };

  // Lockstep block rounds: each lane with blocks left decodes one group of
  // up to 4 neighbors per decode slot.
  for (;;) {
    ranges_.clear();
    active = 0;
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      if (!ln.valid || !ln.bs.HasNext()) continue;
      const ByteBlock blk = ln.bs.NextBlock();
      if (g_.options().codec == CodecId::kVarintGb) {
        // Control byte and data are contiguous: one span.
        PushRange(blk.ctrl_byte * 8, (blk.data_last + 1) * 8, ln.chg_lo,
                  ln.chg_hi);
      } else {
        // StreamVByte: control area and data area are disjoint cursors.
        PushRange(blk.ctrl_byte * 8, (blk.ctrl_byte + 1) * 8, ln.chg_lo,
                  ln.chg_hi);
        PushRange(blk.data_first * 8, (blk.data_last + 1) * 8, ln.chg2_lo,
                  ln.chg2_hi);
      }
      ++active;
      if (trace_ != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "t%d:res%d", l, ln.res_idx);
        trace_->Lane(l, buf);
      }
      for (uint32_t i = 0; i < blk.count; ++i) {
        AppendItem it;
        it.src_lane = l;
        it.u = ln.u;
        it.v = blk.vals[i];
        it.origin = TraceOp::kDecodeResidual;
        it.idx1 = ln.res_idx++;
        buffer_.push_back(it);
      }
    }
    if (active == 0) break;
    ChargeDecode(active, ranges_);
    ctx_.SharedOp();  // buffer write
    flush(false);
  }
  flush(true);
}

WarpStats WarpSim::RunReplay(std::span<const NodeId> chunk,
                             const std::vector<NodeId>* const* adjs,
                             FrontierFilter& filter, std::vector<NodeId>* out,
                             StepTrace* trace) {
  // The hot path of the replay win: no decode slots, no AppendItem staging,
  // no per-item label gather — one tight filter/append loop per edge, with
  // the warp-wide slot charges reconstructed arithmetically afterwards. The
  // charges are a pure function of (chunk, adjacency, accept count), so the
  // stats stay deterministic and thread-count invariant. Replay rows price
  // adjacency reads as replay_txns; label traffic is represented by the
  // filter's atomics and the queue-append lines. Per-step traces are not
  // emitted (Fig. 4 trace runs use replay-off configs).
  (void)trace;
  assert(chunk.size() <= static_cast<size_t>(o_.lanes));
  ctx_.Step(static_cast<int>(chunk.size()));
  ctx_.MemAccessRange(kQueueBase, 4ull * chunk.size());

  const uint64_t line = static_cast<uint64_t>(o_.cost.cache_line_bytes);
  uint64_t rtxns = 0;
  uint64_t edges = 0;
  const size_t tail0 = out->size();

  auto expand = [&](auto& f) {
    for (size_t i = 0; i < chunk.size(); ++i) {
      const std::vector<NodeId>& adj = *adjs[i];
      const NodeId u = chunk[i];
      // One directory-slot line + the dense 4B/edge data lines.
      rtxns += 1 + (4ull * adj.size() + line - 1) / line;
      edges += adj.size();
      for (NodeId v : adj) {
        if (f.Filter(u, v)) out->push_back(f.AppendTarget(u, v));
      }
    }
    if (int extra = f.TakeAtomics(); extra > 0) ctx_.Atomic(extra);
  };
  switch (filter.kind()) {
    case FrontierFilter::Kind::kBfs:
      expand(static_cast<BfsFilter&>(filter));
      break;
    case FrontierFilter::Kind::kCc:
      expand(static_cast<CcFilter&>(filter));
      break;
    case FrontierFilter::Kind::kBcForward:
      expand(static_cast<BcForwardFilter&>(filter));
      break;
    case FrontierFilter::Kind::kBcBackward:
      expand(static_cast<BcBackwardFilter&>(filter));
      break;
    default:
      expand(filter);
      break;
  }

  // Append slots at `lanes` items per round: one shared-memory scan and one
  // queue-tail atomic per slot, exactly like AppendStep charges them.
  for (uint64_t done = 0; done < edges; done += o_.lanes) {
    ctx_.AppendStepOp(
        static_cast<int>(std::min<uint64_t>(o_.lanes, edges - done)));
    ctx_.SharedOp();
    ctx_.Atomic(1);
  }
  if (out->size() > tail0) {
    ctx_.MemAccessRange(kQueueBase + 4ull * tail0,
                        4ull * (out->size() - tail0));
  }
  ctx_.ReplayHits(chunk.size());
  ctx_.ReplayTxns(rtxns);
  return ctx_.TakeStats();
}

// ---------------------------------------------------------------------------
// Intuitive strategy (Alg. 1): every lane decodes its own list serially; the
// warp serializes the divergent branch targets with the fixed priority
// DecodeInterval > DecodeResidual > Append, reproducing Fig. 4(b).
// ---------------------------------------------------------------------------
void WarpSim::RunIntuitive() {
  enum class Op { kNone, kDecItv, kDecRes, kOpenSeg, kAppend };
  auto next_op = [&](Lane& ln) -> Op {
    if (!ln.valid) return Op::kNone;
    if (ln.itv_len > 0 || ln.res_pending) return Op::kAppend;
    if (ln.itv_read < ln.itv_total) return Op::kDecItv;
    if (ln.rs_ready && ln.rs.HasNext()) return Op::kDecRes;
    if (!segmented()) {
      if (!ln.rs_ready && ResidualsRemaining(ln) > 0) return Op::kDecRes;
      return Op::kNone;
    }
    if (!ln.segs_read) return Op::kOpenSeg;
    if (ln.seg_next < ln.seg_count) return Op::kOpenSeg;
    return Op::kNone;
  };

  std::vector<Op> ops(o_.lanes);
  for (;;) {
    bool any = false;
    bool has_itv = false, has_res = false, has_seg = false;
    for (int l = 0; l < o_.lanes; ++l) {
      ops[l] = next_op(lanes_[l]);
      if (ops[l] == Op::kNone) continue;
      any = true;
      has_itv |= ops[l] == Op::kDecItv;
      has_seg |= ops[l] == Op::kOpenSeg;
      has_res |= ops[l] == Op::kDecRes;
    }
    if (!any) break;

    if (has_itv) {
      ranges_.clear();
      size_t active = 0;
      if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeInterval);
      for (int l = 0; l < o_.lanes; ++l) {
        if (ops[l] != Op::kDecItv) continue;
        Lane& ln = lanes_[l];
        uint64_t before = ln.dec->bit_pos();
        CgrInterval itv = ln.dec->ReadNextInterval();
        PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
        ++ln.itv_read;
        ++ln.itv_idx;
        ln.itv_ptr = itv.start;
        ln.itv_len = itv.len;
        ln.itv_consumed = 0;
        ++active;
        if (trace_ != nullptr) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "t%d:i%d", l, ln.itv_idx);
          trace_->Lane(l, buf);
        }
      }
      ChargeDecode(active, ranges_);
      continue;
    }
    if (has_seg) {
      // Segment headers (segmented layout under the intuitive strategy).
      ranges_.clear();
      size_t active = 0;
      if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
      for (int l = 0; l < o_.lanes; ++l) {
        if (ops[l] != Op::kOpenSeg) continue;
        Lane& ln = lanes_[l];
        uint64_t before = ln.dec->bit_pos();
        if (!ln.segs_read) {
          ln.seg_count = ln.dec->ReadSegmentCount();
          ln.segs_read = true;
          PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
        } else {
          ln.rs = ln.dec->SegmentResiduals(ln.seg_next);
          uint64_t base = ln.dec->SegmentBitPos(ln.seg_next);
          PushRange(base, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
          ++ln.seg_next;
          ln.rs_ready = true;
        }
        ++active;
      }
      ChargeDecode(active, ranges_);
      continue;
    }
    if (has_res) {
      ranges_.clear();
      size_t active = 0;
      if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
      for (int l = 0; l < o_.lanes; ++l) {
        if (ops[l] != Op::kDecRes) continue;
        Lane& ln = lanes_[l];
        if (!ln.rs_ready) {
          ln.rs = ln.dec->UnsegmentedResiduals(ResidualsRemaining(ln));
          ln.rs_ready = true;
        }
        uint64_t before = ln.rs.bit_pos();
        ln.res_val = ln.rs.Next();
        ln.res_pending = true;
        PushRange(before, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
        ++active;
        if (trace_ != nullptr) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "t%d:res%d", l, ln.res_idx);
          trace_->Lane(l, buf);
        }
      }
      ChargeDecode(active, ranges_);
      continue;
    }
    // Append step: every lane with a pending neighbor handles it.
    items_.clear();
    for (int l = 0; l < o_.lanes; ++l) {
      if (ops[l] != Op::kAppend) continue;
      Lane& ln = lanes_[l];
      AppendItem it;
      it.exec_lane = l;
      it.src_lane = l;
      it.u = ln.u;
      if (ln.itv_len > 0) {
        it.origin = TraceOp::kDecodeInterval;
        it.v = ln.itv_ptr;
        it.idx1 = ln.itv_idx;
        it.idx2 = static_cast<int>(ln.itv_consumed);
        ++ln.itv_ptr;
        --ln.itv_len;
        ++ln.itv_consumed;
      } else {
        it.origin = TraceOp::kDecodeResidual;
        it.v = ln.res_val;
        it.idx1 = ln.res_idx++;
        ln.res_pending = false;
      }
      items_.push_back(it);
    }
    AppendStep(items_);
  }
}

// ---------------------------------------------------------------------------
// Two-Phase interval phase (Alg. 2): decode rounds followed by collaborative
// expansion; long intervals are expanded by the whole warp (stage 1), the
// leftovers are packed through the shared-memory buffer (stage 2).
// ---------------------------------------------------------------------------
void WarpSim::IntervalPhase() {
  pred_.assign(o_.lanes, 0);
  for (;;) {
    // Decode round.
    ranges_.clear();
    size_t active = 0;
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeInterval);
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      if (!ln.valid || ln.itv_read >= ln.itv_total) continue;
      uint64_t before = ln.dec->bit_pos();
      CgrInterval itv = ln.dec->ReadNextInterval();
      PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
      ++ln.itv_read;
      ++ln.itv_idx;
      ln.itv_ptr = itv.start;
      ln.itv_len = itv.len;
      ln.itv_consumed = 0;
      ++active;
      if (trace_ != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "t%d:i%d", l, ln.itv_idx);
        trace_->Lane(l, buf);
      }
    }
    if (active == 0) break;
    ChargeDecode(active, ranges_);

    // Stage 1: warp-wide expansion of long intervals.
    for (;;) {
      for (int l = 0; l < o_.lanes; ++l) {
        pred_[l] = lanes_[l].itv_len >= static_cast<uint32_t>(o_.lanes) ? 1 : 0;
      }
      if (!ctx_.Any(pred_)) break;  // syncAny
      int winner = -1;
      for (int l = 0; l < o_.lanes; ++l) {
        if (pred_[l]) {
          winner = l;
          break;
        }
      }
      ctx_.SharedOp();  // shfl broadcast of the winner's interval
      Lane& w = lanes_[winner];
      items_.clear();
      for (int l = 0; l < o_.lanes; ++l) {
        AppendItem it;
        it.exec_lane = l;
        it.src_lane = winner;
        it.u = w.u;
        it.v = w.itv_ptr + static_cast<NodeId>(l);
        it.origin = TraceOp::kDecodeInterval;
        it.idx1 = w.itv_idx;
        it.idx2 = static_cast<int>(w.itv_consumed) + l;
        items_.push_back(it);
      }
      w.itv_ptr += o_.lanes;
      w.itv_len -= o_.lanes;
      w.itv_consumed += o_.lanes;
      AppendStep(items_);
    }

    // Stage 2: collaborative expansion of the remaining short intervals.
    uint64_t total = 0;
    for (const Lane& ln : lanes_) total += ln.itv_len;
    if (total > 0) ctx_.SharedOp();  // exclusiveScan of remaining lengths
    while (total > 0) {
      items_.clear();
      int filled = 0;
      for (int l = 0; l < o_.lanes && filled < o_.lanes; ++l) {
        Lane& ln = lanes_[l];
        while (ln.itv_len > 0 && filled < o_.lanes) {
          AppendItem it;
          it.exec_lane = filled;
          it.src_lane = l;
          it.u = ln.u;
          it.v = ln.itv_ptr;
          it.origin = TraceOp::kDecodeInterval;
          it.idx1 = ln.itv_idx;
          it.idx2 = static_cast<int>(ln.itv_consumed);
          ++ln.itv_ptr;
          --ln.itv_len;
          ++ln.itv_consumed;
          items_.push_back(it);
          ++filled;
        }
      }
      ctx_.SharedOp();  // shared buffer fill
      AppendStep(items_);
      total -= filled;
    }
  }
}

void WarpSim::SetupUnsegmentedResiduals() {
  for (Lane& ln : lanes_) {
    if (!ln.valid || ln.deg == 0) continue;
    ln.rs = ln.dec->UnsegmentedResiduals(ln.deg - ln.dec->interval_neighbor_total());
    ln.rs_ready = true;
  }
}

// Residual phase of Alg. 2: lockstep decode+append rounds, no stealing.
void WarpSim::ResidualPhaseTwoPhase() {
  for (;;) {
    ranges_.clear();
    items_.clear();
    size_t active = 0;
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      if (!ln.valid || !ln.rs_ready || !ln.rs.HasNext()) continue;
      uint64_t before = ln.rs.bit_pos();
      NodeId v = ln.rs.Next();
      PushRange(before, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
      ++active;
      if (trace_ != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "t%d:res%d", l, ln.res_idx);
        trace_->Lane(l, buf);
      }
      AppendItem it;
      it.exec_lane = l;
      it.src_lane = l;
      it.u = ln.u;
      it.v = v;
      it.origin = TraceOp::kDecodeResidual;
      it.idx1 = ln.res_idx++;
      items_.push_back(it);
    }
    if (active == 0) break;
    ChargeDecode(active, ranges_);
    AppendStep(items_);
  }
}

// Residual phase of Alg. 3 (+ warp-centric of Alg. 4 at level >= 3).
void WarpSim::ResidualPhaseStealing() {
  pred_.assign(o_.lanes, 0);

  // Stage 1: all lanes busy -> plain lockstep rounds (syncAll loop).
  for (;;) {
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      pred_[l] = (ln.valid && ln.rs_ready && ln.rs.HasNext()) ? 1 : 0;
    }
    if (!ctx_.All(pred_)) break;  // syncAll
    ranges_.clear();
    items_.clear();
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      uint64_t before = ln.rs.bit_pos();
      NodeId v = ln.rs.Next();
      PushRange(before, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
      if (trace_ != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "t%d:res%d", l, ln.res_idx);
        trace_->Lane(l, buf);
      }
      AppendItem it;
      it.exec_lane = l;
      it.src_lane = l;
      it.u = ln.u;
      it.v = v;
      it.origin = TraceOp::kDecodeResidual;
      it.idx1 = ln.res_idx++;
      items_.push_back(it);
    }
    ChargeDecode(o_.lanes, ranges_);
    AppendStep(items_);
  }

  // Stage 2: stealing rounds while several lanes still hold residuals. Once
  // the warp is nearly drained (paper §5.1: warp-centric decoding "falls
  // back on idle threads"), a long leftover stream is decoded by the whole
  // warp speculatively instead of by its single owner lane.
  for (;;) {
    work_.clear();
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      if (ln.valid && ln.rs_ready && ln.rs.HasNext()) work_.push_back(l);
    }
    if (work_.empty()) return;
    if (o_.level >= GcgtLevel::kWarpCentric && work_.size() <= 2) {
      bool any_heavy = false;
      for (int l : work_) {
        if (lanes_[l].rs.remaining() >=
            static_cast<uint64_t>(o_.warp_centric_min_residuals)) {
          any_heavy = true;
        }
      }
      if (any_heavy) {
        for (int l : work_) WarpCentricStream(l);
        return;
      }
    }
    StealWindows(work_, /*handoff=*/o_.level >= GcgtLevel::kWarpCentric);
    if (o_.level < GcgtLevel::kWarpCentric) return;  // StealWindows drained all
  }
}

// Stealing stage 2: the lanes still holding residuals decode concurrently
// (one decode slot per round, each active lane contributes one value to the
// shared buffer); idle lanes steal the buffered values so appends run as
// full warp-wide slots (one per `lanes` values). This keeps Alg. 3's 32:1
// append batching while letting the per-lane serial streams advance in
// parallel, and reproduces the step table of Fig. 4(d) exactly.
void WarpSim::StealWindows(const std::vector<int>& work_lanes, bool handoff) {
  if (work_lanes.empty()) return;
  buffer_.clear();
  size_t head = 0;  // buffered items before head were already appended

  // exclusiveScan over the remaining counts to compute buffer offsets.
  ctx_.SharedOp();

  auto flush = [&](bool final_flush) {
    while (buffer_.size() - head >= static_cast<size_t>(o_.lanes) ||
           (final_flush && buffer_.size() > head)) {
      size_t take = std::min<size_t>(buffer_.size() - head, o_.lanes);
      std::span<AppendItem> round(buffer_.data() + head, take);
      for (size_t i = 0; i < take; ++i) {
        round[i].exec_lane = static_cast<int>(i);
      }
      head += take;
      AppendStep(round);
    }
  };

  for (;;) {
    if (handoff) {
      // Hand long leftover streams to warp-centric decoding once at most two
      // lanes still hold work (the rest of the warp is idle).
      int busy = 0;
      bool any_heavy = false;
      for (int l : work_lanes) {
        if (lanes_[l].rs.HasNext()) {
          ++busy;
          if (lanes_[l].rs.remaining() >=
              static_cast<uint64_t>(o_.warp_centric_min_residuals)) {
            any_heavy = true;
          }
        }
      }
      if (busy > 0 && busy <= 2 && any_heavy) break;
    }
    ranges_.clear();
    size_t active = 0;
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
    for (int l : work_lanes) {
      Lane& ln = lanes_[l];
      if (!ln.rs.HasNext()) continue;
      uint64_t before = ln.rs.bit_pos();
      NodeId v = ln.rs.Next();
      PushRange(before, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
      ++active;
      if (trace_ != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "t%d:res%d", l, ln.res_idx);
        trace_->Lane(l, buf);
      }
      AppendItem it;
      it.src_lane = l;
      it.u = ln.u;
      it.v = v;
      it.origin = TraceOp::kDecodeResidual;
      it.idx1 = ln.res_idx++;
      buffer_.push_back(it);
    }
    if (active == 0) break;
    ChargeDecode(active, ranges_);
    ctx_.SharedOp();  // buffer write
    flush(false);
  }
  flush(true);
}

void WarpSim::WarpCentricStream(int lane_idx) {
  Lane& ln = lanes_[lane_idx];
  while (ln.rs.HasNext()) {
    uint64_t base = ln.rs.bit_pos();
    ParallelDecodeResult r =
        WarpCentricDecodeWindow(g_.bits().data(), g_.total_bits(), base,
                                o_.lanes, g_.options().scheme, ln.rs.remaining());
    if (r.values.empty()) break;  // corrupted stream; bail out defensively
    // Speculative decode: every lane decodes from its candidate bit; the
    // whole warp reads one small contiguous window (coalesced).
    if (trace_ != nullptr) {
      trace_->BeginStep(TraceOp::kDecodeResidual);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "t%d:wc", lane_idx);
      trace_->Lane(lane_idx, buf);
    }
    ctx_.DecodeStep(o_.lanes);
    ctx_.MemAccessRange(kBitsBase + base / 8, o_.lanes / 8 + 10);
    {
      const uint64_t first = kBitsBase + base / 8;
      const uint64_t last = first + static_cast<uint64_t>(o_.lanes / 8 + 10) - 1;
      ctx_.DecodeWords(last / 8 - first / 8 + 1);
    }
    // Pointer-jumping identification rounds (Lemma 5.2).
    for (int i = 0; i < r.rounds; ++i) {
      ctx_.Step(o_.lanes);
      ctx_.SharedOp();
    }
    // Materialize neighbor ids from the raw gap codewords.
    NodeId prev = ln.rs.prev();
    bool first = ln.rs.at_first();
    items_.clear();
    for (size_t i = 0; i < r.values.size(); ++i) {
      NodeId node;
      if (first) {
        node = static_cast<NodeId>(static_cast<int64_t>(ln.rs.source()) +
                                   ZigzagDecode(r.values[i] - 1));
        first = false;
      } else {
        node = static_cast<NodeId>(prev + r.values[i]);
      }
      prev = node;
      AppendItem it;
      it.exec_lane = static_cast<int>(i);
      it.src_lane = lane_idx;
      it.u = ln.u;
      it.v = node;
      it.origin = TraceOp::kDecodeResidual;
      it.idx1 = ln.res_idx++;
      items_.push_back(it);
    }
    ln.rs.ExternalAdvance(r.next_bit_pos, prev, r.values.size());
    AppendStep(items_);
  }
}

// ---------------------------------------------------------------------------
// Residual segmentation scheduling (paper §5.2): every lane reads its node's
// segment count; all (node, segment) tasks are distributed round-robin over
// the lanes, which decode them independently thanks to the fixed segment
// stride and per-segment relative encoding.
// ---------------------------------------------------------------------------
void WarpSim::SegmentedResidualPhase() {
  ranges_.clear();
  // Segment-count headers.
  size_t active = 0;
  for (Lane& ln : lanes_) {
    if (!ln.valid) continue;
    uint64_t before = ln.dec->bit_pos();
    ln.seg_count = ln.dec->ReadSegmentCount();
    ln.segs_read = true;
    PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
    ++active;
  }
  if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
  ChargeDecode(active, ranges_);

  tasks_.clear();
  for (int l = 0; l < o_.lanes; ++l) {
    const Lane& ln = lanes_[l];
    if (!ln.valid) continue;
    for (uint32_t s = 0; s < ln.seg_count; ++s) tasks_.push_back({l, s});
  }
  if (tasks_.empty()) return;
  ctx_.SharedOp();  // task distribution via scan

  // Round-robin assignment: executing lane e walks tasks e, e+lanes, ... so
  // no per-lane queue materialization is needed.
  exec_.assign(o_.lanes, ExecState{});
  for (int e = 0; e < o_.lanes; ++e) exec_[e].next = static_cast<size_t>(e);

  buffer_.clear();
  size_t head = 0;  // buffered items before head were already appended
  auto flush = [&](bool final_flush) {
    while (buffer_.size() - head >= static_cast<size_t>(o_.lanes) ||
           (final_flush && buffer_.size() > head)) {
      size_t take = std::min<size_t>(buffer_.size() - head, o_.lanes);
      std::span<AppendItem> round(buffer_.data() + head, take);
      for (size_t i = 0; i < take; ++i) {
        round[i].exec_lane = static_cast<int>(i);
      }
      head += take;
      ctx_.SharedOp();
      AppendStep(round);
    }
  };

  // Live executing lanes, ascending. Lanes whose task stride is exhausted
  // drop out (stable compaction keeps lane order, so rounds, charges and
  // buffer order stay identical to scanning all lanes every round).
  work_.clear();
  for (int e = 0; e < o_.lanes; ++e) work_.push_back(e);
  while (!work_.empty()) {
    ranges_.clear();
    size_t decoding = 0;
    size_t kept = 0;
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
    for (size_t idx = 0; idx < work_.size(); ++idx) {
      const int e = work_[idx];
      ExecState& st = exec_[e];
      if (st.open && !st.stream.HasNext()) st.open = false;
      if (!st.open) {
        if (st.next >= tasks_.size()) continue;  // drained: drop the lane
        const Task t = tasks_[st.next];
        st.next += static_cast<size_t>(o_.lanes);
        Lane& owner = lanes_[t.src_lane];
        st.owner = &owner;
        uint64_t base = owner.dec->SegmentBitPos(t.seg);
        st.stream = owner.dec->SegmentResiduals(t.seg);
        st.open = st.stream.HasNext();
        PushRange(base, st.stream.bit_pos(), st.chg_lo, st.chg_hi);
        ++decoding;  // the header read consumes this lane's slot this round
        work_[kept++] = e;
        continue;
      }
      uint64_t before = st.stream.bit_pos();
      NodeId v = st.stream.Next();
      PushRange(before, st.stream.bit_pos(), st.chg_lo, st.chg_hi);
      ++decoding;
      work_[kept++] = e;
      AppendItem it;
      it.src_lane = e;
      it.u = st.owner->u;
      it.v = v;
      it.origin = TraceOp::kDecodeResidual;
      it.idx1 = st.owner->res_idx++;
      buffer_.push_back(it);
    }
    work_.resize(kept);
    if (decoding == 0) break;
    ChargeDecode(decoding, ranges_);
    flush(false);
  }
  flush(true);
}

// Segmented layout under levels < kFull: each lane walks its own segments
// serially (no cross-lane distribution). Only exercised by non-default
// configurations; kept for completeness.
void WarpSim::SegmentedSerialResiduals() {
  ranges_.clear();
  // Segment-count headers.
  size_t active = 0;
  for (Lane& ln : lanes_) {
    if (!ln.valid) continue;
    uint64_t before = ln.dec->bit_pos();
    ln.seg_count = ln.dec->ReadSegmentCount();
    ln.segs_read = true;
    PushRange(before, ln.dec->bit_pos(), ln.chg_lo, ln.chg_hi);
    ++active;
  }
  if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
  ChargeDecode(active, ranges_);

  for (;;) {
    // Open next segment for lanes whose stream is exhausted.
    ranges_.clear();
    size_t opening = 0;
    for (Lane& ln : lanes_) {
      if (!ln.valid) continue;
      if (ln.rs_ready && ln.rs.HasNext()) continue;
      if (ln.seg_next >= ln.seg_count) {
        ln.rs_ready = false;
        continue;
      }
      uint64_t base = ln.dec->SegmentBitPos(ln.seg_next);
      ln.rs = ln.dec->SegmentResiduals(ln.seg_next);
      ++ln.seg_next;
      ln.rs_ready = true;
      PushRange(base, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
      ++opening;
    }
    if (opening > 0) {
      if (trace_ != nullptr) trace_->BeginStep(TraceOp::kHeader);
      ChargeDecode(opening, ranges_);
    }
    // One decode + append round.
    ranges_.clear();
    items_.clear();
    size_t decoding = 0;
    if (trace_ != nullptr) trace_->BeginStep(TraceOp::kDecodeResidual);
    for (int l = 0; l < o_.lanes; ++l) {
      Lane& ln = lanes_[l];
      if (!ln.valid || !ln.rs_ready || !ln.rs.HasNext()) continue;
      uint64_t before = ln.rs.bit_pos();
      NodeId v = ln.rs.Next();
      PushRange(before, ln.rs.bit_pos(), ln.chg_lo, ln.chg_hi);
      ++decoding;
      AppendItem it;
      it.exec_lane = l;
      it.src_lane = l;
      it.u = ln.u;
      it.v = v;
      it.origin = TraceOp::kDecodeResidual;
      it.idx1 = ln.res_idx++;
      items_.push_back(it);
    }
    if (decoding == 0 && opening == 0) break;
    if (decoding > 0) {
      ChargeDecode(decoding, ranges_);
      AppendStep(items_);
    }
  }
}

WarpStats WarpSim::Run(std::span<const NodeId> chunk) {
  label_filter_.NextWarp();
  offset_filter_.NextWarp();
  if (g_.options().codec != CodecId::kCgr) {
    // Byte codecs have no interval/residual split; the scheduling levels
    // collapse into one table-driven block walk.
    ByteCodecPhase(chunk);
    return ctx_.TakeStats();
  }
  HeaderPhase(chunk);
  if (o_.level == GcgtLevel::kIntuitive) {
    RunIntuitive();
  } else {
    IntervalPhase();
    if (segmented()) {
      if (o_.level >= GcgtLevel::kFull) {
        SegmentedResidualPhase();
      } else {
        SegmentedSerialResiduals();
      }
    } else {
      SetupUnsegmentedResiduals();
      if (o_.level == GcgtLevel::kTwoPhase) {
        ResidualPhaseTwoPhase();
      } else {
        ResidualPhaseStealing();
      }
    }
  }
  return ctx_.TakeStats();
}

}  // namespace

namespace internal {

/// Worker-thread state: one reusable warp simulator plus the claim arena
/// its chunks' ClaimBatch calls fill. Arenas are cleared (capacity kept)
/// every level.
struct WorkerState {
  WorkerState(const CgrGraph& g, const GcgtOptions& o) : sim(g, o) {}
  WarpSim sim;
  ClaimArena arena;
};

/// Result of enumerating + claiming one warp chunk, before the resolve and
/// merge phases.
struct ChunkRecord {
  simt::WarpStats stats;    // decision-independent charges from the warp walk
  uint32_t worker = 0;      // which WorkerState owns the arena slices below
  uint32_t chunk_size = 0;  // frontier nodes in this warp
  size_t cand_begin = 0;
  size_t batch_begin = 0;
  size_t batch_end = 0;
};

struct EngineScratch {
  EngineScratch(const CgrGraph& g, const GcgtOptions& o)
      : pool(&SharedThreadPool(o.num_threads <= 0
                                   ? 0
                                   : static_cast<size_t>(o.num_threads))),
        serial_sim(g, o) {
    workers.reserve(pool->num_threads());
    for (size_t t = 0; t < pool->num_threads(); ++t) {
      workers.push_back(std::make_unique<WorkerState>(g, o));
    }
    replay.Configure(o.replay_cache_bytes, o.replay_min_degree,
                     o.replay_min_touches, g.num_nodes());
    if (replay.enabled()) {
      pending_fill.assign(g.num_nodes(), nullptr);
      // Apply the degree gate once here (prepare time) instead of per
      // capture: gated nodes never register, so queries pay zero admission
      // bookkeeping for them. On a real GPU the degrees come off the CSR
      // offset array for free; here one decode sweep at prepare amortizes
      // across every query on the session.
      if (o.replay_min_degree > 1) {
        const uint64_t min_degree =
            static_cast<uint64_t>(o.replay_min_degree);
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          if (g.EncodedDegree(u) < min_degree) replay.RejectForever(u);
        }
      }
    }
    if (g.partitioned() && o.ooc_resident_bytes > 0) {
      pager.Configure(g.partitions(), o.ooc_resident_bytes,
                      o.cost.cache_line_bytes);
    }
  }

  ThreadPool* pool;  // process-shared, never null
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::vector<ChunkRecord> records;
  WarpSim serial_sim;
  // Decoded-adjacency replay cache + per-round hit/miss partition (reused
  // across rounds; capacity persists). All replay decisions happen serially
  // in frontier order in ProcessFrontier's prologue.
  ReplayCache replay;
  // Out-of-core partition pager (disabled unless the graph is partitioned
  // and a resident budget is set). Driven serially in frontier order by
  // ProcessFrontier's prologue, like the replay cache.
  ooc::PartitionPager pager;
  std::vector<NodeId> replay_nodes;
  std::vector<NodeId> miss_nodes;
  std::vector<const std::vector<NodeId>*> replay_adjs;
  // Admissions in flight this round (filled by AppendStep capture during the
  // miss expansion, admitted in ProcessFrontier's epilogue in frontier
  // order). fill_nodes keeps the deterministic admission order; late_nodes
  // are same-round repeats of admission candidates, served from the capture.
  FillMap pending_fill;
  std::vector<NodeId> fill_nodes;
  std::vector<NodeId> late_nodes;
  std::vector<const std::vector<NodeId>*> late_adjs;

  /// Reusable FillSlot arena: slots keep their adj capacity across rounds,
  /// so a round's admissions cost one claimed-flag store and a clear() each.
  FillSlot* AcquireSlot() {
    if (slots_used == slot_pool.size()) {
      slot_pool.push_back(std::make_unique<FillSlot>());
    }
    FillSlot* slot = slot_pool[slots_used++].get();
    slot->claimed.store(false, std::memory_order_relaxed);
    slot->has_late_hit = false;
    slot->adj.clear();
    return slot;
  }
  void ReleaseSlots() {
    for (NodeId u : fill_nodes) pending_fill[u] = nullptr;
    slots_used = 0;
  }
  std::vector<std::unique_ptr<FillSlot>> slot_pool;
  size_t slots_used = 0;
};

}  // namespace internal

namespace {
std::atomic<uint64_t> g_engines_constructed{0};
}  // namespace

uint64_t CgrTraversalEngine::ConstructedCount() {
  return g_engines_constructed.load(std::memory_order_relaxed);
}

CgrTraversalEngine::CgrTraversalEngine(const CgrGraph& graph,
                                       const GcgtOptions& options)
    : graph_(graph), options_(options) {
  g_engines_constructed.fetch_add(1, std::memory_order_relaxed);
}

CgrTraversalEngine::~CgrTraversalEngine() = default;

void CgrTraversalEngine::ResetReplay() const {
  if (scratch_) scratch_->replay.Reset();
}

void CgrTraversalEngine::SetReplayBudgetCap(uint64_t cap_bytes) const {
  replay_cap_ = cap_bytes;
  if (scratch_) {
    scratch_->replay.SetCapacity(
        std::min(options_.replay_cache_bytes, replay_cap_));
  }
}

void CgrTraversalEngine::ResetPager() const {
  if (scratch_) scratch_->pager.Reset();
}

uint64_t CgrTraversalEngine::PagerResidentPeak() const {
  return scratch_ ? scratch_->pager.resident_bytes_peak() : 0;
}

internal::EngineScratch& CgrTraversalEngine::Scratch() const {
  if (!scratch_) {
    scratch_ = std::make_unique<internal::EngineScratch>(graph_, options_);
    if (replay_cap_ < options_.replay_cache_bytes) {
      // The scratch Configure()s the replay cache at the full configured
      // budget (the per-node state arrays size off enablement there); a
      // pre-existing brownout cap then only bounds the capacity.
      scratch_->replay.SetCapacity(replay_cap_);
    }
  }
  return *scratch_;
}

void CgrTraversalEngine::ProcessFrontier(std::span<const NodeId> frontier,
                                         FrontierFilter& filter,
                                         std::vector<NodeId>* out_frontier,
                                         std::vector<simt::WarpStats>* warp_stats,
                                         StepTrace* trace) const {
  if (frontier.empty()) return;
  const size_t lanes = static_cast<size_t>(options_.lanes);
  internal::EngineScratch& scratch = Scratch();

  // Replay prologue (serial, frontier order): partition the frontier into
  // replay hits and misses, make this round's admission decisions, and
  // expand the hits from the replay buffer. Hits run before misses, so the
  // round's append order is (hits in frontier order, then misses in frontier
  // order) — deterministic and thread-count independent, since everything
  // here is serial and the miss frontier then flows through the standard
  // serial/parallel machinery below.
  std::span<const NodeId> work = frontier;
  const bool replay_on = scratch.replay.enabled();
  if (replay_on) {
    scratch.replay_nodes.clear();
    scratch.miss_nodes.clear();
    scratch.replay_adjs.clear();
    scratch.fill_nodes.clear();
    scratch.late_nodes.clear();
    scratch.late_adjs.clear();
    for (NodeId u : frontier) {
      if (const std::vector<NodeId>* adj = scratch.replay.Touch(u)) {
        scratch.replay_nodes.push_back(u);
        scratch.replay_adjs.push_back(adj);
        continue;
      }
      // A repeat of a node already registered for admission this round: its
      // adjacency will be captured by the first occurrence's expansion, so
      // the duplicate replays from that capture in the epilogue instead of
      // decoding again ("late hit").
      if (FillSlot* slot = scratch.pending_fill[u]) {
        slot->has_late_hit = true;
        scratch.late_nodes.push_back(u);
        continue;
      }
      // Admission: the node expands as a miss this round and its (u, v)
      // pairs are captured from that expansion into pending_fill — no second
      // decode, not even a degree probe (the degree gate runs against the
      // captured size in the epilogue). Hits start next round.
      if (scratch.replay.WantsAdmit(u)) {
        scratch.pending_fill[u] = scratch.AcquireSlot();
        scratch.fill_nodes.push_back(u);
      }
      scratch.miss_nodes.push_back(u);
    }
    for (size_t off = 0; off < scratch.replay_nodes.size(); off += lanes) {
      const size_t n =
          std::min<size_t>(lanes, scratch.replay_nodes.size() - off);
      warp_stats->push_back(scratch.serial_sim.RunReplay(
          std::span<const NodeId>(scratch.replay_nodes).subspan(off, n),
          scratch.replay_adjs.data() + off, filter, out_frontier, trace));
    }
    if (scratch.miss_nodes.empty()) return;
    work = scratch.miss_nodes;
    if (!scratch.fill_nodes.empty()) {
      scratch.serial_sim.SetFillMap(&scratch.pending_fill);
      for (auto& w : scratch.workers) w->sim.SetFillMap(&scratch.pending_fill);
    }
  }

  // Pager prologue (serial, frontier order): fault in every partition this
  // round's expansion will decode from, pinning it so the round's own
  // working set can't evict itself. The external-tier traffic is charged as
  // one standalone maintenance WarpStats entry (like the replay-fill entry):
  // faults and spills are not any warp's decode work, and a dedicated entry
  // keeps the in-core mem_txns semantics untouched — which is what keeps
  // results and all pre-existing charges bit-identical to the in-core run.
  // Replay hits above bypass the pager by design: they expand from the
  // decoded replay buffer, which is device-resident, not from the encoded
  // partition bytes.
  if (scratch.pager.enabled()) {
    simt::WarpStats page;
    for (NodeId u : work) {
      const ooc::PartitionPager::Touch t = scratch.pager.TouchNode(u);
      page.partition_faults += t.faults;
      page.partition_spills += t.spills;
      page.partition_pins += t.pins;
      page.fault_txns += t.fault_txns;
      page.spill_txns += t.spill_txns;
    }
    scratch.pager.EndRound();
    warp_stats->push_back(page);
  }

  // Runs after the miss expansion on every exit path: gates and admits the
  // captured adjacencies (frontier order, so LRU state stays deterministic),
  // charges the fill writes as a standalone cache-maintenance stats entry —
  // fills and evictions are not any warp's decode work, and a dedicated
  // entry keeps mem_txns semantics untouched — then expands this round's
  // late hits from the captures.
  auto finish_fills = [&]() {
    if (!replay_on || scratch.fill_nodes.empty()) return;
    scratch.serial_sim.SetFillMap(nullptr);
    for (auto& w : scratch.workers) w->sim.SetFillMap(nullptr);
    uint64_t fill_txns = 0;
    uint64_t evictions = 0;
    const uint64_t line = static_cast<uint64_t>(options_.cost.cache_line_bytes);
    for (NodeId u : scratch.fill_nodes) {
      FillSlot& slot = *scratch.pending_fill[u];
      if (!scratch.replay.MeetsDegreeGate(slot.adj.size())) {
        scratch.replay.Reject(u);
        continue;
      }
      // The captured vector moves into the cache (no copy), except when a
      // same-round late hit still needs the slot's content — the admitted
      // entry could be evicted by a later admission this very round.
      const uint64_t degree = slot.adj.size();
      ReplayCache::AdmitResult r = scratch.replay.Admit(
          u, slot.has_late_hit ? std::vector<NodeId>(slot.adj)
                               : std::move(slot.adj));
      if (r.admitted) {
        fill_txns += 1 + (4ull * degree + line - 1) / line;
        evictions += r.evictions;
      }
    }
    if (fill_txns > 0 || evictions > 0) {
      simt::WarpStats maint;
      maint.replay_txns = fill_txns;
      maint.replay_evictions = evictions;
      warp_stats->push_back(maint);
    }
    // Late hits: repeats of this round's admission candidates, expanded from
    // the captured adjacency after the misses (deterministic order; the
    // has_late_hit copy above guarantees the slot content is intact).
    for (NodeId u : scratch.late_nodes) {
      scratch.late_adjs.push_back(&scratch.pending_fill[u]->adj);
    }
    for (size_t off = 0; off < scratch.late_nodes.size(); off += lanes) {
      const size_t n = std::min<size_t>(lanes, scratch.late_nodes.size() - off);
      warp_stats->push_back(scratch.serial_sim.RunReplay(
          std::span<const NodeId>(scratch.late_nodes).subspan(off, n),
          scratch.late_adjs.data() + off, filter, out_frontier, trace));
    }
    scratch.ReleaseSlots();
  };

  const size_t num_chunks = (work.size() + lanes - 1) / lanes;

  // Serial reference path: one chunk at a time, filter decisions inline.
  // Taken for single-threaded configs, StepTrace recording (trace steps of
  // concurrent warps would interleave), and single-chunk frontiers (nothing
  // to parallelize).
  const bool serial = options_.num_threads == 1 || trace != nullptr ||
                      num_chunks == 1 || scratch.pool->num_threads() == 1;
  if (serial) {
    for (size_t off = 0; off < work.size(); off += lanes) {
      size_t n = std::min<size_t>(lanes, work.size() - off);
      warp_stats->push_back(scratch.serial_sim.RunSerial(
          work.subspan(off, n), filter, out_frontier, trace));
    }
    finish_fills();
    return;
  }

  // Phase 1 (parallel): every worker enumerates its chunks' (u, v) pairs,
  // charges all decision-independent costs, and runs the filter's claim pass
  // per append slot (atomic claims + candidate recording — see
  // FrontierFilter::ClaimBatch). The warp walk never reads filter state, so
  // this is exact regardless of scheduling.
  filter.PrepareClaims();
  scratch.records.assign(num_chunks, internal::ChunkRecord{});
  for (auto& w : scratch.workers) w->arena.Clear();
  scratch.pool->ParallelFor(
      num_chunks, 1, [&](size_t worker, size_t begin, size_t end) {
        internal::WorkerState& ws = *scratch.workers[worker];
        for (size_t ci = begin; ci < end; ++ci) {
          const size_t off = ci * lanes;
          const size_t n = std::min<size_t>(lanes, work.size() - off);
          internal::ChunkRecord& rec = scratch.records[ci];
          rec.worker = static_cast<uint32_t>(worker);
          rec.chunk_size = static_cast<uint32_t>(n);
          rec.cand_begin = ws.arena.cands.size();
          rec.batch_begin = ws.arena.batch_ends.size();
          ClaimBatchWriter writer(ws.arena, static_cast<uint64_t>(ci) << 32);
          rec.stats =
              ws.sim.RunEnumerate(work.subspan(off, n), filter, writer);
          rec.batch_end = ws.arena.batch_ends.size();
        }
      });

  // Phase 2 (parallel): with every chunk's claims in place, the filter
  // settles the order-independent decisions per chunk — for claim-based
  // filters the minimum-rank claimant of each label is exactly the edge the
  // serial engine would have accepted, so winners apply their label writes
  // and compact the accepted targets here, race-free.
  for (auto& w : scratch.workers) w->arena.PrepareResolve();
  scratch.pool->ParallelFor(
      num_chunks, 1, [&](size_t /*worker*/, size_t begin, size_t end) {
        for (size_t ci = begin; ci < end; ++ci) {
          internal::ChunkRecord& rec = scratch.records[ci];
          ChunkClaims claims(scratch.workers[rec.worker]->arena, rec.cand_begin,
                             rec.batch_begin, rec.batch_end);
          filter.ResolveChunk(claims);
        }
      });

  // Phase 3 (serial prefix-sum merge, chunk order): concatenate the
  // per-chunk claim buffers into the global out-frontier and charge the
  // decision-dependent costs. Only two charge kinds depend on decisions:
  //  - filter atomics (hooking CAS, sigma/delta atomicAdd), reported by
  //    MergeBatch per append slot;
  //  - the queue-append line transactions, reconstructed from each slot's
  //    queue tail + accepted count (simt::QueueAppendCharges; label-write
  //    lines are always a subset of the visited-check gather already charged
  //    in phase 1). Order-dependent filter effects (running claim minima,
  //    float accumulation) also run here, in serial order.
  const int line_bytes = options_.cost.cache_line_bytes;
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    internal::ChunkRecord& rec = scratch.records[ci];
    ChunkClaims claims(scratch.workers[rec.worker]->arena, rec.cand_begin,
                       rec.batch_begin, rec.batch_end);
    simt::QueueAppendCharges charges(kQueueBase, 4, line_bytes, rec.chunk_size);
    for (size_t b = 0; b < claims.num_batches(); ++b) {
      const size_t tail = out_frontier->size();
      if (int extra = filter.MergeBatch(claims, b, out_frontier); extra > 0) {
        rec.stats.atomics += static_cast<uint64_t>(extra);
      }
      rec.stats.mem_txns += charges.Charge(tail, out_frontier->size() - tail);
    }
    warp_stats->push_back(rec.stats);
  }
  finish_fills();
}

}  // namespace gcgt
