// Configuration of the GCGT traversal engine.
#ifndef GCGT_CORE_GCGT_OPTIONS_H_
#define GCGT_CORE_GCGT_OPTIONS_H_

#include "simt/cost_model.h"

namespace gcgt {

/// Cumulative optimization levels, exactly as paper Fig. 9 applies them.
/// Each level includes everything below it.
enum class GcgtLevel : int {
  kIntuitive = 0,     ///< Alg. 1: one lane decodes one list serially
  kTwoPhase = 1,      ///< + Alg. 2: separate interval / residual phases
  kTaskStealing = 2,  ///< + Alg. 3: idle lanes steal residual appends
  kWarpCentric = 3,   ///< + Alg. 4: speculative parallel VLC decoding
  kFull = 4,          ///< + residual segmentation scheduling (= GCGT)
};

inline const char* GcgtLevelName(GcgtLevel level) {
  switch (level) {
    case GcgtLevel::kIntuitive: return "Intuitive";
    case GcgtLevel::kTwoPhase: return "TwoPhaseTraversal";
    case GcgtLevel::kTaskStealing: return "TaskStealing";
    case GcgtLevel::kWarpCentric: return "Warp-centric";
    case GcgtLevel::kFull: return "ResidualSegmentation (GCGT)";
  }
  return "?";
}

struct GcgtOptions {
  GcgtLevel level = GcgtLevel::kFull;
  /// Lanes per warp; 32 in production, 8/16 in the paper's worked examples.
  int lanes = simt::kWarpSize;
  /// A lane's residual list is handed to warp-centric decoding when at least
  /// this many residuals remain after the stealing stage.
  int warp_centric_min_residuals = 32;
  /// Host threads simulating warps concurrently. 0 = hardware concurrency,
  /// 1 = the serial reference engine. Results (frontiers, labels, per-warp
  /// stats, modeled cycles) are bit-identical for every value; StepTrace
  /// recording always runs on the serial path.
  int num_threads = 0;
  /// Decoded-adjacency replay cache for hot vertices. 0 disables it (the
  /// default: replayed expansion changes append order, so cached rows are a
  /// distinct benched configuration, not a silent change to existing ones).
  /// When enabled, a frontier node whose decoded adjacency is resident is
  /// expanded from the replay buffer (charged as WarpStats::replay_txns)
  /// instead of re-decoding its compressed list. Admission is gated on
  /// degree >= replay_min_degree and on the node having entered >=
  /// replay_min_touches frontiers this query; the cache is invalidated at
  /// every query start (TraversalPipeline::Reset), so results and metrics
  /// stay deterministic per query.
  uint64_t replay_cache_bytes = 0;
  int replay_min_degree = 32;
  int replay_min_touches = 2;
  /// Out-of-core tier: device-resident budget (bytes) for the encoded
  /// adjacency data of a PARTITIONED graph (CgrGraph::partitioned()). 0
  /// disables paging — the whole bit stream is device-resident, exactly as
  /// before. When enabled, only min(budget, encoded bytes) counts against
  /// the device-memory check; frontier expansion faults non-resident
  /// partitions in through the PartitionPager (LRU spill, pin/unpin per
  /// round) and the moved lines are charged as the external-tier class
  /// (WarpStats::fault_txns/spill_txns, CostModel::
  /// external_latency_multiplier). Results and labels stay bit-identical to
  /// the in-core engine at every budget; only wall time and the new modeled
  /// charges differ. The pager is reset at every query start, so every query
  /// starts cold and metrics stay deterministic.
  uint64_t ooc_resident_bytes = 0;
  /// Intersection queries (src/intersect) normally intersect the COMPRESSED
  /// adjacency representations directly (interval-vs-interval run overlap,
  /// interval-vs-residual membership probes, residual-vs-residual stream
  /// merge). true forces the full-decode-then-merge baseline instead: decode
  /// both lists to scratch, then element-merge — the A/B knob bench_intersect
  /// uses to show the decode-free win. Results are bit-identical either way;
  /// only modeled metrics move (so the flag participates in artifact
  /// fingerprints).
  bool intersect_full_decode = false;
  simt::CostModel cost;
  simt::DeviceSpec device;
};

}  // namespace gcgt

#endif  // GCGT_CORE_GCGT_OPTIONS_H_
