#include "core/trace.h"

#include <cstdio>

namespace gcgt {

std::string StepTrace::ToTable(int num_lanes) const {
  std::string out = "step";
  for (int l = 0; l < num_lanes; ++l) {
    out += "\tt" + std::to_string(l);
  }
  out += "\n";
  size_t paper_step = 0;
  for (const auto& s : steps_) {
    if (s.op == TraceOp::kHeader || s.lanes.empty()) continue;
    std::vector<std::string> row(num_lanes);
    for (const auto& [lane, label] : s.lanes) {
      if (lane < num_lanes) row[lane] = label;
    }
    out += std::to_string(paper_step++);
    for (const auto& cell : row) out += "\t" + cell;
    out += "\n";
  }
  return out;
}

}  // namespace gcgt
