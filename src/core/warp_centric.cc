#include "core/warp_centric.h"

#include <algorithm>

#include "util/bit_stream.h"

namespace gcgt {

ParallelDecodeResult WarpCentricDecodeWindow(const uint8_t* bits,
                                             size_t total_bits, uint64_t base,
                                             int lanes, VlcScheme scheme,
                                             uint64_t max_values) {
  ParallelDecodeResult out;
  if (max_values == 0 || base >= total_bits) {
    out.next_bit_pos = base;
    return out;
  }

  // Speculative phase: every lane decodes one codeword from its candidate
  // start (paper Alg. 4 lines 5-8).
  std::vector<uint64_t> vals(lanes, 0);
  std::vector<uint64_t> poss(lanes, 0);  // end position, relative to base
  for (int lane = 0; lane < lanes; ++lane) {
    uint64_t start = base + static_cast<uint64_t>(lane);
    if (start >= total_bits) {
      poss[lane] = static_cast<uint64_t>(lanes);  // past-window sentinel
      continue;
    }
    BitReader r(bits, total_bits, start);
    vals[lane] = VlcDecode(scheme, &r);
    poss[lane] = r.pos() - base;
  }

  // Marking phase: pointer jumping from lane 0 (always a valid start).
  // flags[l] = candidate l is a valid codeword start. Each round, every
  // marked lane with an in-window pos marks poss[l]; EVERY lane (marked or
  // not, Alg. 4 line 15) jumps its pos to poss[poss[l]], so after round n a
  // marked lane's pos points 2^n codewords ahead and the marked count
  // doubles per round (Lemma 5.2, Fig. 5).
  std::vector<uint8_t> flags(lanes, 0);
  std::vector<uint64_t> jump = poss;
  flags[0] = 1;
  int rounds = 0;
  for (;;) {
    bool any_active = false;
    for (int l = 0; l < lanes; ++l) {
      if (flags[l] && jump[l] < static_cast<uint64_t>(lanes)) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    ++rounds;
    std::vector<uint8_t> new_flags = flags;
    std::vector<uint64_t> new_jump = jump;
    for (int l = 0; l < lanes; ++l) {
      uint64_t p = jump[l];
      if (p >= static_cast<uint64_t>(lanes)) continue;
      if (flags[l]) new_flags[p] = 1;
      new_jump[l] = jump[p];
    }
    flags = std::move(new_flags);
    jump = std::move(new_jump);
  }
  out.rounds = rounds;

  // Collect valid decodings in stream order, capped at max_values; track the
  // continuation position by walking the chain.
  uint64_t pos = 0;  // window-relative; 0 is valid by precondition
  while (pos < static_cast<uint64_t>(lanes) &&
         out.values.size() < max_values) {
    int lane = static_cast<int>(pos);
    out.values.push_back(vals[lane]);
    out.valid_offsets.push_back(static_cast<uint32_t>(pos));
    pos = poss[lane];
  }
  out.next_bit_pos = base + pos;
  return out;
}

}  // namespace gcgt
