// The expansion–filtering–contraction pipeline of paper §6 (Fig. 7) as an
// explicit, reusable layer. A TraversalPipeline owns the pieces every GCGT
// workload driver used to re-implement by hand:
//  - the frontier ping-pong loop over CgrTraversalEngine::ProcessFrontier,
//  - the KernelTimeline collecting one kernel per round (plus any per-round
//    auxiliary kernels, e.g. CC's pointer jumping),
//  - the modeled device-footprint accounting and budget check,
//  - the per-round contraction policy applied to the out-frontier.
//
// BFS, Connected Components and Betweenness Centrality are thin
// configurations of this class: BFS runs to fixpoint with no contraction,
// CC with sort-unique contraction and a pointer-jump post-round kernel, and
// BC captures each forward level and then replays them backward.
#ifndef GCGT_CORE_TRAVERSAL_PIPELINE_H_
#define GCGT_CORE_TRAVERSAL_PIPELINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/frontier_filter.h"
#include "core/gcgt_options.h"
#include "core/trace.h"
#include "simt/machine.h"
#include "util/cancel_token.h"
#include "util/status.h"

namespace gcgt {

/// What happens to a round's out-frontier before it becomes the next
/// round's input (paper Fig. 7 "contraction").
enum class ContractionPolicy {
  kNone,        ///< out-frontier is used as-is (BFS)
  kSortUnique,  ///< sort + deduplicate (CC's node-centric re-scan set)
  kCaptureLevels,  ///< additionally record every round's input frontier (BC)
};

class TraversalPipeline {
 public:
  /// Extra kernels to model after each round's traversal kernel (e.g. CC's
  /// commit + pointer jump). The returned per-warp stats are added to the
  /// timeline as one kernel.
  using PostRoundKernel = std::function<std::vector<simt::WarpStats>()>;

  /// Owns a fresh engine — the one-shot path used by the free-function
  /// drivers (GcgtBfs/GcgtCc/GcgtBc on a CgrGraph).
  TraversalPipeline(const CgrGraph& graph, const GcgtOptions& options)
      : owned_engine_(std::make_unique<CgrTraversalEngine>(graph, options)),
        engine_(owned_engine_.get()),
        timeline_(options.cost) {}

  /// Borrows a caller-owned persistent engine — the prepare-once/query-many
  /// path (GcgtSession): queries through this pipeline construct no engine
  /// and reuse its warp scratch. The engine must outlive the pipeline.
  explicit TraversalPipeline(const CgrTraversalEngine& engine)
      : engine_(&engine), timeline_(engine.options().cost) {}

  /// Clears per-query state (timeline, captured levels, footprint) while
  /// keeping frontier-buffer and engine-scratch capacity, so one pipeline
  /// serves many queries without reallocating. Call between queries.
  /// The cancel token survives Reset: drivers Reset() internally, so the
  /// caller installs the token once per query via SetCancelToken.
  void Reset() {
    timeline_.Reset();
    levels_.clear();
    device_bytes_ = 0;
    // New query epoch: hot-vertex replay state must not leak across queries.
    // (BC resets once per query, so replay persists across a BC query's
    // sources and backward sweeps — by design.)
    engine_->ResetReplay();
    // Same epoch rule for the out-of-core pager: every query starts cold.
    engine_->ResetPager();
  }

  /// Installs the token Run/RunBackward poll once per round (cooperative
  /// cancellation and deadlines). Install a default token to clear it; an
  /// aborted query leaves only per-query state, which Reset() clears — the
  /// pipeline and engine stay reusable after an abort.
  void SetCancelToken(CancelToken token) { cancel_ = std::move(token); }

  /// Models the device footprint as the engine's base bytes (compressed
  /// adjacency + offsets) plus `aux_bytes` (labels, queues, sigma/delta...)
  /// and checks it against the configured device memory.
  Status ReserveDevice(uint64_t aux_bytes, const char* workload) {
    device_bytes_ = engine_->BaseDeviceBytes() + aux_bytes;
    if (device_bytes_ > engine_->options().device.memory_bytes) {
      return Status::OutOfMemory(std::string(workload) +
                                 " footprint exceeds device memory");
    }
    return Status::OK();
  }

  /// Runs the expand–filter–contract loop until the frontier drains.
  /// Each round: poll the cancel token (Cancelled/DeadlineExceeded aborts
  /// mid-traversal between rounds) -> ProcessFrontier -> one timeline kernel
  /// -> optional `post_round` kernel -> contraction policy. Returns rounds
  /// executed. `trace` (Fig. 4 tables) forces the engine's serial path.
  Result<int> Run(std::vector<NodeId> frontier, FrontierFilter& filter,
                  ContractionPolicy contraction, StepTrace* trace = nullptr,
                  const PostRoundKernel& post_round = nullptr);

  /// Replays the levels captured by kCaptureLevels deepest-first through
  /// `filter`, discarding any out-frontier (BC's backward sweep). Polls the
  /// cancel token per level, like Run.
  Status RunBackward(FrontierFilter& filter);

  /// Input frontiers of each round, recorded under kCaptureLevels.
  const std::vector<std::vector<NodeId>>& levels() const { return levels_; }

  /// Aggregated metrics of everything run through this pipeline so far.
  TraversalMetrics Metrics() const {
    TraversalMetrics m;
    m.model_ms = timeline_.TotalMs();
    m.kernels = timeline_.num_kernels();
    m.device_bytes = device_bytes_;
    m.resident_bytes_peak = engine_->PagerResidentPeak();
    m.warp = timeline_.aggregate();
    return m;
  }

  const CgrTraversalEngine& engine() const { return *engine_; }

 private:
  /// The per-round abort check shared by Run and RunBackward: cooperative
  /// cancellation plus the kDecodeRound fault-injection point.
  Status CheckRound() const;

  std::unique_ptr<CgrTraversalEngine> owned_engine_;  // null when borrowing
  const CgrTraversalEngine* engine_;                  // never null
  CancelToken cancel_;
  simt::KernelTimeline timeline_;
  uint64_t device_bytes_ = 0;
  std::vector<std::vector<NodeId>> levels_;
  // Reused across rounds and queries (capacity persists through Reset()).
  std::vector<NodeId> next_;
  std::vector<simt::WarpStats> warps_;
};

}  // namespace gcgt

#endif  // GCGT_CORE_TRAVERSAL_PIPELINE_H_
