// GCGT Betweenness Centrality: Brandes-style two-pass traversal
// (paper §6 / Fig. 7(d), following Sriram et al.): a forward BFS computing
// distances and shortest-path counts (sigma), and a backward sweep over the
// BFS levels accumulating dependencies (delta).
#ifndef GCGT_CORE_BC_H_
#define GCGT_CORE_BC_H_

#include <vector>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/gcgt_options.h"
#include "util/status.h"

namespace gcgt {

struct GcgtBcResult {
  /// Single-source dependency (Brandes delta) of each node w.r.t. `source`.
  std::vector<double> dependency;
  std::vector<uint32_t> depth;
  std::vector<double> sigma;
  TraversalMetrics metrics;
};

Result<GcgtBcResult> GcgtBc(const CgrGraph& graph, NodeId source,
                            const GcgtOptions& options);

}  // namespace gcgt

#endif  // GCGT_CORE_BC_H_
