// GCGT Betweenness Centrality: Brandes-style two-pass traversal
// (paper §6 / Fig. 7(d), following Sriram et al.): a forward BFS computing
// distances and shortest-path counts (sigma), and a backward sweep over the
// BFS levels accumulating dependencies (delta).
#ifndef GCGT_CORE_BC_H_
#define GCGT_CORE_BC_H_

#include <vector>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/gcgt_options.h"
#include "util/status.h"

namespace gcgt {

class TraversalPipeline;

struct GcgtBcResult {
  /// Single-source dependency (Brandes delta) of each node w.r.t. `source`;
  /// for multi-source session queries, the sum over the query's sources.
  std::vector<double> dependency;
  std::vector<uint32_t> depth;
  std::vector<double> sigma;
  TraversalMetrics metrics;
};

/// Per-source label buffers of a multi-source BC batch, reused (reset, not
/// reallocated) across sources. After a batch, depth/sigma hold the values
/// of the last source run.
struct BcBatchScratch {
  std::vector<uint32_t> depth;
  std::vector<double> sigma;
  std::vector<double> delta;
};

/// Modeled auxiliary device footprint of one BC run over `num_nodes` nodes
/// (labels, sigma/delta, queues, level lists) — what a driver reserves
/// before running sources.
uint64_t BcAuxBytes(uint64_t num_nodes);

/// Batch building block: runs one Brandes source through `pipeline` WITHOUT
/// resetting it (kernel timelines accumulate across the batch), reusing
/// `scratch`, and adds the source's dependency into `dependency` (sized to
/// the graph on first use). The caller reserves device memory once per
/// batch. The accumulation order matches running the sources one at a time,
/// so sums are bit-identical to sequential single-source runs.
Status GcgtBcAccumulate(TraversalPipeline& pipeline, NodeId source,
                        BcBatchScratch& scratch,
                        std::vector<double>& dependency);

/// Single-source BC through a caller-owned pipeline (no engine construction;
/// see GcgtBfs). Resets the pipeline first.
Result<GcgtBcResult> GcgtBc(TraversalPipeline& pipeline, NodeId source);

/// Single-query convenience wrapper (one-shot engine over `graph`).
Result<GcgtBcResult> GcgtBc(const CgrGraph& graph, NodeId source,
                            const GcgtOptions& options);

}  // namespace gcgt

#endif  // GCGT_CORE_BC_H_
