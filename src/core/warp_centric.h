// Warp-centric speculative VLC decoding (paper Alg. 4, Fig. 5, Lemma 5.2).
//
// A warp of K lanes decodes a VLC stream in parallel: lane i speculatively
// decodes a codeword starting at bit (base + i); the valid decodings are the
// ones reachable by chaining end-positions from lane 0, identified with
// pointer jumping in O(log2 K) rounds. Each window yields roughly
// K / avg_codeword_bits values, so the technique pays off exactly when the
// encoding is dense (paper §7.3: larger gains at fewer bits/edge).
#ifndef GCGT_CORE_WARP_CENTRIC_H_
#define GCGT_CORE_WARP_CENTRIC_H_

#include <cstdint>
#include <vector>

#include "cgr/vlc.h"

namespace gcgt {

struct ParallelDecodeResult {
  /// Valid decoded values, in stream order.
  std::vector<uint64_t> values;
  /// Window-relative bit offsets of the valid codeword starts.
  std::vector<uint32_t> valid_offsets;
  /// Absolute bit position of the first codeword after the window
  /// (continuation point for the next window).
  uint64_t next_bit_pos = 0;
  /// Pointer-jumping rounds the parallel marking needed (Lemma 5.2: the
  /// number of marked decodings doubles per round).
  int rounds = 0;
};

/// Decodes at most `max_values` codewords whose starts lie in the K-bit
/// window [base, base+lanes). `base` must be a codeword start. Simulates the
/// parallel marking faithfully (round count is the real doubling count).
ParallelDecodeResult WarpCentricDecodeWindow(const uint8_t* bits,
                                             size_t total_bits, uint64_t base,
                                             int lanes, VlcScheme scheme,
                                             uint64_t max_values);

}  // namespace gcgt

#endif  // GCGT_CORE_WARP_CENTRIC_H_
