#include "core/traversal_pipeline.h"

#include <algorithm>
#include <utility>

#include "util/fault_injector.h"

namespace gcgt {

Status TraversalPipeline::CheckRound() const {
  GCGT_RETURN_NOT_OK(cancel_.Check());
  if (FaultInjector::Global().ShouldInject(FaultPoint::kDecodeRound)) {
    // Simulates a decode/expand failure surfacing from the engine. Internal
    // marks it service-side and transient: the serving tier retries it.
    return Status::Internal("injected fault: decode round");
  }
  return Status::OK();
}

Result<int> TraversalPipeline::Run(std::vector<NodeId> frontier,
                                   FrontierFilter& filter,
                                   ContractionPolicy contraction,
                                   StepTrace* trace,
                                   const PostRoundKernel& post_round) {
  // A reused pipeline may still hold the previous capture (e.g. the previous
  // BC source of a batch); the backward sweep must only see this run's levels.
  if (contraction == ContractionPolicy::kCaptureLevels) levels_.clear();
  int rounds = 0;
  while (!frontier.empty()) {
    GCGT_RETURN_NOT_OK(CheckRound());
    ++rounds;
    next_.clear();
    warps_.clear();
    engine_->ProcessFrontier(frontier, filter, &next_, &warps_, trace);
    timeline_.AddKernel(warps_);
    if (post_round) timeline_.AddKernel(post_round());
    switch (contraction) {
      case ContractionPolicy::kNone:
        break;
      case ContractionPolicy::kSortUnique:
        std::sort(next_.begin(), next_.end());
        next_.erase(std::unique(next_.begin(), next_.end()), next_.end());
        break;
      case ContractionPolicy::kCaptureLevels:
        levels_.push_back(std::move(frontier));
        frontier = std::move(next_);
        next_ = std::vector<NodeId>();
        continue;
    }
    frontier.swap(next_);
  }
  return rounds;
}

Status TraversalPipeline::RunBackward(FrontierFilter& filter) {
  std::vector<NodeId> unused;
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    if (it->empty()) continue;
    GCGT_RETURN_NOT_OK(CheckRound());
    warps_.clear();
    engine_->ProcessFrontier(*it, filter, &unused, &warps_);
    timeline_.AddKernel(warps_);
  }
  return Status::OK();
}

}  // namespace gcgt
