#include "core/traversal_pipeline.h"

#include <algorithm>
#include <utility>

namespace gcgt {

int TraversalPipeline::Run(std::vector<NodeId> frontier, FrontierFilter& filter,
                           ContractionPolicy contraction, StepTrace* trace,
                           const PostRoundKernel& post_round) {
  int rounds = 0;
  std::vector<NodeId> next;
  std::vector<simt::WarpStats> warps;
  while (!frontier.empty()) {
    ++rounds;
    next.clear();
    warps.clear();
    engine_.ProcessFrontier(frontier, filter, &next, &warps, trace);
    timeline_.AddKernel(warps);
    if (post_round) timeline_.AddKernel(post_round());
    switch (contraction) {
      case ContractionPolicy::kNone:
        break;
      case ContractionPolicy::kSortUnique:
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        break;
      case ContractionPolicy::kCaptureLevels:
        levels_.push_back(std::move(frontier));
        frontier = std::move(next);
        next = std::vector<NodeId>();
        continue;
    }
    frontier.swap(next);
  }
  return rounds;
}

void TraversalPipeline::RunBackward(FrontierFilter& filter) {
  std::vector<NodeId> unused;
  std::vector<simt::WarpStats> warps;
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    if (it->empty()) continue;
    warps.clear();
    engine_.ProcessFrontier(*it, filter, &unused, &warps);
    timeline_.AddKernel(warps);
  }
}

}  // namespace gcgt
