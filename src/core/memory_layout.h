// Nominal device address-space layout for the memory-coalescing model.
// Each logical array gets a distinct high-bit base so accesses to different
// arrays never alias in the cache-line counting.
#ifndef GCGT_CORE_MEMORY_LAYOUT_H_
#define GCGT_CORE_MEMORY_LAYOUT_H_

#include <cstdint>

namespace gcgt {

inline constexpr uint64_t kBitsBase = 0x1ull << 40;     ///< CGR bit array
inline constexpr uint64_t kOffsetsBase = 0x2ull << 40;  ///< bitStart / CSR offsets
inline constexpr uint64_t kLabelBase = 0x3ull << 40;    ///< BFS labels / CC parents
inline constexpr uint64_t kQueueBase = 0x4ull << 40;    ///< frontier queues
inline constexpr uint64_t kCsrColBase = 0x5ull << 40;   ///< CSR column indices
inline constexpr uint64_t kAuxBase = 0x6ull << 40;      ///< sigma/delta/etc.

}  // namespace gcgt

#endif  // GCGT_CORE_MEMORY_LAYOUT_H_
