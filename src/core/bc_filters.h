// Forward (sigma) and backward (delta) filters of the Brandes two-pass BC
// (paper Fig. 7(d)), shared by the GCGT and GPUCSR/Gunrock engines.
//
// Label updates go through atomic CAS / CAS-add loops so the filters are
// safe under concurrent warps. Level-synchronous semantics keep the depth
// claims deterministic; sigma/delta additions are deterministic whenever the
// engine serializes the decision order (the parallel traversal engine does —
// see cgr_traversal.cc), and merely race-free otherwise.
#ifndef GCGT_CORE_BC_FILTERS_H_
#define GCGT_CORE_BC_FILTERS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/frontier_filter.h"

namespace gcgt {

inline constexpr uint32_t kBcUnvisited = static_cast<uint32_t>(-1);

/// atomicAdd on a double, as CUDA exposes it: a CAS retry loop. On a serial
/// path the CAS succeeds first try, so this is an ordinary addition.
inline void AtomicAddDouble(double& target, double value) {
  std::atomic_ref<double> ref(target);
  double observed = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(observed, observed + value,
                                    std::memory_order_relaxed)) {
  }
}

/// Forward pass: first visit sets depth and appends; every edge into the
/// next level accumulates sigma (shortest-path counts).
class BcForwardFilter : public FrontierFilter {
 public:
  BcForwardFilter(std::vector<uint32_t>& depth, std::vector<double>& sigma)
      : depth_(depth), sigma_(sigma) {}

  bool Filter(NodeId u, NodeId v) override {
    uint32_t expected = kBcUnvisited;
    const uint32_t next_depth = depth_[u] + 1;
    if (std::atomic_ref<uint32_t>(depth_[v]).compare_exchange_strong(
            expected, next_depth, std::memory_order_relaxed)) {
      AtomicAddDouble(sigma_[v], sigma_[u]);
      atomics_.fetch_add(1, std::memory_order_relaxed);  // sigma atomicAdd
      return true;
    }
    if (expected == next_depth) {  // CAS reported v's current depth
      AtomicAddDouble(sigma_[v], sigma_[u]);
      atomics_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  int TakeAtomics() override {
    return atomics_.exchange(0, std::memory_order_relaxed);
  }

 private:
  std::vector<uint32_t>& depth_;
  std::vector<double>& sigma_;
  std::atomic<int> atomics_{0};
};

/// Backward pass: for every DAG edge (u, v) with depth[v] == depth[u]+1,
/// accumulate u's dependency from v. Appends nothing; the backward frontiers
/// are the recorded forward levels (sigma and the deeper level's delta are
/// read-only at this point).
class BcBackwardFilter : public FrontierFilter {
 public:
  BcBackwardFilter(const std::vector<uint32_t>& depth,
                   const std::vector<double>& sigma, std::vector<double>& delta)
      : depth_(depth), sigma_(sigma), delta_(delta) {}

  bool Filter(NodeId u, NodeId v) override {
    if (depth_[u] != kBcUnvisited && depth_[v] == depth_[u] + 1 &&
        sigma_[v] > 0) {
      AtomicAddDouble(delta_[u], sigma_[u] / sigma_[v] * (1.0 + delta_[v]));
      atomics_.fetch_add(1, std::memory_order_relaxed);  // delta atomicAdd
    }
    return false;
  }

  int TakeAtomics() override {
    return atomics_.exchange(0, std::memory_order_relaxed);
  }

 private:
  const std::vector<uint32_t>& depth_;
  const std::vector<double>& sigma_;
  std::vector<double>& delta_;
  std::atomic<int> atomics_{0};
};

}  // namespace gcgt

#endif  // GCGT_CORE_BC_FILTERS_H_
