// Forward (sigma) and backward (delta) filters of the Brandes two-pass BC
// (paper Fig. 7(d)), shared by the GCGT and GPUCSR/Gunrock engines.
#ifndef GCGT_CORE_BC_FILTERS_H_
#define GCGT_CORE_BC_FILTERS_H_

#include <cstdint>
#include <vector>

#include "core/frontier_filter.h"

namespace gcgt {

inline constexpr uint32_t kBcUnvisited = static_cast<uint32_t>(-1);

/// Forward pass: first visit sets depth and appends; every edge into the
/// next level accumulates sigma (shortest-path counts).
class BcForwardFilter : public FrontierFilter {
 public:
  BcForwardFilter(std::vector<uint32_t>& depth, std::vector<double>& sigma)
      : depth_(depth), sigma_(sigma) {}

  bool Filter(NodeId u, NodeId v) override {
    if (depth_[v] == kBcUnvisited) {
      depth_[v] = depth_[u] + 1;
      sigma_[v] += sigma_[u];
      ++atomics_;  // sigma atomicAdd
      return true;
    }
    if (depth_[v] == depth_[u] + 1) {
      sigma_[v] += sigma_[u];
      ++atomics_;
    }
    return false;
  }

  int TakeAtomics() override {
    int a = atomics_;
    atomics_ = 0;
    return a;
  }

 private:
  std::vector<uint32_t>& depth_;
  std::vector<double>& sigma_;
  int atomics_ = 0;
};

/// Backward pass: for every DAG edge (u, v) with depth[v] == depth[u]+1,
/// accumulate u's dependency from v. Appends nothing; the backward frontiers
/// are the recorded forward levels.
class BcBackwardFilter : public FrontierFilter {
 public:
  BcBackwardFilter(const std::vector<uint32_t>& depth,
                   const std::vector<double>& sigma, std::vector<double>& delta)
      : depth_(depth), sigma_(sigma), delta_(delta) {}

  bool Filter(NodeId u, NodeId v) override {
    if (depth_[u] != kBcUnvisited && depth_[v] == depth_[u] + 1 &&
        sigma_[v] > 0) {
      delta_[u] += sigma_[u] / sigma_[v] * (1.0 + delta_[v]);
      ++atomics_;  // delta atomicAdd
    }
    return false;
  }

  int TakeAtomics() override {
    int a = atomics_;
    atomics_ = 0;
    return a;
  }

 private:
  const std::vector<uint32_t>& depth_;
  const std::vector<double>& sigma_;
  std::vector<double>& delta_;
  int atomics_ = 0;
};

}  // namespace gcgt

#endif  // GCGT_CORE_BC_FILTERS_H_
