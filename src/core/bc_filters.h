// Forward (sigma) and backward (delta) filters of the Brandes two-pass BC
// (paper Fig. 7(d)), shared by the GCGT and GPUCSR/Gunrock engines.
//
// Label updates go through atomic CAS / CAS-add loops so the filters are
// safe under concurrent warps. Level-synchronous semantics keep the depth
// claims deterministic; sigma/delta accumulation order is pinned to the
// serial expansion order by the engine (serial path: inline Filter calls;
// parallel path: the claim protocol's serial MergeBatch), so even the
// floating-point sums are bit-identical across thread counts.
#ifndef GCGT_CORE_BC_FILTERS_H_
#define GCGT_CORE_BC_FILTERS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/frontier_filter.h"

namespace gcgt {

inline constexpr uint32_t kBcUnvisited = static_cast<uint32_t>(-1);

/// atomicAdd on a double, as CUDA exposes it: a CAS retry loop. On a serial
/// path the CAS succeeds first try, so this is an ordinary addition.
inline void AtomicAddDouble(double& target, double value) {
  std::atomic_ref<double> ref(target);
  double observed = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(observed, observed + value,
                                    std::memory_order_relaxed)) {
  }
}

/// Forward pass: first visit sets depth and appends; every edge into the
/// next level accumulates sigma (shortest-path counts).
///
/// Claim protocol: candidates are the edges that accumulate sigma — edges
/// to nodes unvisited at round start (whose first serial claimant also sets
/// the depth; resolved by minimum rank) and edges to nodes already at the
/// next depth. The sigma additions themselves run in MergeBatch so the
/// accumulation order (and thus every last bit of the doubles) matches the
/// serial engine.
class BcForwardFilter final : public FrontierFilter {
 public:
  BcForwardFilter(std::vector<uint32_t>& depth, std::vector<double>& sigma)
      : depth_(depth), sigma_(sigma) {}

  Kind kind() const override { return Kind::kBcForward; }

  bool Filter(NodeId u, NodeId v) override {
    uint32_t expected = kBcUnvisited;
    const uint32_t next_depth = depth_[u] + 1;
    if (std::atomic_ref<uint32_t>(depth_[v]).compare_exchange_strong(
            expected, next_depth, std::memory_order_relaxed)) {
      AtomicAddDouble(sigma_[v], sigma_[u]);
      atomics_.fetch_add(1, std::memory_order_relaxed);  // sigma atomicAdd
      return true;
    }
    if (expected == next_depth) {  // CAS reported v's current depth
      AtomicAddDouble(sigma_[v], sigma_[u]);
      atomics_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  int TakeAtomics() override {
    return atomics_.exchange(0, std::memory_order_relaxed);
  }

  void PrepareClaims() override {
    if (claim_.empty()) claim_.assign(depth_.size(), kUnclaimed);
  }

  void ClaimBatch(std::span<const EdgePair> edges,
                  ClaimBatchWriter& writer) override {
    for (const EdgePair& e : edges) {
      const uint32_t d = depth_[e.v];  // stable: winners write in resolve
      if (d == kBcUnvisited) {
        AtomicMinU64(claim_[e.v], writer.NextRank());
        writer.Push(e.u, e.v);
      } else if (d == depth_[e.u] + 1) {
        writer.Push(e.u, e.v);  // sigma contributor, no depth claim
      }
    }
  }

  void ResolveChunk(ChunkClaims& claims) override {
    for (size_t b = 0; b < claims.num_batches(); ++b) {
      std::span<NodeId> slots = claims.accepted_slots(b);
      uint32_t n = 0;
      for (const ClaimCandidate& c : claims.batch(b)) {
        if (std::atomic_ref<uint64_t>(claim_[c.v])
                .load(std::memory_order_relaxed) != c.rank) {
          continue;
        }
        std::atomic_ref<uint64_t>(claim_[c.v])
            .store(kUnclaimed, std::memory_order_relaxed);
        depth_[c.v] = depth_[c.u] + 1;  // unique winner: race-free
        slots[n++] = c.v;
      }
      claims.set_accepted_count(b, n);
    }
  }

  int MergeBatch(const ChunkClaims& claims, size_t batch,
                 std::vector<NodeId>* out) override {
    int adds = 0;
    for (const ClaimCandidate& c : claims.batch(batch)) {
      AtomicAddDouble(sigma_[c.v], sigma_[c.u]);  // serial order
      ++adds;
    }
    std::span<const NodeId> acc = claims.accepted(batch);
    out->insert(out->end(), acc.begin(), acc.end());
    return adds;
  }

 private:
  std::vector<uint32_t>& depth_;
  std::vector<double>& sigma_;
  /// Per-node minimum claimant rank this round; sized on first parallel use.
  std::vector<uint64_t> claim_;
  std::atomic<int> atomics_{0};
};

/// Backward pass: for every DAG edge (u, v) with depth[v] == depth[u]+1,
/// accumulate u's dependency from v. Appends nothing; the backward frontiers
/// are the recorded forward levels (sigma and the deeper level's delta are
/// read-only at this point).
///
/// Claim protocol: the DAG-edge predicate reads only state that is stable
/// within a backward round, so the claim pass prunes non-DAG edges in
/// parallel and MergeBatch applies the delta additions in serial order.
class BcBackwardFilter final : public FrontierFilter {
 public:
  BcBackwardFilter(const std::vector<uint32_t>& depth,
                   const std::vector<double>& sigma, std::vector<double>& delta)
      : depth_(depth), sigma_(sigma), delta_(delta) {}

  Kind kind() const override { return Kind::kBcBackward; }

  bool Filter(NodeId u, NodeId v) override {
    if (IsDagEdge(u, v)) {
      AtomicAddDouble(delta_[u], Contribution(u, v));
      atomics_.fetch_add(1, std::memory_order_relaxed);  // delta atomicAdd
    }
    return false;
  }

  int TakeAtomics() override {
    return atomics_.exchange(0, std::memory_order_relaxed);
  }

  void ClaimBatch(std::span<const EdgePair> edges,
                  ClaimBatchWriter& writer) override {
    for (const EdgePair& e : edges) {
      if (IsDagEdge(e.u, e.v)) writer.Push(e.u, e.v);
    }
  }

  int MergeBatch(const ChunkClaims& claims, size_t batch,
                 std::vector<NodeId>* /*out*/) override {
    int adds = 0;
    for (const ClaimCandidate& c : claims.batch(batch)) {
      AtomicAddDouble(delta_[c.u], Contribution(c.u, c.v));  // serial order
      ++adds;
    }
    return adds;
  }

 private:
  bool IsDagEdge(NodeId u, NodeId v) const {
    return depth_[u] != kBcUnvisited && depth_[v] == depth_[u] + 1 &&
           sigma_[v] > 0;
  }
  double Contribution(NodeId u, NodeId v) const {
    return sigma_[u] / sigma_[v] * (1.0 + delta_[v]);
  }

  const std::vector<uint32_t>& depth_;
  const std::vector<double>& sigma_;
  std::vector<double>& delta_;
  std::atomic<int> atomics_{0};
};

}  // namespace gcgt

#endif  // GCGT_CORE_BC_FILTERS_H_
