// GCGT BFS driver: level-synchronous traversal over a CGR graph on the
// simulated SIMT machine (the paper's primary evaluation workload).
#ifndef GCGT_CORE_BFS_H_
#define GCGT_CORE_BFS_H_

#include <vector>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/gcgt_options.h"
#include "core/trace.h"
#include "util/status.h"

namespace gcgt {

class TraversalPipeline;

struct GcgtBfsResult {
  /// BFS depth per node; BfsFilter::kUnvisited when unreachable.
  std::vector<uint32_t> depth;
  TraversalMetrics metrics;
};

/// Runs BFS from `source` through a caller-owned pipeline — the
/// prepare-once/query-many path (GcgtSession): no engine is constructed and
/// the engine's scratch is reused. Resets the pipeline first; the engine
/// supplies graph and options. Fails with OutOfMemory when the modeled
/// device footprint exceeds the engine's device memory.
Result<GcgtBfsResult> GcgtBfs(TraversalPipeline& pipeline, NodeId source,
                              StepTrace* trace = nullptr);

/// Single-query convenience: a one-shot session over `graph` (constructs a
/// fresh engine, runs, tears down). Semantics identical to the pipeline
/// overload.
Result<GcgtBfsResult> GcgtBfs(const CgrGraph& graph, NodeId source,
                              const GcgtOptions& options,
                              StepTrace* trace = nullptr);

}  // namespace gcgt

#endif  // GCGT_CORE_BFS_H_
