// Hooking filter + pointer-jumping kernel model shared by the GCGT (CGR,
// node-centric) and GPUCSR/Gunrock (COO, edge-centric) CC implementations.
#ifndef GCGT_CORE_CC_FILTER_H_
#define GCGT_CORE_CC_FILTER_H_

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "core/frontier_filter.h"
#include "core/memory_layout.h"
#include "simt/warp.h"

namespace gcgt {

/// Links the component-tree roots of u and v when they differ (min-id root
/// wins, making results deterministic) and keeps u in the re-scan frontier.
class CcFilter : public FrontierFilter {
 public:
  explicit CcFilter(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  NodeId Find(NodeId x) const {
    for (;;) {
      NodeId p = std::atomic_ref<NodeId>(const_cast<NodeId&>(parent_[x]))
                     .load(std::memory_order_relaxed);
      if (p == x) return x;
      x = p;
    }
  }

  /// Hooks the larger root under the smaller via CAS. The retry loop makes
  /// the filter safe under concurrent warps (a lost race re-reads the roots);
  /// on the serial path the CAS always succeeds first try, so serial behavior
  /// is unchanged.
  bool Filter(NodeId u, NodeId v) override {
    for (;;) {
      NodeId ru = Find(u);
      NodeId rv = Find(v);
      if (ru == rv) return false;
      NodeId lo = std::min(ru, rv);
      NodeId hi = std::max(ru, rv);
      NodeId expected = hi;
      if (std::atomic_ref<NodeId>(parent_[hi]).compare_exchange_strong(
              expected, lo, std::memory_order_relaxed)) {
        atomics_.fetch_add(1, std::memory_order_relaxed);  // the hooking CAS
        return true;
      }
    }
  }

  NodeId AppendTarget(NodeId u, NodeId /*v*/) override { return u; }
  int TakeAtomics() override {
    return atomics_.exchange(0, std::memory_order_relaxed);
  }

  /// Pointer-jumping kernel: flattens every node to its root; returns
  /// per-warp stats modeling the chase depth and parent-array traffic.
  std::vector<simt::WarpStats> PointerJump(int lanes, int line_bytes) {
    std::vector<simt::WarpStats> warps;
    const NodeId n = static_cast<NodeId>(parent_.size());
    for (NodeId begin = 0; begin < n; begin += lanes) {
      NodeId end = std::min<NodeId>(n, begin + lanes);
      simt::WarpContext ctx(lanes, line_bytes);
      uint64_t max_depth = 0;
      std::vector<uint64_t> addrs;
      for (NodeId x = begin; x < end; ++x) {
        uint64_t depth = 0;
        NodeId r = x;
        while (parent_[r] != r) {
          addrs.push_back(kLabelBase + 4ull * r);
          r = parent_[r];
          ++depth;
        }
        max_depth = std::max(max_depth, depth);
      }
      ctx.Step(end - begin);
      for (uint64_t d = 1; d < max_depth; ++d) ctx.Step(end - begin);
      ctx.MemAccess(addrs, 4);
      for (NodeId x = begin; x < end; ++x) parent_[x] = Find(x);
      ctx.MemAccessRange(kLabelBase + 4ull * begin, 4ull * (end - begin));
      warps.push_back(ctx.TakeStats());
    }
    return warps;
  }

  const std::vector<NodeId>& parent() const { return parent_; }

 private:
  std::vector<NodeId> parent_;
  std::atomic<int> atomics_{0};
};

}  // namespace gcgt

#endif  // GCGT_CORE_CC_FILTER_H_
