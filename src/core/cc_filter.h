// Hooking filter + pointer-jumping kernel model shared by the GCGT (CGR,
// node-centric) and GPUCSR/Gunrock (COO, edge-centric) CC implementations.
#ifndef GCGT_CORE_CC_FILTER_H_
#define GCGT_CORE_CC_FILTER_H_

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/frontier_filter.h"
#include "core/memory_layout.h"
#include "simt/warp.h"

namespace gcgt {

/// Round-synchronous hooking (Soman et al. as run by the GCGT pipeline):
/// within a round every edge resolves its endpoints' component roots against
/// the parent state *frozen at round start*, and roots are hooked through a
/// per-round claim table — claim[hi] keeps the smallest root proposed for hi
/// so far, and a proposal charges a hooking CAS exactly when it improves
/// that running minimum (the CAS that would have won on hardware). An edge
/// whose roots differ keeps u in the re-scan frontier whether or not its
/// proposal won. CommitRound() (called by the driver before the
/// pointer-jumping kernel) installs the claimed minima into the parent
/// array; min-id hooking keeps parents monotone decreasing, so the forest
/// stays acyclic and results are deterministic.
///
/// Freezing reads at round start is what makes the decision for every edge
/// a pure function of (round-start parents, running claim minima): the
/// parallel engine computes the root finds concurrently in the claim pass
/// and replays only the trivial running-minimum updates in the serial
/// merge, bit-identical to the serial path.
class CcFilter final : public FrontierFilter {
 public:
  explicit CcFilter(NodeId n) : parent_(n), claim_(n, kInvalidNode) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  Kind kind() const override { return Kind::kCc; }

  /// Root of x in the committed (round-start) parent forest.
  NodeId Find(NodeId x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  bool Filter(NodeId u, NodeId v) override {
    NodeId ru = Find(u);
    NodeId rv = Find(v);
    if (ru == rv) return false;
    if (Propose(std::min(ru, rv), std::max(ru, rv))) ++atomics_;
    return true;  // u re-scans until its component stops growing
  }

  NodeId AppendTarget(NodeId u, NodeId /*v*/) override { return u; }
  int TakeAtomics() override {
    int n = atomics_;
    atomics_ = 0;
    return n;
  }

  void ClaimBatch(std::span<const EdgePair> edges,
                  ClaimBatchWriter& writer) override {
    // Parents are frozen this round, so the (expensive) root chases are safe
    // to run concurrently; the claim table is only touched in MergeBatch.
    for (const EdgePair& e : edges) {
      NodeId ru = Find(e.u);
      NodeId rv = Find(e.v);
      if (ru == rv) continue;
      writer.Push(e.u, e.v, std::min(ru, rv), std::max(ru, rv));
    }
  }

  int MergeBatch(const ChunkClaims& claims, size_t batch,
                 std::vector<NodeId>* out) override {
    int atomics = 0;
    for (const ClaimCandidate& c : claims.batch(batch)) {
      if (Propose(c.a, c.b)) ++atomics;
      out->push_back(c.u);
    }
    return atomics;
  }

  /// Installs this round's winning claims into the parent forest. Must run
  /// after the round's traversal kernel and before PointerJump.
  void CommitRound() {
    for (NodeId hi : claimed_) {
      parent_[hi] = claim_[hi];
      claim_[hi] = kInvalidNode;
    }
    claimed_.clear();
  }

  /// Pointer-jumping kernel: flattens every node to its root; returns
  /// per-warp stats modeling the chase depth and parent-array traffic.
  std::vector<simt::WarpStats> PointerJump(int lanes, int line_bytes) {
    std::vector<simt::WarpStats> warps;
    const NodeId n = static_cast<NodeId>(parent_.size());
    simt::WarpContext ctx(lanes, line_bytes);
    // Parent words are a dense 4B array: the chase and flatten-write charges
    // deduplicate through one exact region filter per warp instead of
    // per-address LineSet walks (see simt::DenseRegionFilter).
    simt::DenseRegionFilter labels;
    labels.Configure(static_cast<uint64_t>(line_bytes) / 4, n);
    std::vector<uint64_t> addrs;
    for (NodeId begin = 0; begin < n; begin += lanes) {
      NodeId end = std::min<NodeId>(n, begin + lanes);
      labels.NextWarp();
      uint64_t max_depth = 0;
      uint64_t novel = 0;
      addrs.clear();
      for (NodeId x = begin; x < end; ++x) {
        uint64_t depth = 0;
        NodeId r = x;
        while (parent_[r] != r) {
          if (labels.enabled()) {
            novel += labels.Touch(r);
          } else {
            addrs.push_back(kLabelBase + 4ull * r);
          }
          r = parent_[r];
          ++depth;
        }
        max_depth = std::max(max_depth, depth);
      }
      ctx.Step(end - begin);
      for (uint64_t d = 1; d < max_depth; ++d) ctx.Step(end - begin);
      for (NodeId x = begin; x < end; ++x) parent_[x] = Find(x);
      if (labels.enabled()) {
        novel += labels.TouchRange(begin, end - 1);
        if (novel > 0) ctx.ChargeTransactions(novel);
      } else {
        ctx.MemAccess(addrs, 4);
        ctx.MemAccessRange(kLabelBase + 4ull * begin, 4ull * (end - begin));
      }
      warps.push_back(ctx.TakeStats());
    }
    return warps;
  }

  const std::vector<NodeId>& parent() const { return parent_; }

 private:
  /// Records lo as a hook proposal for root hi; returns true when it
  /// improved the running minimum (the proposal's CAS would have landed).
  bool Propose(NodeId lo, NodeId hi) {
    NodeId cur = claim_[hi] == kInvalidNode ? hi : claim_[hi];
    if (lo >= cur) return false;
    if (claim_[hi] == kInvalidNode) claimed_.push_back(hi);
    claim_[hi] = lo;
    return true;
  }

  std::vector<NodeId> parent_;
  std::vector<NodeId> claim_;    // per-root best proposal this round
  std::vector<NodeId> claimed_;  // roots with a live claim (commit list)
  int atomics_ = 0;
};

}  // namespace gcgt

#endif  // GCGT_CORE_CC_FILTER_H_
