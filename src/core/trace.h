// Step-trace recorder reproducing the instruction-flow tables of paper
// Fig. 4. Engines emit one trace step per issued warp-wide slot with a label
// per active lane (e.g. "t2:i0:4" = lane 2 handling neighbor 4 of its first
// interval). Header decodes are recorded with kind kHeader and excluded from
// PaperStepCount(), matching the figure's simplification.
#ifndef GCGT_CORE_TRACE_H_
#define GCGT_CORE_TRACE_H_

#include <string>
#include <utility>
#include <vector>

namespace gcgt {

enum class TraceOp {
  kHeader,           // degNum / itvNum / segNum decodes (not counted in Fig. 4)
  kDecodeInterval,   // "tX:iY"
  kDecodeResidual,   // "tX:resY"
  kAppend,           // handling/visited-checking a neighbor
};

class StepTrace {
 public:
  /// Starts a new step of the given kind. Subsequent Lane() calls attach to it.
  void BeginStep(TraceOp op) { steps_.push_back({op, {}}); }

  void Lane(int lane, std::string label) {
    steps_.back().lanes.emplace_back(lane, std::move(label));
  }

  /// Steps counted the way Fig. 4 counts them (headers and empty steps —
  /// begun but with no active lane — excluded).
  size_t PaperStepCount() const {
    size_t n = 0;
    for (const auto& s : steps_) {
      if (s.op != TraceOp::kHeader && !s.lanes.empty()) ++n;
    }
    return n;
  }

  size_t TotalStepCount() const { return steps_.size(); }

  /// Renders the Fig. 4 style table ("step | t0 | t1 | ...").
  std::string ToTable(int num_lanes) const;

  struct Step {
    TraceOp op;
    std::vector<std::pair<int, std::string>> lanes;
  };
  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

}  // namespace gcgt

#endif  // GCGT_CORE_TRACE_H_
