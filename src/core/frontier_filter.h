// The "filtering" step of the expansion - filtering - contraction pipeline
// (paper §6, Fig. 7). The traversal engine expands neighbors out of CGR and
// hands each (frontier, neighbor) pair to a filter, which updates the
// application state and decides whether a node enters the next frontier.
// BFS, Connected Component and Betweenness Centrality are all filters.
#ifndef GCGT_CORE_FRONTIER_FILTER_H_
#define GCGT_CORE_FRONTIER_FILTER_H_

#include <atomic>

#include "graph/graph.h"

namespace gcgt {

class FrontierFilter {
 public:
  virtual ~FrontierFilter() = default;

  /// Called once per expanded edge (u, v); returns true when a node should
  /// be appended to the out-frontier.
  virtual bool Filter(NodeId u, NodeId v) = 0;

  /// Which node is appended when Filter returned true (v for BFS/BC,
  /// u for the node-centric CC re-scan set).
  virtual NodeId AppendTarget(NodeId /*u*/, NodeId v) { return v; }

  /// Global atomics the filter actually issued since the last drain (e.g.
  /// hooking CAS, sigma atomicAdd). The engine drains this after every
  /// append slot and charges the simulator accordingly.
  virtual int TakeAtomics() { return 0; }
};

/// BFS visited-check filter: unvisited neighbors get depth u+1 and enter the
/// next frontier. The visited-check/claim is an atomic CAS, so the filter is
/// safe under concurrent warps; level-synchronous semantics make the written
/// depth identical no matter which warp wins the claim.
class BfsFilter : public FrontierFilter {
 public:
  static constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);

  explicit BfsFilter(NodeId num_nodes) : depth_(num_nodes, kUnvisited) {}

  void SetSource(NodeId s) { depth_[s] = 0; }

  bool Filter(NodeId u, NodeId v) override {
    uint32_t expected = kUnvisited;
    return std::atomic_ref<uint32_t>(depth_[v]).compare_exchange_strong(
        expected, depth_[u] + 1, std::memory_order_relaxed);
  }

  const std::vector<uint32_t>& depth() const { return depth_; }
  std::vector<uint32_t> TakeDepth() { return std::move(depth_); }

 private:
  std::vector<uint32_t> depth_;
};

}  // namespace gcgt

#endif  // GCGT_CORE_FRONTIER_FILTER_H_
