// The "filtering" step of the expansion - filtering - contraction pipeline
// (paper §6, Fig. 7). The traversal engine expands neighbors out of CGR and
// hands each (frontier, neighbor) pair to a filter, which updates the
// application state and decides whether a node enters the next frontier.
// BFS, Connected Component and Betweenness Centrality are all filters.
//
// Filters expose two decision interfaces:
//  - Filter(u, v): the serial contract. The engine's reference path
//    (num_threads == 1, StepTrace) calls it inline in expansion order.
//  - the chunk-scoped claim protocol (ClaimBatch / ResolveChunk /
//    MergeBatch): the parallel contract. Workers enumerate warp chunks
//    concurrently and call ClaimBatch for every append slot, which inspects
//    the slot's edges against the stable pre-round label state, applies
//    atomic claims (CAS / atomic-min keyed by the edge's serial rank) and
//    records surviving candidates in a per-chunk claim buffer. After every
//    chunk has claimed, ResolveChunk (still parallel) settles the
//    order-independent decisions — the minimum-rank claimant of a label is
//    exactly the edge the serial engine would have accepted — and compacts
//    the accepted targets. Finally MergeBatch runs serially in global batch
//    order and applies whatever must happen in serial order (queue appends,
//    ordered floating-point accumulation, running claim minima), making the
//    whole parallel path bit-identical to the serial one.
//
// The default implementations defer every decision to MergeBatch, which
// replays Filter() — so any third-party filter is automatically correct
// under the parallel engine, just without parallel claiming.
#ifndef GCGT_CORE_FRONTIER_FILTER_H_
#define GCGT_CORE_FRONTIER_FILTER_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace gcgt {

/// One expanded (frontier node, neighbor) pair of an append slot.
struct EdgePair {
  NodeId u = 0;
  NodeId v = 0;
};

/// A filter-decision candidate surviving the parallel claim pass. `rank` is
/// the edge's global serial order (chunk-major: chunk index in the high 32
/// bits, the candidate's index within its chunk below), so comparing ranks
/// reproduces the order in which the serial engine would have reached the
/// two edges. `a`/`b` carry filter-specific payload computed during the
/// claim pass (e.g. the frozen component roots for CC).
struct ClaimCandidate {
  NodeId u = 0;
  NodeId v = 0;
  NodeId a = 0;
  NodeId b = 0;
  uint64_t rank = 0;
};

/// Sentinel larger than every real rank ((chunk << 32) | index with chunk
/// counts far below 2^31).
inline constexpr uint64_t kUnclaimed = ~uint64_t{0};

/// atomic fetch-min on a uint64 slot (CUDA atomicMin equivalent).
inline void AtomicMinU64(uint64_t& target, uint64_t value) {
  std::atomic_ref<uint64_t> ref(target);
  uint64_t cur = ref.load(std::memory_order_relaxed);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Per-worker claim arena. Chunk records reference contiguous slices;
/// capacity persists across rounds so the steady-state hot path does not
/// allocate.
struct ClaimArena {
  std::vector<ClaimCandidate> cands;
  std::vector<size_t> batch_ends;  ///< end offset into `cands` per append slot
  /// Phase-B compaction output: `accepted` is index-aligned with `cands`
  /// (capacity per batch equals its candidate count); `accepted_count` holds
  /// one entry per append slot.
  std::vector<NodeId> accepted;
  std::vector<uint32_t> accepted_count;

  void Clear() {
    cands.clear();
    batch_ends.clear();
  }
  void PrepareResolve() {
    accepted.resize(cands.size());
    accepted_count.assign(batch_ends.size(), 0);
  }
};

/// Writer handed to ClaimBatch: pushes candidates into the chunk's slice of
/// the arena and mints their serial ranks.
class ClaimBatchWriter {
 public:
  ClaimBatchWriter(ClaimArena& arena, uint64_t chunk_rank_base)
      : arena_(arena),
        chunk_base_(chunk_rank_base),
        cand_begin_(arena.cands.size()) {}

  /// Rank the next Push() will receive (claim with it *before* pushing).
  uint64_t NextRank() const {
    return chunk_base_ | (arena_.cands.size() - cand_begin_);
  }
  void Push(NodeId u, NodeId v, NodeId a = 0, NodeId b = 0) {
    arena_.cands.push_back({u, v, a, b, NextRank()});
  }
  /// Called by the engine after each append slot's ClaimBatch.
  void EndBatch() { arena_.batch_ends.push_back(arena_.cands.size()); }

 private:
  ClaimArena& arena_;
  uint64_t chunk_base_;
  size_t cand_begin_;
};

/// View over one chunk's claim-buffer slices, used by ResolveChunk (phase B,
/// parallel) and MergeBatch (phase C, serial).
class ChunkClaims {
 public:
  ChunkClaims(ClaimArena& arena, size_t cand_begin, size_t batch_begin,
              size_t batch_end)
      : arena_(&arena),
        cand_begin_(cand_begin),
        batch_begin_(batch_begin),
        batch_end_(batch_end) {}

  size_t num_batches() const { return batch_end_ - batch_begin_; }

  std::span<const ClaimCandidate> batch(size_t i) const {
    auto [lo, hi] = BatchRange(i);
    return std::span<const ClaimCandidate>(arena_->cands).subspan(lo, hi - lo);
  }
  /// Phase-B output slots for batch i (capacity = the batch's candidates).
  std::span<NodeId> accepted_slots(size_t i) {
    auto [lo, hi] = BatchRange(i);
    return std::span<NodeId>(arena_->accepted).subspan(lo, hi - lo);
  }
  void set_accepted_count(size_t i, uint32_t n) {
    arena_->accepted_count[batch_begin_ + i] = n;
  }
  std::span<const NodeId> accepted(size_t i) const {
    auto [lo, hi] = BatchRange(i);
    (void)hi;
    return std::span<const NodeId>(arena_->accepted)
        .subspan(lo, arena_->accepted_count[batch_begin_ + i]);
  }

 private:
  std::pair<size_t, size_t> BatchRange(size_t i) const {
    const size_t b = batch_begin_ + i;
    const size_t lo = b == batch_begin_ ? cand_begin_ : arena_->batch_ends[b - 1];
    return {lo, arena_->batch_ends[b]};
  }

  ClaimArena* arena_;
  size_t cand_begin_;
  size_t batch_begin_;
  size_t batch_end_;
};

class FrontierFilter {
 public:
  /// Fast-path discriminator for the engines' append inner loops: the
  /// decide sequence (Filter / AppendTarget / TakeAtomics) runs once per
  /// expanded edge, so for the well-known filters the engines switch on
  /// kind() once per slot and statically dispatch the loop, replacing three
  /// virtual calls per edge with inlined code. kGeneric keeps the dynamic
  /// path for third-party filters.
  ///
  /// CONTRACT: returning a non-kGeneric value asserts the object IS exactly
  /// that built-in filter class — the engines static_cast on it (guarded by
  /// a dynamic_cast assert in debug builds). Third-party filters must
  /// return kGeneric (the default); lying here is undefined behavior.
  enum class Kind : uint8_t { kGeneric, kBfs, kCc, kBcForward, kBcBackward };

  virtual ~FrontierFilter() = default;

  virtual Kind kind() const { return Kind::kGeneric; }

  /// Called once per expanded edge (u, v); returns true when a node should
  /// be appended to the out-frontier. Serial contract only — the parallel
  /// engine goes through the claim protocol below.
  virtual bool Filter(NodeId u, NodeId v) = 0;

  /// Which node is appended when Filter returned true (v for BFS/BC,
  /// u for the node-centric CC re-scan set).
  virtual NodeId AppendTarget(NodeId /*u*/, NodeId v) { return v; }

  /// Global atomics the filter actually issued since the last drain (e.g.
  /// hooking CAS, sigma atomicAdd). The engine drains this after every
  /// append slot on the serial path and charges the simulator accordingly.
  virtual int TakeAtomics() { return 0; }

  // ---- chunk-scoped claim protocol (parallel engine) ----

  /// Called once, from a serial context, before each parallel round's claim
  /// pass. Size lazy claim-side state here (ClaimBatch runs concurrently,
  /// so it must not allocate shared state itself). Default: nothing.
  virtual void PrepareClaims() {}

  /// Phase A (parallel, one call per append slot, concurrent across chunks):
  /// inspect the slot's edges against stable pre-round state, apply atomic
  /// claims, and push surviving candidates. Label state may only be READ
  /// here (writes happen in ResolveChunk/MergeBatch after the barrier).
  /// Default: every edge survives; decisions are deferred to MergeBatch.
  virtual void ClaimBatch(std::span<const EdgePair> edges,
                          ClaimBatchWriter& writer) {
    for (const EdgePair& e : edges) writer.Push(e.u, e.v);
  }

  /// Phase B (parallel, one call per chunk, after every ClaimBatch of the
  /// round completed): settle order-independent decisions, apply winner
  /// label writes (race-free — one winner per label), and compact accepted
  /// targets into the chunk's slots. Default: nothing resolved (all
  /// decisions deferred).
  virtual void ResolveChunk(ChunkClaims& /*claims*/) {}

  /// Phase C (serial, batches in global serial order): append the slot's
  /// accepted targets to `out` and return the global atomics to charge for
  /// it. Order-dependent effects (running claim minima, floating-point
  /// accumulation) happen here. Default: replay Filter() per candidate.
  virtual int MergeBatch(const ChunkClaims& claims, size_t batch,
                         std::vector<NodeId>* out) {
    for (const ClaimCandidate& c : claims.batch(batch)) {
      if (Filter(c.u, c.v)) out->push_back(AppendTarget(c.u, c.v));
    }
    return TakeAtomics();
  }
};

/// BFS visited-check filter: unvisited neighbors get depth u+1 and enter the
/// next frontier. The visited-check/claim is an atomic CAS, so the filter is
/// safe under concurrent warps; level-synchronous semantics make the written
/// depth identical no matter which warp wins the claim.
///
/// Claim protocol: edges to already-visited nodes are pruned during the
/// parallel pass; the rest atomic-min their serial rank into a claim slot.
/// The minimum-rank claimant is precisely the edge whose CAS would have
/// succeeded on the serial path, so ResolveChunk can write depths and
/// compact the out-frontier fully in parallel and MergeBatch reduces to an
/// append of the pre-compacted run.
class BfsFilter final : public FrontierFilter {
 public:
  static constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);

  explicit BfsFilter(NodeId num_nodes) : depth_(num_nodes, kUnvisited) {}

  Kind kind() const override { return Kind::kBfs; }

  void SetSource(NodeId s) { depth_[s] = 0; }

  bool Filter(NodeId u, NodeId v) override {
    // Plain-load fast path: Filter is the serial contract (concurrent warps
    // go through the claim protocol), and most candidates are already
    // visited — skip the CAS for those.
    if (depth_[v] != kUnvisited) return false;
    uint32_t expected = kUnvisited;
    return std::atomic_ref<uint32_t>(depth_[v]).compare_exchange_strong(
        expected, depth_[u] + 1, std::memory_order_relaxed);
  }

  void PrepareClaims() override {
    if (claim_.empty()) claim_.assign(depth_.size(), kUnclaimed);
  }

  void ClaimBatch(std::span<const EdgePair> edges,
                  ClaimBatchWriter& writer) override {
    for (const EdgePair& e : edges) {
      // depth_ is stable during the claim pass (winners write in resolve).
      if (depth_[e.v] != kUnvisited) continue;
      AtomicMinU64(claim_[e.v], writer.NextRank());
      writer.Push(e.u, e.v);
    }
  }

  void ResolveChunk(ChunkClaims& claims) override {
    for (size_t b = 0; b < claims.num_batches(); ++b) {
      std::span<NodeId> slots = claims.accepted_slots(b);
      uint32_t n = 0;
      for (const ClaimCandidate& c : claims.batch(b)) {
        // Relaxed atomics: the winner resets the slot while losers (in other
        // chunks) may still be comparing against their own rank.
        if (std::atomic_ref<uint64_t>(claim_[c.v])
                .load(std::memory_order_relaxed) != c.rank) {
          continue;
        }
        std::atomic_ref<uint64_t>(claim_[c.v])
            .store(kUnclaimed, std::memory_order_relaxed);
        depth_[c.v] = depth_[c.u] + 1;  // unique winner: race-free
        slots[n++] = c.v;
      }
      claims.set_accepted_count(b, n);
    }
  }

  int MergeBatch(const ChunkClaims& claims, size_t batch,
                 std::vector<NodeId>* out) override {
    std::span<const NodeId> acc = claims.accepted(batch);
    out->insert(out->end(), acc.begin(), acc.end());
    return 0;
  }

  const std::vector<uint32_t>& depth() const { return depth_; }
  std::vector<uint32_t> TakeDepth() { return std::move(depth_); }

 private:
  std::vector<uint32_t> depth_;
  /// Per-node minimum claimant rank this round; sized on first parallel use
  /// (the serial engine never touches it).
  std::vector<uint64_t> claim_;
};

}  // namespace gcgt

#endif  // GCGT_CORE_FRONTIER_FILTER_H_
