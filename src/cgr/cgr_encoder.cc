#include "cgr/cgr_encoder.h"

#include <cassert>

#include "util/zigzag.h"

namespace gcgt {

IntervalDecomposition DecomposeAdjacency(std::span<const NodeId> neighbors,
                                         int min_interval_len) {
  IntervalDecomposition d;
  size_t i = 0;
  const size_t n = neighbors.size();
  const bool intervals_enabled = min_interval_len != CgrOptions::kNoIntervals;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && neighbors[j] == neighbors[j - 1] + 1) ++j;
    size_t run = j - i;
    if (intervals_enabled && run >= static_cast<size_t>(min_interval_len)) {
      d.intervals.push_back({neighbors[i], static_cast<uint32_t>(run)});
    } else {
      for (size_t t = i; t < j; ++t) d.residuals.push_back(neighbors[t]);
    }
    i = j;
  }
  return d;
}

namespace {

// Encoded length of residual r at index `idx` of a run starting at
// `first_idx`, where the first element is coded relative to u.
int ResidualCost(VlcScheme scheme, NodeId u, std::span<const NodeId> res,
                 size_t idx, size_t first_idx) {
  if (idx == first_idx) {
    return VlcLength(scheme,
                     ZigzagEncode(static_cast<int64_t>(res[idx]) -
                                  static_cast<int64_t>(u)) +
                         1);
  }
  return VlcLength(scheme, res[idx] - res[idx - 1]);
}

void PutResidual(VlcScheme scheme, NodeId u, std::span<const NodeId> res,
                 size_t idx, size_t first_idx, BitWriter* w) {
  if (idx == first_idx) {
    VlcEncode(scheme,
              ZigzagEncode(static_cast<int64_t>(res[idx]) -
                           static_cast<int64_t>(u)) +
                  1,
              w);
  } else {
    VlcEncode(scheme, res[idx] - res[idx - 1], w);
  }
}

}  // namespace

void CgrEncoder::EncodeIntervals(NodeId u,
                                 const std::vector<CgrInterval>& intervals,
                                 BitWriter* writer) const {
  const VlcScheme scheme = options_.scheme;
  NodeId prev_end = u;  // "end" = last covered id of the previous interval
  bool first = true;
  const int min_len = options_.min_interval_len == CgrOptions::kNoIntervals
                          ? 2
                          : options_.min_interval_len;
  for (const CgrInterval& itv : intervals) {
    if (first) {
      VlcEncode(scheme,
                ZigzagEncode(static_cast<int64_t>(itv.start) -
                             static_cast<int64_t>(u)) +
                    1,
                writer);
      first = false;
    } else {
      VlcEncode(scheme, itv.start - prev_end, writer);
    }
    assert(itv.len >= static_cast<uint32_t>(min_len));
    VlcEncode(scheme, itv.len - min_len + 1, writer);
    prev_end = itv.start + itv.len - 1;
  }
}

Status CgrEncoder::EncodeUnsegmented(NodeId u, const IntervalDecomposition& d,
                                     BitWriter* writer) const {
  const VlcScheme scheme = options_.scheme;
  uint64_t degree = d.residuals.size();
  for (const auto& itv : d.intervals) degree += itv.len;
  VlcEncode(scheme, degree + 1, writer);
  if (degree == 0) return Status::OK();
  VlcEncode(scheme, d.intervals.size() + 1, writer);
  EncodeIntervals(u, d.intervals, writer);
  std::span<const NodeId> res(d.residuals);
  for (size_t i = 0; i < res.size(); ++i) {
    PutResidual(scheme, u, res, i, /*first_idx=*/0, writer);
  }
  return Status::OK();
}

Status CgrEncoder::EncodeSegmented(NodeId u, const IntervalDecomposition& d,
                                   BitWriter* writer,
                                   CgrNodeShape* shape) const {
  const VlcScheme scheme = options_.scheme;
  const uint64_t node_start = writer->num_bits();
  VlcEncode(scheme, d.intervals.size() + 1, writer);
  EncodeIntervals(u, d.intervals, writer);

  std::span<const NodeId> res(d.residuals);
  const size_t seg_bits = static_cast<size_t>(options_.segment_len_bytes) * 8;

  // Plan segment boundaries: middle segments are greedily filled to exactly
  // seg_bits; the remainder becomes the last (unpadded) segment once it fits
  // in 2*seg_bits (paper Fig. 6 rule).
  std::vector<std::pair<size_t, size_t>> segments;  // (first_idx, count)
  size_t idx = 0;
  while (idx < res.size()) {
    // Bits if [idx, end) were emitted as one final segment.
    size_t rest_bits = 0;
    {
      size_t count = res.size() - idx;
      rest_bits = VlcLength(scheme, count + 1);
      for (size_t i = idx; i < res.size(); ++i) {
        rest_bits += ResidualCost(scheme, u, res, i, idx);
      }
    }
    // Emit the remainder as the final unpadded segment once it fits in
    // 2*seg_bits. When this is not the only segment the remainder is then
    // guaranteed to be > seg_bits (the paper's "1-2 times segLen" rule),
    // because the previous iteration saw rest > 2*seg_bits and a full
    // segment removes at most seg_bits of it.
    if (rest_bits <= 2 * seg_bits) {
      segments.emplace_back(idx, res.size() - idx);
      idx = res.size();
      break;
    }
    // Greedy fill one fixed-size segment.
    size_t count = 0;
    size_t payload_bits = 0;
    while (idx + count < res.size()) {
      size_t cost = ResidualCost(scheme, u, res, idx + count, idx);
      size_t header = VlcLength(scheme, count + 1 + 1);
      if (header + payload_bits + cost > seg_bits) break;
      payload_bits += cost;
      ++count;
    }
    if (count == 0) {
      return Status::Corruption(
          "residual does not fit in one segment; increase segment_len_bytes");
    }
    segments.emplace_back(idx, count);
    idx += count;
  }

  VlcEncode(scheme, segments.size() + 1, writer);
  if (segments.empty()) {
    if (shape) *shape = {writer->num_bits() - node_start, 0, false};
    return Status::OK();
  }
  if (shape) {
    shape->head_bits = writer->num_bits() - node_start;
    shape->aligned = true;
  }
  writer->AlignTo(8);
  const uint64_t aligned_point = writer->num_bits();

  for (size_t s = 0; s < segments.size(); ++s) {
    const auto [first_idx, count] = segments[s];
    size_t seg_start = writer->num_bits();
    VlcEncode(scheme, count + 1, writer);
    for (size_t i = first_idx; i < first_idx + count; ++i) {
      PutResidual(scheme, u, res, i, first_idx, writer);
    }
    size_t used = writer->num_bits() - seg_start;
    if (s + 1 < segments.size()) {
      if (used > seg_bits) {
        return Status::Internal("segment overflow during encoding");
      }
      writer->PutZeros(static_cast<int>(seg_bits - used));  // blank area
    }
  }
  if (shape) shape->tail_bits = writer->num_bits() - aligned_point;
  return Status::OK();
}

Status CgrEncoder::EncodeNode(NodeId u, std::span<const NodeId> neighbors,
                              BitWriter* writer, CgrNodeShape* shape) const {
  IntervalDecomposition d = DecomposeAdjacency(neighbors, options_.min_interval_len);
  if (options_.segment_len_bytes == 0) {
    const uint64_t node_start = writer->num_bits();
    Status s = EncodeUnsegmented(u, d, writer);
    if (s.ok() && shape) *shape = {writer->num_bits() - node_start, 0, false};
    return s;
  }
  return EncodeSegmented(u, d, writer, shape);
}

}  // namespace gcgt
