#include "cgr/byte_codecs.h"

#include <bit>
#include <cassert>

#include "cgr/cgr_graph.h"

namespace gcgt {
namespace {

inline unsigned ValueBytes(uint32_t v) {
  // ceil(bit_width / 8) in 1..4; v|1 keeps the result >= 1 for v == 0.
  return (39u - static_cast<unsigned>(std::countl_zero(v | 1u))) / 8u;
}

inline void PutLe(uint32_t v, unsigned len, std::vector<uint8_t>* out) {
  for (unsigned i = 0; i < len; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline uint32_t LoadLe(const uint8_t* p, unsigned len) {
  uint32_t v = 0;
  for (unsigned i = 0; i < len; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

// Delta transform shared by both codecs (see header).
Result<std::vector<uint32_t>> DeltaValues(NodeId u,
                                          std::span<const NodeId> neighbors) {
  std::vector<uint32_t> vals;
  vals.reserve(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    uint64_t v;
    if (i == 0) {
      v = ZigzagEncode(static_cast<int64_t>(neighbors[0]) -
                       static_cast<int64_t>(u));
    } else {
      v = neighbors[i] - neighbors[i - 1];
    }
    if (v > UINT32_MAX) {
      return Status::InvalidArgument(
          "byte codecs require node ids < 2^31 (first-delta overflow)");
    }
    vals.push_back(static_cast<uint32_t>(v));
  }
  return vals;
}

}  // namespace

Status EncodeNodeBytes(CodecId codec, NodeId u,
                       std::span<const NodeId> neighbors,
                       std::vector<uint8_t>* out) {
  assert(codec == CodecId::kStreamVByte || codec == CodecId::kVarintGb);
  auto vals_or = DeltaValues(u, neighbors);
  GCGT_RETURN_NOT_OK(vals_or.status());
  const std::vector<uint32_t>& vals = vals_or.value();
  PutLeb128(vals.size(), out);

  if (codec == CodecId::kStreamVByte) {
    // All control bytes first, then all data bytes.
    const size_t ctrl_base = out->size();
    out->resize(ctrl_base + (vals.size() + 3) / 4, 0);
    for (size_t i = 0; i < vals.size(); ++i) {
      const unsigned len = ValueBytes(vals[i]);
      (*out)[ctrl_base + i / 4] |=
          static_cast<uint8_t>((len - 1) << (2 * (i % 4)));
      PutLe(vals[i], len, out);
    }
  } else {
    // VarintGB: control byte interleaved before each group of 4.
    for (size_t g = 0; g < vals.size(); g += 4) {
      const size_t n = std::min<size_t>(4, vals.size() - g);
      uint8_t ctrl = 0;
      for (size_t i = 0; i < n; ++i) {
        ctrl |= static_cast<uint8_t>((ValueBytes(vals[g + i]) - 1) << (2 * i));
      }
      out->push_back(ctrl);
      for (size_t i = 0; i < n; ++i) {
        PutLe(vals[g + i], ValueBytes(vals[g + i]), out);
      }
    }
  }
  return Status::OK();
}

ByteCodecStream::ByteCodecStream(const CgrGraph& g, NodeId u)
    : base_(g.bits().data()), codec_(g.options().codec), u_(u) {
  assert(codec_ != CodecId::kCgr);
  assert(g.bit_start(u) % 8 == 0);
  uint64_t pos = g.bit_start(u) / 8;
  degree_ = GetLeb128(base_, &pos);
  remaining_ = degree_;
  hdr_end_ = pos;
  ctrl_pos_ = pos;
  if (codec_ == CodecId::kStreamVByte) {
    data_pos_ = ctrl_pos_ + (degree_ + 3) / 4;
  }
}

ByteBlock ByteCodecStream::NextBlock() {
  assert(remaining_ > 0);
  ByteBlock blk;
  blk.count = static_cast<uint32_t>(std::min<uint64_t>(4, remaining_));
  blk.ctrl_byte = ctrl_pos_;
  const ByteCtrlEntry& e = kByteCtrlTable[base_[ctrl_pos_]];
  ++ctrl_pos_;
  uint64_t dpos = codec_ == CodecId::kStreamVByte ? data_pos_ : ctrl_pos_;
  blk.data_first = dpos;
  for (uint32_t i = 0; i < blk.count; ++i) {
    const uint32_t v = LoadLe(base_ + dpos, e.len[i]);
    dpos += e.len[i];
    if (first_) {
      first_ = false;
      prev_ = static_cast<NodeId>(static_cast<int64_t>(u_) + ZigzagDecode(v));
    } else {
      prev_ = static_cast<NodeId>(prev_ + v);
    }
    blk.vals[i] = prev_;
  }
  blk.data_last = dpos - 1;
  if (codec_ == CodecId::kStreamVByte) {
    data_pos_ = dpos;
  } else {
    ctrl_pos_ = dpos;
  }
  remaining_ -= blk.count;
  return blk;
}

}  // namespace gcgt
