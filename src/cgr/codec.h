// Codec identifiers for the pluggable adjacency-codec layer.
//
// An encoded graph carries its CodecId (via CgrOptions::codec) so every
// consumer — decode loops, session fingerprints, the service registry — can
// dispatch on it and so a graph encoded with one codec can never be
// misinterpreted (or cache-served) as another.
//
//   kCgr         bit-packed interval/residual VLC stream (paper §3.1); the
//                default and the only codec with interval extraction and
//                residual segmentation.
//   kStreamVByte byte-aligned delta varint, all 2-bit length control bytes
//                grouped ahead of the data bytes (4 values per control byte).
//   kVarintGb    byte-aligned delta varint, one control byte interleaved in
//                front of each group of 4 values (Group Varint).
//
// Both byte codecs share the per-node layout implemented in byte_codecs.h:
// a LEB128 degree header followed by zigzag(first - u) and raw gaps.
#ifndef GCGT_CGR_CODEC_H_
#define GCGT_CGR_CODEC_H_

#include <cstdint>

namespace gcgt {

enum class CodecId : uint8_t {
  kCgr = 0,
  kStreamVByte = 1,
  kVarintGb = 2,
};

inline const char* CodecName(CodecId id) {
  switch (id) {
    case CodecId::kCgr:
      return "cgr";
    case CodecId::kStreamVByte:
      return "streamvbyte";
    case CodecId::kVarintGb:
      return "varintgb";
  }
  return "?";
}

inline constexpr CodecId kAllCodecs[] = {CodecId::kCgr, CodecId::kStreamVByte,
                                         CodecId::kVarintGb};

}  // namespace gcgt

#endif  // GCGT_CGR_CODEC_H_
