// CGR decoder primitives.
//
// CgrNodeDecoder exposes one method per paper-level decode operation
// (degree/interval-count headers, one interval, one residual) so the SIMT
// engines can charge instruction and memory costs per operation, exactly as
// the step tables of paper Fig. 4 do. DecodeAdjacency is the convenience
// whole-list decoder used by tests and CPU-side consumers.
#ifndef GCGT_CGR_CGR_DECODER_H_
#define GCGT_CGR_CGR_DECODER_H_

#include <cstdint>
#include <vector>

#include "cgr/cgr_graph.h"
#include "util/bit_stream.h"

namespace gcgt {

/// Stream of residuals (one list, or one segment of a list).
///
/// Decode is batched word-at-a-time: Refill() peeks one 64-bit window from
/// the BitReader and extracts up to kBatch whole codewords from it in
/// registers (unary via countl_zero, payload via shifts), falling back to
/// the serial VlcDecode path for any codeword that does not fit the window
/// (giant zeta codewords, end-of-stream). The buffer records the exact bit
/// position after every codeword, so bit_pos() observed between Next()
/// calls is identical to the historical one-codeword-at-a-time reader —
/// which keeps the SIMT engines' per-step memory charges bit-identical.
class ResidualStream {
 public:
  ResidualStream() : reader_(nullptr, 0), scheme_(VlcScheme::kGamma) {}

  /// `count` residuals starting at `bit_pos`; the first one is coded
  /// relative to `u` via zigzag (see layout notes in cgr_graph.h).
  ResidualStream(const CgrGraph& g, NodeId u, uint64_t count, uint64_t bit_pos)
      : reader_(g.bits().data(), g.total_bits(), bit_pos),
        scheme_(g.options().scheme),
        u_(u),
        remaining_(count),
        logical_pos_(bit_pos) {}

  uint64_t remaining() const { return remaining_; }
  bool HasNext() const { return remaining_ > 0; }

  /// Decodes the next residual. Precondition: HasNext().
  NodeId Next() {
    if (buf_pos_ == buf_len_) Refill();
    --remaining_;
    prev_ = buf_val_[buf_pos_];
    logical_pos_ = buf_end_[buf_pos_];
    ++buf_pos_;
    first_ = false;
    return prev_;
  }

  /// Bit/byte position after the last consumed residual, for cost
  /// accounting. Read-ahead buffering is invisible here.
  uint64_t bit_pos() const { return logical_pos_; }
  size_t byte_pos() const { return logical_pos_ >> 3; }
  bool overflowed() const { return reader_.overflowed(); }

  // Accessors for warp-centric decoding (core/warp_centric.h), which decodes
  // raw codewords out-of-band and then advances the stream externally.
  bool at_first() const { return first_; }
  NodeId prev() const { return prev_; }
  NodeId source() const { return u_; }
  void ExternalAdvance(uint64_t bit_pos, NodeId prev, uint64_t consumed) {
    reader_.Seek(bit_pos);
    logical_pos_ = bit_pos;
    prev_ = prev;
    first_ = false;
    dec_prev_ = prev;
    dec_first_ = false;
    buf_pos_ = buf_len_ = 0;  // read-ahead is stale after an external seek
    remaining_ -= consumed;
  }

 private:
  static constexpr uint32_t kBatch = 8;

  void Refill();

  BitReader reader_;
  VlcScheme scheme_;
  NodeId u_ = 0;
  uint64_t remaining_ = 0;
  // Consumer-visible delta state (last value handed out by Next()).
  bool first_ = true;
  NodeId prev_ = 0;
  uint64_t logical_pos_ = 0;
  // Decoder-side delta state (runs ahead of the consumer by the buffer).
  bool dec_first_ = true;
  NodeId dec_prev_ = 0;
  // Decoded read-ahead: value and exact end bit position per codeword.
  NodeId buf_val_[kBatch];
  uint64_t buf_end_[kBatch];
  uint32_t buf_pos_ = 0;
  uint32_t buf_len_ = 0;
};

/// Step-wise decoder for one node's CGR encoding. Methods must be called in
/// layout order (see class comment in cgr_graph.h).
class CgrNodeDecoder {
 public:
  CgrNodeDecoder(const CgrGraph& g, NodeId u);

  bool segmented() const { return segmented_; }

  /// Unsegmented layout only: total degree header.
  uint64_t ReadDegree();

  uint32_t ReadIntervalCount();

  /// Decodes the next (start, len) interval. Call exactly interval-count
  /// times, after ReadIntervalCount.
  CgrInterval ReadNextInterval();

  /// Segmented layout only: number of residual segments; positions the
  /// decoder at the (byte-aligned) segment area.
  uint32_t ReadSegmentCount();

  /// Unsegmented layout: stream over `count` residuals at the current
  /// position (count = degree - interval neighbors).
  ResidualStream UnsegmentedResiduals(uint64_t count);

  /// Segmented layout: independent stream over segment `seg_idx`
  /// (0 <= seg_idx < segment count). Reads the segment's count header.
  ResidualStream SegmentResiduals(uint32_t seg_idx);

  /// Bit offset of segment seg_idx's first bit (before its count header).
  uint64_t SegmentBitPos(uint32_t seg_idx) const;

  /// Sum of interval lengths decoded so far.
  uint64_t interval_neighbor_total() const { return interval_neighbors_; }

  uint64_t bit_pos() const { return reader_.pos(); }
  size_t byte_pos() const { return reader_.byte_pos(); }
  bool overflowed() const { return reader_.overflowed(); }

 private:
  const CgrGraph* graph_;
  BitReader reader_;
  VlcScheme scheme_;
  NodeId u_;
  bool segmented_;
  bool first_interval_ = true;
  NodeId prev_interval_end_ = 0;
  uint64_t interval_neighbors_ = 0;
  uint64_t segment_base_bits_ = 0;
  uint32_t segment_count_ = 0;
};

/// Decodes the full adjacency list of u, sorted ascending.
std::vector<NodeId> DecodeAdjacency(const CgrGraph& g, NodeId u);

/// Degree of u (cheap for unsegmented; decodes headers for segmented).
uint64_t DecodeDegree(const CgrGraph& g, NodeId u);

}  // namespace gcgt

#endif  // GCGT_CGR_CGR_DECODER_H_
