// Byte-aligned adjacency codecs: StreamVByte and VarintGB (Group Varint).
//
// Shared per-node layout (everything byte-aligned; bit_start(u) is always a
// multiple of 8 for these codecs):
//
//   [LEB128 degree] [codec-specific control/data area]
//
// Values are the delta transform of the sorted neighbor list: the first
// value is zigzag(n0 - u) (neighbors cluster around their source after
// reordering), subsequent values are the raw gaps n_i - n_{i-1} >= 1. Each
// value is stored little-endian in 1..4 bytes; a 2-bit control field per
// value holds (length - 1).
//
//   StreamVByte: all ceil(degree/4) control bytes first, then the data
//                bytes. A block decode reads one control byte and up to 16
//                data bytes from two separate cursors — the control area
//                stays hot in cache while data streams.
//   VarintGB:    each group of up to 4 values is preceded by its control
//                byte, so one block is a single contiguous span.
//
// Decode is table-driven: one 256-entry table lookup per control byte
// yields all four lengths plus their sum, and NextBlock() emits up to 4
// neighbors per step instead of one symbol at a time.
#ifndef GCGT_CGR_BYTE_CODECS_H_
#define GCGT_CGR_BYTE_CODECS_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cgr/codec.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/zigzag.h"

namespace gcgt {

class CgrGraph;

/// Appends node u's adjacency list (sorted, deduplicated) to `out` in the
/// given byte codec. Fails if the first delta's zigzag value exceeds 32 bits
/// (only possible for node ids >= 2^31, outside this codec's envelope).
Status EncodeNodeBytes(CodecId codec, NodeId u,
                       std::span<const NodeId> neighbors,
                       std::vector<uint8_t>* out);

/// Per-control-byte length table: lengths of the 4 values and their sum.
struct ByteCtrlEntry {
  uint8_t len[4];
  uint8_t total;
};

inline constexpr std::array<ByteCtrlEntry, 256> kByteCtrlTable = [] {
  std::array<ByteCtrlEntry, 256> t{};
  for (int c = 0; c < 256; ++c) {
    int total = 0;
    for (int i = 0; i < 4; ++i) {
      const uint8_t len = static_cast<uint8_t>(((c >> (2 * i)) & 3) + 1);
      t[static_cast<size_t>(c)].len[i] = len;
      total += len;
    }
    t[static_cast<size_t>(c)].total = static_cast<uint8_t>(total);
  }
  return t;
}();

/// One decoded block: up to 4 neighbors plus the byte spans it touched, so
/// the SIMT engine can charge control and data reads separately (they are
/// disjoint areas for StreamVByte).
struct ByteBlock {
  NodeId vals[4];
  uint32_t count = 0;
  uint64_t ctrl_byte = 0;   // absolute offset of the control byte read
  uint64_t data_first = 0;  // absolute first data byte read
  uint64_t data_last = 0;   // absolute last data byte read (inclusive)
};

/// Streaming block decoder over one node's byte-codec adjacency.
class ByteCodecStream {
 public:
  ByteCodecStream() = default;
  /// Positions at u's encoding and consumes the degree header.
  /// Precondition: g.options().codec is a byte codec.
  ByteCodecStream(const CgrGraph& g, NodeId u);

  uint64_t degree() const { return degree_; }
  uint64_t remaining() const { return remaining_; }
  bool HasNext() const { return remaining_ > 0; }
  /// First byte after the LEB128 degree header (for header-read charging).
  uint64_t header_end_byte() const { return hdr_end_; }

  /// Decodes the next group of up to 4 neighbors. Precondition: HasNext().
  ByteBlock NextBlock();

 private:
  const uint8_t* base_ = nullptr;
  CodecId codec_ = CodecId::kStreamVByte;
  NodeId u_ = 0;
  NodeId prev_ = 0;
  bool first_ = true;
  uint64_t degree_ = 0;
  uint64_t remaining_ = 0;
  uint64_t hdr_end_ = 0;
  uint64_t ctrl_pos_ = 0;  // next control byte (VarintGB: next group start)
  uint64_t data_pos_ = 0;  // next data byte (StreamVByte only)
};

/// LEB128 helpers shared by the encoders, the stream, and DecodeDegree.
inline void PutLeb128(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline uint64_t GetLeb128(const uint8_t* p, uint64_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    const uint8_t b = p[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

}  // namespace gcgt

#endif  // GCGT_CGR_BYTE_CODECS_H_
