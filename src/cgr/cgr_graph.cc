#include "cgr/cgr_graph.h"

#include <algorithm>
#include <atomic>

#include "cgr/byte_codecs.h"
#include "cgr/cgr_encoder.h"
#include "util/bit_stream.h"
#include "util/thread_pool.h"

namespace gcgt {
namespace {
std::atomic<uint64_t> g_graphs_encoded{0};
}  // namespace

uint64_t CgrGraph::EncodedCount() {
  return g_graphs_encoded.load(std::memory_order_relaxed);
}

Result<CgrGraph> CgrGraph::Encode(const Graph& g, const CgrOptions& options) {
  GCGT_RETURN_NOT_OK(options.Validate());
  CgrGraph cg;
  cg.options_ = options;
  cg.num_nodes_ = g.num_nodes();
  cg.num_edges_ = g.num_edges();
  cg.bit_start_.reserve(g.num_nodes() + 1);

  if (options.codec == CodecId::kCgr) {
    CgrEncoder encoder(options);
    BitWriter writer;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      cg.bit_start_.push_back(writer.num_bits());
      GCGT_RETURN_NOT_OK(encoder.EncodeNode(u, g.Neighbors(u), &writer));
    }
    cg.bit_start_.push_back(writer.num_bits());
    cg.total_bits_ = writer.num_bits();
    cg.bits_ = writer.TakeBytes();
  } else {
    // Byte codecs: everything byte-aligned, bit_start_ = byte offset * 8.
    std::vector<uint8_t> bytes;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      cg.bit_start_.push_back(bytes.size() * 8);
      GCGT_RETURN_NOT_OK(
          EncodeNodeBytes(options.codec, u, g.Neighbors(u), &bytes));
    }
    cg.bit_start_.push_back(bytes.size() * 8);
    cg.total_bits_ = bytes.size() * 8;
    cg.bits_ = std::move(bytes);
  }
  g_graphs_encoded.fetch_add(1, std::memory_order_relaxed);  // successes only
  return cg;
}

std::vector<CgrPartition> PlanPartitions(const Graph& g, int num_partitions) {
  const NodeId v = g.num_nodes();
  const int max_p = static_cast<int>(std::min<uint64_t>(
      std::max<NodeId>(1, v), std::numeric_limits<int>::max()));
  const int num_p = std::clamp(num_partitions, 1, max_p);
  const std::vector<EdgeId>& off = g.offsets();

  std::vector<CgrPartition> parts(static_cast<size_t>(num_p));
  NodeId begin = 0;
  for (int p = 0; p < num_p; ++p) {
    NodeId end;
    if (p == num_p - 1) {
      end = v;
    } else {
      // Cut where the cumulative edge count first reaches the ideal share.
      const EdgeId target =
          g.num_edges() * static_cast<uint64_t>(p + 1) / num_p;
      end = static_cast<NodeId>(
          std::lower_bound(off.begin(), off.end(), target) - off.begin());
      // Leave at least one node for this partition and each later one.
      const NodeId hi = v - static_cast<NodeId>(num_p - 1 - p);
      end = std::clamp<NodeId>(end, begin + 1, hi);
    }
    parts[p].node_begin = begin;
    parts[p].node_end = end;
    begin = end;
  }
  return parts;
}

Result<CgrGraph> CgrGraph::EncodePartitioned(const Graph& g,
                                             const CgrOptions& options,
                                             int num_partitions,
                                             int num_threads) {
  GCGT_RETURN_NOT_OK(options.Validate());
  if (num_partitions < 0) {
    return Status::InvalidArgument("num_partitions must be >= 0");
  }
  std::vector<CgrPartition> parts = PlanPartitions(g, num_partitions);
  const size_t num_p = parts.size();
  const NodeId v = g.num_nodes();

  CgrGraph cg;
  cg.options_ = options;
  cg.num_nodes_ = v;
  cg.num_edges_ = g.num_edges();

  ThreadPool& pool = SharedThreadPool(
      num_threads > 0 ? static_cast<size_t>(num_threads) : 0);
  std::vector<Status> part_status(num_p, Status::OK());

  if (options.codec == CodecId::kCgr) {
    // Phase A (parallel): measure every node's position-independent shape.
    std::vector<CgrNodeShape> shapes(v);
    pool.ParallelFor(num_p, 1, [&](size_t, size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        CgrEncoder encoder(options);
        BitWriter scratch;
        for (NodeId u = parts[p].node_begin; u < parts[p].node_end; ++u) {
          Status s = encoder.EncodeNode(u, g.Neighbors(u), &scratch,
                                        &shapes[u]);
          if (!s.ok()) {
            part_status[p] = std::move(s);
            break;
          }
        }
      }
    });
    for (Status& s : part_status) GCGT_RETURN_NOT_OK(s);

    // Phase B (serial): prefix-sum the offsets. A node's total length is its
    // shape plus the pad-to-byte the segmented layout emits at this offset.
    cg.bit_start_.resize(static_cast<size_t>(v) + 1);
    uint64_t pos = 0;
    for (NodeId u = 0; u < v; ++u) {
      cg.bit_start_[u] = pos;
      const CgrNodeShape& s = shapes[u];
      pos += s.head_bits;
      if (s.aligned) pos += (8 - pos % 8) % 8 + s.tail_bits;
    }
    cg.bit_start_[v] = pos;
    cg.total_bits_ = pos;

    // Phase C (parallel): re-encode each partition into a local writer
    // seeded with the partition's start-bit phase, so every pad-to-byte
    // falls exactly where the serial encode would put it.
    std::vector<std::vector<uint8_t>> local(num_p);
    pool.ParallelFor(num_p, 1, [&](size_t, size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        CgrEncoder encoder(options);
        BitWriter w;
        const uint64_t start_bit = cg.bit_start_[parts[p].node_begin];
        const int seed = static_cast<int>(start_bit % 8);
        w.PutZeros(seed);
        Status s = Status::OK();
        for (NodeId u = parts[p].node_begin; u < parts[p].node_end; ++u) {
          s = encoder.EncodeNode(u, g.Neighbors(u), &w);
          if (!s.ok()) break;
        }
        if (s.ok()) {
          const uint64_t want =
              cg.bit_start_[parts[p].node_end] - start_bit;
          if (w.num_bits() - seed != want) {
            s = Status::Internal(
                "partitioned encode disagrees with measured shape");
          }
        }
        if (!s.ok()) {
          part_status[p] = std::move(s);
          continue;
        }
        local[p] = w.TakeBytes();
      }
    });
    for (Status& s : part_status) GCGT_RETURN_NOT_OK(s);

    // Phase D (serial): OR-splice the local streams. BitWriter zero-fills
    // partial bytes, so OR-merging the shared boundary byte between adjacent
    // partitions reproduces the serial stream exactly.
    cg.bits_.assign(static_cast<size_t>((pos + 7) / 8), 0);
    for (size_t p = 0; p < num_p; ++p) {
      const size_t base =
          static_cast<size_t>(cg.bit_start_[parts[p].node_begin] / 8);
      for (size_t j = 0; j < local[p].size(); ++j) {
        cg.bits_[base + j] |= local[p][j];
      }
    }
  } else {
    // Byte codecs are byte-aligned and position-independent: encode each
    // partition in parallel, then concatenate with an offset fixup.
    std::vector<std::vector<uint8_t>> local(num_p);
    std::vector<std::vector<uint64_t>> local_off(num_p);
    pool.ParallelFor(num_p, 1, [&](size_t, size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        local_off[p].reserve(parts[p].num_nodes());
        for (NodeId u = parts[p].node_begin; u < parts[p].node_end; ++u) {
          local_off[p].push_back(local[p].size());
          Status s = EncodeNodeBytes(options.codec, u, g.Neighbors(u),
                                     &local[p]);
          if (!s.ok()) {
            part_status[p] = std::move(s);
            break;
          }
        }
      }
    });
    for (Status& s : part_status) GCGT_RETURN_NOT_OK(s);

    cg.bit_start_.reserve(static_cast<size_t>(v) + 1);
    uint64_t base_bytes = 0;
    for (size_t p = 0; p < num_p; ++p) {
      for (uint64_t o : local_off[p]) {
        cg.bit_start_.push_back((base_bytes + o) * 8);
      }
      base_bytes += local[p].size();
      cg.bits_.insert(cg.bits_.end(), local[p].begin(), local[p].end());
    }
    cg.bit_start_.push_back(base_bytes * 8);
    cg.total_bits_ = base_bytes * 8;
  }

  for (CgrPartition& part : parts) {
    part.byte_begin = cg.bit_start_[part.node_begin] / 8;
    part.byte_end = (cg.bit_start_[part.node_end] + 7) / 8;
  }
  cg.partitions_ = std::move(parts);
  g_graphs_encoded.fetch_add(1, std::memory_order_relaxed);  // successes only
  return cg;
}

namespace {

// Structural invariants shared by Assemble and AssembleView.
Status ValidateAssembledParts(const CgrOptions& options, NodeId num_nodes,
                              size_t bits_size,
                              const std::vector<uint64_t>& bit_start,
                              const std::vector<CgrPartition>& partitions) {
  GCGT_RETURN_NOT_OK(options.Validate());
  if (bit_start.size() != static_cast<size_t>(num_nodes) + 1) {
    return Status::InvalidArgument("bit_start size != num_nodes + 1");
  }
  if (bit_start.front() != 0) {
    return Status::InvalidArgument("bit_start must begin at 0");
  }
  for (size_t i = 1; i < bit_start.size(); ++i) {
    if (bit_start[i] < bit_start[i - 1]) {
      return Status::InvalidArgument("bit_start offsets not monotone");
    }
  }
  const uint64_t total_bits = bit_start.back();
  if (bits_size != static_cast<size_t>((total_bits + 7) / 8)) {
    return Status::InvalidArgument("bits size inconsistent with offsets");
  }
  if (partitions.empty()) {
    return Status::InvalidArgument("partition table must not be empty");
  }
  NodeId expect = 0;
  for (const CgrPartition& p : partitions) {
    if (p.node_begin != expect || p.node_end < p.node_begin ||
        p.node_end > num_nodes) {
      return Status::InvalidArgument("partition table not contiguous");
    }
    if (p.byte_begin != bit_start[p.node_begin] / 8 ||
        p.byte_end != (bit_start[p.node_end] + 7) / 8) {
      return Status::InvalidArgument(
          "partition byte range inconsistent with offsets");
    }
    expect = p.node_end;
  }
  if (expect != num_nodes) {
    return Status::InvalidArgument("partition table does not cover all nodes");
  }
  return Status::OK();
}

}  // namespace

Result<CgrGraph> CgrGraph::Assemble(const CgrOptions& options,
                                    NodeId num_nodes, EdgeId num_edges,
                                    std::vector<uint8_t> bits,
                                    std::vector<uint64_t> bit_start,
                                    std::vector<CgrPartition> partitions) {
  GCGT_RETURN_NOT_OK(ValidateAssembledParts(options, num_nodes, bits.size(),
                                            bit_start, partitions));
  CgrGraph cg;
  cg.options_ = options;
  cg.num_nodes_ = num_nodes;
  cg.num_edges_ = num_edges;
  cg.total_bits_ = bit_start.back();
  cg.bits_ = std::move(bits);
  cg.bit_start_ = std::move(bit_start);
  cg.partitions_ = std::move(partitions);
  return cg;
}

Result<CgrGraph> CgrGraph::AssembleView(const CgrOptions& options,
                                        NodeId num_nodes, EdgeId num_edges,
                                        std::span<const uint8_t> bits,
                                        std::vector<uint64_t> bit_start,
                                        std::vector<CgrPartition> partitions) {
  GCGT_RETURN_NOT_OK(ValidateAssembledParts(options, num_nodes, bits.size(),
                                            bit_start, partitions));
  CgrGraph cg;
  cg.options_ = options;
  cg.num_nodes_ = num_nodes;
  cg.num_edges_ = num_edges;
  cg.total_bits_ = bit_start.back();
  cg.ext_bits_ = bits.data();
  cg.ext_bits_size_ = bits.size();
  cg.bit_start_ = std::move(bit_start);
  cg.partitions_ = std::move(partitions);
  return cg;
}

}  // namespace gcgt
