#include "cgr/cgr_graph.h"

#include <atomic>

#include "cgr/byte_codecs.h"
#include "cgr/cgr_encoder.h"
#include "util/bit_stream.h"

namespace gcgt {
namespace {
std::atomic<uint64_t> g_graphs_encoded{0};
}  // namespace

uint64_t CgrGraph::EncodedCount() {
  return g_graphs_encoded.load(std::memory_order_relaxed);
}

Result<CgrGraph> CgrGraph::Encode(const Graph& g, const CgrOptions& options) {
  GCGT_RETURN_NOT_OK(options.Validate());
  CgrGraph cg;
  cg.options_ = options;
  cg.num_nodes_ = g.num_nodes();
  cg.num_edges_ = g.num_edges();
  cg.bit_start_.reserve(g.num_nodes() + 1);

  if (options.codec == CodecId::kCgr) {
    CgrEncoder encoder(options);
    BitWriter writer;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      cg.bit_start_.push_back(writer.num_bits());
      GCGT_RETURN_NOT_OK(encoder.EncodeNode(u, g.Neighbors(u), &writer));
    }
    cg.bit_start_.push_back(writer.num_bits());
    cg.total_bits_ = writer.num_bits();
    cg.bits_ = writer.TakeBytes();
  } else {
    // Byte codecs: everything byte-aligned, bit_start_ = byte offset * 8.
    std::vector<uint8_t> bytes;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      cg.bit_start_.push_back(bytes.size() * 8);
      GCGT_RETURN_NOT_OK(
          EncodeNodeBytes(options.codec, u, g.Neighbors(u), &bytes));
    }
    cg.bit_start_.push_back(bytes.size() * 8);
    cg.total_bits_ = bytes.size() * 8;
    cg.bits_ = std::move(bytes);
  }
  g_graphs_encoded.fetch_add(1, std::memory_order_relaxed);  // successes only
  return cg;
}

}  // namespace gcgt
