#include "cgr/cgr_decoder.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "cgr/byte_codecs.h"
#include "util/zigzag.h"

namespace gcgt {

void ResidualStream::Refill() {
  assert(remaining_ > 0);
  buf_pos_ = 0;
  buf_len_ = 0;
  const uint32_t want =
      static_cast<uint32_t>(std::min<uint64_t>(kBatch, remaining_));
  const int k = VlcZetaK(scheme_);

  auto push = [&](uint64_t raw, uint64_t end_pos) {
    NodeId id;
    if (dec_first_) {
      dec_first_ = false;
      id = static_cast<NodeId>(static_cast<int64_t>(u_) +
                               ZigzagDecode(raw - 1));
    } else {
      id = static_cast<NodeId>(dec_prev_ + raw);
    }
    dec_prev_ = id;
    buf_val_[buf_len_] = id;
    buf_end_[buf_len_] = end_pos;
    ++buf_len_;
  };

  while (buf_len_ < want) {
    // Fast path: extract whole codewords from one 64-bit window.
    int valid = 0;
    const uint64_t w = reader_.overflowed() ? 0 : reader_.PeekWindow(&valid);
    const uint64_t base = reader_.pos();
    int used = 0;
    const int before = static_cast<int>(buf_len_);
    while (buf_len_ < want && used < valid) {
      const uint64_t win = used == 0 ? w : w << used;
      const int rem = valid - used;
      const int lz = win == 0 ? 64 : std::countl_zero(win);
      if (lz >= rem) break;  // unary run does not terminate in this window
      // gamma: lz payload bits; zeta_k: (lz+1)*k plain binary bits. Any
      // codeword that fits a 64-bit window is below the VlcDecode guards.
      const int width = k == 0 ? lz : (lz + 1) * k;
      if (lz + 1 + width > rem) break;  // codeword spans past the window
      const uint64_t payload =
          width == 0 ? 0 : (win << (lz + 1)) >> (64 - width);
      const uint64_t raw =
          k == 0 ? (uint64_t{1} << lz) | payload : payload;
      used += lz + 1 + width;
      push(raw, base + static_cast<uint64_t>(used));
    }
    if (used != 0) reader_.Seek(base + static_cast<uint64_t>(used));
    if (buf_len_ < want && buf_len_ == static_cast<uint32_t>(before)) {
      // The window made no progress (codeword longer than the window, or
      // end of stream): the serial path reproduces the exact historical
      // position/overflow semantics for this codeword.
      const uint64_t raw = VlcDecode(scheme_, &reader_);
      push(raw, reader_.pos());
    }
  }
}

CgrNodeDecoder::CgrNodeDecoder(const CgrGraph& g, NodeId u)
    : graph_(&g),
      reader_(g.bits().data(), g.total_bits(), g.bit_start(u)),
      scheme_(g.options().scheme),
      u_(u),
      segmented_(g.options().segment_len_bytes != 0),
      prev_interval_end_(u) {}

uint64_t CgrNodeDecoder::ReadDegree() {
  assert(!segmented_);
  return VlcDecode(scheme_, &reader_) - 1;
}

uint32_t CgrNodeDecoder::ReadIntervalCount() {
  return static_cast<uint32_t>(VlcDecode(scheme_, &reader_) - 1);
}

CgrInterval CgrNodeDecoder::ReadNextInterval() {
  const int min_len = graph_->options().min_interval_len == CgrOptions::kNoIntervals
                          ? 2
                          : graph_->options().min_interval_len;
  uint64_t v = VlcDecode(scheme_, &reader_);
  NodeId start;
  if (first_interval_) {
    first_interval_ = false;
    start = static_cast<NodeId>(static_cast<int64_t>(u_) + ZigzagDecode(v - 1));
  } else {
    start = static_cast<NodeId>(prev_interval_end_ + v);
  }
  uint32_t len =
      static_cast<uint32_t>(VlcDecode(scheme_, &reader_) - 1 + min_len);
  prev_interval_end_ = start + len - 1;
  interval_neighbors_ += len;
  return {start, len};
}

uint32_t CgrNodeDecoder::ReadSegmentCount() {
  assert(segmented_);
  segment_count_ = static_cast<uint32_t>(VlcDecode(scheme_, &reader_) - 1);
  segment_base_bits_ = (reader_.pos() + 7) / 8 * 8;  // global byte alignment
  return segment_count_;
}

uint64_t CgrNodeDecoder::SegmentBitPos(uint32_t seg_idx) const {
  return segment_base_bits_ +
         static_cast<uint64_t>(seg_idx) * graph_->options().segment_len_bytes * 8;
}

ResidualStream CgrNodeDecoder::UnsegmentedResiduals(uint64_t count) {
  assert(!segmented_);
  return ResidualStream(*graph_, u_, count, reader_.pos());
}

ResidualStream CgrNodeDecoder::SegmentResiduals(uint32_t seg_idx) {
  assert(segmented_ && seg_idx < segment_count_);
  BitReader r(graph_->bits().data(), graph_->total_bits(), SegmentBitPos(seg_idx));
  uint64_t count = VlcDecode(scheme_, &r) - 1;
  return ResidualStream(*graph_, u_, count, r.pos());
}

std::vector<NodeId> DecodeAdjacency(const CgrGraph& g, NodeId u) {
  std::vector<NodeId> out;
  if (g.options().codec != CodecId::kCgr) {
    ByteCodecStream bs(g, u);
    out.reserve(bs.degree());
    while (bs.HasNext()) {
      const ByteBlock blk = bs.NextBlock();
      for (uint32_t i = 0; i < blk.count; ++i) out.push_back(blk.vals[i]);
    }
    return out;  // delta transform preserves sort order
  }
  CgrNodeDecoder dec(g, u);
  if (!g.options().segment_len_bytes) {
    uint64_t deg = dec.ReadDegree();
    if (deg == 0) return out;
    out.reserve(deg);
    uint32_t itv_count = dec.ReadIntervalCount();
    for (uint32_t i = 0; i < itv_count; ++i) {
      CgrInterval itv = dec.ReadNextInterval();
      for (uint32_t t = 0; t < itv.len; ++t) out.push_back(itv.start + t);
    }
    ResidualStream rs =
        dec.UnsegmentedResiduals(deg - dec.interval_neighbor_total());
    while (rs.HasNext()) out.push_back(rs.Next());
  } else {
    uint32_t itv_count = dec.ReadIntervalCount();
    for (uint32_t i = 0; i < itv_count; ++i) {
      CgrInterval itv = dec.ReadNextInterval();
      for (uint32_t t = 0; t < itv.len; ++t) out.push_back(itv.start + t);
    }
    uint32_t segs = dec.ReadSegmentCount();
    for (uint32_t s = 0; s < segs; ++s) {
      ResidualStream rs = dec.SegmentResiduals(s);
      while (rs.HasNext()) out.push_back(rs.Next());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DecodeDegree(const CgrGraph& g, NodeId u) {
  return g.EncodedDegree(u);
}

// Defined here (not cgr_graph.cc) because it walks the encoded headers with
// the decoder machinery.
uint64_t CgrGraph::EncodedDegree(NodeId u) const {
  if (options().codec != CodecId::kCgr) {
    uint64_t pos = bit_start(u) / 8;
    return GetLeb128(bits().data(), &pos);
  }
  CgrNodeDecoder dec(*this, u);
  if (!options().segment_len_bytes) return dec.ReadDegree();
  uint64_t deg = 0;
  uint32_t itv_count = dec.ReadIntervalCount();
  for (uint32_t i = 0; i < itv_count; ++i) deg += dec.ReadNextInterval().len;
  uint32_t segs = dec.ReadSegmentCount();
  for (uint32_t s = 0; s < segs; ++s) deg += dec.SegmentResiduals(s).remaining();
  return deg;
}

}  // namespace gcgt
