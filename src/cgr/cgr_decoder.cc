#include "cgr/cgr_decoder.h"

#include <algorithm>
#include <cassert>

#include "util/zigzag.h"

namespace gcgt {

NodeId ResidualStream::Next() {
  assert(remaining_ > 0);
  --remaining_;
  uint64_t v = VlcDecode(scheme_, &reader_);
  if (first_) {
    first_ = false;
    prev_ = static_cast<NodeId>(static_cast<int64_t>(u_) + ZigzagDecode(v - 1));
  } else {
    prev_ = static_cast<NodeId>(prev_ + v);
  }
  return prev_;
}

CgrNodeDecoder::CgrNodeDecoder(const CgrGraph& g, NodeId u)
    : graph_(&g),
      reader_(g.bits().data(), g.total_bits(), g.bit_start(u)),
      scheme_(g.options().scheme),
      u_(u),
      segmented_(g.options().segment_len_bytes != 0),
      prev_interval_end_(u) {}

uint64_t CgrNodeDecoder::ReadDegree() {
  assert(!segmented_);
  return VlcDecode(scheme_, &reader_) - 1;
}

uint32_t CgrNodeDecoder::ReadIntervalCount() {
  return static_cast<uint32_t>(VlcDecode(scheme_, &reader_) - 1);
}

CgrInterval CgrNodeDecoder::ReadNextInterval() {
  const int min_len = graph_->options().min_interval_len == CgrOptions::kNoIntervals
                          ? 2
                          : graph_->options().min_interval_len;
  uint64_t v = VlcDecode(scheme_, &reader_);
  NodeId start;
  if (first_interval_) {
    first_interval_ = false;
    start = static_cast<NodeId>(static_cast<int64_t>(u_) + ZigzagDecode(v - 1));
  } else {
    start = static_cast<NodeId>(prev_interval_end_ + v);
  }
  uint32_t len =
      static_cast<uint32_t>(VlcDecode(scheme_, &reader_) - 1 + min_len);
  prev_interval_end_ = start + len - 1;
  interval_neighbors_ += len;
  return {start, len};
}

uint32_t CgrNodeDecoder::ReadSegmentCount() {
  assert(segmented_);
  segment_count_ = static_cast<uint32_t>(VlcDecode(scheme_, &reader_) - 1);
  segment_base_bits_ = (reader_.pos() + 7) / 8 * 8;  // global byte alignment
  return segment_count_;
}

uint64_t CgrNodeDecoder::SegmentBitPos(uint32_t seg_idx) const {
  return segment_base_bits_ +
         static_cast<uint64_t>(seg_idx) * graph_->options().segment_len_bytes * 8;
}

ResidualStream CgrNodeDecoder::UnsegmentedResiduals(uint64_t count) {
  assert(!segmented_);
  return ResidualStream(*graph_, u_, count, reader_.pos());
}

ResidualStream CgrNodeDecoder::SegmentResiduals(uint32_t seg_idx) {
  assert(segmented_ && seg_idx < segment_count_);
  BitReader r(graph_->bits().data(), graph_->total_bits(), SegmentBitPos(seg_idx));
  uint64_t count = VlcDecode(scheme_, &r) - 1;
  return ResidualStream(*graph_, u_, count, r.pos());
}

std::vector<NodeId> DecodeAdjacency(const CgrGraph& g, NodeId u) {
  std::vector<NodeId> out;
  CgrNodeDecoder dec(g, u);
  if (!g.options().segment_len_bytes) {
    uint64_t deg = dec.ReadDegree();
    if (deg == 0) return out;
    out.reserve(deg);
    uint32_t itv_count = dec.ReadIntervalCount();
    for (uint32_t i = 0; i < itv_count; ++i) {
      CgrInterval itv = dec.ReadNextInterval();
      for (uint32_t t = 0; t < itv.len; ++t) out.push_back(itv.start + t);
    }
    ResidualStream rs =
        dec.UnsegmentedResiduals(deg - dec.interval_neighbor_total());
    while (rs.HasNext()) out.push_back(rs.Next());
  } else {
    uint32_t itv_count = dec.ReadIntervalCount();
    for (uint32_t i = 0; i < itv_count; ++i) {
      CgrInterval itv = dec.ReadNextInterval();
      for (uint32_t t = 0; t < itv.len; ++t) out.push_back(itv.start + t);
    }
    uint32_t segs = dec.ReadSegmentCount();
    for (uint32_t s = 0; s < segs; ++s) {
      ResidualStream rs = dec.SegmentResiduals(s);
      while (rs.HasNext()) out.push_back(rs.Next());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DecodeDegree(const CgrGraph& g, NodeId u) {
  CgrNodeDecoder dec(g, u);
  if (!g.options().segment_len_bytes) return dec.ReadDegree();
  uint64_t deg = 0;
  uint32_t itv_count = dec.ReadIntervalCount();
  for (uint32_t i = 0; i < itv_count; ++i) deg += dec.ReadNextInterval().len;
  uint32_t segs = dec.ReadSegmentCount();
  for (uint32_t s = 0; s < segs; ++s) deg += dec.SegmentResiduals(s).remaining();
  return deg;
}

}  // namespace gcgt
