// CGR encoder: adjacency list -> intervals/residuals -> gap transform -> VLC.
#ifndef GCGT_CGR_CGR_ENCODER_H_
#define GCGT_CGR_CGR_ENCODER_H_

#include <vector>

#include "cgr/cgr_graph.h"
#include "util/bit_stream.h"

namespace gcgt {

/// Position-independent shape of one node's CGR encoding, recorded during
/// EncodeNode. The segmented layout pads to the next byte boundary between
/// the header codewords and the first segment (cgr_graph.h layout notes), so
/// a node's TOTAL encoded length depends on the absolute bit offset it starts
/// at — but only through that one pad. head/tail/aligned are pure functions
/// of the adjacency content, which is what makes the sharded partitioned
/// encode (CgrGraph::EncodePartitioned) byte-identical to the serial one:
///   total(start) = head_bits
///                + aligned ? pad8(start + head_bits) + tail_bits : 0
/// with pad8(x) = (8 - x % 8) % 8.
struct CgrNodeShape {
  uint64_t head_bits = 0;  ///< bits before the pad-to-byte point
  uint64_t tail_bits = 0;  ///< bits after the pad (the residual segments)
  bool aligned = false;    ///< true when the encoding pads to a byte boundary
};

/// Stateless helper that encodes single adjacency lists; CgrGraph::Encode
/// drives it over a whole graph. Exposed separately for unit tests that pin
/// the paper's Fig. 2 example.
class CgrEncoder {
 public:
  explicit CgrEncoder(const CgrOptions& options) : options_(options) {}

  /// Appends the encoding of node u's adjacency list to `writer`.
  /// `neighbors` must be sorted ascending and deduplicated. When `shape` is
  /// non-null it receives the node's position-independent encoding shape
  /// (see CgrNodeShape) — the writer's absolute position only influences the
  /// pad emitted between head and tail, never the recorded shape.
  Status EncodeNode(NodeId u, std::span<const NodeId> neighbors,
                    BitWriter* writer, CgrNodeShape* shape = nullptr) const;

 private:
  Status EncodeUnsegmented(NodeId u, const IntervalDecomposition& d,
                           BitWriter* writer) const;
  Status EncodeSegmented(NodeId u, const IntervalDecomposition& d,
                         BitWriter* writer, CgrNodeShape* shape) const;
  void EncodeIntervals(NodeId u, const std::vector<CgrInterval>& intervals,
                       BitWriter* writer) const;

  CgrOptions options_;
};

}  // namespace gcgt

#endif  // GCGT_CGR_CGR_ENCODER_H_
