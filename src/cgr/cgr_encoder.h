// CGR encoder: adjacency list -> intervals/residuals -> gap transform -> VLC.
#ifndef GCGT_CGR_CGR_ENCODER_H_
#define GCGT_CGR_CGR_ENCODER_H_

#include <vector>

#include "cgr/cgr_graph.h"
#include "util/bit_stream.h"

namespace gcgt {

/// Stateless helper that encodes single adjacency lists; CgrGraph::Encode
/// drives it over a whole graph. Exposed separately for unit tests that pin
/// the paper's Fig. 2 example.
class CgrEncoder {
 public:
  explicit CgrEncoder(const CgrOptions& options) : options_(options) {}

  /// Appends the encoding of node u's adjacency list to `writer`.
  /// `neighbors` must be sorted ascending and deduplicated.
  Status EncodeNode(NodeId u, std::span<const NodeId> neighbors,
                    BitWriter* writer) const;

 private:
  Status EncodeUnsegmented(NodeId u, const IntervalDecomposition& d,
                           BitWriter* writer) const;
  Status EncodeSegmented(NodeId u, const IntervalDecomposition& d,
                         BitWriter* writer) const;
  void EncodeIntervals(NodeId u, const std::vector<CgrInterval>& intervals,
                       BitWriter* writer) const;

  CgrOptions options_;
};

}  // namespace gcgt

#endif  // GCGT_CGR_CGR_ENCODER_H_
