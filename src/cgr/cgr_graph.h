// Compressed Graph Representation container (paper §3.1, Fig. 2, Fig. 6).
//
// Layouts (all values are VLC codewords; see DESIGN.md for the normative
// conventions; "+1" shifts make every encoded value >= 1):
//
// Unsegmented (segment_len_bytes == 0):
//   [deg+1][itvNum+1][itv...] [res gap ...]
// Segmented (segment_len_bytes > 0):
//   [itvNum+1][itv...][segNum+1] <pad to byte> [seg_0]..[seg_{n-1}]
//   segments 0..n-2 are exactly segment_len_bytes long (zero padded);
//   the last segment is unpadded. Each segment: [count+1][residuals...]
//   with its first residual coded relative to the source node u, so a lane
//   can decode segment i independently at seg_base + i*8*segment_len_bytes.
//
// Intervals: first start is zigzag(start-u)+1, later starts are
// start-prevEnd; lengths are len-min_interval_len+1.
// Residuals: first is zigzag(r0-u)+1 (per segment in segmented layout),
// later are gaps r_i - r_{i-1} (>= 1 since lists are strictly increasing).
#ifndef GCGT_CGR_CGR_GRAPH_H_
#define GCGT_CGR_CGR_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cgr/codec.h"
#include "cgr/vlc.h"
#include "graph/graph.h"
#include "util/status.h"

namespace gcgt {

/// Encoder configuration (paper Table 2 defaults).
struct CgrOptions {
  /// Which adjacency codec the encoded graph uses. The byte codecs ignore
  /// scheme/min_interval_len/segment_len_bytes (no intervals, no segments);
  /// bit_start(u) is byte-aligned for them. The codec id participates in
  /// artifact fingerprints so artifacts of different codecs never alias.
  CodecId codec = CodecId::kCgr;

  VlcScheme scheme = VlcScheme::kZeta3;

  /// Minimum run length that becomes an interval. kNoIntervals disables
  /// interval extraction entirely (the "inf" point of paper Fig. 12).
  static constexpr int kNoIntervals = std::numeric_limits<int>::max();
  int min_interval_len = 4;

  /// Residual segment length in bytes; 0 = unsegmented (the "inf" point of
  /// paper Fig. 14). Must be 0 or >= 8.
  int segment_len_bytes = 32;

  Status Validate() const {
    if (min_interval_len < 2) {
      return Status::InvalidArgument("min_interval_len must be >= 2");
    }
    if (segment_len_bytes != 0 && segment_len_bytes < 8) {
      return Status::InvalidArgument("segment_len_bytes must be 0 or >= 8");
    }
    return Status::OK();
  }
};

/// An interval of consecutive neighbor ids [start, start+len).
struct CgrInterval {
  NodeId start;
  uint32_t len;
  bool operator==(const CgrInterval&) const = default;
};

/// The intervals/residuals decomposition of one adjacency list (the
/// intermediate representation of paper Fig. 2, before gap transform).
struct IntervalDecomposition {
  std::vector<CgrInterval> intervals;
  std::vector<NodeId> residuals;
};

/// Splits a sorted, deduplicated neighbor list into maximal consecutive runs
/// of length >= min_interval_len (intervals) and leftover residuals.
IntervalDecomposition DecomposeAdjacency(std::span<const NodeId> neighbors,
                                         int min_interval_len);

/// A graph compressed into CGR. Immutable after Encode().
class CgrGraph {
 public:
  /// Compresses `g`. Fails with InvalidArgument on bad options.
  static Result<CgrGraph> Encode(const Graph& g, const CgrOptions& options);

  /// Process-wide count of successful Encode() runs. The service registry's
  /// contract is "one encode per artifact fingerprint"; tests assert this
  /// counter stays flat when a graph is re-registered or served by many
  /// worker sessions.
  static uint64_t EncodedCount();

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }
  const CgrOptions& options() const { return options_; }

  const std::vector<uint8_t>& bits() const { return bits_; }
  uint64_t total_bits() const { return total_bits_; }
  /// Bit offset of node u's encoding.
  uint64_t bit_start(NodeId u) const { return bit_start_[u]; }

  /// Adjacency-data bits per edge (the paper's compression metric).
  double BitsPerEdge() const {
    return num_edges_ ? static_cast<double>(total_bits_) / num_edges_ : 0.0;
  }
  /// Paper's "compression rate" = 32 / bits-per-edge.
  double CompressionRate() const {
    double bpe = BitsPerEdge();
    return bpe > 0 ? 32.0 / bpe : 0.0;
  }

  /// Device footprint: bit array + per-node offsets (the offsets are the CSR
  /// row-offset analog and are reported separately from BitsPerEdge).
  uint64_t DeviceBytes() const {
    return bits_.size() + bit_start_.size() * sizeof(uint64_t);
  }

 private:
  friend class CgrEncoder;

  CgrOptions options_;
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  uint64_t total_bits_ = 0;
  std::vector<uint8_t> bits_;
  std::vector<uint64_t> bit_start_;  // size num_nodes + 1
};

}  // namespace gcgt

#endif  // GCGT_CGR_CGR_GRAPH_H_
