// Compressed Graph Representation container (paper §3.1, Fig. 2, Fig. 6).
//
// Layouts (all values are VLC codewords; see DESIGN.md for the normative
// conventions; "+1" shifts make every encoded value >= 1):
//
// Unsegmented (segment_len_bytes == 0):
//   [deg+1][itvNum+1][itv...] [res gap ...]
// Segmented (segment_len_bytes > 0):
//   [itvNum+1][itv...][segNum+1] <pad to byte> [seg_0]..[seg_{n-1}]
//   segments 0..n-2 are exactly segment_len_bytes long (zero padded);
//   the last segment is unpadded. Each segment: [count+1][residuals...]
//   with its first residual coded relative to the source node u, so a lane
//   can decode segment i independently at seg_base + i*8*segment_len_bytes.
//
// Intervals: first start is zigzag(start-u)+1, later starts are
// start-prevEnd; lengths are len-min_interval_len+1.
// Residuals: first is zigzag(r0-u)+1 (per segment in segmented layout),
// later are gaps r_i - r_{i-1} (>= 1 since lists are strictly increasing).
#ifndef GCGT_CGR_CGR_GRAPH_H_
#define GCGT_CGR_CGR_GRAPH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "cgr/codec.h"
#include "cgr/vlc.h"
#include "graph/graph.h"
#include "util/status.h"

namespace gcgt {

/// Encoder configuration (paper Table 2 defaults).
struct CgrOptions {
  /// Which adjacency codec the encoded graph uses. The byte codecs ignore
  /// scheme/min_interval_len/segment_len_bytes (no intervals, no segments);
  /// bit_start(u) is byte-aligned for them. The codec id participates in
  /// artifact fingerprints so artifacts of different codecs never alias.
  CodecId codec = CodecId::kCgr;

  VlcScheme scheme = VlcScheme::kZeta3;

  /// Minimum run length that becomes an interval. kNoIntervals disables
  /// interval extraction entirely (the "inf" point of paper Fig. 12).
  static constexpr int kNoIntervals = std::numeric_limits<int>::max();
  int min_interval_len = 4;

  /// Residual segment length in bytes; 0 = unsegmented (the "inf" point of
  /// paper Fig. 14). Must be 0 or >= 8.
  int segment_len_bytes = 32;

  Status Validate() const {
    if (min_interval_len < 2) {
      return Status::InvalidArgument("min_interval_len must be >= 2");
    }
    if (segment_len_bytes != 0 && segment_len_bytes < 8) {
      return Status::InvalidArgument("segment_len_bytes must be 0 or >= 8");
    }
    return Status::OK();
  }
};

/// An interval of consecutive neighbor ids [start, start+len).
struct CgrInterval {
  NodeId start;
  uint32_t len;
  bool operator==(const CgrInterval&) const = default;
};

/// The intervals/residuals decomposition of one adjacency list (the
/// intermediate representation of paper Fig. 2, before gap transform).
struct IntervalDecomposition {
  std::vector<CgrInterval> intervals;
  std::vector<NodeId> residuals;
};

/// Splits a sorted, deduplicated neighbor list into maximal consecutive runs
/// of length >= min_interval_len (intervals) and leftover residuals.
IntervalDecomposition DecomposeAdjacency(std::span<const NodeId> neighbors,
                                         int min_interval_len);

/// One shard of a partitioned CGR encoding: a contiguous node range plus the
/// byte range of bits() that holds those nodes' encodings. Adjacent
/// partitions may share a boundary byte (a node range can end mid-byte);
/// byte ranges therefore overlap by at most one byte and together cover the
/// whole bit stream. The out-of-core tier (src/ooc) pages these units.
struct CgrPartition {
  NodeId node_begin = 0;    ///< first node of the partition
  NodeId node_end = 0;      ///< one past the last node (exclusive)
  uint64_t byte_begin = 0;  ///< bit_start(node_begin) / 8
  uint64_t byte_end = 0;    ///< (bit_start(node_end) + 7) / 8

  uint64_t num_bytes() const { return byte_end - byte_begin; }
  NodeId num_nodes() const { return node_end - node_begin; }
  bool operator==(const CgrPartition&) const = default;
};

/// Edge-balanced contiguous node partition plan: boundaries are lower-bound
/// cuts of the CSR offsets at the ideal cumulative edge count, clamped so
/// every partition gets at least one node. num_partitions is clamped to
/// [1, max(1, num_nodes)]. A pure function of the offsets and the (clamped)
/// partition count — byte ranges are filled in by the encode, node ranges
/// here. Deterministic: the same plan on every thread count.
std::vector<CgrPartition> PlanPartitions(const Graph& g, int num_partitions);

/// A graph compressed into CGR. Immutable after Encode().
class CgrGraph {
 public:
  /// Compresses `g`. Fails with InvalidArgument on bad options.
  static Result<CgrGraph> Encode(const Graph& g, const CgrOptions& options);

  /// Compresses `g` sharded: the per-node encoding of `num_partitions`
  /// edge-balanced contiguous node ranges (PlanPartitions) runs across the
  /// SharedThreadPool(num_threads). The bit stream, offsets and partition
  /// table are byte-identical on every thread count, and the bits equal
  /// serial Encode()'s output exactly: node shapes are measured in a first
  /// parallel pass (CgrNodeShape — position-independent), offsets are
  /// prefix-summed serially, then each partition re-encodes seeded with its
  /// start bit's phase mod 8 so the segmented layout's pad-to-byte lands in
  /// the same place, and the zero-filled partial boundary bytes are
  /// OR-spliced. The result carries partitions() for the out-of-core tier.
  static Result<CgrGraph> EncodePartitioned(const Graph& g,
                                            const CgrOptions& options,
                                            int num_partitions,
                                            int num_threads = 0);

  /// Reconstructs an encoded graph from externally stored parts (the
  /// src/ooc container reader). Validates the structural invariants —
  /// monotone offsets starting at 0, bits sized to the offsets, a partition
  /// table contiguously covering [0, num_nodes) with byte ranges consistent
  /// with the offsets — and fails with InvalidArgument on any violation.
  /// Does not count as an encode for EncodedCount().
  static Result<CgrGraph> Assemble(const CgrOptions& options, NodeId num_nodes,
                                   EdgeId num_edges, std::vector<uint8_t> bits,
                                   std::vector<uint64_t> bit_start,
                                   std::vector<CgrPartition> partitions);

  /// Like Assemble but borrows `bits` instead of owning a copy — the caller
  /// guarantees the backing storage (e.g. an mmap'd ooc container payload)
  /// outlives the graph. Same validation, zero payload copy.
  static Result<CgrGraph> AssembleView(const CgrOptions& options,
                                       NodeId num_nodes, EdgeId num_edges,
                                       std::span<const uint8_t> bits,
                                       std::vector<uint64_t> bit_start,
                                       std::vector<CgrPartition> partitions);

  /// Process-wide count of successful Encode() runs. The service registry's
  /// contract is "one encode per artifact fingerprint"; tests assert this
  /// counter stays flat when a graph is re-registered or served by many
  /// worker sessions.
  static uint64_t EncodedCount();

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }
  const CgrOptions& options() const { return options_; }

  /// The encoded bit stream. A view: backed by the owned buffer for
  /// Encode/Assemble graphs, or by caller-owned storage (e.g. an mmap'd ooc
  /// container) for AssembleView graphs.
  std::span<const uint8_t> bits() const {
    return ext_bits_ ? std::span<const uint8_t>(ext_bits_, ext_bits_size_)
                     : std::span<const uint8_t>(bits_);
  }
  uint64_t total_bits() const { return total_bits_; }
  /// Bit offset of node u's encoding.
  uint64_t bit_start(NodeId u) const { return bit_start_[u]; }

  /// Degree of u read from the encoded headers without materializing the
  /// adjacency: interval lengths plus per-segment residual counts for CGR,
  /// the LEB128 degree header for the byte codecs. No allocation.
  uint64_t EncodedDegree(NodeId u) const;

  /// Partition table when built by EncodePartitioned / Assemble; empty for
  /// plain Encode() (an unpartitioned graph is "one big partition" only when
  /// written to a container, see src/ooc).
  const std::vector<CgrPartition>& partitions() const { return partitions_; }
  bool partitioned() const { return !partitions_.empty(); }

  /// Adjacency-data bits per edge (the paper's compression metric).
  double BitsPerEdge() const {
    return num_edges_ ? static_cast<double>(total_bits_) / num_edges_ : 0.0;
  }
  /// Paper's "compression rate" = 32 / bits-per-edge.
  double CompressionRate() const {
    double bpe = BitsPerEdge();
    return bpe > 0 ? 32.0 / bpe : 0.0;
  }

  /// Device footprint: bit array + per-node offsets (the offsets are the CSR
  /// row-offset analog and are reported separately from BitsPerEdge).
  uint64_t DeviceBytes() const {
    return bits().size() + bit_start_.size() * sizeof(uint64_t);
  }

 private:
  friend class CgrEncoder;

  CgrOptions options_;
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  uint64_t total_bits_ = 0;
  std::vector<uint8_t> bits_;        // owned storage; empty for views
  const uint8_t* ext_bits_ = nullptr;  // borrowed storage (AssembleView)
  size_t ext_bits_size_ = 0;
  std::vector<uint64_t> bit_start_;  // size num_nodes + 1
  std::vector<CgrPartition> partitions_;  // empty unless partitioned
};

}  // namespace gcgt

#endif  // GCGT_CGR_CGR_GRAPH_H_
