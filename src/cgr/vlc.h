// Variable-length codes (paper Appendix B, Table 3).
//
// gamma(x):  h = floor(log2 x) zeros, a one, then the low h bits of x
//            (leading one omitted). |gamma(x)| = 2h + 1.
// zeta_k(x): j = floor(log2 x)/k zeros, a one, then x in (j+1)*k plain
//            binary bits. |zeta_k(x)| = (j+1)(k+1) ... precisely j+1+(j+1)k.
//
// The zeta variant implemented here is the paper's Table 3 convention (plain
// binary remainder), which differs from Boldi-Vigna's minimal-binary zeta;
// unit tests pin the exact Table 3 codewords. All codes encode x >= 1.
#ifndef GCGT_CGR_VLC_H_
#define GCGT_CGR_VLC_H_

#include <cstdint>
#include <string>

#include "util/bit_stream.h"
#include "util/status.h"

namespace gcgt {

/// Code family selector (Table 2 default: zeta3).
enum class VlcScheme : uint8_t {
  kGamma = 0,
  kZeta2,
  kZeta3,
  kZeta4,
  kZeta5,
};

inline const char* VlcSchemeName(VlcScheme s) {
  switch (s) {
    case VlcScheme::kGamma: return "gamma";
    case VlcScheme::kZeta2: return "zeta2";
    case VlcScheme::kZeta3: return "zeta3";
    case VlcScheme::kZeta4: return "zeta4";
    case VlcScheme::kZeta5: return "zeta5";
  }
  return "?";
}

/// zeta parameter k for the scheme; 0 for gamma.
inline int VlcZetaK(VlcScheme s) {
  switch (s) {
    case VlcScheme::kGamma: return 0;
    case VlcScheme::kZeta2: return 2;
    case VlcScheme::kZeta3: return 3;
    case VlcScheme::kZeta4: return 4;
    case VlcScheme::kZeta5: return 5;
  }
  return 0;
}

/// Appends the codeword of `value` (must be >= 1) to `writer`.
void VlcEncode(VlcScheme scheme, uint64_t value, BitWriter* writer);

/// Codeword length in bits of `value` (must be >= 1).
int VlcLength(VlcScheme scheme, uint64_t value);

/// Decodes one codeword. On malformed input (e.g. running off the end of the
/// buffer) the reader's overflowed() flag is set and the return value is
/// unspecified; structured decoders check reader state. Inline: this is the
/// innermost call of the traversal simulators (one per decoded value).
inline uint64_t VlcDecode(VlcScheme scheme, BitReader* reader) {
  int prefix = reader->GetUnary();
  if (reader->overflowed()) return 0;
  if (scheme == VlcScheme::kGamma) {
    // Guard absurd prefixes from garbage bits (speculative decoding).
    if (prefix > 63) return 0;
    return (uint64_t(1) << prefix) | reader->GetBits(prefix);
  }
  int k = VlcZetaK(scheme);
  if ((prefix + 1) * k > 63) return 0;
  return reader->GetBits((prefix + 1) * k);
}

/// Codeword as a bit string, e.g. VlcToString(kZeta3, 12) == "01001100".
std::string VlcToString(VlcScheme scheme, uint64_t value);

}  // namespace gcgt

#endif  // GCGT_CGR_VLC_H_
