#include "cgr/vlc.h"

#include <bit>
#include <cassert>

namespace gcgt {
namespace {

int FloorLog2(uint64_t x) { return 63 - std::countl_zero(x); }

}  // namespace

void VlcEncode(VlcScheme scheme, uint64_t value, BitWriter* writer) {
  assert(value >= 1);
  int h = FloorLog2(value);
  if (scheme == VlcScheme::kGamma) {
    writer->PutZeros(h);
    writer->PutBit(true);
    writer->PutBits(value, h);  // low h bits; the leading one is implicit
    return;
  }
  int k = VlcZetaK(scheme);
  int j = h / k;
  writer->PutZeros(j);
  writer->PutBit(true);
  writer->PutBits(value, (j + 1) * k);  // plain binary, leading zeros allowed
}

int VlcLength(VlcScheme scheme, uint64_t value) {
  assert(value >= 1);
  int h = FloorLog2(value);
  if (scheme == VlcScheme::kGamma) return 2 * h + 1;
  int k = VlcZetaK(scheme);
  int j = h / k;
  return (j + 1) + (j + 1) * k;
}

std::string VlcToString(VlcScheme scheme, uint64_t value) {
  BitWriter w;
  VlcEncode(scheme, value, &w);
  return w.ToBitString();
}

}  // namespace gcgt
