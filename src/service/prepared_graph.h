// PreparedGraph: one immutable prepared artifact in the service registry.
//
// Holds the result of exactly ONE VNC -> reorder -> CGR-encode pipeline run
// (a master GcgtSession) and hands out cheap per-worker session clones that
// share the encode by reference: N workers = N engines (per-session warp
// scratch) over one compressed graph, the EMOGI-style "keep one prepared
// artifact hot, stream many traversals against it" shape.
//
// Thread-safety: after Build() returns, a PreparedGraph is immutable — the
// uncompressed view the baseline backends need is decoded eagerly at build
// time precisely so concurrent NewWorkerSession() calls never race on the
// master session's lazy caches. The master session itself is never Run() by
// the service (it is the clone source, not a serving session).
#ifndef GCGT_SERVICE_PREPARED_GRAPH_H_
#define GCGT_SERVICE_PREPARED_GRAPH_H_

#include <memory>

#include "api/gcgt_session.h"
#include "graph/graph.h"
#include "ooc/cgr_container.h"
#include "util/status.h"

namespace gcgt {

class PreparedGraph {
 public:
  /// Runs the prepare pipeline once (one CgrGraph::Encode) and freezes the
  /// artifact. Shared ownership: the registry and every worker that cloned a
  /// session from the entry keep it alive. `fingerprint` is the caller's
  /// already-computed ComputeArtifactFingerprint(graph, options) — the
  /// registry hashes before encoding to dedup, so Build never re-hashes.
  static Result<std::shared_ptr<const PreparedGraph>> Build(
      const Graph& graph, const PrepareOptions& options, uint64_t fingerprint);

  /// Freezes an artifact materialized from an out-of-core container instead
  /// of running the prepare pipeline: the container's encoded bits become
  /// the master session's CgrGraph with zero re-encodes. The artifact takes
  /// ownership of the container: for mmap'd opens the graph is a zero-copy
  /// view into the mapping (CgrGraph::AssembleView), so the payload is never
  /// duplicated in RAM; buffered opens fall back to a copy.
  /// `fingerprint` is the registry key the caller derived from the container
  /// header + serving options (CombineOptionsFingerprint); it is trusted
  /// verbatim so PreparedGraph::fingerprint() matches the registration key.
  static Result<std::shared_ptr<const PreparedGraph>> BuildFromContainer(
      ooc::CgrContainer container, const GcgtOptions& options,
      uint64_t fingerprint);

  /// Identity: ComputeArtifactFingerprint(input graph, options).
  uint64_t fingerprint() const { return master_.artifact_fingerprint(); }

  /// New single-caller session over the shared artifact. Constructs one
  /// engine and nothing else (the encode, permutation and decoded
  /// uncompressed view are shared). `num_threads_override >= 0` pins the
  /// clone engine's host thread count (a serving tier typically runs serial
  /// engines and scales across workers).
  GcgtSession NewWorkerSession(int num_threads_override = -1) const {
    return master_.AttachClone(num_threads_override);
  }

  const CgrGraph& cgr() const { return master_.cgr(); }
  NodeId num_query_nodes() const { return master_.num_query_nodes(); }
  const PrepareOptions& options() const { return master_.options(); }
  double vnc_reduction() const { return master_.vnc_reduction(); }

 private:
  explicit PreparedGraph(GcgtSession master) : master_(std::move(master)) {}

  // Backing storage for container-built artifacts whose CgrGraph is a view
  // into the mmap'd payload. Declared before master_ so the mapping is
  // destroyed after every borrower of its bytes.
  std::unique_ptr<const ooc::CgrContainer> container_;
  GcgtSession master_;
};

}  // namespace gcgt

#endif  // GCGT_SERVICE_PREPARED_GRAPH_H_
