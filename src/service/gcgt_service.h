// GcgtService: concurrent query serving over shared prepared graphs.
//
// The session layer (GcgtSession) is prepare-once/query-many but strictly
// single-caller. This tier multiplexes many concurrent clients over the
// prepared artifacts:
//
//   clients --Submit--> [admission queue] ----> worker pool --> results
//                            |    ^                 |   ^
//            fair admission  |    | hedges    per-worker |
//            (token buckets) |    |           sessions   |
//            EDF + shedding  |  [watchdog]        |      |
//                            |    |               |      |
//             registry of PreparedGraphs <--------+   result cache
//             (one encode per fingerprint)          (sharded LRU)
//
//  - Registry: RegisterGraph runs VNC -> reorder -> CGR encode exactly once
//    per artifact fingerprint; re-registering an identical (graph, options)
//    pair is a lookup, not an encode.
//  - Worker pool: each worker thread owns one GcgtSession clone per artifact
//    it has served (engines are per-session; the encode is shared by
//    reference), created lazily on first use and reused forever after —
//    zero engine constructions in steady state.
//  - Front end: a priority/deadline-aware AdmissionQueue (see
//    util/admission_queue.h). Submit returns a std::future and blocks while
//    the queue is full (backpressure); TrySubmit sheds instead (admission
//    control); SubmitBatch pipelines a whole batch.
//  - Result cache: BFS-from-source, CC and canonical-BC results are memoized
//    across clients, keyed by {artifact fingerprint, backend, query key};
//    hits are bit-identical to a fresh run (deterministic engines),
//    including metrics.
//  - Shutdown: Close the queue, drain every accepted job, join the workers
//    and the watchdog. Every accepted future is fulfilled; later submissions
//    fail fast with Unavailable. Idempotent and safe to call concurrently
//    with Submit and with other Shutdown calls.
//
// Overload control (the QoS layer; see README "Robustness"):
//  - Priority + EDF admission: ServiceQuery::priority picks a strict class
//    ({interactive, batch, best-effort}); within a class the queue serves
//    earliest deadline first. Entries whose deadline passes while queued are
//    lazily swept and failed DeadlineExceeded without touching a worker.
//  - Adaptive shedding: a CoDel-style controller on queue sojourn time
//    sheds lowest-priority-first (Unavailable) while queueing delay stays
//    over `qos.shed_target`; per-client token buckets
//    (`qos.fair_tokens_per_sec`, keyed by ServiceQuery::client_id) shed a
//    flooding tenant at admission before it can starve others.
//  - Hedged requests: once `qos.enable_hedging` is set and a query has been
//    in flight past the hedge delay (fixed, or adaptive from the EWMA of
//    observed completion latency), the watchdog re-dispatches it to a
//    second worker if the queue has spare capacity. First completion wins
//    and fulfills the promise (exactly once); the loser's attempt token is
//    cancelled and its result discarded. Winning results remain
//    bit-identical to the oracle — both attempts run the same deterministic
//    engine on the same artifact.
//  - Watchdog & health: a background thread (qos.watchdog_interval) detects
//    stuck workers — running one query `qos.stuck_grace` past its deadline,
//    i.e. the engine missed its cooperative cancel polls — and feeds them,
//    with per-attempt outcomes, into a per-artifact health score
//    (HealthScore) and the artifact's circuit breaker.
//  - Brownout: under memory pressure (result-cache resident bytes over
//    `qos.brownout_watermark_bytes`) the watchdog shrinks the result-cache
//    budget and caps worker replay-cache budgets by `qos.brownout_shrink`,
//    restoring them once pressure stays off for `qos.brownout_hold`.
//    Brownout never changes result labels; it changes modeled replay
//    metrics, so replay-capped results are never inserted into the result
//    cache (their identity differs from the artifact's canonical one).
//
// Robustness (the fault-tolerance layer of PR 6) is unchanged underneath:
// deadlines/cancellation honored while queued and mid-traversal, worker
// exception containment + capped-backoff retries, per-artifact circuit
// breaker, graceful OOM degradation onto a fallback backend, and seeded
// deterministic fault injection (now also covering hedge dispatch, shed
// decisions and watchdog ticks).
//
// Correctness under concurrency: with any worker count, the cache on,
// hedging and shedding active, results are bit-identical to serial uncached
// GcgtSession runs on the same prepared artifact — BFS depths, canonical CC
// labels, BC dependency doubles, and all modeled metrics (engines are
// deterministic per artifact; see tests/service_test.cc and
// tests/overload_test.cc). That invariant survives chaos: with fault
// injection enabled, every accepted future is still fulfilled and every
// SUCCESSFUL result is still bit-identical to the no-fault oracle (see
// tests/robustness_test.cc, tests/overload_test.cc).
#ifndef GCGT_SERVICE_GCGT_SERVICE_H_
#define GCGT_SERVICE_GCGT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/gcgt_session.h"
#include "service/circuit_breaker.h"
#include "service/prepared_graph.h"
#include "service/result_cache.h"
#include "util/admission_queue.h"
#include "util/cancel_token.h"
#include "util/status.h"
#include "util/token_bucket.h"

namespace gcgt {

/// Overload-control knobs. Defaults keep legacy behavior for everything but
/// the admission discipline: EDF ordering with lazy expiry sweeping is on
/// (it is a pure win — un-deadlined single-class workloads degenerate to
/// FIFO), while shedding, fair admission, hedging and brownout are opt-in.
struct QosOptions {
  /// EDF admission discipline (priority classes, deadline order, lazy
  /// expiry sweeping). false restores the legacy global FIFO — no
  /// reordering, no sweeping, no shedding — which is also the A/B baseline
  /// of the overload bench.
  bool edf = true;
  /// CoDel-style sojourn shedding (see AdmissionQueueOptions); 0 disables.
  std::chrono::nanoseconds shed_target{0};
  std::chrono::nanoseconds shed_interval{std::chrono::milliseconds(100)};
  /// Per-client token-bucket fair admission (0 disables): each client_id
  /// admits `fair_burst` queries instantly and `fair_tokens_per_sec`
  /// sustained; beyond that its submissions are shed Unavailable without
  /// touching other clients.
  double fair_tokens_per_sec = 0.0;
  double fair_burst = 8.0;
  /// Hedged requests (off by default: they trade duplicated work for tail
  /// latency, a policy the operator must opt into).
  bool enable_hedging = false;
  /// Fixed hedge delay; 0 = adaptive: hedge_latency_factor x the EWMA of
  /// observed completion latency, floored at hedge_min_delay.
  std::chrono::nanoseconds hedge_delay{0};
  std::chrono::nanoseconds hedge_min_delay{std::chrono::milliseconds(1)};
  double hedge_latency_factor = 2.0;
  /// Watchdog cadence; 0 disables the thread (and with it stuck detection,
  /// hedging and brownout).
  std::chrono::nanoseconds watchdog_interval{std::chrono::milliseconds(5)};
  /// A worker running one query this long past the query's deadline is
  /// "stuck" (its engine missed the cooperative cancel polls): counted,
  /// health-scored, and reported to the artifact's circuit breaker.
  std::chrono::nanoseconds stuck_grace{std::chrono::milliseconds(50)};
  /// Brownout watermark on result-cache resident bytes (0 disables).
  size_t brownout_watermark_bytes = 0;
  /// Budget multiplier applied to the result cache and to worker replay
  /// caches while browned out.
  double brownout_shrink = 0.25;
  /// Minimum brownout dwell before budgets are restored (pressure must
  /// also have fallen to half the watermark).
  std::chrono::nanoseconds brownout_hold{std::chrono::milliseconds(100)};
};

struct ServiceOptions {
  /// Worker threads draining the queue. Each worker owns its own sessions
  /// (engines), so this is the serving parallelism.
  int num_workers = 4;
  /// Bounded submission queue: Submit blocks (backpressure) and TrySubmit
  /// sheds (admission control) once this many queries are in flight.
  size_t queue_capacity = 256;
  /// Result-cache byte budget across all shards; 0 disables caching.
  size_t cache_bytes = size_t{64} << 20;
  size_t cache_shards = 8;
  /// Host threads per worker ENGINE (-1 inherits the artifact's
  /// PrepareOptions). Default 1: the service parallelizes across workers,
  /// and serial engines neither contend on the shared host pool nor
  /// oversubscribe cores. Results are identical either way.
  int worker_engine_threads = 1;

  // --- Robustness knobs -----------------------------------------------
  /// Total attempts per query (first run + retries) for TRANSIENT failures
  /// (Status::kInternal: worker exceptions, injected faults). Client errors
  /// (InvalidArgument, NotFound), resource verdicts (OutOfMemory) and
  /// caller aborts (Cancelled, DeadlineExceeded) are never retried.
  int max_attempts = 3;
  /// Exponential backoff between retries: base * 2^(attempt-1), capped.
  std::chrono::milliseconds retry_backoff_base{1};
  std::chrono::milliseconds retry_backoff_cap{50};
  /// Service-side deadline measured from admission (0 = none): each query's
  /// token is tightened to expire no later than now + default_timeout
  /// (client deadlines that are already earlier win).
  std::chrono::nanoseconds default_timeout{0};
  /// When the REQUESTED backend fails with OutOfMemory, transparently
  /// re-run on `fallback_backend` and mark the result degraded() instead of
  /// failing the query. Degraded results are never cached (their identity
  /// belongs to the fallback backend, not the requested one).
  bool enable_oom_fallback = false;
  Backend fallback_backend = Backend::kCpuReference;
  /// Per-artifact circuit breaker (failure_threshold <= 0 disables).
  CircuitBreakerOptions breaker;

  // --- Overload-control knobs -----------------------------------------
  QosOptions qos;
};

/// One query addressed to a registered artifact.
struct ServiceQuery {
  uint64_t graph = 0;  ///< fingerprint returned by RegisterGraph
  Query query;
  Backend backend = Backend::kCgrSimt;
  /// Cooperative cancellation / absolute deadline for this query; honored
  /// while queued and per traversal round once running. Default: never
  /// expires (ServiceOptions::default_timeout still applies).
  CancelToken cancel{};
  /// Admission class: strict priority ordering in the queue, and the shed
  /// order under overload (best-effort first). Default interactive, which
  /// preserves single-class (legacy) behavior.
  QueryPriority priority = QueryPriority::kInteractive;
  /// Fair-admission identity for per-client token buckets (0 is a perfectly
  /// valid shared "anonymous" client).
  uint64_t client_id = 0;
};

/// Stats counting rules (audited by tests/overload_test.cc): `completed`
/// counts every fulfilled future exactly once, and each of the verdict
/// counters below (cancelled, deadline_exceeded, expired_in_queue,
/// shed_overload, hedge_wins, degraded) is attributed exactly once, to the
/// attempt/cause that actually fulfilled the promise — a query swept from
/// the queue but rescued by a winning hedge counts as a success, not an
/// expiry. `hedged` counts dispatched hedge attempts (a hedged query that
/// loses its race adds to `hedged` but nothing else).
struct ServiceStats {
  uint64_t submitted = 0;   ///< accepted into the queue
  uint64_t rejected = 0;    ///< shed by TrySubmit admission control
  uint64_t completed = 0;   ///< futures fulfilled (results and errors)
  uint64_t worker_sessions = 0;  ///< sessions (engines) built, ever
  ResultCacheStats cache;   ///< cache.hits == queries answered from cache
  // Robustness counters:
  uint64_t retries = 0;           ///< re-attempts after transient failures
  uint64_t worker_faults = 0;     ///< exceptions contained to Internal
  uint64_t degraded = 0;          ///< OOM queries served by the fallback
  uint64_t cancelled = 0;         ///< queries ending Cancelled
  uint64_t deadline_exceeded = 0; ///< queries ending DeadlineExceeded
  uint64_t breaker_rejected = 0;  ///< failed fast on an open breaker
  uint64_t breaker_opened = 0;    ///< breaker trips across all artifacts
  // Overload-control counters:
  uint64_t expired_in_queue = 0;  ///< queue-swept: deadline passed unserved
                                  ///< (also counted in deadline_exceeded)
  uint64_t shed_overload = 0;     ///< shed by the sojourn controller (incl.
                                  ///< injected shed decisions)
  uint64_t shed_rate_limited = 0; ///< shed by per-client token buckets
  uint64_t hedged = 0;            ///< hedge attempts dispatched
  uint64_t hedge_wins = 0;        ///< queries answered by their hedge
  uint64_t watchdog_stuck = 0;    ///< stuck-worker detections
  uint64_t brownout_events = 0;   ///< times brownout mode engaged
  bool brownout_active = false;   ///< browned out right now
  // Out-of-core pager counters, summed over every successful result served
  // (cache hits replay the memoized metrics, so they count identically):
  uint64_t partition_faults = 0;  ///< partitions faulted in from the
                                  ///< external tier
  uint64_t partition_spills = 0;  ///< partitions spilled to fit the budget
  uint64_t resident_bytes_peak = 0;  ///< max resident set across all queries
};

class GcgtService {
 public:
  explicit GcgtService(const ServiceOptions& options = {});
  /// Drains and joins (Shutdown).
  ~GcgtService();

  GcgtService(const GcgtService&) = delete;
  GcgtService& operator=(const GcgtService&) = delete;

  /// Prepares `graph` into the registry and returns its artifact
  /// fingerprint — the id queries address. Encodes at most once per
  /// fingerprint: re-registering an identical (graph, options) pair returns
  /// the existing artifact. Safe to call concurrently with serving.
  Result<uint64_t> RegisterGraph(const Graph& graph,
                                 const PrepareOptions& options = {});

  /// Registers an out-of-core container file (ooc::WriteCgrContainer) as a
  /// servable artifact: the encoded bits are adopted verbatim — zero
  /// re-encodes, ever — and `options` configures the serving engines (set
  /// options.ooc_resident_bytes to page the partitions under a budget). The
  /// returned id combines the container header's stored fingerprint with the
  /// serving options, so one container registered under two budgets yields
  /// two artifacts that never alias in the registry or the result cache.
  /// Note: a container stores the PREPARED graph — queries on a
  /// container-backed artifact address prepared node ids (the
  /// reorder/VNC translation of the original Prepare() session is not part
  /// of the container format).
  Result<uint64_t> RegisterContainer(
      const std::string& path, const GcgtOptions& options = {},
      ooc::CgrContainer::ReadMode mode = ooc::CgrContainer::ReadMode::kMmap);

  /// The registered artifact (nullptr when unknown). Entries live for the
  /// service's lifetime.
  std::shared_ptr<const PreparedGraph> FindGraph(uint64_t fingerprint) const;

  /// Enqueues one query and returns the future of its result. Blocks while
  /// the queue is full (backpressure). The future is always fulfilled:
  /// with the query result, a query error (OutOfMemory/InvalidArgument...),
  /// NotFound for an unregistered graph, Unavailable for shed/rate-limited
  /// admissions, or Unavailable once the service is shut down.
  ///
  /// Results are BY VALUE: a cache hit copies the memoized result vectors
  /// out (microseconds at bench scale, vs the milliseconds of traversal the
  /// hit avoids). If O(V) copies ever dominate at production node counts,
  /// the evolution path is a future carrying shared_ptr<const QueryResult>
  /// straight out of the cache.
  std::future<Result<QueryResult>> Submit(ServiceQuery query);

  /// Like Submit, but sheds instead of blocking: Unavailable when the queue
  /// is full, the client is over its fair-admission rate, or the service is
  /// shut down (the future, if returned, is still always fulfilled).
  Result<std::future<Result<QueryResult>>> TrySubmit(ServiceQuery query);

  /// Submits all queries (blocking admission, in order) and returns their
  /// futures. Queries fan out across the worker pool concurrently.
  std::vector<std::future<Result<QueryResult>>> SubmitBatch(
      std::vector<ServiceQuery> queries);

  /// Graceful shutdown: stops admissions, drains every accepted query,
  /// joins the workers and the watchdog. Idempotent; called by the
  /// destructor.
  void Shutdown();

  ServiceStats Stats() const;
  const ServiceOptions& options() const { return options_; }

  /// The artifact's circuit-breaker state (kClosed for artifacts that have
  /// never failed — the breaker is created lazily on first failure-path
  /// traffic). Exposed for tests and operational introspection.
  CircuitBreakerState BreakerState(uint64_t fingerprint) const;

  /// Artifact health in [0, 1]: 1.0 for an artifact with no observed
  /// service-side failures (or never served). Successful attempts raise it;
  /// Internal failures and (heaviest) watchdog stuck detections sink it.
  /// The same events feed the artifact's circuit breaker; the score is the
  /// operator-facing continuous view of what the breaker trips on.
  double HealthScore(uint64_t fingerprint) const;

 private:
  using Clock = CancelToken::Clock;

  /// Why an attempt failed without producing a run verdict; decides which
  /// overload counter the query is attributed to IF this cause ends up
  /// fulfilling the promise.
  enum class FailCause { kRun, kExpiredInQueue, kShedOverload };

  /// Shared per-query state: both attempts of a hedged pair point here.
  /// The promise is fulfilled exactly once (`fulfilled` exchange); error
  /// verdicts wait for the LAST live attempt (`live_attempts`), so a failed
  /// primary can never preempt a hedge that might still succeed.
  struct JobState {
    ServiceQuery query;  // BC sources canonicalized at admission
    std::promise<Result<QueryResult>> promise;
    Clock::time_point admitted_at{};
    std::atomic<bool> fulfilled{false};
    std::atomic<int> live_attempts{1};
    std::atomic<bool> hedged{false};
    std::atomic<bool> stuck_reported{false};
    /// Per-attempt loser-abort writer ends; Fulfill cancels both so the
    /// losing attempt stops at its next cooperative poll.
    CancelSource attempt_cancel[2];
    /// Pending error verdict, applied by the last live attempt.
    std::mutex verdict_mu;
    Status error = Status::Internal("query produced no verdict");
    FailCause error_cause = FailCause::kRun;
  };

  struct Job {
    std::shared_ptr<JobState> state;
    int attempt = 0;  ///< 0 = primary, 1 = hedge
  };

  /// A worker's per-artifact serving state: the session (engine) plus the
  /// registry entry keeping the shared encode alive.
  struct WorkerSession {
    std::shared_ptr<const PreparedGraph> artifact;
    GcgtSession session;
  };

  /// What worker i is running right now (watchdog stuck detection).
  struct WorkerSlot {
    std::mutex mu;
    std::shared_ptr<JobState> state;  // null = idle
  };

  struct ArtifactHealth {
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> stuck{0};
  };

  std::shared_ptr<JobState> MakeState(ServiceQuery query);
  bool FairAdmit(uint64_t client_id);
  void RegisterInflight(const std::shared_ptr<JobState>& state);

  void WorkerLoop(int worker_index);
  void Serve(int worker_index,
             std::unordered_map<uint64_t, WorkerSession>& sessions, Job job);
  /// One guarded attempt on the worker's session: fault injection, exception
  /// containment, OOM fallback. Sets `degraded` when the fallback answered.
  Result<QueryResult> Attempt(WorkerSession& ws, const ServiceQuery& query,
                              const CancelToken& run_token,
                              uint64_t replay_cap, bool& degraded);

  /// First-completion-wins: fulfills the promise (exactly once), cancels
  /// both attempt tokens, observes latency and counts the verdict. False
  /// when the sibling attempt already won. `on_win` runs after winning the
  /// race but BEFORE set_value: all per-query accounting goes through it, so
  /// a client that wakes on the future never reads Stats() mid-update.
  bool Fulfill(JobState& state, Result<QueryResult> result,
               const std::function<void()>& on_win = nullptr);
  /// Records a failed attempt's verdict and releases its liveness; the LAST
  /// live attempt's stored verdict fulfills the promise.
  void FailAttempt(Job& job, Status status, FailCause cause);
  /// Drops one live attempt; fulfills the stored error verdict if it was
  /// the last (no-op if the promise is already fulfilled).
  void ReleaseAttempt(JobState& state);

  void WatchdogLoop();
  void ScanStuck();
  void ScanHedges();
  void ScanBrownout();
  std::chrono::nanoseconds HedgeDelay() const;
  void ObserveLatency(Clock::duration latency);

  /// The artifact's breaker, created on first use (never null).
  std::shared_ptr<CircuitBreaker> BreakerFor(uint64_t fingerprint);
  std::shared_ptr<ArtifactHealth> HealthFor(uint64_t fingerprint);

  ServiceOptions options_;
  std::unique_ptr<ResultCache> cache_;  // null when cache_bytes == 0

  mutable std::mutex registry_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const PreparedGraph>> registry_;

  mutable std::mutex breakers_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<CircuitBreaker>> breakers_;

  mutable std::mutex health_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<ArtifactHealth>> health_;

  std::mutex buckets_mu_;
  std::unordered_map<uint64_t, TokenBucket> buckets_;

  /// Weak registry of queries admitted while hedging is enabled; the
  /// watchdog scans it for hedge candidates and prunes completed entries.
  std::mutex inflight_mu_;
  std::list<std::weak_ptr<JobState>> inflight_;

  AdmissionQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  // one per worker
  std::once_flag shutdown_once_;

  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  // Brownout state (written by the watchdog; workers read the flag).
  std::atomic<bool> brownout_active_{false};
  Clock::time_point brownout_since_{};  // watchdog-thread-only

  /// EWMA of observed completion latency (ns); feeds the adaptive hedge
  /// delay. Load/modify/store is deliberately non-atomic-RMW: a lost update
  /// only smears the average.
  std::atomic<uint64_t> latency_ewma_ns_{0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> worker_sessions_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> worker_faults_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> breaker_rejected_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> shed_overload_{0};
  std::atomic<uint64_t> shed_rate_limited_{0};
  std::atomic<uint64_t> hedged_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> watchdog_stuck_{0};
  std::atomic<uint64_t> brownout_events_{0};
  std::atomic<uint64_t> partition_faults_{0};
  std::atomic<uint64_t> partition_spills_{0};
  std::atomic<uint64_t> resident_bytes_peak_{0};
};

}  // namespace gcgt

#endif  // GCGT_SERVICE_GCGT_SERVICE_H_
