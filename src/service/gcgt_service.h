// GcgtService: concurrent query serving over shared prepared graphs.
//
// The session layer (GcgtSession) is prepare-once/query-many but strictly
// single-caller. This tier multiplexes many concurrent clients over the
// prepared artifacts:
//
//   clients --Submit--> [bounded MPMC queue] --> worker pool --> results
//                            |                      |   ^
//                       admission control     per-worker |
//                       (block or shed)       sessions   |
//                                                 |      |
//             registry of PreparedGraphs <--------+   result cache
//             (one encode per fingerprint)          (sharded LRU)
//
//  - Registry: RegisterGraph runs VNC -> reorder -> CGR encode exactly once
//    per artifact fingerprint; re-registering an identical (graph, options)
//    pair is a lookup, not an encode.
//  - Worker pool: each worker thread owns one GcgtSession clone per artifact
//    it has served (engines are per-session; the encode is shared by
//    reference), created lazily on first use and reused forever after —
//    zero engine constructions in steady state.
//  - Front end: Submit returns a std::future and blocks while the bounded
//    queue is full (backpressure); TrySubmit sheds instead (admission
//    control); SubmitBatch pipelines a whole batch.
//  - Result cache: BFS-from-source and CC results are memoized across
//    clients, keyed by {artifact fingerprint, backend, query key}; hits are
//    bit-identical to a fresh run (deterministic engines), including
//    metrics.
//  - Shutdown: Close the queue, drain every accepted job, join the workers.
//    Every accepted future is fulfilled; later submissions fail fast with
//    Unavailable. Idempotent and safe to call concurrently with Submit and
//    with other Shutdown calls.
//
// Robustness (the fault-tolerance layer; see README "Robustness"):
//  - Deadlines & cancellation: a ServiceQuery carries a CancelToken
//    (client-cancellable, optionally deadlined; default_timeout applies one
//    service-side). Expiry is honored while QUEUED (the worker fails the
//    query without running it) and MID-TRAVERSAL (the token is threaded
//    through GcgtSession::Run into TraversalPipeline's round loop).
//  - Fault containment & retry: a worker exception becomes Status::Internal
//    on that query's future — the pool never dies. Transient failures
//    (Internal: injected faults, worker exceptions) are retried up to
//    max_attempts with capped exponential backoff.
//  - Circuit breaker: per-artifact; repeated service-side failures open it
//    and further queries fail fast with Unavailable until a cooldown probe
//    succeeds (see service/circuit_breaker.h).
//  - Graceful degradation: when the requested backend reports OutOfMemory
//    and a fallback backend is configured, the query transparently re-runs
//    there and the result is marked degraded() — a fig8-style backend OOM
//    becomes a degraded success instead of an error.
//  - Fault injection: every failure mode above is injectable via the seeded
//    deterministic FaultInjector (util/fault_injector.h); the constructor
//    also arms it from GCGT_FAULT_SEED/GCGT_FAULT_RATE for chaos CI.
//
// Correctness under concurrency: with any worker count and the cache on,
// results are bit-identical to serial uncached GcgtSession runs on the same
// prepared artifact — BFS depths, canonical CC labels, BC dependency
// doubles, and all modeled metrics (engines are deterministic per artifact;
// see tests/service_test.cc). That invariant survives chaos: with fault
// injection enabled, every accepted future is still fulfilled and every
// SUCCESSFUL result is still bit-identical to the no-fault oracle (see
// tests/robustness_test.cc).
#ifndef GCGT_SERVICE_GCGT_SERVICE_H_
#define GCGT_SERVICE_GCGT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/gcgt_session.h"
#include "service/circuit_breaker.h"
#include "service/prepared_graph.h"
#include "service/result_cache.h"
#include "util/bounded_queue.h"
#include "util/cancel_token.h"
#include "util/status.h"

namespace gcgt {

struct ServiceOptions {
  /// Worker threads draining the queue. Each worker owns its own sessions
  /// (engines), so this is the serving parallelism.
  int num_workers = 4;
  /// Bounded submission queue: Submit blocks (backpressure) and TrySubmit
  /// sheds (admission control) once this many queries are in flight.
  size_t queue_capacity = 256;
  /// Result-cache byte budget across all shards; 0 disables caching.
  size_t cache_bytes = size_t{64} << 20;
  size_t cache_shards = 8;
  /// Host threads per worker ENGINE (-1 inherits the artifact's
  /// PrepareOptions). Default 1: the service parallelizes across workers,
  /// and serial engines neither contend on the shared host pool nor
  /// oversubscribe cores. Results are identical either way.
  int worker_engine_threads = 1;

  // --- Robustness knobs -----------------------------------------------
  /// Total attempts per query (first run + retries) for TRANSIENT failures
  /// (Status::kInternal: worker exceptions, injected faults). Client errors
  /// (InvalidArgument, NotFound), resource verdicts (OutOfMemory) and
  /// caller aborts (Cancelled, DeadlineExceeded) are never retried.
  int max_attempts = 3;
  /// Exponential backoff between retries: base * 2^(attempt-1), capped.
  std::chrono::milliseconds retry_backoff_base{1};
  std::chrono::milliseconds retry_backoff_cap{50};
  /// Service-side deadline measured from admission (0 = none): each query's
  /// token is tightened to expire no later than now + default_timeout
  /// (client deadlines that are already earlier win).
  std::chrono::nanoseconds default_timeout{0};
  /// When the REQUESTED backend fails with OutOfMemory, transparently
  /// re-run on `fallback_backend` and mark the result degraded() instead of
  /// failing the query. Degraded results are never cached (their identity
  /// belongs to the fallback backend, not the requested one).
  bool enable_oom_fallback = false;
  Backend fallback_backend = Backend::kCpuReference;
  /// Per-artifact circuit breaker (failure_threshold <= 0 disables).
  CircuitBreakerOptions breaker;
};

/// One query addressed to a registered artifact.
struct ServiceQuery {
  uint64_t graph = 0;  ///< fingerprint returned by RegisterGraph
  Query query;
  Backend backend = Backend::kCgrSimt;
  /// Cooperative cancellation / absolute deadline for this query; honored
  /// while queued and per traversal round once running. Default: never
  /// expires (ServiceOptions::default_timeout still applies).
  CancelToken cancel{};
};

struct ServiceStats {
  uint64_t submitted = 0;   ///< accepted into the queue
  uint64_t rejected = 0;    ///< shed by TrySubmit admission control
  uint64_t completed = 0;   ///< futures fulfilled (results and errors)
  uint64_t worker_sessions = 0;  ///< sessions (engines) built, ever
  ResultCacheStats cache;   ///< cache.hits == queries answered from cache
  // Robustness counters:
  uint64_t retries = 0;           ///< re-attempts after transient failures
  uint64_t worker_faults = 0;     ///< exceptions contained to Internal
  uint64_t degraded = 0;          ///< OOM queries served by the fallback
  uint64_t cancelled = 0;         ///< queries ending Cancelled
  uint64_t deadline_exceeded = 0; ///< queries ending DeadlineExceeded
  uint64_t breaker_rejected = 0;  ///< failed fast on an open breaker
  uint64_t breaker_opened = 0;    ///< breaker trips across all artifacts
  // Out-of-core pager counters, summed over every successful result served
  // (cache hits replay the memoized metrics, so they count identically):
  uint64_t partition_faults = 0;  ///< partitions faulted in from the
                                  ///< external tier
  uint64_t partition_spills = 0;  ///< partitions spilled to fit the budget
  uint64_t resident_bytes_peak = 0;  ///< max resident set across all queries
};

class GcgtService {
 public:
  explicit GcgtService(const ServiceOptions& options = {});
  /// Drains and joins (Shutdown).
  ~GcgtService();

  GcgtService(const GcgtService&) = delete;
  GcgtService& operator=(const GcgtService&) = delete;

  /// Prepares `graph` into the registry and returns its artifact
  /// fingerprint — the id queries address. Encodes at most once per
  /// fingerprint: re-registering an identical (graph, options) pair returns
  /// the existing artifact. Safe to call concurrently with serving.
  Result<uint64_t> RegisterGraph(const Graph& graph,
                                 const PrepareOptions& options = {});

  /// Registers an out-of-core container file (ooc::WriteCgrContainer) as a
  /// servable artifact: the encoded bits are adopted verbatim — zero
  /// re-encodes, ever — and `options` configures the serving engines (set
  /// options.ooc_resident_bytes to page the partitions under a budget). The
  /// returned id combines the container header's stored fingerprint with the
  /// serving options, so one container registered under two budgets yields
  /// two artifacts that never alias in the registry or the result cache.
  /// Note: a container stores the PREPARED graph — queries on a
  /// container-backed artifact address prepared node ids (the
  /// reorder/VNC translation of the original Prepare() session is not part
  /// of the container format).
  Result<uint64_t> RegisterContainer(
      const std::string& path, const GcgtOptions& options = {},
      ooc::CgrContainer::ReadMode mode = ooc::CgrContainer::ReadMode::kMmap);

  /// The registered artifact (nullptr when unknown). Entries live for the
  /// service's lifetime.
  std::shared_ptr<const PreparedGraph> FindGraph(uint64_t fingerprint) const;

  /// Enqueues one query and returns the future of its result. Blocks while
  /// the queue is full (backpressure). The future is always fulfilled:
  /// with the query result, a query error (OutOfMemory/InvalidArgument...),
  /// NotFound for an unregistered graph, or Unavailable once the service is
  /// shut down.
  ///
  /// Results are BY VALUE: a cache hit copies the memoized result vectors
  /// out (microseconds at bench scale, vs the milliseconds of traversal the
  /// hit avoids). If O(V) copies ever dominate at production node counts,
  /// the evolution path is a future carrying shared_ptr<const QueryResult>
  /// straight out of the cache.
  std::future<Result<QueryResult>> Submit(ServiceQuery query);

  /// Like Submit, but sheds instead of blocking: Unavailable when the queue
  /// is full or the service is shut down (the future, if returned, is still
  /// always fulfilled).
  Result<std::future<Result<QueryResult>>> TrySubmit(ServiceQuery query);

  /// Submits all queries (blocking admission, in order) and returns their
  /// futures. Queries fan out across the worker pool concurrently.
  std::vector<std::future<Result<QueryResult>>> SubmitBatch(
      std::vector<ServiceQuery> queries);

  /// Graceful shutdown: stops admissions, drains every accepted query,
  /// joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  ServiceStats Stats() const;
  const ServiceOptions& options() const { return options_; }

  /// The artifact's circuit-breaker state (kClosed for artifacts that have
  /// never failed — the breaker is created lazily on first failure-path
  /// traffic). Exposed for tests and operational introspection.
  CircuitBreakerState BreakerState(uint64_t fingerprint) const;

 private:
  struct Job {
    ServiceQuery query;
    std::promise<Result<QueryResult>> promise;
  };
  /// A worker's per-artifact serving state: the session (engine) plus the
  /// registry entry keeping the shared encode alive.
  struct WorkerSession {
    std::shared_ptr<const PreparedGraph> artifact;
    GcgtSession session;
  };

  void WorkerLoop();
  void Serve(std::unordered_map<uint64_t, WorkerSession>& sessions, Job job);
  /// One guarded attempt on the worker's session: fault injection, exception
  /// containment, OOM fallback. Sets `degraded` when the fallback answered.
  Result<QueryResult> Attempt(WorkerSession& ws, const ServiceQuery& query,
                              bool& degraded);
  /// The artifact's breaker, created on first use (never null).
  std::shared_ptr<CircuitBreaker> BreakerFor(uint64_t fingerprint);

  ServiceOptions options_;
  std::unique_ptr<ResultCache> cache_;  // null when cache_bytes == 0

  mutable std::mutex registry_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const PreparedGraph>> registry_;

  mutable std::mutex breakers_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<CircuitBreaker>> breakers_;

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> worker_sessions_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> worker_faults_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> breaker_rejected_{0};
  std::atomic<uint64_t> partition_faults_{0};
  std::atomic<uint64_t> partition_spills_{0};
  std::atomic<uint64_t> resident_bytes_peak_{0};
};

}  // namespace gcgt

#endif  // GCGT_SERVICE_GCGT_SERVICE_H_
