#include "service/result_cache.h"

#include <algorithm>
#include <bit>

namespace gcgt {

std::vector<NodeId> CanonicalBcSources(std::vector<NodeId> sources) {
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

void CanonicalizePairQuery(Query& query) {
  if (auto* cn = std::get_if<CommonNeighborQuery>(&query)) {
    if (cn->v < cn->u) std::swap(cn->u, cn->v);
    return;
  }
  if (auto* jc = std::get_if<JaccardQuery>(&query)) {
    if (jc->v < jc->u) std::swap(jc->u, jc->v);
  }
}

ResultCache::ResultCache(size_t max_bytes, size_t num_shards) {
  const size_t n = std::bit_ceil(num_shards < 1 ? size_t{1} : num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  bytes_per_shard_ = max_bytes / n;
}

bool ResultCache::Cacheable(const Query& query) {
  (void)query;
  return true;  // BC included: keyed by its canonical source set
}

std::optional<ResultCacheKey> ResultCache::KeyFor(uint64_t fingerprint,
                                                  Backend backend,
                                                  const Query& query) {
  ResultCacheKey key;
  key.fingerprint = fingerprint;
  key.backend = backend;
  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    key.kind = QueryKind::kBfs;
    key.source = bfs->source;
    return key;
  }
  if (std::holds_alternative<CcQuery>(query)) {
    key.kind = QueryKind::kCc;
    key.source = 0;
    return key;
  }
  if (const auto* bc = std::get_if<BcQuery>(&query)) {
    key.kind = QueryKind::kBc;
    key.source = 0;
    key.bc_sources = CanonicalBcSources(bc->sources);
    return key;
  }
  if (std::holds_alternative<TriangleCountQuery>(query)) {
    key.kind = QueryKind::kTriangle;
    return key;
  }
  if (const auto* cn = std::get_if<CommonNeighborQuery>(&query)) {
    key.kind = QueryKind::kCommonNeighbor;
    key.source = std::min(cn->u, cn->v);
    key.source2 = std::max(cn->u, cn->v);
    return key;
  }
  if (const auto* jc = std::get_if<JaccardQuery>(&query)) {
    key.kind = QueryKind::kJaccard;
    key.source = std::min(jc->u, jc->v);
    key.source2 = std::max(jc->u, jc->v);
    return key;
  }
  if (const auto* topk = std::get_if<SimilarityTopKQuery>(&query)) {
    key.kind = QueryKind::kSimilarityTopK;
    key.source = topk->source;
    key.param = topk->k;
    return key;
  }
  const auto& kc = std::get<KCoreQuery>(query);
  key.kind = QueryKind::kKCore;
  key.param = kc.k;
  return key;
}

size_t ResultCache::ResultBytes(const QueryResult& result) {
  size_t bytes = sizeof(QueryResult);
  switch (result.kind()) {
    case QueryKind::kBfs:
      bytes += result.bfs().depth.capacity() * sizeof(uint32_t);
      break;
    case QueryKind::kCc:
      bytes += result.cc().component.capacity() * sizeof(NodeId);
      break;
    case QueryKind::kBc:
      bytes += result.bc().dependency.capacity() * sizeof(double) +
               result.bc().depth.capacity() * sizeof(uint32_t) +
               result.bc().sigma.capacity() * sizeof(double);
      break;
    case QueryKind::kTriangle:
      bytes += result.triangle().per_vertex.capacity() * sizeof(uint64_t);
      break;
    case QueryKind::kCommonNeighbor:
      bytes += result.common_neighbors().common.capacity() * sizeof(NodeId);
      break;
    case QueryKind::kJaccard:
      break;  // scalar payload
    case QueryKind::kSimilarityTopK:
      bytes += result.similarity_topk().items.capacity() *
               sizeof(GcgtSimilarityTopKResult::Item);
      break;
    case QueryKind::kKCore:
      bytes += result.kcore().in_core.capacity();
      break;
  }
  return bytes;
}

std::shared_ptr<const QueryResult> ResultCache::Lookup(
    const ResultCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         std::shared_ptr<const QueryResult> result) {
  const size_t bytes = ResultBytes(*result);
  const size_t budget = bytes_per_shard_.load(std::memory_order_relaxed);
  if (bytes > budget) return;  // would evict the whole shard
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    // Two workers raced on the same miss; the values are bit-identical
    // (deterministic engines), so keep the resident one and its recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  TrimShardLocked(shard, budget >= bytes ? budget - bytes : 0);
  shard.lru.push_front(Entry{key, std::move(result), bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::TrimShardLocked(Shard& shard, size_t budget) {
  while (shard.bytes > budget && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::SetBudget(size_t max_bytes) {
  const size_t per_shard = max_bytes / shards_.size();
  bytes_per_shard_.store(per_shard, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    TrimShardLocked(*shard, per_shard);
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->map.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

}  // namespace gcgt
