// Cross-query result cache of the serving tier: a sharded LRU keyed by
// {artifact fingerprint, backend, query key}.
//
// Every query kind memoizes whole results. BFS and CC keys are trivial
// (source / nothing); BC keys carry the CANONICAL source set — sorted
// ascending, duplicates removed — and the service rewrites every BC query to
// that form before running it (see GcgtService::Serve), so the executed
// query and the cache key always agree and equivalent submissions ({3,1},
// {1,3,3}) share one entry. The pair-shaped intersection queries
// (CommonNeighbor/Jaccard) are symmetric in their endpoints, so the service
// rewrites them to canonical {min(u,v), max(u,v)} order the same way and
// {u,v} / {v,u} share one entry; triangle counts and k-core memoize per
// artifact (keyed only by kind, plus k for k-core). Results are pure functions of the prepared
// artifact (which the fingerprint pins, engine options included) and the
// canonical query, so a hit is bit-identical to a fresh run — result vectors
// AND metrics, which the engines produce deterministically.
//
// Sharding: each shard is an independent mutex + LRU list + hash map, and a
// key's shard is a pure function of its hash, so concurrent workers only
// contend when they touch the same shard. Capacity is a byte budget
// (result vectors dominate) split evenly across shards; eviction is LRU per
// shard. Values are shared by const pointer — an evicted entry stays alive
// for readers already holding it.
#ifndef GCGT_SERVICE_RESULT_CACHE_H_
#define GCGT_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/gcgt_session.h"
#include "util/random.h"

namespace gcgt {

/// Exact identity of a cacheable query result. Compared field-for-field on
/// lookup — hash collisions can never serve a wrong result.
struct ResultCacheKey {
  uint64_t fingerprint = 0;            ///< artifact (graph + options) id
  Backend backend = Backend::kCgrSimt;
  QueryKind kind = QueryKind::kBfs;
  NodeId source = 0;    ///< BFS source / pair min / similarity source
  NodeId source2 = 0;   ///< pair queries: the canonical max endpoint
  uint32_t param = 0;   ///< similarity k / k-core k
  /// BC only: the canonical source set (sorted, deduped). Empty otherwise.
  std::vector<NodeId> bc_sources;

  bool operator==(const ResultCacheKey&) const = default;

  uint64_t Hash() const {
    uint64_t h = Mix64(fingerprint ^ (static_cast<uint64_t>(backend) << 32));
    h = Mix64(h ^ (static_cast<uint64_t>(kind) << 40) ^ source);
    h = Mix64(h ^ (uint64_t{source2} << 32) ^ param);
    for (NodeId s : bc_sources) h = Mix64(h ^ s);
    return h;
  }
};

/// Canonical form of a BC source set: sorted ascending, duplicates removed.
/// The service rewrites every BC query to this form before serving it, so
/// the executed query matches the cache key exactly (bit-identical hits).
std::vector<NodeId> CanonicalBcSources(std::vector<NodeId> sources);

/// Rewrites a symmetric pair query (CommonNeighbor/Jaccard) to canonical
/// {min(u, v), max(u, v)} endpoint order in place; other kinds are left
/// untouched. The service applies this at admission, like BC sources.
void CanonicalizePairQuery(Query& query);

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;        ///< lookups that found nothing (incl. expired)
  uint64_t insertions = 0;
  uint64_t evictions = 0;     ///< entries dropped to fit the byte budget
  size_t entries = 0;         ///< resident entries right now
  size_t bytes = 0;           ///< resident approximate bytes right now
};

class ResultCache {
 public:
  /// `max_bytes` is the total budget across all shards; `num_shards` is
  /// rounded up to a power of two (>= 1).
  ResultCache(size_t max_bytes, size_t num_shards);

  /// The cacheability rule: every query kind memoizes whole results (BC
  /// under its canonical source set).
  static bool Cacheable(const Query& query);

  /// The cache key for a cacheable (artifact, backend, query), nullopt
  /// otherwise. Call with the CALLER-id-space query (as submitted): the key
  /// must match what a client would resubmit, not internal prepared ids.
  static std::optional<ResultCacheKey> KeyFor(uint64_t fingerprint,
                                              Backend backend,
                                              const Query& query);

  /// nullptr on miss. A hit refreshes LRU recency.
  std::shared_ptr<const QueryResult> Lookup(const ResultCacheKey& key);

  /// Inserts (or refreshes) a result; evicts LRU entries of the shard until
  /// its byte share fits. Results larger than a whole shard are not cached.
  void Insert(const ResultCacheKey& key,
              std::shared_ptr<const QueryResult> result);

  /// Approximate heap bytes of one cached result (the eviction weight).
  static size_t ResultBytes(const QueryResult& result);

  /// Brownout hook (see GcgtService watchdog): re-budgets the cache to
  /// `max_bytes` total (split evenly across shards) and immediately trims
  /// each shard's LRU tail to fit. Thread-safe; restoring a larger budget
  /// later just lets shards grow back.
  void SetBudget(size_t max_bytes);
  /// Current total byte budget across all shards.
  size_t budget() const {
    return bytes_per_shard_.load(std::memory_order_relaxed) * shards_.size();
  }

  ResultCacheStats Stats() const;
  void Clear();

 private:
  struct Entry {
    ResultCacheKey key;
    std::shared_ptr<const QueryResult> result;
    size_t bytes = 0;
  };
  struct KeyHash {
    size_t operator()(const ResultCacheKey& k) const { return k.Hash(); }
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<ResultCacheKey, std::list<Entry>::iterator, KeyHash> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const ResultCacheKey& key) {
    return *shards_[key.Hash() & (shards_.size() - 1)];
  }

  /// Evicts the shard's LRU tail until its bytes fit `budget`.
  void TrimShardLocked(Shard& shard, size_t budget);

  /// Per-shard byte budget; atomic because SetBudget (watchdog thread)
  /// races benignly with Insert's budget reads on worker threads.
  std::atomic<size_t> bytes_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace gcgt

#endif  // GCGT_SERVICE_RESULT_CACHE_H_
