#include "service/gcgt_service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/fault_injector.h"

namespace gcgt {

namespace {

AdmissionQueueOptions QueueOptionsFrom(const ServiceOptions& options) {
  AdmissionQueueOptions q;
  q.capacity = options.queue_capacity;
  q.edf = options.qos.edf;
  q.shed_target = options.qos.shed_target;
  q.shed_interval = options.qos.shed_interval;
  return q;
}

}  // namespace

GcgtService::GcgtService(const ServiceOptions& options)
    : options_(options), queue_(QueueOptionsFrom(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                           options_.cache_shards);
  }
  // Arm chaos externally (GCGT_FAULT_SEED / GCGT_FAULT_RATE); no-op unless
  // both are set, and once-only so repeated service constructions never
  // reset the deterministic ordinal sequence mid-run.
  FaultInjector::InitFromEnv();
  slots_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (options_.qos.watchdog_interval.count() > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

GcgtService::~GcgtService() { Shutdown(); }

void GcgtService::Shutdown() {
  // call_once makes Shutdown idempotent AND safe to race: concurrent callers
  // (including the destructor) block until the winner finishes draining, so
  // no caller returns while workers are still running. Submissions racing
  // with shutdown either make it into the queue (drained, future fulfilled)
  // or see the closed queue and fail fast with Unavailable — AdmissionQueue
  // guarantees a false Push never consumes the item. The watchdog is joined
  // AFTER the drain: hedges it dispatches into the closed queue fail
  // harmlessly (TryPush kClosed releases the attempt).
  std::call_once(shutdown_once_, [&] {
    queue_.Close();  // workers drain the accepted jobs, then exit
    for (std::thread& worker : workers_) worker.join();
    if (watchdog_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(watchdog_mu_);
        watchdog_stop_ = true;
      }
      watchdog_cv_.notify_all();
      watchdog_.join();
    }
  });
}

Result<uint64_t> GcgtService::RegisterGraph(const Graph& graph,
                                            const PrepareOptions& options) {
  const uint64_t fingerprint = ComputeArtifactFingerprint(graph, options);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (auto it = registry_.find(fingerprint); it != registry_.end()) {
      // Dedup trusts the 64-bit fingerprint (~2^-64 per accidental pair;
      // adversarial multi-tenant inputs are out of scope). This cheap shape
      // check turns the likeliest collision symptom — a DIFFERENT graph
      // mapping to a registered artifact — into an error instead of
      // silently serving the wrong graph's results.
      if (it->second->num_query_nodes() != graph.num_nodes()) {
        return Status::Internal(
            "artifact fingerprint collision: a different graph is already "
            "registered under this fingerprint");
      }
      return fingerprint;  // no re-encode
    }
  }
  // Encode OUTSIDE the registry lock so serving and other registrations
  // proceed meanwhile. Two concurrent first registrations of one artifact
  // can both encode; the loser's copy is dropped (correctness is unaffected
  // — the pipeline is deterministic — and registration is a startup-path
  // operation; the steady-state guarantee is "re-registering never
  // re-encodes").
  auto built = PreparedGraph::Build(graph, options, fingerprint);
  if (!built.ok()) return built.status();
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] =
      registry_.try_emplace(fingerprint, std::move(built.value()));
  if (!inserted && it->second->num_query_nodes() != graph.num_nodes()) {
    // A concurrent first registration won the slot with a DIFFERENT graph:
    // the same collision guard as the fast path above.
    return Status::Internal(
        "artifact fingerprint collision: a different graph is already "
        "registered under this fingerprint");
  }
  return fingerprint;
}

Result<uint64_t> GcgtService::RegisterContainer(
    const std::string& path, const GcgtOptions& options,
    ooc::CgrContainer::ReadMode mode) {
  Result<ooc::CgrContainer> container = ooc::CgrContainer::Open(path, mode);
  if (!container.ok()) return container.status();
  ooc::CgrContainer& c = container.value();
  const NodeId container_nodes = c.num_nodes();
  // Registry key = the header's stored artifact fingerprint folded with the
  // serving options. The stored fingerprint already identifies graph bytes,
  // encode options and partition plan; folding `options` keeps one container
  // registered under two budgets (or cost models) as two distinct artifacts,
  // mirroring how RegisterGraph keys on graph AND options.
  PrepareOptions fp_opt;
  fp_opt.cgr = c.options();
  fp_opt.ooc_partitions = static_cast<int>(c.partitions().size());
  fp_opt.gcgt = options;
  const uint64_t fingerprint =
      CombineOptionsFingerprint(c.fingerprint(), fp_opt);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (auto it = registry_.find(fingerprint); it != registry_.end()) {
      // Same collision shape guard as RegisterGraph.
      if (it->second->num_query_nodes() != container_nodes) {
        return Status::Internal(
            "artifact fingerprint collision: a different graph is already "
            "registered under this fingerprint");
      }
      return fingerprint;  // container already materialized
    }
  }
  // Materialize OUTSIDE the lock, same rationale as RegisterGraph. The
  // artifact takes ownership of the container (zero-copy mmap view).
  auto built = PreparedGraph::BuildFromContainer(std::move(c), options,
                                                 fingerprint);
  if (!built.ok()) return built.status();
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] =
      registry_.try_emplace(fingerprint, std::move(built.value()));
  if (!inserted && it->second->num_query_nodes() != container_nodes) {
    return Status::Internal(
        "artifact fingerprint collision: a different graph is already "
        "registered under this fingerprint");
  }
  return fingerprint;
}

std::shared_ptr<const PreparedGraph> GcgtService::FindGraph(
    uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(fingerprint);
  return it == registry_.end() ? nullptr : it->second;
}

std::shared_ptr<CircuitBreaker> GcgtService::BreakerFor(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(fingerprint);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(fingerprint,
                      std::make_shared<CircuitBreaker>(options_.breaker))
             .first;
  }
  return it->second;
}

CircuitBreakerState GcgtService::BreakerState(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(fingerprint);
  return it == breakers_.end() ? CircuitBreakerState::kClosed
                               : it->second->state();
}

std::shared_ptr<GcgtService::ArtifactHealth> GcgtService::HealthFor(
    uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(fingerprint);
  if (it == health_.end()) {
    it = health_.emplace(fingerprint, std::make_shared<ArtifactHealth>())
             .first;
  }
  return it->second;
}

double GcgtService::HealthScore(uint64_t fingerprint) const {
  std::shared_ptr<ArtifactHealth> health;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    auto it = health_.find(fingerprint);
    if (it == health_.end()) return 1.0;
    health = it->second;
  }
  const double ok =
      static_cast<double>(health->ok.load(std::memory_order_relaxed));
  const double failed =
      static_cast<double>(health->failed.load(std::memory_order_relaxed));
  const double stuck =
      static_cast<double>(health->stuck.load(std::memory_order_relaxed));
  // Failures weigh 4x a success, stuck detections 8x: one stuck worker
  // (a whole engine wedged past its deadline) is a far stronger signal than
  // one contained exception.
  const double total = ok + 4.0 * failed + 8.0 * stuck;
  return total <= 0.0 ? 1.0 : ok / total;
}

std::shared_ptr<GcgtService::JobState> GcgtService::MakeState(
    ServiceQuery query) {
  if (options_.default_timeout.count() > 0) {
    query.cancel = query.cancel.WithDeadlineMin(Clock::now() +
                                                options_.default_timeout);
  }
  // Canonicalize BC source sets (sort + dedup) at admission, before anything
  // reads the query: the executed query, the cache key and any hedge attempt
  // then always agree, so a cache hit is bit-identical to a fresh run of the
  // canonical query and equivalent submissions ({3,1}, {1,3,3}) share one
  // cached result.
  if (auto* bc = std::get_if<BcQuery>(&query.query)) {
    bc->sources = CanonicalBcSources(std::move(bc->sources));
  }
  // Same admission-time canonicalization for the symmetric pair queries:
  // {u,v} and {v,u} execute and cache as one {min,max} query.
  CanonicalizePairQuery(query.query);
  auto state = std::make_shared<JobState>();
  state->query = std::move(query);
  state->admitted_at = Clock::now();
  return state;
}

bool GcgtService::FairAdmit(uint64_t client_id) {
  if (options_.qos.fair_tokens_per_sec <= 0.0) return true;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(buckets_mu_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    it = buckets_
             .try_emplace(client_id, options_.qos.fair_tokens_per_sec,
                          options_.qos.fair_burst, now)
             .first;
  }
  return it->second.TryAcquire(now);
}

void GcgtService::RegisterInflight(const std::shared_ptr<JobState>& state) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.push_back(state);
}

std::future<Result<QueryResult>> GcgtService::Submit(ServiceQuery query) {
  std::shared_ptr<JobState> state = MakeState(std::move(query));
  std::future<Result<QueryResult>> future = state->promise.get_future();
  // Count BEFORE the job becomes visible to workers, so Stats() never
  // transiently reports completed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!FairAdmit(state->query.client_id)) {
    // Fair-admission sheds behave like shutdown-time shedding: the future
    // is fulfilled immediately with Unavailable.
    shed_rate_limited_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    state->fulfilled.store(true, std::memory_order_release);
    state->promise.set_value(Status::Unavailable(
        "fair admission: client exceeded its token-bucket rate"));
    return future;
  }
  if (FaultInjector::Global().ShouldInject(FaultPoint::kQueueAdmit)) {
    // A simulated admission failure behaves like shutdown-time shedding.
    completed_.fetch_add(1, std::memory_order_relaxed);
    state->fulfilled.store(true, std::memory_order_release);
    state->promise.set_value(
        Status::Unavailable("injected fault: queue admission shed"));
    return future;
  }
  if (options_.qos.enable_hedging) RegisterInflight(state);
  Job job{state, 0};
  // deadline() is time_point::max() for un-deadlined tokens — exactly the
  // queue's "no deadline" sentinel.
  if (!queue_.Push(job, state->query.priority, state->query.cancel.deadline())) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    state->fulfilled.store(true, std::memory_order_release);
    state->promise.set_value(Status::Unavailable("service is shut down"));
    return future;
  }
  return future;
}

Result<std::future<Result<QueryResult>>> GcgtService::TrySubmit(
    ServiceQuery query) {
  std::shared_ptr<JobState> state = MakeState(std::move(query));
  std::future<Result<QueryResult>> future = state->promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);  // see Submit()
  if (!FairAdmit(state->query.client_id)) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    shed_rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "fair admission: client exceeded its token-bucket rate");
  }
  if (FaultInjector::Global().ShouldInject(FaultPoint::kQueueAdmit)) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected fault: queue admission shed");
  }
  if (options_.qos.enable_hedging) RegisterInflight(state);
  Job job{state, 0};
  switch (queue_.TryPush(job, state->query.priority,
                         state->query.cancel.deadline())) {
    case AdmissionQueue<Job>::PushResult::kOk:
      return future;
    case AdmissionQueue<Job>::PushResult::kFull:
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("admission control: queue is full");
    case AdmissionQueue<Job>::PushResult::kClosed:
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      return Status::Unavailable("service is shut down");
  }
  return Status::Internal("unreachable");
}

std::vector<std::future<Result<QueryResult>>> GcgtService::SubmitBatch(
    std::vector<ServiceQuery> queries) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (ServiceQuery& query : queries) futures.push_back(Submit(std::move(query)));
  return futures;
}

bool GcgtService::Fulfill(JobState& state, Result<QueryResult> result,
                          const std::function<void()>& on_win) {
  if (state.fulfilled.exchange(true, std::memory_order_acq_rel)) return false;
  // The race is decided: stop the losing attempt (queued or mid-run) at its
  // next cooperative poll. Cancelling the winner's own token is harmless —
  // its result is already in hand.
  state.attempt_cancel[0].Cancel();
  state.attempt_cancel[1].Cancel();
  ObserveLatency(Clock::now() - state.admitted_at);
  if (!result.ok()) {
    if (result.status().IsCancelled()) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // ALL per-query accounting lands before set_value wakes the client, so a
  // Stats() read after .get() always sees this query fully counted.
  if (on_win) on_win();
  // Exactly-once fulfillment: every verdict funnels through this one
  // set_value, so an accepted future can never be abandoned or set twice.
  completed_.fetch_add(1, std::memory_order_relaxed);
  state.promise.set_value(std::move(result));
  return true;
}

void GcgtService::FailAttempt(Job& job, Status status, FailCause cause) {
  {
    std::lock_guard<std::mutex> lock(job.state->verdict_mu);
    job.state->error = std::move(status);
    job.state->error_cause = cause;
  }
  ReleaseAttempt(*job.state);
}

void GcgtService::ReleaseAttempt(JobState& state) {
  if (state.live_attempts.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    // A sibling attempt is still live (or already decided the query); a
    // failed attempt must never preempt a hedge that might still succeed.
    return;
  }
  // Last live attempt: its stored verdict decides the query — unless a
  // sibling already fulfilled it (Fulfill no-ops then).
  Status status = Status::OK();
  FailCause cause = FailCause::kRun;
  {
    std::lock_guard<std::mutex> lock(state.verdict_mu);
    status = state.error;
    cause = state.error_cause;
  }
  // Cause attribution happens only on the fulfilling verdict, so each query
  // lands in at most one overload counter (a swept-then-hedge-rescued query
  // counts as a success, not an expiry).
  Fulfill(state, std::move(status), [&] {
    if (cause == FailCause::kExpiredInQueue) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    } else if (cause == FailCause::kShedOverload) {
      shed_overload_.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void GcgtService::WorkerLoop(int worker_index) {
  // Per-worker serving state: one session (engine) per artifact served so
  // far. Thread-confined — never shared, so Run() stays single-caller.
  std::unordered_map<uint64_t, WorkerSession> sessions;
  for (;;) {
    AdmissionQueue<Job>::PopOutcome out = queue_.Pop();
    // Queue-swept entries first: they are already doomed, and failing them
    // before serving the live item keeps their futures from waiting on an
    // unrelated traversal.
    for (Job& doomed : out.expired) {
      FailAttempt(doomed,
                  Status::DeadlineExceeded(
                      "query deadline expired while queued"),
                  FailCause::kExpiredInQueue);
    }
    for (Job& doomed : out.shed) {
      FailAttempt(doomed,
                  Status::Unavailable(
                      "overload shed: queue sojourn above target"),
                  FailCause::kShedOverload);
    }
    if (out.item) {
      Serve(worker_index, sessions, std::move(*out.item));
    } else if (!out.open) {
      break;
    }
  }
}

Result<QueryResult> GcgtService::Attempt(WorkerSession& ws,
                                         const ServiceQuery& query,
                                         const CancelToken& run_token,
                                         uint64_t replay_cap, bool& degraded) {
  degraded = false;
  // Exception containment: ANYTHING a serve attempt throws — including the
  // injected fault below, which deliberately exercises this path — becomes
  // Status::Internal on this query alone. The worker thread survives.
  try {
    if (FaultInjector::Global().ShouldInject(FaultPoint::kWorkerServe)) {
      throw std::runtime_error("injected fault: worker serve");
    }
    RunOptions run;
    run.backend = query.backend;
    run.cancel = run_token;
    run.replay_budget_cap = replay_cap;
    Result<QueryResult> result = ws.session.Run(query.query, run);
    if (!result.ok() && result.status().IsOutOfMemory() &&
        options_.enable_oom_fallback &&
        options_.fallback_backend != query.backend) {
      // Graceful degradation: the requested backend does not fit the device
      // budget (a fig8-style hard OOM row); answer on the fallback backend
      // and mark the result so clients can tell.
      RunOptions fallback = run;
      fallback.backend = options_.fallback_backend;
      Result<QueryResult> fb = ws.session.Run(query.query, fallback);
      if (fb.ok()) {
        fb.value().MarkDegraded();
        degraded = true;
        return fb;
      }
      return result;  // fallback failed too: report the original OOM
    }
    return result;
  } catch (const std::exception& e) {
    worker_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(std::string("worker exception: ") + e.what());
  } catch (...) {
    worker_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("worker exception: unknown type");
  }
}

void GcgtService::Serve(int worker_index,
                        std::unordered_map<uint64_t, WorkerSession>& sessions,
                        Job job) {
  JobState& state = *job.state;
  const uint64_t fingerprint = state.query.graph;
  const Backend backend = state.query.backend;

  if (state.fulfilled.load(std::memory_order_acquire)) {
    // The sibling attempt of a hedged pair already answered while this one
    // was queued: drop it without touching a session.
    ReleaseAttempt(state);
    return;
  }

  // Publish what this worker is running so the watchdog can spot a stuck
  // attempt (running past deadline + grace without honoring its polls).
  struct SlotGuard {
    WorkerSlot& slot;
    SlotGuard(WorkerSlot& s, std::shared_ptr<JobState> running) : slot(s) {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.state = std::move(running);
    }
    ~SlotGuard() {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.state = nullptr;
    }
  } slot_guard(*slots_[worker_index], job.state);

  // This attempt's run token: the client/deadline token plus this attempt's
  // loser-abort flag (Fulfill cancels it when the sibling wins, so the
  // losing traversal aborts at its next cooperative poll).
  const CancelToken run_token =
      state.query.cancel.WithLinkedSource(state.attempt_cancel[job.attempt]);

  bool degraded = false;
  bool replay_capped = false;
  FailCause cause = FailCause::kRun;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // Expiry/abort between pop and serve (queue sweeps catch most expiries
    // while QUEUED; this catches the rest) — fails without any worker time.
    if (Status s = run_token.Check(); !s.ok()) return s;

    // Injected spurious shed decision: behaves exactly like the sojourn
    // controller shedding this query (Unavailable, counted shed_overload).
    if (FaultInjector::Global().ShouldInject(FaultPoint::kShedDecision)) {
      cause = FailCause::kShedOverload;
      return Status::Unavailable("injected fault: spurious shed decision");
    }

    // Cache next: a hit answers without touching any session, the breaker
    // or the retry machinery (a memoized result proves nothing about the
    // artifact's current health and costs nothing to serve).
    std::optional<ResultCacheKey> key;
    if (cache_) {
      key = ResultCache::KeyFor(fingerprint, backend, state.query.query);
      if (key &&
          !FaultInjector::Global().ShouldInject(FaultPoint::kCacheLookup)) {
        if (std::shared_ptr<const QueryResult> hit = cache_->Lookup(*key)) {
          return QueryResult(*hit);
        }
      }
    }

    auto it = sessions.find(fingerprint);
    if (it == sessions.end()) {
      std::shared_ptr<const PreparedGraph> artifact = FindGraph(fingerprint);
      if (artifact == nullptr) {
        return Status::NotFound("graph is not registered with the service");
      }
      GcgtSession session =
          artifact->NewWorkerSession(options_.worker_engine_threads);
      worker_sessions_.fetch_add(1, std::memory_order_relaxed);
      it = sessions
               .emplace(fingerprint,
                        WorkerSession{std::move(artifact), std::move(session)})
               .first;
    }

    // Quarantine check: an artifact whose queries keep failing with
    // service-side errors fails fast until its cooldown probe succeeds.
    std::shared_ptr<CircuitBreaker> breaker = BreakerFor(fingerprint);
    if (!breaker->Allow()) {
      breaker_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("circuit breaker open for this artifact");
    }

    // Brownout: cap this run's replay-cache budget. Sampled once per serve
    // so the cap and the cache-insert skip below always agree.
    uint64_t replay_cap = UINT64_MAX;
    if (brownout_active_.load(std::memory_order_acquire)) {
      const uint64_t budget =
          it->second.artifact->options().gcgt.replay_cache_bytes;
      if (budget > 0) {
        replay_cap = static_cast<uint64_t>(static_cast<double>(budget) *
                                           options_.qos.brownout_shrink);
        replay_capped = true;
      }
    }

    // Attempt loop: only TRANSIENT failures (Internal) retry, with capped
    // exponential backoff. Client errors, OOM verdicts (the fallback already
    // ran inside Attempt) and caller aborts return immediately.
    Result<QueryResult> attempt = Status::Internal("no attempt ran");
    for (int n = 1; ; ++n) {
      attempt = Attempt(it->second, state.query, run_token, replay_cap,
                        degraded);
      if (attempt.ok() || !attempt.status().IsInternal() ||
          n >= options_.max_attempts) {
        break;
      }
      // Never burn backoff sleeps on a query that is already dead (or whose
      // hedge sibling already won).
      if (Status s = run_token.Check(); !s.ok()) return s;
      retries_.fetch_add(1, std::memory_order_relaxed);
      auto backoff = options_.retry_backoff_base * (int64_t{1} << (n - 1));
      std::this_thread::sleep_for(
          std::min<std::chrono::milliseconds>(backoff,
                                              options_.retry_backoff_cap));
    }

    // Only service-side verdicts feed the breaker (see circuit_breaker.h)
    // and the health score (watchdog stuck detections add the third input).
    std::shared_ptr<ArtifactHealth> health = HealthFor(fingerprint);
    if (attempt.ok()) {
      breaker->RecordSuccess();
      health->ok.fetch_add(1, std::memory_order_relaxed);
    } else if (attempt.status().IsInternal()) {
      breaker->RecordFailure();
      health->failed.fetch_add(1, std::memory_order_relaxed);
    }

    // Degraded results are never cached (their identity belongs to the
    // fallback backend); neither are replay-capped brownout results (their
    // modeled metrics differ from the artifact's canonical identity).
    if (attempt.ok() && !degraded && !replay_capped && cache_ && key &&
        !FaultInjector::Global().ShouldInject(FaultPoint::kCacheInsert)) {
      cache_->Insert(*key,
                     std::make_shared<const QueryResult>(attempt.value()));
    }
    return attempt;
  }();

  if (!result.ok()) {
    FailAttempt(job, result.status(), cause);
    return;
  }

  // Winner-only accounting: the losing result of a hedged pair is discarded,
  // so stats keep describing the results actually served. Out-of-core pager
  // metrics: cache hits replay the memoized metrics of the run that produced
  // them, so a hit on a paged artifact counts the same faults the original
  // traversal charged — the stats describe the modeled cost of the results
  // served, not host-side work performed.
  const bool attempt_degraded = degraded;
  const TraversalMetrics metrics = result.value().metrics();
  Fulfill(state, std::move(result), [&] {
    if (job.attempt == 1) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    if (attempt_degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
    if (metrics.warp.partition_faults != 0) {
      partition_faults_.fetch_add(metrics.warp.partition_faults,
                                  std::memory_order_relaxed);
    }
    if (metrics.warp.partition_spills != 0) {
      partition_spills_.fetch_add(metrics.warp.partition_spills,
                                  std::memory_order_relaxed);
    }
    uint64_t peak = metrics.resident_bytes_peak;
    uint64_t seen = resident_bytes_peak_.load(std::memory_order_relaxed);
    while (peak > seen && !resident_bytes_peak_.compare_exchange_weak(
                              seen, peak, std::memory_order_relaxed)) {
    }
  });
  ReleaseAttempt(state);
}

void GcgtService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, options_.qos.watchdog_interval,
                          [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();
    // An injected tick fault skips the whole scan — the system must stay
    // correct (just slower to hedge/detect) when the watchdog misses beats.
    if (!FaultInjector::Global().ShouldInject(FaultPoint::kWatchdogTick)) {
      ScanStuck();
      if (options_.qos.enable_hedging) ScanHedges();
      if (options_.qos.brownout_watermark_bytes > 0 && cache_) {
        ScanBrownout();
      }
    }
    lock.lock();
  }
}

void GcgtService::ScanStuck() {
  const Clock::time_point now = Clock::now();
  for (const std::unique_ptr<WorkerSlot>& slot_ptr : slots_) {
    std::shared_ptr<JobState> state;
    {
      std::lock_guard<std::mutex> lock(slot_ptr->mu);
      state = slot_ptr->state;
    }
    if (!state || state->fulfilled.load(std::memory_order_acquire)) continue;
    const CancelToken& token = state->query.cancel;
    if (!token.has_deadline()) continue;
    if (now < token.deadline() + options_.qos.stuck_grace) continue;
    // Running this long past the deadline means the engine is not honoring
    // its cooperative cancel polls (e.g. a single-source CPU Brandes run
    // that only polls between sources) — report once per query.
    if (state->stuck_reported.exchange(true, std::memory_order_acq_rel)) {
      continue;
    }
    watchdog_stuck_.fetch_add(1, std::memory_order_relaxed);
    HealthFor(state->query.graph)
        ->stuck.fetch_add(1, std::memory_order_relaxed);
    BreakerFor(state->query.graph)->RecordFailure();
  }
}

std::chrono::nanoseconds GcgtService::HedgeDelay() const {
  if (options_.qos.hedge_delay.count() > 0) return options_.qos.hedge_delay;
  // Adaptive: a multiple of the observed completion-latency EWMA, floored —
  // the tail-at-scale rule of thumb (hedge when a query outlives the typical
  // one by a comfortable factor).
  const uint64_t ewma = latency_ewma_ns_.load(std::memory_order_relaxed);
  const auto adaptive = std::chrono::nanoseconds(static_cast<int64_t>(
      static_cast<double>(ewma) * options_.qos.hedge_latency_factor));
  return std::max(adaptive, options_.qos.hedge_min_delay);
}

void GcgtService::ObserveLatency(Clock::duration latency) {
  const int64_t raw =
      std::chrono::duration_cast<std::chrono::nanoseconds>(latency).count();
  const uint64_t ns = raw < 0 ? 0 : static_cast<uint64_t>(raw);
  const uint64_t prev = latency_ewma_ns_.load(std::memory_order_relaxed);
  const uint64_t next = prev == 0 ? ns : (prev * 7 + ns) / 8;
  latency_ewma_ns_.store(next, std::memory_order_relaxed);
}

void GcgtService::ScanHedges() {
  const Clock::time_point now = Clock::now();
  const std::chrono::nanoseconds delay = HedgeDelay();
  std::vector<std::shared_ptr<JobState>> candidates;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      std::shared_ptr<JobState> state = it->lock();
      if (!state || state->fulfilled.load(std::memory_order_acquire)) {
        it = inflight_.erase(it);  // prune completed/abandoned entries
        continue;
      }
      if (!state->hedged.load(std::memory_order_relaxed) &&
          now - state->admitted_at >= delay) {
        candidates.push_back(std::move(state));
      }
      ++it;
    }
  }
  for (std::shared_ptr<JobState>& state : candidates) {
    // Spare-capacity gate: hedges amplify load, and a hedge pushed behind a
    // standing queue waits out the same backlog as its primary — pure waste.
    // Only hedge when the queue is shallower than the worker pool (the
    // hedge will be picked up about immediately); under real overload
    // hedging self-disables.
    if (queue_.size() >= static_cast<size_t>(options_.num_workers)) break;
    if (state->hedged.exchange(true, std::memory_order_acq_rel)) continue;
    if (FaultInjector::Global().ShouldInject(FaultPoint::kHedgeDispatch)) {
      // Injected hedge-path fault: the dispatch is lost. The primary still
      // owns the query, so correctness is untouched — only tail latency.
      continue;
    }
    // The hedge only races a LIVE primary: raising live_attempts from zero
    // is forbidden (a fully-failed query may already be fulfilled).
    int live = state->live_attempts.load(std::memory_order_relaxed);
    bool raised = false;
    while (live > 0) {
      if (state->live_attempts.compare_exchange_weak(
              live, live + 1, std::memory_order_acq_rel)) {
        raised = true;
        break;
      }
    }
    if (!raised) continue;
    Job hedge{state, 1};
    if (queue_.TryPush(hedge, state->query.priority,
                       state->query.cancel.deadline()) ==
        AdmissionQueue<Job>::PushResult::kOk) {
      hedged_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Queue full or closed: give the liveness back (fulfilling the stored
      // verdict if the primary failed in the meantime).
      ReleaseAttempt(*state);
    }
  }
}

void GcgtService::ScanBrownout() {
  const Clock::time_point now = Clock::now();
  const size_t watermark = options_.qos.brownout_watermark_bytes;
  const size_t resident = cache_->Stats().bytes;
  if (!brownout_active_.load(std::memory_order_relaxed)) {
    if (resident > watermark) {
      // Memory pressure: shed cache weight now and make workers run with
      // shrunken replay budgets until pressure stays off for the hold.
      brownout_since_ = now;
      brownout_events_.fetch_add(1, std::memory_order_relaxed);
      cache_->SetBudget(static_cast<size_t>(
          static_cast<double>(options_.cache_bytes) *
          options_.qos.brownout_shrink));
      brownout_active_.store(true, std::memory_order_release);
    }
  } else if (now - brownout_since_ >= options_.qos.brownout_hold &&
             resident <= watermark / 2) {
    cache_->SetBudget(options_.cache_bytes);
    brownout_active_.store(false, std::memory_order_release);
  }
}

ServiceStats GcgtService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.worker_sessions = worker_sessions_.load(std::memory_order_relaxed);
  if (cache_) stats.cache = cache_->Stats();
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.worker_faults = worker_faults_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.breaker_rejected = breaker_rejected_.load(std::memory_order_relaxed);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  stats.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  stats.shed_rate_limited =
      shed_rate_limited_.load(std::memory_order_relaxed);
  stats.hedged = hedged_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.watchdog_stuck = watchdog_stuck_.load(std::memory_order_relaxed);
  stats.brownout_events = brownout_events_.load(std::memory_order_relaxed);
  stats.brownout_active = brownout_active_.load(std::memory_order_relaxed);
  stats.partition_faults = partition_faults_.load(std::memory_order_relaxed);
  stats.partition_spills = partition_spills_.load(std::memory_order_relaxed);
  stats.resident_bytes_peak =
      resident_bytes_peak_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(breakers_mu_);
    for (const auto& [fp, breaker] : breakers_) {
      stats.breaker_opened += breaker->times_opened();
    }
  }
  return stats;
}

}  // namespace gcgt
