#include "service/gcgt_service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/fault_injector.h"

namespace gcgt {

GcgtService::GcgtService(const ServiceOptions& options)
    : options_(options),
      queue_(options.queue_capacity) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                           options_.cache_shards);
  }
  // Arm chaos externally (GCGT_FAULT_SEED / GCGT_FAULT_RATE); no-op unless
  // both are set, and once-only so repeated service constructions never
  // reset the deterministic ordinal sequence mid-run.
  FaultInjector::InitFromEnv();
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

GcgtService::~GcgtService() { Shutdown(); }

void GcgtService::Shutdown() {
  // call_once makes Shutdown idempotent AND safe to race: concurrent callers
  // (including the destructor) block until the winner finishes draining, so
  // no caller returns while workers are still running. Submissions racing
  // with shutdown either make it into the queue (drained, future fulfilled)
  // or see the closed queue and fail fast with Unavailable — BoundedQueue
  // guarantees a false Push never consumes the item.
  std::call_once(shutdown_once_, [&] {
    queue_.Close();  // workers drain the accepted jobs, then exit
    for (std::thread& worker : workers_) worker.join();
  });
}

Result<uint64_t> GcgtService::RegisterGraph(const Graph& graph,
                                            const PrepareOptions& options) {
  const uint64_t fingerprint = ComputeArtifactFingerprint(graph, options);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (auto it = registry_.find(fingerprint); it != registry_.end()) {
      // Dedup trusts the 64-bit fingerprint (~2^-64 per accidental pair;
      // adversarial multi-tenant inputs are out of scope). This cheap shape
      // check turns the likeliest collision symptom — a DIFFERENT graph
      // mapping to a registered artifact — into an error instead of
      // silently serving the wrong graph's results.
      if (it->second->num_query_nodes() != graph.num_nodes()) {
        return Status::Internal(
            "artifact fingerprint collision: a different graph is already "
            "registered under this fingerprint");
      }
      return fingerprint;  // no re-encode
    }
  }
  // Encode OUTSIDE the registry lock so serving and other registrations
  // proceed meanwhile. Two concurrent first registrations of one artifact
  // can both encode; the loser's copy is dropped (correctness is unaffected
  // — the pipeline is deterministic — and registration is a startup-path
  // operation; the steady-state guarantee is "re-registering never
  // re-encodes").
  auto built = PreparedGraph::Build(graph, options, fingerprint);
  if (!built.ok()) return built.status();
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] =
      registry_.try_emplace(fingerprint, std::move(built.value()));
  if (!inserted && it->second->num_query_nodes() != graph.num_nodes()) {
    // A concurrent first registration won the slot with a DIFFERENT graph:
    // the same collision guard as the fast path above.
    return Status::Internal(
        "artifact fingerprint collision: a different graph is already "
        "registered under this fingerprint");
  }
  return fingerprint;
}

Result<uint64_t> GcgtService::RegisterContainer(
    const std::string& path, const GcgtOptions& options,
    ooc::CgrContainer::ReadMode mode) {
  Result<ooc::CgrContainer> container = ooc::CgrContainer::Open(path, mode);
  if (!container.ok()) return container.status();
  const ooc::CgrContainer& c = container.value();
  // Registry key = the header's stored artifact fingerprint folded with the
  // serving options. The stored fingerprint already identifies graph bytes,
  // encode options and partition plan; folding `options` keeps one container
  // registered under two budgets (or cost models) as two distinct artifacts,
  // mirroring how RegisterGraph keys on graph AND options.
  PrepareOptions fp_opt;
  fp_opt.cgr = c.options();
  fp_opt.ooc_partitions = static_cast<int>(c.partitions().size());
  fp_opt.gcgt = options;
  const uint64_t fingerprint =
      CombineOptionsFingerprint(c.fingerprint(), fp_opt);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (auto it = registry_.find(fingerprint); it != registry_.end()) {
      // Same collision shape guard as RegisterGraph.
      if (it->second->num_query_nodes() != c.num_nodes()) {
        return Status::Internal(
            "artifact fingerprint collision: a different graph is already "
            "registered under this fingerprint");
      }
      return fingerprint;  // container already materialized
    }
  }
  // Materialize OUTSIDE the lock, same rationale as RegisterGraph.
  auto built = PreparedGraph::BuildFromContainer(c, options, fingerprint);
  if (!built.ok()) return built.status();
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] =
      registry_.try_emplace(fingerprint, std::move(built.value()));
  if (!inserted && it->second->num_query_nodes() != c.num_nodes()) {
    return Status::Internal(
        "artifact fingerprint collision: a different graph is already "
        "registered under this fingerprint");
  }
  return fingerprint;
}

std::shared_ptr<const PreparedGraph> GcgtService::FindGraph(
    uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(fingerprint);
  return it == registry_.end() ? nullptr : it->second;
}

std::shared_ptr<CircuitBreaker> GcgtService::BreakerFor(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(fingerprint);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(fingerprint,
                      std::make_shared<CircuitBreaker>(options_.breaker))
             .first;
  }
  return it->second;
}

CircuitBreakerState GcgtService::BreakerState(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(fingerprint);
  return it == breakers_.end() ? CircuitBreakerState::kClosed
                               : it->second->state();
}

std::future<Result<QueryResult>> GcgtService::Submit(ServiceQuery query) {
  if (options_.default_timeout.count() > 0) {
    query.cancel = query.cancel.WithDeadlineMin(CancelToken::Clock::now() +
                                                options_.default_timeout);
  }
  Job job;
  job.query = std::move(query);
  std::future<Result<QueryResult>> future = job.promise.get_future();
  // Count BEFORE the job becomes visible to workers, so Stats() never
  // transiently reports completed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (FaultInjector::Global().ShouldInject(FaultPoint::kQueueAdmit)) {
    // A simulated admission failure behaves like shutdown-time shedding:
    // the future is fulfilled immediately with Unavailable.
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(
        Status::Unavailable("injected fault: queue admission shed"));
    return future;
  }
  if (!queue_.Push(job)) {  // blocks while full; false only once closed
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    job.promise.set_value(Status::Unavailable("service is shut down"));
    return future;
  }
  return future;
}

Result<std::future<Result<QueryResult>>> GcgtService::TrySubmit(
    ServiceQuery query) {
  if (options_.default_timeout.count() > 0) {
    query.cancel = query.cancel.WithDeadlineMin(CancelToken::Clock::now() +
                                                options_.default_timeout);
  }
  Job job;
  job.query = std::move(query);
  std::future<Result<QueryResult>> future = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);  // see Submit()
  if (FaultInjector::Global().ShouldInject(FaultPoint::kQueueAdmit)) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected fault: queue admission shed");
  }
  switch (queue_.TryPush(job)) {
    case BoundedQueue<Job>::PushResult::kOk:
      return future;
    case BoundedQueue<Job>::PushResult::kFull:
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("admission control: queue is full");
    case BoundedQueue<Job>::PushResult::kClosed:
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      return Status::Unavailable("service is shut down");
  }
  return Status::Internal("unreachable");
}

std::vector<std::future<Result<QueryResult>>> GcgtService::SubmitBatch(
    std::vector<ServiceQuery> queries) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (ServiceQuery& query : queries) futures.push_back(Submit(std::move(query)));
  return futures;
}

void GcgtService::WorkerLoop() {
  // Per-worker serving state: one session (engine) per artifact served so
  // far. Thread-confined — never shared, so Run() stays single-caller.
  std::unordered_map<uint64_t, WorkerSession> sessions;
  while (std::optional<Job> job = queue_.Pop()) {
    Serve(sessions, std::move(*job));
  }
}

Result<QueryResult> GcgtService::Attempt(WorkerSession& ws,
                                         const ServiceQuery& query,
                                         bool& degraded) {
  degraded = false;
  // Exception containment: ANYTHING a serve attempt throws — including the
  // injected fault below, which deliberately exercises this path — becomes
  // Status::Internal on this query alone. The worker thread survives.
  try {
    if (FaultInjector::Global().ShouldInject(FaultPoint::kWorkerServe)) {
      throw std::runtime_error("injected fault: worker serve");
    }
    RunOptions run;
    run.backend = query.backend;
    run.cancel = query.cancel;
    Result<QueryResult> result = ws.session.Run(query.query, run);
    if (!result.ok() && result.status().IsOutOfMemory() &&
        options_.enable_oom_fallback &&
        options_.fallback_backend != query.backend) {
      // Graceful degradation: the requested backend does not fit the device
      // budget (a fig8-style hard OOM row); answer on the fallback backend
      // and mark the result so clients can tell.
      RunOptions fallback = run;
      fallback.backend = options_.fallback_backend;
      Result<QueryResult> fb = ws.session.Run(query.query, fallback);
      if (fb.ok()) {
        fb.value().MarkDegraded();
        degraded = true;
        return fb;
      }
      return result;  // fallback failed too: report the original OOM
    }
    return result;
  } catch (const std::exception& e) {
    worker_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(std::string("worker exception: ") + e.what());
  } catch (...) {
    worker_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("worker exception: unknown type");
  }
}

void GcgtService::Serve(std::unordered_map<uint64_t, WorkerSession>& sessions,
                        Job job) {
  const uint64_t fingerprint = job.query.graph;
  const Backend backend = job.query.backend;

  // Canonicalize BC source sets (sort + dedup) before anything reads the
  // query: the executed query and the cache key then always agree, so a
  // cache hit is bit-identical to a fresh run of the canonical query, and
  // equivalent submissions ({3,1}, {1,3,3}) share one cached result.
  if (auto* bc = std::get_if<BcQuery>(&job.query.query)) {
    bc->sources = CanonicalBcSources(std::move(bc->sources));
  }

  bool degraded = false;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // Queued-time expiry: a query whose deadline passed (or that was
    // cancelled) while waiting in the queue fails here without spending any
    // worker time on it.
    if (Status s = job.query.cancel.Check(); !s.ok()) return s;

    // Cache next: a hit answers without touching any session, the breaker
    // or the retry machinery (a memoized result proves nothing about the
    // artifact's current health and costs nothing to serve).
    std::optional<ResultCacheKey> key;
    if (cache_) {
      key = ResultCache::KeyFor(fingerprint, backend, job.query.query);
      if (key &&
          !FaultInjector::Global().ShouldInject(FaultPoint::kCacheLookup)) {
        if (std::shared_ptr<const QueryResult> hit = cache_->Lookup(*key)) {
          return QueryResult(*hit);
        }
      }
    }

    auto it = sessions.find(fingerprint);
    if (it == sessions.end()) {
      std::shared_ptr<const PreparedGraph> artifact = FindGraph(fingerprint);
      if (artifact == nullptr) {
        return Status::NotFound("graph is not registered with the service");
      }
      GcgtSession session =
          artifact->NewWorkerSession(options_.worker_engine_threads);
      worker_sessions_.fetch_add(1, std::memory_order_relaxed);
      it = sessions
               .emplace(fingerprint,
                        WorkerSession{std::move(artifact), std::move(session)})
               .first;
    }

    // Quarantine check: an artifact whose queries keep failing with
    // service-side errors fails fast until its cooldown probe succeeds.
    std::shared_ptr<CircuitBreaker> breaker = BreakerFor(fingerprint);
    if (!breaker->Allow()) {
      breaker_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("circuit breaker open for this artifact");
    }

    // Attempt loop: only TRANSIENT failures (Internal) retry, with capped
    // exponential backoff. Client errors, OOM verdicts (the fallback already
    // ran inside Attempt) and caller aborts return immediately.
    Result<QueryResult> attempt = Status::Internal("no attempt ran");
    for (int n = 1; ; ++n) {
      attempt = Attempt(it->second, job.query, degraded);
      if (attempt.ok() || !attempt.status().IsInternal() ||
          n >= options_.max_attempts) {
        break;
      }
      // Never burn backoff sleeps on a query that is already dead.
      if (Status s = job.query.cancel.Check(); !s.ok()) return s;
      retries_.fetch_add(1, std::memory_order_relaxed);
      auto backoff = options_.retry_backoff_base * (int64_t{1} << (n - 1));
      std::this_thread::sleep_for(
          std::min<std::chrono::milliseconds>(backoff,
                                              options_.retry_backoff_cap));
    }

    // Only service-side verdicts feed the breaker (see circuit_breaker.h).
    if (attempt.ok()) {
      breaker->RecordSuccess();
    } else if (attempt.status().IsInternal()) {
      breaker->RecordFailure();
    }

    // Degraded results are never cached: their identity belongs to the
    // fallback backend, not the key's requested backend.
    if (attempt.ok() && !degraded && cache_ && key &&
        !FaultInjector::Global().ShouldInject(FaultPoint::kCacheInsert)) {
      cache_->Insert(*key,
                     std::make_shared<const QueryResult>(attempt.value()));
    }
    return attempt;
  }();

  if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) {
    // Out-of-core pager accounting. Cache hits replay the memoized metrics
    // of the run that produced them, so a hit on a paged artifact counts the
    // same faults the original traversal charged — the stats describe the
    // modeled cost of the results served, not host-side work performed.
    const TraversalMetrics& m = result.value().metrics();
    if (m.warp.partition_faults != 0) {
      partition_faults_.fetch_add(m.warp.partition_faults,
                                  std::memory_order_relaxed);
    }
    if (m.warp.partition_spills != 0) {
      partition_spills_.fetch_add(m.warp.partition_spills,
                                  std::memory_order_relaxed);
    }
    uint64_t peak = m.resident_bytes_peak;
    uint64_t seen = resident_bytes_peak_.load(std::memory_order_relaxed);
    while (peak > seen && !resident_bytes_peak_.compare_exchange_weak(
                              seen, peak, std::memory_order_relaxed)) {
    }
  } else {
    if (result.status().IsCancelled()) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Exactly-once fulfillment: every path above funnels through this single
  // set_value, so an accepted future can never be abandoned.
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.promise.set_value(std::move(result));
}

ServiceStats GcgtService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.worker_sessions = worker_sessions_.load(std::memory_order_relaxed);
  if (cache_) stats.cache = cache_->Stats();
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.worker_faults = worker_faults_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.breaker_rejected = breaker_rejected_.load(std::memory_order_relaxed);
  stats.partition_faults = partition_faults_.load(std::memory_order_relaxed);
  stats.partition_spills = partition_spills_.load(std::memory_order_relaxed);
  stats.resident_bytes_peak =
      resident_bytes_peak_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(breakers_mu_);
    for (const auto& [fp, breaker] : breakers_) {
      stats.breaker_opened += breaker->times_opened();
    }
  }
  return stats;
}

}  // namespace gcgt
