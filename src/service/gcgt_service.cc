#include "service/gcgt_service.h"

#include <utility>

namespace gcgt {

GcgtService::GcgtService(const ServiceOptions& options)
    : options_(options),
      queue_(options.queue_capacity) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                           options_.cache_shards);
  }
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

GcgtService::~GcgtService() { Shutdown(); }

void GcgtService::Shutdown() {
  std::call_once(shutdown_once_, [&] {
    queue_.Close();  // workers drain the accepted jobs, then exit
    for (std::thread& worker : workers_) worker.join();
  });
}

Result<uint64_t> GcgtService::RegisterGraph(const Graph& graph,
                                            const PrepareOptions& options) {
  const uint64_t fingerprint = ComputeArtifactFingerprint(graph, options);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (auto it = registry_.find(fingerprint); it != registry_.end()) {
      // Dedup trusts the 64-bit fingerprint (~2^-64 per accidental pair;
      // adversarial multi-tenant inputs are out of scope). This cheap shape
      // check turns the likeliest collision symptom — a DIFFERENT graph
      // mapping to a registered artifact — into an error instead of
      // silently serving the wrong graph's results.
      if (it->second->num_query_nodes() != graph.num_nodes()) {
        return Status::Internal(
            "artifact fingerprint collision: a different graph is already "
            "registered under this fingerprint");
      }
      return fingerprint;  // no re-encode
    }
  }
  // Encode OUTSIDE the registry lock so serving and other registrations
  // proceed meanwhile. Two concurrent first registrations of one artifact
  // can both encode; the loser's copy is dropped (correctness is unaffected
  // — the pipeline is deterministic — and registration is a startup-path
  // operation; the steady-state guarantee is "re-registering never
  // re-encodes").
  auto built = PreparedGraph::Build(graph, options, fingerprint);
  if (!built.ok()) return built.status();
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] =
      registry_.try_emplace(fingerprint, std::move(built.value()));
  if (!inserted && it->second->num_query_nodes() != graph.num_nodes()) {
    // A concurrent first registration won the slot with a DIFFERENT graph:
    // the same collision guard as the fast path above.
    return Status::Internal(
        "artifact fingerprint collision: a different graph is already "
        "registered under this fingerprint");
  }
  return fingerprint;
}

std::shared_ptr<const PreparedGraph> GcgtService::FindGraph(
    uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(fingerprint);
  return it == registry_.end() ? nullptr : it->second;
}

std::future<Result<QueryResult>> GcgtService::Submit(ServiceQuery query) {
  Job job;
  job.query = std::move(query);
  std::future<Result<QueryResult>> future = job.promise.get_future();
  // Count BEFORE the job becomes visible to workers, so Stats() never
  // transiently reports completed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.Push(job)) {  // blocks while full; false only once closed
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    job.promise.set_value(Status::Unavailable("service is shut down"));
    return future;
  }
  return future;
}

Result<std::future<Result<QueryResult>>> GcgtService::TrySubmit(
    ServiceQuery query) {
  Job job;
  job.query = std::move(query);
  std::future<Result<QueryResult>> future = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);  // see Submit()
  switch (queue_.TryPush(job)) {
    case BoundedQueue<Job>::PushResult::kOk:
      return future;
    case BoundedQueue<Job>::PushResult::kFull:
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("admission control: queue is full");
    case BoundedQueue<Job>::PushResult::kClosed:
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      return Status::Unavailable("service is shut down");
  }
  return Status::Internal("unreachable");
}

std::vector<std::future<Result<QueryResult>>> GcgtService::SubmitBatch(
    std::vector<ServiceQuery> queries) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (ServiceQuery& query : queries) futures.push_back(Submit(std::move(query)));
  return futures;
}

void GcgtService::WorkerLoop() {
  // Per-worker serving state: one session (engine) per artifact served so
  // far. Thread-confined — never shared, so Run() stays single-caller.
  std::unordered_map<uint64_t, WorkerSession> sessions;
  while (std::optional<Job> job = queue_.Pop()) {
    Serve(sessions, std::move(*job));
  }
}

void GcgtService::Serve(std::unordered_map<uint64_t, WorkerSession>& sessions,
                        Job job) {
  const uint64_t fingerprint = job.query.graph;
  const Backend backend = job.query.backend;

  // Cache first: a hit answers without touching any session.
  std::optional<ResultCacheKey> key;
  if (cache_) {
    key = ResultCache::KeyFor(fingerprint, backend, job.query.query);
    if (key) {
      if (std::shared_ptr<const QueryResult> hit = cache_->Lookup(*key)) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        job.promise.set_value(QueryResult(*hit));
        return;
      }
    }
  }

  auto it = sessions.find(fingerprint);
  if (it == sessions.end()) {
    std::shared_ptr<const PreparedGraph> artifact = FindGraph(fingerprint);
    if (artifact == nullptr) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(
          Status::NotFound("graph is not registered with the service"));
      return;
    }
    GcgtSession session =
        artifact->NewWorkerSession(options_.worker_engine_threads);
    worker_sessions_.fetch_add(1, std::memory_order_relaxed);
    it = sessions
             .emplace(fingerprint,
                      WorkerSession{std::move(artifact), std::move(session)})
             .first;
  }

  Result<QueryResult> result =
      it->second.session.Run(job.query.query, RunOptions{.backend = backend});
  if (result.ok() && cache_ && key) {
    cache_->Insert(*key, std::make_shared<const QueryResult>(result.value()));
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  job.promise.set_value(std::move(result));
}

ServiceStats GcgtService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.worker_sessions = worker_sessions_.load(std::memory_order_relaxed);
  if (cache_) stats.cache = cache_->Stats();
  return stats;
}

}  // namespace gcgt
