#include "service/prepared_graph.h"

#include <utility>

namespace gcgt {

Result<std::shared_ptr<const PreparedGraph>> PreparedGraph::Build(
    const Graph& graph, const PrepareOptions& options, uint64_t fingerprint) {
  Result<GcgtSession> master = GcgtSession::Prepare(graph, options, fingerprint);
  if (!master.ok()) return master.status();
  // Force the lazy decode NOW, while the artifact is still single-threaded:
  // worker clones then share one uncompressed view instead of each decoding
  // their own, and concurrent NewWorkerSession() calls stay read-only.
  master.value().graph();
  return std::shared_ptr<const PreparedGraph>(
      new PreparedGraph(std::move(master).value()));
}

Result<std::shared_ptr<const PreparedGraph>> PreparedGraph::BuildFromContainer(
    ooc::CgrContainer container, const GcgtOptions& options,
    uint64_t fingerprint) {
  auto owned =
      std::make_unique<const ooc::CgrContainer>(std::move(container));
  // Zero-copy for mmap'd opens: the graph borrows the mapping, which `owned`
  // keeps alive for the artifact's whole lifetime. Buffered opens copy.
  Result<CgrGraph> cgr = owned->ToCgrGraphView();
  if (!cgr.ok()) return cgr.status();
  GcgtSession master = GcgtSession::Adopt(
      std::make_unique<const CgrGraph>(std::move(cgr).value()), options,
      fingerprint);
  // Same eager-decode rule as Build(): worker clones must never race on the
  // master's lazy uncompressed view.
  master.graph();
  auto prepared =
      std::shared_ptr<PreparedGraph>(new PreparedGraph(std::move(master)));
  prepared->container_ = std::move(owned);
  return std::shared_ptr<const PreparedGraph>(std::move(prepared));
}

}  // namespace gcgt
