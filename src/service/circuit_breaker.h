// Per-artifact circuit breaker: quarantines artifacts whose queries keep
// failing with service-side errors, so one poisoned artifact (corrupt
// encode, persistent worker faults) cannot soak the worker pool in doomed
// retries while healthy artifacts starve.
//
// Classic three-state machine:
//
//        failures >= threshold                cooldown elapsed
//   Closed ------------------> Open ------------------------> HalfOpen
//     ^  \__ success resets      |  Allow() == false             |
//     |      the failure run     |  (fail fast, no worker        |
//     |                          |   time spent)                 |
//     +--- trial succeeds -------+<------- trial fails ----------+
//          (HalfOpen -> Closed)    (HalfOpen -> Open, new cooldown)
//
// Only SERVICE-side failures should be recorded (Status::kInternal — worker
// exceptions, injected faults): client errors (InvalidArgument, NotFound),
// per-query resource verdicts (OutOfMemory) and caller aborts (Cancelled,
// DeadlineExceeded) say nothing about the artifact's health. The watchdog's
// stuck-worker detections also count as failures here — an attempt parked
// past its deadline is service-side sickness whatever verdict it eventually
// returns. The service enforces that classification; the breaker just
// counts.
//
// Time is injected (`now_fn`) so every transition is unit-testable with a
// fake clock. All methods are thread-safe.
#ifndef GCGT_SERVICE_CIRCUIT_BREAKER_H_
#define GCGT_SERVICE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace gcgt {

struct CircuitBreakerOptions {
  /// Consecutive recorded failures that trip Closed -> Open. <= 0 disables
  /// the breaker (Allow always true, nothing recorded).
  int failure_threshold = 8;
  /// How long Open rejects before probing again (Open -> HalfOpen).
  std::chrono::milliseconds open_cooldown{250};
  /// Trial queries admitted in HalfOpen before new admissions are rejected
  /// until a trial reports back.
  int half_open_trials = 1;
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {},
                          std::function<Clock::time_point()> now_fn = nullptr)
      : options_(options),
        now_fn_(now_fn ? std::move(now_fn) : [] { return Clock::now(); }) {}

  /// May this query proceed? Open transitions to HalfOpen once the cooldown
  /// elapsed; HalfOpen admits up to half_open_trials outstanding probes.
  /// A false return means "fail fast with Unavailable".
  bool Allow() {
    if (options_.failure_threshold <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now_fn_() - opened_at_ < options_.open_cooldown) {
          ++rejected_;
          return false;
        }
        state_ = State::kHalfOpen;
        trials_in_flight_ = 0;
        [[fallthrough]];
      case State::kHalfOpen:
        if (trials_in_flight_ >= options_.half_open_trials) {
          ++rejected_;
          return false;
        }
        ++trials_in_flight_;
        return true;
    }
    return true;
  }

  /// Record the outcome of an allowed query (service-side failures only;
  /// see the header comment for the classification contract).
  void RecordSuccess() {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen) {
      state_ = State::kClosed;  // the artifact recovered
      trials_in_flight_ = 0;
    }
  }

  void RecordFailure() {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      Trip();  // the probe failed: back to a full cooldown
      return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= options_.failure_threshold) {
      Trip();
    }
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// Queries rejected while Open / trial-saturated HalfOpen.
  uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }

  /// Closed -> Open (and HalfOpen -> Open) transitions so far.
  uint64_t times_opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_opened_;
  }

 private:
  void Trip() {
    state_ = State::kOpen;
    opened_at_ = now_fn_();
    consecutive_failures_ = 0;
    trials_in_flight_ = 0;
    ++times_opened_;
  }

  const CircuitBreakerOptions options_;
  const std::function<Clock::time_point()> now_fn_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int trials_in_flight_ = 0;
  Clock::time_point opened_at_{};
  uint64_t rejected_ = 0;
  uint64_t times_opened_ = 0;
};

using CircuitBreakerState = CircuitBreaker::State;

inline const char* CircuitBreakerStateName(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace gcgt

#endif  // GCGT_SERVICE_CIRCUIT_BREAKER_H_
