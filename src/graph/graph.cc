#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace gcgt {

Graph Graph::FromEdges(NodeId num_nodes, const EdgeList& edges, bool symmetrize) {
  // Count degrees (including symmetric copies), then bucket-fill and finally
  // sort + dedupe each list in place.
  std::vector<EdgeId> degree(num_nodes, 0);
  for (const auto& [u, v] : edges) {
    assert(u < num_nodes && v < num_nodes);
    ++degree[u];
    if (symmetrize && u != v) ++degree[v];
  }

  Graph g;
  g.offsets_.assign(num_nodes + 1, 0);
  for (NodeId u = 0; u < num_nodes; ++u) g.offsets_[u + 1] = g.offsets_[u] + degree[u];
  g.neighbors_.resize(g.offsets_[num_nodes]);

  std::vector<EdgeId> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.neighbors_[cursor[u]++] = v;
    if (symmetrize && u != v) g.neighbors_[cursor[v]++] = u;
  }

  // Sort and dedupe per node, compacting the arrays.
  EdgeId write = 0;
  EdgeId prev_offset = 0;
  for (NodeId u = 0; u < num_nodes; ++u) {
    EdgeId begin = prev_offset;
    EdgeId end = g.offsets_[u + 1];
    prev_offset = end;
    std::sort(g.neighbors_.begin() + begin, g.neighbors_.begin() + end);
    EdgeId out_begin = write;
    for (EdgeId i = begin; i < end; ++i) {
      if (i > begin && g.neighbors_[i] == g.neighbors_[i - 1]) continue;
      g.neighbors_[write++] = g.neighbors_[i];
    }
    g.offsets_[u] = out_begin;
  }
  g.offsets_[num_nodes] = write;
  g.neighbors_.resize(write);
  // offsets_[u] currently stores begin positions; shift into canonical form.
  // (They already are canonical: offsets_[u] = begin of u, offsets_[V] = end.)
  return g;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Graph Graph::Reversed() const {
  // Direct counting-sort transpose: scanning sources in ascending order
  // fills every reverse list already sorted, so the per-node sort + dedupe
  // of FromEdges (and the intermediate edge list) is unnecessary.
  const NodeId n = num_nodes();
  Graph g;
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (NodeId v : neighbors_) ++g.offsets_[v + 1];
  for (NodeId u = 0; u < n; ++u) g.offsets_[u + 1] += g.offsets_[u];
  g.neighbors_.resize(neighbors_.size());
  std::vector<EdgeId> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : Neighbors(u)) g.neighbors_[cursor[v]++] = u;
  }
  return g;
}

Graph Graph::Relabeled(const std::vector<NodeId>& perm) const {
  // Permutations preserve degrees and uniqueness, so the new CSR arrays can
  // be written in place (one small sort per relabeled list, no edge-list
  // materialization, no dedupe pass).
  const NodeId n = num_nodes();
  Graph g;
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) g.offsets_[perm[u] + 1] = out_degree(u);
  for (NodeId u = 0; u < n; ++u) g.offsets_[u + 1] += g.offsets_[u];
  g.neighbors_.resize(neighbors_.size());
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId begin = g.offsets_[perm[u]];
    EdgeId w = begin;
    for (NodeId v : Neighbors(u)) g.neighbors_[w++] = perm[v];
    std::sort(g.neighbors_.begin() + begin, g.neighbors_.begin() + w);
  }
  return g;
}

EdgeList Graph::ToEdges() const {
  EdgeList edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : Neighbors(u)) edges.emplace_back(u, v);
  }
  return edges;
}

}  // namespace gcgt
