// In-memory CSR graph (paper Fig. 1): row offsets + sorted column indices.
// This is the uncompressed substrate every engine starts from; the CGR
// encoder (src/cgr) compresses it, the baselines traverse it directly.
#ifndef GCGT_GRAPH_GRAPH_H_
#define GCGT_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gcgt {

using NodeId = uint32_t;
using EdgeId = uint64_t;

/// Sentinel for "no node" (e.g. unreachable BFS parent).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

/// Immutable CSR graph. Neighbor lists are sorted ascending and deduplicated.
class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from an edge list.
  /// If `symmetrize` is true every edge (u,v) also inserts (v,u).
  /// Self loops are kept (the CGR codec supports them); duplicates are removed.
  static Graph FromEdges(NodeId num_nodes, const EdgeList& edges,
                         bool symmetrize = false);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size()) - 1; }
  EdgeId num_edges() const { return neighbors_.empty() ? 0 : neighbors_.size(); }

  EdgeId out_degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  std::span<const NodeId> Neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbors() const { return neighbors_; }

  /// True iff (u,v) is an edge (binary search).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Graph with all edges reversed.
  Graph Reversed() const;

  /// Graph under the node relabeling new_id = perm[old_id].
  /// `perm` must be a permutation of [0, num_nodes); validated by the caller
  /// via reorder::ValidatePermutation when it comes from user input.
  Graph Relabeled(const std::vector<NodeId>& perm) const;

  /// All edges as (u, v) pairs, ordered by u then v.
  EdgeList ToEdges() const;

  /// CSR memory footprint in bytes: 8-byte offsets + 4-byte columns.
  uint64_t CsrBytes() const {
    return offsets_.size() * sizeof(EdgeId) + neighbors_.size() * sizeof(NodeId);
  }

 private:
  std::vector<EdgeId> offsets_{0};  // size num_nodes + 1
  std::vector<NodeId> neighbors_;  // size num_edges
};

}  // namespace gcgt

#endif  // GCGT_GRAPH_GRAPH_H_
