// Structural statistics used to characterize datasets (paper Table 1) and to
// explain compression behaviour (locality / interval coverage, §7.2).
#ifndef GCGT_GRAPH_GRAPH_STATS_H_
#define GCGT_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gcgt {

struct GraphStats {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;
  EdgeId max_degree = 0;
  /// Mean log2(gap+1) over consecutive sorted-neighbor gaps; lower = better
  /// locality = better CGR compression.
  double locality_score = 0.0;
  /// Fraction of neighbors covered by runs of consecutive ids with length >=
  /// min_interval_len (these become intervals in CGR).
  double interval_coverage = 0.0;
};

GraphStats ComputeGraphStats(const Graph& g, int min_interval_len = 4);

/// Degree histogram in powers of two: bucket[i] = #nodes with degree in
/// [2^i, 2^(i+1)).
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// One-line human readable summary.
std::string FormatStats(const std::string& name, const GraphStats& s);

}  // namespace gcgt

#endif  // GCGT_GRAPH_GRAPH_STATS_H_
