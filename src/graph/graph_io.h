// Text edge-list and binary CSR (de)serialization.
#ifndef GCGT_GRAPH_GRAPH_IO_H_
#define GCGT_GRAPH_GRAPH_IO_H_

#include <cstdio>
#include <functional>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace gcgt {

/// Writes `path` atomically: `write_fn` streams into a process+thread-unique
/// temp file in the same directory, which is renamed over `path` only when
/// write_fn and the flush both succeed. On any failure the temp file is
/// removed and `path` is left untouched — readers never observe a partial
/// file. Concurrent writers racing on one path are safe (last rename wins).
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::FILE*)>& write_fn);

/// Writes "u v" lines; first line is a "# nodes=N edges=M" header.
Status WriteEdgeListFile(const Graph& g, const std::string& path);

/// Reads the format produced by WriteEdgeListFile. Lines starting with '#'
/// or '%' are treated as comments; the node count is max id + 1 unless the
/// header provides it.
Result<Graph> ReadEdgeListFile(const std::string& path);

/// Compact binary CSR dump (little-endian, versioned header).
Status WriteBinaryCsr(const Graph& g, const std::string& path);
Result<Graph> ReadBinaryCsr(const std::string& path);

}  // namespace gcgt

#endif  // GCGT_GRAPH_GRAPH_IO_H_
