#include "graph/graph_stats.h"

#include <cmath>
#include <cstdio>

namespace gcgt {

GraphStats ComputeGraphStats(const Graph& g, int min_interval_len) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.avg_degree = s.num_nodes ? static_cast<double>(s.num_edges) / s.num_nodes : 0.0;

  double log_gap_sum = 0.0;
  uint64_t gap_count = 0;
  uint64_t covered = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    s.max_degree = std::max<EdgeId>(s.max_degree, nbrs.size());
    size_t run = 1;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) {
        uint64_t gap = nbrs[i] - nbrs[i - 1];
        log_gap_sum += std::log2(static_cast<double>(gap) + 1.0);
        ++gap_count;
        if (gap == 1) {
          ++run;
        } else {
          if (run >= static_cast<size_t>(min_interval_len)) covered += run;
          run = 1;
        }
      }
    }
    if (run >= static_cast<size_t>(min_interval_len)) covered += run;
  }
  s.locality_score = gap_count ? log_gap_sum / gap_count : 0.0;
  s.interval_coverage =
      s.num_edges ? static_cast<double>(covered) / s.num_edges : 0.0;
  return s;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> hist(1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EdgeId d = g.out_degree(u);
    size_t bucket = 0;  // degree in [2^i, 2^(i+1)); degrees 0 and 1 share bucket 0
    while ((EdgeId(2) << bucket) <= d) ++bucket;
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

std::string FormatStats(const std::string& name, const GraphStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-12s |V|=%-9u |E|=%-10llu avg=%6.1f max=%-7llu locality=%5.2f "
                "itv_cov=%4.1f%%",
                name.c_str(), s.num_nodes,
                static_cast<unsigned long long>(s.num_edges), s.avg_degree,
                static_cast<unsigned long long>(s.max_degree), s.locality_score,
                100.0 * s.interval_coverage);
  return buf;
}

}  // namespace gcgt
