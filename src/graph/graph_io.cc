#include "graph/graph_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gcgt {
namespace {

long ProcessId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

constexpr uint32_t kBinMagic = 0x47435231;  // "GCR1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::FILE*)>& write_fn) {
  char unique[64];
  std::snprintf(unique, sizeof(unique), ".tmp.%ld.%zu", ProcessId(),
                std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const std::string tmp = path + unique;
  std::error_code ec;

  Status s = Status::OK();
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::IOError("cannot open for write: " + tmp);
    s = write_fn(f.get());
    if (s.ok() && std::fflush(f.get()) != 0) {
      s = Status::IOError("flush failed: " + tmp);
    }
  }
  if (!s.ok()) {
    std::filesystem::remove(tmp, ec);
    return s;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("rename failed: " + path);
  }
  return Status::OK();
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  std::fprintf(f.get(), "# nodes=%u edges=%" PRIu64 "\n", g.num_nodes(),
               g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) std::fprintf(f.get(), "%u %u\n", u, v);
  }
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  EdgeList edges;
  NodeId num_nodes = 0;
  bool have_header = false;
  char line[256];
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '%') {
      unsigned n = 0;
      if (std::sscanf(line, "# nodes=%u", &n) == 1) {
        num_nodes = n;
        have_header = true;
      }
      continue;
    }
    unsigned u, v;
    if (std::sscanf(line, "%u %u", &u, &v) == 2) {
      edges.emplace_back(u, v);
      if (!have_header) {
        num_nodes = std::max<NodeId>(num_nodes, std::max(u, v) + 1);
      }
    }
  }
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes) {
      return Status::Corruption("edge endpoint exceeds declared node count");
    }
  }
  return Graph::FromEdges(num_nodes, edges);
}

Status WriteBinaryCsr(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  uint32_t magic = kBinMagic;
  uint32_t num_nodes = g.num_nodes();
  uint64_t num_edges = g.num_edges();
  if (std::fwrite(&magic, sizeof(magic), 1, f.get()) != 1 ||
      std::fwrite(&num_nodes, sizeof(num_nodes), 1, f.get()) != 1 ||
      std::fwrite(&num_edges, sizeof(num_edges), 1, f.get()) != 1) {
    return Status::IOError("short write: " + path);
  }
  // offsets() always has num_nodes + 1 entries, even for an empty graph —
  // the reader unconditionally expects them.
  if (std::fwrite(g.offsets().data(), sizeof(EdgeId), num_nodes + 1, f.get()) !=
      num_nodes + 1) {
    return Status::IOError("short write (offsets): " + path);
  }
  if (num_edges > 0 &&
      std::fwrite(g.neighbors().data(), sizeof(NodeId), num_edges, f.get()) !=
          num_edges) {
    return Status::IOError("short write (neighbors): " + path);
  }
  return Status::OK();
}

Result<Graph> ReadBinaryCsr(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  uint32_t magic = 0, num_nodes = 0;
  uint64_t num_edges = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 || magic != kBinMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (std::fread(&num_nodes, sizeof(num_nodes), 1, f.get()) != 1 ||
      std::fread(&num_edges, sizeof(num_edges), 1, f.get()) != 1) {
    return Status::Corruption("truncated header in " + path);
  }
  std::vector<EdgeId> offsets(num_nodes + 1);
  std::vector<NodeId> neighbors(num_edges);
  if (std::fread(offsets.data(), sizeof(EdgeId), num_nodes + 1, f.get()) !=
      num_nodes + 1) {
    return Status::Corruption("truncated offsets in " + path);
  }
  if (num_edges > 0 &&
      std::fread(neighbors.data(), sizeof(NodeId), num_edges, f.get()) !=
          num_edges) {
    return Status::Corruption("truncated neighbors in " + path);
  }
  if (offsets.front() != 0 || offsets.back() != num_edges) {
    return Status::Corruption("inconsistent offsets in " + path);
  }
  // Rebuild through the edge list to re-validate sortedness/dedup invariants.
  EdgeList edges;
  edges.reserve(num_edges);
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::Corruption("non-monotone offsets in " + path);
    }
    for (EdgeId i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (neighbors[i] >= num_nodes) {
        return Status::Corruption("neighbor id out of range in " + path);
      }
      edges.emplace_back(u, neighbors[i]);
    }
  }
  return Graph::FromEdges(num_nodes, edges);
}

}  // namespace gcgt
