#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/random.h"

namespace gcgt {
namespace {

// Geometric host size with the given mean (>= 1).
NodeId SampleHostSize(Rng& rng, double mean) {
  double p = 1.0 / std::max(1.0, mean);
  NodeId size = 1;
  while (!rng.Bernoulli(p) && size < 4096) ++size;
  return size;
}

}  // namespace

Graph GenerateWebGraph(const WebGraphParams& p) {
  Rng rng(p.seed);
  // Partition node ids into contiguous hosts.
  std::vector<NodeId> host_begin;  // host h spans [host_begin[h], host_begin[h+1])
  host_begin.push_back(0);
  while (host_begin.back() < p.num_nodes) {
    NodeId size = SampleHostSize(rng, p.mean_host_size);
    host_begin.push_back(std::min<NodeId>(p.num_nodes, host_begin.back() + size));
  }
  size_t num_hosts = host_begin.size() - 1;
  // A few "popular" hosts attract most cross-host links (hubs of the web).
  size_t num_popular = std::max<size_t>(1, num_hosts / 50);

  EdgeList edges;
  edges.reserve(static_cast<size_t>(p.num_nodes * p.avg_degree));
  for (size_t h = 0; h < num_hosts; ++h) {
    NodeId begin = host_begin[h];
    NodeId end = host_begin[h + 1];
    NodeId host_size = end - begin;

    // Host-shared template: the navigation boilerplate every page of the
    // host links to. A consecutive run of "menu" pages at the host start
    // (compresses into intervals) plus a few popular-host entry pages.
    std::vector<NodeId> tmpl;
    int menu = 3 + static_cast<int>(rng.Uniform(10));
    for (int i = 0; i < menu && static_cast<NodeId>(i) < host_size; ++i) {
      tmpl.push_back(begin + static_cast<NodeId>(i));
    }
    int external = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < external; ++i) {
      size_t oh = rng.Uniform(num_popular);
      tmpl.push_back(host_begin[oh]);
    }

    for (NodeId u = begin; u < end; ++u) {
      int degree = 1 + static_cast<int>(rng.Zipf(256, 1.6) * p.avg_degree / 8.0);
      int num_template = static_cast<int>(degree * p.template_fraction);
      int num_window = std::max(1, static_cast<int>(degree * p.window_fraction));
      int num_random = degree - num_template - num_window;

      for (int i = 0; i < num_template && i < static_cast<int>(tmpl.size()); ++i) {
        edges.emplace_back(u, tmpl[i]);
      }
      // Consecutive in-host window starting right after u: long intervals
      // and strong similarity between consecutive pages.
      if (host_size > 1) {
        NodeId start = u + 1 < end ? u + 1 : begin;
        for (int i = 0; i < num_window; ++i) {
          NodeId v = start + static_cast<NodeId>(i);
          if (v >= end) break;
          edges.emplace_back(u, v);
        }
      }
      for (int i = 0; i < num_random; ++i) {
        if (rng.Bernoulli(0.9) && host_size > 1) {
          // In-host link with a small zipf-distributed forward gap.
          NodeId off = static_cast<NodeId>(rng.Zipf(host_size, 1.6));
          edges.emplace_back(u, begin + (u - begin + off) % host_size);
        } else if (rng.Bernoulli(0.7)) {
          size_t oh = rng.Uniform(num_popular);  // popular host entry page
          edges.emplace_back(u, host_begin[oh]);
        } else {
          edges.emplace_back(u, static_cast<NodeId>(rng.Uniform(p.num_nodes)));
        }
      }
    }
  }

  if (p.crawl_interleave && num_hosts > 1) {
    // Crawl-order relabeling: take 4-16 page blocks from randomly chosen
    // hosts, preserving each host's internal page order.
    std::vector<NodeId> cursor(host_begin.begin(), host_begin.end() - 1);
    std::vector<size_t> live;
    for (size_t h = 0; h < num_hosts; ++h) {
      if (cursor[h] < host_begin[h + 1]) live.push_back(h);
    }
    std::vector<NodeId> perm(p.num_nodes);
    NodeId next_id = 0;
    while (!live.empty()) {
      size_t pick = rng.Uniform(live.size());
      size_t h = live[pick];
      NodeId block = 4 + static_cast<NodeId>(rng.Uniform(13));
      while (block-- > 0 && cursor[h] < host_begin[h + 1]) {
        perm[cursor[h]++] = next_id++;
      }
      if (cursor[h] >= host_begin[h + 1]) {
        live[pick] = live.back();
        live.pop_back();
      }
    }
    for (auto& [u, v] : edges) {
      u = perm[u];
      v = perm[v];
    }
  }
  return Graph::FromEdges(p.num_nodes, edges);
}

Graph GenerateSocialGraph(const SocialGraphParams& p) {
  Rng rng(p.seed);
  EdgeId target_edges = static_cast<EdgeId>(p.num_nodes * p.avg_degree);
  EdgeList edges;
  edges.reserve(target_edges);

  // Preferential attachment over an endpoint pool (Barabasi-Albert flavor)
  // with Zipf out-degrees.
  std::vector<NodeId> pool;
  pool.reserve(2 * target_edges / 16);
  for (NodeId u = 0; u < std::min<NodeId>(8, p.num_nodes); ++u) pool.push_back(u);

  for (NodeId u = 0; u < p.num_nodes; ++u) {
    int degree = static_cast<int>(rng.Zipf(10000, p.degree_alpha) *
                                  p.avg_degree / 3.0);
    degree = std::max(1, std::min(degree, static_cast<int>(p.num_nodes) / 2));
    for (int i = 0; i < degree; ++i) {
      NodeId v;
      if (!pool.empty() && rng.Bernoulli(0.75)) {
        v = pool[rng.Uniform(pool.size())];
      } else {
        v = static_cast<NodeId>(rng.Uniform(p.num_nodes));
      }
      if (v == u) continue;
      edges.emplace_back(u, v);
      if (pool.size() < 4 * target_edges / 16) {
        pool.push_back(v);
        pool.push_back(u);
      }
    }
  }

  if (p.shuffle_labels) {
    std::vector<NodeId> perm(p.num_nodes);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm);
    for (auto& [u, v] : edges) {
      u = perm[u];
      v = perm[v];
    }
  }
  return Graph::FromEdges(p.num_nodes, edges);
}

Graph GenerateTwitterGraph(const TwitterGraphParams& p) {
  Rng rng(p.seed);
  EdgeId target_edges = static_cast<EdgeId>(p.num_nodes * p.avg_degree);
  EdgeList edges;
  edges.reserve(target_edges);

  // Super-hubs: both massive in-degree (celebrities) and, for a couple of
  // them, massive out-degree (aggregators) -> extremely long residual lists.
  std::vector<NodeId> hubs;
  for (int i = 0; i < p.num_hubs; ++i) {
    hubs.push_back(static_cast<NodeId>(rng.Uniform(p.num_nodes)));
  }
  EdgeId hub_edges = static_cast<EdgeId>(target_edges * p.hub_edge_fraction);
  for (EdgeId e = 0; e < hub_edges; ++e) {
    NodeId hub = hubs[rng.Uniform(hubs.size())];
    NodeId other = static_cast<NodeId>(rng.Uniform(p.num_nodes));
    if (other == hub) continue;
    if (rng.Bernoulli(0.4)) {
      edges.emplace_back(hub, other);  // aggregator follows many
    } else {
      edges.emplace_back(other, hub);  // many follow the celebrity
    }
  }
  // Long-tail users.
  while (edges.size() < target_edges) {
    NodeId u = static_cast<NodeId>(rng.Uniform(p.num_nodes));
    int degree = static_cast<int>(rng.Zipf(3000, p.degree_alpha));
    for (int i = 0; i < degree && edges.size() < target_edges; ++i) {
      NodeId v = static_cast<NodeId>(rng.Uniform(p.num_nodes));
      if (v != u) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(p.num_nodes, edges);
}

Graph GenerateBrainGraph(const BrainGraphParams& p) {
  Rng rng(p.seed);
  const EdgeId target_edges =
      static_cast<EdgeId>(p.num_nodes * p.avg_degree);  // directed count
  NodeId community_size =
      std::max<NodeId>(2, p.num_nodes / std::max(1, p.num_communities));
  EdgeList edges;
  Graph g;
  // Duplicate samples inside dense communities are removed by FromEdges, so
  // top up the sample pool until the unique-edge target is met.
  for (int attempt = 0; attempt < 8; ++attempt) {
    EdgeId have = g.num_edges();
    if (have >= target_edges * 95 / 100) break;
    EdgeId draw = (target_edges - have) * 6 / 10 + 1024;
    for (EdgeId e = 0; e < draw; ++e) {
      NodeId u = static_cast<NodeId>(rng.Uniform(p.num_nodes));
      NodeId v;
      if (rng.Bernoulli(p.intra_fraction)) {
        NodeId c_begin = (u / community_size) * community_size;
        NodeId c_size = std::min<NodeId>(community_size, p.num_nodes - c_begin);
        v = c_begin + static_cast<NodeId>(rng.Uniform(c_size));
      } else {
        v = static_cast<NodeId>(rng.Uniform(p.num_nodes));
      }
      if (u != v) edges.emplace_back(u, v);
    }
    g = Graph::FromEdges(p.num_nodes, edges, /*symmetrize=*/true);
  }
  return g;
}

Graph GenerateErdosRenyi(NodeId num_nodes, EdgeId num_edges, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(num_nodes));
    NodeId v = static_cast<NodeId>(rng.Uniform(num_nodes));
    edges.emplace_back(u, v);
  }
  return Graph::FromEdges(num_nodes, edges);
}

Graph GenerateRmat(NodeId num_nodes_pow2, EdgeId num_edges, uint64_t seed,
                   double a, double b, double c) {
  int scale = 0;
  while ((NodeId(1) << scale) < num_nodes_pow2) ++scale;
  NodeId n = NodeId(1) << scale;
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId u = 0, v = 0;
    for (int level = 0; level < scale; ++level) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, edges);
}

Graph MakePath(NodeId n, bool undirected) {
  EdgeList edges;
  for (NodeId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return Graph::FromEdges(n, edges, undirected);
}

Graph MakeCycle(NodeId n) {
  EdgeList edges;
  for (NodeId u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return Graph::FromEdges(n, edges);
}

Graph MakeStar(NodeId leaves, bool undirected) {
  EdgeList edges;
  for (NodeId i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(leaves + 1, edges, undirected);
}

Graph MakeComplete(NodeId n) {
  EdgeList edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, edges);
}

Graph MakePaperFigure1Graph() {
  // Edge list of paper Fig. 1(b).
  EdgeList edges = {{0, 1}, {0, 3}, {0, 4}, {1, 2}, {1, 4},
                    {1, 5}, {2, 5}, {5, 6}, {5, 7}, {6, 7}};
  return Graph::FromEdges(8, edges);
}

}  // namespace gcgt
