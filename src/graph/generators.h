// Synthetic graph generators.
//
// The five paper datasets (uk-2002, uk-2007, ljournal, twitter, brain) are
// not redistributable at laptop scale, so each is replaced by a generator
// calibrated to reproduce the structural property the paper's evaluation
// attributes to it (see DESIGN.md "Substitutions"):
//   - web graphs: strong index locality (interval-rich adjacency) plus
//     template-shared out-links across pages of one host (VNC-friendly);
//   - social graphs: power-law degrees with shuffled labels (poor locality);
//   - twitter: a handful of extreme hubs dominating the edge count;
//   - brain: dense community structure with near-uniform, large degrees.
#ifndef GCGT_GRAPH_GENERATORS_H_
#define GCGT_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace gcgt {

struct WebGraphParams {
  NodeId num_nodes = 40000;
  double avg_degree = 16.0;
  /// Mean pages per host; host sizes are geometric.
  double mean_host_size = 48.0;
  /// Fraction of a page's links drawn from the host-shared template list
  /// (identical across pages of one host => virtual-node compressible).
  double template_fraction = 0.55;
  /// Fraction of links forming a consecutive in-host window (intervals).
  double window_fraction = 0.35;
  /// Relabel pages in crawl order: blocks of consecutive pages from
  /// different hosts interleave (per-host block order preserved), as a BFS
  /// crawler would discover them. This is what locality-restoring
  /// reorderings (LLP/Gorder, paper Fig. 13) later undo.
  bool crawl_interleave = true;
  uint64_t seed = 1;
};

struct SocialGraphParams {
  NodeId num_nodes = 30000;
  double avg_degree = 15.0;
  /// Zipf exponent of the out-degree distribution.
  double degree_alpha = 1.9;
  /// Shuffle node labels to destroy locality (mimics crawl order).
  bool shuffle_labels = true;
  uint64_t seed = 2;
};

struct TwitterGraphParams {
  NodeId num_nodes = 50000;
  double avg_degree = 30.0;
  /// Number of super-hubs; each receives hub_degree_fraction of all edges.
  int num_hubs = 12;
  double hub_edge_fraction = 0.35;
  double degree_alpha = 2.0;
  uint64_t seed = 3;
};

struct BrainGraphParams {
  NodeId num_nodes = 6000;
  double avg_degree = 130.0;  // scaled stand-in for the paper's 683
  int num_communities = 40;
  /// Probability an edge endpoint stays inside the community.
  double intra_fraction = 0.85;
  uint64_t seed = 4;
};

/// uk-2002 / uk-2007 style web graph.
Graph GenerateWebGraph(const WebGraphParams& p);

/// ljournal style social network.
Graph GenerateSocialGraph(const SocialGraphParams& p);

/// twitter style follower network with super-hubs.
Graph GenerateTwitterGraph(const TwitterGraphParams& p);

/// brain style dense undirected community graph.
Graph GenerateBrainGraph(const BrainGraphParams& p);

/// G(n, m) Erdos-Renyi (directed, m sampled edges before dedupe).
Graph GenerateErdosRenyi(NodeId num_nodes, EdgeId num_edges, uint64_t seed);

/// R-MAT recursive matrix graph (a=0.57,b=0.19,c=0.19 Graph500 defaults).
Graph GenerateRmat(NodeId num_nodes_pow2, EdgeId num_edges, uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

// Deterministic toy graphs for unit tests.
Graph MakePath(NodeId n, bool undirected = true);
Graph MakeCycle(NodeId n);
Graph MakeStar(NodeId leaves, bool undirected = true);
Graph MakeComplete(NodeId n);

/// The 8-node example graph of paper Fig. 1.
Graph MakePaperFigure1Graph();

}  // namespace gcgt

#endif  // GCGT_GRAPH_GENERATORS_H_
