// GcgtSession: the prepare-once / query-many facade of the library.
//
// The paper's headline claim is that compressed traversal pays off when one
// prepared graph serves many traversals. A session is built once from a
// Graph + PrepareOptions — it runs the reorder → VNC → CGR-encode pipeline
// of §7.2 and owns the prepared artifacts: the encoded CgrGraph, the
// lazily-built uncompressed/reversed variants the baseline backends and
// direction-optimizing consumers need, and ONE persistent CgrTraversalEngine
// whose warp scratch is reused across queries (zero engine constructions per
// query; CgrTraversalEngine::ConstructedCount() makes that testable).
//
// Queries are typed values (BfsQuery/CcQuery/BcQuery) submitted through
// Run() or RunBatch(); a batch amortizes frontier/label buffer allocation
// across queries, and a multi-source BcQuery accumulates every source into
// one dependency vector (the betweenness-centrality sum).
//
// The `Backend` selector routes the same query types through the simulated
// GPU baselines (GPUCSR / Gunrock on uncompressed CSR) and the serial CPU
// references, so compressed-vs-uncompressed comparisons and correctness
// cross-checks are one flag, not three codebases — the Gunrock
// problem/enactor separation (Wang et al.) with an EMOGI-style storage seam
// (Min et al.).
#ifndef GCGT_API_GCGT_SESSION_H_
#define GCGT_API_GCGT_SESSION_H_

#include <atomic>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "baseline/csr_gpu_engine.h"
#include "cgr/cgr_graph.h"
#include "core/bc.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "core/cgr_traversal.h"
#include "core/gcgt_options.h"
#include "core/trace.h"
#include "core/traversal_pipeline.h"
#include "graph/graph.h"
#include "intersect/intersect_engine.h"
#include "intersect/intersect_results.h"
#include "reorder/reorder.h"
#include "util/cancel_token.h"
#include "util/status.h"
#include "vnc/virtual_node.h"

namespace gcgt {

/// Execution backend a query is routed through. All backends answer the same
/// query types with the same result semantics; BFS depths and CC partitions
/// are identical across backends, BC doubles agree to accumulation-order
/// rounding.
enum class Backend {
  kCgrSimt,       ///< GCGT engine on the compressed graph (the paper's system)
  kCsrBaseline,   ///< GPUCSR: Merrill/Soman/Sriram kernels on uncompressed CSR
  kCsrGunrock,    ///< Gunrock-modeled CSR (extra filter kernel + memory factor)
  kCpuReference,  ///< serial CPU oracles (no simulated-GPU metrics)
};

const char* BackendName(Backend b);

/// Everything Prepare() needs to turn a raw Graph into a query-ready
/// session: the unified preprocessing of §7.2 (virtual-node compression,
/// then node reordering), the CGR encoder parameters, and the traversal
/// engine configuration shared by all backends.
struct PrepareOptions {
  /// Apply virtual-node compression before reordering.
  bool apply_vnc = false;
  VncOptions vnc;
  /// Node reordering applied to the (possibly VNC-transformed) graph.
  ReorderMethod reorder = ReorderMethod::kOriginal;
  uint64_t reorder_seed = 42;
  /// CGR encoder parameters (paper Table 2 defaults).
  CgrOptions cgr;
  /// Out-of-core tier: number of partitions to encode the graph into
  /// (CgrGraph::EncodePartitioned, sharded across the thread pool). 0 keeps
  /// the classic single-blob encode. The encoded bits are byte-identical
  /// either way; partitioning only adds the partition table that the
  /// PartitionPager pages by — but the count still participates in the
  /// artifact fingerprint, since it changes the container layout and the
  /// paging (hence metrics) of budgeted runs.
  int ooc_partitions = 0;
  /// Engine configuration: scheduling level, lanes, host threads, cost model
  /// and device budget. lanes/cost/device are shared with the CSR backends.
  GcgtOptions gcgt;
  /// Memory overhead factor of the kCsrGunrock backend.
  double gunrock_memory_factor = 2.6;
};

/// Deterministic fingerprint of (input graph, prepare options): two
/// Prepare() calls with an equal graph and equal result-affecting options
/// produce equal fingerprints. This is the identity of a prepared artifact —
/// the service registry dedups encodes on it and the cross-query result
/// cache keys on it. `gcgt.num_threads` is deliberately excluded: results
/// and metrics are bit-identical for every host thread count.
uint64_t ComputeArtifactFingerprint(const Graph& graph,
                                    const PrepareOptions& options);

/// Folds the result-affecting PrepareOptions fields into an existing hash —
/// the options half of ComputeArtifactFingerprint. Callers that already hold
/// a graph-identity hash (e.g. a container header's stored fingerprint) use
/// this to derive the registry key for a specific serving configuration
/// without re-hashing the graph.
uint64_t CombineOptionsFingerprint(uint64_t h, const PrepareOptions& options);

struct BfsQuery {
  NodeId source = 0;
};

struct CcQuery {};

struct BcQuery {
  /// Brandes sources; the per-source dependencies are accumulated into one
  /// vector (their sum over all nodes is betweenness centrality).
  std::vector<NodeId> sources;
};

// ---- Intersection-shaped query families (src/intersect): answered
// decode-free on the compressed graph by kCgrSimt, and by the same engine in
// CSR/CPU modes on the other backends. Like the traversal quantities, they
// are computed ON THE PREPARED GRAPH (§7.2 unified preprocessing): with VNC,
// triangle/k-core/similarity structure includes virtual-node edges, and tie
// ordering inside SimilarityTopKQuery uses prepared ids. All backends run the
// same prepared graph, so results stay bit-identical across backends.

/// Global + per-vertex triangle count.
struct TriangleCountQuery {};

/// Common neighbors of the unordered pair {u, v} (symmetric in u, v: a
/// serving tier caches the pair under the canonical {min, max} key).
struct CommonNeighborQuery {
  NodeId u = 0;
  NodeId v = 0;
};

/// Jaccard similarity of the unordered pair {u, v}.
struct JaccardQuery {
  NodeId u = 0;
  NodeId v = 0;
};

/// Top-k distance-2 neighbors of `source` by Jaccard similarity ("people you
/// may know"). With VNC, virtual nodes are never candidates.
struct SimilarityTopKQuery {
  NodeId source = 0;
  uint32_t k = 10;
};

/// k-core membership (iterative peel of vertices with degree < k).
struct KCoreQuery {
  uint32_t k = 2;
};

/// A typed query value. Order matches QueryKind.
using Query = std::variant<BfsQuery, CcQuery, BcQuery, TriangleCountQuery,
                           CommonNeighborQuery, JaccardQuery,
                           SimilarityTopKQuery, KCoreQuery>;

enum class QueryKind {
  kBfs = 0,
  kCc = 1,
  kBc = 2,
  kTriangle = 3,
  kCommonNeighbor = 4,
  kJaccard = 5,
  kSimilarityTopK = 6,
  kKCore = 7,
};

/// The result of one query: the matching driver result plus its metrics.
/// For a multi-source BcQuery, bc().dependency is the accumulated sum,
/// bc().metrics aggregates all sources, and bc().depth/sigma hold the last
/// source's labels.
///
/// Id space: query sources and result vectors use the CALLER's node ids —
/// the ids of the graph handed to Prepare(). The session translates across
/// its reordering permutation in both directions, and with VNC restricts
/// results to the original (real) nodes; cc().component labels are
/// canonicalized to the smallest caller id in each component. Traversal
/// *quantities* (BFS depths, BC sigma/delta, all metrics) are those of the
/// prepared graph the engines actually run on — with VNC that includes
/// virtual-node hops, exactly like the paper's unified preprocessing (§7.2).
class QueryResult {
 public:
  explicit QueryResult(GcgtBfsResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtCcResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtBcResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtTriangleResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtCommonNeighborResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtJaccardResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtSimilarityTopKResult r) : value_(std::move(r)) {}
  explicit QueryResult(GcgtKCoreResult r) : value_(std::move(r)) {}

  QueryKind kind() const { return static_cast<QueryKind>(value_.index()); }

  const GcgtBfsResult& bfs() const { return std::get<GcgtBfsResult>(value_); }
  const GcgtCcResult& cc() const { return std::get<GcgtCcResult>(value_); }
  const GcgtBcResult& bc() const { return std::get<GcgtBcResult>(value_); }
  const GcgtTriangleResult& triangle() const {
    return std::get<GcgtTriangleResult>(value_);
  }
  const GcgtCommonNeighborResult& common_neighbors() const {
    return std::get<GcgtCommonNeighborResult>(value_);
  }
  const GcgtJaccardResult& jaccard() const {
    return std::get<GcgtJaccardResult>(value_);
  }
  const GcgtSimilarityTopKResult& similarity_topk() const {
    return std::get<GcgtSimilarityTopKResult>(value_);
  }
  const GcgtKCoreResult& kcore() const {
    return std::get<GcgtKCoreResult>(value_);
  }

  const TraversalMetrics& metrics() const {
    return std::visit([](const auto& r) -> const TraversalMetrics& {
      return r.metrics;
    }, value_);
  }

  /// True when a serving tier answered this query on a FALLBACK backend
  /// after the requested backend failed (e.g. OutOfMemory on the modeled
  /// device): the result is correct for the query but was not produced by
  /// the backend asked for, and its metrics are the fallback's. Sessions
  /// never set this; GcgtService marks degraded results on the way out.
  bool degraded() const { return degraded_; }
  void MarkDegraded() { degraded_ = true; }

 private:
  friend class GcgtSession;  // result remapping into the caller's id space
  std::variant<GcgtBfsResult, GcgtCcResult, GcgtBcResult, GcgtTriangleResult,
               GcgtCommonNeighborResult, GcgtJaccardResult,
               GcgtSimilarityTopKResult, GcgtKCoreResult>
      value_;
  bool degraded_ = false;
};

struct RunOptions {
  Backend backend = Backend::kCgrSimt;
  /// Fig. 4 step-table recording; honored by kCgrSimt BFS queries only
  /// (recording forces the engine's serial path).
  StepTrace* trace = nullptr;
  /// Cooperative cancellation / deadline. kCgrSimt polls it once per
  /// traversal round (a long traversal aborts MID-flight with
  /// Status::Cancelled or Status::DeadlineExceeded); the baseline backends
  /// poll at query start and between BC sources. An aborted session stays
  /// fully usable — the next query Reset()s all per-query state.
  CancelToken cancel{};
  /// Serving-tier brownout: caps the kCgrSimt replay-cache budget for THIS
  /// query at min(prepared replay_cache_bytes, this cap); UINT64_MAX = no
  /// cap. Result labels are unchanged — only modeled replay metrics move —
  /// so GcgtService never memoizes capped runs under the artifact's
  /// canonical identity. Ignored by the baseline backends (no replay
  /// cache there).
  uint64_t replay_budget_cap = UINT64_MAX;
};

class GcgtSession {
 public:
  /// Builds a session from a raw graph: VNC (optional) → reordering
  /// (optional) → CGR encoding → persistent engine. Fails on invalid CGR
  /// options. The input graph is not retained — the session holds only the
  /// encoded CgrGraph (baseline backends rebuild the uncompressed view
  /// lazily). Queries keep speaking the input graph's node ids — the
  /// session retains the reordering permutation and translates sources and
  /// results (see QueryResult).
  static Result<GcgtSession> Prepare(const Graph& graph,
                                     const PrepareOptions& options = {});

  /// Prepare() for callers that already computed
  /// ComputeArtifactFingerprint(graph, options) — the service registry hashes
  /// the graph to dedup encodes BEFORE preparing, and this overload keeps
  /// the O(V+E) hash from running twice. `fingerprint` is trusted verbatim.
  static Result<GcgtSession> Prepare(const Graph& graph,
                                     const PrepareOptions& options,
                                     uint64_t fingerprint);

  /// Wraps an already-encoded, externally-owned CgrGraph (which must outlive
  /// the session) — the single-query-wrapper and parameter-sweep path where
  /// the encode is shared across several engine configurations. Baseline
  /// backends decode the uncompressed graph lazily on first use.
  static GcgtSession Attach(const CgrGraph& cgr,
                            const GcgtOptions& options = {});

  /// Attach with the uncompressed graph `cgr` encodes supplied up front
  /// (copied), so baseline backends skip the lazy decode — for callers that
  /// share one encode across many sessions (e.g. one per device budget).
  static GcgtSession Attach(const CgrGraph& cgr, const Graph& graph,
                            const GcgtOptions& options);

  /// Attach that takes OWNERSHIP of the encoded graph — the container-load
  /// path (ooc::CgrContainer::ToCgrGraph materializes a CgrGraph nobody else
  /// holds). The fingerprint is computed lazily like Attach's.
  static GcgtSession Adopt(std::unique_ptr<const CgrGraph> cgr,
                           const GcgtOptions& options = {});

  /// Adopt with the artifact fingerprint supplied up front (trusted
  /// verbatim) — the registry path, where the identity comes from the
  /// container header combined with the serving options and must match the
  /// registration key exactly.
  static GcgtSession Adopt(std::unique_ptr<const CgrGraph> cgr,
                           const GcgtOptions& options, uint64_t fingerprint);

  GcgtSession(GcgtSession&&) = default;
  GcgtSession& operator=(GcgtSession&&) = default;

  /// Cheap clone sharing this session's prepared artifacts: the encoded
  /// CgrGraph, the reorder permutation and any already-built uncompressed /
  /// reversed variants are shared; only the engine (+ pipeline and warp
  /// scratch) is constructed anew. This is how a serving tier multiplexes N
  /// concurrent workers over ONE encode: engines are per-session, the
  /// artifacts are immutable and shared by reference.
  ///
  /// The clone must not outlive the session it was cloned from (it borrows
  /// the encode). `num_threads_override >= 0` replaces gcgt.num_threads for
  /// the clone's engine (results are bit-identical for every value; a
  /// serving tier typically runs serial engines and parallelizes across
  /// workers instead). Thread-safe against concurrent AttachClone() calls on
  /// one source session; NOT against a concurrent Run() on it.
  GcgtSession AttachClone(int num_threads_override = -1) const;

  /// THREADING CONTRACT: a session is strictly single-caller. Run/RunBatch
  /// mutate the persistent engine's scratch, the pipeline buffers and the BC
  /// scratch, so two overlapping calls on one session race (debug builds
  /// assert). Concurrency is layered ABOVE sessions: give each thread its
  /// own AttachClone() of one prepared session (see GcgtService).
  ///
  /// Runs one query. OutOfMemory when the backend's modeled footprint
  /// exceeds the device budget; InvalidArgument on bad sources.
  Result<QueryResult> Run(const Query& query, const RunOptions& run = {});

  /// Runs the queries in order through the persistent engine, amortizing
  /// frontier/label buffer allocation across the batch. Fails on the first
  /// failing query. Single-caller, like Run().
  Result<std::vector<QueryResult>> RunBatch(std::span<const Query> queries,
                                            const RunOptions& run = {});

  /// The encoded graph every kCgrSimt query traverses.
  const CgrGraph& cgr() const { return *cgr_; }

  /// The prepared (post-VNC/reordering) uncompressed graph in PREPARED id
  /// space: what the CSR and CPU backends traverse. Decoded lazily from the
  /// (lossless) CGR encoding on first use, then cached.
  const Graph& graph() const;

  /// Number of nodes in the caller's id space — what query sources refer to
  /// and what result vectors are indexed by (the input graph's node count;
  /// virtual nodes added by VNC are excluded).
  NodeId num_query_nodes() const { return caller_nodes_; }

  /// Lazily-built reversed variant (in-edges), for direction-optimizing
  /// consumers (e.g. Ligra-style pull iterations).
  const Graph& reversed() const;

  /// The persistent engine. Its address is stable for the session's
  /// lifetime — queries never construct another one.
  const CgrTraversalEngine& engine() const { return *engine_; }

  /// Identity of the prepared artifact this session serves. Prepare()
  /// sessions: ComputeArtifactFingerprint(input graph, options). Attach()
  /// sessions: a hash of the encoded bits + engine options, computed lazily
  /// on first access (an O(encoded bytes) pass the parameter-sweep Attach
  /// callers never pay). Clones inherit the source session's fingerprint
  /// (same artifact). Single-caller, like Run().
  uint64_t artifact_fingerprint() const;

  const PrepareOptions& options() const { return options_; }

  /// VNC statistics of Prepare() (1.0 / 0 when VNC was off).
  double vnc_reduction() const { return vnc_reduction_; }
  NodeId vnc_virtual_nodes() const { return vnc_virtual_nodes_; }

 private:
  GcgtSession() = default;

  void InitEngine();
  CsrEngineOptions CsrOptions(bool gunrock) const;

  /// Caller id -> prepared id (identity when no reordering was applied).
  NodeId ToPrepared(NodeId u) const { return perm_.empty() ? u : perm_[u]; }
  bool IdentityIdSpace() const {
    return perm_.empty() && caller_nodes_ == cgr_->num_nodes();
  }
  /// Validates caller-space sources and rewrites them to prepared ids.
  Status TranslateQuery(Query& query) const;
  /// Rewrites a prepared-space result into the caller's id space.
  void RemapResult(QueryResult& result) const;

  Result<QueryResult> RunCgr(const Query& query, StepTrace* trace);
  Result<QueryResult> RunCsr(const Query& query, bool gunrock,
                             const CancelToken& cancel);
  Result<QueryResult> RunCpu(const Query& query, const CancelToken& cancel);

  /// Routes the intersection query families (kTriangle..kKCore) through the
  /// persistent per-backend IntersectEngine (constructed lazily on the first
  /// intersection query per backend; warp scratch and replay cache are then
  /// reused across queries, like the traversal engine's).
  Result<QueryResult> RunIntersect(const Query& query, Backend backend,
                                   const CancelToken& cancel,
                                   uint64_t replay_budget_cap);
  /// Prepared-space eligibility mask for similarity candidates: real nodes
  /// only (empty span = every node eligible, the no-VNC/no-reorder case).
  std::span<const uint8_t> RealMask() const;

  // Debug tripwire for the single-caller contract on Run/RunBatch: set while
  // a query is in flight; a second concurrent entry asserts. Movable so the
  // session stays movable (moving a session while a query runs is already a
  // contract violation, so the flag just resets).
  struct CallerCheck {
    std::atomic<bool> busy{false};
    CallerCheck() = default;
    CallerCheck(CallerCheck&&) noexcept {}
    CallerCheck& operator=(CallerCheck&&) noexcept { return *this; }
  };
  class RunScope;  // RAII acquire/release of busy (defined in the .cc)

  PrepareOptions options_;
  std::vector<NodeId> perm_;   // reorder permutation; empty = identity
  NodeId caller_nodes_ = 0;    // size of the caller's id space
  // Artifact identity (see artifact_fingerprint()): eager for Prepare (the
  // hash is needed up front for registry dedup anyway), lazy for Attach.
  mutable uint64_t fingerprint_ = 0;
  mutable bool has_fingerprint_ = false;
  std::unique_ptr<const CgrGraph> owned_cgr_;  // null for Attach sessions
  const CgrGraph* cgr_ = nullptr;              // never null once built
  // Lazy for Attach sessions; shared (immutable once built) so AttachClone
  // workers reuse one decode instead of one per engine.
  mutable std::shared_ptr<const Graph> graph_;
  mutable std::shared_ptr<const Graph> reversed_;
  std::unique_ptr<CgrTraversalEngine> engine_;
  std::unique_ptr<TraversalPipeline> pipeline_;  // borrows *engine_
  BcBatchScratch bc_scratch_;  // reused across BC sources and queries
  // Lazy persistent intersection engines, one per backend actually used
  // (kCpuReference needs none). Per-session like engine_, never shared.
  std::unique_ptr<intersect::IntersectEngine> isect_cgr_;
  std::unique_ptr<intersect::IntersectEngine> isect_csr_;
  std::unique_ptr<intersect::IntersectEngine> isect_gunrock_;
  mutable std::vector<uint8_t> real_mask_;  // lazy, see RealMask()
  double vnc_reduction_ = 1.0;
  NodeId vnc_virtual_nodes_ = 0;
  CallerCheck busy_;
};

}  // namespace gcgt

#endif  // GCGT_API_GCGT_SESSION_H_
