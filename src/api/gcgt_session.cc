#include "api/gcgt_session.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "baseline/cpu_bfs.h"
#include "baseline/cpu_reference.h"
#include "cgr/cgr_decoder.h"
#include "util/random.h"

namespace gcgt {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return Mix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

uint64_t HashCombine(uint64_t h, double v) {
  return HashCombine(h, std::bit_cast<uint64_t>(v));
}

/// The result-affecting PrepareOptions fields. num_threads is excluded
/// (results and metrics are bit-identical across host thread counts);
/// everything else — preprocessing, codec, scheduling level, cost model,
/// device budget — changes either result vectors or cached metrics.
uint64_t HashOptions(uint64_t h, const PrepareOptions& o) {
  h = HashCombine(h, static_cast<uint64_t>(o.apply_vnc));
  h = HashCombine(h, static_cast<uint64_t>(o.vnc.min_cluster_size));
  h = HashCombine(h, static_cast<uint64_t>(o.vnc.min_pattern_size));
  h = HashCombine(h, static_cast<uint64_t>(o.vnc.num_passes));
  h = HashCombine(h, o.vnc.seed);
  h = HashCombine(h, static_cast<uint64_t>(o.reorder));
  h = HashCombine(h, o.reorder_seed);
  h = HashCombine(h, static_cast<uint64_t>(o.cgr.codec));
  h = HashCombine(h, static_cast<uint64_t>(o.cgr.scheme));
  h = HashCombine(h, static_cast<uint64_t>(o.cgr.min_interval_len));
  h = HashCombine(h, static_cast<uint64_t>(o.cgr.segment_len_bytes));
  h = HashCombine(h, static_cast<uint64_t>(o.ooc_partitions));
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.level));
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.lanes));
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.warp_centric_min_residuals));
  h = HashCombine(h, o.gcgt.replay_cache_bytes);
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.replay_min_degree));
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.replay_min_touches));
  h = HashCombine(h, o.gcgt.ooc_resident_bytes);
  h = HashCombine(h, o.gcgt.cost.cycles_per_step);
  h = HashCombine(h, o.gcgt.cost.cycles_per_decode_step);
  h = HashCombine(h, o.gcgt.cost.cycles_per_append_step);
  h = HashCombine(h, o.gcgt.cost.cycles_per_shared_op);
  h = HashCombine(h, o.gcgt.cost.cycles_per_mem_txn);
  h = HashCombine(h, o.gcgt.cost.cycles_per_atomic);
  h = HashCombine(h, o.gcgt.cost.cycles_per_replay_txn);
  h = HashCombine(h, o.gcgt.cost.cycles_per_intersect_op);
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.intersect_full_decode));
  h = HashCombine(h, o.gcgt.cost.external_latency_multiplier);
  h = HashCombine(h, o.gcgt.cost.kernel_launch_cycles);
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.cost.cache_line_bytes));
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.cost.num_sms));
  h = HashCombine(h, static_cast<uint64_t>(o.gcgt.cost.warps_per_sm));
  h = HashCombine(h, o.gcgt.cost.clock_ghz);
  h = HashCombine(h, o.gcgt.device.memory_bytes);
  h = HashCombine(h, o.gunrock_memory_factor);
  return h;
}

}  // namespace

uint64_t CombineOptionsFingerprint(uint64_t h, const PrepareOptions& options) {
  return HashOptions(h, options);
}

uint64_t ComputeArtifactFingerprint(const Graph& graph,
                                    const PrepareOptions& options) {
  uint64_t h = 0x6763677466707631ULL;  // "gcgtfpv1"
  h = HashCombine(h, static_cast<uint64_t>(graph.num_nodes()));
  for (EdgeId off : graph.offsets()) h = HashCombine(h, uint64_t{off});
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.Neighbors(u)) h = HashCombine(h, uint64_t{v});
  }
#ifndef NDEBUG
  // The codec id must be fingerprint-affecting: artifacts differing only in
  // codec have different encoded bits and must never dedup onto one registry
  // slot or serve each other's cached results.
  PrepareOptions alt = options;
  alt.cgr.codec = options.cgr.codec == CodecId::kCgr ? CodecId::kStreamVByte
                                                     : CodecId::kCgr;
  assert(HashOptions(h, options) != HashOptions(h, alt));
#endif
  return HashOptions(h, options);
}

/// RAII enforcement of the single-caller contract: trips a debug assert when
/// two Run/RunBatch calls overlap on one session. Free in release builds.
class GcgtSession::RunScope {
 public:
  explicit RunScope([[maybe_unused]] CallerCheck& check)
#ifndef NDEBUG
      : check_(&check) {
    const bool was_busy = check_->busy.exchange(true, std::memory_order_acquire);
    assert(!was_busy &&
           "GcgtSession::Run/RunBatch is single-caller: overlapping queries "
           "on one session race on the engine scratch. Use per-thread "
           "AttachClone() sessions (see GcgtService).");
  }
  ~RunScope() { check_->busy.store(false, std::memory_order_release); }

 private:
  CallerCheck* check_;
#else
  {
  }
#endif
};

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kCgrSimt: return "GCGT";
    case Backend::kCsrBaseline: return "GPUCSR";
    case Backend::kCsrGunrock: return "Gunrock";
    case Backend::kCpuReference: return "CPU";
  }
  return "?";
}

Result<GcgtSession> GcgtSession::Prepare(const Graph& graph,
                                         const PrepareOptions& options) {
  return Prepare(graph, options, ComputeArtifactFingerprint(graph, options));
}

Result<GcgtSession> GcgtSession::Prepare(const Graph& graph,
                                         const PrepareOptions& options,
                                         uint64_t fingerprint) {
  if (Status s = options.cgr.Validate(); !s.ok()) return s;

  GcgtSession session;
  session.options_ = options;
  session.fingerprint_ = fingerprint;
  session.has_fingerprint_ = true;

  session.caller_nodes_ = graph.num_nodes();
  Graph prepared;
  if (options.apply_vnc) {
    VncResult vnc = VirtualNodeCompress(graph, options.vnc);
    session.vnc_reduction_ = vnc.EdgeReduction();
    session.vnc_virtual_nodes_ = vnc.num_virtual_nodes();
    prepared = std::move(vnc.graph);
  } else {
    prepared = graph;
  }
  if (options.reorder != ReorderMethod::kOriginal) {
    // Keep the permutation: queries stay in the caller's id space and the
    // session translates sources/results across it.
    session.perm_ =
        ComputeOrdering(prepared, options.reorder, options.reorder_seed);
    prepared = prepared.Relabeled(session.perm_);
  }

  if (options.ooc_partitions < 0) {
    return Status::InvalidArgument("ooc_partitions must be >= 0");
  }
  auto cgr = options.ooc_partitions > 0
                 ? CgrGraph::EncodePartitioned(prepared, options.cgr,
                                               options.ooc_partitions,
                                               options.gcgt.num_threads)
                 : CgrGraph::Encode(prepared, options.cgr);
  if (!cgr.ok()) return cgr.status();

  // The uncompressed `prepared` copy is NOT retained: a session serving only
  // compressed (kCgrSimt) queries holds nothing but the CgrGraph, and the
  // baseline backends rebuild the CSR losslessly on first use via graph().
  session.owned_cgr_ =
      std::make_unique<const CgrGraph>(std::move(cgr.value()));
  session.cgr_ = session.owned_cgr_.get();
  session.InitEngine();
  return session;
}

GcgtSession GcgtSession::Attach(const CgrGraph& cgr,
                                const GcgtOptions& options) {
  GcgtSession session;
  session.options_.gcgt = options;
  session.options_.cgr = cgr.options();
  session.cgr_ = &cgr;
  session.caller_nodes_ = cgr.num_nodes();
  // The fingerprint stays lazy (see artifact_fingerprint): parameter sweeps
  // Attach once per engine variant and never ask for it.
  session.InitEngine();
  return session;
}

uint64_t GcgtSession::artifact_fingerprint() const {
  if (!has_fingerprint_) {
    // Attach has no input graph to fingerprint; hash the encode itself (the
    // bits pin graph + codec) plus the result-affecting engine options.
    uint64_t h = 0x6763677466707632ULL;  // "gcgtfpv2"
    h = HashCombine(h, cgr_->total_bits());
    for (uint8_t byte : cgr_->bits()) h = HashCombine(h, uint64_t{byte});
    // The partition plan must be identity-affecting: P=4 and P=8 encodes of
    // one graph have IDENTICAL bits (EncodePartitioned reproduces the serial
    // layout) but page differently under a budget, so their metrics differ.
    for (const CgrPartition& p : cgr_->partitions()) {
      h = HashCombine(h, (uint64_t{p.node_begin} << 32) | p.node_end);
    }
    PrepareOptions fp_opt;
    fp_opt.gcgt = options_.gcgt;
    fp_opt.cgr = cgr_->options();
    fp_opt.ooc_partitions = static_cast<int>(cgr_->partitions().size());
    fingerprint_ = HashOptions(h, fp_opt);
    has_fingerprint_ = true;
  }
  return fingerprint_;
}

GcgtSession GcgtSession::Attach(const CgrGraph& cgr, const Graph& graph,
                                const GcgtOptions& options) {
  GcgtSession session = Attach(cgr, options);
  session.graph_ = std::make_shared<const Graph>(graph);
  return session;
}

GcgtSession GcgtSession::Adopt(std::unique_ptr<const CgrGraph> cgr,
                               const GcgtOptions& options) {
  GcgtSession session = Attach(*cgr, options);
  session.owned_cgr_ = std::move(cgr);
  return session;
}

GcgtSession GcgtSession::Adopt(std::unique_ptr<const CgrGraph> cgr,
                               const GcgtOptions& options,
                               uint64_t fingerprint) {
  GcgtSession session = Adopt(std::move(cgr), options);
  session.fingerprint_ = fingerprint;
  session.has_fingerprint_ = true;
  return session;
}

GcgtSession GcgtSession::AttachClone(int num_threads_override) const {
  GcgtSession clone;
  clone.options_ = options_;
  if (num_threads_override >= 0) {
    clone.options_.gcgt.num_threads = num_threads_override;
  }
  clone.perm_ = perm_;
  clone.caller_nodes_ = caller_nodes_;
  clone.fingerprint_ = fingerprint_;
  clone.has_fingerprint_ = has_fingerprint_;
  clone.cgr_ = cgr_;  // borrowed: the clone must not outlive *this
  clone.graph_ = graph_;        // shared if already built, else lazy per clone
  clone.reversed_ = reversed_;
  clone.vnc_reduction_ = vnc_reduction_;
  clone.vnc_virtual_nodes_ = vnc_virtual_nodes_;
  clone.InitEngine();
  return clone;
}

void GcgtSession::InitEngine() {
  engine_ = std::make_unique<CgrTraversalEngine>(*cgr_, options_.gcgt);
  pipeline_ = std::make_unique<TraversalPipeline>(*engine_);
}

const Graph& GcgtSession::graph() const {
  if (!graph_) {
    // Rebuild the uncompressed CSR from the codec (the CGR encoding is
    // lossless); cached for the session's lifetime.
    EdgeList edges;
    edges.reserve(cgr_->num_edges());
    for (NodeId u = 0; u < cgr_->num_nodes(); ++u) {
      for (NodeId v : DecodeAdjacency(*cgr_, u)) edges.emplace_back(u, v);
    }
    graph_ = std::make_shared<const Graph>(
        Graph::FromEdges(cgr_->num_nodes(), edges));
  }
  return *graph_;
}

const Graph& GcgtSession::reversed() const {
  if (!reversed_) reversed_ = std::make_shared<const Graph>(graph().Reversed());
  return *reversed_;
}

CsrEngineOptions GcgtSession::CsrOptions(bool gunrock) const {
  CsrEngineOptions o;
  o.lanes = options_.gcgt.lanes;
  o.cost = options_.gcgt.cost;
  o.device = options_.gcgt.device;
  o.gunrock = gunrock;
  o.gunrock_memory_factor = options_.gunrock_memory_factor;
  return o;
}

Status GcgtSession::TranslateQuery(Query& query) const {
  if (auto* bfs = std::get_if<BfsQuery>(&query)) {
    if (bfs->source >= caller_nodes_) {
      return Status::InvalidArgument("BFS source out of range");
    }
    bfs->source = ToPrepared(bfs->source);
    return Status::OK();
  }
  if (auto* bc = std::get_if<BcQuery>(&query)) {
    if (bc->sources.empty()) {
      return Status::InvalidArgument("BC query needs at least one source");
    }
    for (NodeId& s : bc->sources) {
      if (s >= caller_nodes_) {
        return Status::InvalidArgument("BC source out of range");
      }
      s = ToPrepared(s);
    }
    return Status::OK();
  }
  if (auto* cn = std::get_if<CommonNeighborQuery>(&query)) {
    if (cn->u >= caller_nodes_ || cn->v >= caller_nodes_) {
      return Status::InvalidArgument("common-neighbor endpoint out of range");
    }
    cn->u = ToPrepared(cn->u);
    cn->v = ToPrepared(cn->v);
    return Status::OK();
  }
  if (auto* jc = std::get_if<JaccardQuery>(&query)) {
    if (jc->u >= caller_nodes_ || jc->v >= caller_nodes_) {
      return Status::InvalidArgument("Jaccard endpoint out of range");
    }
    jc->u = ToPrepared(jc->u);
    jc->v = ToPrepared(jc->v);
    return Status::OK();
  }
  if (auto* topk = std::get_if<SimilarityTopKQuery>(&query)) {
    if (topk->source >= caller_nodes_) {
      return Status::InvalidArgument("similarity source out of range");
    }
    topk->source = ToPrepared(topk->source);
  }
  // TriangleCountQuery / KCoreQuery carry no node ids.
  return Status::OK();
}

void GcgtSession::RemapResult(QueryResult& result) const {
  if (IdentityIdSpace()) return;

  // label_out[u] = label_prepared[ToPrepared(u)], truncated to real nodes.
  auto remap = [&](auto& labels) {
    std::remove_reference_t<decltype(labels)> out(caller_nodes_);
    for (NodeId u = 0; u < caller_nodes_; ++u) out[u] = labels[ToPrepared(u)];
    labels = std::move(out);
  };

  if (auto* bfs = std::get_if<GcgtBfsResult>(&result.value_)) {
    remap(bfs->depth);
    return;
  }
  if (auto* bc = std::get_if<GcgtBcResult>(&result.value_)) {
    remap(bc->dependency);
    remap(bc->depth);
    remap(bc->sigma);
    return;
  }
  if (auto* cc = std::get_if<GcgtCcResult>(&result.value_)) {
    // CC: component labels are node ids; canonicalize each component to the
    // smallest caller id it contains (virtual nodes fold into the components
    // they connect, so the partition over real nodes is preserved).
    std::vector<NodeId> canonical(cgr_->num_nodes(), kInvalidNode);
    std::vector<NodeId> out(caller_nodes_);
    for (NodeId u = 0; u < caller_nodes_; ++u) {
      NodeId rep = cc->component[ToPrepared(u)];
      if (canonical[rep] == kInvalidNode) canonical[rep] = u;  // u ascends: min
      out[u] = canonical[rep];
    }
    cc->component = std::move(out);
    return;
  }
  if (auto* tri = std::get_if<GcgtTriangleResult>(&result.value_)) {
    // The global count stays that of the prepared graph (§7.2 semantics);
    // the per-vertex credits are restricted to real nodes.
    remap(tri->per_vertex);
    return;
  }
  if (auto* cn = std::get_if<GcgtCommonNeighborResult>(&result.value_)) {
    // Membership scan in ascending CALLER order: drops virtual nodes and
    // returns a sorted caller-space list.
    std::vector<uint8_t> member(cgr_->num_nodes(), 0);
    for (NodeId c : cn->common) member[c] = 1;
    std::vector<NodeId> out;
    out.reserve(cn->common.size());
    for (NodeId u = 0; u < caller_nodes_; ++u) {
      if (member[ToPrepared(u)]) out.push_back(u);
    }
    cn->common = std::move(out);
    cn->count = cn->common.size();
    return;
  }
  if (std::holds_alternative<GcgtJaccardResult>(result.value_)) {
    return;  // scalar scores; no node ids to remap
  }
  if (auto* topk = std::get_if<GcgtSimilarityTopKResult>(&result.value_)) {
    // Candidates were masked to real nodes by the engine; translate each id.
    // Score ordering (computed over prepared ids) is preserved.
    std::vector<NodeId> inv(cgr_->num_nodes(), kInvalidNode);
    for (NodeId u = 0; u < caller_nodes_; ++u) inv[ToPrepared(u)] = u;
    for (auto& item : topk->items) item.node = inv[item.node];
    return;
  }
  auto& kcore = std::get<GcgtKCoreResult>(result.value_);
  remap(kcore.in_core);
  kcore.core_size = static_cast<NodeId>(
      std::count(kcore.in_core.begin(), kcore.in_core.end(), uint8_t{1}));
}

Result<QueryResult> GcgtSession::Run(const Query& query,
                                     const RunOptions& run) {
  RunScope single_caller(busy_);  // see the threading contract on Run()
  Query translated = query;
  if (Status s = TranslateQuery(translated); !s.ok()) return s;

  // The intersection query families bypass the traversal pipeline entirely:
  // they run on the per-backend IntersectEngine, which does its own cancel
  // polling, replay brownout and device-footprint admission.
  if (translated.index() >= static_cast<size_t>(QueryKind::kTriangle)) {
    Result<QueryResult> result = RunIntersect(translated, run.backend,
                                              run.cancel,
                                              run.replay_budget_cap);
    if (!result.ok()) return result;
    RemapResult(result.value());
    return result;
  }

  // Install this query's token (the default token clears a previous one);
  // the pipeline polls it once per traversal round, so kCgrSimt queries
  // abort mid-flight. An aborted query leaves only per-query state behind —
  // the next query's Reset() clears it, keeping the session reusable.
  pipeline_->SetCancelToken(run.cancel);

  // Brownout plumb-through: apply (or clear, for the default UINT64_MAX)
  // this query's replay-budget cap before the pipeline Reset()s the cache.
  // Cheap no-op for sessions whose artifacts have no replay budget.
  engine_->SetReplayBudgetCap(run.replay_budget_cap);

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (run.backend) {
      case Backend::kCgrSimt: return RunCgr(translated, run.trace);
      case Backend::kCsrBaseline:
        return RunCsr(translated, /*gunrock=*/false, run.cancel);
      case Backend::kCsrGunrock:
        return RunCsr(translated, /*gunrock=*/true, run.cancel);
      case Backend::kCpuReference: return RunCpu(translated, run.cancel);
    }
    return Status::InvalidArgument("unknown backend");
  }();
  if (!result.ok()) return result;
  RemapResult(result.value());
  return result;
}

Result<std::vector<QueryResult>> GcgtSession::RunBatch(
    std::span<const Query> queries, const RunOptions& run) {
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (const Query& query : queries) {
    auto result = Run(query, run);
    if (!result.ok()) return result.status();
    out.push_back(std::move(result.value()));
  }
  return out;
}

namespace {

/// Folds per-source metrics of a multi-source BC into one aggregate.
void AccumulateMetrics(TraversalMetrics& total, const TraversalMetrics& one) {
  total.model_ms += one.model_ms;
  total.kernels += one.kernels;
  total.device_bytes = std::max(total.device_bytes, one.device_bytes);
  total.resident_bytes_peak =
      std::max(total.resident_bytes_peak, one.resident_bytes_peak);
  total.warp += one.warp;
}

/// Shared multi-source BC accumulation of the baseline backends:
/// dependency sums across sources, depth/sigma keep the last source's
/// labels, metrics aggregate. `run_source`: NodeId -> Result<GcgtBcResult>.
template <typename RunSource>
Result<QueryResult> AccumulateBcSources(const BcQuery& bc, NodeId num_nodes,
                                        RunSource&& run_source) {
  GcgtBcResult total;
  total.dependency.assign(num_nodes, 0.0);
  for (NodeId source : bc.sources) {
    Result<GcgtBcResult> r = run_source(source);
    if (!r.ok()) return r.status();
    GcgtBcResult one = std::move(r.value());
    for (NodeId i = 0; i < num_nodes; ++i) {
      total.dependency[i] += one.dependency[i];
    }
    total.depth = std::move(one.depth);
    total.sigma = std::move(one.sigma);
    AccumulateMetrics(total.metrics, one.metrics);
  }
  return QueryResult(std::move(total));
}

}  // namespace

Result<QueryResult> GcgtSession::RunCgr(const Query& query, StepTrace* trace) {
  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    auto r = GcgtBfs(*pipeline_, bfs->source, trace);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }
  if (std::holds_alternative<CcQuery>(query)) {
    auto r = GcgtCc(*pipeline_);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }

  // Sources were validated and translated by Run().
  const auto& bc = std::get<BcQuery>(query);
  const uint64_t v = cgr_->num_nodes();
  pipeline_->Reset();
  if (Status s = pipeline_->ReserveDevice(BcAuxBytes(v), "GCGT BC"); !s.ok()) {
    return s;
  }
  GcgtBcResult result;
  result.dependency.assign(v, 0.0);
  for (NodeId source : bc.sources) {
    if (Status s = GcgtBcAccumulate(*pipeline_, source, bc_scratch_,
                                    result.dependency);
        !s.ok()) {
      return s;
    }
  }
  result.depth = bc_scratch_.depth;
  result.sigma = bc_scratch_.sigma;
  result.metrics = pipeline_->Metrics();
  return QueryResult(std::move(result));
}

std::span<const uint8_t> GcgtSession::RealMask() const {
  if (IdentityIdSpace()) return {};  // every prepared node is a caller node
  if (real_mask_.empty()) {
    real_mask_.assign(cgr_->num_nodes(), 0);
    for (NodeId u = 0; u < caller_nodes_; ++u) real_mask_[ToPrepared(u)] = 1;
  }
  return real_mask_;
}

Result<QueryResult> GcgtSession::RunIntersect(const Query& query,
                                              Backend backend,
                                              const CancelToken& cancel,
                                              uint64_t replay_budget_cap) {
  using intersect::IntersectEngine;

  if (backend == Backend::kCpuReference) {
    GCGT_RETURN_NOT_OK(cancel.Check());
    const Graph& g = graph();
    if (std::holds_alternative<TriangleCountQuery>(query)) {
      return QueryResult(intersect::CpuTriangleCount(g));
    }
    if (const auto* cn = std::get_if<CommonNeighborQuery>(&query)) {
      return QueryResult(intersect::CpuCommonNeighbors(g, cn->u, cn->v));
    }
    if (const auto* jc = std::get_if<JaccardQuery>(&query)) {
      return QueryResult(intersect::CpuJaccard(g, jc->u, jc->v));
    }
    if (const auto* topk = std::get_if<SimilarityTopKQuery>(&query)) {
      return QueryResult(
          intersect::CpuSimilarityTopK(g, topk->source, topk->k, RealMask()));
    }
    const auto& kc = std::get<KCoreQuery>(query);
    return QueryResult(intersect::CpuKCore(g, kc.k));
  }

  IntersectEngine* eng = nullptr;
  switch (backend) {
    case Backend::kCgrSimt:
      if (!isect_cgr_) {
        isect_cgr_ = std::make_unique<IntersectEngine>(*cgr_, options_.gcgt);
      }
      eng = isect_cgr_.get();
      break;
    case Backend::kCsrBaseline:
      if (!isect_csr_) {
        isect_csr_ = std::make_unique<IntersectEngine>(
            graph(), options_.gcgt, /*gunrock=*/false, 1.0);
      }
      eng = isect_csr_.get();
      break;
    case Backend::kCsrGunrock:
      if (!isect_gunrock_) {
        isect_gunrock_ = std::make_unique<IntersectEngine>(
            graph(), options_.gcgt, /*gunrock=*/true,
            options_.gunrock_memory_factor);
      }
      eng = isect_gunrock_.get();
      break;
    case Backend::kCpuReference:
      break;  // handled above
  }
  if (eng == nullptr) return Status::InvalidArgument("unknown backend");
  eng->SetReplayBudgetCap(replay_budget_cap);

  auto wrap = [](auto r) -> Result<QueryResult> {
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  };
  if (std::holds_alternative<TriangleCountQuery>(query)) {
    return wrap(eng->TriangleCount(cancel));
  }
  if (const auto* cn = std::get_if<CommonNeighborQuery>(&query)) {
    return wrap(eng->CommonNeighbors(cn->u, cn->v, cancel));
  }
  if (const auto* jc = std::get_if<JaccardQuery>(&query)) {
    return wrap(eng->Jaccard(jc->u, jc->v, cancel));
  }
  if (const auto* topk = std::get_if<SimilarityTopKQuery>(&query)) {
    return wrap(eng->SimilarityTopK(topk->source, topk->k, RealMask(), cancel));
  }
  const auto& kc = std::get<KCoreQuery>(query);
  return wrap(eng->KCore(kc.k, cancel));
}

Result<QueryResult> GcgtSession::RunCsr(const Query& query, bool gunrock,
                                        const CancelToken& cancel) {
  GCGT_RETURN_NOT_OK(cancel.Check());
  const Graph& g = graph();
  const CsrEngineOptions opt = CsrOptions(gunrock);

  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    auto r = CsrBfs(g, bfs->source, opt);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }
  if (std::holds_alternative<CcQuery>(query)) {
    auto r = CsrCc(g, opt);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }

  const auto& bc = std::get<BcQuery>(query);
  return AccumulateBcSources(bc, g.num_nodes(),
                             [&](NodeId source) -> Result<GcgtBcResult> {
                               if (Status s = cancel.Check(); !s.ok()) return s;
                               return CsrBc(g, source, opt);
                             });
}

Result<QueryResult> GcgtSession::RunCpu(const Query& query,
                                        const CancelToken& cancel) {
  GCGT_RETURN_NOT_OK(cancel.Check());
  const Graph& g = graph();

  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    GcgtBfsResult r;
    r.depth = SerialBfs(g, bfs->source);  // kBfsUnreached == kUnvisited
    return QueryResult(std::move(r));
  }
  if (std::holds_alternative<CcQuery>(query)) {
    GcgtCcResult r;
    r.component = SerialCc(g);
    return QueryResult(std::move(r));
  }

  const auto& bc = std::get<BcQuery>(query);
  return AccumulateBcSources(
      bc, g.num_nodes(), [&](NodeId source) -> Result<GcgtBcResult> {
        if (Status s = cancel.Check(); !s.ok()) return s;
        SerialBcResult r = SerialBc(g, source);
        GcgtBcResult one;  // no simulated device: metrics stay zero
        one.dependency = std::move(r.dependency);
        one.depth = std::move(r.depth);
        one.sigma = std::move(r.sigma);
        return one;
      });
}

}  // namespace gcgt
