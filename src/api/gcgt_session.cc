#include "api/gcgt_session.h"

#include <algorithm>
#include <utility>

#include "baseline/cpu_bfs.h"
#include "baseline/cpu_reference.h"
#include "cgr/cgr_decoder.h"

namespace gcgt {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kCgrSimt: return "GCGT";
    case Backend::kCsrBaseline: return "GPUCSR";
    case Backend::kCsrGunrock: return "Gunrock";
    case Backend::kCpuReference: return "CPU";
  }
  return "?";
}

Result<GcgtSession> GcgtSession::Prepare(const Graph& graph,
                                         const PrepareOptions& options) {
  if (Status s = options.cgr.Validate(); !s.ok()) return s;

  GcgtSession session;
  session.options_ = options;

  session.caller_nodes_ = graph.num_nodes();
  Graph prepared;
  if (options.apply_vnc) {
    VncResult vnc = VirtualNodeCompress(graph, options.vnc);
    session.vnc_reduction_ = vnc.EdgeReduction();
    session.vnc_virtual_nodes_ = vnc.num_virtual_nodes();
    prepared = std::move(vnc.graph);
  } else {
    prepared = graph;
  }
  if (options.reorder != ReorderMethod::kOriginal) {
    // Keep the permutation: queries stay in the caller's id space and the
    // session translates sources/results across it.
    session.perm_ =
        ComputeOrdering(prepared, options.reorder, options.reorder_seed);
    prepared = prepared.Relabeled(session.perm_);
  }

  auto cgr = CgrGraph::Encode(prepared, options.cgr);
  if (!cgr.ok()) return cgr.status();

  // The uncompressed `prepared` copy is NOT retained: a session serving only
  // compressed (kCgrSimt) queries holds nothing but the CgrGraph, and the
  // baseline backends rebuild the CSR losslessly on first use via graph().
  session.owned_cgr_ =
      std::make_unique<const CgrGraph>(std::move(cgr.value()));
  session.cgr_ = session.owned_cgr_.get();
  session.InitEngine();
  return session;
}

GcgtSession GcgtSession::Attach(const CgrGraph& cgr,
                                const GcgtOptions& options) {
  GcgtSession session;
  session.options_.gcgt = options;
  session.options_.cgr = cgr.options();
  session.cgr_ = &cgr;
  session.caller_nodes_ = cgr.num_nodes();
  session.InitEngine();
  return session;
}

GcgtSession GcgtSession::Attach(const CgrGraph& cgr, const Graph& graph,
                                const GcgtOptions& options) {
  GcgtSession session = Attach(cgr, options);
  session.graph_ = std::make_unique<Graph>(graph);
  return session;
}

void GcgtSession::InitEngine() {
  engine_ = std::make_unique<CgrTraversalEngine>(*cgr_, options_.gcgt);
  pipeline_ = std::make_unique<TraversalPipeline>(*engine_);
}

const Graph& GcgtSession::graph() const {
  if (!graph_) {
    // Rebuild the uncompressed CSR from the codec (the CGR encoding is
    // lossless); cached for the session's lifetime.
    EdgeList edges;
    edges.reserve(cgr_->num_edges());
    for (NodeId u = 0; u < cgr_->num_nodes(); ++u) {
      for (NodeId v : DecodeAdjacency(*cgr_, u)) edges.emplace_back(u, v);
    }
    graph_ = std::make_unique<Graph>(
        Graph::FromEdges(cgr_->num_nodes(), edges));
  }
  return *graph_;
}

const Graph& GcgtSession::reversed() const {
  if (!reversed_) reversed_ = std::make_unique<Graph>(graph().Reversed());
  return *reversed_;
}

CsrEngineOptions GcgtSession::CsrOptions(bool gunrock) const {
  CsrEngineOptions o;
  o.lanes = options_.gcgt.lanes;
  o.cost = options_.gcgt.cost;
  o.device = options_.gcgt.device;
  o.gunrock = gunrock;
  o.gunrock_memory_factor = options_.gunrock_memory_factor;
  return o;
}

Status GcgtSession::TranslateQuery(Query& query) const {
  if (auto* bfs = std::get_if<BfsQuery>(&query)) {
    if (bfs->source >= caller_nodes_) {
      return Status::InvalidArgument("BFS source out of range");
    }
    bfs->source = ToPrepared(bfs->source);
    return Status::OK();
  }
  if (auto* bc = std::get_if<BcQuery>(&query)) {
    if (bc->sources.empty()) {
      return Status::InvalidArgument("BC query needs at least one source");
    }
    for (NodeId& s : bc->sources) {
      if (s >= caller_nodes_) {
        return Status::InvalidArgument("BC source out of range");
      }
      s = ToPrepared(s);
    }
  }
  return Status::OK();
}

void GcgtSession::RemapResult(QueryResult& result) const {
  if (IdentityIdSpace()) return;

  // label_out[u] = label_prepared[ToPrepared(u)], truncated to real nodes.
  auto remap = [&](auto& labels) {
    std::remove_reference_t<decltype(labels)> out(caller_nodes_);
    for (NodeId u = 0; u < caller_nodes_; ++u) out[u] = labels[ToPrepared(u)];
    labels = std::move(out);
  };

  if (auto* bfs = std::get_if<GcgtBfsResult>(&result.value_)) {
    remap(bfs->depth);
    return;
  }
  if (auto* bc = std::get_if<GcgtBcResult>(&result.value_)) {
    remap(bc->dependency);
    remap(bc->depth);
    remap(bc->sigma);
    return;
  }
  // CC: component labels are node ids; canonicalize each component to the
  // smallest caller id it contains (virtual nodes fold into the components
  // they connect, so the partition over real nodes is preserved).
  auto& cc = std::get<GcgtCcResult>(result.value_);
  std::vector<NodeId> canonical(cgr_->num_nodes(), kInvalidNode);
  std::vector<NodeId> out(caller_nodes_);
  for (NodeId u = 0; u < caller_nodes_; ++u) {
    NodeId rep = cc.component[ToPrepared(u)];
    if (canonical[rep] == kInvalidNode) canonical[rep] = u;  // u ascends: min
    out[u] = canonical[rep];
  }
  cc.component = std::move(out);
}

Result<QueryResult> GcgtSession::Run(const Query& query,
                                     const RunOptions& run) {
  Query translated = query;
  if (Status s = TranslateQuery(translated); !s.ok()) return s;

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (run.backend) {
      case Backend::kCgrSimt: return RunCgr(translated, run.trace);
      case Backend::kCsrBaseline: return RunCsr(translated, /*gunrock=*/false);
      case Backend::kCsrGunrock: return RunCsr(translated, /*gunrock=*/true);
      case Backend::kCpuReference: return RunCpu(translated);
    }
    return Status::InvalidArgument("unknown backend");
  }();
  if (!result.ok()) return result;
  RemapResult(result.value());
  return result;
}

Result<std::vector<QueryResult>> GcgtSession::RunBatch(
    std::span<const Query> queries, const RunOptions& run) {
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (const Query& query : queries) {
    auto result = Run(query, run);
    if (!result.ok()) return result.status();
    out.push_back(std::move(result.value()));
  }
  return out;
}

namespace {

/// Folds per-source metrics of a multi-source BC into one aggregate.
void AccumulateMetrics(TraversalMetrics& total, const TraversalMetrics& one) {
  total.model_ms += one.model_ms;
  total.kernels += one.kernels;
  total.device_bytes = std::max(total.device_bytes, one.device_bytes);
  total.warp += one.warp;
}

/// Shared multi-source BC accumulation of the baseline backends:
/// dependency sums across sources, depth/sigma keep the last source's
/// labels, metrics aggregate. `run_source`: NodeId -> Result<GcgtBcResult>.
template <typename RunSource>
Result<QueryResult> AccumulateBcSources(const BcQuery& bc, NodeId num_nodes,
                                        RunSource&& run_source) {
  GcgtBcResult total;
  total.dependency.assign(num_nodes, 0.0);
  for (NodeId source : bc.sources) {
    Result<GcgtBcResult> r = run_source(source);
    if (!r.ok()) return r.status();
    GcgtBcResult one = std::move(r.value());
    for (NodeId i = 0; i < num_nodes; ++i) {
      total.dependency[i] += one.dependency[i];
    }
    total.depth = std::move(one.depth);
    total.sigma = std::move(one.sigma);
    AccumulateMetrics(total.metrics, one.metrics);
  }
  return QueryResult(std::move(total));
}

}  // namespace

Result<QueryResult> GcgtSession::RunCgr(const Query& query, StepTrace* trace) {
  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    auto r = GcgtBfs(*pipeline_, bfs->source, trace);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }
  if (std::holds_alternative<CcQuery>(query)) {
    auto r = GcgtCc(*pipeline_);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }

  // Sources were validated and translated by Run().
  const auto& bc = std::get<BcQuery>(query);
  const uint64_t v = cgr_->num_nodes();
  pipeline_->Reset();
  if (Status s = pipeline_->ReserveDevice(BcAuxBytes(v), "GCGT BC"); !s.ok()) {
    return s;
  }
  GcgtBcResult result;
  result.dependency.assign(v, 0.0);
  for (NodeId source : bc.sources) {
    if (Status s = GcgtBcAccumulate(*pipeline_, source, bc_scratch_,
                                    result.dependency);
        !s.ok()) {
      return s;
    }
  }
  result.depth = bc_scratch_.depth;
  result.sigma = bc_scratch_.sigma;
  result.metrics = pipeline_->Metrics();
  return QueryResult(std::move(result));
}

Result<QueryResult> GcgtSession::RunCsr(const Query& query, bool gunrock) {
  const Graph& g = graph();
  const CsrEngineOptions opt = CsrOptions(gunrock);

  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    auto r = CsrBfs(g, bfs->source, opt);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }
  if (std::holds_alternative<CcQuery>(query)) {
    auto r = CsrCc(g, opt);
    if (!r.ok()) return r.status();
    return QueryResult(std::move(r.value()));
  }

  const auto& bc = std::get<BcQuery>(query);
  return AccumulateBcSources(bc, g.num_nodes(), [&](NodeId source) {
    return CsrBc(g, source, opt);
  });
}

Result<QueryResult> GcgtSession::RunCpu(const Query& query) {
  const Graph& g = graph();

  if (const auto* bfs = std::get_if<BfsQuery>(&query)) {
    GcgtBfsResult r;
    r.depth = SerialBfs(g, bfs->source);  // kBfsUnreached == kUnvisited
    return QueryResult(std::move(r));
  }
  if (std::holds_alternative<CcQuery>(query)) {
    GcgtCcResult r;
    r.component = SerialCc(g);
    return QueryResult(std::move(r));
  }

  const auto& bc = std::get<BcQuery>(query);
  return AccumulateBcSources(
      bc, g.num_nodes(), [&](NodeId source) -> Result<GcgtBcResult> {
        SerialBcResult r = SerialBc(g, source);
        GcgtBcResult one;  // no simulated device: metrics stay zero
        one.dependency = std::move(r.dependency);
        one.depth = std::move(r.depth);
        one.sigma = std::move(r.sigma);
        return one;
      });
}

}  // namespace gcgt
