// Partitioned, memory-mappable CGR container format (the out-of-core tier's
// on-disk artifact).
//
// Layout (little-endian, all sections 8-byte aligned):
//
//   offset  size  field
//   0       4     magic "GCOC" (0x434F4347)
//   4       4     version (1)
//   8       8     artifact fingerprint (graph + prepare options)
//   16      4     codec id            (CgrOptions::codec)
//   20      4     vlc scheme          (CgrOptions::scheme)
//   24      4     min_interval_len    (CgrOptions)
//   28      4     segment_len_bytes   (CgrOptions)
//   32      4     num_nodes
//   36      4     num_partitions
//   40      8     num_edges
//   48      8     total_bits
//   56      8     header hash (Mix64 chain over all preceding fields)
//   64      (num_nodes+1)*8     bit_start offsets
//   ...     num_partitions*24   partition table
//                               {u32 node_begin, u32 node_end,
//                                u64 byte_begin, u64 byte_end}
//   ...     (total_bits+7)/8    encoded adjacency payload
//
// The file size must equal the sum of those sections exactly; any mismatch,
// bad magic/version, or header-hash failure makes Open() return
// Status::InvalidArgument (never crash). The writer stages through a temp
// file and renames into place (WriteFileAtomic), so readers never observe a
// partial container.
#ifndef GCGT_OOC_CGR_CONTAINER_H_
#define GCGT_OOC_CGR_CONTAINER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cgr/cgr_graph.h"
#include "util/status.h"

namespace gcgt::ooc {

/// Serializes an encoded graph (plus its artifact fingerprint) to `path`
/// atomically. An unpartitioned graph is written as one whole-range
/// partition, so every container is pageable.
Status WriteCgrContainer(const CgrGraph& graph, uint64_t fingerprint,
                         const std::string& path);

/// Read-side view of a container file. Move-only; owns the mapping or the
/// buffered copy. Offsets and the partition table are materialized eagerly
/// (they are small); the payload stays a span into the mapping (kMmap) or
/// the buffered file image, so partition bytes can be consumed without a
/// second copy until a CgrGraph is materialized.
class CgrContainer {
 public:
  enum class ReadMode {
    kMmap,      ///< map the file read-only; falls back to kBuffered when
                ///< mmap is unavailable (non-unix) or fails
    kBuffered,  ///< plain buffered read of the whole file
  };

  /// Validates magic, version, header hash and the exact file size before
  /// touching anything else; every corruption mode returns InvalidArgument.
  static Result<CgrContainer> Open(const std::string& path,
                                   ReadMode mode = ReadMode::kMmap);

  CgrContainer(CgrContainer&& other) noexcept { *this = std::move(other); }
  CgrContainer& operator=(CgrContainer&& other) noexcept;
  CgrContainer(const CgrContainer&) = delete;
  CgrContainer& operator=(const CgrContainer&) = delete;
  ~CgrContainer();

  uint64_t fingerprint() const { return fingerprint_; }
  const CgrOptions& options() const { return options_; }
  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }
  uint64_t total_bits() const { return total_bits_; }
  const std::vector<uint64_t>& bit_start() const { return bit_start_; }
  const std::vector<CgrPartition>& partitions() const { return partitions_; }

  /// Encoded adjacency payload — points into the mapping / file image.
  std::span<const uint8_t> payload() const { return payload_; }
  uint64_t PayloadBytes() const { return payload_.size(); }
  /// Encoded bytes of partition p (byte ranges of adjacent partitions may
  /// share a boundary byte).
  std::span<const uint8_t> PartitionBytes(size_t p) const {
    const CgrPartition& part = partitions_[p];
    return payload_.subspan(part.byte_begin, part.num_bytes());
  }
  /// True when the payload is served from an mmap (kMmap mode succeeded).
  bool mmapped() const { return map_addr_ != nullptr; }

  /// Materializes an in-memory encoded graph (copies the payload) and
  /// re-validates all structural invariants via CgrGraph::Assemble.
  Result<CgrGraph> ToCgrGraph() const;

  /// Like ToCgrGraph but zero-copy when the payload is mmap'd: the graph
  /// borrows the mapping (CgrGraph::AssembleView), so this container must
  /// outlive the returned graph. Falls back to the copying path for
  /// buffered opens, where borrowing would save nothing.
  Result<CgrGraph> ToCgrGraphView() const;

 private:
  CgrContainer() = default;

  CgrOptions options_;
  uint64_t fingerprint_ = 0;
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  uint64_t total_bits_ = 0;
  std::vector<uint64_t> bit_start_;
  std::vector<CgrPartition> partitions_;
  std::span<const uint8_t> payload_;

  // Exactly one of these backs payload_ (or neither, for an empty payload).
  void* map_addr_ = nullptr;
  size_t map_len_ = 0;
  std::vector<uint8_t> buffer_;
};

}  // namespace gcgt::ooc

#endif  // GCGT_OOC_CGR_CONTAINER_H_
