#include "ooc/cgr_container.h"

#include <cstring>

#include "graph/graph_io.h"
#include "util/random.h"

#if defined(__unix__) || defined(__APPLE__)
#define GCGT_OOC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace gcgt::ooc {
namespace {

constexpr uint32_t kMagic = 0x434F4347;  // "GCOC" little-endian
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 64;
constexpr size_t kPartitionEntryBytes = 24;

uint64_t ChainHash(uint64_t h, uint64_t v) {
  return Mix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

/// Hash over every header field before the hash slot, in file order.
uint64_t HeaderHash(uint64_t fingerprint, const CgrOptions& o,
                    uint32_t num_nodes, uint32_t num_partitions,
                    uint64_t num_edges, uint64_t total_bits) {
  uint64_t h = ChainHash(kMagic, kVersion);
  h = ChainHash(h, fingerprint);
  h = ChainHash(h, static_cast<uint64_t>(o.codec));
  h = ChainHash(h, static_cast<uint64_t>(o.scheme));
  h = ChainHash(h, static_cast<uint64_t>(o.min_interval_len));
  h = ChainHash(h, static_cast<uint64_t>(o.segment_len_bytes));
  h = ChainHash(h, num_nodes);
  h = ChainHash(h, num_partitions);
  h = ChainHash(h, num_edges);
  h = ChainHash(h, total_bits);
  return h;
}

/// Little-endian field cursor over a byte buffer.
class FieldReader {
 public:
  FieldReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  size_t pos() const { return pos_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

template <typename T>
Status PutField(std::FILE* f, T v) {
  if (std::fwrite(&v, sizeof(T), 1, f) != 1) {
    return Status::IOError("short write (container field)");
  }
  return Status::OK();
}

Status PutBytes(std::FILE* f, const void* data, size_t size) {
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::IOError("short write (container section)");
  }
  return Status::OK();
}

}  // namespace

Status WriteCgrContainer(const CgrGraph& graph, uint64_t fingerprint,
                         const std::string& path) {
  // An unpartitioned graph becomes one whole-range partition.
  std::vector<CgrPartition> whole;
  std::span<const CgrPartition> parts(graph.partitions());
  if (parts.empty()) {
    whole.push_back({0, graph.num_nodes(), 0,
                     (graph.total_bits() + 7) / 8});
    parts = whole;
  }
  const CgrOptions& o = graph.options();
  const uint32_t num_nodes = graph.num_nodes();
  const uint32_t num_partitions = static_cast<uint32_t>(parts.size());

  return WriteFileAtomic(path, [&](std::FILE* f) -> Status {
    GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, kMagic));
    GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, kVersion));
    GCGT_RETURN_NOT_OK(PutField<uint64_t>(f, fingerprint));
    GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, static_cast<uint32_t>(o.codec)));
    GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, static_cast<uint32_t>(o.scheme)));
    GCGT_RETURN_NOT_OK(
        PutField<int32_t>(f, static_cast<int32_t>(o.min_interval_len)));
    GCGT_RETURN_NOT_OK(
        PutField<int32_t>(f, static_cast<int32_t>(o.segment_len_bytes)));
    GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, num_nodes));
    GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, num_partitions));
    GCGT_RETURN_NOT_OK(PutField<uint64_t>(f, graph.num_edges()));
    GCGT_RETURN_NOT_OK(PutField<uint64_t>(f, graph.total_bits()));
    GCGT_RETURN_NOT_OK(PutField<uint64_t>(
        f, HeaderHash(fingerprint, o, num_nodes, num_partitions,
                      graph.num_edges(), graph.total_bits())));

    std::vector<uint64_t> bit_start(static_cast<size_t>(num_nodes) + 1);
    for (uint32_t u = 0; u <= num_nodes; ++u) {
      bit_start[u] = graph.bit_start(u);
    }
    GCGT_RETURN_NOT_OK(
        PutBytes(f, bit_start.data(), bit_start.size() * sizeof(uint64_t)));

    for (const CgrPartition& p : parts) {
      GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, p.node_begin));
      GCGT_RETURN_NOT_OK(PutField<uint32_t>(f, p.node_end));
      GCGT_RETURN_NOT_OK(PutField<uint64_t>(f, p.byte_begin));
      GCGT_RETURN_NOT_OK(PutField<uint64_t>(f, p.byte_end));
    }

    return PutBytes(f, graph.bits().data(), graph.bits().size());
  });
}

CgrContainer& CgrContainer::operator=(CgrContainer&& other) noexcept {
  if (this == &other) return *this;
#if GCGT_OOC_HAVE_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
#endif
  options_ = other.options_;
  fingerprint_ = other.fingerprint_;
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  total_bits_ = other.total_bits_;
  bit_start_ = std::move(other.bit_start_);
  partitions_ = std::move(other.partitions_);
  payload_ = other.payload_;
  map_addr_ = other.map_addr_;
  map_len_ = other.map_len_;
  buffer_ = std::move(other.buffer_);
  other.map_addr_ = nullptr;
  other.map_len_ = 0;
  other.payload_ = {};
  // payload_ pointing into buffer_ stays valid: vector move preserves the
  // heap allocation.
  return *this;
}

CgrContainer::~CgrContainer() {
#if GCGT_OOC_HAVE_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
#endif
}

Result<CgrContainer> CgrContainer::Open(const std::string& path,
                                        ReadMode mode) {
  CgrContainer c;
  const uint8_t* data = nullptr;
  size_t size = 0;

#if GCGT_OOC_HAVE_MMAP
  if (mode == ReadMode::kMmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st;
      if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
        const size_t len = static_cast<size_t>(st.st_size);
        if (len == 0) {
          ::close(fd);
          return Status::InvalidArgument("container truncated: " + path);
        }
        void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr != MAP_FAILED) {
          c.map_addr_ = addr;
          c.map_len_ = len;
          data = static_cast<const uint8_t*>(addr);
          size = len;
        }
      }
      ::close(fd);
    }
    // Fall through to buffered on any mmap-path failure.
  }
#endif

  if (data == nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open container: " + path);
    }
    std::fseek(f, 0, SEEK_END);
    const long end = std::ftell(f);
    if (end < 0) {
      std::fclose(f);
      return Status::IOError("cannot size container: " + path);
    }
    std::fseek(f, 0, SEEK_SET);
    c.buffer_.resize(static_cast<size_t>(end));
    const size_t got =
        end > 0 ? std::fread(c.buffer_.data(), 1, c.buffer_.size(), f) : 0;
    std::fclose(f);
    if (got != c.buffer_.size()) {
      return Status::IOError("short read of container: " + path);
    }
    data = c.buffer_.data();
    size = c.buffer_.size();
  }

  if (size < kHeaderBytes) {
    return Status::InvalidArgument("container truncated: " + path);
  }
  FieldReader r(data, size);
  const uint32_t magic = r.Get<uint32_t>();
  const uint32_t version = r.Get<uint32_t>();
  if (magic != kMagic) {
    return Status::InvalidArgument("bad container magic: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported container version: " + path);
  }
  c.fingerprint_ = r.Get<uint64_t>();
  const uint32_t codec = r.Get<uint32_t>();
  const uint32_t scheme = r.Get<uint32_t>();
  c.options_.min_interval_len = r.Get<int32_t>();
  c.options_.segment_len_bytes = r.Get<int32_t>();
  const uint32_t num_nodes = r.Get<uint32_t>();
  const uint32_t num_partitions = r.Get<uint32_t>();
  c.num_edges_ = r.Get<uint64_t>();
  c.total_bits_ = r.Get<uint64_t>();
  const uint64_t stored_hash = r.Get<uint64_t>();
  c.num_nodes_ = num_nodes;
  if (codec > static_cast<uint32_t>(CodecId::kVarintGb)) {
    return Status::InvalidArgument("unknown codec id in container: " + path);
  }
  if (scheme > static_cast<uint32_t>(VlcScheme::kZeta5)) {
    return Status::InvalidArgument("unknown vlc scheme in container: " + path);
  }
  c.options_.codec = static_cast<CodecId>(codec);
  c.options_.scheme = static_cast<VlcScheme>(scheme);
  if (HeaderHash(c.fingerprint_, c.options_, num_nodes, num_partitions,
                 c.num_edges_, c.total_bits_) != stored_hash) {
    return Status::InvalidArgument("container header hash mismatch: " + path);
  }
  GCGT_RETURN_NOT_OK(c.options_.Validate());

  // The declared sections must tile the file exactly; checked BEFORE any
  // allocation so a corrupt count cannot balloon memory.
  const uint64_t offsets_bytes = (static_cast<uint64_t>(num_nodes) + 1) * 8;
  const uint64_t table_bytes =
      static_cast<uint64_t>(num_partitions) * kPartitionEntryBytes;
  const uint64_t payload_bytes = (c.total_bits_ + 7) / 8;
  if (num_partitions == 0 ||
      size != kHeaderBytes + offsets_bytes + table_bytes + payload_bytes) {
    return Status::InvalidArgument("container size mismatch: " + path);
  }

  c.bit_start_.resize(static_cast<size_t>(num_nodes) + 1);
  std::memcpy(c.bit_start_.data(), data + r.pos(),
              static_cast<size_t>(offsets_bytes));
  FieldReader t(data + kHeaderBytes + offsets_bytes, table_bytes);
  c.partitions_.resize(num_partitions);
  for (CgrPartition& p : c.partitions_) {
    p.node_begin = t.Get<uint32_t>();
    p.node_end = t.Get<uint32_t>();
    p.byte_begin = t.Get<uint64_t>();
    p.byte_end = t.Get<uint64_t>();
  }
  c.payload_ = std::span<const uint8_t>(
      data + kHeaderBytes + offsets_bytes + table_bytes,
      static_cast<size_t>(payload_bytes));

  // Deep offset validation is deferred to ToCgrGraph()/Assemble; the
  // partition table's bounds are checked here so PartitionBytes() can never
  // read out of range.
  NodeId expect = 0;
  for (const CgrPartition& p : c.partitions_) {
    if (p.node_begin != expect || p.node_end < p.node_begin ||
        p.node_end > num_nodes || p.byte_begin > p.byte_end ||
        p.byte_end > payload_bytes) {
      return Status::InvalidArgument("corrupt partition table: " + path);
    }
    expect = p.node_end;
  }
  if (expect != num_nodes) {
    return Status::InvalidArgument("corrupt partition table: " + path);
  }
  return c;
}

Result<CgrGraph> CgrContainer::ToCgrGraph() const {
  std::vector<uint8_t> bits(payload_.begin(), payload_.end());
  return CgrGraph::Assemble(options_, num_nodes_, num_edges_, std::move(bits),
                            bit_start_, partitions_);
}

Result<CgrGraph> CgrContainer::ToCgrGraphView() const {
  if (!mmapped()) return ToCgrGraph();
  return CgrGraph::AssembleView(options_, num_nodes_, num_edges_, payload_,
                                bit_start_, partitions_);
}

}  // namespace gcgt::ooc
