// Capacity-bounded resident set of CGR partitions (the out-of-core tier's
// paging policy). Models EMOGI-style on-demand access (PAPERS.md): frontier
// expansion touches partitions, non-resident ones fault in from the external
// tier, and an LRU policy spills resident partitions when the budget is
// exceeded — with an explicit pin/unpin protocol so partitions touched by
// the current round are never its own eviction victims.
//
// Determinism contract (DESIGN.md): the pager is driven serially in frontier
// order by the engine's prologue, exactly like the replay cache — so the
// fault/spill sequence, all counters, and the eviction order are a pure
// function of the graph, the options, and the query, bit-identical across
// thread counts. The pager is a *modeled* overlay: the encoded bits stay in
// host RAM and decode behaves identically; what the pager changes is the
// device-budget accounting (TraversalPipeline counts only the resident
// budget) and the external-tier charges in WarpStats.
#ifndef GCGT_OOC_PARTITION_PAGER_H_
#define GCGT_OOC_PARTITION_PAGER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "cgr/cgr_graph.h"

namespace gcgt::ooc {

/// LRU pager over a fixed partition table. Configure once per engine, Reset
/// per query (every query starts cold: even a 100%-budget run pays one fault
/// per touched partition), TouchNode per frontier node in serial frontier
/// order, EndRound after each frontier.
class PartitionPager {
 public:
  /// External-tier traffic caused by one TouchNode call; the engine folds
  /// these into the round's maintenance WarpStats entry.
  struct Touch {
    uint64_t faults = 0;      ///< 1 when the node's partition faulted in
    uint64_t fault_txns = 0;  ///< directory line + payload lines moved in
    uint64_t spills = 0;      ///< partitions evicted to make room
    uint64_t spill_txns = 0;  ///< payload lines written back out
    uint64_t pins = 0;        ///< 1 the first time a round pins the partition
  };

  /// `partitions` must outlive the pager (it aliases the CgrGraph's table).
  /// A zero budget or empty table disables the pager.
  void Configure(std::span<const CgrPartition> partitions,
                 uint64_t resident_budget_bytes, int cache_line_bytes) {
    partitions_ = partitions;
    budget_bytes_ = resident_budget_bytes;
    line_bytes_ = cache_line_bytes > 0 ? cache_line_bytes : 1;
    starts_.clear();
    starts_.reserve(partitions.size());
    for (const CgrPartition& p : partitions) starts_.push_back(p.node_begin);
    const size_t n = partitions.size();
    resident_.assign(n, false);
    pinned_.assign(n, false);
    prev_.assign(n + 1, kNil);
    next_.assign(n + 1, kNil);
    pinned_round_.reserve(n);
    Reset();
  }

  bool enabled() const { return budget_bytes_ > 0 && !partitions_.empty(); }

  /// Evicts everything and zeroes all counters — per-query cold start.
  void Reset() {
    std::fill(resident_.begin(), resident_.end(), false);
    std::fill(pinned_.begin(), pinned_.end(), false);
    const size_t sentinel = partitions_.size();
    std::fill(prev_.begin(), prev_.end(), kNil);
    std::fill(next_.begin(), next_.end(), kNil);
    if (!prev_.empty()) {
      prev_[sentinel] = sentinel;
      next_[sentinel] = sentinel;
    }
    pinned_round_.clear();
    resident_bytes_ = 0;
    resident_bytes_peak_ = 0;
    faults_ = 0;
    spills_ = 0;
    pins_ = 0;
    last_part_ = 0;
  }

  /// Serial frontier-order touch of node u's partition.
  Touch TouchNode(NodeId u) {
    Touch t;
    const size_t p = PartitionOf(u);
    if (resident_[p]) {
      Unlink(p);
      LinkFront(p);
    } else {
      const uint64_t bytes = partitions_[p].num_bytes();
      t.faults = 1;
      // One line for the partition-directory lookup plus the payload,
      // mirroring the replay cache's fill pricing.
      t.fault_txns = 1 + (bytes + line_bytes_ - 1) / line_bytes_;
      // Evict back-most unpinned partitions until the fault fits. When only
      // pinned partitions remain the resident set overcommits (this round's
      // working set simply exceeds the budget) rather than deadlocking.
      while (resident_bytes_ + bytes > budget_bytes_) {
        const size_t victim = LruVictim();
        if (victim == kNil) break;
        const uint64_t victim_bytes = partitions_[victim].num_bytes();
        t.spills += 1;
        t.spill_txns += (victim_bytes + line_bytes_ - 1) / line_bytes_;
        Unlink(victim);
        resident_[victim] = false;
        resident_bytes_ -= victim_bytes;
      }
      resident_[p] = true;
      resident_bytes_ += bytes;
      resident_bytes_peak_ = std::max(resident_bytes_peak_, resident_bytes_);
      LinkFront(p);
    }
    if (!pinned_[p]) {
      pinned_[p] = true;
      pinned_round_.push_back(p);
      t.pins = 1;
    }
    faults_ += t.faults;
    spills_ += t.spills;
    pins_ += t.pins;
    return t;
  }

  /// Unpins everything the round pinned; resident set carries over.
  void EndRound() {
    for (size_t p : pinned_round_) pinned_[p] = false;
    pinned_round_.clear();
  }

  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t resident_bytes_peak() const { return resident_bytes_peak_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  /// Cumulative since Reset().
  uint64_t faults() const { return faults_; }
  uint64_t spills() const { return spills_; }
  uint64_t pins() const { return pins_; }

 private:
  static constexpr size_t kNil = static_cast<size_t>(-1);

  size_t PartitionOf(NodeId u) {
    const CgrPartition& memo = partitions_[last_part_];
    if (u >= memo.node_begin && u < memo.node_end) return last_part_;
    // Largest partition whose node_begin <= u (table is contiguous).
    const size_t p =
        static_cast<size_t>(
            std::upper_bound(starts_.begin(), starts_.end(), u) -
            starts_.begin()) -
        1;
    last_part_ = p;
    return p;
  }

  // Intrusive LRU list over partition ids; index partitions_.size() is the
  // sentinel. Front = most recent.
  void LinkFront(size_t p) {
    const size_t sentinel = partitions_.size();
    const size_t head = next_[sentinel];
    next_[sentinel] = p;
    prev_[p] = sentinel;
    next_[p] = head;
    prev_[head] = p;
  }
  void Unlink(size_t p) {
    next_[prev_[p]] = next_[p];
    prev_[next_[p]] = prev_[p];
    prev_[p] = kNil;
    next_[p] = kNil;
  }
  /// Back-most unpinned resident partition, or kNil.
  size_t LruVictim() const {
    const size_t sentinel = partitions_.size();
    for (size_t p = prev_[sentinel]; p != sentinel; p = prev_[p]) {
      if (!pinned_[p]) return p;
    }
    return kNil;
  }

  std::span<const CgrPartition> partitions_;
  uint64_t budget_bytes_ = 0;
  uint64_t line_bytes_ = 1;

  std::vector<NodeId> starts_;
  std::vector<bool> resident_;
  std::vector<bool> pinned_;
  std::vector<size_t> prev_;  // size partitions_.size() + 1 (sentinel last)
  std::vector<size_t> next_;
  std::vector<size_t> pinned_round_;
  size_t last_part_ = 0;

  uint64_t resident_bytes_ = 0;
  uint64_t resident_bytes_peak_ = 0;
  uint64_t faults_ = 0;
  uint64_t spills_ = 0;
  uint64_t pins_ = 0;
};

}  // namespace gcgt::ooc

#endif  // GCGT_OOC_PARTITION_PAGER_H_
