// Run cursors over adjacency lists for decode-free set intersection.
//
// Every adjacency representation is presented as one ascending stream of
// disjoint runs [lo, hi]: an interval contributes a multi-element run, a
// residual (or a decoded element) contributes a unit run. Intersection of
// two lists is then a single-pass merge of two run streams (see
// IntersectCursors in intersect_engine.cc), which realizes all three kernel
// paths of the paper's representation in one loop:
//   interval x interval  -> run-overlap test
//   interval x residual  -> membership probe of a unit run against a run
//   residual x residual  -> element merge step
//
// Decode-free means the residuals are pulled straight off the compressed
// stream (delta-decoded on the fly, never materialized), and SkipToAtLeast
// exploits the segmented CGR layout: residuals ascend across segments and
// each segment is independently decodable, so when the next segment's first
// residual is still <= the merge target, the current segment's undecoded
// tail (every value strictly below that first residual) is skipped without
// paying its decode codewords — the compressed-domain analog of galloping.
//
// Cost accounting: the cursor records decoded codewords and intersection
// ops in CursorCharges and charges compressed-region byte reads directly
// through the task's WarpContext (whose LineSet models per-warp L1 reuse).
#ifndef GCGT_INTERSECT_COMPRESSED_CURSOR_H_
#define GCGT_INTERSECT_COMPRESSED_CURSOR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cgr/byte_codecs.h"
#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "core/memory_layout.h"
#include "graph/graph.h"
#include "simt/warp.h"

namespace gcgt::intersect {

/// Charge accumulator for one intersection task (one simulated warp).
/// Codewords and ops are tallied here and converted into decode slots /
/// intersect_txns by the engine at task end; byte reads go straight to the
/// WarpContext so its line dedup models intra-warp reuse.
struct CursorCharges {
  simt::WarpContext* ctx = nullptr;
  uint64_t codewords = 0;  ///< VLC / byte-codec codewords decoded
  uint64_t ops = 0;        ///< set-intersection operations

  /// Charges a read of compressed bytes [first_byte, last_byte] (inclusive).
  void Bytes(uint64_t first_byte, uint64_t last_byte) {
    ctx->MemAccessRange(kBitsBase + first_byte, last_byte - first_byte + 1);
  }
  /// Charges the bit_start offsets read for node u (two 8-byte entries).
  void Offsets(NodeId u) {
    ctx->MemAccessRange(kOffsetsBase + 8ull * u, 16);
  }
};

/// One side of an intersection: ascending disjoint runs over one adjacency
/// list. Construct via Compressed() (decode-free over the encoded graph) or
/// Decoded() (over an already-materialized sorted list: replay-cache hit,
/// full-decode scratch, CSR columns).
class RunCursor {
 public:
  RunCursor() = default;

  /// Decode-free cursor over u's compressed encoding. Charges the offsets
  /// read and all header codewords up front.
  static RunCursor Compressed(const CgrGraph& g, NodeId u, CursorCharges* ch);

  /// Cursor over a decoded sorted list. `base_addr` is the nominal device
  /// address of elems[0]; when `charge_reads` every element touch is charged
  /// as a 4-byte read there (CSR columns / decode scratch). `coalesce` folds
  /// consecutive ids into one run (the replay path keeps the interval
  /// structure's merge advantage); without it every element is a unit run
  /// (the element-wise baseline merge).
  static RunCursor Decoded(std::span<const NodeId> elems, uint64_t base_addr,
                           bool charge_reads, bool coalesce, CursorCharges* ch);

  bool done() const { return done_; }
  NodeId lo() const { return lo_; }
  NodeId hi() const { return hi_; }

  /// Moves to the next run. Precondition: !done().
  void Advance() { FetchNextRun(false, 0); }

  /// Discards runs entirely below `target` (every element strictly less
  /// than it), charging one op per discarded run; the compressed segmented
  /// path additionally skips whole residual segments, and the decoded path
  /// gallops. A run straddling the target is truncated to its >= target
  /// suffix. Postcondition: done() or lo() >= target.
  void SkipToAtLeast(NodeId target);

 private:
  enum class Mode { kCgr, kBytes, kDecoded };

  void FetchNextRun(bool target_set, NodeId target);
  /// Ensures pending_ holds the next undelivered residual (false when the
  /// residual stream is exhausted). With target_set, performs the
  /// segment-skip gallop first.
  bool FillPending(bool target_set, NodeId target);
  /// Decodes one value from the current CGR residual stream, charging one
  /// codeword and the bytes it spanned.
  NodeId DecodeOne();
  /// Opens the next non-empty segment into the peek slot, charging its count
  /// header + first residual (a peek costs the same two codewords whether it
  /// is adopted by the gallop or consumed sequentially later — it is never
  /// re-charged). Skips and charges empty segments. False when none remain.
  bool PeekNextSegment();
  /// Makes the peeked segment the current stream and its first residual the
  /// pending value, discarding the previous stream's undecoded tail (callers
  /// guarantee every discarded value is below the merge target).
  void AdoptPeek();

  Mode mode_ = Mode::kDecoded;
  CursorCharges* ch_ = nullptr;
  bool done_ = true;
  NodeId lo_ = 0;
  NodeId hi_ = 0;

  // Interval side (CGR only): fully decoded headers, consumed in order.
  std::vector<CgrInterval> intervals_;
  size_t itv_pos_ = 0;

  // Residual side.
  bool pending_valid_ = false;
  NodeId pending_ = 0;

  // kCgr state.
  const CgrGraph* graph_ = nullptr;
  NodeId u_ = 0;
  std::optional<CgrNodeDecoder> dec_;  // engaged by Compressed() for kCgr
  ResidualStream stream_;
  bool stream_open_ = false;
  uint64_t stream_byte_ = 0;  ///< last charged byte position of stream_
  bool segmented_ = false;
  uint32_t seg_count_ = 0;
  uint32_t next_seg_ = 0;  ///< next segment index not yet peeked
  // Cached peek of the next non-empty segment (already charged).
  ResidualStream peek_stream_;
  NodeId peek_first_ = 0;
  uint64_t peek_byte_ = 0;
  bool peek_valid_ = false;

  // kBytes state.
  ByteCodecStream bstream_;
  NodeId bbuf_[4];
  uint32_t bbuf_pos_ = 0;
  uint32_t bbuf_len_ = 0;

  // kDecoded state.
  std::span<const NodeId> elems_;
  size_t pos_ = 0;
  uint64_t base_addr_ = 0;
  bool charge_reads_ = false;
  bool coalesce_ = false;
};

}  // namespace gcgt::intersect

#endif  // GCGT_INTERSECT_COMPRESSED_CURSOR_H_
