// Decode-free compressed set-intersection engine (the tentpole of the
// src/intersect subsystem).
//
// Answers the intersection-shaped query families — triangle counting,
// common-neighbor / Jaccard similarity, top-k neighbors-of-neighbors
// similarity, and k-core decomposition — directly on the COMPRESSED
// adjacency representation: both sides of every intersection are streamed as
// ascending runs (intervals = multi-element runs, residuals = unit runs
// delta-decoded on the fly; see compressed_cursor.h) and merged in one pass,
// so an intersection never materializes a decoded list. Segmented CGR
// residual layouts additionally skip whole segments whose value range lies
// below the merge frontier — the compressed-domain gallop.
//
// The same drivers run in three accounting modes:
//   - CGR decode-free (the paper-system path; default),
//   - CGR full-decode-then-merge (GcgtOptions::intersect_full_decode — the
//     A/B baseline: decode both lists to scratch, charge every codeword and
//     a scratch round-trip, then element-merge),
//   - CSR (kCsrBaseline / kCsrGunrock: already-decoded column reads; Gunrock
//     differs only by its device-memory factor).
// Results are bit-identical across all modes and to the CPU oracles below;
// only the modeled metrics move.
//
// Cost accounting mirrors the traversal engines: warp-wide work is charged
// through one WarpContext per simulated warp (triangle counting maps a warp
// to a vertex, pair queries to the pair, k-core to lanes-wide init chunks
// and per-peeled-vertex warps), decoded codewords become DecodeStep slots
// (lanes codewords per slot), intersection steps are the dedicated
// intersect_txns class (CostModel::cycles_per_intersect_op), and compressed
// byte reads go through the warp's LineSet so intra-warp L1 reuse dedups
// them. Hot endpoints are served from the engine's own decoded-adjacency
// replay cache (same admission gates and charge class as traversal replay).
//
// Determinism contract: all warps execute serially in a fixed order (vertex
// id ascending; pair sides in call order), the replay cache is reset at
// every query start, and kernel makespans schedule per-warp cycle vectors in
// submission order — results AND metrics depend only on (graph, options,
// query).
#ifndef GCGT_INTERSECT_INTERSECT_ENGINE_H_
#define GCGT_INTERSECT_INTERSECT_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cgr/cgr_graph.h"
#include "core/gcgt_options.h"
#include "core/replay_cache.h"
#include "graph/graph.h"
#include "intersect/compressed_cursor.h"
#include "intersect/intersect_results.h"
#include "simt/machine.h"
#include "simt/warp.h"
#include "util/cancel_token.h"
#include "util/status.h"

namespace gcgt::intersect {

class IntersectEngine {
 public:
  /// Engine over the compressed graph (backend kCgrSimt). Decode-free unless
  /// options.intersect_full_decode. `graph` must outlive the engine.
  IntersectEngine(const CgrGraph& graph, const GcgtOptions& options);

  /// Engine over the uncompressed CSR (backends kCsrBaseline/kCsrGunrock).
  /// Gunrock mode reports the same modeled work but scales the device
  /// footprint by `gunrock_memory_factor` (its frontier framework's memory
  /// overhead), so it OOMs earlier — mirroring the CSR traversal baselines.
  IntersectEngine(const Graph& graph, const GcgtOptions& options, bool gunrock,
                  double gunrock_memory_factor);

  /// Serving-tier brownout: caps the replay budget for subsequent queries at
  /// min(configured replay_cache_bytes, cap). UINT64_MAX = no cap. Results
  /// are unchanged; only replay metrics (and the modeled footprint) move.
  void SetReplayBudgetCap(uint64_t cap) { replay_cap_ = cap; }

  /// Global + per-vertex triangle count (one warp per vertex u; each
  /// neighbor pair v > u intersects N(u) x N(v) above v).
  Result<GcgtTriangleResult> TriangleCount(const CancelToken& cancel);

  /// Common neighbors of {u, v}, ascending (one warp).
  Result<GcgtCommonNeighborResult> CommonNeighbors(NodeId u, NodeId v,
                                                   const CancelToken& cancel);

  /// Jaccard similarity of {u, v} (one warp).
  Result<GcgtJaccardResult> Jaccard(NodeId u, NodeId v,
                                    const CancelToken& cancel);

  /// Top-k distance-2 candidates of `source` by Jaccard score (candidate
  /// kernel: warp per neighbor; scoring kernel: warp per candidate).
  /// `real_mask` (node-id-indexed, may be empty = all eligible) restricts
  /// candidates — the session passes its real-node mask so VNC virtual
  /// nodes are never recommended.
  Result<GcgtSimilarityTopKResult> SimilarityTopK(
      NodeId source, uint32_t k, std::span<const uint8_t> real_mask,
      const CancelToken& cancel);

  /// k-core membership by synchronous round-based peeling; degrees are
  /// initialized from the encoded degree headers (never a full decode).
  Result<GcgtKCoreResult> KCore(uint32_t k, const CancelToken& cancel);

 private:
  enum class Mode { kCgr, kCsr };

  NodeId NumNodes() const;
  uint64_t ReplayBudget() const;
  bool replay_on() const;
  /// Per-query prologue: cancel/fault checks, replay reset + brownout cap,
  /// device-footprint admission (`extra_bytes` = query-specific arrays).
  Status BeginQuery(const CancelToken& cancel, uint64_t extra_bytes,
                    uint64_t* device_bytes);
  /// Converts the task's accumulated codewords into lanes-wide DecodeStep
  /// slots and its ops into intersect_txns, then closes the warp.
  simt::WarpStats FinishWarp(CursorCharges* ch);
  /// Materializes N(x) (replay-aware in decode-free mode), charging a full
  /// pass over the compressed stream on a miss. Returns a span into
  /// `backing` or into the replay cache's entry.
  std::span<const NodeId> MaterializeList(NodeId x, CursorCharges* ch,
                                          std::vector<NodeId>* backing);
  /// One intersection side over N(x), charged per the engine mode.
  /// `backing`/`scratch_base` hold the decoded copy in the full-decode and
  /// replay-admission paths; each concurrent side needs its own.
  RunCursor SideCursor(NodeId x, CursorCharges* ch,
                       std::vector<NodeId>* backing, uint64_t scratch_base);
  /// Degree of x, charged as an encoded-header read (2 codewords + the
  /// offsets gather) in CGR mode, an offsets read in CSR mode.
  uint64_t ChargedDegree(NodeId x, CursorCharges* ch);

  Mode mode_;
  const CgrGraph* cgr_ = nullptr;  // kCgr only
  const Graph* csr_ = nullptr;     // kCsr only
  GcgtOptions options_;
  bool full_decode_ = false;
  bool gunrock_ = false;
  double gunrock_factor_ = 1.0;
  uint64_t replay_cap_ = UINT64_MAX;
  bool replay_configured_ = false;
  ReplayCache replay_;
  simt::WarpContext ctx_;
  simt::KernelTimeline timeline_;
  // Per-side decode scratch (full-decode baseline and replay admission).
  std::vector<NodeId> scratch_a_;
  std::vector<NodeId> scratch_b_;
  std::vector<NodeId> list_scratch_;
};

// ---- Serial CPU oracles (backend kCpuReference). They run on the prepared
// uncompressed graph, return zero metrics, and share the exact result
// semantics (including the single-division Jaccard formula and the top-k
// comparator), so every backend's results are bit-identical.

GcgtTriangleResult CpuTriangleCount(const Graph& g);
GcgtCommonNeighborResult CpuCommonNeighbors(const Graph& g, NodeId u,
                                            NodeId v);
GcgtJaccardResult CpuJaccard(const Graph& g, NodeId u, NodeId v);
GcgtSimilarityTopKResult CpuSimilarityTopK(const Graph& g, NodeId source,
                                           uint32_t k,
                                           std::span<const uint8_t> real_mask);
GcgtKCoreResult CpuKCore(const Graph& g, uint32_t k);

}  // namespace gcgt::intersect

#endif  // GCGT_INTERSECT_INTERSECT_ENGINE_H_
