// Typed results of the compressed set-intersection query families
// (src/intersect). Kept separate from the engine header so the api layer can
// embed them in QueryResult without pulling the engine in.
//
// Id space: like every driver result, vectors are indexed by (and id values
// refer to) PREPARED node ids when produced by the engine; GcgtSession remaps
// them into the caller's id space on the way out (see QueryResult).
#ifndef GCGT_INTERSECT_INTERSECT_RESULTS_H_
#define GCGT_INTERSECT_INTERSECT_RESULTS_H_

#include <cstdint>
#include <vector>

#include "core/cgr_traversal.h"
#include "graph/graph.h"

namespace gcgt {

/// Global + per-vertex triangle counts. Triangles are unordered vertex
/// triples {u, v, w} with all three edges present; on the symmetric graphs
/// this query is defined for, each is counted exactly once (enumerated as
/// u < v < w). per_vertex[x] = number of triangles containing x.
struct GcgtTriangleResult {
  uint64_t triangles = 0;
  std::vector<uint64_t> per_vertex;
  TraversalMetrics metrics;
};

/// The common neighbors of a node pair, sorted ascending.
struct GcgtCommonNeighborResult {
  std::vector<NodeId> common;
  uint64_t count = 0;
  TraversalMetrics metrics;
};

/// Jaccard similarity of a node pair:
/// |N(u) ∩ N(v)| / (deg(u) + deg(v) - |N(u) ∩ N(v)|); 0 when the union is
/// empty. Computed with a single double division from integer counts, so the
/// score is bit-identical across backends.
struct GcgtJaccardResult {
  uint64_t common = 0;
  double jaccard = 0.0;
  uint64_t degree_u = 0;
  uint64_t degree_v = 0;
  TraversalMetrics metrics;
};

/// Top-k "people you may know": distance-2 candidates of the source (not the
/// source, not an existing neighbor), scored by Jaccard similarity, ordered
/// by score descending with ascending-id tie-break.
struct GcgtSimilarityTopKResult {
  struct Item {
    NodeId node = 0;
    uint64_t common = 0;
    double jaccard = 0.0;
    bool operator==(const Item&) const = default;
  };
  std::vector<Item> items;
  TraversalMetrics metrics;
};

/// k-core membership: in_core[v] != 0 iff v survives iteratively peeling
/// every vertex of degree < k. The k-core is a unique fixpoint, so
/// membership is independent of peel order.
struct GcgtKCoreResult {
  uint32_t k = 0;
  std::vector<uint8_t> in_core;
  NodeId core_size = 0;
  TraversalMetrics metrics;
};

}  // namespace gcgt

#endif  // GCGT_INTERSECT_INTERSECT_RESULTS_H_
