#include "intersect/intersect_engine.h"

#include <algorithm>
#include <cstdint>

#include "core/memory_layout.h"
#include "util/fault_injector.h"

namespace gcgt::intersect {

namespace {

// Nominal scratch regions for the full-decode baseline's two decoded lists
// (disjoint so the two sides never alias in the coalescing model).
constexpr uint64_t kScratchABase = kAuxBase;
constexpr uint64_t kScratchBBase = kAuxBase + (uint64_t{1} << 36);

/// Single-pass run-overlap merge of two cursors — the one loop that realizes
/// all three kernel paths (interval x interval, interval x residual,
/// residual x residual). Emits every common element ascending and returns
/// the count. Skip charges live inside SkipToAtLeast (one op per discarded
/// run / probe); each overlap event charges one op here.
template <typename Emit>
uint64_t MergeCursors(RunCursor* a, RunCursor* b, CursorCharges* ch,
                      Emit&& emit) {
  uint64_t count = 0;
  while (!a->done() && !b->done()) {
    if (a->hi() < b->lo()) {
      a->SkipToAtLeast(b->lo());
    } else if (b->hi() < a->lo()) {
      b->SkipToAtLeast(a->lo());
    } else {
      const NodeId lo = std::max(a->lo(), b->lo());
      const NodeId hi = std::min(a->hi(), b->hi());
      ch->ops += 1;
      for (NodeId w = lo;; ++w) {
        emit(w);
        ++count;
        if (w == hi) break;
      }
      // Capture before advancing: Advance() mutates hi().
      const bool adv_a = a->hi() == hi;
      const bool adv_b = b->hi() == hi;
      if (adv_a) a->Advance();
      if (adv_b) b->Advance();
    }
  }
  return count;
}

/// Drains a cursor into `out` (ascending). Charges whatever the cursor
/// charges (codewords + byte reads); no intersect ops.
void CollectCursor(RunCursor* c, std::vector<NodeId>* out) {
  out->clear();
  while (!c->done()) {
    for (NodeId w = c->lo();; ++w) {
      out->push_back(w);
      if (w == c->hi()) break;
    }
    c->Advance();
  }
}

Status InjectedFault() {
  return Status::Internal("injected fault: intersect kernel");
}

double JaccardScore(uint64_t common, uint64_t deg_a, uint64_t deg_b) {
  const uint64_t uni = deg_a + deg_b - common;
  // Single division from integer counts: bit-identical on every backend.
  return uni == 0 ? 0.0
                  : static_cast<double>(common) / static_cast<double>(uni);
}

void SortTopK(std::vector<GcgtSimilarityTopKResult::Item>* items, uint32_t k) {
  std::sort(items->begin(), items->end(),
            [](const GcgtSimilarityTopKResult::Item& x,
               const GcgtSimilarityTopKResult::Item& y) {
              if (x.jaccard != y.jaccard) return x.jaccard > y.jaccard;
              return x.node < y.node;
            });
  if (items->size() > k) items->resize(k);
}

}  // namespace

IntersectEngine::IntersectEngine(const CgrGraph& graph,
                                 const GcgtOptions& options)
    : mode_(Mode::kCgr),
      cgr_(&graph),
      options_(options),
      full_decode_(options.intersect_full_decode),
      ctx_(options.lanes, options.cost.cache_line_bytes),
      timeline_(options.cost) {
  if (!full_decode_ && options_.replay_cache_bytes > 0) {
    replay_.Configure(options_.replay_cache_bytes, options_.replay_min_degree,
                      options_.replay_min_touches, graph.num_nodes());
    replay_configured_ = true;
    // Prepare-time degree pre-gate, exactly like the traversal engine: a real
    // GPU reads degrees off the offsets for free, so gated nodes never pay
    // capture bookkeeping on any query.
    if (options_.replay_min_degree > 0) {
      const uint64_t min_degree =
          static_cast<uint64_t>(options_.replay_min_degree);
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        if (graph.EncodedDegree(u) < min_degree) replay_.RejectForever(u);
      }
    }
  }
}

IntersectEngine::IntersectEngine(const Graph& graph,
                                 const GcgtOptions& options, bool gunrock,
                                 double gunrock_memory_factor)
    : mode_(Mode::kCsr),
      csr_(&graph),
      options_(options),
      gunrock_(gunrock),
      gunrock_factor_(gunrock ? gunrock_memory_factor : 1.0),
      ctx_(options.lanes, options.cost.cache_line_bytes),
      timeline_(options.cost) {}

NodeId IntersectEngine::NumNodes() const {
  return mode_ == Mode::kCgr ? cgr_->num_nodes() : csr_->num_nodes();
}

bool IntersectEngine::replay_on() const { return replay_configured_; }

uint64_t IntersectEngine::ReplayBudget() const {
  return replay_configured_
             ? std::min(options_.replay_cache_bytes, replay_cap_)
             : 0;
}

Status IntersectEngine::BeginQuery(const CancelToken& cancel,
                                   uint64_t extra_bytes,
                                   uint64_t* device_bytes) {
  if (Status s = cancel.Check(); !s.ok()) return s;
  if (FaultInjector::Global().ShouldInject(FaultPoint::kIntersectKernel)) {
    return InjectedFault();
  }
  timeline_.Reset();
  uint64_t base;
  if (mode_ == Mode::kCgr) {
    if (replay_configured_) {
      replay_.Reset();
      replay_.SetCapacity(ReplayBudget());
    }
    base = cgr_->DeviceBytes() + ReplayBudget();
  } else {
    // 32-bit CSR footprint, same convention as the CSR traversal baselines.
    base = 4ull * (csr_->num_nodes() + 1) + 4ull * csr_->num_edges();
  }
  uint64_t total = base + extra_bytes;
  if (gunrock_) {
    total = static_cast<uint64_t>(static_cast<double>(total) *
                                  gunrock_factor_);
  }
  if (total > options_.device.memory_bytes) {
    return Status::OutOfMemory(
        "intersect query footprint exceeds device memory");
  }
  *device_bytes = total;
  return Status::OK();
}

simt::WarpStats IntersectEngine::FinishWarp(CursorCharges* ch) {
  // Warp-centric decode model: one DecodeStep slot retires up to `lanes`
  // codewords (the warp decodes speculative windows in parallel).
  const uint64_t lanes = static_cast<uint64_t>(options_.lanes);
  for (uint64_t cw = ch->codewords; cw > 0;) {
    const int active = static_cast<int>(std::min(lanes, cw));
    ctx_.DecodeStep(active);
    cw -= static_cast<uint64_t>(active);
  }
  ctx_.IntersectOps(ch->ops);
  ch->codewords = 0;
  ch->ops = 0;
  return ctx_.TakeStats();
}

uint64_t IntersectEngine::ChargedDegree(NodeId x, CursorCharges* ch) {
  if (mode_ == Mode::kCsr) {
    ch->ctx->MemAccessRange(kOffsetsBase + 4ull * x, 8);
    return csr_->Neighbors(x).size();
  }
  // Encoded degree header walk, charged uniformly as two codewords (degree /
  // interval headers) plus the offsets gather; the host reads the value.
  ch->codewords += 2;
  ch->Offsets(x);
  return cgr_->EncodedDegree(x);
}

std::span<const NodeId> IntersectEngine::MaterializeList(
    NodeId x, CursorCharges* ch, std::vector<NodeId>* backing) {
  if (mode_ == Mode::kCsr) {
    const std::span<const NodeId> adj = csr_->Neighbors(x);
    ch->ctx->MemAccessRange(kOffsetsBase + 4ull * x, 8);
    ch->ctx->MemAccessRange(kCsrColBase + 4ull * csr_->offsets()[x],
                            4ull * adj.size());
    return adj;
  }
  const int line = options_.cost.cache_line_bytes;
  if (replay_on()) {
    if (const std::vector<NodeId>* adj = replay_.Touch(x)) {
      // Replay hit: directory probe + streamed buffer lines, never decoded.
      // Copied out so a later admission's eviction cannot invalidate us.
      ch->ctx->ReplayHits(1);
      ch->ctx->ReplayTxns(1 + (4ull * adj->size() +
                               static_cast<uint64_t>(line) - 1) /
                                  static_cast<uint64_t>(line));
      backing->assign(adj->begin(), adj->end());
      return *backing;
    }
  }
  RunCursor c = RunCursor::Compressed(*cgr_, x, ch);
  CollectCursor(&c, backing);
  if (replay_on() && replay_.WantsAdmit(x)) {
    const uint64_t degree = backing->size();
    const ReplayCache::AdmitResult r =
        replay_.Admit(x, std::vector<NodeId>(*backing));
    if (r.admitted) {
      ch->ctx->ReplayTxns(1 + (4ull * degree + static_cast<uint64_t>(line) -
                               1) /
                                  static_cast<uint64_t>(line));
      ch->ctx->ReplayEvictions(r.evictions);
    }
  }
  if (full_decode_) {
    // The baseline writes the decoded list to scratch before merging.
    ch->ctx->MemAccessRange(kScratchABase, 4ull * backing->size());
  }
  return *backing;
}

RunCursor IntersectEngine::SideCursor(NodeId x, CursorCharges* ch,
                                      std::vector<NodeId>* backing,
                                      uint64_t scratch_base) {
  if (mode_ == Mode::kCsr) {
    const std::span<const NodeId> adj = csr_->Neighbors(x);
    ch->ctx->MemAccessRange(kOffsetsBase + 4ull * x, 8);
    return RunCursor::Decoded(adj, kCsrColBase + 4ull * csr_->offsets()[x],
                              /*charge_reads=*/true, /*coalesce=*/false, ch);
  }
  const int line = options_.cost.cache_line_bytes;
  if (replay_on()) {
    if (const std::vector<NodeId>* adj = replay_.Touch(x)) {
      ch->ctx->ReplayHits(1);
      ch->ctx->ReplayTxns(1 + (4ull * adj->size() +
                               static_cast<uint64_t>(line) - 1) /
                                  static_cast<uint64_t>(line));
      backing->assign(adj->begin(), adj->end());
      // Replay entries keep the run-merge advantage (coalesce consecutive
      // ids back into interval-like runs); reads were charged as replay
      // txns, not per-element memory.
      return RunCursor::Decoded(*backing, scratch_base,
                                /*charge_reads=*/false, /*coalesce=*/true,
                                ch);
    }
    if (replay_.WantsAdmit(x)) {
      // Admission round: pay one full decode now, replay from the buffer on
      // every later use.
      RunCursor c = RunCursor::Compressed(*cgr_, x, ch);
      CollectCursor(&c, backing);
      const uint64_t degree = backing->size();
      const ReplayCache::AdmitResult r =
          replay_.Admit(x, std::vector<NodeId>(*backing));
      if (r.admitted) {
        ch->ctx->ReplayTxns(1 + (4ull * degree +
                                 static_cast<uint64_t>(line) - 1) /
                                    static_cast<uint64_t>(line));
        ch->ctx->ReplayEvictions(r.evictions);
      }
      return RunCursor::Decoded(*backing, scratch_base,
                                /*charge_reads=*/false, /*coalesce=*/true,
                                ch);
    }
    return RunCursor::Compressed(*cgr_, x, ch);
  }
  if (full_decode_) {
    // Full-decode baseline: every codeword + a scratch round-trip + an
    // element-wise (unit-run) merge.
    RunCursor c = RunCursor::Compressed(*cgr_, x, ch);
    CollectCursor(&c, backing);
    ch->ctx->MemAccessRange(scratch_base, 4ull * backing->size());
    return RunCursor::Decoded(*backing, scratch_base, /*charge_reads=*/true,
                              /*coalesce=*/false, ch);
  }
  return RunCursor::Compressed(*cgr_, x, ch);
}

Result<GcgtTriangleResult> IntersectEngine::TriangleCount(
    const CancelToken& cancel) {
  const NodeId num_nodes = NumNodes();
  uint64_t device_bytes = 0;
  if (Status s = BeginQuery(cancel, 8ull * num_nodes, &device_bytes);
      !s.ok()) {
    return s;
  }
  GcgtTriangleResult res;
  res.per_vertex.assign(num_nodes, 0);
  std::vector<simt::WarpStats> warps;
  warps.reserve(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    if ((u & 255u) == 0) {
      if (Status s = cancel.Check(); !s.ok()) return s;
    }
    CursorCharges ch{&ctx_};
    const std::span<const NodeId> adj_u =
        MaterializeList(u, &ch, &list_scratch_);
    for (const NodeId v : adj_u) {
      if (v <= u) continue;
      RunCursor a = SideCursor(u, &ch, &scratch_a_, kScratchABase);
      RunCursor b = SideCursor(v, &ch, &scratch_b_, kScratchBBase);
      // Only witnesses above v close a triangle u < v < w; the compressed
      // gallop (or the decoded binary search) jumps both sides there.
      a.SkipToAtLeast(v + 1);
      b.SkipToAtLeast(v + 1);
      MergeCursors(&a, &b, &ch, [&](NodeId w) {
        ++res.triangles;
        ++res.per_vertex[u];
        ++res.per_vertex[v];
        ++res.per_vertex[w];
        ctx_.Atomic(3);  // three per-vertex credit increments
      });
    }
    warps.push_back(FinishWarp(&ch));
  }
  timeline_.AddKernel(warps);
  res.metrics.model_ms = timeline_.TotalMs();
  res.metrics.kernels = timeline_.num_kernels();
  res.metrics.device_bytes = device_bytes;
  res.metrics.warp = timeline_.aggregate();
  return res;
}

Result<GcgtCommonNeighborResult> IntersectEngine::CommonNeighbors(
    NodeId u, NodeId v, const CancelToken& cancel) {
  uint64_t device_bytes = 0;
  if (Status s = BeginQuery(cancel, 0, &device_bytes); !s.ok()) return s;
  GcgtCommonNeighborResult res;
  CursorCharges ch{&ctx_};
  RunCursor a = SideCursor(u, &ch, &scratch_a_, kScratchABase);
  RunCursor b = SideCursor(v, &ch, &scratch_b_, kScratchBBase);
  MergeCursors(&a, &b, &ch, [&](NodeId w) { res.common.push_back(w); });
  res.count = res.common.size();
  const std::vector<simt::WarpStats> warps{FinishWarp(&ch)};
  timeline_.AddKernel(warps);
  res.metrics.model_ms = timeline_.TotalMs();
  res.metrics.kernels = timeline_.num_kernels();
  res.metrics.device_bytes = device_bytes;
  res.metrics.warp = timeline_.aggregate();
  return res;
}

Result<GcgtJaccardResult> IntersectEngine::Jaccard(NodeId u, NodeId v,
                                                   const CancelToken& cancel) {
  uint64_t device_bytes = 0;
  if (Status s = BeginQuery(cancel, 0, &device_bytes); !s.ok()) return s;
  GcgtJaccardResult res;
  CursorCharges ch{&ctx_};
  res.degree_u = ChargedDegree(u, &ch);
  res.degree_v = ChargedDegree(v, &ch);
  RunCursor a = SideCursor(u, &ch, &scratch_a_, kScratchABase);
  RunCursor b = SideCursor(v, &ch, &scratch_b_, kScratchBBase);
  res.common = MergeCursors(&a, &b, &ch, [](NodeId) {});
  res.jaccard = JaccardScore(res.common, res.degree_u, res.degree_v);
  const std::vector<simt::WarpStats> warps{FinishWarp(&ch)};
  timeline_.AddKernel(warps);
  res.metrics.model_ms = timeline_.TotalMs();
  res.metrics.kernels = timeline_.num_kernels();
  res.metrics.device_bytes = device_bytes;
  res.metrics.warp = timeline_.aggregate();
  return res;
}

Result<GcgtSimilarityTopKResult> IntersectEngine::SimilarityTopK(
    NodeId source, uint32_t k, std::span<const uint8_t> real_mask,
    const CancelToken& cancel) {
  const NodeId num_nodes = NumNodes();
  uint64_t device_bytes = 0;
  if (Status s = BeginQuery(cancel, 8ull * num_nodes, &device_bytes);
      !s.ok()) {
    return s;
  }
  GcgtSimilarityTopKResult res;
  res.metrics.device_bytes = device_bytes;
  if (k == 0) return res;

  // Kernel 1: candidate generation — warp 0 materializes N(source), then one
  // warp per neighbor v appends N(v)'s eligible members to the queue.
  std::vector<simt::WarpStats> warps;
  CursorCharges ch0{&ctx_};
  std::vector<NodeId> adj_source;  // outlives list_scratch_ reuse below
  const std::span<const NodeId> adj_u =
      MaterializeList(source, &ch0, &adj_source);
  warps.push_back(FinishWarp(&ch0));
  std::vector<NodeId> candidates;
  const uint64_t lanes = static_cast<uint64_t>(options_.lanes);
  uint32_t polled = 0;
  for (const NodeId v : adj_u) {
    if ((polled++ & 63u) == 0) {
      if (Status s = cancel.Check(); !s.ok()) return s;
    }
    CursorCharges ch{&ctx_};
    const std::span<const NodeId> adj_v =
        MaterializeList(v, &ch, &list_scratch_);
    uint64_t appended = 0;
    for (const NodeId w : adj_v) {
      if (w == source) continue;
      if (std::binary_search(adj_u.begin(), adj_u.end(), w)) continue;
      if (!real_mask.empty() && (w >= real_mask.size() || !real_mask[w])) {
        continue;
      }
      candidates.push_back(w);
      ++appended;
    }
    for (uint64_t done = 0; done < appended; done += lanes) {
      ctx_.AppendStepOp(static_cast<int>(std::min(lanes, appended - done)));
    }
    if (appended > 0) {
      ctx_.MemAccessRange(kQueueBase + 4ull * (candidates.size() - appended),
                          4ull * appended);
    }
    warps.push_back(FinishWarp(&ch));
  }
  timeline_.AddKernel(warps);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Kernel 2: scoring — one warp per candidate intersects
  // N(source) x N(candidate).
  if (!candidates.empty()) {
    warps.clear();
    for (const NodeId w : candidates) {
      if ((polled++ & 63u) == 0) {
        if (Status s = cancel.Check(); !s.ok()) return s;
      }
      CursorCharges ch{&ctx_};
      const uint64_t deg_u = ChargedDegree(source, &ch);
      const uint64_t deg_w = ChargedDegree(w, &ch);
      RunCursor a = SideCursor(source, &ch, &scratch_a_, kScratchABase);
      RunCursor b = SideCursor(w, &ch, &scratch_b_, kScratchBBase);
      const uint64_t common = MergeCursors(&a, &b, &ch, [](NodeId) {});
      warps.push_back(FinishWarp(&ch));
      if (common == 0) continue;
      res.items.push_back(
          {w, common, JaccardScore(common, deg_u, deg_w)});
    }
    timeline_.AddKernel(warps);
  }
  SortTopK(&res.items, k);
  res.metrics.model_ms = timeline_.TotalMs();
  res.metrics.kernels = timeline_.num_kernels();
  res.metrics.warp = timeline_.aggregate();
  return res;
}

Result<GcgtKCoreResult> IntersectEngine::KCore(uint32_t k,
                                               const CancelToken& cancel) {
  const NodeId num_nodes = NumNodes();
  uint64_t device_bytes = 0;
  if (Status s = BeginQuery(cancel, 9ull * num_nodes, &device_bytes);
      !s.ok()) {
    return s;
  }
  GcgtKCoreResult res;
  res.k = k;
  const int lanes = options_.lanes;

  // Degree-init kernel: lanes-wide chunks read the encoded degree headers —
  // never a full adjacency decode.
  std::vector<int64_t> deg(num_nodes);
  std::vector<simt::WarpStats> warps;
  for (NodeId base = 0; base < num_nodes;
       base += static_cast<NodeId>(lanes)) {
    CursorCharges ch{&ctx_};
    const int n = static_cast<int>(std::min<uint64_t>(
        static_cast<uint64_t>(lanes), num_nodes - base));
    ctx_.Step(n);
    for (int i = 0; i < n; ++i) {
      deg[base + static_cast<NodeId>(i)] =
          static_cast<int64_t>(ChargedDegree(base + static_cast<NodeId>(i),
                                             &ch));
    }
    ctx_.MemAccessRange(kLabelBase + 8ull * base, 8ull * n);  // degree store
    warps.push_back(FinishWarp(&ch));
  }
  timeline_.AddKernel(warps);

  // Synchronous peel: each round removes EVERY current vertex of degree < k
  // at once (so two peers peeled the same round never decrement each other),
  // then decrements surviving neighbors. The k-core is a unique fixpoint, so
  // membership is independent of this schedule — but the oracle peels with
  // the same one so round counts and metrics are comparable.
  std::vector<uint8_t> alive(num_nodes, 1);
  const uint64_t alive_base = kLabelBase + 8ull * num_nodes;
  std::vector<NodeId> peel;
  for (;;) {
    if (Status s = cancel.Check(); !s.ok()) return s;
    if (FaultInjector::Global().ShouldInject(FaultPoint::kIntersectKernel)) {
      return InjectedFault();
    }
    peel.clear();
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (alive[v] && deg[v] < static_cast<int64_t>(k)) peel.push_back(v);
    }
    if (peel.empty()) break;
    for (const NodeId p : peel) alive[p] = 0;
    warps.clear();
    for (const NodeId p : peel) {
      CursorCharges ch{&ctx_};
      const std::span<const NodeId> adj =
          MaterializeList(p, &ch, &list_scratch_);
      ctx_.MemAccessIndexed(adj.size(), 1, [adj, alive_base](size_t i) {
        return alive_base + adj[i];
      });
      uint64_t decremented = 0;
      for (const NodeId x : adj) {
        if (alive[x]) {
          --deg[x];
          ++decremented;
        }
      }
      if (decremented > 0) ctx_.Atomic(static_cast<int>(decremented));
      warps.push_back(FinishWarp(&ch));
    }
    timeline_.AddKernel(warps);
  }
  res.in_core = std::move(alive);
  res.core_size = static_cast<NodeId>(
      std::count(res.in_core.begin(), res.in_core.end(), uint8_t{1}));
  res.metrics.model_ms = timeline_.TotalMs();
  res.metrics.kernels = timeline_.num_kernels();
  res.metrics.device_bytes = device_bytes;
  res.metrics.warp = timeline_.aggregate();
  return res;
}

// ---------------------------------------------------------------------------
// CPU oracles.
// ---------------------------------------------------------------------------

GcgtTriangleResult CpuTriangleCount(const Graph& g) {
  GcgtTriangleResult res;
  const NodeId num_nodes = g.num_nodes();
  res.per_vertex.assign(num_nodes, 0);
  for (NodeId u = 0; u < num_nodes; ++u) {
    const std::span<const NodeId> nu = g.Neighbors(u);
    for (const NodeId v : nu) {
      if (v <= u) continue;
      const std::span<const NodeId> nv = g.Neighbors(v);
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++res.triangles;
          ++res.per_vertex[u];
          ++res.per_vertex[v];
          ++res.per_vertex[*iu];
          ++iu;
          ++iv;
        }
      }
    }
  }
  return res;
}

GcgtCommonNeighborResult CpuCommonNeighbors(const Graph& g, NodeId u,
                                            NodeId v) {
  GcgtCommonNeighborResult res;
  const std::span<const NodeId> nu = g.Neighbors(u);
  const std::span<const NodeId> nv = g.Neighbors(v);
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(res.common));
  res.count = res.common.size();
  return res;
}

GcgtJaccardResult CpuJaccard(const Graph& g, NodeId u, NodeId v) {
  GcgtJaccardResult res;
  const std::span<const NodeId> nu = g.Neighbors(u);
  const std::span<const NodeId> nv = g.Neighbors(v);
  res.degree_u = nu.size();
  res.degree_v = nv.size();
  auto iu = nu.begin();
  auto iv = nv.begin();
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++res.common;
      ++iu;
      ++iv;
    }
  }
  res.jaccard = JaccardScore(res.common, res.degree_u, res.degree_v);
  return res;
}

GcgtSimilarityTopKResult CpuSimilarityTopK(
    const Graph& g, NodeId source, uint32_t k,
    std::span<const uint8_t> real_mask) {
  GcgtSimilarityTopKResult res;
  if (k == 0) return res;
  const std::span<const NodeId> nu = g.Neighbors(source);
  std::vector<NodeId> candidates;
  for (const NodeId v : nu) {
    for (const NodeId w : g.Neighbors(v)) {
      if (w == source) continue;
      if (std::binary_search(nu.begin(), nu.end(), w)) continue;
      if (!real_mask.empty() && (w >= real_mask.size() || !real_mask[w])) {
        continue;
      }
      candidates.push_back(w);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const NodeId w : candidates) {
    const GcgtJaccardResult j = CpuJaccard(g, source, w);
    if (j.common == 0) continue;
    res.items.push_back({w, j.common, j.jaccard});
  }
  SortTopK(&res.items, k);
  return res;
}

GcgtKCoreResult CpuKCore(const Graph& g, uint32_t k) {
  GcgtKCoreResult res;
  res.k = k;
  const NodeId num_nodes = g.num_nodes();
  std::vector<int64_t> deg(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    deg[v] = static_cast<int64_t>(g.Neighbors(v).size());
  }
  std::vector<uint8_t> alive(num_nodes, 1);
  std::vector<NodeId> peel;
  for (;;) {
    peel.clear();
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (alive[v] && deg[v] < static_cast<int64_t>(k)) peel.push_back(v);
    }
    if (peel.empty()) break;
    for (const NodeId p : peel) alive[p] = 0;
    for (const NodeId p : peel) {
      for (const NodeId x : g.Neighbors(p)) {
        if (alive[x]) --deg[x];
      }
    }
  }
  res.in_core = std::move(alive);
  res.core_size = static_cast<NodeId>(
      std::count(res.in_core.begin(), res.in_core.end(), uint8_t{1}));
  return res;
}

}  // namespace gcgt::intersect
