#include "intersect/compressed_cursor.h"

#include <algorithm>

namespace gcgt::intersect {

RunCursor RunCursor::Compressed(const CgrGraph& g, NodeId u,
                                CursorCharges* ch) {
  RunCursor c;
  c.ch_ = ch;
  c.graph_ = &g;
  c.u_ = u;
  ch->Offsets(u);
  const uint64_t start_byte = g.bit_start(u) / 8;

  if (g.options().codec != CodecId::kCgr) {
    c.mode_ = Mode::kBytes;
    c.bstream_ = ByteCodecStream(g, u);
    ch->codewords += 1;  // LEB128 degree header
    if (c.bstream_.header_end_byte() > start_byte) {
      ch->Bytes(start_byte, c.bstream_.header_end_byte() - 1);
    }
    c.done_ = false;
    c.FetchNextRun(false, 0);
    return c;
  }

  c.mode_ = Mode::kCgr;
  c.dec_.emplace(g, u);
  CgrNodeDecoder& dec = *c.dec_;
  c.segmented_ = g.options().segment_len_bytes != 0;
  uint64_t residual_count = 0;  // unsegmented only
  if (!c.segmented_) {
    const uint64_t deg = dec.ReadDegree();
    ch->codewords += 1;
    if (deg == 0) {
      ch->Bytes(start_byte, dec.byte_pos());
      return c;  // done_
    }
    const uint32_t itv_count = dec.ReadIntervalCount();
    ch->codewords += 1;
    c.intervals_.reserve(itv_count);
    for (uint32_t i = 0; i < itv_count; ++i) {
      c.intervals_.push_back(dec.ReadNextInterval());
      ch->codewords += 2;
    }
    residual_count = deg - dec.interval_neighbor_total();
    ch->Bytes(start_byte, dec.byte_pos());
    c.stream_ = dec.UnsegmentedResiduals(residual_count);
    c.stream_open_ = residual_count > 0;
    c.stream_byte_ = c.stream_.byte_pos();
  } else {
    const uint32_t itv_count = dec.ReadIntervalCount();
    ch->codewords += 1;
    c.intervals_.reserve(itv_count);
    for (uint32_t i = 0; i < itv_count; ++i) {
      c.intervals_.push_back(dec.ReadNextInterval());
      ch->codewords += 2;
    }
    c.seg_count_ = dec.ReadSegmentCount();
    ch->codewords += 1;
    ch->Bytes(start_byte, dec.byte_pos());
    c.next_seg_ = 0;
    c.stream_open_ = false;
  }
  c.done_ = false;
  c.FetchNextRun(false, 0);
  return c;
}

RunCursor RunCursor::Decoded(std::span<const NodeId> elems, uint64_t base_addr,
                             bool charge_reads, bool coalesce,
                             CursorCharges* ch) {
  RunCursor c;
  c.mode_ = Mode::kDecoded;
  c.ch_ = ch;
  c.elems_ = elems;
  c.base_addr_ = base_addr;
  c.charge_reads_ = charge_reads;
  c.coalesce_ = coalesce;
  c.done_ = false;
  c.FetchNextRun(false, 0);
  return c;
}

NodeId RunCursor::DecodeOne() {
  const NodeId v = stream_.Next();
  ch_->codewords += 1;
  const uint64_t b = stream_.byte_pos();
  ch_->Bytes(stream_byte_, std::max(stream_byte_, b));
  stream_byte_ = b;
  return v;
}

bool RunCursor::PeekNextSegment() {
  while (next_seg_ < seg_count_) {
    const uint32_t idx = next_seg_++;
    const uint64_t seg_byte = dec_->SegmentBitPos(idx) / 8;
    ResidualStream s = dec_->SegmentResiduals(idx);
    ch_->codewords += 1;  // segment count header
    if (!s.HasNext()) {  // empty segment: header read charged, keep scanning
      ch_->Bytes(seg_byte,
                 std::max(seg_byte, static_cast<uint64_t>(s.byte_pos())));
      continue;
    }
    peek_first_ = s.Next();
    ch_->codewords += 1;
    peek_byte_ = std::max(seg_byte, static_cast<uint64_t>(s.byte_pos()));
    ch_->Bytes(seg_byte, peek_byte_);
    peek_stream_ = s;
    peek_valid_ = true;
    return true;
  }
  return false;
}

void RunCursor::AdoptPeek() {
  stream_ = peek_stream_;
  stream_open_ = true;
  stream_byte_ = peek_byte_;
  pending_ = peek_first_;
  pending_valid_ = true;
  peek_valid_ = false;
}

bool RunCursor::FillPending(bool target_set, NodeId target) {
  if (mode_ == Mode::kBytes) {
    if (pending_valid_) return true;
    if (bbuf_pos_ == bbuf_len_) {
      if (!bstream_.HasNext()) return false;
      const ByteBlock blk = bstream_.NextBlock();
      ch_->codewords += blk.count;
      ch_->Bytes(blk.ctrl_byte, blk.ctrl_byte);
      if (blk.data_last >= blk.data_first) {
        ch_->Bytes(blk.data_first, blk.data_last);
      }
      for (uint32_t i = 0; i < blk.count; ++i) bbuf_[i] = blk.vals[i];
      bbuf_pos_ = 0;
      bbuf_len_ = blk.count;
    }
    pending_ = bbuf_[bbuf_pos_++];
    pending_valid_ = true;
    return true;
  }

  // kCgr. Segment-skip gallop: while the next segment's first residual is
  // still <= target, every undelivered value before it (the pending value
  // and the current segment's undecoded tail) is strictly smaller than that
  // first residual — residuals ascend across segments — and hence strictly
  // below target, so the whole tail is skipped without paying its decode
  // codewords. <= (not <) so a first residual equal to the target is
  // delivered, never skipped past. A peek that overshoots stays cached for
  // the sequential path and is never re-charged.
  if (segmented_ && target_set) {
    while (!(pending_valid_ && pending_ >= target)) {
      if (!peek_valid_ && !PeekNextSegment()) break;
      if (peek_first_ > target) break;
      AdoptPeek();
      ch_->ops += 1;  // one gallop step (segment jump)
    }
  }
  if (pending_valid_) return true;
  if (stream_open_ && stream_.HasNext()) {
    pending_ = DecodeOne();
    pending_valid_ = true;
    return true;
  }
  stream_open_ = false;
  if (!peek_valid_ && !(segmented_ && PeekNextSegment())) return false;
  AdoptPeek();
  return true;
}

void RunCursor::FetchNextRun(bool target_set, NodeId target) {
  if (mode_ == Mode::kDecoded) {
    if (pos_ >= elems_.size()) {
      done_ = true;
      return;
    }
    lo_ = elems_[pos_];
    size_t end = pos_ + 1;
    if (coalesce_) {
      while (end < elems_.size() && elems_[end] == elems_[end - 1] + 1) ++end;
    }
    hi_ = elems_[end - 1];
    if (charge_reads_) {
      ch_->ctx->MemAccessRange(base_addr_ + 4ull * pos_, 4ull * (end - pos_));
    }
    pos_ = end;
    return;
  }

  const bool has_r = FillPending(target_set, target);
  const bool has_i = itv_pos_ < intervals_.size();
  if (!has_r && !has_i) {
    done_ = true;
    return;
  }
  if (has_r && (!has_i || pending_ < intervals_[itv_pos_].start)) {
    lo_ = hi_ = pending_;
    pending_valid_ = false;
  } else {
    const CgrInterval& itv = intervals_[itv_pos_++];
    lo_ = itv.start;
    hi_ = itv.start + itv.len - 1;
  }
}

void RunCursor::SkipToAtLeast(NodeId target) {
  if (mode_ == Mode::kDecoded) {
    // The current (already fetched) run may reach the target: pos_ sits
    // PAST its elements, so galloping would silently drop them. Truncate it
    // to its >= target suffix instead.
    if (!done_ && hi_ >= target) {
      if (lo_ < target) lo_ = target;
      return;
    }
    // Gallop from pos_: exponential probes to bracket the target, then a
    // binary search, charging one op (and, when charge_reads_, one 4-byte
    // probe read) per comparison.
    auto probe = [&](size_t i) {
      ch_->ops += 1;
      if (charge_reads_) {
        ch_->ctx->MemAccessRange(base_addr_ + 4ull * i, 4);
      }
      return elems_[i];
    };
    size_t lo_idx = pos_;
    size_t step = 1;
    while (lo_idx + step < elems_.size() &&
           probe(lo_idx + step) < target) {
      lo_idx += step;
      step *= 2;
    }
    size_t hi_idx = std::min(elems_.size(), lo_idx + step + 1);
    while (lo_idx < hi_idx) {
      const size_t mid = lo_idx + (hi_idx - lo_idx) / 2;
      if (probe(mid) < target) {
        lo_idx = mid + 1;
      } else {
        hi_idx = mid;
      }
    }
    pos_ = lo_idx;
    FetchNextRun(false, 0);
    return;
  }
  while (!done_ && hi_ < target) {
    ch_->ops += 1;
    FetchNextRun(true, target);
  }
  // An interval run straddling the target ([lo_, hi_] with lo_ < target <=
  // hi_) would otherwise deliver its below-target prefix, which the skip's
  // callers must never see: the merge's skip branches rely on "everything
  // below the target is gone" (elements under the other side's run lower
  // bound cannot match anything it still holds), and triangle counting's
  // SkipToAtLeast(v + 1) defines the w > v orientation. Deliver the suffix.
  if (!done_ && lo_ < target) lo_ = target;
}

}  // namespace gcgt::intersect
