// Virtual-node compression [Buehrer & Chellapilla, WSDM'08]: nodes sharing a
// large common neighbor set get a virtual intermediate node, replacing
// k*m edges of a biclique with k+m. Applied as the unified preprocessing of
// the paper's evaluation (§7.2) before reordering and CGR encoding; all
// compared engines then operate on the same transformed graph.
//
// Candidate clusters are found by min-hash shingles of the adjacency lists
// (the paper's pattern-mining step, simplified; see DESIGN.md).
#ifndef GCGT_VNC_VIRTUAL_NODE_H_
#define GCGT_VNC_VIRTUAL_NODE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gcgt {

struct VncOptions {
  /// Minimum nodes sharing a pattern for a virtual node to pay off.
  int min_cluster_size = 3;
  /// Minimum common-neighbor-set size.
  int min_pattern_size = 4;
  /// Mining passes with different min-hash salts (virtual nodes created in
  /// earlier passes can themselves be compressed again).
  int num_passes = 4;
  uint64_t seed = 7;
};

struct VncResult {
  /// Transformed graph: node ids [0, num_real) are the original nodes,
  /// ids >= num_real are virtual.
  Graph graph;
  NodeId num_real_nodes = 0;
  EdgeId original_edges = 0;

  NodeId num_virtual_nodes() const { return graph.num_nodes() - num_real_nodes; }
  /// Edge reduction factor achieved by the transformation.
  double EdgeReduction() const {
    return graph.num_edges()
               ? static_cast<double>(original_edges) / graph.num_edges()
               : 1.0;
  }
};

VncResult VirtualNodeCompress(const Graph& g, const VncOptions& options = {});

/// Real-node adjacency of u under the transformation: follows virtual nodes
/// transitively. Equals the original adjacency set (the equivalence checked
/// by unit tests).
std::vector<NodeId> ExpandedNeighbors(const VncResult& r, NodeId u);

}  // namespace gcgt

#endif  // GCGT_VNC_VIRTUAL_NODE_H_
