#include "vnc/virtual_node.h"

#include <algorithm>
#include <utility>

#include "util/random.h"

namespace gcgt {
namespace {

// Min-hash shingle of a sorted neighbor list: the smallest hash. Two lists
// collide with probability equal to their Jaccard similarity, so pages
// sharing a large template land in the same bucket often.
uint64_t Shingle(std::span<const NodeId> nbrs, uint64_t salt) {
  uint64_t h1 = ~0ull;
  for (NodeId v : nbrs) {
    h1 = std::min(h1, Mix64(v * 0x9e3779b97f4a7c15ULL + salt));
  }
  return h1;
}

// Prefix shingle: hash of the smallest few neighbor ids. Pages whose sorted
// lists share a navigation-template prefix (common in web graphs) collide
// deterministically.
uint64_t PrefixShingle(std::span<const NodeId> nbrs, size_t k) {
  uint64_t h = 0x51ed270b76a4f3ccULL;
  for (size_t i = 0; i < nbrs.size() && i < k; ++i) {
    h = Mix64(h ^ nbrs[i]);
  }
  return h;
}

// One mining pass over `adj` (adjacency lists indexed by node id, including
// virtual nodes created earlier). Returns the number of virtual nodes added.
//
// Buckets are mined as sorted runs of (shingle, node) pairs rather than a
// hash map: clusters created by earlier buckets shrink the adjacency lists
// later buckets intersect, so the bucket visit order is observable — sorting
// pins it to ascending shingle value (deterministic across standard
// libraries), keeps members of a bucket in ascending node order like the
// insertion-ordered map did, and replaces per-node hashing/rehashing with
// one contiguous sort on the cold-start path.
int MinePass(std::vector<std::vector<NodeId>>& adj, const VncOptions& o,
             uint64_t salt, bool prefix_pass) {
  std::vector<std::pair<uint64_t, NodeId>> keyed;
  keyed.reserve(adj.size());
  for (NodeId u = 0; u < adj.size(); ++u) {
    if (adj[u].size() < static_cast<size_t>(o.min_pattern_size)) continue;
    keyed.emplace_back(prefix_pass ? PrefixShingle(adj[u], o.min_pattern_size)
                                   : Shingle(adj[u], salt),
                       u);
  }
  std::sort(keyed.begin(), keyed.end());

  int created = 0;
  std::vector<NodeId> members;
  for (size_t run = 0; run < keyed.size();) {
    size_t end = run;
    while (end < keyed.size() && keyed[end].first == keyed[run].first) ++end;
    members.clear();
    for (size_t i = run; i < end; ++i) members.push_back(keyed[i].second);
    run = end;
    if (members.size() < static_cast<size_t>(o.min_cluster_size)) continue;
    // Grow the cluster greedily from the first member: admit a member only
    // if the running common set stays above the pattern threshold. This is
    // the simplification of the Buehrer-Chellapilla pattern growth.
    std::vector<NodeId> common = adj[members[0]];
    std::vector<NodeId> cluster = {members[0]};
    for (size_t i = 1; i < members.size(); ++i) {
      std::vector<NodeId> next;
      std::set_intersection(common.begin(), common.end(),
                            adj[members[i]].begin(), adj[members[i]].end(),
                            std::back_inserter(next));
      if (next.size() >= static_cast<size_t>(o.min_pattern_size)) {
        common.swap(next);
        cluster.push_back(members[i]);
      }
    }
    if (cluster.size() < static_cast<size_t>(o.min_cluster_size)) continue;
    if (common.size() < static_cast<size_t>(o.min_pattern_size)) continue;
    // Saving check: replace |cluster|*|common| edges with |cluster|+|common|.
    if (cluster.size() * common.size() <= cluster.size() + common.size()) {
      continue;
    }
    NodeId virtual_id = static_cast<NodeId>(adj.size());
    adj.push_back(common);
    for (NodeId m : cluster) {
      std::vector<NodeId> reduced;
      std::set_difference(adj[m].begin(), adj[m].end(), common.begin(),
                          common.end(), std::back_inserter(reduced));
      reduced.push_back(virtual_id);  // virtual ids are the largest: stays sorted
      adj[m].swap(reduced);
    }
    ++created;
  }
  return created;
}

}  // namespace

VncResult VirtualNodeCompress(const Graph& g, const VncOptions& options) {
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj[u].assign(nbrs.begin(), nbrs.end());
  }

  // Alternate deterministic prefix-shingle passes (catch shared template
  // prefixes exactly) with salted min-hash passes (catch general overlap).
  uint64_t salt = options.seed;
  for (int pass = 0; pass < options.num_passes; ++pass) {
    if (MinePass(adj, options, Mix64(salt + pass), pass % 2 == 0) == 0) break;
  }

  EdgeList edges;
  for (NodeId u = 0; u < adj.size(); ++u) {
    for (NodeId v : adj[u]) edges.emplace_back(u, v);
  }
  VncResult r;
  r.num_real_nodes = g.num_nodes();
  r.original_edges = g.num_edges();
  r.graph = Graph::FromEdges(static_cast<NodeId>(adj.size()), edges);
  return r;
}

std::vector<NodeId> ExpandedNeighbors(const VncResult& r, NodeId u) {
  std::vector<NodeId> out;
  std::vector<NodeId> stack(r.graph.Neighbors(u).begin(),
                            r.graph.Neighbors(u).end());
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    if (v < r.num_real_nodes) {
      out.push_back(v);
    } else {
      auto nbrs = r.graph.Neighbors(v);
      stack.insert(stack.end(), nbrs.begin(), nbrs.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace gcgt
