// Token bucket: the fair-admission primitive of the serving tier.
//
// GcgtService keeps one bucket per ServiceQuery::client_id so no tenant can
// monopolize the admission queue: a client may admit `burst` queries
// instantly and `tokens_per_sec` sustained; beyond that its submissions are
// shed with Unavailable while other clients' buckets are untouched.
//
// Time is passed in explicitly (steady_clock time points) rather than read
// internally, so refill math is a pure function of the call trace — fairness
// bounds are unit-testable with a fake clock, and the caller amortizes one
// clock read across the bucket-map lookup. Not thread-safe; the service
// guards its bucket map with a mutex.
#ifndef GCGT_UTIL_TOKEN_BUCKET_H_
#define GCGT_UTIL_TOKEN_BUCKET_H_

#include <algorithm>
#include <chrono>

namespace gcgt {

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts full: a new client gets its whole burst immediately.
  TokenBucket(double tokens_per_sec, double burst, Clock::time_point now)
      : rate_(tokens_per_sec < 0 ? 0 : tokens_per_sec),
        burst_(burst < 1 ? 1 : burst),
        tokens_(burst_),
        last_(now) {}

  /// Takes `cost` tokens if available as of `now`; false (and no tokens
  /// consumed) otherwise. Monotonically non-decreasing `now` values are the
  /// caller's responsibility (steady_clock provides this).
  bool TryAcquire(Clock::time_point now, double cost = 1.0) {
    Refill(now);
    // A microtoken of slack absorbs accumulated refill error — both binary
    // floating point and the clock's nanosecond truncation of intervals
    // like 1/3 s — so a client submitting exactly at its sustained rate is
    // never spuriously shed. Far below any fairness-relevant granularity.
    if (tokens_ + 1e-6 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  double tokens(Clock::time_point now) {
    Refill(now);
    return tokens_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(Clock::time_point now) {
    if (now <= last_) return;
    const double elapsed_sec =
        std::chrono::duration_cast<std::chrono::duration<double>>(now - last_)
            .count();
    tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_sec);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace gcgt

#endif  // GCGT_UTIL_TOKEN_BUCKET_H_
