// Cooperative cancellation and deadlines for long-running queries.
//
// A CancelSource is the writer end (the client that may abort a query); a
// CancelToken is the cheap, copyable reader end threaded down through
// GcgtSession::Run into TraversalPipeline's round loop. Engines poll
// Check() at safe points (once per traversal round, between BC sources) and
// abort with Status::Cancelled / Status::DeadlineExceeded — cooperative, so
// a traversal never stops mid-round with partial label writes: an aborted
// query leaves only per-query scratch state, which the next Reset() clears.
//
// Deadlines are absolute steady_clock time points carried BY VALUE in the
// token (merging a service-level default deadline onto a client token never
// mutates shared state); the cancel flag is the only shared piece. A
// default-constructed token can never expire and its Check() is branch-cheap
// (no clock read), so un-deadlined queries pay nothing.
#ifndef GCGT_UTIL_CANCEL_TOKEN_H_
#define GCGT_UTIL_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "util/status.h"

namespace gcgt {

class CancelSource;

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never cancels, never expires.
  CancelToken() = default;

  /// A token with no writer that expires at `deadline`.
  static CancelToken WithDeadline(Clock::time_point deadline) {
    CancelToken token;
    token.deadline_ = deadline;
    return token;
  }

  /// This token with its deadline tightened to min(current, `deadline`) —
  /// how a service layers its default timeout onto a client's token without
  /// touching the shared cancel flag.
  CancelToken WithDeadlineMin(Clock::time_point deadline) const {
    CancelToken token(*this);
    if (deadline < token.deadline_) token.deadline_ = deadline;
    return token;
  }

  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }
  Clock::time_point deadline() const { return deadline_; }

  /// This token, additionally observing `source`'s cancel flag — how the
  /// serving tier layers a per-attempt abort (cancel the losing hedge of a
  /// first-completion-wins pair) onto a client's token without touching the
  /// client's shared flag. A token carries at most two flags; linking again
  /// replaces the attempt flag. Defined after CancelSource.
  inline CancelToken WithLinkedSource(const CancelSource& source) const;

  /// True when Check() can ever return non-OK — lets hot loops skip the
  /// clock read for default tokens.
  bool CanExpire() const {
    return flag_ != nullptr || linked_flag_ != nullptr || has_deadline();
  }

  /// True once either observed source was cancelled (deadline not
  /// considered).
  bool cancelled() const {
    return (flag_ && flag_->load(std::memory_order_acquire)) ||
           (linked_flag_ && linked_flag_->load(std::memory_order_acquire));
  }

  /// OK, Cancelled (explicit cancel wins) or DeadlineExceeded as of `now`.
  /// The explicit-now overload exists so deadline logic is testable without
  /// real sleeps.
  Status CheckAt(Clock::time_point now) const {
    if (cancelled()) return Status::Cancelled("query was cancelled");
    if (now >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  Status Check() const {
    if (!CanExpire()) return Status::OK();  // no clock read on the fast path
    if (cancelled()) return Status::Cancelled("query was cancelled");
    if (!has_deadline()) return Status::OK();
    return CheckAt(Clock::now());
  }

 private:
  friend class CancelSource;
  std::shared_ptr<const std::atomic<bool>> flag_;  // null: never cancelled
  /// Second observed flag (WithLinkedSource); null for client-made tokens.
  std::shared_ptr<const std::atomic<bool>> linked_flag_;
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// The writer end: owns the shared cancel flag and hands out tokens.
/// Cancel() is sticky, idempotent and safe to call from any thread while
/// queries holding tokens are in flight.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  /// A token observing this source (optionally with a deadline too).
  CancelToken token() const {
    CancelToken t;
    t.flag_ = flag_;
    return t;
  }
  CancelToken token(CancelToken::Clock::time_point deadline) const {
    return token().WithDeadlineMin(deadline);
  }

 private:
  friend class CancelToken;
  std::shared_ptr<std::atomic<bool>> flag_;
};

inline CancelToken CancelToken::WithLinkedSource(
    const CancelSource& source) const {
  CancelToken token(*this);
  token.linked_flag_ = source.flag_;
  return token;
}

}  // namespace gcgt

#endif  // GCGT_UTIL_CANCEL_TOKEN_H_
