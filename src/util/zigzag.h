// Zigzag mapping between signed and unsigned integers, used by the CGR
// encoder for the first interval start / first residual which may lie below
// the source node id (paper Appendix C).
#ifndef GCGT_UTIL_ZIGZAG_H_
#define GCGT_UTIL_ZIGZAG_H_

#include <cstdint>

namespace gcgt {

/// n >= 0 -> 2n; n < 0 -> 2|n| - 1. So 0,−1,1,−2,2 → 0,1,2,3,4.
inline uint64_t ZigzagEncode(int64_t n) {
  return n >= 0 ? (static_cast<uint64_t>(n) << 1)
                : ((static_cast<uint64_t>(-(n + 1)) << 1) + 1);
}

/// Inverse of ZigzagEncode.
inline int64_t ZigzagDecode(uint64_t z) {
  return (z & 1) ? -static_cast<int64_t>((z >> 1) + 1)
                 : static_cast<int64_t>(z >> 1);
}

}  // namespace gcgt

#endif  // GCGT_UTIL_ZIGZAG_H_
