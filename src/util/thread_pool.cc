#include "util/thread_pool.h"

#include <algorithm>
#include <map>
#include <memory>

namespace gcgt {
namespace {

/// RAII set/restore of the calling thread's pool marker, so ParallelFor
/// restores it even when the job function throws (a leaked marker would make
/// every later call on this pool from that thread run inline forever).
class TlsMarkerGuard {
 public:
  TlsMarkerGuard(const ThreadPool** pool_slot, size_t* idx_slot,
                 const ThreadPool* pool, size_t idx)
      : pool_slot_(pool_slot),
        idx_slot_(idx_slot),
        saved_pool_(*pool_slot),
        saved_idx_(*idx_slot) {
    *pool_slot_ = pool;
    *idx_slot_ = idx;
  }
  ~TlsMarkerGuard() {
    *pool_slot_ = saved_pool_;
    *idx_slot_ = saved_idx_;
  }
  TlsMarkerGuard(const TlsMarkerGuard&) = delete;
  TlsMarkerGuard& operator=(const TlsMarkerGuard&) = delete;

 private:
  const ThreadPool** pool_slot_;
  size_t* idx_slot_;
  const ThreadPool* saved_pool_;
  size_t saved_idx_;
};

}  // namespace

thread_local const ThreadPool* ThreadPool::tl_pool_ = nullptr;
thread_local size_t ThreadPool::tl_thread_idx_ = 0;

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads_ = num_threads == 0
                     ? std::max<size_t>(1, std::thread::hardware_concurrency())
                     : num_threads;
  if (num_threads_ > 1) {
    workers_.reserve(num_threads_ - 1);
    for (size_t i = 1; i < num_threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    ++epoch_;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(size_t thread_idx) {
  tl_pool_ = this;
  tl_thread_idx_ = thread_idx;
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    RunChunks(thread_idx);
    if (done_workers_.fetch_add(1) + 1 == num_threads_) {
      std::unique_lock<std::mutex> lock(mu_);
      finished_.notify_all();
    }
  }
}

void ThreadPool::RunChunks(size_t thread_idx) {
  for (;;) {
    size_t begin = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= n_) return;
    size_t end = std::min(n_, begin + grain_);
    (*job_)(thread_idx, begin, end);
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  // Nested call from one of our own workers (or from the caller thread while
  // it participates in a ParallelFor): run inline under the caller's
  // thread_idx instead of deadlocking on the single job slot.
  if (tl_pool_ == this) {
    fn(tl_thread_idx_, 0, n);
    return;
  }
  grain = std::max<size_t>(1, grain);
  if (num_threads_ == 1 || n <= grain) {
    TlsMarkerGuard guard(&tl_pool_, &tl_thread_idx_, this, 0);
    fn(0, 0, n);
    return;
  }
  // Serialize concurrent top-level callers: the pool has one job slot, and
  // engines may share a pool across host threads. Nested calls never reach
  // this lock (handled above), so it cannot self-deadlock.
  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    n_ = n;
    grain_ = grain;
    next_.store(0, std::memory_order_relaxed);
    done_workers_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  wake_.notify_all();
  {
    TlsMarkerGuard guard(&tl_pool_, &tl_thread_idx_, this, 0);
    RunChunks(0);
  }
  if (done_workers_.fetch_add(1) + 1 != num_threads_) {
    std::unique_lock<std::mutex> lock(mu_);
    finished_.wait(lock, [&] {
      return done_workers_.load(std::memory_order_relaxed) == num_threads_;
    });
  }
  job_ = nullptr;
}

ThreadPool& SharedThreadPool(size_t num_threads) {
  static std::mutex mu;
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = pools[num_threads];
  if (!pool) pool = std::make_unique<ThreadPool>(num_threads);
  return *pool;
}

}  // namespace gcgt
