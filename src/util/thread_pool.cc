#include "util/thread_pool.h"

#include <algorithm>

namespace gcgt {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads_ = num_threads == 0
                     ? std::max<size_t>(1, std::thread::hardware_concurrency())
                     : num_threads;
  if (num_threads_ > 1) {
    workers_.reserve(num_threads_ - 1);
    for (size_t i = 1; i < num_threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    ++epoch_;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(size_t thread_idx) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    RunChunks(thread_idx);
    if (done_workers_.fetch_add(1) + 1 == num_threads_) {
      std::unique_lock<std::mutex> lock(mu_);
      finished_.notify_all();
    }
  }
}

void ThreadPool::RunChunks(size_t thread_idx) {
  for (;;) {
    size_t begin = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= n_) return;
    size_t end = std::min(n_, begin + grain_);
    (*job_)(thread_idx, begin, end);
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  if (num_threads_ == 1 || n <= grain) {
    fn(0, 0, n);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    n_ = n;
    grain_ = grain;
    next_.store(0, std::memory_order_relaxed);
    done_workers_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  wake_.notify_all();
  RunChunks(0);
  if (done_workers_.fetch_add(1) + 1 != num_threads_) {
    std::unique_lock<std::mutex> lock(mu_);
    finished_.wait(lock, [&] {
      return done_workers_.load(std::memory_order_relaxed) == num_threads_;
    });
  }
  job_ = nullptr;
}

}  // namespace gcgt
