// MSB-first bit stream writer/reader used by the CGR encoder and decoder.
//
// Bits are addressed globally: bit i lives in byte i/8 at in-byte position
// 7 - i%8, which makes the in-memory layout match the left-to-right bit
// strings printed in the paper (Fig. 2, Table 3, Fig. 5).
#ifndef GCGT_UTIL_BIT_STREAM_H_
#define GCGT_UTIL_BIT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gcgt {

/// Append-only MSB-first bit buffer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends a single bit (0 or 1).
  void PutBit(bool bit) {
    size_t byte = num_bits_ >> 3;
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte] |= static_cast<uint8_t>(1u << (7 - (num_bits_ & 7)));
    ++num_bits_;
  }

  /// Appends the low `width` bits of `value`, most significant bit first.
  /// `width` may be 0 (no-op); width must be <= 64.
  void PutBits(uint64_t value, int width) {
    for (int i = width - 1; i >= 0; --i) PutBit((value >> i) & 1u);
  }

  /// Appends `count` zero bits.
  void PutZeros(int count) {
    for (int i = 0; i < count; ++i) PutBit(false);
  }

  /// Pads with zero bits up to the next multiple of `align_bits`.
  void AlignTo(size_t align_bits) {
    while (num_bits_ % align_bits != 0) PutBit(false);
  }

  size_t num_bits() const { return num_bits_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

  /// Bit string like "0010110", for tests and debugging.
  std::string ToBitString() const;

 private:
  std::vector<uint8_t> bytes_;
  size_t num_bits_ = 0;
};

/// Random-access MSB-first bit reader over an external byte buffer.
///
/// The reader does not own the buffer. Reads past `num_bits` return zero bits
/// and set overflowed(); callers that decode untrusted data must check it.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t num_bits, size_t start_bit = 0)
      : data_(data), num_bits_(num_bits), pos_(start_bit) {}

  /// Reads one bit; returns 0 beyond the end.
  bool GetBit() {
    if (pos_ >= num_bits_) {
      overflowed_ = true;
      ++pos_;
      return false;
    }
    bool bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  /// Reads `width` bits MSB-first; width <= 64.
  uint64_t GetBits(int width) {
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) v = (v << 1) | (GetBit() ? 1u : 0u);
    return v;
  }

  /// Number of leading zero bits consumed before (and including) the
  /// terminating one bit. Returns the count of zeros. If the stream ends
  /// before a one bit, sets overflowed() and returns the zeros seen.
  int GetUnary() {
    int zeros = 0;
    while (!GetBit()) {
      if (overflowed_) return zeros;
      ++zeros;
    }
    return zeros;
  }

  size_t pos() const { return pos_; }
  void Seek(size_t bit_pos) { pos_ = bit_pos; }
  size_t num_bits() const { return num_bits_; }
  bool overflowed() const { return overflowed_; }
  /// Byte address of the current bit, for memory-coalescing models.
  size_t byte_pos() const { return pos_ >> 3; }

 private:
  const uint8_t* data_;
  size_t num_bits_;
  size_t pos_;
  bool overflowed_ = false;
};

/// Parses a string of '0'/'1' characters into a byte buffer (other characters
/// are skipped). Returns the buffer and the number of bits via out-param.
std::vector<uint8_t> BitsFromString(const std::string& bits, size_t* num_bits);

}  // namespace gcgt

#endif  // GCGT_UTIL_BIT_STREAM_H_
