// MSB-first bit stream writer/reader used by the CGR encoder and decoder.
//
// Bits are addressed globally: bit i lives in byte i/8 at in-byte position
// 7 - i%8, which makes the in-memory layout match the left-to-right bit
// strings printed in the paper (Fig. 2, Table 3, Fig. 5).
//
// The reader decodes word-at-a-time: multi-bit reads and unary runs load a
// 64-bit big-endian window and use shifts / countl_zero instead of walking
// one bit per iteration. Semantics (positions, overflow stickiness, zero
// bits past the end) are identical to the bit-at-a-time reference and are
// locked in by util_test.
#ifndef GCGT_UTIL_BIT_STREAM_H_
#define GCGT_UTIL_BIT_STREAM_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gcgt {

/// Append-only MSB-first bit buffer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends a single bit (0 or 1).
  void PutBit(bool bit) {
    size_t byte = num_bits_ >> 3;
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte] |= static_cast<uint8_t>(1u << (7 - (num_bits_ & 7)));
    ++num_bits_;
  }

  /// Appends the low `width` bits of `value`, most significant bit first.
  /// `width` may be 0 (no-op); width must be <= 64. Writes up to a byte at a
  /// time instead of bit-by-bit.
  void PutBits(uint64_t value, int width) {
    if (width <= 0) return;
    if (width < 64) value &= (uint64_t{1} << width) - 1;
    size_t need = (num_bits_ + static_cast<size_t>(width) + 7) >> 3;
    if (bytes_.size() < need) bytes_.resize(need, 0);
    int rem = width;
    while (rem > 0) {
      size_t byte = num_bits_ >> 3;
      int off = static_cast<int>(num_bits_ & 7);
      int take = std::min(8 - off, rem);
      uint8_t chunk =
          static_cast<uint8_t>((value >> (rem - take)) & ((1u << take) - 1));
      bytes_[byte] |= static_cast<uint8_t>(chunk << (8 - off - take));
      num_bits_ += static_cast<size_t>(take);
      rem -= take;
    }
  }

  /// Appends `count` zero bits (bytes are already zero-initialized, so this
  /// only advances the cursor).
  void PutZeros(int count) {
    if (count <= 0) return;
    num_bits_ += static_cast<size_t>(count);
    size_t need = (num_bits_ + 7) >> 3;
    if (bytes_.size() < need) bytes_.resize(need, 0);
  }

  /// Pads with zero bits up to the next multiple of `align_bits`.
  void AlignTo(size_t align_bits) {
    size_t rem = num_bits_ % align_bits;
    if (rem != 0) PutZeros(static_cast<int>(align_bits - rem));
  }

  size_t num_bits() const { return num_bits_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

  /// Bit string like "0010110", for tests and debugging.
  std::string ToBitString() const;

 private:
  std::vector<uint8_t> bytes_;
  size_t num_bits_ = 0;
};

/// Random-access MSB-first bit reader over an external byte buffer.
///
/// The reader does not own the buffer. Reads past `num_bits` return zero bits
/// and set overflowed(); callers that decode untrusted data must check it.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t num_bits, size_t start_bit = 0)
      : data_(data), num_bits_(num_bits), pos_(start_bit) {}

  /// Reads one bit; returns 0 beyond the end.
  bool GetBit() {
    if (pos_ >= num_bits_) {
      overflowed_ = true;
      ++pos_;
      return false;
    }
    bool bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  /// Reads `width` bits MSB-first; width <= 64. Bits past the end read as
  /// zero and set overflowed(), exactly like `width` GetBit() calls.
  uint64_t GetBits(int width) {
    if (width <= 0) return 0;
    size_t avail = pos_ < num_bits_ ? num_bits_ - pos_ : 0;
    if (static_cast<size_t>(width) <= avail) {
      uint64_t v = PeekFast(width);
      pos_ += static_cast<size_t>(width);
      return v;
    }
    overflowed_ = true;
    // Available bits followed by implicit zeros, like GetBit past the end.
    uint64_t v = avail != 0 ? PeekFast(static_cast<int>(avail))
                                  << (static_cast<size_t>(width) - avail)
                            : 0;
    pos_ += static_cast<size_t>(width);
    return v;
  }

  /// Number of leading zero bits consumed before (and including) the
  /// terminating one bit. Returns the count of zeros. If the stream ends
  /// before a one bit, sets overflowed() and returns the zeros seen.
  /// Zero runs are counted a 64-bit window at a time via countl_zero.
  int GetUnary() {
    if (overflowed_) {
      // Sticky-overflow quirk of the bit-at-a-time loop: the overflow check
      // runs before the zero is counted, so exactly one bit is consumed and
      // zero is returned regardless of its value.
      GetBit();
      return 0;
    }
    int zeros = 0;
    const size_t nbytes = (num_bits_ + 7) >> 3;
    for (;;) {
      if (pos_ >= num_bits_) {
        overflowed_ = true;
        ++pos_;
        return zeros;
      }
      const size_t b = pos_ >> 3;
      const int off = static_cast<int>(pos_ & 7);
      uint64_t window;
      int window_bits;
      if (b + 8 <= nbytes) {
        window = LoadBe64(data_ + b) << off;
        window_bits = 64 - off;
      } else {
        window = LoadBeTail(data_ + b, nbytes - b) << off;
        window_bits = static_cast<int>(8 * (nbytes - b)) - off;
      }
      const uint64_t lim =
          std::min<uint64_t>(static_cast<uint64_t>(window_bits),
                             num_bits_ - pos_);
      const int lz = window == 0 ? 64 : std::countl_zero(window);
      if (static_cast<uint64_t>(lz) < lim) {
        zeros += lz;
        pos_ += static_cast<size_t>(lz) + 1;
        return zeros;
      }
      zeros += static_cast<int>(lim);
      pos_ += lim;
    }
  }

  /// Peeks up to 64 bits at the current position without advancing, returned
  /// MSB-aligned (bit at pos_ is bit 63 of the result). `*valid` receives the
  /// number of in-bounds bits (<= 64); bits below them are zero. Lets batched
  /// decoders extract several codewords from one load instead of re-reading
  /// the window per symbol.
  uint64_t PeekWindow(int* valid) const {
    const size_t avail = pos_ < num_bits_ ? num_bits_ - pos_ : 0;
    const int width = static_cast<int>(std::min<size_t>(64, avail));
    *valid = width;
    if (width == 0) return 0;
    const uint64_t v = PeekFast(width);
    return width == 64 ? v : v << (64 - width);
  }

  size_t pos() const { return pos_; }
  void Seek(size_t bit_pos) { pos_ = bit_pos; }
  size_t num_bits() const { return num_bits_; }
  bool overflowed() const { return overflowed_; }
  /// Byte address of the current bit, for memory-coalescing models.
  size_t byte_pos() const { return pos_ >> 3; }

 private:
  /// 64-bit big-endian load; GCC/Clang fold the shift chain into one
  /// bswap-ed load.
  static uint64_t LoadBe64(const uint8_t* p) {
    return (static_cast<uint64_t>(p[0]) << 56) |
           (static_cast<uint64_t>(p[1]) << 48) |
           (static_cast<uint64_t>(p[2]) << 40) |
           (static_cast<uint64_t>(p[3]) << 32) |
           (static_cast<uint64_t>(p[4]) << 24) |
           (static_cast<uint64_t>(p[5]) << 16) |
           (static_cast<uint64_t>(p[6]) << 8) | static_cast<uint64_t>(p[7]);
  }

  /// Big-endian load of the final `n` (< 8) bytes of the buffer, left-aligned
  /// in the returned word (missing low bytes read as zero).
  static uint64_t LoadBeTail(const uint8_t* p, size_t n) {
    uint64_t w = 0;
    for (size_t i = 0; i < n; ++i) {
      w |= static_cast<uint64_t>(p[i]) << (56 - 8 * i);
    }
    return w;
  }

  /// Reads `width` bits starting at pos_ without advancing.
  /// Precondition: pos_ + width <= num_bits_ and width >= 1.
  uint64_t PeekFast(int width) const {
    const size_t b = pos_ >> 3;
    const int off = static_cast<int>(pos_ & 7);
    const size_t nbytes = (num_bits_ + 7) >> 3;
    if (b + 8 <= nbytes) {
      const uint64_t w = LoadBe64(data_ + b);
      if (off + width <= 64) return (w << off) >> (64 - width);
      // The read spans into a 9th byte; off >= 1 here because width <= 64.
      const uint64_t lo = data_[b + 8];
      return ((w << off) | (lo >> (8 - off))) >> (64 - width);
    }
    // Tail: fewer than 8 bytes remain, so off + width <= 56 < 64.
    const uint64_t w = LoadBeTail(data_ + b, nbytes - b);
    return (w << off) >> (64 - width);
  }

  const uint8_t* data_;
  size_t num_bits_;
  size_t pos_;
  bool overflowed_ = false;
};

/// Parses a string of '0'/'1' characters into a byte buffer (other characters
/// are skipped). Returns the buffer and the number of bits via out-param.
std::vector<uint8_t> BitsFromString(const std::string& bits, size_t* num_bits);

}  // namespace gcgt

#endif  // GCGT_UTIL_BIT_STREAM_H_
