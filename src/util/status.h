// Status / Result error handling in the RocksDB style: no exceptions cross
// module boundaries; fallible functions return Status or Result<T>.
#ifndef GCGT_UTIL_STATUS_H_
#define GCGT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gcgt {

/// Operation outcome for all fallible public APIs.
///
/// A Status either carries Code::kOk or an error code plus a human readable
/// message. It is cheap to copy in the OK case (empty message).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfMemory,
    kNotFound,
    kCorruption,
    kIOError,
    kNotSupported,
    kInternal,
    kUnavailable,
    kDeadlineExceeded,
    kCancelled,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status OutOfMemory(std::string_view msg) {
    return Status(Code::kOutOfMemory, msg);
  }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) { return Status(Code::kIOError, msg); }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) { return Status(Code::kInternal, msg); }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(Code::kCancelled, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsOutOfMemory() const { return code_ == Code::kOutOfMemory; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for logging.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static std::string_view CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kOutOfMemory: return "OutOfMemory";
      case Code::kNotFound: return "NotFound";
      case Code::kCorruption: return "Corruption";
      case Code::kIOError: return "IOError";
      case Code::kNotSupported: return "NotSupported";
      case Code::kInternal: return "Internal";
      case Code::kUnavailable: return "Unavailable";
      case Code::kDeadlineExceeded: return "DeadlineExceeded";
      case Code::kCancelled: return "Cancelled";
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}   // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of an errored Result aborts.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define GCGT_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::gcgt::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace gcgt

#endif  // GCGT_UTIL_STATUS_H_
