// Deterministic, seeded fault injection for the serving stack.
//
// Chaos testing only proves something when the chaos is reproducible: the
// injector decides "fail here?" from a pure hash of (seed, injection point,
// per-point call ordinal), so the SAME seed and rate always produce the SAME
// decision sequence at every point — a failing chaos run can be replayed
// bit-for-bit by its seed. Under concurrency the ordinal is a per-point
// atomic counter: the SET of injected (point, ordinal) pairs is still a pure
// function of the seed; only which thread draws which ordinal varies.
//
// Injection points are named seams of the serving path (queue admission,
// worker serve, the pipeline's decode round, cache lookup/insert). Each
// consumer asks ShouldInject(point) and simulates its own failure mode —
// a shed admission, a thrown worker exception, an Internal decode error, a
// forced cache miss — so the injector stays policy-free.
//
// Cost when disabled: one relaxed atomic load (the common case in
// production and in every non-chaos test).
//
// Configuration is process-global (points are buried in hot paths where
// threading an instance through would be invasive). Enable/Disable must not
// race with in-flight serving: enable before constructing services, disable
// after Shutdown. GcgtService::GcgtService also calls InitFromEnv(), so any
// binary can be put under chaos externally:
//   GCGT_FAULT_SEED=42 GCGT_FAULT_RATE=0.05 [GCGT_FAULT_POINTS=0x1f] ./app
#ifndef GCGT_UTIL_FAULT_INJECTOR_H_
#define GCGT_UTIL_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace gcgt {

enum class FaultPoint : int {
  kQueueAdmit = 0,  ///< Submit/TrySubmit: admission sheds the query
  kWorkerServe,     ///< worker loop: throws before running the query
  kDecodeRound,     ///< TraversalPipeline round loop: Internal decode error
  kCacheLookup,     ///< result cache: lookup reports a miss
  kCacheInsert,     ///< result cache: insertion is dropped
  kHedgeDispatch,   ///< watchdog: a due hedge re-dispatch is suppressed
  kShedDecision,    ///< worker serve: a spurious overload shed (Unavailable)
  kWatchdogTick,    ///< watchdog: a whole tick (stuck/hedge/brownout
                    ///< scans) is skipped
  kIntersectKernel, ///< intersect engine kernel loop: Internal error
  kNumPoints,
};

inline constexpr int kNumFaultPoints = static_cast<int>(FaultPoint::kNumPoints);

const char* FaultPointName(FaultPoint point);

/// Mask with every injection point set.
inline constexpr uint32_t kAllFaultPoints = (1u << kNumFaultPoints) - 1;

struct FaultInjectorStats {
  /// ShouldInject calls / true returns per point, since the last Enable.
  std::array<uint64_t, kNumFaultPoints> evaluated{};
  std::array<uint64_t, kNumFaultPoints> injected{};

  uint64_t total_injected() const {
    uint64_t n = 0;
    for (uint64_t v : injected) n += v;
    return n;
  }
};

class FaultInjector {
 public:
  /// The process-wide injector every GCGT injection point consults.
  static FaultInjector& Global();

  /// Arms injection: each enabled point fails its n-th evaluation iff
  /// Hash(seed, point, n) maps below `rate` (clamped to [0, 1]). Resets all
  /// per-point ordinals and stats, so two Enable(seed, rate) runs over the
  /// same serial workload inject identically.
  void Enable(uint64_t seed, double rate, uint32_t point_mask = kAllFaultPoints);

  /// Disarms injection (counters keep their values for post-run assertions).
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint64_t seed() const { return seed_; }
  double rate() const { return rate_; }

  /// The per-point decision. False whenever disabled or the point is masked
  /// out; otherwise deterministic in (seed, point, per-point ordinal).
  bool ShouldInject(FaultPoint point) {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    return Roll(point);
  }

  /// Arms the global injector from GCGT_FAULT_SEED / GCGT_FAULT_RATE /
  /// GCGT_FAULT_POINTS (hex or decimal mask, default all) when both seed and
  /// rate are set. Returns whether injection was armed. Idempotent per
  /// Enable semantics; called by GcgtService so chaos CI jobs need no code.
  static bool InitFromEnv();

  FaultInjectorStats Stats() const;

 private:
  FaultInjector() = default;
  bool Roll(FaultPoint point);

  std::atomic<bool> enabled_{false};
  uint64_t seed_ = 0;
  double rate_ = 0.0;
  uint32_t point_mask_ = kAllFaultPoints;
  std::array<std::atomic<uint64_t>, kNumFaultPoints> ordinal_{};
  std::array<std::atomic<uint64_t>, kNumFaultPoints> evaluated_{};
  std::array<std::atomic<uint64_t>, kNumFaultPoints> injected_{};
};

}  // namespace gcgt

#endif  // GCGT_UTIL_FAULT_INJECTOR_H_
