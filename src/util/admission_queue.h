// Priority- and deadline-aware bounded admission queue for the serving tier.
//
// BoundedQueue (util/bounded_queue.h) is a plain FIFO: under burst load a
// deep queue lets deadline-doomed work starve feasible queries. This queue
// replaces it at the GcgtService front end with three overload-control
// mechanisms, all deterministic for a fixed (clock, arrival, pop) trace:
//
//  - Strict priority classes + EDF. Entries are kept in one ordered map per
//    QueryPriority class, keyed (deadline, arrival seq). Pop always serves
//    the highest-priority non-empty class, earliest deadline first, arrival
//    order as the tie-break; entries without a deadline sort after every
//    deadlined entry of their class (FIFO among themselves). A batch query
//    with an imminent deadline never preempts interactive work — the classes
//    are strict, EDF applies within a class.
//  - Lazy expiry sweeping. An entry whose deadline passes while queued is
//    never handed to a consumer as work: each Pop first sweeps the expired
//    front of every class map into PopOutcome::expired (the fronts are
//    exactly where expired entries live, so the sweep is O(expired)). The
//    caller fails those entries without spending worker time. "Lazy" means
//    the sweep runs at pop activity, not on a timer — an expired entry can
//    sit until a worker next drains.
//  - CoDel-style sojourn shedding. The controller watches the queueing delay
//    of POPPED entries (sojourn time = pop - push). While it stays at or
//    above `shed_target` continuously for `shed_interval`, each pop sheds
//    one entry from the BACK of the LOWEST-priority non-empty class (the
//    least-urgent, least-important queued work) into PopOutcome::shed — so
//    the shed rate tracks the drain rate, standing-queue delay is bounded,
//    and a single sub-target pop resets the controller.
//
// FIFO mode (`AdmissionQueueOptions::edf = false`) restores BoundedQueue
// semantics exactly — one global arrival-order queue, no sweeping, no
// shedding — and is the A/B baseline the overload bench compares against.
//
// Contracts shared with BoundedQueue: Push blocks while full and returns
// false only once closed (a failed Push never consumes the item); TryPush
// sheds instead of blocking; after Close, Pop drains every accepted entry
// (as an item, an expiry, or a shed) before reporting open=false. The clock
// is injectable (`now_fn`) so EDF ordering, sweeping and shedding are unit-
// testable without real sleeps.
#ifndef GCGT_UTIL_ADMISSION_QUEUE_H_
#define GCGT_UTIL_ADMISSION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace gcgt {

/// Strict service classes for admission ordering. Lower value = served
/// first; shedding removes from the highest value (least important) first.
enum class QueryPriority : int {
  kInteractive = 0,  ///< latency-sensitive, served ahead of everything
  kBatch = 1,        ///< throughput work that tolerates queueing
  kBestEffort = 2,   ///< scavenger class: first to shed under overload
};

inline constexpr int kNumQueryPriorities = 3;

inline const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kInteractive: return "interactive";
    case QueryPriority::kBatch: return "batch";
    case QueryPriority::kBestEffort: return "best_effort";
  }
  return "unknown";
}

struct AdmissionQueueOptions {
  size_t capacity = 256;
  /// EDF discipline (see file comment). false = legacy global FIFO: no
  /// reordering, no expiry sweeping, no shedding.
  bool edf = true;
  /// Sojourn-time target for the CoDel-style controller; 0 disables
  /// shedding. Only meaningful in EDF mode.
  std::chrono::nanoseconds shed_target{0};
  /// How long sojourn must stay at/above target before shedding starts.
  std::chrono::nanoseconds shed_interval{std::chrono::milliseconds(100)};
};

struct AdmissionQueueStats {
  uint64_t pushed = 0;   ///< entries accepted (Push true / TryPush kOk)
  uint64_t popped = 0;   ///< entries handed to a consumer as live work
  uint64_t expired = 0;  ///< entries swept: deadline passed while queued
  uint64_t shed = 0;     ///< entries shed by the sojourn controller
};

template <typename T>
class AdmissionQueue {
 public:
  using Clock = std::chrono::steady_clock;
  using NowFn = std::function<Clock::time_point()>;
  enum class PushResult { kOk, kFull, kClosed };

  explicit AdmissionQueue(const AdmissionQueueOptions& options,
                          NowFn now_fn = nullptr)
      : options_(options), now_fn_(std::move(now_fn)) {
    if (options_.capacity < 1) options_.capacity = 1;
  }

  /// Blocks while full (backpressure); false once closed — and a false Push
  /// never consumes `item`. `deadline` is the entry's EDF key and expiry
  /// time (time_point::max() = none).
  bool Push(T& item, QueryPriority priority,
            Clock::time_point deadline = Clock::time_point::max()) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || size_ < options_.capacity; });
    if (closed_) return false;
    Enqueue(std::move(item), priority, deadline);
    not_empty_.notify_one();
    return true;
  }

  /// Sheds instead of blocking: kFull leaves `item` untouched.
  PushResult TryPush(T& item, QueryPriority priority,
                     Clock::time_point deadline = Clock::time_point::max()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (size_ >= options_.capacity) return PushResult::kFull;
    Enqueue(std::move(item), priority, deadline);
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  struct PopOutcome {
    std::optional<T> item;   ///< the selected live entry, if any
    std::vector<T> expired;  ///< swept this call: deadline passed in queue
    std::vector<T> shed;     ///< shed this call by the sojourn controller
    /// False only once the queue is closed AND fully drained — the consumer
    /// exit condition. A Pop may return open=true with no item when it only
    /// swept expired entries (the caller fails those and pops again).
    bool open = true;
  };

  /// Blocks until an entry is available or the queue is closed and drained.
  /// Expired entries never surface as `item`.
  PopOutcome Pop() {
    PopOutcome out;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (size_ == 0) {
        if (closed_) {
          out.open = false;
          return out;
        }
        not_empty_.wait(lock, [&] { return closed_ || size_ != 0; });
        continue;  // re-derive: closed-and-empty exits above
      }
      const Clock::time_point now = Now();
      if (options_.edf) {
        SweepExpiredLocked(now, &out.expired);
        if (size_ == 0) {
          if (!out.expired.empty()) {
            // Hand the sweep back now rather than blocking with doomed
            // entries in hand; the caller fails them and pops again.
            not_full_.notify_all();
            return out;
          }
          continue;
        }
      }
      // Select: highest-priority non-empty class, then the map order
      // (EDF mode: earliest deadline, arrival tie-break; FIFO mode: one
      // class in arrival order).
      int cls = 0;
      while (classes_[cls].empty()) ++cls;
      auto it = classes_[cls].begin();
      Entry entry = std::move(it->second);
      classes_[cls].erase(it);
      --size_;
      ++stats_.popped;
      // CoDel-style controller on the popped entry's sojourn time.
      if (options_.edf && options_.shed_target.count() > 0) {
        if (now - entry.enqueued < options_.shed_target) {
          above_since_.reset();
        } else {
          if (!above_since_) above_since_ = now;
          if (now - *above_since_ >= options_.shed_interval) {
            ShedOneLocked(&out.shed);
          }
        }
      }
      out.item = std::move(entry.item);
      not_full_.notify_all();
      return out;
    }
  }

  /// Stops admissions; Pop drains what was accepted, then reports
  /// open=false. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return options_.capacity; }
  AdmissionQueueStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Entry {
    T item;
    Clock::time_point enqueued;
  };
  /// EDF key: (deadline, arrival seq). No-deadline entries carry max() —
  /// FIFO among themselves, after every deadlined entry of the class.
  using Key = std::pair<Clock::time_point, uint64_t>;

  Clock::time_point Now() const { return now_fn_ ? now_fn_() : Clock::now(); }

  void Enqueue(T item, QueryPriority priority, Clock::time_point deadline) {
    const uint64_t seq = seq_++;
    int cls = static_cast<int>(priority);
    Key key{deadline, seq};
    if (!options_.edf) {
      // FIFO mode: one class, pure arrival order, deadlines ignored for
      // ordering and sweeping.
      cls = 0;
      key = Key{Clock::time_point::min(), seq};
    }
    classes_[cls].emplace(key, Entry{std::move(item), Now()});
    ++size_;
    ++stats_.pushed;
  }

  void SweepExpiredLocked(Clock::time_point now, std::vector<T>* expired) {
    for (auto& cls : classes_) {
      // Expired entries are exactly the front run of the class map (EDF key
      // leads with the deadline), so the sweep is O(number swept).
      while (!cls.empty() && cls.begin()->first.first <= now) {
        expired->push_back(std::move(cls.begin()->second.item));
        cls.erase(cls.begin());
        --size_;
        ++stats_.expired;
      }
    }
  }

  void ShedOneLocked(std::vector<T>* shed) {
    for (int cls = kNumQueryPriorities - 1; cls >= 0; --cls) {
      auto& m = classes_[cls];
      if (m.empty()) continue;
      auto it = std::prev(m.end());  // least-urgent entry of the class
      shed->push_back(std::move(it->second.item));
      m.erase(it);
      --size_;
      ++stats_.shed;
      return;
    }
  }

  AdmissionQueueOptions options_;
  NowFn now_fn_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  bool closed_ = false;
  size_t size_ = 0;
  uint64_t seq_ = 0;
  std::map<Key, Entry> classes_[kNumQueryPriorities];
  std::optional<Clock::time_point> above_since_;  // sojourn >= target since
  AdmissionQueueStats stats_;
};

}  // namespace gcgt

#endif  // GCGT_UTIL_ADMISSION_QUEUE_H_
