// Bounded MPMC queue: the admission-control seam of the serving tier.
//
// A fixed-capacity FIFO shared by many producers (client threads submitting
// queries) and many consumers (worker threads draining them). The bound is
// the backpressure mechanism: Push blocks the producer while the queue is
// full (closed-loop clients slow down instead of ballooning memory), TryPush
// rejects instead of blocking (load shedding for latency-sensitive callers).
//
// Shutdown protocol: Close() wakes everyone; producers fail fast, consumers
// drain the remaining items and then see "closed" (Pop returns nullopt), so
// every accepted item is served exactly once — a graceful drain, never a
// drop.
//
// Push-after-Close contract (load-bearing for GcgtService's "every accepted
// future is fulfilled" guarantee): a Push or TryPush that observes the
// closed queue returns false/kClosed WITHOUT consuming the item — `item` is
// never moved-from on the failure path, so the caller still owns it and can
// fail its promise itself. Close() is idempotent and safe to race with
// concurrent Push/TryPush/Pop/Close from any thread: each push either lands
// before the close (and will be popped by the drain) or fails cleanly after
// it; there is no third outcome. See ServiceRobustnessTest and the
// BoundedQueue cases in tests/util_test.cc.
#ifndef GCGT_UTIL_BOUNDED_QUEUE_H_
#define GCGT_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gcgt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full (backpressure). Returns false — leaving `item`
  /// unconsumed — when the queue is (or becomes, while waiting) closed.
  bool Push(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  enum class PushResult { kOk, kFull, kClosed };

  /// Non-blocking admission control: kFull sheds the item (left unconsumed)
  /// instead of waiting for a consumer.
  PushResult TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks while empty. nullopt only once the queue is closed AND drained —
  /// consumers serve every accepted item before exiting.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Irreversibly stops admissions and wakes all waiters. Items already
  /// accepted remain poppable (the drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gcgt

#endif  // GCGT_UTIL_BOUNDED_QUEUE_H_
