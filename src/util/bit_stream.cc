#include "util/bit_stream.h"

namespace gcgt {

std::string BitWriter::ToBitString() const {
  std::string s;
  s.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) {
    s.push_back(((bytes_[i >> 3] >> (7 - (i & 7))) & 1u) ? '1' : '0');
  }
  return s;
}

std::vector<uint8_t> BitsFromString(const std::string& bits, size_t* num_bits) {
  BitWriter w;
  for (char c : bits) {
    if (c == '0') w.PutBit(false);
    if (c == '1') w.PutBit(true);
  }
  *num_bits = w.num_bits();
  return w.TakeBytes();
}

}  // namespace gcgt
