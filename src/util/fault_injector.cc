#include "util/fault_injector.h"

#include <cstdlib>

#include "util/random.h"

namespace gcgt {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kQueueAdmit: return "queue_admit";
    case FaultPoint::kWorkerServe: return "worker_serve";
    case FaultPoint::kDecodeRound: return "decode_round";
    case FaultPoint::kCacheLookup: return "cache_lookup";
    case FaultPoint::kCacheInsert: return "cache_insert";
    case FaultPoint::kHedgeDispatch: return "hedge_dispatch";
    case FaultPoint::kIntersectKernel: return "intersect_kernel";
    case FaultPoint::kShedDecision: return "shed_decision";
    case FaultPoint::kWatchdogTick: return "watchdog_tick";
    case FaultPoint::kNumPoints: break;
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Enable(uint64_t seed, double rate, uint32_t point_mask) {
  enabled_.store(false, std::memory_order_relaxed);
  seed_ = seed;
  rate_ = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
  point_mask_ = point_mask;
  for (int p = 0; p < kNumFaultPoints; ++p) {
    ordinal_[p].store(0, std::memory_order_relaxed);
    evaluated_[p].store(0, std::memory_order_relaxed);
    injected_[p].store(0, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::Roll(FaultPoint point) {
  const int p = static_cast<int>(point);
  if ((point_mask_ & (1u << p)) == 0) return false;
  const uint64_t n = ordinal_[p].fetch_add(1, std::memory_order_relaxed);
  evaluated_[p].fetch_add(1, std::memory_order_relaxed);
  // The decision is a pure function of (seed, point, ordinal): hash them
  // into a uniform double in [0, 1) the same way Rng::NextDouble maps words.
  const uint64_t h =
      Mix64(seed_ ^ Mix64((uint64_t{0x9e37u} << 32 | uint64_t(p)) ^ n * 0x9e3779b97f4a7c15ULL));
  const bool inject = (h >> 11) * 0x1.0p-53 < rate_;
  if (inject) injected_[p].fetch_add(1, std::memory_order_relaxed);
  return inject;
}

bool FaultInjector::InitFromEnv() {
  // Once per process: re-arming on every service construction would reset
  // the deterministic ordinals mid-chaos-run.
  static const bool armed = [] {
    const char* seed_env = std::getenv("GCGT_FAULT_SEED");
    const char* rate_env = std::getenv("GCGT_FAULT_RATE");
    if (seed_env == nullptr || rate_env == nullptr) return false;
    const uint64_t seed = std::strtoull(seed_env, nullptr, 0);
    const double rate = std::strtod(rate_env, nullptr);
    uint32_t mask = kAllFaultPoints;
    if (const char* mask_env = std::getenv("GCGT_FAULT_POINTS")) {
      mask = static_cast<uint32_t>(std::strtoul(mask_env, nullptr, 0));
    }
    Global().Enable(seed, rate, mask);
    return true;
  }();
  return armed;
}

FaultInjectorStats FaultInjector::Stats() const {
  FaultInjectorStats stats;
  for (int p = 0; p < kNumFaultPoints; ++p) {
    stats.evaluated[p] = evaluated_[p].load(std::memory_order_relaxed);
    stats.injected[p] = injected_[p].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace gcgt
