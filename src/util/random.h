// Deterministic, fast PRNG utilities (xoshiro256** seeded via SplitMix64).
// All generators, samplers and shuffles in this repo are seeded explicitly so
// every test and benchmark is reproducible bit-for-bit.
#ifndef GCGT_UTIL_RANDOM_H_
#define GCGT_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace gcgt {

/// SplitMix64 step; used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, usable as a hash.
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** — the repo-wide PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-like sample in [1, n]: P(k) proportional to k^-alpha, via rejection
  /// inversion. Good enough for degree-sequence generation.
  uint64_t Zipf(uint64_t n, double alpha) {
    // Inverse-CDF on the continuous approximation, then clamp.
    double u = NextDouble();
    if (alpha == 1.0) {
      double v = std::pow(static_cast<double>(n), u);
      uint64_t k = static_cast<uint64_t>(v);
      return k == 0 ? 1 : (k > n ? n : k);
    }
    double one_minus = 1.0 - alpha;
    double v = std::pow(u * (std::pow(static_cast<double>(n), one_minus) - 1.0) + 1.0,
                        1.0 / one_minus);
    uint64_t k = static_cast<uint64_t>(v);
    return k == 0 ? 1 : (k > n ? n : k);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace gcgt

#endif  // GCGT_UTIL_RANDOM_H_
