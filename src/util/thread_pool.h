// Work-sharing thread pool with persistent workers, used by the CPU
// baselines (Ligra / Ligra+). Workers park on a condition variable between
// ParallelFor calls, so per-level scheduling overhead stays in the
// microsecond range (important: BFS on high-diameter web graphs launches
// hundreds of small parallel steps).
#ifndef GCGT_UTIL_THREAD_POOL_H_
#define GCGT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcgt {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(thread_idx, begin, end) on sub-ranges of [0, n) across all
  /// threads; thread_idx < num_threads() identifies the calling worker so
  /// callers can keep race-free per-thread state. `grain` is the minimum
  /// chunk size handed to one thread at a time. Blocks until the whole range
  /// is processed.
  ///
  /// Reentrancy guard: a nested ParallelFor issued from inside a worker of
  /// this same pool runs the whole range inline on the calling worker, under
  /// the caller's own thread_idx. That keeps per-thread state race-free and
  /// cannot deadlock on the pool's single job slot.
  ///
  /// Top-level calls from different host threads are safe: the pool has one
  /// job slot, so they serialize on an internal mutex.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t thread_idx);
  void RunChunks(size_t thread_idx);

  // Identifies the pool + thread a nested ParallelFor is issued from.
  static thread_local const ThreadPool* tl_pool_;
  static thread_local size_t tl_thread_idx_;

  size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex job_mu_;  // serializes concurrent top-level ParallelFor callers
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable finished_;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;

  // Current job (valid while a ParallelFor is in flight).
  const std::function<void(size_t, size_t, size_t)>* job_ = nullptr;
  size_t n_ = 0;
  size_t grain_ = 1;
  std::atomic<size_t> next_{0};
  std::atomic<size_t> done_workers_{0};
};

/// Process-wide pools shared by every subsystem (traversal engine, LLP
/// reordering), keyed by requested thread count (0 = hardware concurrency).
/// Callers construct short-lived engines per query; sharing the pool
/// amortizes OS-thread spawn/join to once per process. Safe because
/// ThreadPool serializes concurrent top-level ParallelFor callers.
ThreadPool& SharedThreadPool(size_t num_threads = 0);

}  // namespace gcgt

#endif  // GCGT_UTIL_THREAD_POOL_H_
