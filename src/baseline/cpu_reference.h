// Serial CPU reference implementations used as correctness oracles:
// union-find connected components and Brandes betweenness centrality.
#ifndef GCGT_BASELINE_CPU_REFERENCE_H_
#define GCGT_BASELINE_CPU_REFERENCE_H_

#include <vector>

#include "graph/graph.h"

namespace gcgt {

/// Weakly connected components via union-find; returns the representative
/// (smallest node id in the component) per node.
std::vector<NodeId> SerialCc(const Graph& g);

struct SerialBcResult {
  std::vector<double> dependency;  // Brandes delta for one source
  std::vector<uint32_t> depth;
  std::vector<double> sigma;
};

/// Single-source Brandes dependency accumulation (the per-source term whose
/// sum over all sources is betweenness centrality).
SerialBcResult SerialBc(const Graph& g, NodeId source);

}  // namespace gcgt

#endif  // GCGT_BASELINE_CPU_REFERENCE_H_
