#include "baseline/cpu_bfs.h"

#include <atomic>
#include <deque>

namespace gcgt {
namespace {

// Shared scheduling skeleton for Ligra / Ligra+: NeighborScan is a callable
// (u, f) that applies f to every out-neighbor of u in `fwd`, or every
// in-neighbor when scanning `rev`.
template <typename ForwardScan, typename ReverseScan>
std::vector<uint32_t> DirectionOptimizingBfs(NodeId num_nodes, EdgeId num_edges,
                                             const std::vector<EdgeId>& out_deg,
                                             NodeId source, ThreadPool& pool,
                                             const LigraOptions& options,
                                             ForwardScan&& fwd,
                                             ReverseScan&& rev) {
  std::vector<std::atomic<uint32_t>> depth(num_nodes);
  for (auto& d : depth) d.store(kBfsUnreached, std::memory_order_relaxed);
  depth[source].store(0, std::memory_order_relaxed);

  std::vector<NodeId> frontier{source};
  std::vector<uint8_t> in_frontier(num_nodes, 0);
  uint32_t level = 0;
  const uint64_t dense_threshold =
      options.dense_denominator ? num_edges / options.dense_denominator : 0;

  while (!frontier.empty()) {
    uint64_t frontier_edges = 0;
    for (NodeId u : frontier) frontier_edges += out_deg[u];
    const bool dense = frontier_edges + frontier.size() > dense_threshold;

    std::vector<std::vector<NodeId>> next_parts(pool.num_threads());

    if (dense) {
      std::fill(in_frontier.begin(), in_frontier.end(), 0);
      for (NodeId u : frontier) in_frontier[u] = 1;
      pool.ParallelFor(num_nodes, 4096,
                       [&](size_t thread_idx, size_t begin, size_t end) {
        auto& next = next_parts[thread_idx];
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          if (depth[v].load(std::memory_order_relaxed) != kBfsUnreached) {
            continue;
          }
          // Pull: claim v if any in-neighbor is in the frontier.
          bool found = false;
          rev(v, [&](NodeId w) {
            if (!found && in_frontier[w]) found = true;
          });
          if (found) {
            depth[v].store(level + 1, std::memory_order_relaxed);
            next.push_back(v);
          }
        }
      });
    } else {
      pool.ParallelFor(frontier.size(), 64,
                       [&](size_t thread_idx, size_t begin, size_t end) {
        auto& next = next_parts[thread_idx];
        for (size_t i = begin; i < end; ++i) {
          NodeId u = frontier[i];
          fwd(u, [&](NodeId v) {
            uint32_t expected = kBfsUnreached;
            if (depth[v].compare_exchange_strong(expected, level + 1,
                                                 std::memory_order_relaxed)) {
              next.push_back(v);
            }
          });
        }
      });
    }

    frontier.clear();
    for (auto& part : next_parts) {
      frontier.insert(frontier.end(), part.begin(), part.end());
    }
    ++level;
  }

  std::vector<uint32_t> out(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    out[v] = depth[v].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace

std::vector<uint32_t> SerialBfs(const Graph& g, NodeId source) {
  std::vector<uint32_t> depth(g.num_nodes(), kBfsUnreached);
  std::deque<NodeId> queue;
  depth[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.Neighbors(u)) {
      if (depth[v] == kBfsUnreached) {
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return depth;
}

std::vector<uint32_t> LigraBfs(const Graph& g, const Graph& reverse,
                               NodeId source, ThreadPool& pool,
                               const LigraOptions& options) {
  std::vector<EdgeId> out_deg(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) out_deg[u] = g.out_degree(u);
  return DirectionOptimizingBfs(
      g.num_nodes(), g.num_edges(), out_deg, source, pool, options,
      [&](NodeId u, auto&& f) {
        for (NodeId v : g.Neighbors(u)) f(v);
      },
      [&](NodeId v, auto&& f) {
        for (NodeId w : reverse.Neighbors(v)) f(w);
      });
}

std::vector<uint32_t> LigraPlusBfs(const ByteRleGraph& g,
                                   const ByteRleGraph& reverse, NodeId source,
                                   ThreadPool& pool,
                                   const LigraOptions& options) {
  std::vector<EdgeId> out_deg(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) out_deg[u] = g.Degree(u);
  return DirectionOptimizingBfs(
      g.num_nodes(), g.num_edges(), out_deg, source, pool, options,
      [&](NodeId u, auto&& f) { g.ForEachNeighbor(u, f); },
      [&](NodeId v, auto&& f) { reverse.ForEachNeighbor(v, f); });
}

}  // namespace gcgt
