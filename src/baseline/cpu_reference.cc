#include "baseline/cpu_reference.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace gcgt {
namespace {

class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

std::vector<NodeId> SerialCc(const Graph& g) {
  UnionFind uf(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) uf.Union(u, v);
  }
  std::vector<NodeId> out(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) out[u] = uf.Find(u);
  return out;
}

SerialBcResult SerialBc(const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  SerialBcResult r;
  r.depth.assign(n, static_cast<uint32_t>(-1));
  r.sigma.assign(n, 0.0);
  r.dependency.assign(n, 0.0);

  std::vector<NodeId> order;  // BFS visit order
  order.reserve(n);
  std::deque<NodeId> queue;
  r.depth[source] = 0;
  r.sigma[source] = 1.0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (NodeId v : g.Neighbors(u)) {
      if (r.depth[v] == static_cast<uint32_t>(-1)) {
        r.depth[v] = r.depth[u] + 1;
        queue.push_back(v);
      }
      if (r.depth[v] == r.depth[u] + 1) r.sigma[v] += r.sigma[u];
    }
  }
  // Dependency accumulation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId u = *it;
    for (NodeId v : g.Neighbors(u)) {
      if (r.depth[v] == r.depth[u] + 1 && r.sigma[v] > 0) {
        r.dependency[u] += r.sigma[u] / r.sigma[v] * (1.0 + r.dependency[v]);
      }
    }
  }
  r.dependency[source] = 0.0;
  return r;
}

}  // namespace gcgt
