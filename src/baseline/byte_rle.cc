#include "baseline/byte_rle.h"

namespace gcgt {
namespace {

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t EncodeZigzag(int64_t n) {
  return n >= 0 ? (static_cast<uint64_t>(n) << 1)
                : ((static_cast<uint64_t>(-(n + 1)) << 1) + 1);
}

int WidthCode(uint64_t gap) {
  if (gap < (1ull << 8)) return 0;
  if (gap < (1ull << 16)) return 1;
  return 2;  // 4 bytes covers all 32-bit node ids
}

}  // namespace

ByteRleGraph ByteRleGraph::Encode(const Graph& g) {
  ByteRleGraph out;
  out.num_edges_ = g.num_edges();
  out.offsets_.reserve(g.num_nodes() + 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out.offsets_.push_back(out.data_.size());
    auto nbrs = g.Neighbors(u);
    PutVarint(nbrs.size(), &out.data_);
    if (nbrs.empty()) continue;
    PutVarint(EncodeZigzag(static_cast<int64_t>(nbrs[0]) -
                           static_cast<int64_t>(u)),
              &out.data_);
    // Group gap-1 values into runs of the same byte width (max 64 per run).
    size_t i = 1;
    while (i < nbrs.size()) {
      uint64_t gap0 = nbrs[i] - nbrs[i - 1] - 1;
      int width_code = WidthCode(gap0);
      size_t j = i;
      while (j < nbrs.size() && j - i < 64 &&
             WidthCode(nbrs[j] - nbrs[j - 1] - 1) == width_code) {
        ++j;
      }
      out.data_.push_back(
          static_cast<uint8_t>((width_code << 6) | ((j - i - 1) & 0x3f)));
      int width = 1 << width_code;
      for (size_t k = i; k < j; ++k) {
        uint64_t gap = nbrs[k] - nbrs[k - 1] - 1;
        for (int b = 0; b < width; ++b) {
          out.data_.push_back(static_cast<uint8_t>(gap >> (8 * b)));
        }
      }
      i = j;
    }
  }
  out.offsets_.push_back(out.data_.size());
  return out;
}

}  // namespace gcgt
