// Simulated GPU baselines on uncompressed CSR:
//  - GPUCSR: Merrill-style BFS (warp gathering with degree tiers), Soman
//    edge-centric CC, Sriram-style two-pass BC.
//  - Gunrock: the same computation through a frontier-centric framework,
//    modeled with an extra per-level filter kernel and the platform's
//    device-memory overhead (this is what makes Gunrock OOM on the two
//    largest datasets in paper Fig. 8/15).
// Both run on the same simulated machine as GCGT (src/simt) so that the
// comparison isolates the cost of operating on the compressed format.
#ifndef GCGT_BASELINE_CSR_GPU_ENGINE_H_
#define GCGT_BASELINE_CSR_GPU_ENGINE_H_

#include <vector>

#include "core/bc.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "core/frontier_filter.h"
#include "graph/graph.h"
#include "simt/cost_model.h"

namespace gcgt {

struct CsrEngineOptions {
  int lanes = simt::kWarpSize;
  simt::CostModel cost;
  simt::DeviceSpec device;
  /// Gunrock mode: extra filter kernel per level + memory overhead factor.
  bool gunrock = false;
  double gunrock_memory_factor = 2.6;
};

/// CSR adjacency bytes: 4-byte offsets (V+1) + 4-byte columns (the paper's
/// "E 32-bit integers" CSR).
uint64_t CsrBytes32(const Graph& g);

Result<GcgtBfsResult> CsrBfs(const Graph& g, NodeId source,
                             const CsrEngineOptions& options);

Result<GcgtCcResult> CsrCc(const Graph& g, const CsrEngineOptions& options);

Result<GcgtBcResult> CsrBc(const Graph& g, NodeId source,
                           const CsrEngineOptions& options);

}  // namespace gcgt

#endif  // GCGT_BASELINE_CSR_GPU_ENGINE_H_
