// CPU graph-traversal baselines of the paper's evaluation (§7.1):
//  - Naive: single-threaded queue BFS.
//  - Ligra: direction-optimizing (push/pull) parallel BFS [Shun-Blelloch].
//  - Ligra+: the same engine over byte-RLE compressed adjacency.
#ifndef GCGT_BASELINE_CPU_BFS_H_
#define GCGT_BASELINE_CPU_BFS_H_

#include <cstdint>
#include <vector>

#include "baseline/byte_rle.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace gcgt {

inline constexpr uint32_t kBfsUnreached = static_cast<uint32_t>(-1);

/// Single-threaded reference BFS (also the test oracle).
std::vector<uint32_t> SerialBfs(const Graph& g, NodeId source);

struct LigraOptions {
  /// Switch to the dense (pull) iteration when the frontier's out-edge count
  /// exceeds num_edges / denominator. Ligra uses 20 at server scale; the
  /// default here is tuned for the scaled datasets where pull scans of the
  /// whole node set amortize only on truly huge frontiers.
  uint64_t dense_denominator = 4;
};

/// Direction-optimizing parallel BFS. `reverse` must be g.Reversed()
/// (pull iterations scan in-edges); pass g itself for symmetric graphs.
std::vector<uint32_t> LigraBfs(const Graph& g, const Graph& reverse,
                               NodeId source, ThreadPool& pool,
                               const LigraOptions& options = {});

/// Ligra+ BFS: identical scheduling over byte-RLE compressed graphs.
std::vector<uint32_t> LigraPlusBfs(const ByteRleGraph& g,
                                   const ByteRleGraph& reverse, NodeId source,
                                   ThreadPool& pool,
                                   const LigraOptions& options = {});

}  // namespace gcgt

#endif  // GCGT_BASELINE_CPU_BFS_H_
