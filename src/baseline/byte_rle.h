// Byte-aligned run-length codes in the style of Ligra+ (Shun, Dhulipala,
// Blelloch, DCC'15): per adjacency list a varint degree, a zigzag-varint
// first neighbor, then difference-coded gaps grouped into runs that share a
// fixed byte width (header byte = 2-bit width code + 6-bit run length).
#ifndef GCGT_BASELINE_BYTE_RLE_H_
#define GCGT_BASELINE_BYTE_RLE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gcgt {

class ByteRleGraph {
 public:
  static ByteRleGraph Encode(const Graph& g);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size()) - 1; }
  EdgeId num_edges() const { return num_edges_; }

  /// Invokes f(v) for every neighbor v of u, in ascending order.
  template <typename F>
  void ForEachNeighbor(NodeId u, F&& f) const {
    const uint8_t* p = data_.data() + offsets_[u];
    uint64_t deg = ReadVarint(&p);
    if (deg == 0) return;
    int64_t first = DecodeZigzag(ReadVarint(&p));
    NodeId prev = static_cast<NodeId>(static_cast<int64_t>(u) + first);
    f(prev);
    uint64_t done = 1;
    while (done < deg) {
      uint8_t header = *p++;
      int width = 1 << (header >> 6);
      uint64_t run = (header & 0x3f) + 1;
      for (uint64_t i = 0; i < run; ++i) {
        uint64_t gap = 0;
        for (int b = 0; b < width; ++b) gap |= uint64_t(*p++) << (8 * b);
        prev = static_cast<NodeId>(prev + gap + 1);
        f(prev);
      }
      done += run;
    }
  }

  /// Degree of u (reads only the degree varint).
  uint64_t Degree(NodeId u) const {
    const uint8_t* p = data_.data() + offsets_[u];
    return ReadVarint(&p);
  }

  std::vector<NodeId> DecodeAdjacency(NodeId u) const {
    std::vector<NodeId> out;
    ForEachNeighbor(u, [&](NodeId v) { out.push_back(v); });
    return out;
  }

  uint64_t DataBytes() const { return data_.size(); }
  double BitsPerEdge() const {
    return num_edges_ ? 8.0 * static_cast<double>(data_.size()) / num_edges_ : 0;
  }
  double CompressionRate() const {
    double bpe = BitsPerEdge();
    return bpe > 0 ? 32.0 / bpe : 0.0;
  }

 private:
  static uint64_t ReadVarint(const uint8_t** p) {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      uint8_t b = *(*p)++;
      v |= uint64_t(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  static int64_t DecodeZigzag(uint64_t z) {
    return (z & 1) ? -static_cast<int64_t>((z >> 1) + 1)
                   : static_cast<int64_t>(z >> 1);
  }

  std::vector<uint8_t> data_;
  std::vector<uint64_t> offsets_;  // per-node byte offset, size V+1
  EdgeId num_edges_ = 0;
};

}  // namespace gcgt

#endif  // GCGT_BASELINE_BYTE_RLE_H_
