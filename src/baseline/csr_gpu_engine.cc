#include "baseline/csr_gpu_engine.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/bc_filters.h"
#include "core/cc_filter.h"
#include "core/memory_layout.h"
#include "simt/machine.h"
#include "simt/warp.h"

namespace gcgt {
namespace {

using simt::WarpContext;
using simt::WarpStats;

/// One simulated CSR kernel's reusable state: the warp context (TakeStats
/// re-arms it between warps, so its LineSet is built once per kernel, not
/// once per warp) plus the per-slot scratch vectors the charging helpers
/// fill. Keeping these out of the inner loops removes every steady-state
/// allocation from the CSR hot path, mirroring the GCGT WarpSim.
struct CsrKernelState {
  CsrKernelState(int lanes, int line_bytes, NodeId num_nodes)
      : ctx(lanes, line_bytes) {
    const uint64_t line = static_cast<uint64_t>(line_bytes);
    // Labels are a dense 4B array; CSR offsets a dense 4B array read in
    // 8-byte (offset + next offset) windows.
    label_filter.Configure(line / 4, num_nodes);
    offset_filter.Configure(line / 4, static_cast<size_t>(num_nodes) + 1);
  }

  /// Starts a new warp: the region filters reset with the LineSet.
  void NextWarp() {
    label_filter.NextWarp();
    offset_filter.NextWarp();
  }

  WarpContext ctx;
  std::vector<uint64_t> addrs;
  std::vector<uint64_t> col_addrs;
  std::vector<std::pair<NodeId, NodeId>> uv;
  std::vector<size_t> small;
  // Per-warp exact line filters for the dense label / offset regions (see
  // simt::DenseRegionFilter): dedup at an array lookup per access.
  simt::DenseRegionFilter label_filter;
  simt::DenseRegionFilter offset_filter;
};

/// Visited-check + contraction charging shared by all CSR kernels; mirrors
/// the GCGT AppendStep so both engines pay identical filtering costs.
/// `uv_at(i)` yields the i-th (u, v) pair of the slot; templating the
/// accessor lets the strip-mined tier charge straight off the adjacency span
/// without materializing pair vectors.
template <typename Filter, typename UvFn>
void AppendChargeImpl(CsrKernelState& s, Filter& filter, size_t n,
                      UvFn uv_at, std::vector<NodeId>* out) {
  if (n == 0) return;
  WarpContext& ctx = s.ctx;
  ctx.AppendStepOp(static_cast<int>(n));
  // Visited/label gather: label words are 4-byte aligned in a dense region,
  // so the per-warp epoch filter deduplicates label lines exactly
  // (bit-identical to LineSet insertion) at an array lookup per edge.
  if (s.label_filter.enabled()) {
    uint64_t novel = 0;
    for (size_t i = 0; i < n; ++i) novel += s.label_filter.Touch(uv_at(i).second);
    if (novel > 0) ctx.ChargeTransactions(novel);
  } else {
    ctx.MemAccessIndexed(n, 4, [&uv_at](size_t i) {
      return kLabelBase + 4ull * uv_at(i).second;
    });
  }
  ctx.SharedOp();
  ctx.Atomic(1);
  size_t tail = out->size();
  for (size_t i = 0; i < n; ++i) {
    const auto [u, v] = uv_at(i);
    if (filter.Filter(u, v)) {
      out->push_back(filter.AppendTarget(u, v));
    }
  }
  if (int extra = filter.TakeAtomics(); extra > 0) ctx.Atomic(extra);
  if (out->size() > tail) {
    // Label-update lines are a subset of this slot's gather (charged above),
    // so only the queue append can touch cold lines.
    ctx.MemAccessRange(kQueueBase + 4ull * tail, 4ull * (out->size() - tail));
  }
}

template <typename Filter>
void AppendCharge(CsrKernelState& s, Filter& filter,
                  std::vector<NodeId>* out) {
  AppendChargeImpl(
      s, filter, s.uv.size(), [&s](size_t i) { return s.uv[i]; }, out);
}

/// One warp of the Merrill-style gather kernel: big adjacency lists are
/// strip-mined by the whole warp (coalesced column reads); the small
/// leftovers are packed through a scan into full windows.
template <typename Filter>
void CsrWarp(const Graph& g, std::span<const NodeId> chunk, Filter& filter,
             std::vector<NodeId>* out, int lanes, CsrKernelState& s) {
  WarpContext& ctx = s.ctx;
  ctx.Step(static_cast<int>(chunk.size()));
  ctx.MemAccessRange(kQueueBase, 4ull * chunk.size());
  if (s.offset_filter.enabled()) {
    uint64_t novel = 0;
    // Each lane reads offset + next offset: elements u and u + 1 of the
    // dense 4B offsets array (the 8-byte window may straddle a line).
    for (NodeId u : chunk) novel += s.offset_filter.TouchRange(u, u + 1ull);
    if (novel > 0) ctx.ChargeTransactions(novel);
  } else {
    ctx.MemAccessIndexed(chunk.size(), 8, [chunk](size_t i) {
      return kOffsetsBase + 4ull * chunk[i];  // offset + next offset
    });
  }

  // Tier 1: warp-wide strip mining of large lists.
  s.small.clear();
  for (size_t i = 0; i < chunk.size(); ++i) {
    NodeId u = chunk[i];
    EdgeId deg = g.out_degree(u);
    if (deg < static_cast<EdgeId>(lanes)) {
      s.small.push_back(i);
      continue;
    }
    auto nbrs = g.Neighbors(u);
    EdgeId off = g.offsets()[u];
    for (EdgeId done = 0; done < deg; done += lanes) {
      EdgeId cnt = std::min<EdgeId>(lanes, deg - done);
      ctx.MemAccessRange(kCsrColBase + 4ull * (off + done), 4ull * cnt);
      AppendChargeImpl(
          s, filter, static_cast<size_t>(cnt),
          [u, base = nbrs.data() + done](size_t k) {
            return std::pair<NodeId, NodeId>(u, base[k]);
          },
          out);
    }
  }
  // Tier 2: fine-grained scan-based gather over the small lists.
  if (!s.small.empty()) {
    ctx.SharedOp();  // exclusiveScan of the small degrees
    s.uv.clear();
    s.col_addrs.clear();
    auto flush = [&]() {
      if (s.uv.empty()) return;
      ctx.MemAccess(s.col_addrs, 4);
      AppendCharge(s, filter, out);
      s.uv.clear();
      s.col_addrs.clear();
    };
    for (size_t i : s.small) {
      NodeId u = chunk[i];
      auto nbrs = g.Neighbors(u);
      EdgeId off = g.offsets()[u];
      for (size_t k = 0; k < nbrs.size(); ++k) {
        s.uv.emplace_back(u, nbrs[k]);
        s.col_addrs.push_back(kCsrColBase + 4ull * (off + k));
        if (s.uv.size() == static_cast<size_t>(lanes)) flush();
      }
    }
    flush();
  }
}

template <typename Filter>
void ProcessFrontierCsrT(const Graph& g, std::span<const NodeId> frontier,
                         Filter& filter, std::vector<NodeId>* out,
                         std::vector<WarpStats>* warp_stats,
                         const CsrEngineOptions& o, CsrKernelState& state) {
  for (size_t off = 0; off < frontier.size(); off += o.lanes) {
    size_t n = std::min<size_t>(o.lanes, frontier.size() - off);
    state.NextWarp();
    CsrWarp(g, frontier.subspan(off, n), filter, out, o.lanes, state);
    warp_stats->push_back(state.ctx.TakeStats());
  }
}

/// Statically dispatches the kernel for the well-known filters (the decide
/// sequence runs once per expanded edge; see FrontierFilter::Kind). `state`
/// is caller-owned and reused across levels: its filters reset per warp via
/// epoch bumps, so hoisting it keeps sparse frontiers O(frontier) instead of
/// paying the O(num_nodes) filter zero-fill on every level.
void ProcessFrontierCsr(const Graph& g, std::span<const NodeId> frontier,
                        FrontierFilter& filter, std::vector<NodeId>* out,
                        std::vector<WarpStats>* warp_stats,
                        const CsrEngineOptions& o, CsrKernelState& state) {
  switch (filter.kind()) {
    case FrontierFilter::Kind::kBfs:
      assert(dynamic_cast<BfsFilter*>(&filter) != nullptr);
      ProcessFrontierCsrT(g, frontier, static_cast<BfsFilter&>(filter), out,
                          warp_stats, o, state);
      break;
    case FrontierFilter::Kind::kBcForward:
      assert(dynamic_cast<BcForwardFilter*>(&filter) != nullptr);
      ProcessFrontierCsrT(g, frontier, static_cast<BcForwardFilter&>(filter),
                          out, warp_stats, o, state);
      break;
    case FrontierFilter::Kind::kBcBackward:
      assert(dynamic_cast<BcBackwardFilter*>(&filter) != nullptr);
      ProcessFrontierCsrT(g, frontier, static_cast<BcBackwardFilter&>(filter),
                          out, warp_stats, o, state);
      break;
    default:
      ProcessFrontierCsrT(g, frontier, filter, out, warp_stats, o, state);
      break;
  }
}

/// Gunrock's extra per-level filter/compaction kernel over the new frontier.
std::vector<WarpStats> GunrockFilterKernel(size_t frontier_size,
                                           const CsrEngineOptions& o) {
  std::vector<WarpStats> warps;
  WarpContext ctx(o.lanes, o.cost.cache_line_bytes);
  for (size_t off = 0; off < frontier_size; off += o.lanes) {
    size_t n = std::min<size_t>(o.lanes, frontier_size - off);
    ctx.Step(static_cast<int>(n));
    ctx.MemAccessRange(kQueueBase + 4ull * off, 4ull * n);   // read
    ctx.SharedOp();
    ctx.MemAccessRange(kQueueBase + 4ull * off, 4ull * n);   // compacted write
    warps.push_back(ctx.TakeStats());
  }
  if (warps.empty()) warps.push_back(WarpStats{});
  return warps;
}

}  // namespace

uint64_t CsrBytes32(const Graph& g) {
  return 4ull * (g.num_nodes() + 1) + 4ull * g.num_edges();
}

Result<GcgtBfsResult> CsrBfs(const Graph& g, NodeId source,
                             const CsrEngineOptions& options) {
  if (source >= g.num_nodes()) {
    return Status::InvalidArgument("BFS source out of range");
  }
  const uint64_t v = g.num_nodes();
  uint64_t device_bytes = CsrBytes32(g) + 4 * v /* labels */ + 8 * v /* queues */;
  if (options.gunrock) {
    device_bytes = static_cast<uint64_t>(device_bytes *
                                         options.gunrock_memory_factor);
  }
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("CSR BFS footprint exceeds device memory");
  }

  BfsFilter filter(g.num_nodes());
  filter.SetSource(source);
  simt::KernelTimeline timeline(options.cost);

  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::vector<WarpStats> warps;
  CsrKernelState state(options.lanes, options.cost.cache_line_bytes,
                       g.num_nodes());
  while (!frontier.empty()) {
    next.clear();
    warps.clear();
    ProcessFrontierCsr(g, frontier, filter, &next, &warps, options, state);
    timeline.AddKernel(warps);
    if (options.gunrock) {
      timeline.AddKernel(GunrockFilterKernel(next.size(), options));
    }
    frontier.swap(next);
  }

  GcgtBfsResult result;
  result.depth = filter.TakeDepth();
  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

Result<GcgtCcResult> CsrCc(const Graph& g, const CsrEngineOptions& options) {
  const uint64_t v = g.num_nodes();
  const uint64_t e = g.num_edges();
  // Soman et al. is edge-centric: COO edge list + parent array.
  uint64_t device_bytes = 8 * e + 4 * v;
  if (options.gunrock) {
    // Gunrock implements CC over its frontier framework on CSR.
    device_bytes = static_cast<uint64_t>(
        (CsrBytes32(g) + 4 * v + 8 * v) * options.gunrock_memory_factor);
  }
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("CSR CC footprint exceeds device memory");
  }

  EdgeList edges = g.ToEdges();
  CcFilter filter(g.num_nodes());
  simt::KernelTimeline timeline(options.cost);
  std::vector<WarpStats> warps;
  std::vector<NodeId> scratch;
  std::vector<uint64_t> addrs;
  WarpContext ctx(options.lanes, options.cost.cache_line_bytes);
  simt::DenseRegionFilter labels;  // parent array: dense 4B words
  labels.Configure(static_cast<uint64_t>(options.cost.cache_line_bytes) / 4,
                   g.num_nodes());
  int rounds = 0;
  for (;;) {
    ++rounds;
    bool hooked = false;
    warps.clear();
    for (size_t off = 0; off < edges.size(); off += options.lanes) {
      size_t n = std::min<size_t>(options.lanes, edges.size() - off);
      labels.NextWarp();
      ctx.Step(static_cast<int>(n));
      ctx.MemAccessRange(kCsrColBase + 4ull * off, 4ull * n);          // u array
      ctx.MemAccessRange(kCsrColBase + (4ull << 30) + 4ull * off, 4ull * n);
      addrs.clear();
      uint64_t novel = 0;
      uint64_t max_depth = 1;
      for (size_t i = off; i < off + n; ++i) {
        auto [eu, ev] = edges[i];
        uint64_t depth = 0;
        for (NodeId r = eu; filter.parent()[r] != r; r = filter.parent()[r]) {
          if (labels.enabled()) {
            novel += labels.Touch(r);
          } else {
            addrs.push_back(kLabelBase + 4ull * r);
          }
          ++depth;
        }
        for (NodeId r = ev; filter.parent()[r] != r; r = filter.parent()[r]) {
          if (labels.enabled()) {
            novel += labels.Touch(r);
          } else {
            addrs.push_back(kLabelBase + 4ull * r);
          }
          ++depth;
        }
        max_depth = std::max(max_depth, depth);
        scratch.clear();
        if (filter.Filter(eu, ev)) hooked = true;
      }
      if (int a = filter.TakeAtomics(); a > 0) ctx.Atomic(a);
      for (uint64_t d = 1; d < max_depth; ++d) ctx.Step(static_cast<int>(n));
      if (labels.enabled()) {
        if (novel > 0) ctx.ChargeTransactions(novel);
      } else {
        ctx.MemAccess(addrs, 4);
      }
      warps.push_back(ctx.TakeStats());
    }
    timeline.AddKernel(warps);
    filter.CommitRound();
    timeline.AddKernel(
        filter.PointerJump(options.lanes, options.cost.cache_line_bytes));
    if (!hooked) break;
  }

  GcgtCcResult result;
  result.component = filter.parent();
  result.rounds = rounds;
  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

Result<GcgtBcResult> CsrBc(const Graph& g, NodeId source,
                           const CsrEngineOptions& options) {
  if (source >= g.num_nodes()) {
    return Status::InvalidArgument("BC source out of range");
  }
  const uint64_t v = g.num_nodes();
  // Two-pass BC (successors recomputed from depths): CSR + per-node arrays.
  uint64_t device_bytes = CsrBytes32(g) + 4 * v + 8 * v + 8 * v + 8 * v;
  if (options.gunrock) {
    device_bytes = static_cast<uint64_t>(device_bytes *
                                         options.gunrock_memory_factor);
  }
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("CSR BC footprint exceeds device memory");
  }

  GcgtBcResult result;
  result.depth.assign(v, kBcUnvisited);
  result.sigma.assign(v, 0.0);
  result.dependency.assign(v, 0.0);
  result.depth[source] = 0;
  result.sigma[source] = 1.0;

  simt::KernelTimeline timeline(options.cost);
  CsrKernelState state(options.lanes, options.cost.cache_line_bytes,
                       g.num_nodes());
  std::vector<std::vector<NodeId>> levels;
  levels.push_back({source});
  {
    BcForwardFilter filter(result.depth, result.sigma);
    std::vector<WarpStats> warps;
    while (!levels.back().empty()) {
      std::vector<NodeId> next;
      warps.clear();
      ProcessFrontierCsr(g, levels.back(), filter, &next, &warps, options,
                         state);
      timeline.AddKernel(warps);
      if (options.gunrock) {
        timeline.AddKernel(GunrockFilterKernel(next.size(), options));
      }
      levels.push_back(std::move(next));
    }
    levels.pop_back();
  }
  {
    BcBackwardFilter filter(result.depth, result.sigma, result.dependency);
    std::vector<NodeId> unused;
    std::vector<WarpStats> warps;
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      if (it->empty()) continue;
      warps.clear();
      ProcessFrontierCsr(g, *it, filter, &unused, &warps, options, state);
      timeline.AddKernel(warps);
    }
  }
  result.dependency[source] = 0.0;

  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

}  // namespace gcgt
