#include "baseline/csr_gpu_engine.h"

#include <algorithm>

#include "core/bc_filters.h"
#include "core/cc_filter.h"
#include "core/memory_layout.h"
#include "simt/machine.h"
#include "simt/warp.h"

namespace gcgt {
namespace {

using simt::WarpContext;
using simt::WarpStats;

/// Visited-check + contraction charging shared by all CSR kernels; mirrors
/// the GCGT AppendStep so both engines pay identical filtering costs.
void AppendCharge(WarpContext& ctx, FrontierFilter& filter,
                  const std::vector<std::pair<NodeId, NodeId>>& uv,
                  std::vector<NodeId>* out) {
  if (uv.empty()) return;
  ctx.AppendStepOp(static_cast<int>(uv.size()));
  std::vector<uint64_t> addrs;
  addrs.reserve(uv.size());
  for (const auto& [u, v] : uv) addrs.push_back(kLabelBase + 4ull * v);
  ctx.MemAccess(addrs, 4);
  ctx.SharedOp();
  ctx.Atomic(1);
  std::vector<uint64_t> write_addrs;
  size_t tail = out->size();
  for (const auto& [u, v] : uv) {
    if (filter.Filter(u, v)) {
      out->push_back(filter.AppendTarget(u, v));
      write_addrs.push_back(kLabelBase + 4ull * v);
    }
  }
  if (int extra = filter.TakeAtomics(); extra > 0) ctx.Atomic(extra);
  if (!write_addrs.empty()) {
    ctx.MemAccess(write_addrs, 4);
    ctx.MemAccessRange(kQueueBase + 4ull * tail, 4ull * (out->size() - tail));
  }
}

/// One warp of the Merrill-style gather kernel: big adjacency lists are
/// strip-mined by the whole warp (coalesced column reads); the small
/// leftovers are packed through a scan into full windows.
void CsrWarp(const Graph& g, std::span<const NodeId> chunk,
             FrontierFilter& filter, std::vector<NodeId>* out, int lanes,
             WarpContext& ctx) {
  ctx.Step(static_cast<int>(chunk.size()));
  ctx.MemAccessRange(kQueueBase, 4ull * chunk.size());
  std::vector<uint64_t> addrs;
  for (NodeId u : chunk) addrs.push_back(kOffsetsBase + 4ull * u);
  ctx.MemAccess(addrs, 8);  // offset + next offset

  std::vector<std::pair<NodeId, NodeId>> uv;
  // Tier 1: warp-wide strip mining of large lists.
  std::vector<size_t> small;
  for (size_t i = 0; i < chunk.size(); ++i) {
    NodeId u = chunk[i];
    EdgeId deg = g.out_degree(u);
    if (deg < static_cast<EdgeId>(lanes)) {
      small.push_back(i);
      continue;
    }
    auto nbrs = g.Neighbors(u);
    EdgeId off = g.offsets()[u];
    for (EdgeId done = 0; done < deg; done += lanes) {
      EdgeId cnt = std::min<EdgeId>(lanes, deg - done);
      ctx.MemAccessRange(kCsrColBase + 4ull * (off + done), 4ull * cnt);
      uv.clear();
      for (EdgeId k = 0; k < cnt; ++k) uv.emplace_back(u, nbrs[done + k]);
      AppendCharge(ctx, filter, uv, out);
    }
  }
  // Tier 2: fine-grained scan-based gather over the small lists.
  if (!small.empty()) {
    ctx.SharedOp();  // exclusiveScan of the small degrees
    uv.clear();
    std::vector<uint64_t> col_addrs;
    auto flush = [&]() {
      if (uv.empty()) return;
      ctx.MemAccess(col_addrs, 4);
      AppendCharge(ctx, filter, uv, out);
      uv.clear();
      col_addrs.clear();
    };
    for (size_t i : small) {
      NodeId u = chunk[i];
      auto nbrs = g.Neighbors(u);
      EdgeId off = g.offsets()[u];
      for (size_t k = 0; k < nbrs.size(); ++k) {
        uv.emplace_back(u, nbrs[k]);
        col_addrs.push_back(kCsrColBase + 4ull * (off + k));
        if (uv.size() == static_cast<size_t>(lanes)) flush();
      }
    }
    flush();
  }
}

void ProcessFrontierCsr(const Graph& g, std::span<const NodeId> frontier,
                        FrontierFilter& filter, std::vector<NodeId>* out,
                        std::vector<WarpStats>* warp_stats,
                        const CsrEngineOptions& o) {
  for (size_t off = 0; off < frontier.size(); off += o.lanes) {
    size_t n = std::min<size_t>(o.lanes, frontier.size() - off);
    WarpContext ctx(o.lanes, o.cost.cache_line_bytes);
    CsrWarp(g, frontier.subspan(off, n), filter, out, o.lanes, ctx);
    warp_stats->push_back(ctx.TakeStats());
  }
}

/// Gunrock's extra per-level filter/compaction kernel over the new frontier.
std::vector<WarpStats> GunrockFilterKernel(size_t frontier_size,
                                           const CsrEngineOptions& o) {
  std::vector<WarpStats> warps;
  for (size_t off = 0; off < frontier_size; off += o.lanes) {
    size_t n = std::min<size_t>(o.lanes, frontier_size - off);
    WarpContext ctx(o.lanes, o.cost.cache_line_bytes);
    ctx.Step(static_cast<int>(n));
    ctx.MemAccessRange(kQueueBase + 4ull * off, 4ull * n);   // read
    ctx.SharedOp();
    ctx.MemAccessRange(kQueueBase + 4ull * off, 4ull * n);   // compacted write
    warps.push_back(ctx.TakeStats());
  }
  if (warps.empty()) warps.push_back(WarpStats{});
  return warps;
}

}  // namespace

uint64_t CsrBytes32(const Graph& g) {
  return 4ull * (g.num_nodes() + 1) + 4ull * g.num_edges();
}

Result<GcgtBfsResult> CsrBfs(const Graph& g, NodeId source,
                             const CsrEngineOptions& options) {
  if (source >= g.num_nodes()) {
    return Status::InvalidArgument("BFS source out of range");
  }
  const uint64_t v = g.num_nodes();
  uint64_t device_bytes = CsrBytes32(g) + 4 * v /* labels */ + 8 * v /* queues */;
  if (options.gunrock) {
    device_bytes = static_cast<uint64_t>(device_bytes *
                                         options.gunrock_memory_factor);
  }
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("CSR BFS footprint exceeds device memory");
  }

  BfsFilter filter(g.num_nodes());
  filter.SetSource(source);
  simt::KernelTimeline timeline(options.cost);

  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::vector<WarpStats> warps;
  while (!frontier.empty()) {
    next.clear();
    warps.clear();
    ProcessFrontierCsr(g, frontier, filter, &next, &warps, options);
    timeline.AddKernel(warps);
    if (options.gunrock) {
      timeline.AddKernel(GunrockFilterKernel(next.size(), options));
    }
    frontier.swap(next);
  }

  GcgtBfsResult result;
  result.depth = filter.TakeDepth();
  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

Result<GcgtCcResult> CsrCc(const Graph& g, const CsrEngineOptions& options) {
  const uint64_t v = g.num_nodes();
  const uint64_t e = g.num_edges();
  // Soman et al. is edge-centric: COO edge list + parent array.
  uint64_t device_bytes = 8 * e + 4 * v;
  if (options.gunrock) {
    // Gunrock implements CC over its frontier framework on CSR.
    device_bytes = static_cast<uint64_t>(
        (CsrBytes32(g) + 4 * v + 8 * v) * options.gunrock_memory_factor);
  }
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("CSR CC footprint exceeds device memory");
  }

  EdgeList edges = g.ToEdges();
  CcFilter filter(g.num_nodes());
  simt::KernelTimeline timeline(options.cost);
  std::vector<WarpStats> warps;
  std::vector<NodeId> scratch;
  int rounds = 0;
  for (;;) {
    ++rounds;
    bool hooked = false;
    warps.clear();
    for (size_t off = 0; off < edges.size(); off += options.lanes) {
      size_t n = std::min<size_t>(options.lanes, edges.size() - off);
      WarpContext ctx(options.lanes, options.cost.cache_line_bytes);
      ctx.Step(static_cast<int>(n));
      ctx.MemAccessRange(kCsrColBase + 4ull * off, 4ull * n);          // u array
      ctx.MemAccessRange(kCsrColBase + (4ull << 30) + 4ull * off, 4ull * n);
      std::vector<uint64_t> addrs;
      uint64_t max_depth = 1;
      for (size_t i = off; i < off + n; ++i) {
        auto [eu, ev] = edges[i];
        uint64_t depth = 0;
        for (NodeId r = eu; filter.parent()[r] != r; r = filter.parent()[r]) {
          addrs.push_back(kLabelBase + 4ull * r);
          ++depth;
        }
        for (NodeId r = ev; filter.parent()[r] != r; r = filter.parent()[r]) {
          addrs.push_back(kLabelBase + 4ull * r);
          ++depth;
        }
        max_depth = std::max(max_depth, depth);
        scratch.clear();
        if (filter.Filter(eu, ev)) hooked = true;
      }
      if (int a = filter.TakeAtomics(); a > 0) ctx.Atomic(a);
      for (uint64_t d = 1; d < max_depth; ++d) ctx.Step(static_cast<int>(n));
      ctx.MemAccess(addrs, 4);
      warps.push_back(ctx.TakeStats());
    }
    timeline.AddKernel(warps);
    filter.CommitRound();
    timeline.AddKernel(
        filter.PointerJump(options.lanes, options.cost.cache_line_bytes));
    if (!hooked) break;
  }

  GcgtCcResult result;
  result.component = filter.parent();
  result.rounds = rounds;
  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

Result<GcgtBcResult> CsrBc(const Graph& g, NodeId source,
                           const CsrEngineOptions& options) {
  if (source >= g.num_nodes()) {
    return Status::InvalidArgument("BC source out of range");
  }
  const uint64_t v = g.num_nodes();
  // Two-pass BC (successors recomputed from depths): CSR + per-node arrays.
  uint64_t device_bytes = CsrBytes32(g) + 4 * v + 8 * v + 8 * v + 8 * v;
  if (options.gunrock) {
    device_bytes = static_cast<uint64_t>(device_bytes *
                                         options.gunrock_memory_factor);
  }
  if (device_bytes > options.device.memory_bytes) {
    return Status::OutOfMemory("CSR BC footprint exceeds device memory");
  }

  GcgtBcResult result;
  result.depth.assign(v, kBcUnvisited);
  result.sigma.assign(v, 0.0);
  result.dependency.assign(v, 0.0);
  result.depth[source] = 0;
  result.sigma[source] = 1.0;

  simt::KernelTimeline timeline(options.cost);
  std::vector<std::vector<NodeId>> levels;
  levels.push_back({source});
  {
    BcForwardFilter filter(result.depth, result.sigma);
    std::vector<WarpStats> warps;
    while (!levels.back().empty()) {
      std::vector<NodeId> next;
      warps.clear();
      ProcessFrontierCsr(g, levels.back(), filter, &next, &warps, options);
      timeline.AddKernel(warps);
      if (options.gunrock) {
        timeline.AddKernel(GunrockFilterKernel(next.size(), options));
      }
      levels.push_back(std::move(next));
    }
    levels.pop_back();
  }
  {
    BcBackwardFilter filter(result.depth, result.sigma, result.dependency);
    std::vector<NodeId> unused;
    std::vector<WarpStats> warps;
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      if (it->empty()) continue;
      warps.clear();
      ProcessFrontierCsr(g, *it, filter, &unused, &warps, options);
      timeline.AddKernel(warps);
    }
  }
  result.dependency[source] = 0.0;

  result.metrics.model_ms = timeline.TotalMs();
  result.metrics.kernels = timeline.num_kernels();
  result.metrics.device_bytes = device_bytes;
  result.metrics.warp = timeline.aggregate();
  return result;
}

}  // namespace gcgt
