// Node-reordering tests (paper Fig. 13): validity of the permutations,
// structure preservation, and locality/compression improvements of the
// locality-aware methods on clustered graphs.
#include "reorder/reorder.h"

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/cpu_bfs.h"
#include "cgr/cgr_graph.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "util/random.h"

namespace gcgt {
namespace {

class ReorderMethodTest : public ::testing::TestWithParam<ReorderMethod> {};

TEST_P(ReorderMethodTest, ProducesValidPermutation) {
  Graph g = GenerateSocialGraph({.num_nodes = 1200, .seed = 71});
  auto perm = ComputeOrdering(g, GetParam());
  EXPECT_TRUE(ValidatePermutation(perm, g.num_nodes()).ok());
  auto inv = InvertPermutation(perm);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(inv[perm[u]], u);
}

TEST_P(ReorderMethodTest, PreservesGraphStructure) {
  Graph g = GenerateErdosRenyi(600, 4000, 72);
  Graph h = ApplyReordering(g, GetParam());
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // BFS reachability counts are invariant under relabeling.
  auto perm = ComputeOrdering(g, GetParam());
  auto dg = SerialBfs(g, 0);
  auto dh = SerialBfs(h, perm[0]);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(dg[u], dh[perm[u]]) << "node " << u;
  }
}

TEST_P(ReorderMethodTest, HandlesEmptyAndTinyGraphs) {
  Graph empty = Graph::FromEdges(0, {});
  EXPECT_TRUE(ComputeOrdering(empty, GetParam()).empty());
  Graph one = Graph::FromEdges(1, {});
  EXPECT_EQ(ComputeOrdering(one, GetParam()), std::vector<NodeId>{0});
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ReorderMethodTest,
    ::testing::Values(ReorderMethod::kOriginal, ReorderMethod::kDegSort,
                      ReorderMethod::kBfsOrder, ReorderMethod::kGorder,
                      ReorderMethod::kLlp),
    [](const auto& info) { return ReorderMethodName(info.param); });

TEST(Reorder, DegSortPutsHighInDegreeFirst) {
  Graph g = Graph::FromEdges(5, {{0, 4}, {1, 4}, {2, 4}, {3, 2}, {0, 2}});
  auto perm = ComputeOrdering(g, ReorderMethod::kDegSort);
  EXPECT_EQ(perm[4], 0u);  // in-degree 3
  EXPECT_EQ(perm[2], 1u);  // in-degree 2
}

TEST(Reorder, BfsOrderIsContiguousFromRoot) {
  Graph g = MakePath(10);
  auto perm = ComputeOrdering(g, ReorderMethod::kBfsOrder);
  EXPECT_TRUE(ValidatePermutation(perm, 10).ok());
  // On a path, BFS order from an endpoint-ish root keeps neighbors adjacent:
  // every edge's label distance is small.
  for (NodeId u = 0; u + 1 < 10; ++u) {
    int64_t d = static_cast<int64_t>(perm[u]) - static_cast<int64_t>(perm[u + 1]);
    EXPECT_LE(std::abs(d), 2);
  }
}

TEST(Reorder, LocalityMethodsImproveShuffledClusteredGraph) {
  // A clustered graph with shuffled labels: LLP and Gorder must recover
  // locality (lower locality score = smaller gaps).
  BrainGraphParams p;
  p.num_nodes = 1200;
  p.avg_degree = 40;
  p.seed = 73;
  Graph clustered = GenerateBrainGraph(p);
  Rng rng(74);
  std::vector<NodeId> shuffle(clustered.num_nodes());
  std::iota(shuffle.begin(), shuffle.end(), 0);
  rng.Shuffle(shuffle);
  Graph g = clustered.Relabeled(shuffle);

  double original = ComputeGraphStats(g).locality_score;
  double llp =
      ComputeGraphStats(ApplyReordering(g, ReorderMethod::kLlp)).locality_score;
  double gorder = ComputeGraphStats(ApplyReordering(g, ReorderMethod::kGorder))
                      .locality_score;
  EXPECT_LT(llp, original);
  EXPECT_LT(gorder, original);
}

TEST(Reorder, LlpImprovesCgrCompression) {
  BrainGraphParams p;
  p.num_nodes = 1500;
  p.avg_degree = 50;
  p.seed = 75;
  Graph clustered = GenerateBrainGraph(p);
  Rng rng(76);
  std::vector<NodeId> shuffle(clustered.num_nodes());
  std::iota(shuffle.begin(), shuffle.end(), 0);
  rng.Shuffle(shuffle);
  Graph g = clustered.Relabeled(shuffle);

  auto original = CgrGraph::Encode(g, CgrOptions{});
  auto reordered =
      CgrGraph::Encode(ApplyReordering(g, ReorderMethod::kLlp), CgrOptions{});
  ASSERT_TRUE(original.ok() && reordered.ok());
  EXPECT_LT(reordered.value().BitsPerEdge(), original.value().BitsPerEdge());
}

TEST(Reorder, ValidatePermutationCatchesErrors) {
  EXPECT_FALSE(ValidatePermutation({0, 1}, 3).ok());        // wrong size
  EXPECT_FALSE(ValidatePermutation({0, 1, 1}, 3).ok());     // repeated
  EXPECT_FALSE(ValidatePermutation({0, 1, 5}, 3).ok());     // out of range
  EXPECT_TRUE(ValidatePermutation({2, 0, 1}, 3).ok());
}

}  // namespace
}  // namespace gcgt
