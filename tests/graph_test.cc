// Graph substrate tests: CSR construction (paper Fig. 1), generators, I/O,
// statistics.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"

namespace gcgt {
namespace {

TEST(Graph, PaperFigure1Csr) {
  Graph g = MakePaperFigure1Graph();
  // Row offsets and column indices exactly as Fig. 1(c).
  EXPECT_EQ(g.offsets(),
            (std::vector<EdgeId>{0, 3, 6, 7, 7, 7, 9, 10, 10}));
  EXPECT_EQ(g.neighbors(),
            (std::vector<NodeId>{1, 3, 4, 2, 4, 5, 5, 6, 7, 7}));
}

TEST(Graph, DedupesAndSorts) {
  Graph g = Graph::FromEdges(4, {{1, 3}, {1, 0}, {1, 3}, {1, 2}, {1, 0}});
  EXPECT_EQ(g.out_degree(1), 3u);
  auto nbrs = g.Neighbors(1);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, SymmetrizeAddsReverseEdges) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {2, 2}}, /*symmetrize=*/true);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 2));  // self loop not duplicated
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, ReversedSwapsDirections) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {3, 0}});
  Graph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 0));
  EXPECT_TRUE(r.HasEdge(0, 3));
  EXPECT_EQ(r.num_edges(), g.num_edges());
}

TEST(Graph, RelabeledPreservesStructure) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<NodeId> perm = {3, 2, 1, 0};  // reverse ids
  Graph h = g.Relabeled(perm);
  EXPECT_TRUE(h.HasEdge(3, 2));
  EXPECT_TRUE(h.HasEdge(2, 1));
  EXPECT_TRUE(h.HasEdge(1, 0));
  EXPECT_EQ(h.num_edges(), 3u);
}

TEST(Graph, ToEdgesRoundTrip) {
  Graph g = GenerateErdosRenyi(100, 500, 4);
  Graph h = Graph::FromEdges(g.num_nodes(), g.ToEdges());
  EXPECT_EQ(g.offsets(), h.offsets());
  EXPECT_EQ(g.neighbors(), h.neighbors());
}

TEST(Graph, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, WebGraphHasLocalityAndIntervals) {
  WebGraphParams p;
  p.num_nodes = 4000;
  Graph g = GenerateWebGraph(p);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_nodes, 4000u);
  EXPECT_GT(s.avg_degree, 4.0);
  EXPECT_GT(s.interval_coverage, 0.10);  // interval-rich
  EXPECT_LT(s.locality_score, 8.0);      // strong locality
}

TEST(Generators, SocialGraphHasPoorLocality) {
  SocialGraphParams p;
  p.num_nodes = 4000;
  Graph g = GenerateSocialGraph(p);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_LT(s.interval_coverage, 0.10);
  EXPECT_GT(s.locality_score, 4.5);
}

TEST(Generators, TwitterGraphHasExtremeHubs) {
  TwitterGraphParams p;
  p.num_nodes = 5000;
  Graph g = GenerateTwitterGraph(p);
  GraphStats s = ComputeGraphStats(g);
  // A super-hub holds a large multiple of the average degree.
  EXPECT_GT(static_cast<double>(s.max_degree), 40.0 * s.avg_degree);
}

TEST(Generators, BrainGraphIsDenseAndSymmetric) {
  BrainGraphParams p;
  p.num_nodes = 1000;
  p.avg_degree = 80;
  Graph g = GenerateBrainGraph(p);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_GT(s.avg_degree, 40.0);
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      ASSERT_TRUE(g.HasEdge(v, u)) << u << "->" << v;
    }
  }
}

TEST(Generators, RmatIsSkewed) {
  Graph g = GenerateRmat(4096, 40000, 6);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 8.0 * s.avg_degree);
}

TEST(Generators, DeterministicForSameSeed) {
  WebGraphParams p;
  p.num_nodes = 500;
  Graph a = GenerateWebGraph(p);
  Graph b = GenerateWebGraph(p);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.neighbors(), b.neighbors());
}

TEST(Generators, ToyGraphShapes) {
  Graph path = MakePath(5);
  EXPECT_EQ(path.num_edges(), 8u);  // undirected: 2*(n-1)
  Graph cycle = MakeCycle(6);
  EXPECT_EQ(cycle.num_edges(), 6u);
  Graph star = MakeStar(7);
  EXPECT_EQ(star.out_degree(0), 7u);
  Graph complete = MakeComplete(5);
  EXPECT_EQ(complete.num_edges(), 20u);
}

TEST(GraphStats, DegreeHistogram) {
  Graph star = MakeStar(63, /*undirected=*/false);
  auto hist = DegreeHistogram(star);
  // 63 leaves with degree 0 land in bucket 0; the hub (63) in bucket 5.
  EXPECT_EQ(hist[0], 63u);
  ASSERT_GE(hist.size(), 6u);
  EXPECT_EQ(hist[5], 1u);
}

TEST(GraphIo, EdgeListRoundTrip) {
  Graph g = GenerateErdosRenyi(200, 1500, 8);
  std::string path = ::testing::TempDir() + "/edges.txt";
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto back = ReadEdgeListFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().offsets(), g.offsets());
  EXPECT_EQ(back.value().neighbors(), g.neighbors());
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryCsrRoundTrip) {
  Graph g = GenerateRmat(512, 4000, 9);
  std::string path = ::testing::TempDir() + "/graph.bin";
  ASSERT_TRUE(WriteBinaryCsr(g, path).ok());
  auto back = ReadBinaryCsr(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().offsets(), g.offsets());
  EXPECT_EQ(back.value().neighbors(), g.neighbors());
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryCsrRoundTripEdgeShapes) {
  // Single node, empty graph, and interleaved empty adjacency rows — the
  // shapes a length-prefixed format gets wrong first.
  std::vector<Graph> graphs;
  graphs.push_back(Graph::FromEdges(1, {}));
  graphs.push_back(Graph::FromEdges(0, {}));
  graphs.push_back(Graph::FromEdges(5, {{0, 4}, {2, 2}, {4, 0}}));
  for (const Graph& g : graphs) {
    std::string path = ::testing::TempDir() + "/shape.bin";
    ASSERT_TRUE(WriteBinaryCsr(g, path).ok());
    auto back = ReadBinaryCsr(path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value().offsets(), g.offsets());
    EXPECT_EQ(back.value().neighbors(), g.neighbors());
    std::remove(path.c_str());
  }
}

TEST(GraphIo, WriteFileAtomicNeverExposesPartialFiles) {
  std::string path = ::testing::TempDir() + "/atomic.bin";
  // Seed the target with known content.
  ASSERT_TRUE(WriteFileAtomic(path, [](std::FILE* f) {
                std::fputs("original", f);
                return Status::OK();
              }).ok());
  // A failing writer must leave the previous content untouched.
  EXPECT_FALSE(WriteFileAtomic(path, [](std::FILE* f) {
                 std::fputs("partial", f);
                 return Status::Internal("simulated failure");
               }).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "original");
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileFails) {
  EXPECT_FALSE(ReadEdgeListFile("/nonexistent/file.txt").ok());
  EXPECT_FALSE(ReadBinaryCsr("/nonexistent/file.bin").ok());
}

TEST(GraphIo, CorruptBinaryRejected) {
  std::string path = ::testing::TempDir() + "/bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t garbage = 0xdeadbeef;
  std::fwrite(&garbage, sizeof(garbage), 1, f);
  std::fclose(f);
  auto r = ReadBinaryCsr(path);
  EXPECT_TRUE(r.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcgt
