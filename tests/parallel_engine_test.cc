// Determinism tests for the parallel traversal engine: the multi-threaded
// ProcessFrontier must produce bit-identical frontiers, labels and per-warp
// stats to the serial reference (num_threads == 1) across every GcgtLevel
// and both CGR layouts — plus ThreadPool reentrancy-guard stress tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "cgr/cgr_graph.h"
#include "core/bc.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "core/cgr_traversal.h"
#include "core/frontier_filter.h"
#include "core/gcgt_options.h"
#include "graph/generators.h"
#include "util/thread_pool.h"

namespace gcgt {
namespace {

Graph TestGraph() {
  WebGraphParams params;
  params.num_nodes = 1500;
  params.avg_degree = 9;
  params.seed = 77;
  return GenerateWebGraph(params);
}

CgrGraph EncodeLayout(const Graph& g, uint32_t segment_len_bytes) {
  CgrOptions options;
  options.segment_len_bytes = segment_len_bytes;
  auto cgr = CgrGraph::Encode(g, options);
  EXPECT_TRUE(cgr.ok()) << cgr.status().ToString();
  return std::move(cgr.value());
}

GcgtOptions OptionsFor(GcgtLevel level, int num_threads) {
  GcgtOptions o;
  o.level = level;
  o.lanes = 8;  // small warps -> many chunks -> real cross-thread contention
  o.num_threads = num_threads;
  return o;
}

constexpr GcgtLevel kAllLevels[] = {
    GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase, GcgtLevel::kTaskStealing,
    GcgtLevel::kWarpCentric, GcgtLevel::kFull};
constexpr uint32_t kLayouts[] = {0, 32};  // unsegmented + segmented residuals

// Drives level-synchronous BFS through ProcessFrontier on both engines and
// compares every level's frontier and every warp's stats.
TEST(ParallelEngine, ProcessFrontierMatchesSerialPerLevel) {
  Graph g = TestGraph();
  for (uint32_t seg : kLayouts) {
    CgrGraph cgr = EncodeLayout(g, seg);
    for (GcgtLevel level : kAllLevels) {
      CgrTraversalEngine serial(cgr, OptionsFor(level, 1));
      CgrTraversalEngine parallel(cgr, OptionsFor(level, 4));

      BfsFilter f_serial(g.num_nodes()), f_parallel(g.num_nodes());
      const NodeId source = 3;
      f_serial.SetSource(source);
      f_parallel.SetSource(source);
      std::vector<NodeId> frontier_s{source}, frontier_p{source};
      int level_idx = 0;
      while (!frontier_s.empty() || !frontier_p.empty()) {
        std::vector<NodeId> next_s, next_p;
        std::vector<simt::WarpStats> warps_s, warps_p;
        serial.ProcessFrontier(frontier_s, f_serial, &next_s, &warps_s);
        parallel.ProcessFrontier(frontier_p, f_parallel, &next_p, &warps_p);
        ASSERT_EQ(next_s, next_p)
            << "frontier diverged at level " << level_idx << " (GcgtLevel "
            << static_cast<int>(level) << ", seg " << seg << ")";
        ASSERT_EQ(warps_s.size(), warps_p.size());
        for (size_t w = 0; w < warps_s.size(); ++w) {
          ASSERT_EQ(warps_s[w], warps_p[w])
              << "warp " << w << " stats diverged at level " << level_idx
              << " (GcgtLevel " << static_cast<int>(level) << ", seg " << seg
              << ")";
        }
        frontier_s.swap(next_s);
        frontier_p.swap(next_p);
        ++level_idx;
      }
      EXPECT_EQ(f_serial.depth(), f_parallel.depth());
    }
  }
}

TEST(ParallelEngine, BfsDriverBitIdentical) {
  Graph g = TestGraph();
  for (uint32_t seg : kLayouts) {
    CgrGraph cgr = EncodeLayout(g, seg);
    for (GcgtLevel level : kAllLevels) {
      auto serial = GcgtBfs(cgr, 0, OptionsFor(level, 1));
      auto parallel = GcgtBfs(cgr, 0, OptionsFor(level, 4));
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(serial.value().depth, parallel.value().depth);
      EXPECT_EQ(serial.value().metrics.warp, parallel.value().metrics.warp);
      // Aggregate modeled cycles must be bit-identical, not just close.
      EXPECT_EQ(serial.value().metrics.model_ms,
                parallel.value().metrics.model_ms);
      EXPECT_EQ(serial.value().metrics.kernels,
                parallel.value().metrics.kernels);
    }
  }
}

TEST(ParallelEngine, CcDriverBitIdentical) {
  Graph g = TestGraph();
  for (uint32_t seg : kLayouts) {
    CgrGraph cgr = EncodeLayout(g, seg);
    auto serial = GcgtCc(cgr, OptionsFor(GcgtLevel::kFull, 1));
    auto parallel = GcgtCc(cgr, OptionsFor(GcgtLevel::kFull, 4));
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial.value().component, parallel.value().component);
    EXPECT_EQ(serial.value().rounds, parallel.value().rounds);
    EXPECT_EQ(serial.value().metrics.warp, parallel.value().metrics.warp);
    EXPECT_EQ(serial.value().metrics.model_ms,
              parallel.value().metrics.model_ms);
  }
}

TEST(ParallelEngine, BcDriverBitIdentical) {
  Graph g = TestGraph();
  for (uint32_t seg : kLayouts) {
    CgrGraph cgr = EncodeLayout(g, seg);
    auto serial = GcgtBc(cgr, 5, OptionsFor(GcgtLevel::kFull, 1));
    auto parallel = GcgtBc(cgr, 5, OptionsFor(GcgtLevel::kFull, 4));
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial.value().depth, parallel.value().depth);
    // sigma/delta are doubles accumulated in filter order; the serial replay
    // makes even their addition order identical, so exact equality holds.
    EXPECT_EQ(serial.value().sigma, parallel.value().sigma);
    EXPECT_EQ(serial.value().dependency, parallel.value().dependency);
    EXPECT_EQ(serial.value().metrics.warp, parallel.value().metrics.warp);
    EXPECT_EQ(serial.value().metrics.model_ms,
              parallel.value().metrics.model_ms);
  }
}

// The claim protocol must not depend on how chunks land on workers: any
// thread count produces the serial results.
TEST(ParallelEngine, ThreadCountSweepBitIdentical) {
  Graph g = TestGraph();
  CgrGraph cgr = EncodeLayout(g, 32);
  auto serial = GcgtBfs(cgr, 0, OptionsFor(GcgtLevel::kFull, 1));
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 3, 8}) {
    auto parallel = GcgtBfs(cgr, 0, OptionsFor(GcgtLevel::kFull, threads));
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial.value().depth, parallel.value().depth) << threads;
    EXPECT_EQ(serial.value().metrics.warp, parallel.value().metrics.warp)
        << threads;
    EXPECT_EQ(serial.value().metrics.model_ms,
              parallel.value().metrics.model_ms)
        << threads;
  }
}

TEST(ParallelEngine, RepeatedParallelRunsAreStable) {
  Graph g = TestGraph();
  CgrGraph cgr = EncodeLayout(g, 32);
  auto first = GcgtBfs(cgr, 0, OptionsFor(GcgtLevel::kFull, 4));
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = GcgtBfs(cgr, 0, OptionsFor(GcgtLevel::kFull, 4));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(first.value().depth, again.value().depth);
    EXPECT_EQ(first.value().metrics.warp, again.value().metrics.warp);
    EXPECT_EQ(first.value().metrics.model_ms, again.value().metrics.model_ms);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool reentrancy guard.
// ---------------------------------------------------------------------------

TEST(ThreadPoolReentrancy, NestedParallelForRunsInlineUnderCallerTid) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, 1, [&](size_t outer_tid, size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      pool.ParallelFor(kInner, 8,
                       [&](size_t inner_tid, size_t ib, size_t ie) {
                         // The nested call must stay on the calling worker.
                         EXPECT_EQ(inner_tid, outer_tid);
                         for (size_t i = ib; i < ie; ++i) {
                           hits[o * kInner + i].fetch_add(1);
                         }
                       });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolReentrancy, DeeplyNestedAndRepeatedCallsDoNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(12, 1, [&](size_t, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        pool.ParallelFor(4, 1, [&](size_t, size_t b2, size_t e2) {
          for (size_t j = b2; j < e2; ++j) {
            pool.ParallelFor(2, 1, [&](size_t, size_t b3, size_t e3) {
              total.fetch_add(e3 - b3, std::memory_order_relaxed);
            });
          }
        });
      }
    });
  }
  EXPECT_EQ(total.load(), 50ull * 12 * 4 * 2);
}

TEST(ThreadPoolReentrancy, SequentialParallelForsFromMainThread) {
  // The caller-participation path sets and clears the thread-local pool
  // marker; back-to-back top-level calls must still fan out normally.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(hits.size(), 16, [&](size_t tid, size_t b, size_t e) {
      EXPECT_LT(tid, pool.num_threads());
      for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

}  // namespace
}  // namespace gcgt
