// GcgtSession: the prepare-once / query-many contract.
//  - session reuse: queries on one session are bit-identical to fresh
//    single-query engines,
//  - zero engine constructions per query (engine identity across a batch),
//  - RunBatch determinism across host thread counts (incl. BC doubles),
//  - backend cross-checks: BFS/CC/BC agree across kCgrSimt, kCsrBaseline
//    and kCpuReference on generated graphs,
//  - Prepare() equals the hand-rolled VNC -> reorder -> encode pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "api/gcgt_session.h"
#include "baseline/cpu_bfs.h"
#include "baseline/cpu_reference.h"
#include "graph/generators.h"

namespace gcgt {
namespace {

Graph MakeGraph(const std::string& name) {
  if (name == "web") {
    WebGraphParams p;
    p.num_nodes = 1500;
    p.seed = 91;
    return GenerateWebGraph(p);
  }
  if (name == "twitter") {
    TwitterGraphParams p;
    p.num_nodes = 1200;
    p.seed = 92;
    return GenerateTwitterGraph(p);
  }
  return GenerateErdosRenyi(900, 5400, 93);
}

// Partitions agree (representatives may differ between algorithms).
void ExpectSamePartition(const std::vector<NodeId>& a,
                         const std::vector<NodeId>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<NodeId, NodeId> a2b, b2a;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it, _] = a2b.emplace(a[i], b[i]);
    ASSERT_EQ(it->second, b[i]) << "node " << i << " splits a component";
    auto [jt, __] = b2a.emplace(b[i], a[i]);
    ASSERT_EQ(jt->second, a[i]) << "node " << i << " merges components";
  }
}

TEST(GcgtSession, ReuseBitIdenticalToFreshEngines) {
  Graph g = MakeGraph("web");
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  ASSERT_TRUE(session.ok());
  const CgrGraph& cgr = session.value().cgr();
  const GcgtOptions opt = session.value().options().gcgt;

  // Interleave query types so every driver runs on a reused pipeline.
  const NodeId s1 = 0, s2 = 17;
  auto bfs1 = session.value().Run(BfsQuery{s1});
  auto cc = session.value().Run(CcQuery{});
  auto bfs2 = session.value().Run(BfsQuery{s2});
  auto bc = session.value().Run(BcQuery{{s1}});
  ASSERT_TRUE(bfs1.ok() && cc.ok() && bfs2.ok() && bc.ok());

  auto fresh_bfs1 = GcgtBfs(cgr, s1, opt);
  auto fresh_bfs2 = GcgtBfs(cgr, s2, opt);
  auto fresh_cc = GcgtCc(cgr, opt);
  auto fresh_bc = GcgtBc(cgr, s1, opt);
  ASSERT_TRUE(fresh_bfs1.ok() && fresh_bfs2.ok() && fresh_cc.ok() &&
              fresh_bc.ok());

  EXPECT_EQ(bfs1.value().bfs().depth, fresh_bfs1.value().depth);
  EXPECT_EQ(bfs2.value().bfs().depth, fresh_bfs2.value().depth);
  EXPECT_EQ(cc.value().cc().component, fresh_cc.value().component);
  EXPECT_EQ(cc.value().cc().rounds, fresh_cc.value().rounds);
  EXPECT_EQ(bc.value().bc().dependency, fresh_bc.value().dependency);
  EXPECT_EQ(bc.value().bc().sigma, fresh_bc.value().sigma);
  EXPECT_EQ(bc.value().bc().depth, fresh_bc.value().depth);

  // Metrics too: the reused pipeline must model exactly the same kernels.
  EXPECT_EQ(bfs2.value().metrics().model_ms, fresh_bfs2.value().metrics.model_ms);
  EXPECT_EQ(bfs2.value().metrics().kernels, fresh_bfs2.value().metrics.kernels);
  EXPECT_EQ(bfs2.value().metrics().warp.steps,
            fresh_bfs2.value().metrics.warp.steps);
  EXPECT_EQ(bc.value().metrics().model_ms, fresh_bc.value().metrics.model_ms);
  EXPECT_EQ(cc.value().metrics().warp.mem_txns,
            fresh_cc.value().metrics.warp.mem_txns);
}

TEST(GcgtSession, ZeroEngineConstructionsAcrossBatch) {
  Graph g = MakeGraph("er");
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  ASSERT_TRUE(session.ok());
  const CgrTraversalEngine* engine_before = &session.value().engine();

  std::vector<Query> batch = {BfsQuery{0}, CcQuery{}, BfsQuery{5},
                              BcQuery{{0, 3}}, CcQuery{}};
  const uint64_t constructed = CgrTraversalEngine::ConstructedCount();
  auto results = session.value().RunBatch(batch);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), batch.size());

  // The batch constructed no engine, and the session still serves the same
  // instance it prepared.
  EXPECT_EQ(CgrTraversalEngine::ConstructedCount(), constructed);
  EXPECT_EQ(&session.value().engine(), engine_before);
}

TEST(GcgtSession, RunBatchDeterministicAcrossThreadCounts) {
  Graph g = MakeGraph("twitter");
  std::vector<Query> batch = {BfsQuery{0}, CcQuery{}, BcQuery{{0, 7, 42}},
                              BfsQuery{11}};

  std::vector<std::vector<QueryResult>> runs;
  for (int threads : {1, 2, 4}) {
    PrepareOptions opt;
    opt.gcgt.num_threads = threads;
    auto session = GcgtSession::Prepare(g, opt);
    ASSERT_TRUE(session.ok());
    auto results = session.value().RunBatch(batch);
    ASSERT_TRUE(results.ok());
    runs.push_back(std::move(results.value()));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r][0].bfs().depth, runs[0][0].bfs().depth);
    EXPECT_EQ(runs[r][1].cc().component, runs[0][1].cc().component);
    // Bit-identical doubles: the claim protocol pins accumulation order.
    EXPECT_EQ(runs[r][2].bc().dependency, runs[0][2].bc().dependency);
    EXPECT_EQ(runs[r][2].bc().sigma, runs[0][2].bc().sigma);
    EXPECT_EQ(runs[r][3].bfs().depth, runs[0][3].bfs().depth);
    for (size_t q = 0; q < batch.size(); ++q) {
      EXPECT_EQ(runs[r][q].metrics().model_ms, runs[0][q].metrics().model_ms)
          << "query " << q;
    }
  }
}

class SessionBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SessionBackendTest, CrossCheckBfsCcBc) {
  Graph g = MakeGraph(GetParam());
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  ASSERT_TRUE(session.ok());

  const Backend backends[] = {Backend::kCgrSimt, Backend::kCsrBaseline,
                              Backend::kCpuReference};
  const NodeId source = 3;

  std::vector<QueryResult> bfs, cc, bc;
  for (Backend b : backends) {
    auto r1 = session.value().Run(BfsQuery{source}, {.backend = b});
    auto r2 = session.value().Run(CcQuery{}, {.backend = b});
    auto r3 = session.value().Run(BcQuery{{source}}, {.backend = b});
    ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok()) << BackendName(b);
    bfs.push_back(std::move(r1.value()));
    cc.push_back(std::move(r2.value()));
    bc.push_back(std::move(r3.value()));
  }

  for (size_t i = 1; i < std::size(backends); ++i) {
    EXPECT_EQ(bfs[i].bfs().depth, bfs[0].bfs().depth)
        << BackendName(backends[i]);
    ExpectSamePartition(cc[i].cc().component, cc[0].cc().component);
    ASSERT_EQ(bc[i].bc().depth, bc[0].bc().depth);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_NEAR(bc[i].bc().sigma[v], bc[0].bc().sigma[v],
                  1e-6 * (1 + std::abs(bc[0].bc().sigma[v])))
          << BackendName(backends[i]) << " node " << v;
      ASSERT_NEAR(bc[i].bc().dependency[v], bc[0].bc().dependency[v],
                  1e-6 * (1 + std::abs(bc[0].bc().dependency[v])))
          << BackendName(backends[i]) << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, SessionBackendTest,
                         ::testing::Values("web", "twitter", "er"));

TEST(GcgtSession, MultiSourceBcAccumulatesOneDependencyVector) {
  Graph g = MakeGraph("er");
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  ASSERT_TRUE(session.ok());

  auto batch = session.value().Run(BcQuery{{2, 9}});
  auto a = session.value().Run(BcQuery{{2}});
  auto b = session.value().Run(BcQuery{{9}});
  ASSERT_TRUE(batch.ok() && a.ok() && b.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(batch.value().bc().dependency[v],
              a.value().bc().dependency[v] + b.value().bc().dependency[v])
        << "node " << v;
  }
  // Metrics aggregate both sources into one query (the batch converts the
  // summed cycle count once, so allow conversion rounding).
  EXPECT_NEAR(batch.value().metrics().model_ms,
              a.value().metrics().model_ms + b.value().metrics().model_ms,
              1e-12);
  EXPECT_EQ(batch.value().metrics().kernels,
            a.value().metrics().kernels + b.value().metrics().kernels);
}

TEST(GcgtSession, PrepareMatchesHandRolledPipeline) {
  Graph raw = MakeGraph("web");
  PrepareOptions opt;
  opt.apply_vnc = true;
  opt.reorder = ReorderMethod::kLlp;
  auto session = GcgtSession::Prepare(raw, opt);
  ASSERT_TRUE(session.ok());

  VncResult vnc = VirtualNodeCompress(raw, opt.vnc);
  Graph ordered = ApplyReordering(vnc.graph, opt.reorder, opt.reorder_seed);
  auto cgr = CgrGraph::Encode(ordered, opt.cgr);
  ASSERT_TRUE(cgr.ok());

  EXPECT_TRUE(std::equal(
      session.value().cgr().bits().begin(), session.value().cgr().bits().end(),
      cgr.value().bits().begin(), cgr.value().bits().end()));
  EXPECT_EQ(session.value().cgr().total_bits(), cgr.value().total_bits());
  EXPECT_EQ(session.value().vnc_virtual_nodes(), vnc.num_virtual_nodes());
  EXPECT_EQ(session.value().graph().num_edges(), ordered.num_edges());
}

TEST(GcgtSession, AttachServesBorrowedEncodingAndDecodesBaselineGraph) {
  Graph g = MakeGraph("er");
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  GcgtOptions opt;
  GcgtSession session = GcgtSession::Attach(cgr.value(), opt);

  auto from_session = session.Run(BfsQuery{4});
  auto from_free = GcgtBfs(cgr.value(), 4, opt);
  ASSERT_TRUE(from_session.ok() && from_free.ok());
  EXPECT_EQ(from_session.value().bfs().depth, from_free.value().depth);
  EXPECT_EQ(from_session.value().metrics().model_ms,
            from_free.value().metrics.model_ms);

  // The lossless decode feeds the baseline backends the original graph.
  EXPECT_EQ(session.graph().num_edges(), g.num_edges());
  auto cpu = session.Run(BfsQuery{4}, {.backend = Backend::kCpuReference});
  ASSERT_TRUE(cpu.ok());
  EXPECT_EQ(cpu.value().bfs().depth, from_free.value().depth);
}

TEST(GcgtSession, ReorderedSessionAnswersInCallerIdSpace) {
  Graph g = MakeGraph("web");
  auto plain = GcgtSession::Prepare(g, PrepareOptions{});
  PrepareOptions llp;
  llp.reorder = ReorderMethod::kLlp;
  auto reordered = GcgtSession::Prepare(g, llp);
  ASSERT_TRUE(plain.ok() && reordered.ok());
  EXPECT_EQ(reordered.value().num_query_nodes(), g.num_nodes());

  // Distances are relabeling-invariant: the reordered session must answer
  // exactly like the unreordered one, in the caller's ids.
  const NodeId source = 5;
  auto a = plain.value().Run(BfsQuery{source});
  auto b = reordered.value().Run(BfsQuery{source});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().bfs().depth, b.value().bfs().depth);

  // ... on every backend.
  auto b_cpu = reordered.value().Run(BfsQuery{source},
                                     {.backend = Backend::kCpuReference});
  ASSERT_TRUE(b_cpu.ok());
  EXPECT_EQ(b_cpu.value().bfs().depth, a.value().bfs().depth);

  // CC: same partition; labels canonicalized to the smallest caller id.
  auto cc_a = plain.value().Run(CcQuery{});
  auto cc_b = reordered.value().Run(CcQuery{});
  ASSERT_TRUE(cc_a.ok() && cc_b.ok());
  ExpectSamePartition(cc_a.value().cc().component, cc_b.value().cc().component);
  EXPECT_EQ(cc_b.value().cc().component, SerialCc(g));

  auto bc_a = plain.value().Run(BcQuery{{source}});
  auto bc_b = reordered.value().Run(BcQuery{{source}});
  ASSERT_TRUE(bc_a.ok() && bc_b.ok());
  EXPECT_EQ(bc_a.value().bc().depth, bc_b.value().bc().depth);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(bc_a.value().bc().dependency[v],
                bc_b.value().bc().dependency[v],
                1e-6 * (1 + std::abs(bc_a.value().bc().dependency[v])))
        << "node " << v;
  }
}

TEST(GcgtSession, VncSessionResultsCoverExactlyTheRealNodes) {
  Graph g = MakeGraph("web");
  PrepareOptions opt;
  opt.apply_vnc = true;
  opt.reorder = ReorderMethod::kLlp;
  auto session = GcgtSession::Prepare(g, opt);
  ASSERT_TRUE(session.ok());
  ASSERT_GT(session.value().vnc_virtual_nodes(), 0u);
  EXPECT_EQ(session.value().num_query_nodes(), g.num_nodes());

  const NodeId source = 5;
  auto bfs = session.value().Run(BfsQuery{source});
  ASSERT_TRUE(bfs.ok());
  ASSERT_EQ(bfs.value().bfs().depth.size(), g.num_nodes());
  // Virtual hops change distances, never reachability.
  std::vector<uint32_t> original = SerialBfs(g, source);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(bfs.value().bfs().depth[v] == BfsFilter::kUnvisited,
              original[v] == kBfsUnreached)
        << "node " << v;
  }

  // The partition over real nodes is VNC-invariant, and the canonical
  // min-id labels match the union-find oracle on the ORIGINAL graph.
  auto cc = session.value().Run(CcQuery{});
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(cc.value().cc().component, SerialCc(g));
}

TEST(GcgtSession, AttachCloneSharesArtifactsAndServesIdenticalResults) {
  Graph g = MakeGraph("web");
  PrepareOptions opt;
  opt.reorder = ReorderMethod::kLlp;  // clone must inherit the id translation
  auto session = GcgtSession::Prepare(g, opt);
  ASSERT_TRUE(session.ok());
  session.value().graph();  // force the decode so clones share it

  const uint64_t encodes = CgrGraph::EncodedCount();
  const uint64_t engines = CgrTraversalEngine::ConstructedCount();
  GcgtSession clone = session.value().AttachClone(/*num_threads_override=*/1);
  // A clone costs one engine and zero encodes; artifacts are shared by
  // reference, down to the decoded uncompressed view.
  EXPECT_EQ(CgrGraph::EncodedCount(), encodes);
  EXPECT_EQ(CgrTraversalEngine::ConstructedCount(), engines + 1);
  EXPECT_EQ(&clone.cgr(), &session.value().cgr());
  EXPECT_EQ(&clone.graph(), &session.value().graph());
  EXPECT_EQ(clone.artifact_fingerprint(),
            session.value().artifact_fingerprint());
  EXPECT_EQ(clone.num_query_nodes(), session.value().num_query_nodes());

  for (const Query& q :
       {Query{BfsQuery{7}}, Query{CcQuery{}}, Query{BcQuery{{2, 7}}}}) {
    auto a = session.value().Run(q);
    auto b = clone.Run(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().metrics().model_ms, b.value().metrics().model_ms);
    if (a.value().kind() == QueryKind::kBfs) {
      EXPECT_EQ(a.value().bfs().depth, b.value().bfs().depth);
    } else if (a.value().kind() == QueryKind::kCc) {
      EXPECT_EQ(a.value().cc().component, b.value().cc().component);
    } else {
      EXPECT_EQ(a.value().bc().dependency, b.value().bc().dependency);
    }
  }
}

TEST(GcgtSession, ArtifactFingerprintPinsGraphAndOptions) {
  Graph g = MakeGraph("er");
  Graph g2 = MakeGraph("web");
  PrepareOptions opt;
  EXPECT_EQ(ComputeArtifactFingerprint(g, opt),
            ComputeArtifactFingerprint(g, opt));

  PrepareOptions other = opt;
  other.gcgt.level = GcgtLevel::kTwoPhase;
  EXPECT_NE(ComputeArtifactFingerprint(g, other),
            ComputeArtifactFingerprint(g, opt));
  EXPECT_NE(ComputeArtifactFingerprint(g2, opt),
            ComputeArtifactFingerprint(g, opt));

  // num_threads is NOT part of the identity: results are bit-identical
  // across host thread counts, so cached results may be shared across them.
  PrepareOptions threads = opt;
  threads.gcgt.num_threads = 7;
  EXPECT_EQ(ComputeArtifactFingerprint(g, threads),
            ComputeArtifactFingerprint(g, opt));

  auto session = GcgtSession::Prepare(g, opt);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().artifact_fingerprint(),
            ComputeArtifactFingerprint(g, opt));
}

TEST(GcgtSession, InvalidQueriesRejected) {
  Graph g = MakeGraph("er");
  auto session = GcgtSession::Prepare(g, PrepareOptions{});
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value()
                  .Run(BfsQuery{g.num_nodes() + 5})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session.value().Run(BcQuery{{}}).status().IsInvalidArgument());
  EXPECT_TRUE(session.value()
                  .Run(BcQuery{{g.num_nodes()}})
                  .status()
                  .IsInvalidArgument());
  for (Backend b : {Backend::kCsrBaseline, Backend::kCpuReference}) {
    EXPECT_TRUE(session.value()
                    .Run(BfsQuery{g.num_nodes() + 5}, {.backend = b})
                    .status()
                    .IsInvalidArgument());
  }
}

TEST(GcgtSession, OutOfMemoryBudgetSurfacesPerBackend) {
  Graph g = MakeGraph("er");
  PrepareOptions opt;
  opt.gcgt.device.memory_bytes = 1024;  // nothing fits
  auto session = GcgtSession::Prepare(g, opt);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value().Run(BfsQuery{0}).status().IsOutOfMemory());
  EXPECT_TRUE(session.value()
                  .Run(CcQuery{}, {.backend = Backend::kCsrBaseline})
                  .status()
                  .IsOutOfMemory());
  // The CPU reference has no device: it always answers.
  EXPECT_TRUE(
      session.value().Run(BfsQuery{0}, {.backend = Backend::kCpuReference}).ok());
}

}  // namespace
}  // namespace gcgt
