// GCGT extensions (paper §6): Connected Components and Betweenness
// Centrality on CGR, validated against serial CPU references.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baseline/cpu_reference.h"
#include "core/bc.h"
#include "core/cc.h"
#include "graph/generators.h"

namespace gcgt {
namespace {

// Components are equal iff the partitions agree (representatives may differ).
void ExpectSamePartition(const std::vector<NodeId>& a,
                         const std::vector<NodeId>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<NodeId, NodeId> a2b;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it, inserted] = a2b.emplace(a[i], b[i]);
    ASSERT_EQ(it->second, b[i]) << "node " << i << " splits a component";
  }
  std::map<NodeId, NodeId> b2a;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it, inserted] = b2a.emplace(b[i], a[i]);
    ASSERT_EQ(it->second, a[i]) << "node " << i << " merges components";
  }
}

class GcgtCcTest : public ::testing::TestWithParam<const char*> {};

Graph MakeCcGraph(const std::string& name) {
  if (name == "two_cliques") {
    EdgeList edges;
    for (NodeId u = 0; u < 5; ++u) {
      for (NodeId v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
    }
    for (NodeId u = 10; u < 14; ++u) edges.emplace_back(u, u + 1);
    return Graph::FromEdges(20, edges, /*symmetrize=*/true);
  }
  if (name == "er_sparse") return GenerateErdosRenyi(2000, 3000, 41);
  if (name == "er_dense") return GenerateErdosRenyi(800, 8000, 42);
  if (name == "web") {
    WebGraphParams p;
    p.num_nodes = 1500;
    p.seed = 43;
    return GenerateWebGraph(p);
  }
  TwitterGraphParams p;
  p.num_nodes = 1500;
  p.seed = 44;
  return GenerateTwitterGraph(p);
}

TEST_P(GcgtCcTest, MatchesUnionFind) {
  Graph g = MakeCcGraph(GetParam());
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto result = GcgtCc(cgr.value(), GcgtOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSamePartition(result.value().component, SerialCc(g));
  EXPECT_GT(result.value().rounds, 0);
  EXPECT_GT(result.value().metrics.model_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Graphs, GcgtCcTest,
                         ::testing::Values("two_cliques", "er_sparse",
                                           "er_dense", "web", "twitter"));

TEST(GcgtCcEdgeCases, SingletonNodesAreOwnComponents) {
  Graph g = Graph::FromEdges(6, {{0, 1}});
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto result = GcgtCc(cgr.value(), GcgtOptions{});
  ASSERT_TRUE(result.ok());
  const auto& comp = result.value().component;
  EXPECT_EQ(comp[0], comp[1]);
  for (NodeId v = 2; v < 6; ++v) EXPECT_EQ(comp[v], v);
}

TEST(GcgtCcEdgeCases, DirectedEdgesGiveWeakComponents) {
  // 0 -> 1 -> 2, no back edges: still one weak component.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto result = GcgtCc(cgr.value(), GcgtOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().component[0], result.value().component[2]);
}

struct BcParam {
  const char* graph;
  GcgtLevel level;
};

class GcgtBcTest : public ::testing::TestWithParam<BcParam> {};

TEST_P(GcgtBcTest, MatchesSerialBrandes) {
  Graph g = MakeCcGraph(GetParam().graph);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  GcgtOptions opt;
  opt.level = GetParam().level;
  for (NodeId source : {NodeId(0), NodeId(g.num_nodes() / 3)}) {
    auto result = GcgtBc(cgr.value(), source, opt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SerialBcResult expected = SerialBc(g, source);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(result.value().depth[v], expected.depth[v]) << "node " << v;
      ASSERT_NEAR(result.value().sigma[v], expected.sigma[v],
                  1e-6 * (1 + std::abs(expected.sigma[v])))
          << "node " << v;
      ASSERT_NEAR(result.value().dependency[v], expected.dependency[v],
                  1e-6 * (1 + std::abs(expected.dependency[v])))
          << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, GcgtBcTest,
    ::testing::Values(BcParam{"two_cliques", GcgtLevel::kFull},
                      BcParam{"er_sparse", GcgtLevel::kFull},
                      BcParam{"web", GcgtLevel::kFull},
                      BcParam{"twitter", GcgtLevel::kFull},
                      BcParam{"er_dense", GcgtLevel::kTaskStealing}));

TEST(GcgtBc, PathGraphDependencies) {
  // On a directed path 0->1->2->3, delta(v) = #descendants on shortest paths.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto result = GcgtBc(cgr.value(), 0, GcgtOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().dependency[0], 0.0);  // source excluded
  EXPECT_DOUBLE_EQ(result.value().dependency[1], 2.0);
  EXPECT_DOUBLE_EQ(result.value().dependency[2], 1.0);
  EXPECT_DOUBLE_EQ(result.value().dependency[3], 0.0);
}

TEST(GcgtBc, InvalidSourceRejected) {
  Graph g = MakePath(3);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  EXPECT_TRUE(GcgtBc(cgr.value(), 77, GcgtOptions{}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace gcgt
