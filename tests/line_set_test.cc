// Differential tests for the run-aware memory-accounting rewrite: LineSet's
// interval + open-addressed hybrid, WarpContext's run-merging MemAccess
// paths, and DenseRegionFilter are each checked against naive
// std::unordered_set oracles over randomized streams — `mem_txns` must match
// the one-line-at-a-time model EXACTLY, across line sizes, lane counts and
// epoch Clear() boundaries. An engine-level suite then asserts that
// BENCH_fig8-shape BFS runs produce bit-identical WarpStats between the
// serial and parallel engines for every lane-count x line-size combination.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cgr/cgr_graph.h"
#include "core/bfs.h"
#include "core/cgr_traversal.h"
#include "core/frontier_filter.h"
#include "core/gcgt_options.h"
#include "core/memory_layout.h"
#include "graph/generators.h"
#include "simt/warp.h"

namespace gcgt {
namespace {

using simt::DenseRegionFilter;
using simt::LineSet;
using simt::WarpContext;
using simt::WarpStats;

/// The reference semantics: a plain set of line ids, inserted one line at a
/// time (exactly the pre-rewrite implementation).
class OracleSet {
 public:
  uint64_t InsertRun(uint64_t first, uint64_t n) {
    uint64_t novel = 0;
    for (uint64_t l = first; l < first + n; ++l) {
      novel += lines_.insert(l).second ? 1 : 0;
    }
    return novel;
  }
  void Clear() { lines_.clear(); }
  size_t size() const { return lines_.size(); }

 private:
  std::unordered_set<uint64_t> lines_;
};

/// Reference WarpContext memory model: per-line inserts of every byte
/// range, cleared at TakeStats — the exact pre-rewrite accounting.
class OracleContext {
 public:
  explicit OracleContext(int line_bytes) : line_bytes_(line_bytes) {}

  void Access(uint64_t addr, uint64_t bytes) {
    if (bytes == 0) return;
    for (uint64_t l = addr / line_bytes_; l <= (addr + bytes - 1) / line_bytes_;
         ++l) {
      txns_ += set_.InsertRun(l, 1);
    }
  }
  uint64_t TakeTxns() {
    uint64_t t = txns_;
    txns_ = 0;
    set_.Clear();
    return t;
  }

 private:
  uint64_t line_bytes_;
  OracleSet set_;
  uint64_t txns_ = 0;
};

TEST(LineSet, SingleInsertMatchesOracleOnRandomStream) {
  std::mt19937_64 rng(1234);
  LineSet set;
  OracleSet oracle;
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 2000; ++i) {
      // Mix dense clusters (re-touches) with scattered lines.
      uint64_t line = (rng() % 3 == 0) ? rng() % 64 : rng() % (1 << 20);
      ASSERT_EQ(set.Insert(line), oracle.InsertRun(line, 1) != 0);
      ASSERT_EQ(set.size(), oracle.size());
    }
    set.Clear();
    oracle.Clear();
    ASSERT_EQ(set.size(), 0u);
  }
}

TEST(LineSet, RunInsertMatchesOracleOnRandomStream) {
  std::mt19937_64 rng(99);
  LineSet set;
  OracleSet oracle;
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 1500; ++i) {
      uint64_t first = rng() % (1 << 16);
      uint64_t n = 1 + rng() % 64;  // crosses the small-run threshold
      ASSERT_EQ(set.InsertRun(first, n), oracle.InsertRun(first, n))
          << "first=" << first << " n=" << n << " i=" << i;
      ASSERT_EQ(set.size(), oracle.size());
    }
    set.Clear();
    oracle.Clear();
  }
}

TEST(LineSet, MixedSinglesAndRunsInterleaved) {
  // Singles land in the hash table, runs in the interval list; overlaps
  // between the two structures are the subtle cases.
  std::mt19937_64 rng(2025);
  LineSet set;
  OracleSet oracle;
  for (int i = 0; i < 30000; ++i) {
    uint64_t first;
    uint64_t n;
    switch (rng() % 4) {
      case 0:  // scattered single
        first = rng() % 4096;
        n = 1;
        break;
      case 1:  // single adjacent to likely-existing runs
        first = (rng() % 64) * 64 + rng() % 2;
        n = 1;
        break;
      case 2:  // long run over the singles' range
        first = rng() % 4096;
        n = 8 + rng() % 120;
        break;
      default:  // short straddle run
        first = rng() % 4096;
        n = 2 + rng() % 3;
        break;
    }
    ASSERT_EQ(set.InsertRun(first, n), oracle.InsertRun(first, n))
        << "first=" << first << " n=" << n << " i=" << i;
    ASSERT_EQ(set.size(), oracle.size());
    if (rng() % 1000 == 0) {
      set.Clear();
      oracle.Clear();
    }
  }
}

TEST(LineSet, RunAbsorbsMultipleIntervalsAndHashSingles) {
  LineSet set;
  OracleSet oracle;
  // Two intervals with a gap, plus scattered singles inside the gap.
  for (auto [f, n] : {std::pair<uint64_t, uint64_t>{100, 10},
                      std::pair<uint64_t, uint64_t>{200, 10}}) {
    ASSERT_EQ(set.InsertRun(f, n), oracle.InsertRun(f, n));
  }
  for (uint64_t l : {150ull, 160ull, 170ull}) {
    ASSERT_EQ(set.Insert(l), oracle.InsertRun(l, 1) != 0);
  }
  // A run covering everything: novel = gap lines minus the three singles.
  ASSERT_EQ(set.InsertRun(90, 150), oracle.InsertRun(90, 150));
  ASSERT_EQ(set.size(), oracle.size());
  // Fully covered re-insert is free.
  ASSERT_EQ(set.InsertRun(95, 100), 0u);
  ASSERT_EQ(set.Insert(155), false);
}

TEST(LineSet, EpochClearReallyEmpties) {
  LineSet set;
  EXPECT_EQ(set.InsertRun(10, 50), 50u);
  EXPECT_EQ(set.Insert(5000), true);
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.InsertRun(10, 50), 50u);  // everything cold again
  EXPECT_EQ(set.Insert(5000), true);
}

/// Drives WarpContext and the oracle with the same randomized op stream and
/// compares mem_txns at every TakeStats (warp) boundary.
void RunContextDifferential(int lanes, int line_bytes, uint64_t seed) {
  std::mt19937_64 rng(seed);
  WarpContext ctx(lanes, line_bytes);
  OracleContext oracle(line_bytes);
  std::vector<uint64_t> addrs;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;

  for (int warp = 0; warp < 300; ++warp) {
    const int ops = 1 + static_cast<int>(rng() % 40);
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 3) {
        case 0: {  // MemAccess: per-lane width-w gather
          const uint32_t width = 1 + static_cast<uint32_t>(rng() % 16);
          addrs.clear();
          const bool sorted_run = rng() % 2 == 0;
          uint64_t base = rng() % (1 << 22);
          for (int l = 0; l < lanes; ++l) {
            uint64_t a = sorted_run ? base + uint64_t(l) * width
                                    : rng() % (1 << 22);
            addrs.push_back(a);
            oracle.Access(a, width);
          }
          ctx.MemAccess(addrs, width);
          break;
        }
        case 1: {  // MemAccessRanges: per-lane inclusive byte ranges
          ranges.clear();
          for (int l = 0; l < lanes; ++l) {
            uint64_t lo = rng() % (1 << 22);
            uint64_t len = 1 + rng() % 300;
            ranges.emplace_back(lo, lo + len - 1);
            oracle.Access(lo, len);
          }
          ctx.MemAccessRanges(ranges);
          break;
        }
        default: {  // MemAccessRange: contiguous block (maybe empty)
          uint64_t addr = rng() % (1 << 22);
          uint64_t bytes = rng() % 4000;
          ctx.MemAccessRange(addr, bytes);
          if (bytes > 0) oracle.Access(addr, bytes);
          break;
        }
      }
    }
    ASSERT_EQ(ctx.TakeStats().mem_txns, oracle.TakeTxns())
        << "warp=" << warp << " lanes=" << lanes << " line=" << line_bytes;
  }
}

TEST(WarpContextDifferential, MemTxnsMatchOracleAcrossLaneAndLineSizes) {
  uint64_t seed = 7;
  for (int lanes : {8, 16, 32}) {
    for (int line_bytes : {32, 128}) {
      RunContextDifferential(lanes, line_bytes, seed++);
    }
  }
}

TEST(WarpContextDifferential, NonPowerOfTwoLineSizeFallback) {
  RunContextDifferential(8, 96, 1234);  // division fallback path
}

TEST(DenseRegionFilter, MatchesLineSetForAlignedElements) {
  // 4-byte elements, 128B lines: 32 elems per line, like the label region.
  DenseRegionFilter filter;
  filter.Configure(32, 1 << 16);
  std::mt19937_64 rng(77);
  for (int warp = 0; warp < 200; ++warp) {
    filter.NextWarp();
    OracleSet oracle;
    for (int i = 0; i < 500; ++i) {
      if (rng() % 4 == 0) {
        uint64_t first = rng() % (1 << 16);
        uint64_t last = first + rng() % 200;
        ASSERT_EQ(filter.TouchRange(first, last),
                  oracle.InsertRun(first / 32, last / 32 - first / 32 + 1));
      } else {
        uint64_t e = rng() % (1 << 16);
        ASSERT_EQ(filter.Touch(e), oracle.InsertRun(e / 32, 1));
      }
    }
  }
}

TEST(DenseRegionFilter, DisabledForNonPowerOfTwoGeometry) {
  DenseRegionFilter filter;
  filter.Configure(24, 1000);
  EXPECT_FALSE(filter.enabled());
  filter.Configure(0, 1000);
  EXPECT_FALSE(filter.enabled());
  filter.Configure(16, 1000);
  EXPECT_TRUE(filter.enabled());
}

// ---------------------------------------------------------------------------
// Engine-level bit-identity: BENCH_fig8-shape BFS runs must produce
// bit-identical frontiers and per-warp WarpStats between the serial
// reference and the parallel engine, for every lane-count x line-size
// combination (including the 32B-line configuration that stresses the
// scattered fallback and the straddling decode reads).
// ---------------------------------------------------------------------------

Graph Fig8ShapeGraph() {
  WebGraphParams params;
  params.num_nodes = 1200;
  params.avg_degree = 10;
  params.seed = 4242;
  return GenerateWebGraph(params);
}

void RunEngineBitIdentity(uint32_t segment_len, int lanes, int line_bytes) {
  Graph g = Fig8ShapeGraph();
  CgrOptions copt;
  copt.segment_len_bytes = segment_len;
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok()) << cgr.status().ToString();

  auto options_for = [&](int threads) {
    GcgtOptions o;
    o.lanes = lanes;
    o.num_threads = threads;
    o.cost.cache_line_bytes = line_bytes;
    return o;
  };
  CgrTraversalEngine serial(cgr.value(), options_for(1));
  CgrTraversalEngine parallel(cgr.value(), options_for(4));

  BfsFilter f_serial(g.num_nodes()), f_parallel(g.num_nodes());
  const NodeId source = 1;
  f_serial.SetSource(source);
  f_parallel.SetSource(source);
  std::vector<NodeId> frontier_s{source}, frontier_p{source};
  while (!frontier_s.empty() || !frontier_p.empty()) {
    std::vector<NodeId> next_s, next_p;
    std::vector<WarpStats> warps_s, warps_p;
    serial.ProcessFrontier(frontier_s, f_serial, &next_s, &warps_s);
    parallel.ProcessFrontier(frontier_p, f_parallel, &next_p, &warps_p);
    ASSERT_EQ(next_s, next_p) << "lanes=" << lanes << " line=" << line_bytes
                              << " seg=" << segment_len;
    ASSERT_EQ(warps_s.size(), warps_p.size());
    for (size_t w = 0; w < warps_s.size(); ++w) {
      ASSERT_EQ(warps_s[w], warps_p[w])
          << "warp " << w << " lanes=" << lanes << " line=" << line_bytes
          << " seg=" << segment_len;
    }
    frontier_s.swap(next_s);
    frontier_p.swap(next_p);
  }
  ASSERT_EQ(f_serial.depth(), f_parallel.depth());
}

TEST(EngineBitIdentity, WarpStatsAcrossLaneAndLineSizes) {
  for (uint32_t seg : {0u, 32u}) {
    for (int lanes : {8, 16, 32}) {
      for (int line_bytes : {32, 128}) {
        RunEngineBitIdentity(seg, lanes, line_bytes);
      }
    }
  }
}

}  // namespace
}  // namespace gcgt
