// Tests for util: bit streams, zigzag, Status/Result, RNG, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/bit_stream.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/zigzag.h"

namespace gcgt {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  std::vector<bool> bits = {1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1};
  for (bool b : bits) w.PutBit(b);
  EXPECT_EQ(w.num_bits(), bits.size());
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  for (bool b : bits) EXPECT_EQ(r.GetBit(), b);
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStream, MsbFirstLayout) {
  BitWriter w;
  w.PutBits(0b1011, 4);
  EXPECT_EQ(w.ToBitString(), "1011");
  EXPECT_EQ(w.bytes()[0], 0b10110000);  // bit 0 is the byte's MSB
}

TEST(BitStream, MultiBitValuesAcrossByteBoundaries) {
  BitWriter w;
  w.PutBits(0x5a5, 12);
  w.PutBits(0x3ffffffffull, 34);
  w.PutBits(1, 1);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  EXPECT_EQ(r.GetBits(12), 0x5a5u);
  EXPECT_EQ(r.GetBits(34), 0x3ffffffffull);
  EXPECT_EQ(r.GetBits(1), 1u);
}

TEST(BitStream, UnaryDecoding) {
  size_t n = 0;
  auto bytes = BitsFromString("0001 01 1 000001", &n);
  BitReader r(bytes.data(), n);
  EXPECT_EQ(r.GetUnary(), 3);
  EXPECT_EQ(r.GetUnary(), 1);
  EXPECT_EQ(r.GetUnary(), 0);
  EXPECT_EQ(r.GetUnary(), 5);
}

TEST(BitStream, SeekAndRandomAccess) {
  BitWriter w;
  w.PutBits(0b110010111, 9);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), 9, /*start_bit=*/3);
  EXPECT_EQ(r.GetBits(3), 0b010u);
  r.Seek(0);
  EXPECT_EQ(r.GetBits(2), 0b11u);
  EXPECT_EQ(r.byte_pos(), 0u);
}

TEST(BitStream, OverflowIsSticky) {
  BitWriter w;
  w.PutBits(0b11, 2);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), 2);
  r.GetBits(2);
  EXPECT_FALSE(r.overflowed());
  EXPECT_EQ(r.GetBit(), 0);
  EXPECT_TRUE(r.overflowed());
}

TEST(BitStream, AlignTo) {
  BitWriter w;
  w.PutBits(0b101, 3);
  w.AlignTo(8);
  EXPECT_EQ(w.num_bits(), 8u);
  w.AlignTo(8);
  EXPECT_EQ(w.num_bits(), 8u);  // already aligned: no-op
}

TEST(Zigzag, RoundTripAndOrdering) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  for (int64_t v = -1000; v <= 1000; ++v) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagDecode(ZigzagEncode(int64_t(1) << 40)), int64_t(1) << 40);
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::OutOfMemory("12GB exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.ToString(), "OutOfMemory: 12GB exceeded");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::NotFound("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfIsSkewed) {
  Rng rng(11);
  uint64_t ones = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t z = rng.Zipf(1000, 2.0);
    EXPECT_GE(z, 1u);
    EXPECT_LE(z, 1000u);
    if (z == 1) ++ones;
  }
  EXPECT_GT(ones, total / 3);  // alpha=2: P(1) ~ 0.6
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), 64, [&](size_t tid, size_t b, size_t e) {
    EXPECT_LT(tid, pool.num_threads());
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 16, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, 100, [&](size_t, size_t b, size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 3);
}

}  // namespace
}  // namespace gcgt
