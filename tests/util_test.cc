// Tests for util: bit streams, zigzag, Status/Result, RNG, thread pool,
// bounded MPMC queue.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>

#include "util/bit_stream.h"
#include "util/bounded_queue.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/zigzag.h"

namespace gcgt {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  std::vector<bool> bits = {1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1};
  for (bool b : bits) w.PutBit(b);
  EXPECT_EQ(w.num_bits(), bits.size());
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  for (bool b : bits) EXPECT_EQ(r.GetBit(), b);
  EXPECT_FALSE(r.overflowed());
}

TEST(BitStream, MsbFirstLayout) {
  BitWriter w;
  w.PutBits(0b1011, 4);
  EXPECT_EQ(w.ToBitString(), "1011");
  EXPECT_EQ(w.bytes()[0], 0b10110000);  // bit 0 is the byte's MSB
}

TEST(BitStream, MultiBitValuesAcrossByteBoundaries) {
  BitWriter w;
  w.PutBits(0x5a5, 12);
  w.PutBits(0x3ffffffffull, 34);
  w.PutBits(1, 1);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  EXPECT_EQ(r.GetBits(12), 0x5a5u);
  EXPECT_EQ(r.GetBits(34), 0x3ffffffffull);
  EXPECT_EQ(r.GetBits(1), 1u);
}

TEST(BitStream, UnaryDecoding) {
  size_t n = 0;
  auto bytes = BitsFromString("0001 01 1 000001", &n);
  BitReader r(bytes.data(), n);
  EXPECT_EQ(r.GetUnary(), 3);
  EXPECT_EQ(r.GetUnary(), 1);
  EXPECT_EQ(r.GetUnary(), 0);
  EXPECT_EQ(r.GetUnary(), 5);
}

TEST(BitStream, SeekAndRandomAccess) {
  BitWriter w;
  w.PutBits(0b110010111, 9);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), 9, /*start_bit=*/3);
  EXPECT_EQ(r.GetBits(3), 0b010u);
  r.Seek(0);
  EXPECT_EQ(r.GetBits(2), 0b11u);
  EXPECT_EQ(r.byte_pos(), 0u);
}

TEST(BitStream, OverflowIsSticky) {
  BitWriter w;
  w.PutBits(0b11, 2);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), 2);
  r.GetBits(2);
  EXPECT_FALSE(r.overflowed());
  EXPECT_EQ(r.GetBit(), 0);
  EXPECT_TRUE(r.overflowed());
}

// ---------------------------------------------------------------------------
// Word-at-a-time reader paths. The reference below reproduces the original
// bit-at-a-time semantics; the production reader must match it exactly,
// including positions and overflow behavior.
// ---------------------------------------------------------------------------

/// Bit-at-a-time reference implementation of the BitReader contract.
class ReferenceBitReader {
 public:
  ReferenceBitReader(const uint8_t* data, size_t num_bits, size_t start = 0)
      : data_(data), num_bits_(num_bits), pos_(start) {}

  bool GetBit() {
    if (pos_ >= num_bits_) {
      overflowed_ = true;
      ++pos_;
      return false;
    }
    bool bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }
  uint64_t GetBits(int width) {
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) v = (v << 1) | (GetBit() ? 1u : 0u);
    return v;
  }
  int GetUnary() {
    int zeros = 0;
    while (!GetBit()) {
      if (overflowed_) return zeros;
      ++zeros;
    }
    return zeros;
  }
  size_t pos() const { return pos_; }
  void Seek(size_t p) { pos_ = p; }
  bool overflowed() const { return overflowed_; }

 private:
  const uint8_t* data_;
  size_t num_bits_;
  size_t pos_;
  bool overflowed_ = false;
};

TEST(BitStreamWordPaths, CrossByteAndCrossWordReads) {
  // 33 bytes of pseudo-random bits: enough for misaligned 64-bit reads that
  // need the 9th byte.
  Rng rng(42);
  std::vector<uint8_t> bytes(33);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
  const size_t n = bytes.size() * 8;
  for (size_t start : {0ul, 1ul, 3ul, 7ul, 8ul, 13ul, 63ul, 65ul}) {
    for (int width : {1, 7, 8, 9, 17, 31, 32, 33, 56, 63, 64}) {
      BitReader fast(bytes.data(), n, start);
      ReferenceBitReader ref(bytes.data(), n, start);
      EXPECT_EQ(fast.GetBits(width), ref.GetBits(width))
          << "start " << start << " width " << width;
      EXPECT_EQ(fast.pos(), ref.pos());
      EXPECT_EQ(fast.overflowed(), ref.overflowed());
    }
  }
}

TEST(BitStreamWordPaths, UnaryRunsSpanningWords) {
  // 70 zeros, a one, 200 zeros, a one, then 5 zeros to the end (no one bit).
  BitWriter w;
  w.PutZeros(70);
  w.PutBit(true);
  w.PutZeros(200);
  w.PutBit(true);
  w.PutZeros(5);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  EXPECT_EQ(r.GetUnary(), 70);
  EXPECT_EQ(r.pos(), 71u);
  EXPECT_EQ(r.GetUnary(), 200);
  EXPECT_EQ(r.pos(), 272u);
  EXPECT_FALSE(r.overflowed());
  // The tail has no terminating one bit: return zeros seen, set overflow,
  // leave pos one past the end (like the failed GetBit would).
  EXPECT_EQ(r.GetUnary(), 5);
  EXPECT_TRUE(r.overflowed());
  EXPECT_EQ(r.pos(), w.num_bits() + 1);
}

TEST(BitStreamWordPaths, GetBitsOverflowAtTailMatchesBitAtATime) {
  BitWriter w;
  w.PutBits(0b1011011, 7);
  auto bytes = w.bytes();
  for (size_t start : {0ul, 3ul, 6ul, 7ul}) {
    for (int width : {1, 4, 8, 16, 64}) {
      BitReader fast(bytes.data(), 7, start);
      ReferenceBitReader ref(bytes.data(), 7, start);
      EXPECT_EQ(fast.GetBits(width), ref.GetBits(width))
          << "start " << start << " width " << width;
      EXPECT_EQ(fast.pos(), ref.pos());
      EXPECT_EQ(fast.overflowed(), ref.overflowed());
    }
  }
}

TEST(BitStreamWordPaths, RandomizedDifferentialAgainstReference) {
  Rng rng(20190630);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t num_bytes = 1 + rng.Uniform(40);
    std::vector<uint8_t> bytes(num_bytes);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
    // Truncate to a ragged bit count so tail handling is exercised.
    const size_t n = num_bytes * 8 - rng.Uniform(8);
    BitReader fast(bytes.data(), n);
    ReferenceBitReader ref(bytes.data(), n);
    for (int op = 0; op < 200; ++op) {
      switch (rng.Uniform(4)) {
        case 0:
          ASSERT_EQ(fast.GetBit(), ref.GetBit());
          break;
        case 1: {
          int width = static_cast<int>(rng.Uniform(65));
          ASSERT_EQ(fast.GetBits(width), ref.GetBits(width))
              << "trial " << trial << " width " << width;
          break;
        }
        case 2:
          ASSERT_EQ(fast.GetUnary(), ref.GetUnary()) << "trial " << trial;
          break;
        case 3: {
          size_t to = rng.Uniform(n + 4);
          fast.Seek(to);
          ref.Seek(to);
          break;
        }
      }
      ASSERT_EQ(fast.pos(), ref.pos()) << "trial " << trial << " op " << op;
      ASSERT_EQ(fast.overflowed(), ref.overflowed());
    }
  }
}

TEST(BitStreamWordPaths, BatchedWriterMatchesBitAtATime) {
  // Random PutBit/PutBits/PutZeros sequences must produce the same bytes as
  // writing every bit individually.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    BitWriter batched;
    BitWriter single;
    for (int op = 0; op < 60; ++op) {
      switch (rng.Uniform(3)) {
        case 0: {
          bool bit = rng.Uniform(2) != 0;
          batched.PutBit(bit);
          single.PutBit(bit);
          break;
        }
        case 1: {
          int width = static_cast<int>(rng.Uniform(65));
          uint64_t value = rng.Next();
          batched.PutBits(value, width);
          for (int i = width - 1; i >= 0; --i) single.PutBit((value >> i) & 1u);
          break;
        }
        case 2: {
          int count = static_cast<int>(rng.Uniform(20));
          batched.PutZeros(count);
          for (int i = 0; i < count; ++i) single.PutBit(false);
          break;
        }
      }
    }
    ASSERT_EQ(batched.num_bits(), single.num_bits()) << "trial " << trial;
    ASSERT_EQ(batched.bytes(), single.bytes()) << "trial " << trial;
  }
}

TEST(BitStream, AlignTo) {
  BitWriter w;
  w.PutBits(0b101, 3);
  w.AlignTo(8);
  EXPECT_EQ(w.num_bits(), 8u);
  w.AlignTo(8);
  EXPECT_EQ(w.num_bits(), 8u);  // already aligned: no-op
}

TEST(Zigzag, RoundTripAndOrdering) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  for (int64_t v = -1000; v <= 1000; ++v) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagDecode(ZigzagEncode(int64_t(1) << 40)), int64_t(1) << 40);
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::OutOfMemory("12GB exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.ToString(), "OutOfMemory: 12GB exceeded");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Status, RobustnessCodesRoundTrip) {
  Status d = Status::DeadlineExceeded("query deadline exceeded");
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.IsDeadlineExceeded());
  EXPECT_FALSE(d.IsCancelled());
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: query deadline exceeded");

  Status c = Status::Cancelled("client went away");
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.IsCancelled());
  EXPECT_FALSE(c.IsDeadlineExceeded());
  EXPECT_EQ(c.ToString(), "Cancelled: client went away");

  Status i = Status::Internal("worker exception: boom");
  EXPECT_TRUE(i.IsInternal());
  EXPECT_EQ(i.ToString(), "Internal: worker exception: boom");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::NotFound("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfIsSkewed) {
  Rng rng(11);
  uint64_t ones = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t z = rng.Zipf(1000, 2.0);
    EXPECT_GE(z, 1u);
    EXPECT_LE(z, 1000u);
    if (z == 1) ++ones;
  }
  EXPECT_GT(ones, total / 3);  // alpha=2: P(1) ~ 0.6
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), 64, [&](size_t tid, size_t b, size_t e) {
    EXPECT_LT(tid, pool.num_threads());
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 16, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, 100, [&](size_t, size_t b, size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(BoundedQueue, FifoOrderAndCapacityOnOneThread) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    EXPECT_EQ(q.TryPush(item), BoundedQueue<int>::PushResult::kOk);
  }
  int overflow = 99;
  EXPECT_EQ(q.TryPush(overflow), BoundedQueue<int>::PushResult::kFull);
  EXPECT_EQ(overflow, 99);  // a shed item is left unconsumed
  EXPECT_EQ(q.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.Pop(), i);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 4; ++i) {
    int item = i;
    ASSERT_TRUE(q.Push(item));
  }
  q.Close();
  int late = 7;
  EXPECT_FALSE(q.Push(late));
  EXPECT_EQ(q.TryPush(late), BoundedQueue<int>::PushResult::kClosed);
  // Accepted items drain in order; only then does Pop report closed.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.Pop(), i);
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 500;
  BoundedQueue<int> q(5);  // tiny: forces producers into backpressure waits
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        ASSERT_TRUE(q.Push(item));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  constexpr long long kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(BoundedQueue, PushAfterCloseLeavesTheItemUnconsumed) {
  // Load-bearing for the service's "every accepted future is fulfilled"
  // guarantee: a failed push must leave the caller owning the item so it
  // can fail the item's promise itself.
  BoundedQueue<std::unique_ptr<int>> q(4);
  q.Close();
  auto item = std::make_unique<int>(7);
  EXPECT_FALSE(q.Push(item));
  ASSERT_NE(item, nullptr);  // not moved-from
  EXPECT_EQ(*item, 7);
  EXPECT_EQ(q.TryPush(item), BoundedQueue<std::unique_ptr<int>>::PushResult::kClosed);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 7);
}

TEST(BoundedQueue, ConcurrentCloseEveryPushLandsOrFailsCleanly) {
  // Producers race Close(): every item is either popped exactly once by the
  // drain or still owned by its producer — no third outcome, no loss.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  BoundedQueue<std::unique_ptr<int>> q(16);
  std::atomic<int> accepted{0}, refused{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto item = std::make_unique<int>(p * kPerProducer + i);
        if (q.Push(item)) {
          ++accepted;
        } else {
          ++refused;
          ASSERT_NE(item, nullptr);  // the Push-after-Close contract
        }
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    while (q.Pop()) ++popped;
  });
  // Let some traffic through, then slam the door mid-stream.
  while (popped.load() < 8) std::this_thread::yield();
  q.Close();
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.load(), accepted.load());  // drained exactly once each
}

TEST(BoundedQueue, MoveOnlyItems) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  auto item = std::make_unique<int>(42);
  ASSERT_TRUE(q.Push(item));
  EXPECT_EQ(item, nullptr);  // consumed on acceptance
  auto out = q.Pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 42);
}

}  // namespace
}  // namespace gcgt
