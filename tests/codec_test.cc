// Codec-layer differential tests:
//  - randomized encode -> decode round-trip oracle across all three codecs,
//    the GcgtLevels and both CGR layouts (the decoded adjacency must always
//    equal the input adjacency);
//  - traversal codec-invariance: BFS/CC/BC answers are identical across
//    codecs (only metrics may differ — the codecs change the cost profile,
//    never the results);
//  - the artifact fingerprint incorporates the codec id and the replay-cache
//    knobs (artifacts of different codecs/configs must never alias);
//  - replay-cache correctness: hot-vertex replay changes charges and append
//    order but never answers (BFS/CC exact, BC up to float summation order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "api/gcgt_session.h"
#include "cgr/byte_codecs.h"
#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "cgr/codec.h"
#include "core/bc.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/random.h"

namespace gcgt {
namespace {

Graph TestGraph(uint64_t seed) {
  // Dense enough that hubs exist (hits the replay degree gate) and every
  // value-byte-length class of the byte codecs occurs.
  return GenerateErdosRenyi(/*num_nodes=*/600, /*num_edges=*/6000, seed);
}

std::vector<CgrOptions> AllLayouts(CodecId codec) {
  std::vector<CgrOptions> out;
  if (codec == CodecId::kCgr) {
    for (int seg : {0, 32}) {
      CgrOptions o;
      o.codec = codec;
      o.segment_len_bytes = seg;
      out.push_back(o);
    }
  } else {
    CgrOptions o;
    o.codec = codec;
    out.push_back(o);
  }
  return out;
}

TEST(Codec, RandomizedRoundTripOracle) {
  for (uint64_t seed : {7u, 21u}) {
    Graph g = TestGraph(seed);
    for (CodecId codec : kAllCodecs) {
      for (const CgrOptions& opt : AllLayouts(codec)) {
        auto cgr = CgrGraph::Encode(g, opt);
        ASSERT_TRUE(cgr.ok()) << CodecName(codec);
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          std::vector<NodeId> want(g.Neighbors(u).begin(),
                                   g.Neighbors(u).end());
          std::sort(want.begin(), want.end());
          EXPECT_EQ(DecodeAdjacency(cgr.value(), u), want)
              << CodecName(codec) << " node " << u;
          EXPECT_EQ(DecodeDegree(cgr.value(), u), want.size());
        }
      }
    }
  }
}

TEST(Codec, ByteCodecStreamMatchesDecodeAdjacency) {
  Graph g = TestGraph(3);
  for (CodecId codec : {CodecId::kStreamVByte, CodecId::kVarintGb}) {
    CgrOptions opt;
    opt.codec = codec;
    auto cgr = CgrGraph::Encode(g, opt);
    ASSERT_TRUE(cgr.ok());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ByteCodecStream bs(cgr.value(), u);
      std::vector<NodeId> got;
      while (bs.HasNext()) {
        ByteBlock blk = bs.NextBlock();
        for (uint32_t i = 0; i < blk.count; ++i) got.push_back(blk.vals[i]);
      }
      EXPECT_EQ(got, DecodeAdjacency(cgr.value(), u)) << CodecName(codec);
    }
  }
}

TEST(Codec, TraversalResultsAreCodecInvariant) {
  Graph g = TestGraph(11);
  const NodeId source = 5;

  // Reference answers from the default CGR codec.
  CgrOptions ref_opt;
  auto ref_cgr = CgrGraph::Encode(g, ref_opt);
  ASSERT_TRUE(ref_cgr.ok());
  GcgtOptions go;
  auto ref_bfs = GcgtBfs(ref_cgr.value(), source, go);
  auto ref_cc = GcgtCc(ref_cgr.value(), go);
  auto ref_bc = GcgtBc(ref_cgr.value(), source, go);
  ASSERT_TRUE(ref_bfs.ok() && ref_cc.ok() && ref_bc.ok());

  for (CodecId codec : {CodecId::kStreamVByte, CodecId::kVarintGb}) {
    CgrOptions opt;
    opt.codec = codec;
    auto cgr = CgrGraph::Encode(g, opt);
    ASSERT_TRUE(cgr.ok());
    for (GcgtLevel level : {GcgtLevel::kIntuitive, GcgtLevel::kFull}) {
      GcgtOptions o;
      o.level = level;  // byte codecs collapse the levels into one walk
      auto bfs = GcgtBfs(cgr.value(), source, o);
      auto cc = GcgtCc(cgr.value(), o);
      auto bc = GcgtBc(cgr.value(), source, o);
      ASSERT_TRUE(bfs.ok() && cc.ok() && bc.ok()) << CodecName(codec);
      EXPECT_EQ(bfs.value().depth, ref_bfs.value().depth) << CodecName(codec);
      EXPECT_EQ(cc.value().component, ref_cc.value().component)
          << CodecName(codec);
      EXPECT_EQ(bc.value().dependency, ref_bc.value().dependency)
          << CodecName(codec);
      EXPECT_EQ(bc.value().sigma, ref_bc.value().sigma) << CodecName(codec);
      // Byte codecs charge fewer decode slots but still decode something.
      EXPECT_GT(bfs.value().metrics.warp.decode_words, 0u);
    }
  }
}

TEST(Codec, SessionResultsAreCodecInvariant) {
  Graph g = TestGraph(13);
  PrepareOptions base;
  auto ref = GcgtSession::Prepare(g, base);
  ASSERT_TRUE(ref.ok());
  RunOptions run;
  auto ref_bfs = ref.value().Run(Query{BfsQuery{4}}, run);
  auto ref_cc = ref.value().Run(Query{CcQuery{}}, run);
  auto ref_bc = ref.value().Run(Query{BcQuery{{4, 9}}}, run);
  ASSERT_TRUE(ref_bfs.ok() && ref_cc.ok() && ref_bc.ok());

  for (CodecId codec : {CodecId::kStreamVByte, CodecId::kVarintGb}) {
    PrepareOptions opt;
    opt.cgr.codec = codec;
    auto session = GcgtSession::Prepare(g, opt);
    ASSERT_TRUE(session.ok()) << CodecName(codec);
    auto bfs = session.value().Run(Query{BfsQuery{4}}, run);
    auto cc = session.value().Run(Query{CcQuery{}}, run);
    auto bc = session.value().Run(Query{BcQuery{{4, 9}}}, run);
    ASSERT_TRUE(bfs.ok() && cc.ok() && bc.ok()) << CodecName(codec);
    EXPECT_EQ(bfs.value().bfs().depth, ref_bfs.value().bfs().depth);
    EXPECT_EQ(cc.value().cc().component, ref_cc.value().cc().component);
    EXPECT_EQ(bc.value().bc().dependency, ref_bc.value().bc().dependency);
  }
}

TEST(Codec, FingerprintIncorporatesCodecAndReplayKnobs) {
  Graph g = GenerateErdosRenyi(64, 256, 1);
  PrepareOptions base;
  const uint64_t fp_cgr = ComputeArtifactFingerprint(g, base);

  PrepareOptions svb = base;
  svb.cgr.codec = CodecId::kStreamVByte;
  PrepareOptions vgb = base;
  vgb.cgr.codec = CodecId::kVarintGb;
  const uint64_t fp_svb = ComputeArtifactFingerprint(g, svb);
  const uint64_t fp_vgb = ComputeArtifactFingerprint(g, vgb);
  EXPECT_NE(fp_cgr, fp_svb);
  EXPECT_NE(fp_cgr, fp_vgb);
  EXPECT_NE(fp_svb, fp_vgb);

  PrepareOptions replay = base;
  replay.gcgt.replay_cache_bytes = 1 << 20;
  EXPECT_NE(ComputeArtifactFingerprint(g, replay), fp_cgr);
  replay.gcgt.replay_min_touches = 3;
  EXPECT_NE(ComputeArtifactFingerprint(g, replay),
            ComputeArtifactFingerprint(g, base));
}

TEST(Codec, ReplayCacheKeepsAnswersAndCountsHits) {
  Graph g = TestGraph(17);
  CgrOptions copt;
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok());

  GcgtOptions off;
  GcgtOptions on;
  on.replay_cache_bytes = 4ull << 20;
  on.replay_min_degree = 4;
  on.replay_min_touches = 2;

  // CC re-scans nodes across fixpoint rounds, so hot vertices meet the
  // touch gate and replay from the cache.
  auto cc_off = GcgtCc(cgr.value(), off);
  auto cc_on = GcgtCc(cgr.value(), on);
  ASSERT_TRUE(cc_off.ok() && cc_on.ok());
  EXPECT_EQ(cc_on.value().component, cc_off.value().component);
  EXPECT_GT(cc_on.value().metrics.warp.replay_hits, 0u);
  EXPECT_GT(cc_on.value().metrics.warp.replay_txns, 0u);

  // BFS touches each vertex's list once per query: no hits, same answers.
  auto bfs_off = GcgtBfs(cgr.value(), 2, off);
  auto bfs_on = GcgtBfs(cgr.value(), 2, on);
  ASSERT_TRUE(bfs_off.ok() && bfs_on.ok());
  EXPECT_EQ(bfs_on.value().depth, bfs_off.value().depth);

  // BC: the backward sweep re-touches every forward-frontier vertex. With a
  // single source that second touch IS the admission round, so replay needs
  // min_touches = 1 to serve hits within one query. sigma is exact
  // (integer-valued path counts); dependency is compared with a tolerance
  // (append order changes float summation order).
  GcgtOptions bc_opts = on;
  bc_opts.replay_min_touches = 1;
  auto bc_off = GcgtBc(cgr.value(), 2, off);
  auto bc_on = GcgtBc(cgr.value(), 2, bc_opts);
  ASSERT_TRUE(bc_off.ok() && bc_on.ok());
  EXPECT_EQ(bc_on.value().sigma, bc_off.value().sigma);
  EXPECT_EQ(bc_on.value().depth, bc_off.value().depth);
  ASSERT_EQ(bc_on.value().dependency.size(), bc_off.value().dependency.size());
  for (size_t i = 0; i < bc_off.value().dependency.size(); ++i) {
    EXPECT_NEAR(bc_on.value().dependency[i], bc_off.value().dependency[i],
                1e-9)
        << "node " << i;
  }
  EXPECT_GT(bc_on.value().metrics.warp.replay_hits, 0u);
}

TEST(Codec, ReplayCacheIsInvalidatedBetweenQueries) {
  // Two identical runs on one session must report identical metrics: if the
  // cache leaked across queries, the second run would start warm and charge
  // differently.
  Graph g = TestGraph(19);
  PrepareOptions opt;
  opt.gcgt.replay_cache_bytes = 4ull << 20;
  opt.gcgt.replay_min_degree = 4;
  auto session = GcgtSession::Prepare(g, opt);
  ASSERT_TRUE(session.ok());
  RunOptions run;
  auto a = session.value().Run(Query{CcQuery{}}, run);
  auto b = session.value().Run(Query{CcQuery{}}, run);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().cc().component, b.value().cc().component);
  EXPECT_EQ(a.value().cc().metrics.warp, b.value().cc().metrics.warp);
  EXPECT_EQ(a.value().cc().metrics.model_ms, b.value().cc().metrics.model_ms);
}

TEST(Codec, ReplayCacheIsThreadCountInvariant) {
  Graph g = TestGraph(23);
  CgrOptions copt;
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok());
  GcgtOptions serial;
  serial.num_threads = 1;
  serial.replay_cache_bytes = 4ull << 20;
  serial.replay_min_degree = 4;
  GcgtOptions parallel = serial;
  parallel.num_threads = 4;
  auto a = GcgtCc(cgr.value(), serial);
  auto b = GcgtCc(cgr.value(), parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().component, b.value().component);
  EXPECT_EQ(a.value().metrics.warp, b.value().metrics.warp);
  EXPECT_EQ(a.value().metrics.model_ms, b.value().metrics.model_ms);
}

TEST(Codec, ByteCodecFirstDeltaOverflowIsRejected) {
  std::vector<uint8_t> out;
  // Node 0 with a neighbor >= 2^31: zigzag(first delta) exceeds 32 bits.
  const std::vector<NodeId> neighbors = {static_cast<NodeId>(0x80000001u)};
  Status s = EncodeNodeBytes(CodecId::kStreamVByte, 0, neighbors, &out);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace gcgt
