// Baseline tests: byte-RLE codec, Ligra / Ligra+ CPU BFS, and the simulated
// GPUCSR / Gunrock engines (correctness + OOM modeling).
#include <gtest/gtest.h>

#include "baseline/byte_rle.h"
#include "baseline/cpu_bfs.h"
#include "baseline/cpu_reference.h"
#include "baseline/csr_gpu_engine.h"
#include "graph/generators.h"

namespace gcgt {
namespace {

TEST(ByteRle, RoundTripAllNodes) {
  Graph g = GenerateErdosRenyi(800, 10000, 51);
  ByteRleGraph enc = ByteRleGraph::Encode(g);
  EXPECT_EQ(enc.num_nodes(), g.num_nodes());
  EXPECT_EQ(enc.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto expected = g.Neighbors(u);
    auto got = enc.DecodeAdjacency(u);
    ASSERT_EQ(got.size(), expected.size()) << "node " << u;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "node " << u;
    ASSERT_EQ(enc.Degree(u), expected.size());
  }
}

TEST(ByteRle, HandlesNegativeFirstGapAndLargeGaps) {
  EdgeList edges = {{100, 2}, {100, 3}, {100, 99999}, {100, 100000}};
  Graph g = Graph::FromEdges(200000, edges);
  ByteRleGraph enc = ByteRleGraph::Encode(g);
  EXPECT_EQ(enc.DecodeAdjacency(100),
            (std::vector<NodeId>{2, 3, 99999, 100000}));
}

TEST(ByteRle, CompressesLocalGraphs) {
  WebGraphParams p;
  p.num_nodes = 3000;
  Graph g = GenerateWebGraph(p);
  ByteRleGraph enc = ByteRleGraph::Encode(g);
  EXPECT_LT(enc.BitsPerEdge(), 32.0);
  EXPECT_GT(enc.CompressionRate(), 1.0);
}

class CpuBfsTest : public ::testing::TestWithParam<int> {};

TEST_P(CpuBfsTest, LigraMatchesSerial) {
  Graph g = GenerateErdosRenyi(3000, 20000, 52 + GetParam());
  Graph rev = g.Reversed();
  ThreadPool pool(2);
  for (NodeId source : {NodeId(0), NodeId(1234)}) {
    auto expected = SerialBfs(g, source);
    auto got = LigraBfs(g, rev, source, pool);
    ASSERT_EQ(got, expected) << "source " << source;
  }
}

TEST_P(CpuBfsTest, LigraPlusMatchesSerial) {
  Graph g = GenerateRmat(2048, 16000, 53 + GetParam());
  Graph rev = g.Reversed();
  ByteRleGraph enc = ByteRleGraph::Encode(g);
  ByteRleGraph enc_rev = ByteRleGraph::Encode(rev);
  ThreadPool pool(2);
  auto expected = SerialBfs(g, 0);
  auto got = LigraPlusBfs(enc, enc_rev, 0, pool);
  ASSERT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuBfsTest, ::testing::Values(0, 1, 2));

TEST(CpuBfs, DenseAndSparseSwitchAgree) {
  // Force always-sparse vs always-dense; both must match serial.
  Graph g = GenerateErdosRenyi(1000, 12000, 57);
  Graph rev = g.Reversed();
  ThreadPool pool(2);
  auto expected = SerialBfs(g, 3);
  LigraOptions always_sparse;
  always_sparse.dense_denominator = 0;  // threshold 0 edges -> always dense
  LigraOptions always_dense = always_sparse;
  always_sparse.dense_denominator = 1;  // threshold |E| -> mostly sparse
  EXPECT_EQ(LigraBfs(g, rev, 3, pool, always_sparse), expected);
  EXPECT_EQ(LigraBfs(g, rev, 3, pool, always_dense), expected);
}

struct CsrParam {
  bool gunrock;
};

class CsrEngineTest : public ::testing::TestWithParam<bool> {};

TEST_P(CsrEngineTest, BfsMatchesSerial) {
  CsrEngineOptions opt;
  opt.gunrock = GetParam();
  for (int seed : {61, 62}) {
    Graph g = GenerateRmat(2048, 20000, seed);
    auto result = CsrBfs(g, 5, opt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto expected = SerialBfs(g, 5);
    ASSERT_EQ(result.value().depth, expected);
    EXPECT_GT(result.value().metrics.model_ms, 0.0);
  }
}

TEST_P(CsrEngineTest, CcMatchesUnionFind) {
  CsrEngineOptions opt;
  opt.gunrock = GetParam();
  Graph g = GenerateErdosRenyi(1500, 2500, 63);
  auto result = CsrCc(g, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = SerialCc(g);
  // Both use min-root hooking: representatives must match exactly.
  EXPECT_EQ(result.value().component, expected);
}

TEST_P(CsrEngineTest, BcMatchesSerialBrandes) {
  CsrEngineOptions opt;
  opt.gunrock = GetParam();
  Graph g = GenerateErdosRenyi(800, 6000, 64);
  auto result = CsrBc(g, 7, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  SerialBcResult expected = SerialBc(g, 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(result.value().depth[v], expected.depth[v]);
    ASSERT_NEAR(result.value().dependency[v], expected.dependency[v], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, CsrEngineTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Gunrock" : "GPUCSR";
                         });

TEST(DeviceMemoryModel, GunrockOomsBeforeGpucsr) {
  Graph g = GenerateErdosRenyi(5000, 100000, 65);
  CsrEngineOptions gpucsr;
  CsrEngineOptions gunrock;
  gunrock.gunrock = true;
  // Budget between the two footprints: GPUCSR fits, Gunrock does not.
  uint64_t base = CsrBytes32(g) + 4ull * g.num_nodes() + 8ull * g.num_nodes();
  gpucsr.device.memory_bytes = base + (64 << 10);
  gunrock.device.memory_bytes = base + (64 << 10);
  EXPECT_TRUE(CsrBfs(g, 0, gpucsr).ok());
  EXPECT_TRUE(CsrBfs(g, 0, gunrock).status().IsOutOfMemory());
}

TEST(DeviceMemoryModel, CgrFootprintIsSmallerThanCsr) {
  WebGraphParams p;
  p.num_nodes = 8000;
  Graph g = GenerateWebGraph(p);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  EXPECT_LT(cgr.value().DeviceBytes(), CsrBytes32(g));
}

TEST(CsrEngines, GunrockCostsMoreThanGpucsr) {
  Graph g = GenerateRmat(4096, 40000, 66);
  CsrEngineOptions gpucsr;
  CsrEngineOptions gunrock;
  gunrock.gunrock = true;
  auto a = CsrBfs(g, 0, gpucsr);
  auto b = CsrBfs(g, 0, gunrock);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b.value().metrics.model_ms, a.value().metrics.model_ms);
}

}  // namespace
}  // namespace gcgt
