// End-to-end pipeline tests: the paper's unified preprocessing
// (VNC -> LLP reordering -> CGR encoding) followed by GCGT traversal, and
// cross-engine agreement on every graph family.
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/cpu_bfs.h"
#include "baseline/csr_gpu_engine.h"
#include "cgr/cgr_graph.h"
#include "core/bfs.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "reorder/reorder.h"
#include "util/random.h"
#include "vnc/virtual_node.h"

namespace gcgt {
namespace {

class PipelineTest : public ::testing::TestWithParam<const char*> {};

Graph MakeGraph(const std::string& name) {
  if (name == "web") {
    WebGraphParams p;
    p.num_nodes = 2500;
    p.seed = 91;
    return GenerateWebGraph(p);
  }
  if (name == "social") {
    SocialGraphParams p;
    p.num_nodes = 2500;
    p.seed = 92;
    return GenerateSocialGraph(p);
  }
  if (name == "twitter") {
    TwitterGraphParams p;
    p.num_nodes = 2000;
    p.seed = 93;
    return GenerateTwitterGraph(p);
  }
  BrainGraphParams p;
  p.num_nodes = 800;
  p.avg_degree = 60;
  p.seed = 94;
  return GenerateBrainGraph(p);
}

TEST_P(PipelineTest, UnifiedPreprocessingThenAllEnginesAgree) {
  Graph raw = MakeGraph(GetParam());

  // Paper §7.2: virtual-node compression, then locality reordering; all
  // engines afterwards run on the same transformed graph.
  VncResult vnc = VirtualNodeCompress(raw);
  Graph g = ApplyReordering(vnc.graph, ReorderMethod::kLlp);
  NodeId source = 0;

  auto serial = SerialBfs(g, source);

  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto gcgt = GcgtBfs(cgr.value(), source, GcgtOptions{});
  ASSERT_TRUE(gcgt.ok());
  EXPECT_EQ(gcgt.value().depth, serial);

  auto gpucsr = CsrBfs(g, source, CsrEngineOptions{});
  ASSERT_TRUE(gpucsr.ok());
  EXPECT_EQ(gpucsr.value().depth, serial);

  CsrEngineOptions gopt;
  gopt.gunrock = true;
  auto gunrock = CsrBfs(g, source, gopt);
  ASSERT_TRUE(gunrock.ok());
  EXPECT_EQ(gunrock.value().depth, serial);

  Graph rev = g.Reversed();
  ThreadPool pool(2);
  EXPECT_EQ(LigraBfs(g, rev, source, pool), serial);
  EXPECT_EQ(LigraPlusBfs(ByteRleGraph::Encode(g), ByteRleGraph::Encode(rev),
                         source, pool),
            serial);
}

INSTANTIATE_TEST_SUITE_P(Families, PipelineTest,
                         ::testing::Values("web", "social", "twitter",
                                           "brain"));

TEST(CompressionShape, WebCompressesMoreThanSocial) {
  // Paper §7.2: web graphs reach ~10x; social graphs only 2-3x.
  WebGraphParams wp;
  wp.num_nodes = 6000;
  Graph web = ApplyReordering(VirtualNodeCompress(GenerateWebGraph(wp)).graph,
                              ReorderMethod::kLlp);
  SocialGraphParams sp;
  sp.num_nodes = 6000;
  Graph social = ApplyReordering(
      VirtualNodeCompress(GenerateSocialGraph(sp)).graph, ReorderMethod::kLlp);

  auto web_cgr = CgrGraph::Encode(web, CgrOptions{});
  auto social_cgr = CgrGraph::Encode(social, CgrOptions{});
  ASSERT_TRUE(web_cgr.ok() && social_cgr.ok());
  EXPECT_GT(web_cgr.value().CompressionRate(),
            social_cgr.value().CompressionRate());
  EXPECT_GT(web_cgr.value().CompressionRate(), 4.0);
  EXPECT_GT(social_cgr.value().CompressionRate(), 1.2);
}

TEST(PerformanceShape, GcgtWithinSmallFactorOfGpucsr) {
  // Paper Fig. 8: GCGT trades a modest latency overhead (<= ~2x, 1.54x worst
  // case in the paper) for large memory savings.
  WebGraphParams p;
  p.num_nodes = 8000;
  Graph g = ApplyReordering(VirtualNodeCompress(GenerateWebGraph(p)).graph,
                            ReorderMethod::kLlp);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto gcgt = GcgtBfs(cgr.value(), 0, GcgtOptions{});
  auto gpucsr = CsrBfs(g, 0, CsrEngineOptions{});
  ASSERT_TRUE(gcgt.ok() && gpucsr.ok());
  double ratio =
      gcgt.value().metrics.model_ms / gpucsr.value().metrics.model_ms;
  EXPECT_LT(ratio, 3.0) << "GCGT overhead too large";
  EXPECT_LT(cgr.value().DeviceBytes(), CsrBytes32(g) / 2)
      << "compression should at least halve the footprint";
}

TEST(PerformanceShape, SegmentationHelpsOnHubGraphs) {
  // Paper Fig. 9/14: residual segmentation is decisive on twitter-like
  // graphs with super nodes.
  TwitterGraphParams p;
  p.num_nodes = 6000;
  p.seed = 96;
  Graph g = GenerateTwitterGraph(p);

  CgrOptions unseg;
  unseg.segment_len_bytes = 0;
  auto cgr_unseg = CgrGraph::Encode(g, unseg);
  auto cgr_seg = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr_unseg.ok() && cgr_seg.ok());

  GcgtOptions level3;
  level3.level = GcgtLevel::kWarpCentric;
  GcgtOptions full;
  auto t3 = GcgtBfs(cgr_unseg.value(), 0, level3);
  auto t4 = GcgtBfs(cgr_seg.value(), 0, full);
  ASSERT_TRUE(t3.ok() && t4.ok());
  EXPECT_LT(t4.value().metrics.model_ms, t3.value().metrics.model_ms);
}

TEST(CompressionShape, SmallerSegmentsCostCompression) {
  // Paper Fig. 14: smaller segLen -> more blank padding -> lower rate.
  TwitterGraphParams p;
  p.num_nodes = 4000;
  Graph g = GenerateTwitterGraph(p);
  CgrOptions seg8;
  seg8.segment_len_bytes = 8;
  CgrOptions seg128;
  seg128.segment_len_bytes = 128;
  auto a = CgrGraph::Encode(g, seg8);
  auto b = CgrGraph::Encode(g, seg128);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(a.value().total_bits(), b.value().total_bits());
}

}  // namespace
}  // namespace gcgt
