// GCGT BFS correctness: every strategy level on every graph family and both
// CGR layouts must produce exactly the serial BFS depths.
#include "core/bfs.h"

#include <gtest/gtest.h>

#include "baseline/cpu_bfs.h"
#include "cgr/cgr_graph.h"
#include "graph/generators.h"

namespace gcgt {
namespace {

struct BfsParam {
  const char* graph_name;
  GcgtLevel level;
  int segment_len_bytes;
};

Graph MakeTestGraph(const std::string& name) {
  if (name == "web") {
    WebGraphParams p;
    p.num_nodes = 3000;
    p.seed = 21;
    return GenerateWebGraph(p);
  }
  if (name == "social") {
    SocialGraphParams p;
    p.num_nodes = 2500;
    p.seed = 22;
    return GenerateSocialGraph(p);
  }
  if (name == "twitter") {
    TwitterGraphParams p;
    p.num_nodes = 2000;
    p.num_hubs = 4;
    p.seed = 23;
    return GenerateTwitterGraph(p);
  }
  if (name == "brain") {
    BrainGraphParams p;
    p.num_nodes = 600;
    p.avg_degree = 60;
    p.seed = 24;
    return GenerateBrainGraph(p);
  }
  if (name == "rmat") return GenerateRmat(2048, 20000, 25);
  if (name == "path") return MakePath(200);
  if (name == "star") return MakeStar(500);
  return GenerateErdosRenyi(1000, 8000, 26);
}

std::string BfsParamName(const ::testing::TestParamInfo<BfsParam>& info) {
  std::string s = info.param.graph_name;
  s += "_lvl" + std::to_string(static_cast<int>(info.param.level));
  s += "_seg" + (info.param.segment_len_bytes
                     ? std::to_string(info.param.segment_len_bytes)
                     : std::string("inf"));
  return s;
}

class GcgtBfsCorrectness : public ::testing::TestWithParam<BfsParam> {};

TEST_P(GcgtBfsCorrectness, MatchesSerialBfs) {
  Graph g = MakeTestGraph(GetParam().graph_name);
  CgrOptions copt;
  copt.segment_len_bytes = GetParam().segment_len_bytes;
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok()) << cgr.status().ToString();

  GcgtOptions opt;
  opt.level = GetParam().level;
  for (NodeId source : {NodeId(0), NodeId(g.num_nodes() / 2)}) {
    auto result = GcgtBfs(cgr.value(), source, opt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<uint32_t> expected = SerialBfs(g, source);
    ASSERT_EQ(result.value().depth.size(), expected.size());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(result.value().depth[v], expected[v])
          << "node " << v << " from source " << source;
    }
    EXPECT_GT(result.value().metrics.model_ms, 0.0);
    EXPECT_GT(result.value().metrics.kernels, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, GcgtBfsCorrectness,
    ::testing::Values(
        // All levels on the unsegmented layout.
        BfsParam{"web", GcgtLevel::kIntuitive, 0},
        BfsParam{"web", GcgtLevel::kTwoPhase, 0},
        BfsParam{"web", GcgtLevel::kTaskStealing, 0},
        BfsParam{"web", GcgtLevel::kWarpCentric, 0},
        BfsParam{"social", GcgtLevel::kIntuitive, 0},
        BfsParam{"social", GcgtLevel::kTaskStealing, 0},
        BfsParam{"social", GcgtLevel::kWarpCentric, 0},
        BfsParam{"twitter", GcgtLevel::kIntuitive, 0},
        BfsParam{"twitter", GcgtLevel::kTwoPhase, 0},
        BfsParam{"twitter", GcgtLevel::kWarpCentric, 0},
        BfsParam{"brain", GcgtLevel::kWarpCentric, 0},
        BfsParam{"rmat", GcgtLevel::kTaskStealing, 0},
        // Full GCGT on the segmented layout, several segment lengths.
        BfsParam{"web", GcgtLevel::kFull, 32},
        BfsParam{"social", GcgtLevel::kFull, 32},
        BfsParam{"twitter", GcgtLevel::kFull, 8},
        BfsParam{"twitter", GcgtLevel::kFull, 32},
        BfsParam{"twitter", GcgtLevel::kFull, 128},
        BfsParam{"brain", GcgtLevel::kFull, 32},
        BfsParam{"rmat", GcgtLevel::kFull, 16},
        BfsParam{"er", GcgtLevel::kFull, 32},
        // Full level on unsegmented (= Fig. 14 "inf" configuration).
        BfsParam{"twitter", GcgtLevel::kFull, 0},
        // Segmented layout under lower levels (serial segment walking).
        BfsParam{"social", GcgtLevel::kIntuitive, 32},
        BfsParam{"social", GcgtLevel::kTaskStealing, 32},
        // Degenerate shapes.
        BfsParam{"path", GcgtLevel::kFull, 32},
        BfsParam{"star", GcgtLevel::kFull, 32},
        BfsParam{"star", GcgtLevel::kIntuitive, 0}),
    BfsParamName);

TEST(GcgtBfs, UnreachableNodesStayUnvisited) {
  // Two disconnected cliques.
  EdgeList edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = 4; v < 8; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  Graph g = Graph::FromEdges(8, edges);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto result = GcgtBfs(cgr.value(), 0, GcgtOptions{});
  ASSERT_TRUE(result.ok());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NE(result.value().depth[v], BfsFilter::kUnvisited);
  }
  for (NodeId v = 4; v < 8; ++v) {
    EXPECT_EQ(result.value().depth[v], BfsFilter::kUnvisited);
  }
}

TEST(GcgtBfs, InvalidSourceRejected) {
  Graph g = MakePath(4);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  auto result = GcgtBfs(cgr.value(), 99, GcgtOptions{});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GcgtBfs, OutOfMemoryWhenDeviceTooSmall) {
  Graph g = GenerateErdosRenyi(2000, 20000, 3);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  GcgtOptions opt;
  opt.device.memory_bytes = 1024;  // absurdly small device
  auto result = GcgtBfs(cgr.value(), 0, opt);
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(GcgtBfs, OptimizationLevelsReduceModelTime) {
  // The headline of Fig. 9: each scheduling level is at least as fast as the
  // previous on a skewed graph.
  TwitterGraphParams p;
  p.num_nodes = 3000;
  p.num_hubs = 5;
  p.seed = 31;
  Graph g = GenerateTwitterGraph(p);

  CgrOptions unseg;
  unseg.segment_len_bytes = 0;
  auto cgr_unseg = CgrGraph::Encode(g, unseg);
  auto cgr_seg = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr_unseg.ok() && cgr_seg.ok());

  double prev = 1e300;
  for (GcgtLevel level : {GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase,
                          GcgtLevel::kTaskStealing, GcgtLevel::kWarpCentric,
                          GcgtLevel::kFull}) {
    GcgtOptions opt;
    opt.level = level;
    const CgrGraph& graph =
        level == GcgtLevel::kFull ? cgr_seg.value() : cgr_unseg.value();
    auto result = GcgtBfs(graph, 0, opt);
    ASSERT_TRUE(result.ok());
    double ms = result.value().metrics.model_ms;
    EXPECT_LT(ms, prev * 1.10)  // allow 10% noise between adjacent levels
        << "level " << GcgtLevelName(level);
    prev = ms;
  }
}

}  // namespace
}  // namespace gcgt
