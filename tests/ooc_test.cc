// Out-of-core tier tests: partition planning, sharded CGR encode
// (byte-identical to the serial encode across thread counts), the container
// format (round-trip, corruption rejection, atomic writes), the LRU
// partition pager's deterministic fault/spill/pin protocol, and the serving
// contract — container-backed paged sessions produce BIT-IDENTICAL BFS/CC/BC
// results to in-core runs at every budget, an artifact too big for the
// device is still served on the requested backend once paged, and
// GcgtService registers containers and surfaces pager stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/gcgt_session.h"
#include "cgr/cgr_graph.h"
#include "graph/generators.h"
#include "ooc/cgr_container.h"
#include "ooc/partition_pager.h"
#include "service/gcgt_service.h"

namespace gcgt {
namespace {

using ooc::CgrContainer;
using ooc::PartitionPager;

::testing::AssertionResult SameBytes(std::span<const uint8_t> a,
                                     std::span<const uint8_t> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  if (!std::equal(a.begin(), a.end(), b.begin())) {
    return ::testing::AssertionFailure() << "byte content differs";
  }
  return ::testing::AssertionSuccess();
}
using ooc::WriteCgrContainer;

Graph WebGraph(NodeId n = 1500, uint64_t seed = 11) {
  WebGraphParams p;
  p.num_nodes = n;
  p.seed = seed;
  return GenerateWebGraph(p);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint64_t> BitStarts(const CgrGraph& g) {
  std::vector<uint64_t> v(g.num_nodes() + 1);
  for (NodeId u = 0; u <= g.num_nodes(); ++u) v[u] = g.bit_start(u);
  return v;
}

// ---------------------------------------------------------------------------
// Partition planning

TEST(PlanPartitions, CoversAllNodesContiguouslyAndBalancesEdges) {
  Graph g = WebGraph();
  for (int num_parts : {1, 2, 3, 8, 17}) {
    auto parts = PlanPartitions(g, num_parts);
    ASSERT_EQ(parts.size(), static_cast<size_t>(num_parts));
    EXPECT_EQ(parts.front().node_begin, 0u);
    EXPECT_EQ(parts.back().node_end, g.num_nodes());
    EdgeId covered = 0;
    for (size_t i = 0; i < parts.size(); ++i) {
      EXPECT_LT(parts[i].node_begin, parts[i].node_end);  // never empty
      if (i > 0) {
        EXPECT_EQ(parts[i].node_begin, parts[i - 1].node_end);
      }
      covered += g.offsets()[parts[i].node_end] - g.offsets()[parts[i].node_begin];
    }
    EXPECT_EQ(covered, g.num_edges());
    // Deterministic.
    EXPECT_EQ(parts, PlanPartitions(g, num_parts));
  }
}

TEST(PlanPartitions, ClampsPartitionCountToNodeCount) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  auto parts = PlanPartitions(g, 64);
  EXPECT_EQ(parts.size(), 3u);  // at most one node per partition
  auto one = PlanPartitions(g, 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].node_end, g.num_nodes());
}

// ---------------------------------------------------------------------------
// Sharded encode

TEST(EncodePartitioned, ByteIdenticalToSerialAcrossThreadsAndPlans) {
  Graph web = WebGraph();
  TwitterGraphParams tp;
  tp.num_nodes = 900;
  tp.seed = 5;
  Graph twitter = GenerateTwitterGraph(tp);

  CgrOptions segmented;  // default: intervals + 32-byte residual segments
  CgrOptions unsegmented;
  unsegmented.segment_len_bytes = 0;
  CgrOptions bytes;
  bytes.codec = CodecId::kStreamVByte;

  for (const Graph* g : {&web, &twitter}) {
    for (const CgrOptions& opt : {segmented, unsegmented, bytes}) {
      auto serial = CgrGraph::Encode(*g, opt);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (int parts : {1, 2, 3, 8}) {
        for (int threads : {1, 2, 4, 8}) {
          auto sharded = CgrGraph::EncodePartitioned(*g, opt, parts, threads);
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
          EXPECT_TRUE(SameBytes(sharded.value().bits(), serial.value().bits()))
              << "parts=" << parts << " threads=" << threads;
          EXPECT_EQ(BitStarts(sharded.value()), BitStarts(serial.value()));
          EXPECT_TRUE(sharded.value().partitioned());
          // Node ranges follow the plan (byte ranges are filled by the
          // encode, so compare the planned dimension only).
          const auto plan = PlanPartitions(*g, parts);
          ASSERT_EQ(sharded.value().partitions().size(), plan.size());
          for (size_t i = 0; i < plan.size(); ++i) {
            EXPECT_EQ(sharded.value().partitions()[i].node_begin,
                      plan[i].node_begin);
            EXPECT_EQ(sharded.value().partitions()[i].node_end,
                      plan[i].node_end);
          }
        }
      }
    }
  }
}

TEST(Assemble, RejectsInconsistentInputs) {
  Graph g = WebGraph(300);
  auto encoded = CgrGraph::EncodePartitioned(g, {}, 4);
  ASSERT_TRUE(encoded.ok());
  const CgrGraph& e = encoded.value();
  std::vector<uint8_t> bits(e.bits().begin(), e.bits().end());
  std::vector<uint64_t> starts = BitStarts(e);
  auto parts = e.partitions();

  // Good inputs assemble.
  EXPECT_TRUE(CgrGraph::Assemble({}, g.num_nodes(), g.num_edges(), bits,
                                 starts, parts)
                  .ok());
  // Truncated payload.
  auto short_bits = bits;
  short_bits.pop_back();
  EXPECT_TRUE(CgrGraph::Assemble({}, g.num_nodes(), g.num_edges(), short_bits,
                                 starts, parts)
                  .status()
                  .IsInvalidArgument());
  // Non-monotone offsets.
  auto bad_starts = starts;
  std::swap(bad_starts[1], bad_starts[2]);
  EXPECT_TRUE(CgrGraph::Assemble({}, g.num_nodes(), g.num_edges(), bits,
                                 bad_starts, parts)
                  .status()
                  .IsInvalidArgument());
  // Partition table with a hole.
  auto bad_parts = parts;
  bad_parts[1].node_begin += 1;
  EXPECT_TRUE(CgrGraph::Assemble({}, g.num_nodes(), g.num_edges(), bits,
                                 starts, bad_parts)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Container format

TEST(CgrContainerTest, RoundTripMmapAndBuffered) {
  Graph g = WebGraph();
  CgrOptions opt;
  opt.scheme = VlcScheme::kZeta2;
  auto encoded = CgrGraph::EncodePartitioned(g, opt, 8);
  ASSERT_TRUE(encoded.ok());
  const std::string path = TempPath("roundtrip.gcoc");
  ASSERT_TRUE(WriteCgrContainer(encoded.value(), 0xfeedface, path).ok());

  for (auto mode : {CgrContainer::ReadMode::kMmap,
                    CgrContainer::ReadMode::kBuffered}) {
    auto opened = CgrContainer::Open(path, mode);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const CgrContainer& c = opened.value();
    EXPECT_EQ(c.fingerprint(), 0xfeedfaceu);
    EXPECT_EQ(c.num_nodes(), g.num_nodes());
    EXPECT_EQ(c.num_edges(), g.num_edges());
    EXPECT_EQ(c.options().scheme, VlcScheme::kZeta2);
    EXPECT_EQ(c.bit_start(), BitStarts(encoded.value()));
    EXPECT_EQ(c.partitions(), encoded.value().partitions());
    ASSERT_EQ(c.PayloadBytes(), encoded.value().bits().size());
    EXPECT_TRUE(std::equal(c.payload().begin(), c.payload().end(),
                           encoded.value().bits().begin()));
    auto back = c.ToCgrGraph();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(SameBytes(back.value().bits(), encoded.value().bits()));
    EXPECT_EQ(BitStarts(back.value()), BitStarts(encoded.value()));
    EXPECT_EQ(back.value().partitions(), encoded.value().partitions());
  }
  std::remove(path.c_str());
}

TEST(CgrContainerTest, DegenerateGraphsRoundTrip) {
  // Single node, no edges; and a graph with many empty adjacency rows.
  Graph single = Graph::FromEdges(1, {});
  Graph sparse = Graph::FromEdges(64, {{0, 63}, {63, 0}});
  for (const Graph* g : {&single, &sparse}) {
    auto encoded = CgrGraph::Encode(*g, {});
    ASSERT_TRUE(encoded.ok());
    const std::string path = TempPath("degenerate.gcoc");
    ASSERT_TRUE(WriteCgrContainer(encoded.value(), 7, path).ok());
    auto opened = CgrContainer::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    // An unpartitioned graph is written as one whole-range partition.
    ASSERT_EQ(opened.value().partitions().size(), 1u);
    EXPECT_EQ(opened.value().partitions()[0].node_end, g->num_nodes());
    auto back = opened.value().ToCgrGraph();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(SameBytes(back.value().bits(), encoded.value().bits()));
    std::remove(path.c_str());
  }
}

TEST(CgrContainerTest, CorruptionReturnsInvalidArgument) {
  Graph g = WebGraph(400);
  auto encoded = CgrGraph::EncodePartitioned(g, {}, 4);
  ASSERT_TRUE(encoded.ok());
  const std::string good_path = TempPath("good.gcoc");
  ASSERT_TRUE(WriteCgrContainer(encoded.value(), 1, good_path).ok());
  std::FILE* f = std::fopen(good_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> image(static_cast<size_t>(size));
  ASSERT_EQ(std::fread(image.data(), 1, image.size(), f), image.size());
  std::fclose(f);

  auto write_image = [](const std::string& path,
                        const std::vector<uint8_t>& bytes) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (!bytes.empty()) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    }
    std::fclose(out);
  };
  auto expect_rejected = [&](const std::vector<uint8_t>& bytes,
                             const char* what) {
    const std::string path = TempPath("corrupt.gcoc");
    write_image(path, bytes);
    for (auto mode : {CgrContainer::ReadMode::kMmap,
                      CgrContainer::ReadMode::kBuffered}) {
      auto r = CgrContainer::Open(path, mode);
      EXPECT_TRUE(r.status().IsInvalidArgument())
          << what << ": " << r.status().ToString();
    }
    std::remove(path.c_str());
  };

  expect_rejected({}, "empty file");
  expect_rejected({'G', 'C'}, "2-byte file");
  for (size_t cut : {size_t{10}, size_t{63}, size_t{64}, image.size() / 2,
                     image.size() - 1}) {
    expect_rejected(
        std::vector<uint8_t>(image.begin(), image.begin() + cut), "truncated");
  }
  {
    auto bad = image;
    bad[0] ^= 0xff;  // magic
    expect_rejected(bad, "bad magic");
  }
  {
    auto bad = image;
    bad[4] = 0x7f;  // version
    expect_rejected(bad, "bad version");
  }
  {
    auto bad = image;
    bad[32] ^= 0x01;  // num_nodes, caught by the header hash
    expect_rejected(bad, "hash mismatch");
  }
  {
    auto bad = image;
    bad.push_back(0);  // trailing garbage breaks the exact size tiling
    expect_rejected(bad, "trailing byte");
  }
  std::remove(good_path.c_str());
}

TEST(CgrContainerTest, WriteToMissingDirectoryFailsCleanly) {
  Graph g = Graph::FromEdges(2, {{0, 1}});
  auto encoded = CgrGraph::Encode(g, {});
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(
      WriteCgrContainer(encoded.value(), 1, "/nonexistent/dir/x.gcoc").ok());
}

// ---------------------------------------------------------------------------
// Partition pager

TEST(PartitionPagerTest, DeterministicLruFaultsAndSpills) {
  // Three 100-byte partitions of 10 nodes each, budget for exactly two.
  std::vector<CgrPartition> parts = {
      {0, 10, 0, 100}, {10, 20, 100, 200}, {20, 30, 200, 300}};
  PartitionPager pager;
  pager.Configure(parts, /*resident_budget_bytes=*/200,
                  /*cache_line_bytes=*/64);
  ASSERT_TRUE(pager.enabled());

  // Cold faults: directory line + ceil(100/64)=2 payload lines.
  auto t0 = pager.TouchNode(0);
  EXPECT_EQ(t0.faults, 1u);
  EXPECT_EQ(t0.fault_txns, 3u);
  EXPECT_EQ(t0.spills, 0u);
  EXPECT_EQ(t0.pins, 1u);
  auto t1 = pager.TouchNode(15);
  EXPECT_EQ(t1.faults, 1u);
  EXPECT_EQ(pager.resident_bytes(), 200u);

  // Second touch of a resident partition: free, and pins only once a round.
  auto t2 = pager.TouchNode(3);
  EXPECT_EQ(t2.faults, 0u);
  EXPECT_EQ(t2.pins, 0u);
  pager.EndRound();

  // Partition 2 faults; LRU victim is partition 1 (0 was re-touched last).
  auto t3 = pager.TouchNode(25);
  EXPECT_EQ(t3.faults, 1u);
  EXPECT_EQ(t3.spills, 1u);
  EXPECT_EQ(t3.spill_txns, 2u);  // ceil(100/64)
  EXPECT_EQ(pager.resident_bytes(), 200u);
  pager.EndRound();  // unpin 2 so the next round's fault can evict it
  // Partition 1 must re-fault (it was the victim), partition 0 must not.
  EXPECT_EQ(pager.TouchNode(0).faults, 0u);
  EXPECT_EQ(pager.TouchNode(10).faults, 1u);
  pager.EndRound();

  EXPECT_EQ(pager.resident_bytes_peak(), 200u);
  EXPECT_EQ(pager.faults(), 4u);
  EXPECT_EQ(pager.spills(), 2u);

  // Reset: everything cold again, counters cleared.
  pager.Reset();
  EXPECT_EQ(pager.resident_bytes(), 0u);
  EXPECT_EQ(pager.faults(), 0u);
  EXPECT_EQ(pager.TouchNode(0).faults, 1u);
}

TEST(PartitionPagerTest, PinnedPartitionsOvercommitInsteadOfThrashing) {
  std::vector<CgrPartition> parts = {
      {0, 10, 0, 100}, {10, 20, 100, 200}, {20, 30, 200, 300}};
  PartitionPager pager;
  pager.Configure(parts, /*resident_budget_bytes=*/150, /*cache_line_bytes=*/64);
  // One round touches all three partitions: everything it faulted is pinned,
  // so the resident set overcommits the 150-byte budget within the round.
  pager.TouchNode(0);
  pager.TouchNode(10);
  auto t = pager.TouchNode(20);
  EXPECT_EQ(t.faults, 1u);
  EXPECT_EQ(pager.resident_bytes(), 300u);
  EXPECT_EQ(pager.resident_bytes_peak(), 300u);
  pager.EndRound();
  // After a cold restart the same budget evicts freely again once the
  // pinning round has ended.
  pager.Reset();
  pager.TouchNode(0);
  pager.EndRound();
  pager.TouchNode(10);  // evicts 0: 100 + 100 <= 150 fails, victim unpinned
  EXPECT_EQ(pager.resident_bytes(), 100u);
}

TEST(PartitionPagerTest, ZeroBudgetDisables) {
  std::vector<CgrPartition> parts = {{0, 10, 0, 100}};
  PartitionPager pager;
  pager.Configure(parts, 0, 64);
  EXPECT_FALSE(pager.enabled());
}

// ---------------------------------------------------------------------------
// Session-level serving contract

void ExpectSameAnswers(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.kind(), want.kind());
  switch (want.kind()) {
    case QueryKind::kBfs:
      EXPECT_EQ(got.bfs().depth, want.bfs().depth);
      break;
    case QueryKind::kCc:
      EXPECT_EQ(got.cc().component, want.cc().component);
      break;
    case QueryKind::kBc:
      EXPECT_EQ(got.bc().dependency, want.bc().dependency);
      EXPECT_EQ(got.bc().sigma, want.bc().sigma);
      EXPECT_EQ(got.bc().depth, want.bc().depth);
      break;
    case QueryKind::kTriangle:
      EXPECT_EQ(got.triangle().triangles, want.triangle().triangles);
      EXPECT_EQ(got.triangle().per_vertex, want.triangle().per_vertex);
      break;
    case QueryKind::kCommonNeighbor:
      EXPECT_EQ(got.common_neighbors().common, want.common_neighbors().common);
      break;
    case QueryKind::kJaccard:
      EXPECT_EQ(got.jaccard().common, want.jaccard().common);
      EXPECT_EQ(got.jaccard().jaccard, want.jaccard().jaccard);
      break;
    case QueryKind::kSimilarityTopK:
      EXPECT_EQ(got.similarity_topk().items, want.similarity_topk().items);
      break;
    case QueryKind::kKCore:
      EXPECT_EQ(got.kcore().in_core, want.kcore().in_core);
      EXPECT_EQ(got.kcore().core_size, want.kcore().core_size);
      break;
  }
}

TEST(OocSession, PagedResultsBitIdenticalToInCoreAtEveryBudget) {
  Graph g = WebGraph();
  auto incore = GcgtSession::Prepare(g, {});
  ASSERT_TRUE(incore.ok());
  const std::vector<Query> queries = {BfsQuery{1}, CcQuery{}, BcQuery{{1, 7}}};
  std::vector<QueryResult> want;
  for (const Query& q : queries) {
    auto r = incore.value().Run(q, {.backend = Backend::kCgrSimt});
    ASSERT_TRUE(r.ok());
    want.push_back(std::move(r).value());
  }

  const uint64_t encoded_bytes = incore.value().cgr().bits().size();
  for (uint64_t divisor : {1, 2, 4, 8}) {
    PrepareOptions popt;
    popt.ooc_partitions = 8;
    popt.gcgt.ooc_resident_bytes = std::max<uint64_t>(encoded_bytes / divisor, 1);
    auto paged = GcgtSession::Prepare(g, popt);
    ASSERT_TRUE(paged.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = paged.value().Run(queries[i], {.backend = Backend::kCgrSimt});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectSameAnswers(r.value(), want[i]);
      // Every query starts cold, so even the 100% budget faults partitions
      // in, and the pager's high-water mark is reported.
      EXPECT_GT(r.value().metrics().warp.partition_faults, 0u);
      EXPECT_GT(r.value().metrics().resident_bytes_peak, 0u);
      // Shrinking the budget can only increase the modeled cost.
      EXPECT_GE(r.value().metrics().model_ms, want[i].metrics().model_ms);
    }
  }
}

TEST(OocSession, PagedRunsDeterministicAcrossThreadCounts) {
  Graph g = WebGraph(1000, 23);
  std::vector<QueryResult> baseline;
  for (int threads : {1, 4}) {
    PrepareOptions popt;
    popt.ooc_partitions = 4;
    popt.gcgt.ooc_resident_bytes = 1 + g.num_edges() / 4;  // force spills
    popt.gcgt.num_threads = threads;
    auto session = GcgtSession::Prepare(g, popt);
    ASSERT_TRUE(session.ok());
    auto r = session.value().Run(BfsQuery{2}, {.backend = Backend::kCgrSimt});
    ASSERT_TRUE(r.ok());
    if (threads == 1) {
      baseline.push_back(std::move(r).value());
    } else {
      const TraversalMetrics& a = baseline[0].metrics();
      const TraversalMetrics& b = r.value().metrics();
      EXPECT_EQ(a.warp.partition_faults, b.warp.partition_faults);
      EXPECT_EQ(a.warp.partition_spills, b.warp.partition_spills);
      EXPECT_EQ(a.warp.fault_txns, b.warp.fault_txns);
      EXPECT_EQ(a.warp.spill_txns, b.warp.spill_txns);
      EXPECT_EQ(a.resident_bytes_peak, b.resident_bytes_peak);
      EXPECT_EQ(a.model_ms, b.model_ms);
      EXPECT_EQ(baseline[0].bfs().depth, r.value().bfs().depth);
    }
  }
}

TEST(OocSession, FingerprintSeparatesPartitionPlansAndBudgets) {
  Graph g = WebGraph(600);
  auto fp = [&](int parts, uint64_t budget) {
    PrepareOptions popt;
    popt.ooc_partitions = parts;
    popt.gcgt.ooc_resident_bytes = budget;
    auto s = GcgtSession::Prepare(g, popt);
    EXPECT_TRUE(s.ok());
    return s.value().artifact_fingerprint();
  };
  const uint64_t plain = fp(0, 0);
  EXPECT_NE(plain, fp(4, 0));
  EXPECT_NE(fp(4, 0), fp(8, 0));
  EXPECT_NE(fp(4, 0), fp(4, 4096));
  EXPECT_EQ(fp(4, 4096), fp(4, 4096));
}

TEST(OocSession, OversizedArtifactServedOnceBudgeted) {
  Graph g = WebGraph();
  // Measure the modeled footprints with ample device memory first.
  PrepareOptions probe;
  probe.ooc_partitions = 8;
  auto probe_session = GcgtSession::Prepare(g, probe);
  ASSERT_TRUE(probe_session.ok());
  auto probe_run =
      probe_session.value().Run(BfsQuery{1}, {.backend = Backend::kCgrSimt});
  ASSERT_TRUE(probe_run.ok());
  const uint64_t incore_footprint = probe_run.value().metrics().device_bytes;
  const uint64_t encoded_bytes = probe_session.value().cgr().bits().size();
  const uint64_t budget = encoded_bytes / 8;
  ASSERT_GT(encoded_bytes - budget, 1u);

  // A device that fits everything EXCEPT the full encoded adjacency: the
  // in-core session OOMs, the paged session serves the requested backend.
  const uint64_t device_bytes = incore_footprint - (encoded_bytes - budget) / 2;
  PrepareOptions small;
  small.ooc_partitions = 8;
  small.gcgt.device.memory_bytes = device_bytes;
  auto incore = GcgtSession::Prepare(g, small);
  ASSERT_TRUE(incore.ok());
  EXPECT_TRUE(incore.value()
                  .Run(BfsQuery{1}, {.backend = Backend::kCgrSimt})
                  .status()
                  .IsOutOfMemory());

  small.gcgt.ooc_resident_bytes = budget;
  auto paged = GcgtSession::Prepare(g, small);
  ASSERT_TRUE(paged.ok());
  auto served = paged.value().Run(BfsQuery{1}, {.backend = Backend::kCgrSimt});
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_FALSE(served.value().degraded());
  EXPECT_GT(served.value().metrics().warp.partition_faults, 0u);
  ExpectSameAnswers(served.value(), probe_run.value());
}

// ---------------------------------------------------------------------------
// Service integration

TEST(OocService, RegisterContainerServesAndReportsPagerStats) {
  Graph g = WebGraph();
  PrepareOptions popt;
  popt.ooc_partitions = 8;
  auto master = GcgtSession::Prepare(g, popt);
  ASSERT_TRUE(master.ok());
  const std::string path = TempPath("service.gcoc");
  ASSERT_TRUE(WriteCgrContainer(master.value().cgr(),
                                master.value().artifact_fingerprint(), path)
                  .ok());

  ServiceOptions sopt;
  sopt.num_workers = 2;
  GcgtService service(sopt);
  GcgtOptions serving;
  serving.ooc_resident_bytes =
      std::max<uint64_t>(master.value().cgr().bits().size() / 4, 1);
  auto id = service.RegisterContainer(path, serving);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Registering the same container under the same options dedups.
  auto again = service.RegisterContainer(path, serving);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), id.value());
  // A different budget is a different artifact.
  GcgtOptions other = serving;
  other.ooc_resident_bytes += 1;
  auto distinct = service.RegisterContainer(path, other);
  ASSERT_TRUE(distinct.ok());
  EXPECT_NE(distinct.value(), id.value());

  // Container-backed answers match direct runs on the master artifact
  // (both address the prepared id space).
  auto oracle_bfs =
      master.value().Run(BfsQuery{3}, {.backend = Backend::kCgrSimt});
  auto oracle_cc = master.value().Run(CcQuery{}, {.backend = Backend::kCgrSimt});
  ASSERT_TRUE(oracle_bfs.ok());
  ASSERT_TRUE(oracle_cc.ok());
  auto served_bfs = service.Submit({id.value(), BfsQuery{3}}).get();
  auto served_cc = service.Submit({id.value(), CcQuery{}}).get();
  ASSERT_TRUE(served_bfs.ok()) << served_bfs.status().ToString();
  ASSERT_TRUE(served_cc.ok());
  EXPECT_FALSE(served_bfs.value().degraded());
  ExpectSameAnswers(served_bfs.value(), oracle_bfs.value());
  ExpectSameAnswers(served_cc.value(), oracle_cc.value());
  EXPECT_GT(served_bfs.value().metrics().warp.partition_faults, 0u);

  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.partition_faults, 0u);
  EXPECT_GT(stats.resident_bytes_peak, 0u);
  EXPECT_EQ(stats.completed, 2u);
  service.Shutdown();
  std::remove(path.c_str());
}

TEST(OocService, CorruptContainerRegistrationFails) {
  const std::string path = TempPath("corrupt_service.gcoc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a container", f);
  std::fclose(f);
  ServiceOptions sopt;
  GcgtService service(sopt);
  EXPECT_TRUE(service.RegisterContainer(path).status().IsInvalidArgument());
  service.Shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcgt
