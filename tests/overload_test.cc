// The overload-control contract of the serving tier.
//  - AdmissionQueue: strict classes + EDF within a class (deterministic for
//    a fixed clock/arrival/pop trace), lazy expiry sweeping (doomed entries
//    never surface as work), CoDel-style sojourn shedding from the back of
//    the lowest class, FIFO mode restores legacy semantics, close drains,
//  - TokenBucket: burst-then-sustained admission as a pure function of the
//    call trace,
//  - CancelToken::WithLinkedSource: an attempt token observes its own abort
//    flag AND the client's,
//  - the service under overload: interactive work survives a best-effort
//    flood, queue-expired deadlines and shed decisions are counted exactly
//    once, per-client fair admission bounds a flooder without touching a
//    light client, hedged successes are bit-identical to the oracle, the
//    watchdog reports a worker stuck past its deadline into the health
//    score and breaker, brownout sheds cache weight without changing
//    labels and never memoizes replay-capped results,
//  - chaos with the full QoS stack armed: every accepted future fulfilled,
//    successes bit-identical to the no-fault oracle.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/gcgt_session.h"
#include "graph/generators.h"
#include "service/gcgt_service.h"
#include "util/admission_queue.h"
#include "util/cancel_token.h"
#include "util/fault_injector.h"
#include "util/token_bucket.h"

namespace gcgt {
namespace {

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using Clock = CancelToken::Clock;

Graph TestGraph() { return GenerateErdosRenyi(800, 4800, 73); }

/// RAII guard: no test leaks an armed global injector into its neighbors.
struct InjectionScope {
  InjectionScope(uint64_t seed, double rate, uint32_t mask = kAllFaultPoints) {
    FaultInjector::Global().Enable(seed, rate, mask);
  }
  ~InjectionScope() { FaultInjector::Global().Disable(); }
};

constexpr uint32_t MaskOf(FaultPoint p) { return 1u << static_cast<int>(p); }

void ExpectSameResult(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.kind(), want.kind());
  switch (want.kind()) {
    case QueryKind::kBfs:
      EXPECT_EQ(got.bfs().depth, want.bfs().depth);
      break;
    case QueryKind::kCc:
      EXPECT_EQ(got.cc().component, want.cc().component);
      EXPECT_EQ(got.cc().rounds, want.cc().rounds);
      break;
    case QueryKind::kBc:
      EXPECT_EQ(got.bc().dependency, want.bc().dependency);
      EXPECT_EQ(got.bc().sigma, want.bc().sigma);
      EXPECT_EQ(got.bc().depth, want.bc().depth);
      break;
    case QueryKind::kTriangle:
      EXPECT_EQ(got.triangle().triangles, want.triangle().triangles);
      EXPECT_EQ(got.triangle().per_vertex, want.triangle().per_vertex);
      break;
    case QueryKind::kCommonNeighbor:
      EXPECT_EQ(got.common_neighbors().common, want.common_neighbors().common);
      break;
    case QueryKind::kJaccard:
      EXPECT_EQ(got.jaccard().common, want.jaccard().common);
      EXPECT_EQ(got.jaccard().jaccard, want.jaccard().jaccard);
      break;
    case QueryKind::kSimilarityTopK:
      EXPECT_EQ(got.similarity_topk().items, want.similarity_topk().items);
      break;
    case QueryKind::kKCore:
      EXPECT_EQ(got.kcore().in_core, want.kcore().in_core);
      EXPECT_EQ(got.kcore().core_size, want.kcore().core_size);
      break;
  }
  EXPECT_EQ(got.metrics().model_ms, want.metrics().model_ms);
  EXPECT_EQ(got.metrics().kernels, want.metrics().kernels);
  EXPECT_EQ(got.metrics().warp.mem_txns, want.metrics().warp.mem_txns);
}

/// A queue over a hand-cranked clock: EDF ordering, sweeping and shedding
/// become pure functions of the scripted trace.
struct FakeClockQueue {
  Clock::time_point now = Clock::time_point() + hours(1);
  AdmissionQueue<int> queue;

  explicit FakeClockQueue(AdmissionQueueOptions opt)
      : queue(opt, [this] { return now; }) {}
};

// ------------------------------------------------------- admission queue

TEST(AdmissionQueue, EdfOrdersByClassThenDeadlineThenArrival) {
  FakeClockQueue q({.capacity = 16});
  const Clock::time_point t0 = q.now;
  auto push = [&](int id, QueryPriority p, Clock::time_point d =
                                               Clock::time_point::max()) {
    int item = id;
    ASSERT_TRUE(q.queue.Push(item, p, d));
  };
  push(1, QueryPriority::kBatch, t0 + milliseconds(100));
  push(2, QueryPriority::kInteractive, t0 + milliseconds(500));
  push(3, QueryPriority::kInteractive);  // no deadline: after deadlined peers
  push(4, QueryPriority::kInteractive, t0 + milliseconds(200));
  push(5, QueryPriority::kBestEffort, t0 + milliseconds(1));
  push(6, QueryPriority::kInteractive, t0 + milliseconds(200));  // arrival tie

  // Class is strict (an imminent best-effort deadline never preempts
  // interactive work), EDF within the class, arrival breaks ties.
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    auto out = q.queue.Pop();
    ASSERT_TRUE(out.item.has_value());
    EXPECT_TRUE(out.expired.empty());
    order.push_back(*out.item);
  }
  EXPECT_EQ(order, (std::vector<int>{4, 6, 2, 3, 1, 5}));
  EXPECT_EQ(q.queue.Stats().popped, 6u);
}

TEST(AdmissionQueue, SameTraceSameOrderTwice) {
  auto run = [] {
    FakeClockQueue q({.capacity = 16});
    const Clock::time_point t0 = q.now;
    const QueryPriority prio[5] = {
        QueryPriority::kBestEffort, QueryPriority::kInteractive,
        QueryPriority::kBatch, QueryPriority::kInteractive,
        QueryPriority::kBatch};
    for (int i = 0; i < 5; ++i) {
      int item = i;
      q.queue.Push(item, prio[i], t0 + milliseconds(50 * ((i * 3) % 5 + 1)));
    }
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) order.push_back(*q.queue.Pop().item);
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(AdmissionQueue, ExpiredEntriesAreSweptNeverServed) {
  FakeClockQueue q({.capacity = 16});
  const Clock::time_point t0 = q.now;
  int a = 1, b = 2, c = 3, live = 4;
  ASSERT_TRUE(q.queue.Push(a, QueryPriority::kInteractive, t0 + milliseconds(10)));
  ASSERT_TRUE(q.queue.Push(b, QueryPriority::kBatch, t0 + milliseconds(5)));
  ASSERT_TRUE(q.queue.Push(c, QueryPriority::kBestEffort, t0 + milliseconds(1)));
  ASSERT_TRUE(q.queue.Push(live, QueryPriority::kBestEffort));

  q.now = t0 + milliseconds(20);  // every deadline has now passed
  auto out = q.queue.Pop();
  // One pop: the three doomed entries are swept out and the only feasible
  // entry is the served item.
  ASSERT_TRUE(out.item.has_value());
  EXPECT_EQ(*out.item, 4);
  EXPECT_EQ(out.expired.size(), 3u);
  EXPECT_EQ(q.queue.Stats().expired, 3u);
  EXPECT_EQ(q.queue.size(), 0u);
}

TEST(AdmissionQueue, SweepOnlyPopReturnsInsteadOfBlocking) {
  FakeClockQueue q({.capacity = 16});
  const Clock::time_point t0 = q.now;
  int a = 1;
  ASSERT_TRUE(q.queue.Push(a, QueryPriority::kInteractive, t0 + milliseconds(1)));
  q.now = t0 + milliseconds(2);
  auto out = q.queue.Pop();
  // Nothing live remains, but the caller gets the sweep back immediately
  // (open=true) so those futures fail now, not at the next arrival.
  EXPECT_FALSE(out.item.has_value());
  EXPECT_TRUE(out.open);
  ASSERT_EQ(out.expired.size(), 1u);
  EXPECT_EQ(out.expired[0], 1);
}

TEST(AdmissionQueue, CodelShedsFromBackOfLowestClassAfterInterval) {
  FakeClockQueue q({.capacity = 32,
                    .shed_target = milliseconds(1),
                    .shed_interval = milliseconds(5)});
  const Clock::time_point t0 = q.now;
  for (int i = 0; i < 6; ++i) {
    int item = 10 + i;
    ASSERT_TRUE(q.queue.Push(item, QueryPriority::kBatch));
  }
  int straggler = 99;  // back of the lowest class: first to shed
  ASSERT_TRUE(q.queue.Push(straggler, QueryPriority::kBestEffort));

  q.now = t0 + milliseconds(2);  // sojourn 2ms >= 1ms target
  auto first = q.queue.Pop();
  ASSERT_TRUE(first.item.has_value());
  // Above target, but not yet for shed_interval: no shedding.
  EXPECT_TRUE(first.shed.empty());

  q.now = t0 + milliseconds(8);  // above-target for 6ms >= 5ms interval
  auto second = q.queue.Pop();
  ASSERT_TRUE(second.item.has_value());
  EXPECT_EQ(*second.item, 11);  // service order is untouched by shedding
  ASSERT_EQ(second.shed.size(), 1u);
  EXPECT_EQ(second.shed[0], 99);
  EXPECT_EQ(q.queue.Stats().shed, 1u);

  // One sub-target pop resets the controller.
  int fresh = 50;
  ASSERT_TRUE(q.queue.Push(fresh, QueryPriority::kInteractive));
  auto third = q.queue.Pop();  // sojourn 0 < target
  ASSERT_TRUE(third.item.has_value());
  EXPECT_EQ(*third.item, 50);
  EXPECT_TRUE(third.shed.empty());
  q.now += milliseconds(2);
  // Above target again, but the interval must elapse anew.
  EXPECT_TRUE(q.queue.Pop().shed.empty());
}

TEST(AdmissionQueue, FifoModeIsArrivalOrderWithNoSweepingOrShedding) {
  FakeClockQueue q({.capacity = 16,
                    .edf = false,
                    .shed_target = nanoseconds(1),
                    .shed_interval = nanoseconds(1)});
  const Clock::time_point t0 = q.now;
  int a = 1, b = 2, c = 3;
  // Priorities, deadlines — all ignored; c's deadline even expires.
  ASSERT_TRUE(q.queue.Push(a, QueryPriority::kBestEffort));
  ASSERT_TRUE(q.queue.Push(b, QueryPriority::kInteractive, t0 + hours(1)));
  ASSERT_TRUE(q.queue.Push(c, QueryPriority::kBatch, t0 + milliseconds(1)));
  q.now = t0 + milliseconds(50);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    auto out = q.queue.Pop();
    ASSERT_TRUE(out.item.has_value());
    EXPECT_TRUE(out.expired.empty());
    EXPECT_TRUE(out.shed.empty());
    order.push_back(*out.item);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(AdmissionQueue, CloseDrainsThenReportsClosed) {
  FakeClockQueue q({.capacity = 4});
  int a = 1, b = 2;
  ASSERT_TRUE(q.queue.Push(a, QueryPriority::kInteractive));
  ASSERT_TRUE(q.queue.Push(b, QueryPriority::kBatch));
  q.queue.Close();
  int late = 3;
  EXPECT_FALSE(q.queue.Push(late, QueryPriority::kInteractive));
  EXPECT_EQ(late, 3);  // a failed Push never consumes the item
  EXPECT_EQ(q.queue.TryPush(late, QueryPriority::kInteractive),
            AdmissionQueue<int>::PushResult::kClosed);
  // Accepted entries drain before the queue reports closed.
  EXPECT_EQ(*q.queue.Pop().item, 1);
  EXPECT_EQ(*q.queue.Pop().item, 2);
  auto out = q.queue.Pop();
  EXPECT_FALSE(out.item.has_value());
  EXPECT_FALSE(out.open);
}

TEST(AdmissionQueue, TryPushShedsWhenFull) {
  FakeClockQueue q({.capacity = 2});
  int a = 1, b = 2, c = 3;
  EXPECT_EQ(q.queue.TryPush(a, QueryPriority::kInteractive),
            AdmissionQueue<int>::PushResult::kOk);
  EXPECT_EQ(q.queue.TryPush(b, QueryPriority::kInteractive),
            AdmissionQueue<int>::PushResult::kOk);
  EXPECT_EQ(q.queue.TryPush(c, QueryPriority::kInteractive),
            AdmissionQueue<int>::PushResult::kFull);
  EXPECT_EQ(c, 3);  // kFull leaves the item untouched
}

// ---------------------------------------------------------- token bucket

TEST(TokenBucket, BurstThenSustainedRate) {
  const Clock::time_point t0 = Clock::time_point() + hours(1);
  TokenBucket bucket(/*tokens_per_sec=*/2.0, /*burst=*/3.0, t0);
  // The full burst is available immediately...
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0));
  // ...then admission tracks the refill rate: 2 tokens/s -> one every 500ms.
  EXPECT_FALSE(bucket.TryAcquire(t0 + milliseconds(499)));
  EXPECT_TRUE(bucket.TryAcquire(t0 + milliseconds(500)));
  EXPECT_FALSE(bucket.TryAcquire(t0 + milliseconds(500)));
  // Refill caps at the burst: a long idle stretch grants 3, not 2 + idle*2.
  EXPECT_EQ(bucket.tokens(t0 + hours(2)), 3.0);
}

TEST(TokenBucket, ExactRateSubmitterIsNeverShed) {
  const Clock::time_point t0 = Clock::time_point() + hours(1);
  TokenBucket bucket(/*tokens_per_sec=*/3.0, /*burst=*/1.0, t0);
  // 1/3s steps truncate to nanoseconds and accumulate floating-point refill
  // error; the slack in TryAcquire absorbs both, so a client at exactly its
  // sustained rate always admits.
  Clock::time_point now = t0;
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(now)) << "step " << i;
    now += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / 3.0));
  }
}

// ---------------------------------------------------------- linked tokens

TEST(CancelToken, WithLinkedSourceObservesBothFlags) {
  CancelSource client;
  CancelSource attempt;
  CancelToken base = client.token();
  CancelToken linked = base.WithLinkedSource(attempt);
  EXPECT_TRUE(linked.CanExpire());
  EXPECT_TRUE(linked.Check().ok());

  attempt.Cancel();  // the sibling attempt won the hedge race
  EXPECT_TRUE(linked.Check().IsCancelled());
  // The link is one-way: the client token is untouched...
  EXPECT_TRUE(base.Check().ok());

  CancelToken linked2 = base.WithLinkedSource(CancelSource{});
  client.Cancel();  // ...and the client flag still cancels every attempt
  EXPECT_TRUE(linked2.Check().IsCancelled());
}

// ------------------------------------------------- service: EDF + shedding

TEST(ServiceOverload, InteractiveClassSurvivesBestEffortFlood) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;  // serial drain: the queue actually builds up
  opt.cache_bytes = 0;  // every query runs: cache hits would hide ordering
  // Aggressive controller: any standing queue sheds one entry per pop.
  opt.qos.shed_target = nanoseconds(1);
  opt.qos.shed_interval = nanoseconds(1);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  // A best-effort flood arrives first, then a handful of interactive
  // queries land behind it.
  std::vector<std::future<Result<QueryResult>>> flood;
  for (int i = 0; i < 30; ++i) {
    ServiceQuery q{id.value(), BfsQuery{static_cast<NodeId>(i % 17)}};
    q.priority = QueryPriority::kBestEffort;
    flood.push_back(service.Submit(std::move(q)));
  }
  std::vector<std::future<Result<QueryResult>>> interactive;
  for (int i = 0; i < 5; ++i) {
    ServiceQuery q{id.value(), BfsQuery{static_cast<NodeId>(i)}};
    q.priority = QueryPriority::kInteractive;
    interactive.push_back(service.Submit(std::move(q)));
  }

  // Every interactive query succeeds: the class is served first and the
  // controller sheds from the lowest non-empty class only.
  for (auto& f : interactive) {
    auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  // The flood absorbed the shedding; shed futures fail Unavailable.
  uint64_t flood_ok = 0, flood_shed = 0;
  for (auto& f : flood) {
    auto r = f.get();
    if (r.ok()) {
      ++flood_ok;
    } else {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
      ++flood_shed;
    }
  }
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.shed_overload, 0u);
  EXPECT_EQ(stats.shed_overload, flood_shed);
  EXPECT_EQ(stats.completed, 35u);
  EXPECT_EQ(flood_ok + flood_shed, 30u);
}

TEST(ServiceOverload, QueueExpiredDeadlineIsCountedExactlyOnce) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  ServiceQuery q{id.value(), BfsQuery{0}};
  q.cancel = CancelToken::WithDeadline(Clock::now() - milliseconds(1));
  auto r = service.Submit(std::move(q)).get();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();

  const ServiceStats stats = service.Stats();
  // One query, one verdict, one appearance in each relevant counter: the
  // sweep (expired_in_queue), the verdict code (deadline_exceeded) and the
  // completion ledger.
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.worker_sessions, 0u);  // a doomed entry never runs
}

TEST(ServiceOverload, InjectedShedDecisionIsUnavailableCountedOnce) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.max_attempts = 3;  // sheds must not burn retry attempts
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  InjectionScope chaos(7, /*rate=*/1.0, MaskOf(FaultPoint::kShedDecision));
  for (int i = 0; i < 4; ++i) {
    auto r = service.Submit({id.value(), BfsQuery{0}}).get();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed_overload, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.retries, 0u);
}

// ------------------------------------------------- service: fair admission

TEST(ServiceOverload, TokenBucketBoundsAFlooderWithoutTouchingOthers) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 2;
  // Refill is negligible over the test's lifetime: admission per client is
  // exactly the burst.
  opt.qos.fair_tokens_per_sec = 0.001;
  opt.qos.fair_burst = 4.0;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  uint64_t flooder_ok = 0, flooder_shed = 0;
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 40; ++i) {
    ServiceQuery q{id.value(), BfsQuery{static_cast<NodeId>(i % 11)}};
    q.client_id = 1;  // the flooder
    futures.push_back(service.Submit(std::move(q)));
  }
  for (auto& f : futures) {
    auto r = f.get();
    if (r.ok()) {
      ++flooder_ok;
    } else {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
      ++flooder_shed;
    }
  }
  // The flooder admits exactly its burst; the other 36 shed.
  EXPECT_EQ(flooder_ok, 4u);
  EXPECT_EQ(flooder_shed, 36u);

  // A light client's bucket is untouched by the flood.
  for (int i = 0; i < 4; ++i) {
    ServiceQuery q{id.value(), BfsQuery{static_cast<NodeId>(i)}};
    q.client_id = 2;
    auto r = service.Submit(std::move(q)).get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  // TrySubmit sheds the exhausted client synchronously (and counts it as a
  // rejection, like any admission-control refusal).
  ServiceQuery q{id.value(), BfsQuery{0}};
  q.client_id = 1;
  auto try_r = service.TrySubmit(std::move(q));
  ASSERT_FALSE(try_r.ok());
  EXPECT_TRUE(try_r.status().IsUnavailable());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed_rate_limited, 37u);
  EXPECT_EQ(stats.rejected, 1u);  // only the TrySubmit path rejects
  // Every Submit future fulfilled — 40 flooder + 4 light client; the
  // TrySubmit rejection never entered the ledger.
  EXPECT_EQ(stats.completed, 44u);
}

// ------------------------------------------------------- service: hedging

TEST(ServiceOverload, HedgedSuccessIsBitIdenticalToOracle) {
  Graph g = TestGraph();
  // The oracle: a fresh serial session, no cache, no faults.
  auto oracle_session = GcgtSession::Prepare(g);
  ASSERT_TRUE(oracle_session.ok());
  BcQuery slow;  // enough sources that a run comfortably outlives the delay
  for (NodeId s = 0; s < 96; ++s) slow.sources.push_back(s * 7 % 800);
  auto want = oracle_session.value().Run(slow);
  ASSERT_TRUE(want.ok());

  ServiceOptions opt;
  opt.num_workers = 2;  // the hedge needs a second worker to race on
  opt.cache_bytes = 0;  // a cache hit would serve the hedge without a run
  opt.qos.enable_hedging = true;
  opt.qos.hedge_delay = microseconds(200);  // fixed, far below the runtime
  opt.qos.watchdog_interval = microseconds(100);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  for (int rep = 0; rep < 8; ++rep) {
    auto r = service.Submit({id.value(), slow}).get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // First completion won; whichever attempt it was, the result is the
    // oracle's bit for bit.
    ExpectSameResult(r.value(), want.value());
  }
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.hedged, 0u);
  EXPECT_LE(stats.hedge_wins, stats.hedged);
  // Losing attempts are aborted via their linked flag, not the client's:
  // no query is ever REPORTED cancelled.
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.completed, 8u);
}

// ------------------------------------------------------ service: watchdog

TEST(ServiceOverload, WatchdogReportsAStuckWorkerIntoHealthAndBreaker) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes = 0;
  // The stuck scenario: the only attempt fails (injected), and the retry
  // backoff parks the worker for 60ms — far past the query's 10ms deadline.
  // A healthy engine would have polled its token; a parked worker cannot.
  opt.max_attempts = 2;
  opt.retry_backoff_base = milliseconds(60);
  opt.breaker.failure_threshold = 1;
  opt.qos.watchdog_interval = milliseconds(1);
  opt.qos.stuck_grace = milliseconds(2);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  InjectionScope chaos(3, /*rate=*/1.0, MaskOf(FaultPoint::kWorkerServe));
  ServiceQuery q{id.value(), BfsQuery{0}};
  q.cancel = CancelToken::WithDeadline(Clock::now() + milliseconds(10));
  auto r = service.Submit(std::move(q)).get();
  ASSERT_FALSE(r.ok());
  // The final attempt's own verdict stands (Internal: the injected
  // exception) — the watchdog observes, it never preempts.
  EXPECT_TRUE(r.status().IsInternal()) << r.status().ToString();

  const ServiceStats stats = service.Stats();
  EXPECT_GE(stats.watchdog_stuck, 1u);
  // One stuck report per query, no matter how many ticks saw it parked.
  EXPECT_LE(stats.watchdog_stuck, 1u);
  // Stuck detections are health events and breaker failures.
  EXPECT_LT(service.HealthScore(id.value()), 1.0);
  EXPECT_EQ(service.BreakerState(id.value()), CircuitBreakerState::kOpen);
  // An unknown artifact stays perfectly healthy.
  EXPECT_EQ(service.HealthScore(~id.value()), 1.0);
}

// ------------------------------------------------------ service: brownout

TEST(ServiceOverload, BrownoutShedsBudgetsWithoutChangingLabels) {
  Graph g = TestGraph();
  auto oracle_session = GcgtSession::Prepare(g);
  ASSERT_TRUE(oracle_session.ok());

  ServiceOptions opt;
  opt.num_workers = 1;
  // Any cached byte trips the watermark; the hold is effectively forever,
  // so the brownout persists for the rest of the test.
  opt.qos.brownout_watermark_bytes = 1;
  opt.qos.brownout_hold = hours(1);
  opt.qos.brownout_shrink = 0.5;
  opt.qos.watchdog_interval = microseconds(200);
  GcgtService service(opt);
  PrepareOptions prep;
  prep.gcgt.replay_cache_bytes = 1 << 16;  // replay enabled: the cap bites
  auto id = service.RegisterGraph(g, prep);
  ASSERT_TRUE(id.ok());

  // Populate the cache; the next watchdog tick sees resident > watermark.
  auto first = service.Submit({id.value(), BfsQuery{0}}).get();
  ASSERT_TRUE(first.ok());
  const Clock::time_point give_up = Clock::now() + std::chrono::seconds(5);
  while (!service.Stats().brownout_active && Clock::now() < give_up) {
    std::this_thread::sleep_for(microseconds(200));
  }
  ASSERT_TRUE(service.Stats().brownout_active) << "brownout never engaged";
  const uint64_t insertions_at_entry = service.Stats().cache.insertions;

  // A browned-out run is replay-capped: labels are still the oracle's...
  auto capped = service.Submit({id.value(), BfsQuery{3}}).get();
  ASSERT_TRUE(capped.ok());
  auto want = oracle_session.value().Run(BfsQuery{3});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(capped.value().bfs().depth, want.value().bfs().depth);

  // ...but its modeled metrics belong to a shrunken replay budget, so it
  // must never be memoized: a resubmission runs fresh instead of hitting.
  const ServiceStats mid = service.Stats();
  EXPECT_EQ(mid.cache.insertions, insertions_at_entry);
  auto again = service.Submit({id.value(), BfsQuery{3}}).get();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.Stats().cache.hits, 0u);

  EXPECT_GE(service.Stats().brownout_events, 1u);
}

// --------------------------------------------------------- service: chaos

TEST(ServiceOverload, ChaosWithFullQosStackFulfillsEveryFuture) {
  // The robustness chaos test covers the legacy path; this one arms every
  // fault point — including hedge_dispatch, shed_decision and watchdog_tick
  // — with the whole QoS stack live: EDF, aggressive CoDel shedding,
  // hedging and the watchdog. Overridable like the robustness chaos run:
  // GCGT_CHAOS_SEED / GCGT_CHAOS_RATE.
  uint64_t seed = 42;
  double rate = 0.05;
  if (const char* s = std::getenv("GCGT_CHAOS_SEED")) seed = std::stoull(s);
  if (const char* r = std::getenv("GCGT_CHAOS_RATE")) rate = std::stod(r);

  Graph g = TestGraph();
  std::vector<ServiceQuery> workload;
  for (int rep = 0; rep < 6; ++rep) {
    for (NodeId s : {0, 3, 17, 42, 99}) {
      workload.push_back({0, BfsQuery{s}});
    }
    workload.push_back({0, CcQuery{}});
    workload.push_back({0, BcQuery{{5, 23}}});
  }
  // The oracle runs BEFORE chaos is armed (its session would hit the same
  // global injection points).
  auto oracle_session = GcgtSession::Prepare(g);
  ASSERT_TRUE(oracle_session.ok());
  std::vector<Result<QueryResult>> oracle;
  for (const ServiceQuery& q : workload) {
    oracle.push_back(oracle_session.value().Run(q.query));
  }

  ServiceOptions opt;
  opt.num_workers = 4;
  opt.max_attempts = 3;
  opt.retry_backoff_base = milliseconds(1);
  opt.breaker.failure_threshold = 0;  // quarantine has its own tests
  opt.qos.shed_target = microseconds(500);
  opt.qos.shed_interval = microseconds(500);
  opt.qos.enable_hedging = true;
  opt.qos.hedge_delay = milliseconds(2);
  opt.qos.watchdog_interval = microseconds(500);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());
  const QueryPriority cycle[3] = {QueryPriority::kInteractive,
                                  QueryPriority::kBatch,
                                  QueryPriority::kBestEffort};
  for (size_t i = 0; i < workload.size(); ++i) {
    workload[i].graph = id.value();
    workload[i].priority = cycle[i % 3];
    workload[i].client_id = i % 4;
  }

  uint64_t succeeded = 0, failed = 0;
  {
    InjectionScope chaos(seed, rate);
    auto futures = service.SubmitBatch(workload);
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<QueryResult> got = futures[i].get();  // fulfilled, always
      ASSERT_TRUE(oracle[i].ok());
      if (got.ok()) {
        ++succeeded;
        ExpectSameResult(got.value(), oracle[i].value());
      } else {
        ++failed;
        // Chaos + overload control manufacture only these verdicts (no
        // deadlines in the workload, so never DeadlineExceeded).
        EXPECT_TRUE(got.status().IsInternal() ||
                    got.status().IsUnavailable())
            << got.status().ToString();
      }
    }
    service.Shutdown();
  }
  const ServiceStats stats = service.Stats();
  // The exactly-once ledger balances even with hedges in flight: every
  // accepted future fulfilled once, every verdict in exactly one bucket.
  EXPECT_EQ(stats.completed, workload.size());
  EXPECT_EQ(succeeded + failed, workload.size());
  EXPECT_GE(stats.hedge_wins + succeeded, succeeded);  // wins ⊆ successes
  EXPECT_GT(succeeded, 0u) << "rate " << rate << " drowned every query";
  EXPECT_GT(FaultInjector::Global().Stats().total_injected(), 0u);
}

TEST(ServiceOverload, ShutdownWithQosStackFulfillsEverything) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 2;
  opt.qos.enable_hedging = true;
  opt.qos.hedge_delay = microseconds(100);
  opt.qos.watchdog_interval = microseconds(100);
  opt.qos.shed_target = microseconds(100);
  opt.qos.shed_interval = microseconds(100);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  std::vector<std::future<Result<QueryResult>>> futures;
  std::mutex futures_mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        ServiceQuery q{id.value(), BfsQuery{static_cast<NodeId>(i)}};
        q.priority = static_cast<QueryPriority>(i % kNumQueryPriorities);
        q.client_id = static_cast<uint64_t>(t);
        auto f = service.Submit(std::move(q));
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] { service.Shutdown(); });
  }
  for (auto& th : threads) th.join();
  service.Shutdown();  // idempotent

  // Accepted before or shed during the close — every future is fulfilled.
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
    }
  }
}

}  // namespace
}  // namespace gcgt
