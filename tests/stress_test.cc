// Randomized differential stress tests: many random graphs x encoder
// configurations x strategies, each checked against the serial oracles, plus
// robustness against corrupted compressed data (decoders must fail soft, not
// crash or hang).
#include <gtest/gtest.h>

#include <span>

#include "baseline/cpu_bfs.h"
#include "baseline/cpu_reference.h"
#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "graph/generators.h"
#include "util/random.h"

namespace gcgt {
namespace {

class RandomizedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedDifferential, BfsAgreesOnRandomConfigs) {
  const int seed = GetParam();
  Rng rng(seed * 7919 + 13);

  // Random graph family and size.
  Graph g;
  switch (rng.Uniform(4)) {
    case 0:
      g = GenerateErdosRenyi(200 + rng.Uniform(2000), 500 + rng.Uniform(15000),
                             seed);
      break;
    case 1:
      g = GenerateRmat(1 << (7 + rng.Uniform(4)), 1000 + rng.Uniform(20000),
                       seed);
      break;
    case 2: {
      WebGraphParams p;
      p.num_nodes = 300 + static_cast<NodeId>(rng.Uniform(2500));
      p.seed = seed;
      g = GenerateWebGraph(p);
      break;
    }
    default: {
      TwitterGraphParams p;
      p.num_nodes = 300 + static_cast<NodeId>(rng.Uniform(2000));
      p.num_hubs = 1 + static_cast<int>(rng.Uniform(6));
      p.seed = seed;
      g = GenerateTwitterGraph(p);
      break;
    }
  }

  // Random encoder configuration.
  CgrOptions copt;
  copt.scheme = static_cast<VlcScheme>(rng.Uniform(5));
  copt.min_interval_len =
      rng.Bernoulli(0.2) ? CgrOptions::kNoIntervals
                         : 2 + static_cast<int>(rng.Uniform(8));
  copt.segment_len_bytes =
      rng.Bernoulli(0.3) ? 0 : 8 << rng.Uniform(5);  // 8..128 or unsegmented
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok()) << cgr.status().ToString();

  // Whole-graph decode must reproduce every adjacency list.
  for (NodeId u = 0; u < g.num_nodes(); u += 1 + g.num_nodes() / 64) {
    auto expected = g.Neighbors(u);
    auto got = DecodeAdjacency(cgr.value(), u);
    ASSERT_EQ(got.size(), expected.size()) << "node " << u;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
  }

  // Random strategy level + lane count; BFS must equal the oracle.
  GcgtOptions opt;
  opt.level = static_cast<GcgtLevel>(rng.Uniform(5));
  opt.lanes = 8 << rng.Uniform(3);  // 8, 16 or 32 lanes
  NodeId source = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
  auto res = GcgtBfs(cgr.value(), source, opt);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().depth, SerialBfs(g, source))
      << "seed=" << seed << " scheme=" << VlcSchemeName(copt.scheme)
      << " itv=" << copt.min_interval_len << " seg=" << copt.segment_len_bytes
      << " level=" << static_cast<int>(opt.level) << " lanes=" << opt.lanes;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDifferential, ::testing::Range(0, 24));

TEST(CorruptionRobustness, FlippedBitsNeverCrashTheDecoder) {
  Graph g = GenerateErdosRenyi(300, 3000, 99);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  Rng rng(123);
  // Decode every node from a stream with random bit flips. Results are
  // garbage but the decoder must terminate without UB (counts are bounded
  // by the reader's overflow guard and the VLC prefix caps).
  for (int trial = 0; trial < 20; ++trial) {
    CgrGraph copy = cgr.value();
    const std::span<const uint8_t> bits = copy.bits();
    // `copy` owns its buffer (Encode graph), so mutating through the view is
    // defined; the span itself is just a window.
    uint8_t* raw = const_cast<uint8_t*>(bits.data());
    for (int f = 0; f < 16; ++f) {
      raw[rng.Uniform(bits.size())] ^= uint8_t(1) << rng.Uniform(8);
    }
    for (NodeId u = 0; u < g.num_nodes(); u += 17) {
      CgrNodeDecoder dec(copy, u);
      uint32_t itv = dec.ReadIntervalCount();
      // Bound interval reads: garbage counts can be arbitrary.
      for (uint32_t i = 0; i < std::min(itv, 1000u); ++i) {
        dec.ReadNextInterval();
        if (dec.overflowed()) break;
      }
    }
  }
  SUCCEED();
}

TEST(CorruptionRobustness, TruncatedStreamDecodesFinitely) {
  Graph g = GenerateErdosRenyi(100, 1500, 7);
  CgrOptions opt;
  opt.segment_len_bytes = 0;
  auto cgr = CgrGraph::Encode(g, opt);
  ASSERT_TRUE(cgr.ok());
  // A reader positioned at the very end must overflow, not spin.
  BitReader r(cgr.value().bits().data(), 8, 7);
  VlcDecode(VlcScheme::kZeta3, &r);
  EXPECT_TRUE(r.overflowed());
}

TEST(StressCc, ManySmallGraphsAgreeWithUnionFind) {
  for (int seed = 0; seed < 12; ++seed) {
    Graph g = GenerateErdosRenyi(150 + seed * 37, 200 + seed * 90, seed);
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    ASSERT_TRUE(cgr.ok());
    auto result = GcgtCc(cgr.value(), GcgtOptions{});
    ASSERT_TRUE(result.ok());
    auto expected = SerialCc(g);
    // min-root hooking yields the same representatives as min-root union-find.
    EXPECT_EQ(result.value().component, expected) << "seed " << seed;
  }
}

TEST(StressLigra, ThreadCountsAgree) {
  Graph g = GenerateRmat(1024, 12000, 404);
  Graph rev = g.Reversed();
  auto expected = SerialBfs(g, 9);
  for (size_t threads : {1u, 2u, 3u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(LigraBfs(g, rev, 9, pool), expected) << threads << " threads";
  }
}

}  // namespace
}  // namespace gcgt
