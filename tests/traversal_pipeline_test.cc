// Unit tests for the expand–filter–contract pipeline layer and the
// chunk-scoped claim protocol:
//  - TraversalPipeline round/contraction semantics (CC sort-unique, BC
//    level capture, device budget accounting, post-round kernels);
//  - parallel-vs-serial bit-identity of the claim-buffer filter path,
//    including the deferred fallback used by filters that do not override
//    the claim hooks;
//  - parallel-deterministic LLP label propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cgr/cgr_graph.h"
#include "core/bc_filters.h"
#include "core/bfs.h"
#include "core/cc.h"
#include "core/cc_filter.h"
#include "core/frontier_filter.h"
#include "core/traversal_pipeline.h"
#include "graph/generators.h"
#include "reorder/reorder.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace gcgt {
namespace {

Graph TestGraph(NodeId n = 1200, uint64_t seed = 99) {
  WebGraphParams params;
  params.num_nodes = n;
  params.avg_degree = 8;
  params.seed = seed;
  return GenerateWebGraph(params);
}

CgrGraph Encode(const Graph& g, uint32_t segment_len_bytes = 32) {
  CgrOptions options;
  options.segment_len_bytes = segment_len_bytes;
  auto cgr = CgrGraph::Encode(g, options);
  EXPECT_TRUE(cgr.ok()) << cgr.status().ToString();
  return std::move(cgr.value());
}

GcgtOptions SmallWarpOptions(int num_threads) {
  GcgtOptions o;
  o.lanes = 8;  // small warps -> many chunks
  o.num_threads = num_threads;
  return o;
}

// ---------------------------------------------------------------------------
// TraversalPipeline semantics.
// ---------------------------------------------------------------------------

TEST(TraversalPipeline, RunsBfsToFixpointAndMatchesDriver) {
  Graph g = TestGraph();
  CgrGraph cgr = Encode(g);
  GcgtOptions opt;

  TraversalPipeline pipeline(cgr, opt);
  ASSERT_TRUE(pipeline.ReserveDevice(3 * 4ull * g.num_nodes(), "test").ok());
  BfsFilter filter(g.num_nodes());
  filter.SetSource(0);
  auto rounds_r = pipeline.Run({0}, filter, ContractionPolicy::kNone);
  ASSERT_TRUE(rounds_r.ok());
  int rounds = rounds_r.value();

  auto driver = GcgtBfs(cgr, 0, opt);
  ASSERT_TRUE(driver.ok());
  EXPECT_EQ(filter.depth(), driver.value().depth);
  EXPECT_EQ(pipeline.Metrics().warp, driver.value().metrics.warp);
  EXPECT_EQ(pipeline.Metrics().model_ms, driver.value().metrics.model_ms);
  EXPECT_EQ(pipeline.Metrics().kernels, rounds);  // one kernel per round
  // Rounds = number of BFS levels actually expanded.
  uint32_t max_depth = 0;
  for (uint32_t d : driver.value().depth) {
    if (d != BfsFilter::kUnvisited) max_depth = std::max(max_depth, d);
  }
  EXPECT_EQ(rounds, static_cast<int>(max_depth) + 1);
}

TEST(TraversalPipeline, ReserveDeviceEnforcesBudget) {
  Graph g = TestGraph(300);
  CgrGraph cgr = Encode(g);
  GcgtOptions opt;
  opt.device.memory_bytes = 1;  // nothing fits
  TraversalPipeline pipeline(cgr, opt);
  Status s = pipeline.ReserveDevice(123, "unit");
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_NE(s.ToString().find("unit"), std::string::npos);
}

/// Filter that accepts every edge and re-appends u (like CC's re-scan set),
/// counting how often each frontier node was expanded per round. A node
/// duplicated in a round's frontier would double its expansion count.
class RecordingRescanFilter : public FrontierFilter {
 public:
  RecordingRescanFilter(NodeId n, int max_rounds)
      : n_(n), max_rounds_(max_rounds) {}

  bool Filter(NodeId u, NodeId /*v*/) override {
    if (rounds_.empty() || !in_round_) {
      rounds_.emplace_back(n_, 0);
      in_round_ = true;
    }
    ++rounds_.back()[u];
    return static_cast<int>(rounds_.size()) < max_rounds_;
  }
  NodeId AppendTarget(NodeId u, NodeId /*v*/) override { return u; }

  void EndRound() { in_round_ = false; }

  /// rounds()[r][u] = edges expanded from u in round r.
  const std::vector<std::vector<uint32_t>>& rounds() const { return rounds_; }

 private:
  NodeId n_;
  int max_rounds_;
  bool in_round_ = false;
  std::vector<std::vector<uint32_t>> rounds_;
};

TEST(TraversalPipeline, SortUniqueContractionDeduplicatesRescanSet) {
  Graph g = TestGraph(400);
  CgrGraph cgr = Encode(g);
  GcgtOptions opt;
  TraversalPipeline pipeline(cgr, opt);

  // Start from every node; the filter re-appends u once per expanded edge,
  // so without contraction round 2 would see each node degree-many times.
  std::vector<NodeId> all(g.num_nodes());
  std::iota(all.begin(), all.end(), 0);
  RecordingRescanFilter filter(g.num_nodes(), /*max_rounds=*/2);
  auto rounds_r =
      pipeline.Run(all, filter, ContractionPolicy::kSortUnique,
                   /*trace=*/nullptr, [&] {
                     filter.EndRound();
                     return std::vector<simt::WarpStats>{};
                   });
  ASSERT_TRUE(rounds_r.ok());
  int rounds = rounds_r.value();
  ASSERT_EQ(rounds, 2);
  ASSERT_EQ(filter.rounds().size(), 2u);
  // Round 1 accepted u once per expanded edge, so without sort-unique
  // contraction round 2's frontier would hold u out_degree(u) times and
  // its expansion counts would be squared. With it, round 2 expands every
  // node with edges exactly out_degree-many times again.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(filter.rounds()[0][u], g.out_degree(u)) << "node " << u;
    EXPECT_EQ(filter.rounds()[1][u],
              g.out_degree(u) > 0 ? g.out_degree(u) : 0u)
        << "node " << u;
  }
}

TEST(TraversalPipeline, CaptureLevelsRecordsForwardFrontiers) {
  Graph g = TestGraph(600);
  CgrGraph cgr = Encode(g);
  GcgtOptions opt;
  TraversalPipeline pipeline(cgr, opt);
  BfsFilter filter(g.num_nodes());
  filter.SetSource(3);
  auto rounds_r = pipeline.Run({3}, filter, ContractionPolicy::kCaptureLevels);
  ASSERT_TRUE(rounds_r.ok());
  int rounds = rounds_r.value();

  const auto& levels = pipeline.levels();
  ASSERT_EQ(static_cast<int>(levels.size()), rounds);
  EXPECT_EQ(levels[0], std::vector<NodeId>{3});
  // Level k holds exactly the nodes at BFS depth k.
  for (size_t k = 0; k < levels.size(); ++k) {
    for (NodeId v : levels[k]) {
      EXPECT_EQ(filter.depth()[v], k) << "node " << v;
    }
  }
  size_t total = 0;
  for (const auto& level : levels) total += level.size();
  size_t reached = 0;
  for (uint32_t d : filter.depth()) reached += d != BfsFilter::kUnvisited;
  EXPECT_EQ(total, reached);
}

TEST(TraversalPipeline, CcCommitAndPointerJumpSemantics) {
  // Two components: a 5-clique and a path. After GcgtCc every parent chain
  // must be fully flattened (pointer jumping ran after the last commit).
  EdgeList edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = 6; u < 11; ++u) edges.emplace_back(u, u + 1);
  Graph g = Graph::FromEdges(12, edges, /*symmetrize=*/true);
  CgrGraph cgr = Encode(g, /*segment_len_bytes=*/0);
  auto result = GcgtCc(cgr, GcgtOptions{});
  ASSERT_TRUE(result.ok());
  const auto& comp = result.value().component;
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(comp[v], 0u);
  EXPECT_EQ(comp[5], 5u);  // isolated
  for (NodeId v = 6; v < 12; ++v) EXPECT_EQ(comp[v], 6u);
  EXPECT_GE(result.value().rounds, 2);  // fixpoint needs a confirming round
}

// ---------------------------------------------------------------------------
// Claim protocol: deferred fallback filters stay bit-identical under the
// parallel engine even though they only implement the serial contract.
// ---------------------------------------------------------------------------

/// Accepts edges to even nodes not yet taken this query; issues one modeled
/// atomic per acceptance. Deliberately does NOT override the claim hooks.
class DeferredEvenFilter : public FrontierFilter {
 public:
  explicit DeferredEvenFilter(NodeId n) : taken_(n, 0) {}

  bool Filter(NodeId /*u*/, NodeId v) override {
    if (v % 2 != 0 || taken_[v]) return false;
    taken_[v] = 1;
    ++atomics_;
    return true;
  }
  int TakeAtomics() override {
    int a = atomics_;
    atomics_ = 0;
    return a;
  }
  const std::vector<uint8_t>& taken() const { return taken_; }

 private:
  std::vector<uint8_t> taken_;
  int atomics_ = 0;
};

TEST(ClaimProtocol, DeferredFallbackMatchesSerialEngine) {
  Graph g = TestGraph(900, 7);
  for (uint32_t seg : {0u, 32u}) {
    CgrGraph cgr = Encode(g, seg);
    CgrTraversalEngine serial(cgr, SmallWarpOptions(1));
    CgrTraversalEngine parallel(cgr, SmallWarpOptions(4));

    std::vector<NodeId> frontier(64);
    std::iota(frontier.begin(), frontier.end(), 0);
    DeferredEvenFilter f_serial(g.num_nodes()), f_parallel(g.num_nodes());
    std::vector<NodeId> out_s, out_p;
    std::vector<simt::WarpStats> warps_s, warps_p;
    serial.ProcessFrontier(frontier, f_serial, &out_s, &warps_s);
    parallel.ProcessFrontier(frontier, f_parallel, &out_p, &warps_p);

    EXPECT_EQ(out_s, out_p);
    EXPECT_EQ(f_serial.taken(), f_parallel.taken());
    ASSERT_EQ(warps_s.size(), warps_p.size());
    for (size_t w = 0; w < warps_s.size(); ++w) {
      EXPECT_EQ(warps_s[w], warps_p[w]) << "warp " << w << " seg " << seg;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel-deterministic LLP.
// ---------------------------------------------------------------------------

TEST(ParallelLlp, PropagateLabelsMatchesSerialReference) {
  Graph g = GenerateSocialGraph({.num_nodes = 3000, .seed = 17});
  Graph reverse = g.Reversed();
  for (double gamma : {1.0, 0.25, 0.0}) {
    Rng rng_serial(123), rng_par(123);
    auto serial = internal::PropagateLabels(g, reverse, gamma, 4, rng_serial,
                                            /*pool=*/nullptr);
    ThreadPool& pool = SharedThreadPool(4);
    auto parallel =
        internal::PropagateLabels(g, reverse, gamma, 4, rng_par, &pool);
    EXPECT_EQ(serial, parallel) << "gamma " << gamma;
  }
}

TEST(ParallelLlp, PoolSizeDoesNotChangeLabels) {
  Graph g = GenerateErdosRenyi(2000, 9000, 5);
  Graph reverse = g.Reversed();
  Rng rng3(9), rng7(9);
  ThreadPool& pool3 = SharedThreadPool(3);
  ThreadPool& pool7 = SharedThreadPool(7);
  auto a = internal::PropagateLabels(g, reverse, 0.25, 3, rng3, &pool3);
  auto b = internal::PropagateLabels(g, reverse, 0.25, 3, rng7, &pool7);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gcgt
