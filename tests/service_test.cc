// GcgtService: the concurrent-serving contract.
//  - correctness is concurrency: results under many workers with caching on
//    are bit-identical to serial uncached GcgtSession runs on the same
//    prepared artifact (BFS depths, canonical CC labels, BC doubles,
//    modeled metrics),
//  - one encode per artifact fingerprint; engine constructions bounded by
//    the worker pool (encode/engine reuse accounting),
//  - cache on/off equivalence, deterministic hit accounting on one worker,
//  - backpressure: all accepted queries complete; graceful shutdown drains,
//  - admission control and error paths (unknown graph, shut-down service).
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "graph/generators.h"
#include "service/gcgt_service.h"

namespace gcgt {
namespace {

Graph MakeGraph(const std::string& name) {
  if (name == "web") {
    WebGraphParams p;
    p.num_nodes = 1100;
    p.seed = 71;
    return GenerateWebGraph(p);
  }
  if (name == "twitter") {
    TwitterGraphParams p;
    p.num_nodes = 1000;
    p.seed = 72;
    return GenerateTwitterGraph(p);
  }
  return GenerateErdosRenyi(800, 4800, 73);
}

/// The mixed workload of every test: BFS over a small source pool (repeats
/// make the cache meaningful), CC, and multi-source BC.
std::vector<ServiceQuery> MixedWorkload(uint64_t graph_id, Backend backend,
                                        int repeats) {
  std::vector<ServiceQuery> workload;
  const std::vector<NodeId> sources = {0, 3, 17, 42, 99, 3, 0, 17};
  for (int r = 0; r < repeats; ++r) {
    for (NodeId s : sources) {
      workload.push_back({graph_id, BfsQuery{s}, backend});
    }
    workload.push_back({graph_id, CcQuery{}, backend});
    workload.push_back({graph_id, BcQuery{{5, 23}}, backend});
  }
  return workload;
}

/// Serial uncached oracle: one single-caller session over the same artifact.
std::vector<Result<QueryResult>> OracleResults(
    const Graph& g, const PrepareOptions& opt,
    const std::vector<ServiceQuery>& workload) {
  auto session = GcgtSession::Prepare(g, opt);
  EXPECT_TRUE(session.ok());
  std::vector<Result<QueryResult>> out;
  out.reserve(workload.size());
  for (const ServiceQuery& q : workload) {
    out.push_back(
        session.value().Run(q.query, RunOptions{.backend = q.backend}));
  }
  return out;
}

void ExpectBitIdentical(const QueryResult& got, const QueryResult& want,
                        size_t index) {
  ASSERT_EQ(got.kind(), want.kind()) << "query " << index;
  switch (want.kind()) {
    case QueryKind::kBfs:
      EXPECT_EQ(got.bfs().depth, want.bfs().depth) << "query " << index;
      break;
    case QueryKind::kCc:
      EXPECT_EQ(got.cc().component, want.cc().component) << "query " << index;
      EXPECT_EQ(got.cc().rounds, want.cc().rounds) << "query " << index;
      break;
    case QueryKind::kBc:
      // operator== on the double vectors: bit-identical, not approximate.
      EXPECT_EQ(got.bc().dependency, want.bc().dependency) << "query " << index;
      EXPECT_EQ(got.bc().sigma, want.bc().sigma) << "query " << index;
      EXPECT_EQ(got.bc().depth, want.bc().depth) << "query " << index;
      break;
    case QueryKind::kTriangle:
      EXPECT_EQ(got.triangle().triangles, want.triangle().triangles)
          << "query " << index;
      EXPECT_EQ(got.triangle().per_vertex, want.triangle().per_vertex)
          << "query " << index;
      break;
    case QueryKind::kCommonNeighbor:
      EXPECT_EQ(got.common_neighbors().common, want.common_neighbors().common)
          << "query " << index;
      break;
    case QueryKind::kJaccard:
      EXPECT_EQ(got.jaccard().common, want.jaccard().common)
          << "query " << index;
      EXPECT_EQ(got.jaccard().jaccard, want.jaccard().jaccard)
          << "query " << index;
      break;
    case QueryKind::kSimilarityTopK:
      EXPECT_EQ(got.similarity_topk().items, want.similarity_topk().items)
          << "query " << index;
      break;
    case QueryKind::kKCore:
      EXPECT_EQ(got.kcore().in_core, want.kcore().in_core)
          << "query " << index;
      EXPECT_EQ(got.kcore().core_size, want.kcore().core_size)
          << "query " << index;
      break;
  }
  EXPECT_EQ(got.metrics().model_ms, want.metrics().model_ms)
      << "query " << index;
  EXPECT_EQ(got.metrics().kernels, want.metrics().kernels)
      << "query " << index;
  EXPECT_EQ(got.metrics().warp.mem_txns, want.metrics().warp.mem_txns)
      << "query " << index;
}

TEST(GcgtService, EightWorkersCachedBitIdenticalToSerialUncachedOracle) {
  Graph g = MakeGraph("twitter");
  PrepareOptions prep;
  prep.reorder = ReorderMethod::kLlp;  // exercise caller-id translation too

  ServiceOptions opt;
  opt.num_workers = 8;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g, prep);
  ASSERT_TRUE(id.ok());

  auto workload = MixedWorkload(id.value(), Backend::kCgrSimt, /*repeats=*/4);
  auto oracle = OracleResults(g, prep, workload);

  auto futures = service.SubmitBatch(workload);
  ASSERT_EQ(futures.size(), workload.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResult> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << "query " << i;
    ASSERT_TRUE(oracle[i].ok()) << "query " << i;
    ExpectBitIdentical(got.value(), oracle[i].value(), i);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, workload.size());
  EXPECT_GT(stats.cache.hits, 0u);  // the workload repeats sources
}

TEST(GcgtService, OneEncodePerFingerprintAndBoundedEngineConstructions) {
  Graph g = MakeGraph("web");
  ServiceOptions opt;
  opt.num_workers = 3;
  GcgtService service(opt);

  const uint64_t encodes_before = CgrGraph::EncodedCount();
  auto first = service.RegisterGraph(g);
  ASSERT_TRUE(first.ok());
  const uint64_t encodes_after_first = CgrGraph::EncodedCount();
  EXPECT_EQ(encodes_after_first, encodes_before + 1);

  // Same (graph, options): a lookup, not an encode.
  auto second = service.RegisterGraph(g);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(CgrGraph::EncodedCount(), encodes_after_first);

  // Serving builds at most one engine per worker per artifact — and no
  // encodes, ever: the workload runs over the one registered encode.
  const uint64_t engines_before = CgrTraversalEngine::ConstructedCount();
  auto futures =
      service.SubmitBatch(MixedWorkload(first.value(), Backend::kCgrSimt, 6));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  const uint64_t engines_built =
      CgrTraversalEngine::ConstructedCount() - engines_before;
  EXPECT_GE(engines_built, 1u);
  EXPECT_LE(engines_built, static_cast<uint64_t>(opt.num_workers));
  EXPECT_EQ(CgrGraph::EncodedCount(), encodes_after_first);
  EXPECT_EQ(service.Stats().worker_sessions, engines_built);
}

TEST(GcgtService, SingleWorkerCacheAccountingIsDeterministic) {
  Graph g = MakeGraph("er");
  ServiceOptions opt;
  opt.num_workers = 1;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  // Sequential waits on one worker: the second ask of each query is exactly
  // one hit (BC caches under its canonical source set).
  auto bfs_a = service.Submit({id.value(), BfsQuery{4}}).get();
  auto bfs_b = service.Submit({id.value(), BfsQuery{4}}).get();
  auto cc_a = service.Submit({id.value(), CcQuery{}}).get();
  auto cc_b = service.Submit({id.value(), CcQuery{}}).get();
  auto bc_a = service.Submit({id.value(), BcQuery{{4}}}).get();
  auto bc_b = service.Submit({id.value(), BcQuery{{4}}}).get();
  ASSERT_TRUE(bfs_a.ok() && bfs_b.ok() && cc_a.ok() && cc_b.ok() &&
              bc_a.ok() && bc_b.ok());

  ExpectBitIdentical(bfs_b.value(), bfs_a.value(), 1);
  ExpectBitIdentical(cc_b.value(), cc_a.value(), 3);
  ExpectBitIdentical(bc_b.value(), bc_a.value(), 5);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache.hits, 3u);        // BFS + CC + BC repeats
  EXPECT_EQ(stats.cache.insertions, 3u);  // first BFS + first CC + first BC
  EXPECT_EQ(stats.completed, 6u);
}

TEST(GcgtService, BcSourceSetsCanonicalizeInTheResultCache) {
  Graph g = MakeGraph("er");
  ServiceOptions opt;
  opt.num_workers = 1;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  // The same source SET in different orders and with duplicates: one cached
  // entry serves all of them, and every answer is bit-identical to the first
  // (the service runs the canonical sorted+deduped query).
  auto a = service.Submit({id.value(), BcQuery{{9, 2, 5}}}).get();
  auto b = service.Submit({id.value(), BcQuery{{2, 5, 9}}}).get();
  auto c = service.Submit({id.value(), BcQuery{{5, 9, 2, 5, 2}}}).get();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ExpectBitIdentical(b.value(), a.value(), 1);
  ExpectBitIdentical(c.value(), a.value(), 2);

  // A different source set is a different key, not a hit.
  auto d = service.Submit({id.value(), BcQuery{{2, 5}}}).get();
  ASSERT_TRUE(d.ok());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache.hits, 2u);        // b and c
  EXPECT_EQ(stats.cache.insertions, 2u);  // a and d
  EXPECT_EQ(stats.completed, 4u);
}

TEST(GcgtService, StressClientsTimesBackendsTimesWorkersTimesCache) {
  Graph g = MakeGraph("er");
  PrepareOptions prep;
  const int kClients = 6;

  // Oracle once per backend; the service must reproduce it bit-for-bit under
  // every (worker count, cache mode) combination.
  const Backend backends[] = {Backend::kCgrSimt, Backend::kCsrBaseline,
                              Backend::kCpuReference};
  std::vector<std::vector<Result<QueryResult>>> oracles;
  std::vector<std::vector<ServiceQuery>> workloads;
  for (Backend b : backends) {
    workloads.push_back(MixedWorkload(/*graph_id=*/0, b, /*repeats=*/2));
    oracles.push_back(OracleResults(g, prep, workloads.back()));
  }

  for (int workers : {1, 2, 8}) {
    for (bool cached : {true, false}) {
      ServiceOptions opt;
      opt.num_workers = workers;
      opt.queue_capacity = 16;  // small: exercises Push backpressure
      if (!cached) opt.cache_bytes = 0;
      GcgtService service(opt);
      auto id = service.RegisterGraph(g, prep);
      ASSERT_TRUE(id.ok());

      // kClients client threads, each pumping every backend's workload
      // through the shared queue concurrently.
      std::vector<std::thread> clients;
      std::vector<std::string> failures(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (size_t w = 0; w < workloads.size(); ++w) {
            for (size_t i = 0; i < workloads[w].size(); ++i) {
              ServiceQuery q = workloads[w][i];
              q.graph = id.value();
              Result<QueryResult> got = service.Submit(std::move(q)).get();
              if (!got.ok() || !oracles[w][i].ok()) {
                failures[c] = "query error: " + got.status().ToString();
                return;
              }
              const QueryResult& want = oracles[w][i].value();
              const QueryResult& have = got.value();
              if (have.kind() != want.kind()) {
                failures[c] = "kind mismatch";
                return;
              }
              bool same = true;
              switch (want.kind()) {
                case QueryKind::kBfs:
                  same = have.bfs().depth == want.bfs().depth;
                  break;
                case QueryKind::kCc:
                  same = have.cc().component == want.cc().component;
                  break;
                case QueryKind::kBc:
                  same = have.bc().dependency == want.bc().dependency &&
                         have.bc().sigma == want.bc().sigma;
                  break;
                case QueryKind::kTriangle:
                  same = have.triangle().triangles ==
                             want.triangle().triangles &&
                         have.triangle().per_vertex ==
                             want.triangle().per_vertex;
                  break;
                case QueryKind::kCommonNeighbor:
                  same = have.common_neighbors().common ==
                         want.common_neighbors().common;
                  break;
                case QueryKind::kJaccard:
                  same = have.jaccard().common == want.jaccard().common &&
                         have.jaccard().jaccard == want.jaccard().jaccard;
                  break;
                case QueryKind::kSimilarityTopK:
                  same = have.similarity_topk().items ==
                         want.similarity_topk().items;
                  break;
                case QueryKind::kKCore:
                  same = have.kcore().in_core == want.kcore().in_core;
                  break;
              }
              if (!same || have.metrics().model_ms != want.metrics().model_ms) {
                failures[c] = "result diverged from serial uncached oracle";
                return;
              }
            }
          }
        });
      }
      for (auto& t : clients) t.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[c], "")
            << "client " << c << " workers=" << workers << " cache=" << cached;
      }
      const ServiceStats stats = service.Stats();
      EXPECT_EQ(stats.completed, stats.submitted);
      if (!cached) {
        EXPECT_EQ(stats.cache.hits, 0u);
      }
    }
  }
}

TEST(GcgtService, ShutdownDrainsEveryAcceptedQuery) {
  Graph g = MakeGraph("er");
  ServiceOptions opt;
  opt.num_workers = 2;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(service.Submit({id.value(), BfsQuery{NodeId(i % 7)}}));
  }
  service.Shutdown();  // graceful: drains, never drops

  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(service.Stats().completed, futures.size());

  // Post-shutdown admissions fail fast, and their futures still resolve.
  auto late = service.Submit({id.value(), BfsQuery{0}});
  EXPECT_TRUE(late.get().status().IsUnavailable());
  auto shed = service.TrySubmit({id.value(), BfsQuery{0}});
  EXPECT_TRUE(shed.status().IsUnavailable());
}

TEST(GcgtService, AdmissionControlShedsOrServesEveryQuery) {
  Graph g = MakeGraph("er");
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 2;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  int accepted = 0, shed = 0;
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 200; ++i) {
    auto f = service.TrySubmit({id.value(), BfsQuery{NodeId(i % 11)}});
    if (f.ok()) {
      futures.push_back(std::move(f.value()));
      ++accepted;
    } else {
      ASSERT_TRUE(f.status().IsUnavailable());
      ++shed;
    }
  }
  EXPECT_EQ(accepted + shed, 200);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());  // accepted => served
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(accepted));
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(shed));
}

TEST(GcgtService, UnknownGraphAndQueryErrorsFlowThroughFutures) {
  Graph g = MakeGraph("er");
  GcgtService service;
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  EXPECT_EQ(service.Submit({/*graph=*/0xdeadbeef, BfsQuery{0}})
                .get()
                .status()
                .code(),
            Status::Code::kNotFound);
  EXPECT_TRUE(service.Submit({id.value(), BfsQuery{g.num_nodes() + 1}})
                  .get()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(service.Submit({id.value(), BcQuery{{}}})
                  .get()
                  .status()
                  .IsInvalidArgument());
  EXPECT_NE(service.FindGraph(id.value()), nullptr);
  EXPECT_EQ(service.FindGraph(0xdeadbeef), nullptr);
}

TEST(GcgtService, DistinctArtifactsServeSideBySide) {
  Graph a = MakeGraph("er");
  Graph b = MakeGraph("web");
  GcgtService service;
  auto id_a = service.RegisterGraph(a);
  PrepareOptions vnc;
  vnc.apply_vnc = true;
  auto id_b = service.RegisterGraph(b, vnc);
  ASSERT_TRUE(id_a.ok() && id_b.ok());
  EXPECT_NE(id_a.value(), id_b.value());

  // Same graph, different options => a different artifact.
  auto id_a2 = service.RegisterGraph(a, vnc);
  ASSERT_TRUE(id_a2.ok());
  EXPECT_NE(id_a2.value(), id_a.value());

  auto fa = service.Submit({id_a.value(), CcQuery{}});
  auto fb = service.Submit({id_b.value(), CcQuery{}});
  auto ra = fa.get();
  auto rb = fb.get();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().cc().component.size(), a.num_nodes());
  EXPECT_EQ(rb.value().cc().component.size(), b.num_nodes());
}

}  // namespace
}  // namespace gcgt
