// Virtual-node compression tests: edge reduction on template-heavy graphs
// and exact adjacency equivalence under virtual-node expansion.
#include "vnc/virtual_node.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace gcgt {
namespace {

TEST(Vnc, CompressesSharedNeighborSets) {
  // 40 nodes all pointing to the same 10 targets: a biclique that VNC must
  // collapse into one virtual node (40*10 edges -> 40+10).
  EdgeList edges;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId t = 100; t < 110; ++t) edges.emplace_back(u, t);
  }
  Graph g = Graph::FromEdges(120, edges);
  VncResult r = VirtualNodeCompress(g);
  EXPECT_GE(r.num_virtual_nodes(), 1u);
  EXPECT_LT(r.graph.num_edges(), g.num_edges() / 4);
  EXPECT_GT(r.EdgeReduction(), 4.0);
}

TEST(Vnc, ExpansionRecoversOriginalAdjacency) {
  WebGraphParams p;
  p.num_nodes = 2000;
  p.seed = 81;
  Graph g = GenerateWebGraph(p);
  VncResult r = VirtualNodeCompress(g);
  ASSERT_EQ(r.num_real_nodes, g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto expected = g.Neighbors(u);
    auto got = ExpandedNeighbors(r, u);
    ASSERT_EQ(got.size(), expected.size()) << "node " << u;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "node " << u;
  }
}

TEST(Vnc, WebGraphsCompressWell) {
  WebGraphParams p;
  p.num_nodes = 5000;
  p.seed = 82;
  Graph g = GenerateWebGraph(p);
  VncResult r = VirtualNodeCompress(g);
  EXPECT_GT(r.EdgeReduction(), 1.2);  // template links collapse
}

TEST(Vnc, RandomGraphsBarelyCompress) {
  Graph g = GenerateErdosRenyi(3000, 30000, 83);
  VncResult r = VirtualNodeCompress(g);
  // No shared patterns: nearly nothing to mine.
  EXPECT_LT(r.EdgeReduction(), 1.1);
}

TEST(Vnc, NoOpOnTinyGraphs) {
  Graph g = MakePath(5);
  VncResult r = VirtualNodeCompress(g);
  EXPECT_EQ(r.num_virtual_nodes(), 0u);
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
}

TEST(Vnc, SavingsRuleRespected) {
  // A pattern whose replacement would not save edges must not be applied:
  // 2 nodes sharing 2 targets (4 edges -> 2+2+2=... no saving).
  EdgeList edges = {{0, 10}, {0, 11}, {1, 10}, {1, 11}};
  Graph g = Graph::FromEdges(12, edges);
  VncOptions o;
  o.min_cluster_size = 2;
  o.min_pattern_size = 2;
  VncResult r = VirtualNodeCompress(g, o);
  EXPECT_LE(r.graph.num_edges(), g.num_edges());
  // Expansion still exact.
  for (NodeId u : {NodeId(0), NodeId(1)}) {
    EXPECT_EQ(ExpandedNeighbors(r, u), (std::vector<NodeId>{10, 11}));
  }
}

}  // namespace
}  // namespace gcgt
