// Decode-free set-intersection subsystem tests (src/intersect).
//
// Layers, bottom up:
//  - RunCursor: drains and skips every codec layout (CGR segmented /
//    unsegmented / no-intervals, StreamVByte, VarintGB) identically to the
//    decoded adjacency.
//  - IntersectEngine: randomized differential tests of all three kernel
//    paths against std::set_intersection, decode-free vs full-decode A/B,
//    replay-cache reuse, k-core vs an independent peel oracle.
//  - GcgtSession: cross-backend bit-identity of all five query families
//    (including a VNC + reordered session) and argument validation.
//  - GcgtService: cached hits bit-identical to fresh runs (metrics
//    included), canonical {min,max} pair keys, and a chaos suite (honors
//    GCGT_CHAOS_SEED / GCGT_CHAOS_RATE like the robustness suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "api/gcgt_session.h"
#include "cgr/cgr_decoder.h"
#include "cgr/cgr_graph.h"
#include "graph/generators.h"
#include "intersect/compressed_cursor.h"
#include "intersect/intersect_engine.h"
#include "service/gcgt_service.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace gcgt {
namespace {

using intersect::CursorCharges;
using intersect::IntersectEngine;
using intersect::RunCursor;

struct CodecConfig {
  const char* name;
  CgrOptions options;
};

std::vector<CodecConfig> AllCodecConfigs() {
  std::vector<CodecConfig> configs;
  CgrOptions segmented;  // defaults: kCgr, intervals, 32-byte segments
  configs.push_back({"cgr_segmented", segmented});
  CgrOptions unsegmented = segmented;
  unsegmented.segment_len_bytes = 0;
  configs.push_back({"cgr_unsegmented", unsegmented});
  CgrOptions no_intervals = segmented;
  no_intervals.min_interval_len = CgrOptions::kNoIntervals;
  configs.push_back({"cgr_no_intervals", no_intervals});
  CgrOptions svb;
  svb.codec = CodecId::kStreamVByte;
  configs.push_back({"streamvbyte", svb});
  CgrOptions vgb;
  vgb.codec = CodecId::kVarintGb;
  configs.push_back({"varintgb", vgb});
  return configs;
}

std::vector<NodeId> Drain(RunCursor* c) {
  std::vector<NodeId> out;
  while (!c->done()) {
    for (NodeId w = c->lo();; ++w) {
      out.push_back(w);
      if (w == c->hi()) break;
    }
    c->Advance();
  }
  return out;
}

// ---------------------------------------------------------------- cursors

TEST(RunCursor, DrainsEveryCodecLayoutToTheDecodedAdjacency) {
  for (uint64_t seed : {7u, 21u}) {
    Graph g = GenerateErdosRenyi(200, 2400, seed);
    for (const CodecConfig& cfg : AllCodecConfigs()) {
      auto cgr = CgrGraph::Encode(g, cfg.options);
      ASSERT_TRUE(cgr.ok()) << cfg.name;
      simt::WarpContext ctx;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        CursorCharges ch{&ctx};
        RunCursor c = RunCursor::Compressed(cgr.value(), u, &ch);
        EXPECT_EQ(Drain(&c), DecodeAdjacency(cgr.value(), u))
            << cfg.name << " node " << u;
      }
      (void)ctx.TakeStats();
    }
  }
}

TEST(RunCursor, SkipToAtLeastPreservesEverythingAtOrAboveTheTarget) {
  Graph g = GenerateWebGraph({});  // interval-heavy: exercises run skipping
  Rng rng(13);
  for (const CodecConfig& cfg : AllCodecConfigs()) {
    auto cgr = CgrGraph::Encode(g, cfg.options);
    ASSERT_TRUE(cgr.ok()) << cfg.name;
    simt::WarpContext ctx;
    for (int trial = 0; trial < 200; ++trial) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
      const std::vector<NodeId> adj = DecodeAdjacency(cgr.value(), u);
      const NodeId target = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
      CursorCharges ch{&ctx};
      RunCursor c = RunCursor::Compressed(cgr.value(), u, &ch);
      c.SkipToAtLeast(target);
      EXPECT_TRUE(c.done() || c.lo() >= target);
      // The drain must be exactly the >= target suffix of the adjacency:
      // nothing skipped, and no below-target prefix of a straddling run.
      std::vector<NodeId> want;
      for (NodeId w : adj) {
        if (w >= target) want.push_back(w);
      }
      EXPECT_EQ(Drain(&c), want)
          << cfg.name << " u=" << u << " target=" << target;
    }
    (void)ctx.TakeStats();
  }
}

// ---------------------------------------------------------------- engine

TEST(IntersectEngine, PairIntersectionsMatchStdSetIntersection) {
  Rng rng(99);
  for (uint64_t seed : {3u, 4u}) {
    Graph g = GenerateErdosRenyi(300, 6000, seed);
    for (const CodecConfig& cfg : AllCodecConfigs()) {
      auto cgr = CgrGraph::Encode(g, cfg.options);
      ASSERT_TRUE(cgr.ok()) << cfg.name;
      for (bool full_decode : {false, true}) {
        GcgtOptions opt;
        opt.intersect_full_decode = full_decode;
        IntersectEngine eng(cgr.value(), opt);
        for (int trial = 0; trial < 60; ++trial) {
          const NodeId u = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
          const NodeId v = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
          auto r = eng.CommonNeighbors(u, v, CancelToken{});
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          const std::vector<NodeId> nu = DecodeAdjacency(cgr.value(), u);
          const std::vector<NodeId> nv = DecodeAdjacency(cgr.value(), v);
          std::vector<NodeId> want;
          std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                                std::back_inserter(want));
          EXPECT_EQ(r.value().common, want)
              << cfg.name << " full_decode=" << full_decode << " u=" << u
              << " v=" << v;
        }
      }
    }
  }
}

TEST(IntersectEngine, ReplayCacheChangesChargesButNeverResults) {
  Graph g = GenerateSocialGraph({});
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());

  GcgtOptions plain;
  IntersectEngine base(cgr.value(), plain);
  auto want = base.TriangleCount(CancelToken{});
  ASSERT_TRUE(want.ok());

  GcgtOptions replaying = plain;
  replaying.replay_cache_bytes = 1ull << 20;
  replaying.replay_min_degree = 4;
  replaying.replay_min_touches = 2;
  IntersectEngine cached(cgr.value(), replaying);
  auto got = cached.TriangleCount(CancelToken{});
  ASSERT_TRUE(got.ok());

  EXPECT_EQ(got.value().triangles, want.value().triangles);
  EXPECT_EQ(got.value().per_vertex, want.value().per_vertex);
  EXPECT_GT(got.value().metrics.warp.replay_hits, 0u)
      << "triangle counting re-streams every vertex once per neighbor — the "
         "replay cache must see hits";
  EXPECT_EQ(want.value().metrics.warp.replay_hits, 0u);

  // Determinism: a second run on the same engine (replay reset per query)
  // reproduces results AND metrics bit-for-bit.
  auto again = cached.TriangleCount(CancelToken{});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().per_vertex, got.value().per_vertex);
  EXPECT_EQ(again.value().metrics.model_ms, got.value().metrics.model_ms);
  EXPECT_EQ(again.value().metrics.warp.mem_txns,
            got.value().metrics.warp.mem_txns);
  EXPECT_EQ(again.value().metrics.warp.intersect_txns,
            got.value().metrics.warp.intersect_txns);
}

TEST(IntersectEngine, DecodeFreeUndercutsFullDecodeOnModeledCycles) {
  // The tentpole claim, asserted at engine level on an interval-rich graph:
  // merging runs straight off the compressed stream beats decode-then-merge.
  Graph g = GenerateWebGraph({});
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());

  GcgtOptions decode_free;
  IntersectEngine a(cgr.value(), decode_free);
  auto fast = a.TriangleCount(CancelToken{});
  ASSERT_TRUE(fast.ok());

  GcgtOptions full = decode_free;
  full.intersect_full_decode = true;
  IntersectEngine b(cgr.value(), full);
  auto slow = b.TriangleCount(CancelToken{});
  ASSERT_TRUE(slow.ok());

  EXPECT_EQ(fast.value().triangles, slow.value().triangles);
  EXPECT_EQ(fast.value().per_vertex, slow.value().per_vertex);
  EXPECT_LT(fast.value().metrics.model_ms, slow.value().metrics.model_ms);
}

TEST(IntersectEngine, KCoreMatchesAnIndependentPeelOracle) {
  for (uint64_t seed : {11u, 12u}) {
    Graph g = GenerateErdosRenyi(400, 4000, seed);
    auto cgr = CgrGraph::Encode(g, CgrOptions{});
    ASSERT_TRUE(cgr.ok());
    GcgtOptions opt;
    IntersectEngine eng(cgr.value(), opt);
    for (uint32_t k : {0u, 1u, 2u, 3u, 5u, 8u}) {
      auto r = eng.KCore(k, CancelToken{});
      ASSERT_TRUE(r.ok()) << r.status().ToString();

      // Independent oracle: remove ONE under-degree vertex at a time (a
      // different peel schedule than the engine's synchronous rounds); the
      // k-core fixpoint is unique, so membership must agree anyway.
      std::vector<int64_t> deg(g.num_nodes());
      std::vector<uint8_t> alive(g.num_nodes(), 1);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        deg[v] = static_cast<int64_t>(g.Neighbors(v).size());
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (alive[v] && deg[v] < static_cast<int64_t>(k)) {
            alive[v] = 0;
            changed = true;
            for (NodeId x : g.Neighbors(v)) {
              if (alive[x]) --deg[x];
            }
          }
        }
      }
      EXPECT_EQ(r.value().in_core, alive) << "k=" << k;
      EXPECT_EQ(r.value().core_size,
                static_cast<NodeId>(std::count(alive.begin(), alive.end(),
                                               uint8_t{1})))
          << "k=" << k;
      EXPECT_EQ(intersect::CpuKCore(g, k).in_core, alive) << "k=" << k;
    }
  }
}

TEST(CgrGraph, EncodedDegreeMatchesDecodedDegreeOnEveryCodec) {
  Graph g = GenerateErdosRenyi(250, 3000, 5);
  for (const CodecConfig& cfg : AllCodecConfigs()) {
    auto cgr = CgrGraph::Encode(g, cfg.options);
    ASSERT_TRUE(cgr.ok()) << cfg.name;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(cgr.value().EncodedDegree(u),
                DecodeAdjacency(cgr.value(), u).size())
          << cfg.name << " node " << u;
    }
  }
}

// ---------------------------------------------------------------- session

std::vector<Query> IntersectWorkload() {
  return {TriangleCountQuery{},      CommonNeighborQuery{3, 17},
          JaccardQuery{5, 23},       JaccardQuery{8, 8},
          SimilarityTopKQuery{4, 5}, KCoreQuery{3},
          CommonNeighborQuery{0, 0}, KCoreQuery{1}};
}

void ExpectSameIntersectResult(const QueryResult& got, const QueryResult& want,
                               const std::string& label) {
  ASSERT_EQ(got.kind(), want.kind()) << label;
  switch (want.kind()) {
    case QueryKind::kTriangle:
      EXPECT_EQ(got.triangle().triangles, want.triangle().triangles) << label;
      EXPECT_EQ(got.triangle().per_vertex, want.triangle().per_vertex)
          << label;
      break;
    case QueryKind::kCommonNeighbor:
      EXPECT_EQ(got.common_neighbors().common, want.common_neighbors().common)
          << label;
      EXPECT_EQ(got.common_neighbors().count, want.common_neighbors().count)
          << label;
      break;
    case QueryKind::kJaccard:
      EXPECT_EQ(got.jaccard().common, want.jaccard().common) << label;
      EXPECT_EQ(got.jaccard().degree_u, want.jaccard().degree_u) << label;
      EXPECT_EQ(got.jaccard().degree_v, want.jaccard().degree_v) << label;
      // Bit-identical doubles, not approximate.
      EXPECT_EQ(got.jaccard().jaccard, want.jaccard().jaccard) << label;
      break;
    case QueryKind::kSimilarityTopK:
      EXPECT_EQ(got.similarity_topk().items, want.similarity_topk().items)
          << label;
      break;
    case QueryKind::kKCore:
      EXPECT_EQ(got.kcore().in_core, want.kcore().in_core) << label;
      EXPECT_EQ(got.kcore().core_size, want.kcore().core_size) << label;
      break;
    default:
      FAIL() << "not an intersect kind " << label;
  }
}

TEST(IntersectSession, AllBackendsBitIdenticalToCpuReference) {
  for (const CodecConfig& cfg : AllCodecConfigs()) {
    Graph g = GenerateSocialGraph({});
    PrepareOptions prep;
    prep.cgr = cfg.options;
    auto session = GcgtSession::Prepare(g, prep);
    ASSERT_TRUE(session.ok()) << cfg.name;
    for (const Query& q : IntersectWorkload()) {
      auto want = session.value().Run(q, {.backend = Backend::kCpuReference});
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      for (Backend backend : {Backend::kCgrSimt, Backend::kCsrBaseline,
                              Backend::kCsrGunrock}) {
        auto got = session.value().Run(q, {.backend = backend});
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectSameIntersectResult(
            got.value(), want.value(),
            std::string(cfg.name) + "/" + BackendName(backend));
      }
    }
  }
}

TEST(IntersectSession, VncAndReorderingPreserveCrossBackendIdentity) {
  Graph g = GenerateSocialGraph({});
  PrepareOptions prep;
  prep.apply_vnc = true;
  prep.reorder = ReorderMethod::kDegSort;
  auto session = GcgtSession::Prepare(g, prep);
  ASSERT_TRUE(session.ok());
  const NodeId callers = session.value().num_query_nodes();
  ASSERT_EQ(callers, g.num_nodes());
  for (const Query& q : IntersectWorkload()) {
    auto want = session.value().Run(q, {.backend = Backend::kCpuReference});
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    for (Backend backend : {Backend::kCgrSimt, Backend::kCsrBaseline,
                            Backend::kCsrGunrock}) {
      auto got = session.value().Run(q, {.backend = backend});
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameIntersectResult(got.value(), want.value(),
                                BackendName(backend));
    }
    // Remapped results speak the caller's id space: no virtual nodes.
    if (want.value().kind() == QueryKind::kCommonNeighbor) {
      for (NodeId w : want.value().common_neighbors().common) {
        EXPECT_LT(w, callers);
      }
    }
    if (want.value().kind() == QueryKind::kSimilarityTopK) {
      for (const auto& item : want.value().similarity_topk().items) {
        EXPECT_LT(item.node, callers);
      }
    }
    if (want.value().kind() == QueryKind::kTriangle) {
      EXPECT_EQ(want.value().triangle().per_vertex.size(), callers);
    }
    if (want.value().kind() == QueryKind::kKCore) {
      EXPECT_EQ(want.value().kcore().in_core.size(), callers);
    }
  }
}

TEST(IntersectSession, ValidatesArgumentsAndHandlesDegenerateQueries) {
  Graph g = MakePath(10);
  auto session = GcgtSession::Prepare(g, {});
  ASSERT_TRUE(session.ok());

  auto bad_pair = session.value().Run(CommonNeighborQuery{0, 10});
  EXPECT_TRUE(!bad_pair.ok() && bad_pair.status().IsInvalidArgument());
  auto bad_jc = session.value().Run(JaccardQuery{10, 0});
  EXPECT_TRUE(!bad_jc.ok() && bad_jc.status().IsInvalidArgument());
  auto bad_topk = session.value().Run(SimilarityTopKQuery{10, 3});
  EXPECT_TRUE(!bad_topk.ok() && bad_topk.status().IsInvalidArgument());

  auto k0 = session.value().Run(SimilarityTopKQuery{0, 0});
  ASSERT_TRUE(k0.ok());
  EXPECT_TRUE(k0.value().similarity_topk().items.empty());

  // k = 0 core keeps everything; a huge k peels everything.
  auto all = session.value().Run(KCoreQuery{0});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().kcore().core_size, g.num_nodes());
  auto none = session.value().Run(KCoreQuery{1000});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().kcore().core_size, 0u);

  // A path has no triangles.
  auto tri = session.value().Run(TriangleCountQuery{});
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ(tri.value().triangle().triangles, 0u);
}

// ---------------------------------------------------------------- service

TEST(IntersectService, CachedHitsAreBitIdenticalAndPairKeysCanonical) {
  Graph g = GenerateSocialGraph({});
  ServiceOptions opt;
  opt.num_workers = 2;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  auto fresh = service.Submit({id.value(), TriangleCountQuery{}}).get();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto hit = service.Submit({id.value(), TriangleCountQuery{}}).get();
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().triangle().per_vertex,
            fresh.value().triangle().per_vertex);
  EXPECT_EQ(hit.value().metrics().model_ms, fresh.value().metrics().model_ms);
  EXPECT_EQ(hit.value().metrics().warp.intersect_txns,
            fresh.value().metrics().warp.intersect_txns);

  // {u,v} and {v,u} share one cache entry (canonical {min,max} key).
  const uint64_t hits_before = service.Stats().cache.hits;
  auto uv = service.Submit({id.value(), JaccardQuery{7, 31}}).get();
  ASSERT_TRUE(uv.ok());
  auto vu = service.Submit({id.value(), JaccardQuery{31, 7}}).get();
  ASSERT_TRUE(vu.ok());
  EXPECT_EQ(uv.value().jaccard().jaccard, vu.value().jaccard().jaccard);
  EXPECT_EQ(uv.value().jaccard().common, vu.value().jaccard().common);
  EXPECT_GT(service.Stats().cache.hits, hits_before);
  service.Shutdown();
}

struct InjectionScope {
  InjectionScope(uint64_t seed, double rate) {
    FaultInjector::Global().Enable(seed, rate, ~uint32_t{0});
  }
  ~InjectionScope() { FaultInjector::Global().Disable(); }
};

TEST(IntersectService, ChaosEveryFutureFulfilledSuccessesBitIdentical) {
  uint64_t seed = 42;
  double rate = 0.05;
  if (const char* s = std::getenv("GCGT_CHAOS_SEED")) seed = std::stoull(s);
  if (const char* r = std::getenv("GCGT_CHAOS_RATE")) rate = std::stod(r);

  Graph g = GenerateSocialGraph({});
  std::vector<ServiceQuery> workload;
  for (int rep = 0; rep < 4; ++rep) {
    for (const Query& q : IntersectWorkload()) workload.push_back({0, q});
  }
  // Oracle before chaos is armed (same global injection points otherwise).
  auto oracle_session = GcgtSession::Prepare(g);
  ASSERT_TRUE(oracle_session.ok());
  std::vector<Result<QueryResult>> oracle;
  for (const ServiceQuery& q : workload) {
    oracle.push_back(oracle_session.value().Run(q.query));
  }

  ServiceOptions opt;
  opt.num_workers = 4;
  opt.max_attempts = 3;
  opt.breaker.failure_threshold = 0;  // every query must reach a worker
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());
  for (ServiceQuery& q : workload) q.graph = id.value();

  uint64_t succeeded = 0, failed = 0;
  {
    InjectionScope chaos(seed, rate);
    auto futures = service.SubmitBatch(workload);
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<QueryResult> got = futures[i].get();  // fulfilled, always
      ASSERT_TRUE(oracle[i].ok());
      if (got.ok()) {
        ++succeeded;
        ExpectSameIntersectResult(got.value(), oracle[i].value(),
                                  "query " + std::to_string(i));
      } else {
        ++failed;
        EXPECT_TRUE(got.status().IsInternal() || got.status().IsUnavailable())
            << got.status().ToString();
      }
    }
    service.Shutdown();
  }
  EXPECT_EQ(succeeded + failed, workload.size());
  EXPECT_GT(succeeded, 0u) << "rate " << rate << " drowned every query";
}

}  // namespace
}  // namespace gcgt
