// Golden reproduction of paper Fig. 4: the instruction-flow step counts of
// the three scheduling strategies on the paper's exact example, with an
// 8-lane warp:
//   (b) Intuitive          -> 26 steps
//   (c) Two-Phase          -> 12 steps
//   (d) + Task Stealing    -> 10 steps
#include <gtest/gtest.h>

#include <algorithm>

#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/frontier_filter.h"
#include "core/gcgt_options.h"
#include "core/trace.h"

namespace gcgt {
namespace {

// Builds the example of Fig. 4(a): 8 frontier nodes whose compressed lists
// have the shapes
//   t0: deg 6,  1 interval (len 4),  2 residuals
//   t1: deg 1,  1 residual
//   t2: deg 14, 1 interval (len 11), 3 residuals
//   t3: deg 2,  2 residuals
//   t4: deg 1,  1 residual
//   t5: deg 11, 1 interval (len 7),  4 residuals
//   t6: deg 1,  1 residual
//   t7: deg 1,  1 residual
Graph MakeFig4Graph() {
  EdgeList edges;
  auto add_list = [&](NodeId u, std::vector<NodeId> list) {
    for (NodeId v : list) edges.emplace_back(u, v);
  };
  add_list(0, {10, 11, 12, 13, 20, 30});                             // t0
  add_list(1, {40});                                                 // t1
  add_list(2, {50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60,           // itv 11
               70, 80, 90});                                         // t2
  add_list(3, {15, 25});                                             // t3
  add_list(4, {33});                                                 // t4
  add_list(5, {100, 101, 102, 103, 104, 105, 106, 110, 115, 120, 126});  // t5
  add_list(6, {44});                                                 // t6
  add_list(7, {47});                                                 // t7
  return Graph::FromEdges(128, edges);
}

size_t RunWithLevel(GcgtLevel level, StepTrace* trace) {
  Graph g = MakeFig4Graph();
  CgrOptions copt;
  copt.min_interval_len = 4;
  copt.segment_len_bytes = 0;  // the figure's example is unsegmented
  auto cgr = CgrGraph::Encode(g, copt);
  EXPECT_TRUE(cgr.ok());

  GcgtOptions opt;
  opt.level = level;
  opt.lanes = 8;  // the figure uses an 8-thread warp
  CgrTraversalEngine engine(cgr.value(), opt);

  BfsFilter filter(g.num_nodes());
  std::vector<NodeId> frontier = {0, 1, 2, 3, 4, 5, 6, 7};
  for (NodeId u : frontier) filter.SetSource(u);
  std::vector<NodeId> out;
  std::vector<simt::WarpStats> warps;
  engine.ProcessFrontier(frontier, filter, &out, &warps, trace);
  EXPECT_EQ(warps.size(), 1u);
  return trace->PaperStepCount();
}

TEST(Fig4Golden, IntuitiveTakes26Steps) {
  StepTrace trace;
  EXPECT_EQ(RunWithLevel(GcgtLevel::kIntuitive, &trace), 26u)
      << trace.ToTable(8);
}

TEST(Fig4Golden, TwoPhaseTakes12Steps) {
  StepTrace trace;
  EXPECT_EQ(RunWithLevel(GcgtLevel::kTwoPhase, &trace), 12u)
      << trace.ToTable(8);
}

TEST(Fig4Golden, TaskStealingTakes10Steps) {
  StepTrace trace;
  EXPECT_EQ(RunWithLevel(GcgtLevel::kTaskStealing, &trace), 10u)
      << trace.ToTable(8);
}

TEST(Fig4Golden, WarpCentricMatchesTaskStealingOnSmallLists) {
  // No lane reaches the warp-centric residual threshold in this example, so
  // level 3 must behave exactly like level 2.
  StepTrace trace;
  EXPECT_EQ(RunWithLevel(GcgtLevel::kWarpCentric, &trace), 10u)
      << trace.ToTable(8);
}

TEST(Fig4Golden, TwoPhaseStep1IsWarpWideExpansionOfT2) {
  // In Fig. 4(c), step 1 is the whole warp expanding the first 8 neighbors
  // of t2's long interval (len 11 >= 8 lanes).
  StepTrace trace;
  RunWithLevel(GcgtLevel::kTwoPhase, &trace);
  std::vector<StepTrace::Step> steps;
  for (const auto& s : trace.steps()) {
    if (s.op != TraceOp::kHeader && !s.lanes.empty()) steps.push_back(s);
  }
  ASSERT_GE(steps.size(), 2u);
  // Step 0: the interval decode by t0, t2, t5.
  EXPECT_EQ(steps[0].op, TraceOp::kDecodeInterval);
  ASSERT_EQ(steps[0].lanes.size(), 3u);
  EXPECT_EQ(steps[0].lanes[0].second, "t0:i0");
  EXPECT_EQ(steps[0].lanes[1].second, "t2:i0");
  EXPECT_EQ(steps[0].lanes[2].second, "t5:i0");
  // Step 1: all 8 lanes handle t2's interval neighbors 0..7.
  EXPECT_EQ(steps[1].op, TraceOp::kAppend);
  ASSERT_EQ(steps[1].lanes.size(), 8u);
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(steps[1].lanes[l].second, "t2:i0:" + std::to_string(l));
  }
}

TEST(Fig4Golden, IntuitiveWastesLaneSlots) {
  // The point of Fig. 4: the intuitive schedule leaves most lanes idle.
  Graph g = MakeFig4Graph();
  CgrOptions copt;
  copt.min_interval_len = 4;
  copt.segment_len_bytes = 0;
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok());

  auto run = [&](GcgtLevel level) {
    GcgtOptions opt;
    opt.level = level;
    opt.lanes = 8;
    CgrTraversalEngine engine(cgr.value(), opt);
    BfsFilter filter(g.num_nodes());
    std::vector<NodeId> frontier = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<NodeId> out;
    std::vector<simt::WarpStats> warps;
    engine.ProcessFrontier(frontier, filter, &out, &warps);
    return warps[0];
  };
  simt::WarpStats intuitive = run(GcgtLevel::kIntuitive);
  simt::WarpStats stealing = run(GcgtLevel::kTaskStealing);
  EXPECT_LT(stealing.steps, intuitive.steps);
  EXPECT_GT(stealing.LaneEfficiency(), intuitive.LaneEfficiency());
}

TEST(Fig4Golden, AllLevelsVisitTheSameNodes) {
  Graph g = MakeFig4Graph();
  CgrOptions copt;
  copt.min_interval_len = 4;
  copt.segment_len_bytes = 0;
  auto cgr = CgrGraph::Encode(g, copt);
  ASSERT_TRUE(cgr.ok());
  std::vector<NodeId> expected;
  for (GcgtLevel level : {GcgtLevel::kIntuitive, GcgtLevel::kTwoPhase,
                          GcgtLevel::kTaskStealing, GcgtLevel::kWarpCentric}) {
    GcgtOptions opt;
    opt.level = level;
    opt.lanes = 8;
    CgrTraversalEngine engine(cgr.value(), opt);
    BfsFilter filter(g.num_nodes());
    std::vector<NodeId> frontier = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<NodeId> out;
    std::vector<simt::WarpStats> warps;
    engine.ProcessFrontier(frontier, filter, &out, &warps);
    std::sort(out.begin(), out.end());
    if (expected.empty()) {
      expected = out;
      EXPECT_FALSE(expected.empty());
    } else {
      EXPECT_EQ(out, expected) << "level " << static_cast<int>(level);
    }
  }
}

}  // namespace
}  // namespace gcgt
