// The fault-tolerance contract of the serving stack.
//  - CancelToken/CancelSource: deadlines and sticky cancellation, cancelled
//    wins over expired, default tokens are free,
//  - FaultInjector: same seed => same decision sequence; disabled/masked
//    points never fire,
//  - CircuitBreaker: Closed -> Open -> HalfOpen -> {Closed, Open} with a
//    fake clock,
//  - the service under faults: deadlines honored while queued and
//    mid-traversal, worker exceptions contained to Status::Internal (the
//    pool survives), transient failures retried, repeatedly failing
//    artifacts quarantined, OOM queries degraded onto a fallback backend,
//  - chaos: with every injection point armed, every accepted future is
//    still fulfilled and every SUCCESSFUL result is bit-identical to the
//    no-fault oracle,
//  - Shutdown: idempotent, safe against concurrent Shutdown and Submit.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/gcgt_session.h"
#include "graph/generators.h"
#include "service/circuit_breaker.h"
#include "service/gcgt_service.h"
#include "util/cancel_token.h"
#include "util/fault_injector.h"

namespace gcgt {
namespace {

using std::chrono::milliseconds;
using Clock = CancelToken::Clock;

Graph TestGraph() { return GenerateErdosRenyi(800, 4800, 73); }

/// RAII guard: no test leaks an armed global injector into its neighbors.
struct InjectionScope {
  InjectionScope(uint64_t seed, double rate, uint32_t mask = kAllFaultPoints) {
    FaultInjector::Global().Enable(seed, rate, mask);
  }
  ~InjectionScope() { FaultInjector::Global().Disable(); }
};

constexpr uint32_t MaskOf(FaultPoint p) { return 1u << static_cast<int>(p); }

void ExpectSameResult(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.kind(), want.kind());
  switch (want.kind()) {
    case QueryKind::kBfs:
      EXPECT_EQ(got.bfs().depth, want.bfs().depth);
      break;
    case QueryKind::kCc:
      EXPECT_EQ(got.cc().component, want.cc().component);
      EXPECT_EQ(got.cc().rounds, want.cc().rounds);
      break;
    case QueryKind::kBc:
      EXPECT_EQ(got.bc().dependency, want.bc().dependency);
      EXPECT_EQ(got.bc().sigma, want.bc().sigma);
      EXPECT_EQ(got.bc().depth, want.bc().depth);
      break;
    case QueryKind::kTriangle:
      EXPECT_EQ(got.triangle().triangles, want.triangle().triangles);
      EXPECT_EQ(got.triangle().per_vertex, want.triangle().per_vertex);
      break;
    case QueryKind::kCommonNeighbor:
      EXPECT_EQ(got.common_neighbors().common, want.common_neighbors().common);
      break;
    case QueryKind::kJaccard:
      EXPECT_EQ(got.jaccard().common, want.jaccard().common);
      EXPECT_EQ(got.jaccard().jaccard, want.jaccard().jaccard);
      break;
    case QueryKind::kSimilarityTopK:
      EXPECT_EQ(got.similarity_topk().items, want.similarity_topk().items);
      break;
    case QueryKind::kKCore:
      EXPECT_EQ(got.kcore().in_core, want.kcore().in_core);
      EXPECT_EQ(got.kcore().core_size, want.kcore().core_size);
      break;
  }
  EXPECT_EQ(got.metrics().model_ms, want.metrics().model_ms);
  EXPECT_EQ(got.metrics().kernels, want.metrics().kernels);
  EXPECT_EQ(got.metrics().warp.mem_txns, want.metrics().warp.mem_txns);
}

// ---------------------------------------------------------------- tokens

TEST(CancelToken, DefaultTokenNeverExpiresAndIsFree) {
  CancelToken token;
  EXPECT_FALSE(token.CanExpire());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.Check().ok());
  // Even at the end of time.
  EXPECT_TRUE(token.CheckAt(Clock::time_point::max() - milliseconds(1)).ok());
}

TEST(CancelToken, DeadlineExpiresExactlyAtTheDeadline) {
  const Clock::time_point t0 = Clock::now();
  CancelToken token = CancelToken::WithDeadline(t0 + milliseconds(100));
  EXPECT_TRUE(token.CanExpire());
  EXPECT_TRUE(token.CheckAt(t0).ok());
  EXPECT_TRUE(token.CheckAt(t0 + milliseconds(99)).ok());
  Status late = token.CheckAt(t0 + milliseconds(100));
  EXPECT_TRUE(late.IsDeadlineExceeded()) << late.ToString();
}

TEST(CancelToken, CancelIsStickyAndWinsOverDeadline) {
  CancelSource source;
  CancelToken token = source.token(Clock::now() - milliseconds(1));  // expired
  source.Cancel();
  source.Cancel();  // idempotent
  // Both verdicts apply; the explicit cancel is reported.
  Status s = token.Check();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, WithDeadlineMinOnlyTightens) {
  const Clock::time_point t0 = Clock::now();
  CancelToken early = CancelToken::WithDeadline(t0 + milliseconds(10));
  // A later service default must not loosen the client's deadline...
  EXPECT_EQ(early.WithDeadlineMin(t0 + milliseconds(500)).deadline(),
            t0 + milliseconds(10));
  // ...and an earlier one wins.
  EXPECT_EQ(early.WithDeadlineMin(t0 + milliseconds(1)).deadline(),
            t0 + milliseconds(1));
  // Tokens are value types: the original is untouched.
  EXPECT_EQ(early.deadline(), t0 + milliseconds(10));
}

TEST(CancelToken, TokensShareTheSourceFlagByReference) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = a;  // copies observe the same flag
  EXPECT_TRUE(a.Check().ok());
  source.Cancel();
  EXPECT_TRUE(a.Check().IsCancelled());
  EXPECT_TRUE(b.Check().IsCancelled());
}

// ---------------------------------------------------------- fault injector

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  auto& fi = FaultInjector::Global();
  constexpr int kDraws = 200;
  std::vector<bool> first, second;
  {
    InjectionScope chaos(/*seed=*/7, /*rate=*/0.3);
    for (int i = 0; i < kDraws; ++i) {
      first.push_back(fi.ShouldInject(FaultPoint::kWorkerServe));
    }
  }
  {
    InjectionScope chaos(/*seed=*/7, /*rate=*/0.3);  // Enable resets ordinals
    for (int i = 0; i < kDraws; ++i) {
      second.push_back(fi.ShouldInject(FaultPoint::kWorkerServe));
    }
  }
  EXPECT_EQ(first, second);
  // At rate 0.3 over 200 draws, both extremes are astronomically unlikely.
  int injected = 0;
  for (bool b : first) injected += b;
  EXPECT_GT(injected, 0);
  EXPECT_LT(injected, kDraws);
  const FaultInjectorStats stats = fi.Stats();
  EXPECT_EQ(stats.evaluated[static_cast<int>(FaultPoint::kWorkerServe)],
            static_cast<uint64_t>(kDraws));
  EXPECT_EQ(stats.injected[static_cast<int>(FaultPoint::kWorkerServe)],
            static_cast<uint64_t>(injected));
}

TEST(FaultInjector, DisabledAndMaskedPointsNeverFire) {
  auto& fi = FaultInjector::Global();
  ASSERT_FALSE(fi.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.ShouldInject(FaultPoint::kDecodeRound));
  }
  InjectionScope chaos(/*seed=*/3, /*rate=*/1.0,
                       MaskOf(FaultPoint::kCacheInsert));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.ShouldInject(FaultPoint::kWorkerServe));  // masked out
    EXPECT_TRUE(fi.ShouldInject(FaultPoint::kCacheInsert));   // rate 1.0
  }
}

TEST(FaultInjector, PointsDrawIndependentSequences) {
  auto& fi = FaultInjector::Global();
  InjectionScope chaos(/*seed=*/11, /*rate=*/0.5);
  std::vector<bool> serve, decode;
  for (int i = 0; i < 128; ++i) {
    serve.push_back(fi.ShouldInject(FaultPoint::kWorkerServe));
    decode.push_back(fi.ShouldInject(FaultPoint::kDecodeRound));
  }
  EXPECT_NE(serve, decode);  // 2^-128 of flaking
}

// ---------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, ClosedOpenHalfOpenClosedWithFakeClock) {
  Clock::time_point now{};  // fake time, advanced by hand
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  opt.open_cooldown = milliseconds(250);
  CircuitBreaker breaker(opt, [&now] { return now; });

  // Closed: a success in the middle resets the consecutive-failure run.
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kClosed);
  breaker.RecordFailure();  // third consecutive: trip
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);

  // Open: rejects until the cooldown elapses.
  EXPECT_FALSE(breaker.Allow());
  now += milliseconds(249);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.rejected(), 2u);

  // Cooldown elapsed: one probe admitted, a second is still rejected.
  now += milliseconds(1);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());

  // The probe succeeds: recovered.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreaker, FailedProbeReopensWithAFreshCooldown) {
  Clock::time_point now{};
  CircuitBreakerOptions opt;
  opt.failure_threshold = 1;
  opt.open_cooldown = milliseconds(100);
  CircuitBreaker breaker(opt, [&now] { return now; });

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kOpen);
  now += milliseconds(100);
  EXPECT_TRUE(breaker.Allow());  // probe
  breaker.RecordFailure();       // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.Allow());  // a FULL new cooldown, not the stale one
  now += milliseconds(100);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreaker, NonPositiveThresholdDisables) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 0;
  CircuitBreaker breaker(opt);
  for (int i = 0; i < 100; ++i) {
    breaker.RecordFailure();
    EXPECT_TRUE(breaker.Allow());
  }
  EXPECT_EQ(breaker.state(), CircuitBreakerState::kClosed);
}

// ------------------------------------------------- deadlines, cancellation

TEST(ServiceRobustness, ExpiredDeadlineFailsWhileQueuedWithoutRunning) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  ServiceQuery q{id.value(), BfsQuery{0}};
  q.cancel = CancelToken::WithDeadline(Clock::now() - milliseconds(1));
  auto result = service.Submit(std::move(q)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  // The worker never built a session for it.
  EXPECT_EQ(stats.worker_sessions, 0u);
}

TEST(ServiceRobustness, DefaultTimeoutAppliesToTokenlessQueries) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.default_timeout = std::chrono::nanoseconds(1);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  auto result = service.Submit({id.value(), BfsQuery{0}}).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
}

TEST(ServiceRobustness, DeadlineAbortsMidTraversalAndSessionSurvives) {
  // Drive the session directly: the service pre-checks queued tokens, so to
  // pin the MID-FLIGHT abort we hand an already-expired token straight to
  // Run — the kCgrSimt pipeline trips its round-loop check, not any
  // front-door check.
  Graph g = TestGraph();
  auto session = GcgtSession::Prepare(g);
  ASSERT_TRUE(session.ok());

  RunOptions run;
  run.cancel = CancelToken::WithDeadline(Clock::now() - milliseconds(1));
  auto aborted = session.value().Run(BfsQuery{0}, run);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsDeadlineExceeded())
      << aborted.status().ToString();

  // An aborted query leaves only per-query state: the next (token-free) run
  // is clean and correct.
  auto clean = session.value().Run(BfsQuery{0});
  ASSERT_TRUE(clean.ok());
  auto oracle = GcgtSession::Prepare(g);
  ASSERT_TRUE(oracle.ok());
  auto want = oracle.value().Run(BfsQuery{0});
  ASSERT_TRUE(want.ok());
  ExpectSameResult(clean.value(), want.value());
}

TEST(ServiceRobustness, CancelledBaselineBackendsAbortToo) {
  Graph g = TestGraph();
  auto session = GcgtSession::Prepare(g);
  ASSERT_TRUE(session.ok());
  CancelSource source;
  source.Cancel();
  for (Backend b : {Backend::kCsrBaseline, Backend::kCpuReference}) {
    RunOptions run;
    run.backend = b;
    run.cancel = source.token();
    auto r = session.value().Run(BfsQuery{0}, run);
    ASSERT_FALSE(r.ok()) << BackendName(b);
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  }
}

TEST(ServiceRobustness, PreCancelledQueryNeverRuns) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 2;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  CancelSource source;
  source.Cancel();
  ServiceQuery q{id.value(), BcQuery{{0, 1, 2}}};
  q.cancel = source.token();
  auto result = service.Submit(std::move(q)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ(service.Stats().cancelled, 1u);
}

TEST(ServiceRobustness, CancelStormFulfillsEveryFutureOkOrCancelled) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 2;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  CancelSource source;
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 48; ++i) {
    ServiceQuery q{id.value(), BfsQuery{static_cast<NodeId>(i % 11)}};
    q.cancel = source.token();
    futures.push_back(service.Submit(std::move(q)));
  }
  source.Cancel();  // races the in-flight tail: both outcomes are legal
  for (auto& f : futures) {
    auto r = f.get();  // fulfilled, never abandoned
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
    }
  }
  EXPECT_EQ(service.Stats().completed, 48u);
}

// ------------------------------------------------- containment and retry

TEST(ServiceRobustness, WorkerExceptionBecomesInternalAndPoolSurvives) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 2;
  opt.max_attempts = 1;               // isolate containment from retry
  opt.breaker.failure_threshold = 0;  // and from the breaker
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  {
    InjectionScope chaos(/*seed=*/5, /*rate=*/1.0,
                         MaskOf(FaultPoint::kWorkerServe));
    for (int i = 0; i < 6; ++i) {
      auto r = service.Submit({id.value(), BfsQuery{0}}).get();
      ASSERT_FALSE(r.ok());
      EXPECT_TRUE(r.status().IsInternal()) << r.status().ToString();
      EXPECT_NE(r.status().ToString().find("worker exception"),
                std::string::npos);
    }
  }
  // The pool is alive: the same service serves cleanly once the chaos ends.
  auto ok = service.Submit({id.value(), BfsQuery{0}}).get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.worker_faults, 6u);
  EXPECT_EQ(stats.completed, 7u);
}

TEST(ServiceRobustness, TransientFaultIsRetriedToSuccess) {
  // Find a seed whose kWorkerServe decision sequence starts {true, false}:
  // attempt 1 faults, attempt 2 succeeds. Determinism makes this a fixed
  // property of the seed, not a race.
  const uint32_t mask = MaskOf(FaultPoint::kWorkerServe);
  auto& fi = FaultInjector::Global();
  uint64_t seed = 0;
  bool found = false;
  for (uint64_t s = 0; s < 64 && !found; ++s) {
    InjectionScope probe(s, /*rate=*/0.5, mask);
    if (fi.ShouldInject(FaultPoint::kWorkerServe) &&
        !fi.ShouldInject(FaultPoint::kWorkerServe)) {
      seed = s;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;  // one worker, one query: the ordinal order is serial
  opt.max_attempts = 3;
  opt.retry_backoff_base = milliseconds(1);
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  InjectionScope chaos(seed, /*rate=*/0.5, mask);
  auto r = service.Submit({id.value(), BfsQuery{3}}).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.worker_faults, 1u);
}

TEST(ServiceRobustness, BreakerQuarantinesARepeatedlyFailingArtifact) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.max_attempts = 1;
  opt.breaker.failure_threshold = 2;
  opt.breaker.open_cooldown = std::chrono::hours(1);  // stays open for the test
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  InjectionScope chaos(/*seed=*/5, /*rate=*/1.0,
                       MaskOf(FaultPoint::kWorkerServe));
  for (int i = 0; i < 2; ++i) {
    auto r = service.Submit({id.value(), BfsQuery{0}}).get();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInternal());
  }
  EXPECT_EQ(service.BreakerState(id.value()), CircuitBreakerState::kOpen);

  // Further queries fail fast — no worker attempt, no new fault.
  const uint64_t faults_before = service.Stats().worker_faults;
  auto rejected = service.Submit({id.value(), BfsQuery{0}}).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status().ToString();
  EXPECT_NE(rejected.status().ToString().find("circuit breaker"),
            std::string::npos);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.worker_faults, faults_before);
  EXPECT_EQ(stats.breaker_rejected, 1u);
  EXPECT_EQ(stats.breaker_opened, 1u);
}

TEST(ServiceRobustness, BreakerRecoversThroughACooldownProbe) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.max_attempts = 1;
  opt.breaker.failure_threshold = 1;
  opt.breaker.open_cooldown = milliseconds(0);  // probe immediately
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  {
    InjectionScope chaos(/*seed=*/5, /*rate=*/1.0,
                         MaskOf(FaultPoint::kWorkerServe));
    auto r = service.Submit({id.value(), BfsQuery{0}}).get();
    ASSERT_FALSE(r.ok());
  }
  EXPECT_EQ(service.BreakerState(id.value()), CircuitBreakerState::kOpen);
  // Chaos over: the next query is the half-open probe; its success closes
  // the breaker again.
  auto probe = service.Submit({id.value(), BfsQuery{0}}).get();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(service.BreakerState(id.value()), CircuitBreakerState::kClosed);
}

// ------------------------------------------------------- OOM degradation

/// A device budget the plain CSR footprint fits but the Gunrock-factored
/// one does not: BFS on kCsrGunrock OOMs, kCpuReference always works.
uint64_t TightBudgetFor(const Graph& g, double gunrock_factor) {
  const uint64_t v = g.num_nodes();
  const uint64_t csr_bfs = 4 * (v + 1) + 4 * g.num_edges() + 4 * v + 8 * v;
  return static_cast<uint64_t>(csr_bfs * gunrock_factor * 0.9);
}

TEST(ServiceRobustness, OomDegradesOntoFallbackBackend) {
  Graph g = TestGraph();
  PrepareOptions prep;
  prep.gcgt.device.memory_bytes = TightBudgetFor(g, prep.gunrock_memory_factor);

  ServiceOptions opt;
  opt.num_workers = 1;
  opt.enable_oom_fallback = true;
  opt.fallback_backend = Backend::kCpuReference;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g, prep);
  ASSERT_TRUE(id.ok());

  auto degraded = service.Submit({id.value(), BfsQuery{4},
                                  Backend::kCsrGunrock}).get();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().degraded());

  // The degraded answer IS the fallback backend's answer.
  auto oracle = GcgtSession::Prepare(g, prep);
  ASSERT_TRUE(oracle.ok());
  auto want = oracle.value().Run(BfsQuery{4},
                                 RunOptions{.backend = Backend::kCpuReference});
  ASSERT_TRUE(want.ok());
  ExpectSameResult(degraded.value(), want.value());

  // Degraded results are not cached under the requested backend's key: the
  // repeat degrades again instead of hitting the cache.
  auto again = service.Submit({id.value(), BfsQuery{4},
                               Backend::kCsrGunrock}).get();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().degraded());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.cache.hits, 0u);

  // The requested backend still fits on an un-budgeted artifact; and a
  // non-degraded run never sets the flag.
  auto fits = service.Submit({id.value(), BfsQuery{4}}).get();
  ASSERT_TRUE(fits.ok());
  EXPECT_FALSE(fits.value().degraded());
}

TEST(ServiceRobustness, WithoutFallbackOomStaysAnError) {
  Graph g = TestGraph();
  PrepareOptions prep;
  prep.gcgt.device.memory_bytes = TightBudgetFor(g, prep.gunrock_memory_factor);
  ServiceOptions opt;
  opt.num_workers = 1;  // enable_oom_fallback stays false
  GcgtService service(opt);
  auto id = service.RegisterGraph(g, prep);
  ASSERT_TRUE(id.ok());

  auto r = service.Submit({id.value(), BfsQuery{4}, Backend::kCsrGunrock}).get();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfMemory()) << r.status().ToString();
  EXPECT_EQ(service.Stats().degraded, 0u);
}

// ------------------------------------------------------------------ chaos

TEST(ServiceRobustness, ChaosEveryFutureFulfilledSuccessesBitIdentical) {
  // Every injection point armed at a rate where both failures and successes
  // are plentiful. Overridable for exploratory chaos runs / the chaos CI
  // job: GCGT_CHAOS_SEED / GCGT_CHAOS_RATE.
  uint64_t seed = 42;
  double rate = 0.05;
  if (const char* s = std::getenv("GCGT_CHAOS_SEED")) seed = std::stoull(s);
  if (const char* r = std::getenv("GCGT_CHAOS_RATE")) rate = std::stod(r);

  Graph g = TestGraph();
  // The oracle runs BEFORE chaos is armed (its session would hit the same
  // global injection points).
  std::vector<ServiceQuery> workload;
  for (int rep = 0; rep < 6; ++rep) {
    for (NodeId s : {0, 3, 17, 42, 99}) {
      workload.push_back({0, BfsQuery{s}});
    }
    workload.push_back({0, CcQuery{}});
    workload.push_back({0, BcQuery{{5, 23}}});
  }
  auto oracle_session = GcgtSession::Prepare(g);
  ASSERT_TRUE(oracle_session.ok());
  std::vector<Result<QueryResult>> oracle;
  for (const ServiceQuery& q : workload) {
    oracle.push_back(oracle_session.value().Run(q.query));
  }

  ServiceOptions opt;
  opt.num_workers = 4;
  opt.max_attempts = 3;
  opt.retry_backoff_base = milliseconds(1);
  opt.breaker.failure_threshold = 0;  // quarantine has its own tests; here
                                      // every query must reach a worker
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());
  for (ServiceQuery& q : workload) q.graph = id.value();

  uint64_t succeeded = 0, failed = 0;
  {
    InjectionScope chaos(seed, rate);
    auto futures = service.SubmitBatch(workload);
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<QueryResult> got = futures[i].get();  // fulfilled, always
      ASSERT_TRUE(oracle[i].ok());
      if (got.ok()) {
        ++succeeded;
        ExpectSameResult(got.value(), oracle[i].value());
      } else {
        ++failed;
        // Chaos manufactures only these verdicts.
        EXPECT_TRUE(got.status().IsInternal() ||
                    got.status().IsUnavailable())
            << got.status().ToString();
      }
    }
    service.Shutdown();
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, workload.size());
  EXPECT_EQ(succeeded + failed, workload.size());
  EXPECT_GT(succeeded, 0u) << "rate " << rate << " drowned every query";
  EXPECT_GT(FaultInjector::Global().Stats().total_injected(), 0u);
}

TEST(ServiceRobustness, ChaosVerdictSetIsAFunctionOfTheSeed) {
  // The full serial pipeline (1 worker, cache off, no retries) under the
  // same seed must fail the SAME queries with the SAME codes, twice.
  Graph g = TestGraph();
  auto run_once = [&](uint64_t seed) {
    ServiceOptions opt;
    opt.num_workers = 1;
    opt.cache_bytes = 0;
    opt.max_attempts = 1;
    opt.breaker.failure_threshold = 0;
    GcgtService service(opt);
    auto id = service.RegisterGraph(g);
    EXPECT_TRUE(id.ok());
    std::vector<Status::Code> verdicts;
    InjectionScope chaos(seed, /*rate=*/0.2,
                         MaskOf(FaultPoint::kWorkerServe) |
                             MaskOf(FaultPoint::kDecodeRound));
    for (int i = 0; i < 24; ++i) {
      // .get() serializes: with one worker the ordinal order is exact.
      auto r = service.Submit({id.value(), BfsQuery{static_cast<NodeId>(i % 7)}})
                   .get();
      verdicts.push_back(r.ok() ? Status::Code::kOk : r.status().code());
    }
    return verdicts;
  };
  auto a = run_once(9001);
  auto b = run_once(9001);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- shutdown

TEST(ServiceRobustness, ShutdownIsIdempotentAndSafeAgainstConcurrentSubmit) {
  Graph g = TestGraph();
  ServiceOptions opt;
  opt.num_workers = 2;
  GcgtService service(opt);
  auto id = service.RegisterGraph(g);
  ASSERT_TRUE(id.ok());

  std::vector<std::future<Result<QueryResult>>> futures;
  std::mutex futures_mu;
  std::vector<std::thread> threads;
  // Submitters race four concurrent Shutdowns.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        auto f = service.Submit({id.value(), BfsQuery{static_cast<NodeId>(i)}});
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] { service.Shutdown(); });
  }
  for (auto& th : threads) th.join();
  service.Shutdown();  // idempotent

  // Every future — accepted before or rejected after the close — is
  // fulfilled with a result or Unavailable; none dangles.
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
    }
  }
  // And the service now sheds cleanly.
  auto late = service.TrySubmit({id.value(), BfsQuery{0}});
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsUnavailable());
}

}  // namespace
}  // namespace gcgt
