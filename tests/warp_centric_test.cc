// Warp-centric parallel VLC decoding tests (paper Alg. 4 / Fig. 5 /
// Lemma 5.2), including the paper's exact worked example.
#include "core/warp_centric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/bit_stream.h"
#include "util/random.h"

namespace gcgt {
namespace {

TEST(WarpCentric, PaperFigure5Example) {
  // gamma codes of 1..5 concatenated: "1 010 011 00100 00101" -> the valid
  // start positions are 0, 1, 4, 7, 12 and decoding ends at bit 17.
  BitWriter w;
  for (uint64_t v = 1; v <= 5; ++v) VlcEncode(VlcScheme::kGamma, v, &w);
  ASSERT_EQ(w.num_bits(), 17u);
  w.PutBits(0b10100, 5);  // trailing bits so speculative lanes have data
  auto bytes = w.bytes();

  ParallelDecodeResult r = WarpCentricDecodeWindow(
      bytes.data(), w.num_bits(), /*base=*/0, /*lanes=*/16, VlcScheme::kGamma,
      /*max_values=*/5);
  EXPECT_EQ(r.values, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.valid_offsets, (std::vector<uint32_t>{0, 1, 4, 7, 12}));
  EXPECT_EQ(r.next_bit_pos, 17u);
  // Lemma 5.2: all valid decodings identified in O(log2 K) rounds; marking
  // doubles per round so 5 values need ceil(log2 5) = 3 rounds.
  EXPECT_EQ(r.rounds, 3);
}

TEST(WarpCentric, MaxValuesCapStopsMidWindow) {
  BitWriter w;
  for (uint64_t v = 1; v <= 5; ++v) VlcEncode(VlcScheme::kGamma, v, &w);
  auto bytes = w.bytes();
  ParallelDecodeResult r = WarpCentricDecodeWindow(
      bytes.data(), w.num_bits(), 0, 16, VlcScheme::kGamma, /*max_values=*/2);
  EXPECT_EQ(r.values, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(r.next_bit_pos, 4u);  // start of the third codeword
}

TEST(WarpCentric, ChainsAcrossWindows) {
  // Decoding a long stream window by window recovers the full sequence.
  Rng rng(42);
  std::vector<uint64_t> values;
  BitWriter w;
  for (int i = 0; i < 300; ++i) {
    uint64_t v = 1 + rng.Uniform(200);
    values.push_back(v);
    VlcEncode(VlcScheme::kZeta3, v, &w);
  }
  auto bytes = w.bytes();

  std::vector<uint64_t> decoded;
  uint64_t pos = 0;
  while (decoded.size() < values.size()) {
    ParallelDecodeResult r =
        WarpCentricDecodeWindow(bytes.data(), w.num_bits(), pos, 32,
                                VlcScheme::kZeta3,
                                values.size() - decoded.size());
    ASSERT_FALSE(r.values.empty());
    decoded.insert(decoded.end(), r.values.begin(), r.values.end());
    ASSERT_GT(r.next_bit_pos, pos);
    pos = r.next_bit_pos;
  }
  EXPECT_EQ(decoded, values);
  EXPECT_EQ(pos, w.num_bits());
}

class WarpCentricSchemeTest : public ::testing::TestWithParam<VlcScheme> {};

TEST_P(WarpCentricSchemeTest, WindowedDecodeMatchesSerial) {
  const VlcScheme scheme = GetParam();
  Rng rng(7 + static_cast<uint64_t>(scheme));
  std::vector<uint64_t> values;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    uint64_t v = 1 + rng.Uniform(uint64_t(1) << (1 + rng.Uniform(16)));
    values.push_back(v);
    VlcEncode(scheme, v, &w);
  }
  auto bytes = w.bytes();
  std::vector<uint64_t> decoded;
  uint64_t pos = 0;
  int windows = 0;
  while (decoded.size() < values.size()) {
    ParallelDecodeResult r = WarpCentricDecodeWindow(
        bytes.data(), w.num_bits(), pos, 32, scheme,
        values.size() - decoded.size());
    ASSERT_FALSE(r.values.empty());
    ASSERT_LE(r.rounds, 5);  // ceil(log2 32)
    decoded.insert(decoded.end(), r.values.begin(), r.values.end());
    pos = r.next_bit_pos;
    ++windows;
  }
  EXPECT_EQ(decoded, values);
  EXPECT_LT(windows, 500);  // strictly better than one value per pass
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WarpCentricSchemeTest,
                         ::testing::Values(VlcScheme::kGamma, VlcScheme::kZeta2,
                                           VlcScheme::kZeta3, VlcScheme::kZeta4,
                                           VlcScheme::kZeta5),
                         [](const auto& info) {
                           return VlcSchemeName(info.param);
                         });

TEST(WarpCentric, DenserCodesYieldMoreValuesPerWindow) {
  // The paper's observation (§7.3): warp-centric pays off more at fewer bits
  // per value. Small values (short codewords) must decode more per window.
  auto values_per_window = [](uint64_t max_value) {
    Rng rng(5);
    BitWriter w;
    int count = 400;
    for (int i = 0; i < count; ++i) {
      VlcEncode(VlcScheme::kZeta3, 1 + rng.Uniform(max_value), &w);
    }
    auto bytes = w.bytes();
    uint64_t pos = 0;
    int windows = 0;
    int decoded = 0;
    while (decoded < count) {
      ParallelDecodeResult r = WarpCentricDecodeWindow(
          bytes.data(), w.num_bits(), pos, 32, VlcScheme::kZeta3,
          count - decoded);
      decoded += static_cast<int>(r.values.size());
      pos = r.next_bit_pos;
      ++windows;
    }
    return static_cast<double>(count) / windows;
  };
  EXPECT_GT(values_per_window(6), values_per_window(100000) * 1.5);
}

TEST(WarpCentric, EmptyAndOutOfRangeInputs) {
  std::vector<uint8_t> bytes = {0xff};
  ParallelDecodeResult r =
      WarpCentricDecodeWindow(bytes.data(), 8, /*base=*/100, 32,
                              VlcScheme::kGamma, 10);
  EXPECT_TRUE(r.values.empty());
  EXPECT_EQ(r.next_bit_pos, 100u);
  r = WarpCentricDecodeWindow(bytes.data(), 8, 0, 32, VlcScheme::kGamma, 0);
  EXPECT_TRUE(r.values.empty());
}

}  // namespace
}  // namespace gcgt
