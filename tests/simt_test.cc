// SIMT simulator tests: coalescing model, warp primitives, divergence
// accounting, makespan scheduling.
#include <gtest/gtest.h>

#include "simt/cost_model.h"
#include "simt/machine.h"
#include "simt/warp.h"

namespace gcgt::simt {
namespace {

TEST(Coalescing, ConsecutiveAddressesShareLines) {
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(i * 4);  // 128 bytes total
  EXPECT_EQ(CountCacheLines(addrs, 4, 128), 1u);
}

TEST(Coalescing, ScatteredAddressesUseOneLineEach) {
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(i * 4096);
  EXPECT_EQ(CountCacheLines(addrs, 4, 128), 32u);
}

TEST(Coalescing, StraddlingAccessTouchesTwoLines) {
  std::vector<uint64_t> addrs = {126};  // 4-byte access at line boundary
  EXPECT_EQ(CountCacheLines(addrs, 4, 128), 2u);
}

TEST(Coalescing, DuplicateAddressesCountOnce) {
  std::vector<uint64_t> addrs(32, 512);
  EXPECT_EQ(CountCacheLines(addrs, 4, 128), 1u);
}

TEST(Coalescing, EmptyAndZeroWidth) {
  EXPECT_EQ(CountCacheLines({}, 4, 128), 0u);
  std::vector<uint64_t> addrs = {0};
  EXPECT_EQ(CountCacheLines(addrs, 0, 128), 0u);
}

TEST(WarpContext, StepAccountsIdleLanes) {
  WarpContext ctx(32);
  ctx.Step(8);
  EXPECT_EQ(ctx.stats().steps, 1u);
  EXPECT_EQ(ctx.stats().active_lane_steps, 8u);
  EXPECT_EQ(ctx.stats().idle_lane_steps, 24u);
  EXPECT_DOUBLE_EQ(ctx.stats().LaneEfficiency(), 0.25);
}

TEST(WarpContext, MemAccessRangeCountsDistinctLines) {
  WarpContext ctx(32, 128);
  ctx.MemAccessRange(0, 256);
  EXPECT_EQ(ctx.stats().mem_txns, 2u);
  // Lines 0 and 1 were already fetched by this warp: L1 reuse, free.
  ctx.MemAccessRange(100, 56);
  EXPECT_EQ(ctx.stats().mem_txns, 2u);
  ctx.MemAccessRange(512, 4);  // a new line
  EXPECT_EQ(ctx.stats().mem_txns, 3u);
  ctx.MemAccessRange(0, 0);  // empty: free
  EXPECT_EQ(ctx.stats().mem_txns, 3u);
}

TEST(WarpContext, TakeStatsResetsLineCache) {
  WarpContext ctx(32, 128);
  ctx.MemAccessRange(0, 4);
  EXPECT_EQ(ctx.stats().mem_txns, 1u);
  ctx.TakeStats();
  ctx.MemAccessRange(0, 4);  // new warp: the line must be re-fetched
  EXPECT_EQ(ctx.stats().mem_txns, 1u);
}

TEST(WarpContext, DecodeStepsTrackedAndPriced) {
  WarpContext ctx(32, 128);
  ctx.Step(32);
  ctx.DecodeStep(16);
  EXPECT_EQ(ctx.stats().steps, 2u);
  EXPECT_EQ(ctx.stats().decode_steps, 1u);
  CostModel m;
  m.cycles_per_step = 1;
  m.cycles_per_decode_step = 20;
  m.cycles_per_mem_txn = 0;
  m.cycles_per_shared_op = 0;
  EXPECT_DOUBLE_EQ(ctx.stats().Cycles(m), 1 + 20);
}

TEST(WarpContext, MemAccessRangesMergesAcrossLanes) {
  WarpContext ctx(4, 128);
  std::vector<std::pair<uint64_t, uint64_t>> ranges = {
      {0, 3}, {4, 7}, {130, 140}, {135, 150}};
  ctx.MemAccessRanges(ranges);
  EXPECT_EQ(ctx.stats().mem_txns, 2u);  // line 0 and line 1
}

TEST(WarpContext, ExclusiveScanMatchesPaperSemantics) {
  WarpContext ctx(8);
  std::vector<int> vals = {4, 0, 3, 0, 0, 7, 0, 0};
  std::vector<int> scatter(8);
  int total = ctx.ExclusiveScan<int>(vals, scatter);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(scatter, (std::vector<int>{0, 4, 4, 7, 7, 7, 14, 14}));
  EXPECT_EQ(ctx.stats().shared_ops, 1u);
}

TEST(WarpContext, AnyAllShfl) {
  WarpContext ctx(4);
  std::vector<uint8_t> pred = {0, 0, 1, 0};
  EXPECT_TRUE(ctx.Any(pred));
  EXPECT_FALSE(ctx.All(pred));
  std::vector<uint8_t> all_set = {1, 1, 1, 1};
  EXPECT_TRUE(ctx.All(all_set));
  std::vector<int> vals = {10, 20, 30, 40};
  EXPECT_EQ(ctx.Shfl<int>(vals, 2), 30);
  EXPECT_EQ(ctx.stats().shared_ops, 4u);
}

TEST(CostModel, CyclesCombineCharges) {
  CostModel m;
  m.cycles_per_step = 1;
  m.cycles_per_mem_txn = 10;
  m.cycles_per_shared_op = 2;
  m.cycles_per_atomic = 5;
  WarpStats s;
  s.steps = 3;
  s.mem_txns = 2;
  s.shared_ops = 4;
  s.atomics = 1;
  EXPECT_DOUBLE_EQ(s.Cycles(m), 3 + 20 + 8 + 5);
}

TEST(Makespan, PerfectlyParallelWork) {
  std::vector<double> warps(64, 10.0);
  EXPECT_DOUBLE_EQ(Makespan(warps, 64), 10.0);
  EXPECT_DOUBLE_EQ(Makespan(warps, 32), 20.0);
  EXPECT_DOUBLE_EQ(Makespan(warps, 1), 640.0);
}

TEST(Makespan, StragglersDominate) {
  std::vector<double> warps(31, 1.0);
  warps.push_back(100.0);  // one heavy warp
  EXPECT_GE(Makespan(warps, 32), 100.0);
  EXPECT_LE(Makespan(warps, 32), 101.0);
}

TEST(Makespan, EmptyIsZero) { EXPECT_DOUBLE_EQ(Makespan({}, 8), 0.0); }

TEST(KernelTimeline, AccumulatesLaunchOverheadAndAggregates) {
  CostModel m;
  m.kernel_launch_cycles = 1000;
  m.cycles_per_step = 1;
  m.cycles_per_mem_txn = 0;
  KernelTimeline tl(m);
  WarpStats w;
  w.steps = 50;
  tl.AddKernel({w, w});
  tl.AddKernel({w});
  EXPECT_EQ(tl.num_kernels(), 2);
  EXPECT_EQ(tl.aggregate().steps, 150u);
  // Two launches + two makespans of 50 each (plenty of slots).
  EXPECT_DOUBLE_EQ(tl.total_cycles(), 2 * 1000 + 50 + 50);
  EXPECT_GT(tl.TotalMs(), 0.0);
}

TEST(WarpStats, AdditionOperator) {
  WarpStats a, b;
  a.steps = 1;
  a.mem_txns = 2;
  b.steps = 3;
  b.atomics = 4;
  a += b;
  EXPECT_EQ(a.steps, 4u);
  EXPECT_EQ(a.mem_txns, 2u);
  EXPECT_EQ(a.atomics, 4u);
}

}  // namespace
}  // namespace gcgt::simt
