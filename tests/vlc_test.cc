// VLC codec tests: the exact Table 3 codewords of the paper, plus
// parameterized round-trip and length properties across all schemes.
#include "cgr/vlc.h"

#include <gtest/gtest.h>

#include "util/bit_stream.h"
#include "util/random.h"

namespace gcgt {
namespace {

TEST(VlcGolden, GammaMatchesPaperTable3) {
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 1), "1");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 2), "010");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 3), "011");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 4), "00100");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 5), "00101");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 6), "00110");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 12), "0001100");
  EXPECT_EQ(VlcToString(VlcScheme::kGamma, 34), "00000100010");
}

TEST(VlcGolden, Zeta2MatchesPaperTable3) {
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 1), "101");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 2), "110");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 3), "111");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 4), "010100");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 5), "010101");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 6), "010110");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 12), "011100");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta2, 34), "001100010");
}

TEST(VlcGolden, Zeta3MatchesPaperTable3) {
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 1), "1001");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 2), "1010");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 3), "1011");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 4), "1100");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 5), "1101");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 6), "1110");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 12), "01001100");
  EXPECT_EQ(VlcToString(VlcScheme::kZeta3, 34), "01100010");
}

class VlcSchemeTest : public ::testing::TestWithParam<VlcScheme> {};

TEST_P(VlcSchemeTest, RoundTripSmallValues) {
  const VlcScheme scheme = GetParam();
  BitWriter w;
  for (uint64_t v = 1; v <= 4096; ++v) VlcEncode(scheme, v, &w);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  for (uint64_t v = 1; v <= 4096; ++v) {
    ASSERT_EQ(VlcDecode(scheme, &r), v) << "scheme=" << VlcSchemeName(scheme);
  }
  EXPECT_FALSE(r.overflowed());
  EXPECT_EQ(r.pos(), w.num_bits());
}

TEST_P(VlcSchemeTest, RoundTripRandomLargeValues) {
  const VlcScheme scheme = GetParam();
  Rng rng(1234);
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(1 + rng.Uniform(uint64_t(1) << (1 + rng.Uniform(40))));
  }
  BitWriter w;
  for (uint64_t v : values) VlcEncode(scheme, v, &w);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  for (uint64_t v : values) ASSERT_EQ(VlcDecode(scheme, &r), v);
}

TEST_P(VlcSchemeTest, LengthMatchesEncoding) {
  const VlcScheme scheme = GetParam();
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = 1 + rng.Uniform(1 << 30);
    BitWriter w;
    VlcEncode(scheme, v, &w);
    EXPECT_EQ(static_cast<int>(w.num_bits()), VlcLength(scheme, v));
  }
}

TEST_P(VlcSchemeTest, PowersOfTwoBoundaries) {
  const VlcScheme scheme = GetParam();
  BitWriter w;
  std::vector<uint64_t> values;
  for (int p = 0; p < 40; ++p) {
    for (int64_t d : {-1, 0, 1}) {
      int64_t v = (int64_t(1) << p) + d;
      if (v >= 1) values.push_back(static_cast<uint64_t>(v));
    }
  }
  for (uint64_t v : values) VlcEncode(scheme, v, &w);
  auto bytes = w.bytes();
  BitReader r(bytes.data(), w.num_bits());
  for (uint64_t v : values) ASSERT_EQ(VlcDecode(scheme, &r), v);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, VlcSchemeTest,
                         ::testing::Values(VlcScheme::kGamma, VlcScheme::kZeta2,
                                           VlcScheme::kZeta3, VlcScheme::kZeta4,
                                           VlcScheme::kZeta5),
                         [](const auto& info) {
                           return VlcSchemeName(info.param);
                         });

TEST(VlcDecodeRobustness, TruncatedStreamSetsOverflow) {
  BitWriter w;
  VlcEncode(VlcScheme::kZeta3, 1000000, &w);
  auto bytes = w.bytes();
  // Cut the stream short by 5 bits.
  BitReader r(bytes.data(), w.num_bits() - 5);
  VlcDecode(VlcScheme::kZeta3, &r);
  EXPECT_TRUE(r.overflowed());
}

TEST(VlcDecodeRobustness, AllZerosDoesNotCrash) {
  std::vector<uint8_t> zeros(64, 0);
  BitReader r(zeros.data(), 512);
  EXPECT_EQ(VlcDecode(VlcScheme::kGamma, &r), 0u);
}

TEST(VlcLength, GammaIsTwiceLogPlusOne) {
  for (uint64_t v : {1ull, 2ull, 3ull, 7ull, 8ull, 1023ull, 1024ull}) {
    int h = 0;
    while ((v >> (h + 1)) != 0) ++h;
    EXPECT_EQ(VlcLength(VlcScheme::kGamma, v), 2 * h + 1);
  }
}

TEST(VlcLength, ZetaKBucketWidths) {
  // zeta_k codeword of x takes (j+1)(k+1) bits where j = floor(log2 x)/k.
  EXPECT_EQ(VlcLength(VlcScheme::kZeta3, 1), 4);
  EXPECT_EQ(VlcLength(VlcScheme::kZeta3, 7), 4);
  EXPECT_EQ(VlcLength(VlcScheme::kZeta3, 8), 8);
  EXPECT_EQ(VlcLength(VlcScheme::kZeta3, 63), 8);
  EXPECT_EQ(VlcLength(VlcScheme::kZeta3, 64), 12);
  EXPECT_EQ(VlcLength(VlcScheme::kZeta4, 15), 5);
  EXPECT_EQ(VlcLength(VlcScheme::kZeta4, 16), 10);
}

}  // namespace
}  // namespace gcgt
