// CGR encoder/decoder tests: the paper's Fig. 2 worked example, round-trip
// properties across schemes / interval settings / segment lengths, and the
// segmentation layout invariants of Fig. 6.
#include <gtest/gtest.h>

#include <algorithm>

#include "cgr/cgr_decoder.h"
#include "cgr/cgr_encoder.h"
#include "cgr/cgr_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/random.h"

namespace gcgt {
namespace {

// The adjacency list of node 16 in paper Fig. 2.
const std::vector<NodeId> kFig2List = {12, 18, 19, 20, 21, 24, 27, 28, 29, 101};

TEST(Decompose, PaperFigure2Example) {
  // The paper's example uses intervals of length >= 3 ((27,3) is an interval).
  IntervalDecomposition d = DecomposeAdjacency(kFig2List, 3);
  ASSERT_EQ(d.intervals.size(), 2u);
  EXPECT_EQ(d.intervals[0], (CgrInterval{18, 4}));
  EXPECT_EQ(d.intervals[1], (CgrInterval{27, 3}));
  EXPECT_EQ(d.residuals, (std::vector<NodeId>{12, 24, 101}));
}

TEST(Decompose, MinIntervalLengthFour) {
  IntervalDecomposition d = DecomposeAdjacency(kFig2List, 4);
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_EQ(d.intervals[0], (CgrInterval{18, 4}));
  // 27,28,29 fall back to residuals.
  EXPECT_EQ(d.residuals, (std::vector<NodeId>{12, 24, 27, 28, 29, 101}));
}

TEST(Decompose, NoIntervalsSentinel) {
  IntervalDecomposition d =
      DecomposeAdjacency(kFig2List, CgrOptions::kNoIntervals);
  EXPECT_TRUE(d.intervals.empty());
  EXPECT_EQ(d.residuals.size(), kFig2List.size());
}

TEST(Decompose, WholeListOneInterval) {
  std::vector<NodeId> list = {5, 6, 7, 8, 9, 10};
  IntervalDecomposition d = DecomposeAdjacency(list, 4);
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_EQ(d.intervals[0], (CgrInterval{5, 6}));
  EXPECT_TRUE(d.residuals.empty());
}

TEST(Decompose, EmptyList) {
  IntervalDecomposition d = DecomposeAdjacency({}, 4);
  EXPECT_TRUE(d.intervals.empty());
  EXPECT_TRUE(d.residuals.empty());
}

// Encode a single-node graph and decode it back.
std::vector<NodeId> RoundTripList(NodeId u, std::vector<NodeId> list,
                                  const CgrOptions& options, NodeId num_nodes) {
  EdgeList edges;
  for (NodeId v : list) edges.emplace_back(u, v);
  Graph g = Graph::FromEdges(num_nodes, edges);
  auto cgr = CgrGraph::Encode(g, options);
  EXPECT_TRUE(cgr.ok()) << cgr.status().ToString();
  return DecodeAdjacency(cgr.value(), u);
}

TEST(CgrRoundTrip, PaperFigure2List) {
  CgrOptions options;
  options.min_interval_len = 3;
  options.segment_len_bytes = 0;
  EXPECT_EQ(RoundTripList(16, kFig2List, options, 128), kFig2List);
}

TEST(CgrRoundTrip, NeighborsBelowSource) {
  CgrOptions options;
  // First interval / residual gaps relative to u can be negative (zigzag).
  std::vector<NodeId> list = {1, 2, 3, 4, 5, 90};
  EXPECT_EQ(RoundTripList(80, list, options, 128), list);
}

TEST(CgrRoundTrip, SelfLoop) {
  CgrOptions options;
  std::vector<NodeId> list = {7};
  EXPECT_EQ(RoundTripList(7, list, options, 16), list);
}

TEST(CgrRoundTrip, EmptyAdjacency) {
  CgrOptions options;
  Graph g = Graph::FromEdges(4, {{0, 1}});
  auto cgr = CgrGraph::Encode(g, options);
  ASSERT_TRUE(cgr.ok());
  EXPECT_TRUE(DecodeAdjacency(cgr.value(), 2).empty());
  EXPECT_EQ(DecodeDegree(cgr.value(), 2), 0u);
}

struct CgrParam {
  VlcScheme scheme;
  int min_interval_len;
  int segment_len_bytes;
};

std::string CgrParamName(const ::testing::TestParamInfo<CgrParam>& info) {
  std::string name = VlcSchemeName(info.param.scheme);
  name += "_itv";
  name += info.param.min_interval_len == CgrOptions::kNoIntervals
              ? "inf"
              : std::to_string(info.param.min_interval_len);
  name += "_seg";
  name += info.param.segment_len_bytes == 0
              ? "inf"
              : std::to_string(info.param.segment_len_bytes);
  return name;
}

class CgrRoundTripTest : public ::testing::TestWithParam<CgrParam> {};

TEST_P(CgrRoundTripTest, RandomGraphAllNodes) {
  CgrOptions options;
  options.scheme = GetParam().scheme;
  options.min_interval_len = GetParam().min_interval_len;
  options.segment_len_bytes = GetParam().segment_len_bytes;

  Graph g = GenerateErdosRenyi(500, 6000, /*seed=*/5);
  auto cgr = CgrGraph::Encode(g, options);
  ASSERT_TRUE(cgr.ok()) << cgr.status().ToString();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto expected = g.Neighbors(u);
    auto got = DecodeAdjacency(cgr.value(), u);
    ASSERT_EQ(got.size(), expected.size()) << "node " << u;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "node " << u;
    ASSERT_EQ(DecodeDegree(cgr.value(), u), expected.size());
  }
}

TEST_P(CgrRoundTripTest, LocalityHeavyGraphAllNodes) {
  CgrOptions options;
  options.scheme = GetParam().scheme;
  options.min_interval_len = GetParam().min_interval_len;
  options.segment_len_bytes = GetParam().segment_len_bytes;

  WebGraphParams params;
  params.num_nodes = 800;
  params.seed = 11;
  Graph g = GenerateWebGraph(params);
  auto cgr = CgrGraph::Encode(g, options);
  ASSERT_TRUE(cgr.ok()) << cgr.status().ToString();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto expected = g.Neighbors(u);
    auto got = DecodeAdjacency(cgr.value(), u);
    ASSERT_EQ(got.size(), expected.size()) << "node " << u;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, CgrRoundTripTest,
    ::testing::Values(CgrParam{VlcScheme::kZeta3, 4, 0},
                      CgrParam{VlcScheme::kZeta3, 4, 32},
                      CgrParam{VlcScheme::kZeta3, 4, 8},
                      CgrParam{VlcScheme::kZeta3, 4, 128},
                      CgrParam{VlcScheme::kGamma, 4, 32},
                      CgrParam{VlcScheme::kZeta2, 2, 32},
                      CgrParam{VlcScheme::kZeta4, 10, 32},
                      CgrParam{VlcScheme::kZeta5, 4, 16},
                      CgrParam{VlcScheme::kZeta3, CgrOptions::kNoIntervals, 32},
                      CgrParam{VlcScheme::kGamma, CgrOptions::kNoIntervals, 0}),
    CgrParamName);

TEST(CgrSegmentation, HubNodeGetsMultipleIndependentSegments) {
  // A hub with many scattered residuals must be split into segments that are
  // independently decodable at fixed strides.
  Rng rng(3);
  std::vector<NodeId> list;
  NodeId v = 1;
  for (int i = 0; i < 3000; ++i) {
    v += 1 + static_cast<NodeId>(rng.Uniform(50));
    list.push_back(v);
  }
  EdgeList edges;
  for (NodeId n : list) edges.emplace_back(0, n);
  Graph g = Graph::FromEdges(200000, edges);

  CgrOptions options;
  options.segment_len_bytes = 32;
  auto cgr = CgrGraph::Encode(g, options);
  ASSERT_TRUE(cgr.ok());

  CgrNodeDecoder dec(cgr.value(), 0);
  uint32_t itv = dec.ReadIntervalCount();
  for (uint32_t i = 0; i < itv; ++i) dec.ReadNextInterval();
  uint32_t segs = dec.ReadSegmentCount();
  EXPECT_GT(segs, 10u);

  // Segments decode independently and in order; counts sum to the degree.
  uint64_t total = 0;
  NodeId prev = 0;
  for (uint32_t s = 0; s < segs; ++s) {
    ResidualStream rs = dec.SegmentResiduals(s);
    EXPECT_GT(rs.remaining(), 0u) << "segment " << s;
    while (rs.HasNext()) {
      NodeId r = rs.Next();
      EXPECT_GT(r, prev);
      prev = r;
      ++total;
    }
  }
  EXPECT_EQ(total + 0, list.size());

  // Fixed stride: segment i starts at seg_base + i * 8 * segLen.
  for (uint32_t s = 1; s < segs; ++s) {
    EXPECT_EQ(dec.SegmentBitPos(s) - dec.SegmentBitPos(s - 1), 32u * 8u);
  }
}

TEST(CgrSegmentation, SegmentAreaIsByteAligned) {
  Graph g = GenerateErdosRenyi(300, 5000, 17);
  CgrOptions options;
  options.segment_len_bytes = 16;
  auto cgr = CgrGraph::Encode(g, options);
  ASSERT_TRUE(cgr.ok());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    CgrNodeDecoder dec(cgr.value(), u);
    uint32_t itv = dec.ReadIntervalCount();
    for (uint32_t i = 0; i < itv; ++i) dec.ReadNextInterval();
    uint32_t segs = dec.ReadSegmentCount();
    if (segs > 0) {
      EXPECT_EQ(dec.SegmentBitPos(0) % 8, 0u);
    }
  }
}

TEST(CgrCompression, WebGraphCompressesBelow8BitsPerEdge) {
  WebGraphParams params;
  params.num_nodes = 5000;
  Graph g = GenerateWebGraph(params);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  EXPECT_LT(cgr.value().BitsPerEdge(), 8.0);
  EXPECT_GT(cgr.value().CompressionRate(), 4.0);
}

TEST(CgrCompression, IntervalsHelpOnConsecutiveLists) {
  // A graph whose lists are long consecutive runs: interval coding must be
  // far smaller than residual-only coding.
  EdgeList edges;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId k = 0; k < 64; ++k) edges.emplace_back(u, 1000 + u * 3 + k);
  }
  Graph g = Graph::FromEdges(2000, edges);
  CgrOptions with_itv;
  CgrOptions no_itv;
  no_itv.min_interval_len = CgrOptions::kNoIntervals;
  auto a = CgrGraph::Encode(g, with_itv);
  auto b = CgrGraph::Encode(g, no_itv);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a.value().total_bits() * 3, b.value().total_bits());
}

TEST(CgrOptionsValidation, RejectsBadParameters) {
  Graph g = MakePath(4);
  CgrOptions bad_itv;
  bad_itv.min_interval_len = 1;
  EXPECT_TRUE(CgrGraph::Encode(g, bad_itv).status().IsInvalidArgument());
  CgrOptions bad_seg;
  bad_seg.segment_len_bytes = 4;
  EXPECT_TRUE(CgrGraph::Encode(g, bad_seg).status().IsInvalidArgument());
}

TEST(CgrGraphMetadata, BitStartsAreMonotone) {
  Graph g = GenerateErdosRenyi(200, 2000, 23);
  auto cgr = CgrGraph::Encode(g, CgrOptions{});
  ASSERT_TRUE(cgr.ok());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(cgr.value().bit_start(u), cgr.value().bit_start(u + 1));
  }
  EXPECT_EQ(cgr.value().bit_start(g.num_nodes()), cgr.value().total_bits());
  EXPECT_EQ(cgr.value().num_edges(), g.num_edges());
}

}  // namespace
}  // namespace gcgt
