// Paper Fig. 4 + Fig. 5: reprints the instruction-flow tables of the three
// scheduling strategies on the paper's worked example (8-lane warp) and the
// parallel VLC decoding example. The step counts (26 / 12 / 10 and marking
// rounds = 3) are pinned by unit tests.
//
// `--json out.json` records one row per strategy with the paper-table step
// count as the trend metric (deterministic, like model_cycles elsewhere).
#include <cstdio>

#include "bench/bench_common.h"
#include "cgr/cgr_graph.h"
#include "core/cgr_traversal.h"
#include "core/frontier_filter.h"
#include "core/trace.h"
#include "core/warp_centric.h"
#include "util/bit_stream.h"

namespace gcgt {
namespace {

Graph MakeFig4Graph() {
  EdgeList edges;
  auto add_list = [&](NodeId u, std::vector<NodeId> list) {
    for (NodeId v : list) edges.emplace_back(u, v);
  };
  add_list(0, {10, 11, 12, 13, 20, 30});
  add_list(1, {40});
  add_list(2, {50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 70, 80, 90});
  add_list(3, {15, 25});
  add_list(4, {33});
  add_list(5, {100, 101, 102, 103, 104, 105, 106, 110, 115, 120, 126});
  add_list(6, {44});
  add_list(7, {47});
  return Graph::FromEdges(128, edges);
}

void RunAndPrint(GcgtLevel level, const char* title,
                 bench::JsonReport* json) {
  Graph g = MakeFig4Graph();
  CgrOptions copt;
  copt.min_interval_len = 4;
  copt.segment_len_bytes = 0;
  GcgtOptions opt;
  opt.level = level;
  opt.lanes = 8;

  // The trace drives the engine below the query API, so prepare a session
  // and borrow its persistent engine instead of constructing one by hand.
  PrepareOptions popt;
  popt.cgr = copt;
  popt.gcgt = opt;
  auto session = GcgtSession::Prepare(g, popt);
  const CgrTraversalEngine& engine = session.value().engine();

  BfsFilter filter(g.num_nodes());
  std::vector<NodeId> frontier = {0, 1, 2, 3, 4, 5, 6, 7};
  for (NodeId u : frontier) filter.SetSource(u);
  std::vector<NodeId> out;
  std::vector<simt::WarpStats> warps;
  StepTrace trace;
  // wall_ns times the traced traversal only (like every other bench row).
  const double t0 = bench::NowNs();
  engine.ProcessFrontier(frontier, filter, &out, &warps, &trace);
  const double wall_ns = bench::NowNs() - t0;
  std::printf("---- %s: %zu steps ----\n%s\n", title, trace.PaperStepCount(),
              trace.ToTable(8).c_str());
  if (json != nullptr) {
    json->Add(std::string("fig4/") + GcgtLevelName(level), wall_ns,
              static_cast<double>(trace.PaperStepCount()));
  }
}

}  // namespace
}  // namespace gcgt

int main(int argc, char** argv) {
  using namespace gcgt;
  bench::JsonReport json(argc, argv);
  std::printf("== Fig. 4: instruction flow of the scheduling strategies ==\n");
  RunAndPrint(GcgtLevel::kIntuitive, "(b) Intuitive approach", &json);
  RunAndPrint(GcgtLevel::kTwoPhase, "(c) Two-Phase Traversal", &json);
  RunAndPrint(GcgtLevel::kTaskStealing, "(d) Task Stealing", &json);

  std::printf("== Fig. 5: parallel VLC decoding (gamma codes of 1..5) ==\n");
  const double t0 = bench::NowNs();
  BitWriter w;
  for (uint64_t v = 1; v <= 5; ++v) VlcEncode(VlcScheme::kGamma, v, &w);
  w.PutBits(0b10100, 5);
  auto bytes = w.bytes();
  ParallelDecodeResult r = WarpCentricDecodeWindow(bytes.data(), w.num_bits(),
                                                   0, 16, VlcScheme::kGamma, 5);
  json.Add("fig5/marking_rounds", bench::NowNs() - t0,
           static_cast<double>(r.rounds));
  std::printf("valid start offsets:");
  for (uint32_t o : r.valid_offsets) std::printf(" %u", o);
  std::printf("\ndecoded values:");
  for (uint64_t v : r.values) std::printf(" %llu", (unsigned long long)v);
  std::printf("\nmarking rounds: %d (<= log2(16) = 4)\n", r.rounds);
  return 0;
}
